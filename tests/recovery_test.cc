// Tests for the recovery process: analysis/redo/undo over crafted logs,
// prepared-transaction restoration, idempotence, and torn-log handling.
// (Whole-system crash/recovery scenarios live in failure_test.cc; these tests
// target the RecoveryManager's log-interpretation logic directly.)
#include <gtest/gtest.h>

#include <string>

#include "src/harness/world.h"

namespace camelot {
namespace {

WorldConfig Quiet() {
  WorldConfig cfg;
  cfg.site_count = 2;
  cfg.net.send_jitter_mean = 0;
  cfg.net.stall_probability = 0;
  cfg.net.receive_skew_mean = 0;
  return cfg;
}

Tid MakeTid(uint64_t seq) { return Tid{FamilyId{SiteId{0}, seq}, 0, 0}; }

// Appends records to site 0's log and forces them all.
void SeedLog(World& world, const std::vector<LogRecord>& records) {
  StableLog& log = world.site(0).log();
  Lsn last;
  for (const auto& rec : records) {
    last = log.Append(rec);
  }
  world.RunSync([](StableLog& l, Lsn lsn) -> Async<bool> {
    co_return co_await l.Force(lsn);
  }(log, last));
}

RecoveryReport RunRecovery(World& world) {
  auto report = world.RunSync([](World* w) -> Async<RecoveryReport> {
    RecoveryReport r = co_await w->site(0).recovery().Recover(w->site(0).ServerMap());
    co_return r;
  }(&world));
  return report.value_or(RecoveryReport{});
}

Bytes DurableValue(World& world, const std::string& server, const std::string& object) {
  auto v = world.site(0).diskmgr().RecoveryRead(server, object);
  return v.ok() ? *v : Bytes{};
}

TEST(RecoveryTest, CommittedTransactionIsRedone) {
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid tid = MakeTid(1);
  SeedLog(world, {LogRecord::Update(tid, "srv", "x", {1}, {2}),
                  LogRecord::Commit(tid, {})});
  RecoveryReport report = RunRecovery(world);
  EXPECT_EQ(report.families_committed, 1u);
  EXPECT_EQ(report.redo_writes, 1u);
  EXPECT_EQ(DurableValue(world, "srv", "x"), (Bytes{2}));
}

TEST(RecoveryTest, AbortedTransactionIsUndone) {
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid tid = MakeTid(1);
  SeedLog(world, {LogRecord::Update(tid, "srv", "x", {1}, {2}),
                  LogRecord::Abort(tid)});
  RecoveryReport report = RunRecovery(world);
  EXPECT_EQ(report.families_aborted, 1u);
  EXPECT_EQ(report.undo_writes, 1u);
  EXPECT_EQ(DurableValue(world, "srv", "x"), (Bytes{1}));
}

TEST(RecoveryTest, NoOutcomeRecordMeansPresumedAbort) {
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid tid = MakeTid(1);
  SeedLog(world, {LogRecord::Update(tid, "srv", "x", {1}, {2})});
  RecoveryReport report = RunRecovery(world);
  EXPECT_EQ(report.families_presumed, 1u);
  EXPECT_EQ(DurableValue(world, "srv", "x"), (Bytes{1}));
  EXPECT_EQ(world.site(0).tranman().QueryState(tid.family), TmTxnState::kUnknown);
}

TEST(RecoveryTest, MultiUpdateUndoRunsNewestFirst) {
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid tid = MakeTid(1);
  // x: 1 -> 2 -> 3; correct undo must end at 1 (not 2).
  SeedLog(world, {LogRecord::Update(tid, "srv", "x", {1}, {2}),
                  LogRecord::Update(tid, "srv", "x", {2}, {3})});
  RunRecovery(world);
  EXPECT_EQ(DurableValue(world, "srv", "x"), (Bytes{1}));
}

TEST(RecoveryTest, InterleavedWinnersAndLosersResolvePerObject) {
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid winner = MakeTid(1);
  const Tid loser = MakeTid(2);
  SeedLog(world, {
                     LogRecord::Update(winner, "srv", "a", {0}, {10}),
                     LogRecord::Update(loser, "srv", "b", {0}, {20}),
                     LogRecord::Update(winner, "srv", "c", {0}, {30}),
                     LogRecord::Commit(winner, {}),
                     LogRecord::Abort(loser),
                 });
  RecoveryReport report = RunRecovery(world);
  EXPECT_EQ(report.families_committed, 1u);
  EXPECT_EQ(report.families_aborted, 1u);
  EXPECT_EQ(DurableValue(world, "srv", "a"), (Bytes{10}));
  EXPECT_EQ(DurableValue(world, "srv", "b"), (Bytes{0}));
  EXPECT_EQ(DurableValue(world, "srv", "c"), (Bytes{30}));
}

TEST(RecoveryTest, PreparedTransactionKeepsUpdatesAndLocks) {
  World world(Quiet());
  DataServer* server = world.AddServer(0, "srv");
  const Tid tid = MakeTid(1);
  SeedLog(world, {LogRecord::Update(tid, "srv", "x", {1}, {2}),
                  LogRecord::Prepare(tid, SiteId{1}, {SiteId{1}, SiteId{0}},
                                     CommitProtocol::kTwoPhase, 0, 0)});
  // The coordinator site is down, so the restored subordinate must stay
  // prepared and blocked (presumed abort would need the coordinator's word).
  world.Crash(1);
  RecoveryReport report = RunRecovery(world);
  EXPECT_EQ(report.families_prepared, 1u);
  // Redone (not undone): the outcome is the coordinator's to decide.
  EXPECT_EQ(DurableValue(world, "srv", "x"), (Bytes{2}));
  // The exclusive lock is held again.
  EXPECT_TRUE(server->locks().Holds(tid, "x", LockMode::kExclusive));
  // TranMan is back in the prepared state for this family.
  EXPECT_EQ(world.site(0).tranman().QueryState(tid.family), TmTxnState::kPrepared);
}

TEST(RecoveryTest, CommittedCoordinatorWithoutEndIsResumed) {
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid tid = MakeTid(1);
  SeedLog(world, {LogRecord::Update(tid, "srv", "x", {1}, {2}),
                  LogRecord::Commit(tid, {SiteId{1}})});  // Subordinate never acked.
  RecoveryReport report = RunRecovery(world);
  EXPECT_EQ(report.coordinators_resumed, 1u);
  // Phase 2 re-ran to completion: the (state-less) subordinate blind-acked the
  // retried COMMIT, the End record was appended, and the family was retired.
  EXPECT_EQ(world.site(0).tranman().live_family_count(), 0u);
  bool saw_end = false;
  for (const auto& rec : world.site(0).log().ReadDurable()) {
    saw_end = saw_end || rec.kind == LogRecordKind::kEnd;
  }
  // End is never forced; check the buffered log instead of only the durable one.
  EXPECT_TRUE(saw_end || world.site(0).log().buffered_lsn() > world.site(0).log().durable_lsn());
}

TEST(RecoveryTest, EndedCoordinatorBecomesTombstoneOnly) {
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid tid = MakeTid(1);
  SeedLog(world, {LogRecord::Update(tid, "srv", "x", {1}, {2}),
                  LogRecord::Commit(tid, {SiteId{1}}), LogRecord::End(tid)});
  RecoveryReport report = RunRecovery(world);
  EXPECT_EQ(report.coordinators_resumed, 0u);
  EXPECT_EQ(world.site(0).tranman().QueryState(tid.family), TmTxnState::kCommitted);
  EXPECT_EQ(world.site(0).tranman().live_family_count(), 0u);
}

TEST(RecoveryTest, ReplicationOnlyParticipantIsRestored) {
  // An NBC participant that accepted a replication but has no prepare record
  // (read-only coordinator / passive acceptor) must still come back as an
  // in-doubt quorum participant.
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid tid = MakeTid(1);
  SeedLog(world, {LogRecord::Replication(tid, SiteId{1}, 0x105, 1,
                                         {SiteId{1}, SiteId{0}, SiteId{2}})});
  RecoveryReport report = RunRecovery(world);
  EXPECT_EQ(report.families_prepared, 1u);
  EXPECT_EQ(world.site(0).tranman().QueryState(tid.family), TmTxnState::kPrepared);
}

TEST(RecoveryTest, RecoveryIsIdempotent) {
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid winner = MakeTid(1);
  const Tid loser = MakeTid(2);
  SeedLog(world, {LogRecord::Update(winner, "srv", "x", {1}, {2}),
                  LogRecord::Commit(winner, {}),
                  LogRecord::Update(loser, "srv", "y", {5}, {6})});
  RunRecovery(world);
  const Bytes x1 = DurableValue(world, "srv", "x");
  const Bytes y1 = DurableValue(world, "srv", "y");
  // Crash again immediately and re-recover: same answers.
  world.site(0).site().Crash();
  world.site(0).site().Restart();
  RunRecovery(world);
  EXPECT_EQ(DurableValue(world, "srv", "x"), x1);
  EXPECT_EQ(DurableValue(world, "srv", "y"), y1);
  EXPECT_EQ(x1, (Bytes{2}));
  EXPECT_EQ(y1, (Bytes{5}));
}

TEST(RecoveryTest, LiveAbortedLoserDoesNotClobberLaterWinner) {
  // Regression test for a value-logging undo hazard: transaction L writes x
  // and live-aborts (its undo is logged as a CLR); later transaction W writes
  // x and commits; then the site crashes. Recovery must end with W's value —
  // a blind newest-first undo of ALL loser records would have restored L's
  // stale old_value on top of W's redone write.
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid loser = MakeTid(1);
  const Tid winner = MakeTid(2);
  SeedLog(world, {
                     LogRecord::Update(loser, "srv", "x", {10}, {20}),   // L: 10 -> 20.
                     LogRecord::UndoUpdate(loser, "srv", "x", {20}, {10}),  // CLR: back to 10.
                     LogRecord::Abort(loser),
                     LogRecord::Update(winner, "srv", "x", {10}, {30}),  // W: 10 -> 30.
                     LogRecord::Commit(winner, {}),
                 });
  RunRecovery(world);
  EXPECT_EQ(DurableValue(world, "srv", "x"), (Bytes{30}));
}

TEST(RecoveryTest, CrashMidAbortUndoesOnlyUncompensatedRecords) {
  // A live abort got through one of two undos before the crash: recovery must
  // finish the job exactly once (no double-undo of the compensated record).
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid loser = MakeTid(1);
  SeedLog(world, {
                     LogRecord::Update(loser, "srv", "x", {1}, {2}),
                     LogRecord::Update(loser, "srv", "y", {5}, {6}),
                     LogRecord::Abort(loser),
                     // The abort undid y (newest first), then the crash hit.
                     LogRecord::UndoUpdate(loser, "srv", "y", {6}, {5}),
                 });
  RunRecovery(world);
  EXPECT_EQ(DurableValue(world, "srv", "x"), (Bytes{1}));  // Undone by recovery.
  EXPECT_EQ(DurableValue(world, "srv", "y"), (Bytes{5}));  // Already compensated.
}

TEST(RecoveryTest, InteriorLogCorruptionFailsRecoveryLoudly) {
  // The single (non-duplexed) log lost a committed frame to media damage:
  // recovery must refuse with a Corruption status, not silently replay the
  // prefix and drop acknowledged transactions.
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid tid = MakeTid(1);
  SeedLog(world, {LogRecord::Update(tid, "srv", "x", {1}, {2}),
                  LogRecord::Commit(tid, {})});
  world.site(0).log().CorruptDurableByte(13);  // First frame's payload.
  RecoveryReport report = RunRecovery(world);
  EXPECT_EQ(report.status.code(), StatusCode::kCorruption);
  EXPECT_EQ(report.records_replayed, 0u);
  EXPECT_EQ(report.families_committed, 0u);  // Nothing was half-applied.
}

TEST(RecoveryTest, DuplexedLogSalvagesDamagedFrameDuringRecovery) {
  // The same damage with a duplexed log is survivable: recovery reads the
  // intact mirror, repairs the bad one, and reports the salvage.
  WorldConfig cfg = Quiet();
  cfg.log.duplex = true;
  World world(cfg);
  world.AddServer(0, "srv");
  const Tid tid = MakeTid(1);
  SeedLog(world, {LogRecord::Update(tid, "srv", "x", {1}, {2}),
                  LogRecord::Commit(tid, {})});
  world.site(0).log().CorruptDurableByte(13, /*mirror=*/0);
  RecoveryReport report = RunRecovery(world);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.families_committed, 1u);
  EXPECT_EQ(report.frames_salvaged, 1u);
  EXPECT_EQ(DurableValue(world, "srv", "x"), (Bytes{2}));
}

TEST(RecoveryTest, RestartMediaSweepRebuildsPageCheckpointedAway) {
  // A page whose updates sit in the PREVIOUS checkpoint interval is corrupted
  // after the checkpoint flushed it; redo alone cannot help (its records are
  // behind the replay start), so the restart media sweep must fall back past
  // the last checkpoint and rebuild it from the retained history.
  WorldConfig cfg = Quiet();
  cfg.log.checkpoint_generations_retained = 2;
  World world(cfg);
  world.AddServer(0, "srv");
  const Tid tid = MakeTid(1);
  SeedLog(world, {LogRecord::Update(tid, "srv", "x", {1}, {2}),
                  LogRecord::Commit(tid, {})});
  RunRecovery(world);  // Redo writes x=2 onto the data disk.
  auto checkpointed = world.RunSync([](World* w) -> Async<Status> {
    co_return co_await w->site(0).recovery().WriteCheckpoint();
  }(&world));
  ASSERT_TRUE(checkpointed.has_value());
  ASSERT_TRUE(checkpointed->ok()) << checkpointed->ToString();
  // The media rots the flushed page after the checkpoint.
  world.site(0).diskmgr().CorruptStoredPage("srv", "x");
  RecoveryReport report = RunRecovery(world);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.pages_repaired, 1u);
  EXPECT_EQ(report.repair_failures, 0u);
  EXPECT_EQ(DurableValue(world, "srv", "x"), (Bytes{2}));
}

TEST(RecoveryTest, RestartSweepCountsUnrebuildablePage) {
  // With only one checkpoint generation retained the history is reclaimed, so
  // the same damage is honestly reported as unrepairable (archive territory).
  World world(Quiet());
  world.AddServer(0, "srv");
  const Tid tid = MakeTid(1);
  SeedLog(world, {LogRecord::Update(tid, "srv", "x", {1}, {2}),
                  LogRecord::Commit(tid, {})});
  RunRecovery(world);
  auto checkpointed = world.RunSync([](World* w) -> Async<Status> {
    co_return co_await w->site(0).recovery().WriteCheckpoint();
  }(&world));
  ASSERT_TRUE(checkpointed.has_value() && checkpointed->ok());
  world.site(0).diskmgr().CorruptStoredPage("srv", "x");
  RecoveryReport report = RunRecovery(world);
  EXPECT_TRUE(report.status.ok());
  EXPECT_EQ(report.pages_repaired, 0u);
  EXPECT_EQ(report.repair_failures, 1u);
}

TEST(RecoveryTest, EmptyLogRecoversToNothing) {
  World world(Quiet());
  world.AddServer(0, "srv");
  RecoveryReport report = RunRecovery(world);
  EXPECT_EQ(report.records_replayed, 0u);
  EXPECT_EQ(report.families_committed + report.families_aborted + report.families_prepared +
                report.families_presumed,
            0u);
}

}  // namespace
}  // namespace camelot
