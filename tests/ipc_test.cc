// Tests for Site services, local IPC costs, remote RPC through the
// NetMsgServer (retransmission, duplicate suppression, crash behaviour),
// ComMan interposition hooks, and the name service.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>

#include "src/ipc/name_service.h"
#include "src/ipc/retry_budget.h"
#include "src/ipc/netmsg.h"
#include "src/ipc/site.h"
#include "src/net/network.h"
#include "src/sim/scheduler.h"

namespace camelot {
namespace {

NetConfig QuietNet() {
  NetConfig cfg;
  cfg.send_jitter_mean = 0;
  cfg.stall_probability = 0;
  cfg.receive_skew_mean = 0;
  return cfg;
}

struct Rig {
  explicit Rig(int n_sites = 2, NetConfig net_cfg = QuietNet(), uint64_t seed = 1)
      : sched(seed), net(sched, net_cfg) {
    for (int i = 0; i < n_sites; ++i) {
      sites.push_back(std::make_unique<Site>(sched, net, SiteId{static_cast<uint32_t>(i)},
                                             IpcConfig{}));
      nms.push_back(std::make_unique<NetMsgServer>(*sites.back(), net));
    }
  }
  Site& site(int i) { return *sites[i]; }
  NetMsgServer& netmsg(int i) { return *nms[i]; }

  Scheduler sched;
  Network net;
  std::vector<std::unique_ptr<Site>> sites;
  std::vector<std::unique_ptr<NetMsgServer>> nms;
};

Site::Handler EchoHandler() {
  return [](RpcContext, uint32_t method, Bytes body) -> Async<RpcResult> {
    ByteWriter w;
    w.U32(method * 2);
    w.Blob(body);
    co_return RpcResult{OkStatus(), w.Take()};
  };
}

TEST(SiteTest, LocalCallAppliesIpcCost) {
  Rig rig(1);
  rig.site(0).RegisterService("echo", EchoHandler());
  std::optional<SimTime> done_at;
  std::optional<RpcResult> result;
  rig.sched.Spawn([](Rig& r, std::optional<SimTime>* at,
                     std::optional<RpcResult>* out) -> Async<void> {
    Bytes payload;
    payload.push_back(9);
    *out = co_await r.site(0).CallLocal("echo", 21, std::move(payload), RpcContext{}, false);
    *at = r.sched.now();
  }(rig, &done_at, &result));
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.ok());
  ByteReader r(result->body);
  EXPECT_EQ(r.U32(), 42u);
  EXPECT_EQ(*done_at, Usec(1500));  // local_rpc, Table 2.
}

TEST(SiteTest, LocalCallToDataServerCostsMore) {
  Rig rig(1);
  rig.site(0).RegisterService("server:x", EchoHandler());
  std::optional<SimTime> done_at;
  rig.sched.Spawn([](Rig& r, std::optional<SimTime>* at) -> Async<void> {
    co_await r.site(0).CallLocal("server:x", 0, {}, RpcContext{}, true);
    *at = r.sched.now();
  }(rig, &done_at));
  rig.sched.RunUntilIdle();
  EXPECT_EQ(*done_at, Usec(3000));  // local_rpc_server, Table 2.
}

TEST(SiteTest, LargePayloadUsesOutOfLineCost) {
  Rig rig(1);
  rig.site(0).RegisterService("blob", EchoHandler());
  std::optional<SimTime> done_at;
  rig.sched.Spawn([](Rig& r, std::optional<SimTime>* at) -> Async<void> {
    co_await r.site(0).CallLocal("blob", 0, Bytes(2048, 0xaa), RpcContext{}, false);
    *at = r.sched.now();
  }(rig, &done_at));
  rig.sched.RunUntilIdle();
  EXPECT_EQ(*done_at, Usec(5500));  // local_out_of_line, Table 2.
}

TEST(SiteTest, MissingServiceReturnsNotFound) {
  Rig rig(1);
  std::optional<RpcResult> result;
  rig.sched.Spawn([](Rig& r, std::optional<RpcResult>* out) -> Async<void> {
    *out = co_await r.site(0).CallLocal("nope", 0, {}, RpcContext{}, false);
  }(rig, &result));
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status.code(), StatusCode::kNotFound);
}

TEST(NetMsgTest, RemoteRpcRoundTripsAndIsNear29Ms) {
  Rig rig;
  rig.site(1).RegisterService("echo", EchoHandler());
  std::optional<RpcResult> result;
  RpcTrace trace;
  rig.sched.Spawn([](Rig& r, std::optional<RpcResult>* out, RpcTrace* tr) -> Async<void> {
    Bytes payload;
    payload.push_back(1);
    payload.push_back(2);
    *out = co_await r.netmsg(0).Call(SiteId{1}, "echo", 5, std::move(payload), RpcContext{}, true,
                                     tr);
  }(rig, &result, &trace));
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.ok());
  ByteReader r(result->body);
  EXPECT_EQ(r.U32(), 10u);
  EXPECT_EQ(r.Blob(), (Bytes{1, 2}));
  // Two datagram trips (~8.2 each, jitter off) + ComMan 2x(1.6+0.75)x2 = ~25.8 ms.
  EXPECT_GT(trace.total, Usec(20000));
  EXPECT_LT(trace.total, Usec(32000));
  EXPECT_EQ(trace.comman_cpu, Usec(6400));
  EXPECT_EQ(trace.comman_ipc, Usec(3000));
  EXPECT_EQ(trace.server, 0);
}

TEST(NetMsgTest, WithoutComManInterpositionIsCheaper) {
  Rig rig;
  rig.site(1).RegisterService("echo", EchoHandler());
  RpcTrace with_cm;
  RpcTrace without_cm;
  rig.sched.Spawn([](Rig& r, RpcTrace* a, RpcTrace* b) -> Async<void> {
    co_await r.netmsg(0).Call(SiteId{1}, "echo", 0, {}, RpcContext{}, true, a);
    co_await r.netmsg(0).Call(SiteId{1}, "echo", 0, {}, RpcContext{}, false, b);
  }(rig, &with_cm, &without_cm));
  rig.sched.RunUntilIdle();
  EXPECT_EQ(with_cm.total - without_cm.total, Usec(9400));  // 3 + 2*3.2 ms extra.
  EXPECT_EQ(without_cm.comman_cpu, 0);
}

TEST(NetMsgTest, RetransmitsThroughLossyNetwork) {
  NetConfig cfg = QuietNet();
  cfg.loss_probability = 0.4;
  Rig rig(2, cfg, 77);
  for (auto& site : rig.sites) {
    // ~15 attempts per call (cap pins the exponential backoff at the base
    // interval): per-call failure odds are negligible even at 40% loss.
    site->mutable_ipc().rpc_retry_interval = Usec(200000);
    site->mutable_ipc().rpc_retry_cap = Usec(200000);
  }
  rig.site(1).RegisterService("echo", EchoHandler());
  int ok_count = 0;
  rig.sched.Spawn([](Rig& r, int* ok) -> Async<void> {
    for (int i = 0; i < 20; ++i) {
      RpcResult res = co_await r.netmsg(0).Call(SiteId{1}, "echo", 0, {}, RpcContext{}, true);
      if (res.status.ok()) {
        ++*ok;
      }
    }
  }(rig, &ok_count));
  rig.sched.RunUntilIdle();
  EXPECT_EQ(ok_count, 20);  // Reliability despite 40% loss.
}

TEST(NetMsgTest, DuplicateRequestsExecuteHandlerOnce) {
  NetConfig cfg = QuietNet();
  cfg.duplicate_probability = 1.0;  // Every datagram is doubled.
  Rig rig(2, cfg);
  int executions = 0;
  rig.site(1).RegisterService("count",
                              [&executions](RpcContext, uint32_t, Bytes) -> Async<RpcResult> {
                                ++executions;
                                co_return RpcResult{OkStatus(), {}};
                              });
  rig.sched.Spawn([](Rig& r) -> Async<void> {
    co_await r.netmsg(0).Call(SiteId{1}, "count", 0, {}, RpcContext{}, true);
  }(rig));
  rig.sched.RunUntilIdle();
  EXPECT_EQ(executions, 1);
}

TEST(NetMsgTest, PartitionedCallTimesOut) {
  Rig rig;
  rig.site(1).RegisterService("echo", EchoHandler());
  rig.net.SetPartition({{SiteId{0}}, {SiteId{1}}});
  std::optional<RpcResult> result;
  SimTime done_at = 0;
  rig.sched.Spawn([](Rig& r, std::optional<RpcResult>* out, SimTime* at) -> Async<void> {
    *out = co_await r.netmsg(0).Call(SiteId{1}, "echo", 0, {}, RpcContext{}, true);
    *at = r.sched.now();
  }(rig, &result, &done_at));
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status.code(), StatusCode::kTimedOut);
  EXPECT_GE(done_at, IpcConfig{}.rpc_timeout);
}

TEST(NetMsgTest, DestinationCrashMidHandlerMeansTimeout) {
  Rig rig;
  rig.site(1).RegisterService("slow", [&rig](RpcContext, uint32_t, Bytes) -> Async<RpcResult> {
    co_await rig.sched.Delay(Sec(10));  // Longer than the crash point below.
    co_return RpcResult{OkStatus(), {}};
  });
  std::optional<RpcResult> result;
  rig.sched.Spawn([](Rig& r, std::optional<RpcResult>* out) -> Async<void> {
    *out = co_await r.netmsg(0).Call(SiteId{1}, "slow", 0, {}, RpcContext{}, true);
  }(rig, &result));
  rig.sched.Post(Usec(50000), [&] { rig.site(1).Crash(); });
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status.code(), StatusCode::kTimedOut);
}

TEST(NetMsgTest, ComManHooksSeeRequestAndResponse) {
  Rig rig;
  const Tid tid{FamilyId{SiteId{0}, 1}, 0, 0};
  std::optional<SiteId> seen_caller;
  std::optional<Bytes> ingested;
  rig.netmsg(1).set_request_ingest([&](const Tid& t, SiteId caller) {
    EXPECT_EQ(t, tid);
    seen_caller = caller;
  });
  rig.netmsg(1).set_response_decorator([](const Tid&) { return Bytes{0xca, 0xfe}; });
  rig.netmsg(0).set_response_ingest([&](const Tid& t, const Bytes& piggy, SiteId responder,
                                        uint32_t incarnation) {
    EXPECT_EQ(t, tid);
    EXPECT_EQ(responder, SiteId{1});
    EXPECT_EQ(incarnation, 0u);
    ingested = piggy;
  });
  rig.site(1).RegisterService("echo", EchoHandler());
  rig.sched.Spawn([](Rig& r, Tid t) -> Async<void> {
    co_await r.netmsg(0).Call(SiteId{1}, "echo", 0, {}, RpcContext{kInvalidSite, t}, true);
  }(rig, tid));
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(seen_caller.has_value());
  EXPECT_EQ(*seen_caller, SiteId{0});
  ASSERT_TRUE(ingested.has_value());
  EXPECT_EQ(*ingested, (Bytes{0xca, 0xfe}));
}

TEST(NameServiceTest, RegisterResolveUnregister) {
  NameService names;
  EXPECT_TRUE(names.Register("server:a", SiteId{3}).ok());
  EXPECT_EQ(names.Register("server:a", SiteId{4}).code(), StatusCode::kAlreadyExists);
  auto r = names.Resolve("server:a");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, SiteId{3});
  names.Unregister("server:a");
  EXPECT_EQ(names.Resolve("server:a").status().code(), StatusCode::kNotFound);
}

TEST(NetMsgTest, LostResponseBurstsRetransmitOutOfLockstep) {
  // Regression: the fixed-interval retransmit loop made every caller that
  // lost a response retransmit at the same instants — a synchronized wave
  // that re-overloads the receiver. With capped jittered exponential
  // backoff, two callers that start together must drift apart.
  NetConfig cfg = QuietNet();
  cfg.loss_probability = 1.0;  // Nothing gets through; every call retransmits
                               // until its timeout.
  Rig rig(3, cfg, 9);
  for (auto& site : rig.sites) {
    // Short base gap: several doublings fit inside the RPC timeout.
    site->mutable_ipc().rpc_retry_interval = Usec(100000);
  }
  rig.site(2).RegisterService("echo", EchoHandler());
  for (int i = 0; i < 2; ++i) {
    rig.sched.Spawn([](Rig& r, int from) -> Async<void> {
      co_await r.netmsg(from).Call(SiteId{2}, "echo", 0, {}, RpcContext{}, true);
    }(rig, i));
  }
  rig.sched.RunUntilIdle();
  const auto& a = rig.netmsg(0).retransmit_times();
  const auto& b = rig.netmsg(1).retransmit_times();
  ASSERT_GE(a.size(), 2u);
  ASSERT_GE(b.size(), 2u);
  // Both callers started at t=0; without jitter their retransmit instants
  // would be identical. Require that they never coincide after the first.
  size_t coincident = 0;
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (a[i] == b[i]) {
      ++coincident;
    }
  }
  EXPECT_EQ(coincident, 0u) << "retransmit waves are synchronized";
  // And the gaps grow: the last gap must exceed the first (exponential).
  ASSERT_GE(a.size(), 3u);
  EXPECT_GT(a[a.size() - 1] - a[a.size() - 2], a[1] - a[0]);
}

TEST(NetMsgTest, RetryBudgetSuppressesRetransmits) {
  NetConfig cfg = QuietNet();
  cfg.loss_probability = 1.0;
  Rig rig(2, cfg, 3);
  // Half a token per call, spend one per retransmit: the first call's
  // retransmits are all suppressed (0.5 < 1).
  rig.site(0).mutable_ipc().rpc_retry_budget_ratio = 0.5;
  rig.site(0).mutable_ipc().rpc_retry_budget_cap = 10;
  rig.site(1).RegisterService("echo", EchoHandler());
  rig.sched.Spawn([](Rig& r) -> Async<void> {
    co_await r.netmsg(0).Call(SiteId{1}, "echo", 0, {}, RpcContext{}, true);
  }(rig));
  rig.sched.RunUntilIdle();
  EXPECT_EQ(rig.netmsg(0).retransmits(), 0u);
  EXPECT_GE(rig.netmsg(0).retransmits_suppressed(), 1u);
}

TEST(RetryBudgetTest, TokenBucketEarnsAndSpends) {
  RetryBudget budget(0.5, 2.0);
  EXPECT_FALSE(budget.unlimited());
  EXPECT_FALSE(budget.TryRetry());  // No tokens yet.
  budget.OnAttempt();
  budget.OnAttempt();  // 1.0 token.
  EXPECT_TRUE(budget.TryRetry());
  EXPECT_FALSE(budget.TryRetry());  // Spent.
  for (int i = 0; i < 10; ++i) {
    budget.OnAttempt();  // Capped at 2.0, not 5.0.
  }
  EXPECT_TRUE(budget.TryRetry());
  EXPECT_TRUE(budget.TryRetry());
  EXPECT_FALSE(budget.TryRetry());
  EXPECT_EQ(budget.suppressed(), 3u);

  RetryBudget unlimited(0, 0);
  EXPECT_TRUE(unlimited.unlimited());
  EXPECT_TRUE(unlimited.TryRetry());
}

TEST(NameServiceTest, LookupCostsOneLocalIpc) {
  Rig rig(1);
  NameService names;
  ASSERT_TRUE(names.Register("svc", SiteId{0}).ok());
  SimTime done_at = 0;
  rig.sched.Spawn([](Rig& r, NameService& n, SimTime* at) -> Async<void> {
    auto res = co_await n.Lookup(r.site(0), "svc");
    EXPECT_TRUE(res.ok());
    *at = r.sched.now();
  }(rig, names, &done_at));
  rig.sched.RunUntilIdle();
  EXPECT_EQ(done_at, Usec(1500));
}

}  // namespace
}  // namespace camelot
