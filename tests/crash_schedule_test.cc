// Crash-schedule exploration: discovery, exhaustive single-crash sweeps under
// both commit protocols, crash-during-recovery sweeps, determinism, and
// environment-variable replay (see src/harness/crash_explorer.h).
//
// Every failing run is reported with a one-line replay recipe; rerun it with
//   CAMELOT_SEED=<s> CAMELOT_PROTOCOL=<2pc|2pc-unopt|2pc-int|nbc|paxos>
//   [CAMELOT_F=<f>] CAMELOT_SCHEDULE='<schedule>'
//   ./crash_schedule_test --gtest_filter='*ReplaysScheduleFromEnvironment*'
// which reproduces the identical event trace and prints it.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/harness/crash_explorer.h"
#include "src/harness/replay.h"

namespace camelot {
namespace {

ExplorerConfig Config(bool non_blocking, uint64_t seed = 1) {
  ExplorerConfig cfg;
  cfg.non_blocking = non_blocking;
  cfg.seed = seed;
  return cfg;
}

ExplorerConfig PaxosConfig(uint32_t f = 1, uint64_t seed = 1) {
  ExplorerConfig cfg;
  cfg.variant = CommitOptions::Paxos(f);
  cfg.seed = seed;
  return cfg;
}

void ReportFailures(const std::vector<SweepFailure>& failures) {
  for (const SweepFailure& f : failures) {
    ADD_FAILURE() << "schedule " << f.schedule.ToString() << " violated the oracle:\n"
                  << f.result.Explain() << "  replay: " << f.result.replay;
  }
}

bool Has(const std::vector<DiscoveredPoint>& discovered, const char* point, uint32_t site) {
  for (const DiscoveredPoint& d : discovered) {
    if (d.point == point && d.site.value == site) {
      return true;
    }
  }
  return false;
}

// --- Instrumentation-rot guard ----------------------------------------------------
//
// If someone reworks a commit path and forgets to re-weave its failpoints, the
// explorer silently stops exploring that path. These tests pin the expected
// point set for a 3-site transfer workload under each protocol.

TEST(CrashScheduleDiscovery, FindsTheTwoPhaseInstrumentation) {
  auto d = CrashExplorer(Config(/*non_blocking=*/false)).Discover();
  // Coordinator (site 0).
  EXPECT_TRUE(Has(d, "tm.send.PREPARE", 0));
  EXPECT_TRUE(Has(d, "tm.send.COMMIT", 0));
  EXPECT_TRUE(Has(d, "tm.2pc.commit_force.before", 0));
  EXPECT_TRUE(Has(d, "tm.2pc.commit_force.after", 0));
  EXPECT_TRUE(Has(d, "tm.committed", 0));
  EXPECT_TRUE(Has(d, "wal.force.before_write", 0));
  EXPECT_TRUE(Has(d, "wal.force.after_write", 0));
  // Subordinates (sites 1 and 2).
  for (uint32_t sub = 1; sub <= 2; ++sub) {
    EXPECT_TRUE(Has(d, "tm.sub.prepare_force.before", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.sub.prepare_force.after", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.prepared", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.send.VOTE", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.sub.ack_force.before", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.committed", sub)) << sub;
    EXPECT_TRUE(Has(d, "disk.read", sub)) << sub;
  }
}

TEST(CrashScheduleDiscovery, FindsTheNonBlockingInstrumentation) {
  auto d = CrashExplorer(Config(/*non_blocking=*/true)).Discover();
  // The three coordinator forces of the paper's non-blocking protocol.
  EXPECT_TRUE(Has(d, "tm.nbc.prepare_force.before", 0));
  EXPECT_TRUE(Has(d, "tm.nbc.prepare_force.after", 0));
  EXPECT_TRUE(Has(d, "tm.nbc.replicate_force.before", 0));
  EXPECT_TRUE(Has(d, "tm.nbc.commit_force.before", 0));
  EXPECT_TRUE(Has(d, "tm.nbc.commit_force.after", 0));
  EXPECT_TRUE(Has(d, "tm.prepared", 0));
  EXPECT_TRUE(Has(d, "tm.send.REPLICATE", 0));
  // Subordinates force a replication record and acknowledge it.
  for (uint32_t sub = 1; sub <= 2; ++sub) {
    EXPECT_TRUE(Has(d, "tm.accept.replicate_force.before", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.accept.replicate_force.after", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.send.REPLICATE-ACK", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.sub.prepare_force.before", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.prepared", sub)) << sub;
  }
}

// The 3-transfer bank workload under Paxos F = 1 mixes both shapes: the two
// transfers that touch the coordinator's own vault have a single remote
// participant, so the acceptor set clamps to one and they collapse to the
// optimized two-phase path (Gray & Lamport's degenerate case, visible as
// tm.2pc.commit_force at the coordinator); the one three-site transfer runs
// real Paxos Commit — a ballot-0 accept force at every acceptor and
// PAXOS-ACCEPTED datagrams back to the leader.
TEST(CrashScheduleDiscovery, FindsThePaxosInstrumentation) {
  auto d = CrashExplorer(PaxosConfig()).Discover();
  // Coordinator (site 0): leader accept plus the degenerate 2PC commits.
  EXPECT_TRUE(Has(d, "tm.send.PREPARE", 0));
  EXPECT_TRUE(Has(d, "tm.send.VOTE", 0));
  EXPECT_TRUE(Has(d, "tm.paxos.accept_force.before", 0));
  EXPECT_TRUE(Has(d, "tm.paxos.accept_force.after", 0));
  EXPECT_TRUE(Has(d, "tm.2pc.commit_force.after", 0));
  EXPECT_TRUE(Has(d, "tm.send.COMMIT", 0));
  EXPECT_TRUE(Has(d, "tm.prepared", 0));
  EXPECT_TRUE(Has(d, "tm.committed", 0));
  // Subordinate acceptors (sites 1 and 2): prepare, vote, ballot-0 accept,
  // and the accepted notification back to the coordinator.
  for (uint32_t sub = 1; sub <= 2; ++sub) {
    EXPECT_TRUE(Has(d, "tm.sub.prepare_force.before", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.prepared", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.send.VOTE", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.paxos.accept_force.before", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.paxos.accept_force.after", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.send.PAXOS-ACCEPTED", sub)) << sub;
    EXPECT_TRUE(Has(d, "tm.committed", sub)) << sub;
  }
}

// --- Exhaustive single-crash sweeps -----------------------------------------------
//
// The acceptance property: crash at EVERY discovered (point, site, hit), heal,
// and the atomicity oracle must hold — money conserved, observers agree,
// client-visible OK commits durable, nothing leaked, recovery idempotent.

// The fault-free run is also the explorers' conformance gate: with no faults
// injected, the workload's summed primitive counts must equal the static
// analysis's prediction exactly (see DESIGN.md, "Primitive-cost conformance").
TEST(CrashScheduleSweep, FaultFreeRunPassesConformanceGate) {
  for (const CommitOptions& options :
       {CommitOptions::Optimized(), CommitOptions::Unoptimized(),
        CommitOptions::Intermediate(), CommitOptions::NonBlocking(),
        CommitOptions::Paxos(0), CommitOptions::Paxos(1)}) {
    ExplorerConfig cfg;
    cfg.variant = options;
    const RunResult result = CrashExplorer(cfg).Run(CrashSchedule{});
    EXPECT_TRUE(result.ok) << ProtocolName(options) << ": " << result.Explain();
  }
}

TEST(CrashScheduleSweep, ExhaustiveSingleCrashSweepPassesOracle_TwoPhase) {
  int runs = 0;
  ReportFailures(CrashExplorer(Config(/*non_blocking=*/false))
                     .ExhaustiveSingleCrashSweep(/*max_hits_per_point=*/0, &runs));
  EXPECT_GE(runs, 60) << "suspiciously few runs: instrumentation rot?";
}

TEST(CrashScheduleSweep, ExhaustiveSingleCrashSweepPassesOracle_NonBlocking) {
  int runs = 0;
  ReportFailures(CrashExplorer(Config(/*non_blocking=*/true))
                     .ExhaustiveSingleCrashSweep(/*max_hits_per_point=*/0, &runs));
  EXPECT_GE(runs, 100) << "suspiciously few runs: instrumentation rot?";
}

TEST(CrashScheduleSweep, ExhaustiveSingleCrashSweepPassesOracle_Paxos) {
  int runs = 0;
  ReportFailures(
      CrashExplorer(PaxosConfig()).ExhaustiveSingleCrashSweep(/*max_hits_per_point=*/0, &runs));
  EXPECT_GE(runs, 85) << "suspiciously few runs: instrumentation rot?";
}

// The acceptance-criterion double crash: coordinator AND one acceptor die
// together under F = 1 (2F + 1 = 3 acceptors tolerate exactly one). The
// surviving acceptor pair must still reach a decision — blocked families are
// resolved by leader takeover at a promoted ballot — and the atomicity,
// leak, and isolation oracles must all hold after heal.
TEST(CrashScheduleSweep, CoordinatorPlusAcceptorDoubleCrashSweep_Paxos) {
  CrashExplorer ex(PaxosConfig());
  const char* coordinator_points[] = {
      "tm.paxos.prepare_force.after", "tm.send.PREPARE", "tm.paxos.accept_force.after",
      "tm.send.COMMIT", "tm.committed"};
  const char* acceptor_points[] = {
      "tm.sub.prepare_force.after", "tm.send.VOTE", "tm.paxos.accept_force.before",
      "tm.paxos.accept_force.after", "tm.send.PAXOS-ACCEPTED"};
  int runs = 0;
  for (const char* cp : coordinator_points) {
    for (const char* ap : acceptor_points) {
      CrashSchedule schedule;
      schedule.entries.push_back({cp, SiteId{0}, 1, FailpointAction::kCrash, 0});
      schedule.entries.push_back({ap, SiteId{1}, 1, FailpointAction::kCrash, 0});
      const RunResult result = ex.Run(schedule);
      ++runs;
      EXPECT_TRUE(result.ok) << "schedule " << schedule.ToString()
                             << " violated the oracle:\n"
                             << result.Explain() << "  replay: " << result.replay;
    }
  }
  EXPECT_EQ(runs, 25);
}

// --- Crash during recovery --------------------------------------------------------
//
// A base crash forces a real restart; the sweep then crashes the site AGAIN at
// every recovery.* point that restart evaluates (mid-redo, mid-undo, mid media
// sweep). Recovery must be idempotent across the interrupted passes.

TEST(CrashScheduleSweep, CrashDuringRecoverySweep_TwoPhase) {
  CrashExplorer ex(Config(/*non_blocking=*/false));
  int runs = 0;
  // Coordinator dies with its commit record durable: restart must redo and
  // resume phase 2 — and survive being crashed again at each recovery point.
  ReportFailures(ex.RecoverySweep(
      {"tm.2pc.commit_force.after", SiteId{0}, 1, FailpointAction::kCrash, 0}, &runs));
  EXPECT_GE(runs, 4) << "the base crash discovered no recovery points";

  // A prepared subordinate dies: restart re-takes its locks and re-parks it.
  ReportFailures(ex.RecoverySweep(
      {"tm.sub.prepare_force.after", SiteId{1}, 1, FailpointAction::kCrash, 0}, &runs));
  EXPECT_GE(runs, 4);
}

TEST(CrashScheduleSweep, CrashDuringRecoverySweep_NonBlocking) {
  CrashExplorer ex(Config(/*non_blocking=*/true));
  int runs = 0;
  ReportFailures(ex.RecoverySweep(
      {"tm.nbc.commit_force.after", SiteId{0}, 1, FailpointAction::kCrash, 0}, &runs));
  EXPECT_GE(runs, 4) << "the base crash discovered no recovery points";
}

TEST(CrashScheduleSweep, CrashDuringRecoverySweep_Paxos) {
  CrashExplorer ex(PaxosConfig());
  int runs = 0;
  // The coordinator dies with its ballot-0 accept durable but the commit
  // record only spooled: restart must rebuild the family from the
  // replication record and the takeover protocol must converge — and survive
  // being crashed again at each recovery point.
  ReportFailures(ex.RecoverySweep(
      {"tm.paxos.accept_force.after", SiteId{0}, 1, FailpointAction::kCrash, 0}, &runs));
  EXPECT_GE(runs, 4) << "the base crash discovered no recovery points";
}

// --- Determinism ------------------------------------------------------------------

TEST(CrashScheduleDeterminism, SameSeedAndScheduleReproduceIdenticalTrace) {
  for (const bool non_blocking : {false, true}) {
    CrashExplorer ex(Config(non_blocking));
    const char* text = non_blocking ? "tm.nbc.replicate_force.before@0#1=crash"
                                    : "tm.2pc.commit_force.before@0#1=crash";
    const auto schedule = CrashSchedule::Parse(text);
    ASSERT_TRUE(schedule.ok());
    const RunResult r1 = ex.Run(*schedule, /*record=*/true);
    const RunResult r2 = ex.Run(*schedule, /*record=*/true);
    EXPECT_FALSE(r1.trace.empty());
    EXPECT_EQ(r1.trace, r2.trace) << "protocol " << (non_blocking ? "nbc" : "2pc")
                                  << ": replay diverged — determinism is broken";
    EXPECT_EQ(r1.ok, r2.ok);
  }
}

// --- Environment-variable replay --------------------------------------------------
//
// The recipe printed by every sweep failure targets this test: it rebuilds the
// exact run (seed + protocol + schedule), prints the full event trace, and
// applies the oracle.

TEST(CrashScheduleReplay, ReplaysScheduleFromEnvironment) {
  const char* schedule_text = std::getenv("CAMELOT_SCHEDULE");
  if (schedule_text == nullptr) {
    GTEST_SKIP() << "set CAMELOT_SEED / CAMELOT_PROTOCOL / CAMELOT_SCHEDULE to replay";
  }
  ExplorerConfig cfg;
  if (const char* seed = std::getenv("CAMELOT_SEED")) {
    cfg.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* protocol = std::getenv("CAMELOT_PROTOCOL")) {
    auto options = ParseProtocolName(protocol);
    ASSERT_TRUE(options.ok()) << "CAMELOT_PROTOCOL: " << options.status().message();
    cfg.variant = ApplyPaxosFFromEnv(*options);
  }
  if (std::getenv("CAMELOT_TRACE") != nullptr) {
    SetTraceLevel(TraceLevel::kDebug);  // Protocol-level sim tracing too.
  }
  const auto schedule = CrashSchedule::Parse(schedule_text);
  ASSERT_TRUE(schedule.ok()) << schedule.status().message();
  const RunResult result = CrashExplorer(cfg).Run(*schedule, /*record=*/true);
  for (const std::string& line : result.trace) {
    std::printf("%s\n", line.c_str());
  }
  EXPECT_TRUE(result.ok) << result.Explain() << "  replay: " << result.replay;
}

}  // namespace
}  // namespace camelot
