// End-to-end transaction manager tests in a live multi-site world: local and
// distributed commits, the 2PC variants, read-only optimization, aborts,
// nesting, and latency sanity against the paper's numbers.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "src/harness/world.h"

namespace camelot {
namespace {

WorldConfig QuietConfig(int sites = 2, uint64_t seed = 1) {
  WorldConfig cfg;
  cfg.site_count = sites;
  cfg.seed = seed;
  cfg.net.send_jitter_mean = 0;
  cfg.net.stall_probability = 0;  // Deterministic latencies for exact assertions.
  cfg.net.receive_skew_mean = 0;
  return cfg;
}

// A world with one "server:N" data server per site, each holding "acct" = 100.
struct Rig {
  explicit Rig(WorldConfig cfg = QuietConfig()) : world(cfg), app(world.site(0)) {
    for (int i = 0; i < world.site_count(); ++i) {
      DataServer* server = world.AddServer(i, ServerName(i));
      server->CreateObjectForSetup("acct", EncodeInt64(100));
    }
  }
  static std::string ServerName(int i) { return "server:" + std::to_string(i); }
  DataServer* server(int i) { return world.site(i).server(ServerName(i)); }

  World world;
  AppClient app;
};

// The paper's minimal transaction: one small operation per involved site.
Async<Status> MinimalTxn(AppClient& app, int n_sites, bool write,
                         CommitOptions options = CommitOptions::Optimized()) {
  auto begin = co_await app.Begin();
  if (!begin.ok()) {
    co_return begin.status();
  }
  const Tid tid = *begin;
  for (int i = 0; i < n_sites; ++i) {
    const std::string server = Rig::ServerName(i);
    if (write) {
      auto v = co_await app.ReadInt(tid, server, "acct");
      if (!v.ok()) {
        co_return v.status();
      }
      Status w = co_await app.WriteInt(tid, server, "acct", *v + 1);
      if (!w.ok()) {
        co_return w;
      }
    } else {
      auto v = co_await app.ReadInt(tid, server, "acct");
      if (!v.ok()) {
        co_return v.status();
      }
    }
  }
  Status st = co_await app.Commit(tid, options);
  co_return st;
}

TEST(TranManTest, LocalUpdateCommitsAndPersists) {
  Rig rig;
  auto status = rig.world.RunSync(MinimalTxn(rig.app, 1, /*write=*/true));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->ToString();
  // Flush everything and check the durable image.
  rig.world.RunSync([](DiskManager& d) -> Async<bool> {
    co_await d.FlushAll();
    co_return true;
  }(rig.world.site(0).diskmgr()));
  auto value = rig.server(0)->PeekDurable("acct");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(DecodeInt64(*value), 101);
  EXPECT_EQ(rig.world.site(0).tranman().counters().committed, 1u);
  // All locks dropped.
  EXPECT_EQ(rig.server(0)->locks().held_lock_count(), 0u);
}

TEST(TranManTest, LocalUpdateLatencyIsNearPaper24_5ms) {
  Rig rig;
  // Warm the buffer pool so the timed run has no disk faults, as in the paper
  // (they report steady-state latencies).
  rig.world.RunSync(MinimalTxn(rig.app, 1, true));
  const SimTime start = rig.world.sched().now();
  auto status = rig.world.RunSync(MinimalTxn(rig.app, 1, true));
  // Measure to when Commit returned, not including post-commit lock drops —
  // approximate by transaction-manager bookkeeping below being small.
  const double ms = ToMs(rig.world.sched().now() - start);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok());
  // Paper: 24.5 static, 31 measured. Ours should land in that neighbourhood
  // (the RunUntilIdle drain includes the off-path lock drops, a couple ms).
  EXPECT_GT(ms, 20.0);
  EXPECT_LT(ms, 40.0);
}

TEST(TranManTest, LocalReadCommitsWithNoLogWrites) {
  Rig rig;
  const uint64_t appends_before = rig.world.site(0).log().counters().appends;
  auto status = rig.world.RunSync(MinimalTxn(rig.app, 1, /*write=*/false));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok());
  EXPECT_EQ(rig.world.site(0).log().counters().appends, appends_before);
  EXPECT_EQ(rig.world.site(0).log().counters().disk_writes, 0u);
}

TEST(TranManTest, DistributedUpdateCommitsOnAllSites) {
  Rig rig(QuietConfig(3));
  auto status = rig.world.RunSync(MinimalTxn(rig.app, 3, true));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->ToString();
  for (int i = 0; i < 3; ++i) {
    rig.world.RunSync([](DiskManager& d) -> Async<bool> {
      co_await d.FlushAll();
      co_return true;
    }(rig.world.site(i).diskmgr()));
    auto value = rig.server(i)->PeekDurable("acct");
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(DecodeInt64(*value), 101) << "site " << i;
    EXPECT_EQ(rig.server(i)->locks().held_lock_count(), 0u) << "site " << i;
  }
  // Coordinator committed + both subordinates committed.
  EXPECT_EQ(rig.world.site(1).tranman().counters().committed, 1u);
  EXPECT_EQ(rig.world.site(2).tranman().counters().committed, 1u);
  // Presumed-abort epilogue ran: nobody retains live state.
  EXPECT_EQ(rig.world.site(0).tranman().live_family_count(), 0u);
}

TEST(TranManTest, OptimizedVariantDropsSubordinateLocksEarlier) {
  // The Section 3.2 claim: the optimized subordinate drops its locks BEFORE
  // writing a commit record, so locks are released one log force (15 ms)
  // earlier than in the unoptimized protocol.
  auto lock_release_time = [](CommitOptions options) {
    Rig rig(QuietConfig(2));
    rig.world.sched().Spawn([](AppClient& app, CommitOptions opts) -> Async<void> {
      co_await MinimalTxn(app, 2, true, opts);
    }(rig.app, options));
    // Poll the subordinate's lock table every 0.2 ms until it empties.
    SimTime released_at = 0;
    bool saw_locks = false;
    DataServer* sub = rig.server(1);
    Scheduler& sched = rig.world.sched();
    std::function<void()> poll = [&] {
      const size_t held = sub->locks().held_lock_count();
      if (held > 0) {
        saw_locks = true;
      }
      if (saw_locks && held == 0 && released_at == 0) {
        released_at = sched.now();
        return;
      }
      sched.Post(Usec(200), poll);
    };
    sched.Post(Usec(200), poll);
    rig.world.RunUntilIdle();
    EXPECT_TRUE(saw_locks);
    EXPECT_GT(released_at, 0);
    return released_at;
  };
  const SimTime optimized = lock_release_time(CommitOptions::Optimized());
  const SimTime unoptimized = lock_release_time(CommitOptions::Unoptimized());
  // One 15 ms log force earlier (the critical-path difference).
  EXPECT_GE(unoptimized - optimized, Usec(14000));
  EXPECT_LE(unoptimized - optimized, Usec(18000));
}

TEST(TranManTest, OptimizedVariantSavesSubordinateForcesUnderMixedLoad) {
  // The paper's throughput claim (Section 3.2): "throughput at the subordinate
  // is improved because fewer log forces are required. The amount of
  // improvement is dependent upon the fraction of transactions that require
  // distributed commitment." The lazy commit record rides a LATER force that
  // was happening anyway — here, the subordinate's own local transactions.
  auto sub_disk_writes = [](CommitOptions options) {
    WorldConfig cfg = QuietConfig(2);
    cfg.log.group_commit = false;  // Make every dedicated force visible.
    Rig rig(cfg);
    rig.server(1)->CreateObjectForSetup("local", EncodeInt64(0));
    // Background: the subordinate site runs a FIXED number of local update
    // transactions (fixed so both variants do identical background work and
    // the write counts are directly comparable).
    AppClient local_app(rig.world.site(1));
    rig.world.sched().Spawn([](AppClient& app, Scheduler& sched) -> Async<void> {
      for (int i = 0; i < 40; ++i) {
        auto begin = co_await app.Begin();
        co_await app.WriteInt(*begin, Rig::ServerName(1), "local", i);
        co_await app.Commit(*begin);
        co_await sched.Delay(Usec(5000));
      }
    }(local_app, rig.world.sched()));
    // Foreground: distributed transactions from site 0, serialized.
    auto result = rig.world.RunSync([](AppClient& app, CommitOptions opts) -> Async<int> {
      int ok = 0;
      for (int i = 0; i < 5; ++i) {
        Status st = co_await MinimalTxn(app, 2, true, opts);
        if (st.ok()) {
          ++ok;
        }
      }
      co_return ok;
    }(rig.app, options));
    EXPECT_EQ(result.value_or(0), 5);
    return rig.world.site(1).log().counters().disk_writes;
  };
  const uint64_t optimized = sub_disk_writes(CommitOptions::Optimized());
  const uint64_t unoptimized = sub_disk_writes(CommitOptions::Unoptimized());
  // Unoptimized pays a dedicated commit-record force per distributed txn; the
  // optimized lazy record is covered by the background traffic's forces.
  EXPECT_LE(optimized + 4, unoptimized);
}

TEST(TranManTest, ReadOnlySubordinateWritesNoLogRecords) {
  Rig rig(QuietConfig(2));
  // Write locally, read remotely: the subordinate is read-only.
  auto status = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto begin = co_await app.Begin();
    const Tid tid = *begin;
    co_await app.WriteInt(tid, Rig::ServerName(0), "acct", 55);
    auto remote = co_await app.ReadInt(tid, Rig::ServerName(1), "acct");
    EXPECT_TRUE(remote.ok());
    Status st = co_await app.Commit(tid);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->ToString();
  EXPECT_EQ(rig.world.site(1).log().counters().appends, 0u);
  EXPECT_EQ(rig.world.site(1).tranman().counters().read_only_votes, 1u);
  EXPECT_EQ(rig.server(1)->locks().held_lock_count(), 0u);
}

TEST(TranManTest, EntirelyReadOnlyDistributedTxnNeedsNoLogAnywhere) {
  Rig rig(QuietConfig(3));
  auto status = rig.world.RunSync(MinimalTxn(rig.app, 3, /*write=*/false));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.world.site(i).log().counters().appends, 0u) << "site " << i;
  }
}

TEST(TranManTest, UserAbortUndoesAllSites) {
  Rig rig(QuietConfig(2));
  auto status = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto begin = co_await app.Begin();
    const Tid tid = *begin;
    co_await app.WriteInt(tid, Rig::ServerName(0), "acct", 1);
    co_await app.WriteInt(tid, Rig::ServerName(1), "acct", 2);
    Status st = co_await app.Abort(tid);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok());
  for (int i = 0; i < 2; ++i) {
    // Read back transactionally: values restored to 100.
    auto read_back = rig.world.RunSync([](AppClient& app, int site) -> Async<int64_t> {
      auto begin = co_await app.Begin();
      auto v = co_await app.ReadInt(*begin, Rig::ServerName(site), "acct");
      co_await app.Commit(*begin);
      co_return v.value_or(-1);
    }(rig.app, i));
    ASSERT_TRUE(read_back.has_value());
    EXPECT_EQ(*read_back, 100) << "site " << i;
    EXPECT_EQ(rig.server(i)->locks().held_lock_count(), 0u);
  }
}

TEST(TranManTest, VoteNoAbortsTheWholeTransaction) {
  Rig rig(QuietConfig(2));
  rig.server(1)->InjectVoteNo(1);
  auto status = rig.world.RunSync(MinimalTxn(rig.app, 2, true));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->code(), StatusCode::kAborted);
  // Both sites rolled back.
  auto read_back = rig.world.RunSync([](AppClient& app) -> Async<int64_t> {
    auto begin = co_await app.Begin();
    auto v = co_await app.ReadInt(*begin, Rig::ServerName(0), "acct");
    co_await app.Commit(*begin);
    co_return v.value_or(-1);
  }(rig.app));
  EXPECT_EQ(*read_back, 100);
}

TEST(TranManTest, MoneyConservedAcrossTransfer) {
  Rig rig(QuietConfig(2));
  auto status = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto begin = co_await app.Begin();
    const Tid tid = *begin;
    auto a = co_await app.ReadInt(tid, Rig::ServerName(0), "acct");
    auto b = co_await app.ReadInt(tid, Rig::ServerName(1), "acct");
    co_await app.WriteInt(tid, Rig::ServerName(0), "acct", *a - 30);
    co_await app.WriteInt(tid, Rig::ServerName(1), "acct", *b + 30);
    Status st = co_await app.Commit(tid);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(status.has_value() && status->ok());
  auto sum = rig.world.RunSync([](AppClient& app) -> Async<int64_t> {
    auto begin = co_await app.Begin();
    auto a = co_await app.ReadInt(*begin, Rig::ServerName(0), "acct");
    auto b = co_await app.ReadInt(*begin, Rig::ServerName(1), "acct");
    co_await app.Commit(*begin);
    co_return *a + *b;
  }(rig.app));
  EXPECT_EQ(*sum, 200);
}

TEST(TranManTest, NonBlockingCommitWorksAndForcesTwicePerSite) {
  Rig rig(QuietConfig(2));
  auto status = rig.world.RunSync(MinimalTxn(rig.app, 2, true, CommitOptions::NonBlocking()));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->ToString();
  // Coordinator: prepare + replication + commit forced? Paper: coordinator
  // forces prepare and commit (its replication record travels with prepare
  // data; ours is separate but batched with the commit in wall-clock).
  // Subordinate: prepare + replication forced; commit record lazy.
  const auto& sub_log = rig.world.site(1).log().counters();
  EXPECT_GE(sub_log.disk_writes, 2u);
  EXPECT_LE(sub_log.disk_writes, 3u);  // +1 lazy commit-record write in idle world.
  // Tombstones retained (change 4), but no live protocol state.
  EXPECT_EQ(rig.world.site(0).tranman().live_family_count(), 0u);
  EXPECT_EQ(rig.world.site(1).tranman().live_family_count(), 0u);
}

TEST(TranManTest, NonBlockingReadOnlyMatchesTwoPhaseShape) {
  Rig rig(QuietConfig(2));
  auto status = rig.world.RunSync(MinimalTxn(rig.app, 2, false, CommitOptions::NonBlocking()));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok());
  // Read-only: no forced records anywhere.
  EXPECT_EQ(rig.world.site(0).log().counters().disk_writes, 0u);
  EXPECT_EQ(rig.world.site(1).log().counters().disk_writes, 0u);
}

TEST(TranManTest, NestedCommitMergesIntoParent) {
  Rig rig(QuietConfig(1));
  auto result = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto top = co_await app.Begin();
    const Tid parent = *top;
    auto nested = co_await app.Begin(parent);
    if (!nested.ok()) {
      co_return nested.status();
    }
    co_await app.WriteInt(*nested, Rig::ServerName(0), "acct", 500);
    Status nc = co_await app.Commit(*nested);  // Nested commit.
    if (!nc.ok()) {
      co_return nc;
    }
    // Parent can see and overwrite the child's work (lock inherited).
    auto v = co_await app.ReadInt(parent, Rig::ServerName(0), "acct");
    EXPECT_EQ(v.value_or(-1), 500);
    Status st = co_await app.Commit(parent);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok()) << result->ToString();
  auto read_back = rig.world.RunSync([](AppClient& app) -> Async<int64_t> {
    auto begin = co_await app.Begin();
    auto v = co_await app.ReadInt(*begin, Rig::ServerName(0), "acct");
    co_await app.Commit(*begin);
    co_return v.value_or(-1);
  }(rig.app));
  EXPECT_EQ(*read_back, 500);
}

TEST(TranManTest, NestedAbortUndoesOnlyTheSubtree) {
  Rig rig(QuietConfig(2));
  auto result = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto top = co_await app.Begin();
    const Tid parent = *top;
    // Parent writes site 0.
    co_await app.WriteInt(parent, Rig::ServerName(0), "acct", 111);
    // Child writes site 1, then aborts.
    auto nested = co_await app.Begin(parent);
    co_await app.WriteInt(*nested, Rig::ServerName(1), "acct", 999);
    Status na = co_await app.Abort(*nested);
    EXPECT_TRUE(na.ok());
    Status st = co_await app.Commit(parent);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok()) << result->ToString();
  auto values = rig.world.RunSync([](AppClient& app) -> Async<std::pair<int64_t, int64_t>> {
    auto begin = co_await app.Begin();
    auto a = co_await app.ReadInt(*begin, Rig::ServerName(0), "acct");
    auto b = co_await app.ReadInt(*begin, Rig::ServerName(1), "acct");
    co_await app.Commit(*begin);
    co_return std::make_pair(a.value_or(-1), b.value_or(-1));
  }(rig.app));
  EXPECT_EQ(values->first, 111);   // Parent's write survived.
  EXPECT_EQ(values->second, 100);  // Child's write undone.
}

TEST(TranManTest, CommitWithActiveNestedChildIsRejected) {
  Rig rig(QuietConfig(1));
  auto result = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto top = co_await app.Begin();
    auto nested = co_await app.Begin(*top);
    (void)nested;
    Status st = co_await app.Commit(*top);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->code(), StatusCode::kFailedPrecondition);
}

TEST(TranManTest, SerializedConflictingTransactionsBothCommit) {
  Rig rig(QuietConfig(2));
  // Two pipelined transactions updating the same element (the paper's 4.2
  // lock-contention scenario): the second's operation waits for the first's
  // locks to drop, then proceeds.
  int committed = 0;
  SimTime second_write_done = 0;
  for (int round = 0; round < 2; ++round) {
    rig.world.sched().Spawn([](AppClient& app, World& w, int round_id, int* ok,
                               SimTime* wrote_at) -> Async<void> {
      auto begin = co_await app.Begin();
      const Tid tid = *begin;
      Status ws = co_await app.WriteInt(tid, Rig::ServerName(1), "acct", 7 + round_id);
      EXPECT_TRUE(ws.ok()) << ws.ToString();
      if (round_id == 1) {
        *wrote_at = w.sched().now();
      }
      Status st = co_await app.Commit(tid);
      if (st.ok()) {
        ++*ok;
      } else {
        co_await app.Abort(tid);
      }
    }(rig.app, rig.world, round, &committed, &second_write_done));
  }
  rig.world.RunUntilIdle();
  EXPECT_EQ(committed, 2);
  // The second write could only complete after the first transaction's commit
  // released the lock (first commit point is >= ~80ms in).
  EXPECT_GT(second_write_done, Usec(80000));
  auto read_back = rig.world.RunSync([](AppClient& app) -> Async<int64_t> {
    auto begin = co_await app.Begin();
    auto v = co_await app.ReadInt(*begin, Rig::ServerName(1), "acct");
    co_await app.Commit(*begin);
    co_return v.value_or(-1);
  }(rig.app));
  EXPECT_EQ(*read_back, 8);  // The later writer's value won.
}

TEST(TranManTest, UpgradeDeadlockResolvesByTimeoutWithCleanState) {
  Rig rig(QuietConfig(2));
  // Classic upgrade deadlock: both transactions read (S) then write (X) the
  // same object. Lock timeouts break it; both transactions then abort, and no
  // locks or transaction state leak.
  int failures = 0;
  int done = 0;
  for (int round = 0; round < 2; ++round) {
    rig.world.sched().Spawn([](AppClient& app, int* fails, int* fin) -> Async<void> {
      auto begin = co_await app.Begin();
      const Tid tid = *begin;
      auto v = co_await app.ReadInt(tid, Rig::ServerName(1), "acct");
      Status ws = co_await app.WriteInt(tid, Rig::ServerName(1), "acct",
                                        v.value_or(0) + 1);
      if (!ws.ok()) {
        ++*fails;
        co_await app.Abort(tid);
      } else {
        Status st = co_await app.Commit(tid);
        if (!st.ok()) {
          ++*fails;
        }
      }
      ++*fin;
    }(rig.app, &failures, &done));
  }
  rig.world.RunUntilIdle();
  EXPECT_EQ(done, 2);
  EXPECT_GE(failures, 1);  // At least one victim.
  EXPECT_EQ(rig.server(1)->locks().held_lock_count(), 0u);
  EXPECT_EQ(rig.server(1)->locks().waiter_count(), 0u);
  // Data still consistent: 100 (both aborted) or 101 (one survived).
  auto read_back = rig.world.RunSync([](AppClient& app) -> Async<int64_t> {
    auto begin = co_await app.Begin();
    auto v = co_await app.ReadInt(*begin, Rig::ServerName(1), "acct");
    co_await app.Commit(*begin);
    co_return v.value_or(-1);
  }(rig.app));
  EXPECT_TRUE(*read_back == 100 || *read_back == 101) << *read_back;
}

}  // namespace
}  // namespace camelot
