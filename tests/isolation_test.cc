// IsolationOracle tests: every named anomaly is detected BY NAME on a
// synthetic history crafted to exhibit it, clean histories pass, and — the
// mutation test that proves the whole pipeline can catch a real bug — an
// injected isolation violation (the "server.undo" failpoint dropping an
// abort's compensation write, leaking the forward image) is detected in a
// live world, survives a dump/load round trip, and is caught by the crash
// explorer with a CAMELOT_HISTORY replay recipe.
#include "src/harness/isolation_oracle.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/harness/crash_explorer.h"
#include "src/harness/replay.h"
#include "src/harness/world.h"

namespace camelot {
namespace {

FamilyId Fam(uint64_t n) { return FamilyId{SiteId{0}, n}; }

HistoryEvent Init(SimTime ts, const std::string& obj, int64_t value) {
  return HistoryEvent{HistoryOp::kInit, ts, 0, kInvalidTid, "srv", obj, EncodeInt64(value)};
}
HistoryEvent Read(SimTime ts, uint64_t fam, const std::string& obj, int64_t value) {
  return HistoryEvent{HistoryOp::kRead, ts, 0, Tid{Fam(fam), 0, 0}, "srv", obj,
                      EncodeInt64(value)};
}
HistoryEvent Write(SimTime ts, uint64_t fam, const std::string& obj, int64_t value) {
  return HistoryEvent{HistoryOp::kWrite, ts, 0, Tid{Fam(fam), 0, 0}, "srv", obj,
                      EncodeInt64(value)};
}
HistoryEvent Commit(SimTime ts, uint64_t fam, SiteId site = SiteId{0}) {
  return HistoryEvent{HistoryOp::kCommit, ts, site, Tid{Fam(fam), 0, 0}, std::string(),
                      std::string(), Bytes()};
}
HistoryEvent Abort(SimTime ts, uint64_t fam, SiteId site = SiteId{0}) {
  return HistoryEvent{HistoryOp::kAbort, ts, site, Tid{Fam(fam), 0, 0}, std::string(),
                      std::string(), Bytes()};
}

// The one anomaly of the report must carry this name.
void ExpectAnomaly(const IsolationReport& report, AnomalyType type) {
  ASSERT_EQ(report.anomalies.size(), 1u) << report.Explain();
  EXPECT_EQ(report.anomalies[0].type, type) << report.Explain();
}

TEST(IsolationOracleTest, CleanSerialHistoryPasses) {
  std::vector<HistoryEvent> h{
      Init(0, "x", 0),
      Read(5, 1, "x", 0),  Write(6, 1, "x", 10),  Commit(8, 1),
      Read(11, 2, "x", 10), Write(12, 2, "x", 20), Commit(14, 2),
  };
  IsolationReport report = IsolationOracle::Check(h);
  EXPECT_TRUE(report.ok()) << report.Explain();
  EXPECT_EQ(report.committed, 2u);
  EXPECT_EQ(report.reads_checked, 2u);
  EXPECT_TRUE(report.CheckFinalValue("srv", "x", EncodeInt64(20)));
  EXPECT_FALSE(report.CheckFinalValue("srv", "x", EncodeInt64(7)));
  EXPECT_EQ(report.anomalies.back().type, AnomalyType::kDivergentFinalState);
}

TEST(IsolationOracleTest, DetectsDivergentOutcome) {
  std::vector<HistoryEvent> h{
      Init(0, "x", 0), Write(5, 1, "x", 1), Commit(8, 1, /*site=*/SiteId{0}),
      Abort(9, 1, /*site=*/SiteId{1}),
  };
  ExpectAnomaly(IsolationOracle::Check(h), AnomalyType::kDivergentOutcome);
}

TEST(IsolationOracleTest, DetectsReadOfAborted) {
  std::vector<HistoryEvent> h{
      Init(0, "x", 0),
      Write(5, 1, "x", 111), Abort(8, 1),          // Leaked image: undo skipped.
      Read(10, 2, "x", 111), Commit(12, 2),
  };
  ExpectAnomaly(IsolationOracle::Check(h), AnomalyType::kReadOfAborted);
}

TEST(IsolationOracleTest, DetectsDirtyReadOfUndecidedWriter) {
  std::vector<HistoryEvent> h{
      Init(0, "x", 0),
      Write(5, 1, "x", 222),                        // Family 1 never concludes.
      Read(6, 2, "x", 222), Commit(8, 2),
  };
  IsolationReport report = IsolationOracle::Check(h);
  ExpectAnomaly(report, AnomalyType::kDirtyRead);
  EXPECT_EQ(report.undecided, 1u);
}

TEST(IsolationOracleTest, DetectsDirtyReadBeforeWriterCommit) {
  std::vector<HistoryEvent> h{
      Init(0, "x", 0),
      Write(5, 1, "x", 333), Commit(20, 1),
      Read(10, 2, "x", 333), Commit(15, 2),  // Serialized BEFORE the writer.
  };
  ExpectAnomaly(IsolationOracle::Check(h), AnomalyType::kDirtyRead);
}

TEST(IsolationOracleTest, DetectsLostUpdate) {
  std::vector<HistoryEvent> h{
      Init(0, "x", 0),
      Write(5, 1, "x", 10), Commit(10, 1),
      // Family 2 read the pre-image and overwrote family 1's update blind.
      Read(6, 2, "x", 0), Write(7, 2, "x", 20), Commit(15, 2),
  };
  ExpectAnomaly(IsolationOracle::Check(h), AnomalyType::kLostUpdate);
}

TEST(IsolationOracleTest, DetectsWriteSkew) {
  std::vector<HistoryEvent> h{
      Init(0, "x", 0), Init(0, "y", 0),
      // Family 1 read both, wrote y; family 2 read both, wrote x: each based
      // its write on a snapshot the serial order says it could not have had.
      Read(5, 1, "x", 0), Read(5, 1, "y", 0), Write(6, 1, "y", 1), Commit(10, 1),
      Read(7, 2, "x", 0), Read(7, 2, "y", 0), Write(8, 2, "x", 1), Commit(12, 2),
  };
  ExpectAnomaly(IsolationOracle::Check(h), AnomalyType::kWriteSkew);
}

TEST(IsolationOracleTest, DetectsNonSerializableReadOnlyObserver) {
  std::vector<HistoryEvent> h{
      Init(0, "x", 0),
      Write(5, 1, "x", 5), Commit(8, 1),
      Read(10, 2, "x", 0), Commit(12, 2),  // Read-only family saw a stale x.
  };
  ExpectAnomaly(IsolationOracle::Check(h), AnomalyType::kNonSerializableRead);
}

TEST(IsolationOracleTest, AnomalyNamesAreStable) {
  EXPECT_STREQ(AnomalyName(AnomalyType::kDivergentOutcome), "divergent-outcome");
  EXPECT_STREQ(AnomalyName(AnomalyType::kReadOfAborted), "read-of-aborted");
  EXPECT_STREQ(AnomalyName(AnomalyType::kDirtyRead), "dirty-read");
  EXPECT_STREQ(AnomalyName(AnomalyType::kLostUpdate), "lost-update");
  EXPECT_STREQ(AnomalyName(AnomalyType::kWriteSkew), "write-skew");
  EXPECT_STREQ(AnomalyName(AnomalyType::kNonSerializableRead), "non-serializable-read");
  EXPECT_STREQ(AnomalyName(AnomalyType::kDivergentFinalState), "divergent-final-state");
}

// --- Mutation tests: the pipeline catches a real injected bug ------------------

// Drop the undo of an aborting transaction's write (the "server.undo"
// failpoint): the forward image leaks, a later reader observes it, and the
// oracle must call that read-of-aborted — by name.
TEST(IsolationMutationTest, LeakedUndoIsDetectedAsReadOfAborted) {
  WorldConfig cfg;
  cfg.site_count = 2;
  cfg.seed = 21;
  World world(cfg);
  world.history().set_enabled(true);
  world.AddServer(0, "vault")->CreateObjectForSetup("obj", EncodeInt64(42));
  world.failpoints().Arm("server.undo", SiteId{0}, FailpointArm::Drop(1));

  AppClient app(world.site(0));
  // Transaction 1: write 43, then abort — the armed drop skips the undo.
  world.RunSync([](AppClient& app) -> Async<Status> {
    auto begin = co_await app.Begin();
    (void)co_await app.WriteInt(*begin, "vault", "obj", 43);
    co_return co_await app.Abort(*begin);
  }(app));
  // Transaction 2: read; with the leaked image this observes 43.
  auto observed = world.RunSync([](AppClient& app) -> Async<int64_t> {
    auto begin = co_await app.Begin();
    auto v = co_await app.ReadInt(*begin, "vault", "obj");
    co_await app.Commit(*begin);
    co_return v.value_or(-1);
  }(app));
  world.RunUntilIdle();
  ASSERT_EQ(observed.value_or(-1), 43) << "the injected leak did not take";

  IsolationReport report = IsolationOracle::Check(world.history().events());
  ASSERT_FALSE(report.ok()) << "oracle missed the injected anomaly";
  ASSERT_EQ(report.anomalies.size(), 1u) << report.Explain();
  EXPECT_EQ(report.anomalies[0].type, AnomalyType::kReadOfAborted) << report.Explain();
  EXPECT_EQ(report.anomalies[0].object, "obj");

  // The verdict survives a dump + load round trip (the CAMELOT_HISTORY path).
  std::string dir = ::testing::TempDir();
  setenv("CAMELOT_ARTIFACT_DIR", dir.c_str(), 1);
  auto path = DumpHistoryArtifact(world.history(), "mutation-undo-leak");
  unsetenv("CAMELOT_ARTIFACT_DIR");
  ASSERT_TRUE(path.ok()) << path.status().message();
  auto loaded = LoadHistoryFile(*path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  IsolationReport reloaded = IsolationOracle::Check(*loaded);
  ASSERT_EQ(reloaded.anomalies.size(), 1u) << reloaded.Explain();
  EXPECT_EQ(reloaded.anomalies[0].type, AnomalyType::kReadOfAborted);
  std::remove(path->c_str());
}

// Same bug, caught end to end by the crash explorer: a schedule that fails a
// subordinate's prepare force (so the family aborts with staged writes) and
// drops that site's undo must produce an isolation violation whose replay
// recipe carries a loadable CAMELOT_HISTORY file.
TEST(IsolationMutationTest, CrashExplorerGatesOnInjectedUndoLeak) {
  ExplorerConfig cfg;
  cfg.seed = 31;
  std::string dir = ::testing::TempDir();
  setenv("CAMELOT_ARTIFACT_DIR", dir.c_str(), 1);
  auto schedule = CrashSchedule::Parse("tm.sub.prepare_force.before@1#1=error;server.undo@1#1=drop");
  ASSERT_TRUE(schedule.ok()) << schedule.status().message();
  RunResult result = CrashExplorer(cfg).Run(*schedule);
  unsetenv("CAMELOT_ARTIFACT_DIR");

  EXPECT_FALSE(result.ok);
  bool isolation_violation = false;
  for (const std::string& v : result.violations) {
    if (v.rfind("isolation: ", 0) == 0) {
      isolation_violation = true;
    }
  }
  EXPECT_TRUE(isolation_violation) << result.Explain();
  ASSERT_FALSE(result.history_path.empty()) << result.Explain();
  EXPECT_NE(result.replay.find("CAMELOT_HISTORY='" + result.history_path + "'"),
            std::string::npos)
      << result.replay;
  auto loaded = LoadHistoryFile(result.history_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_FALSE(IsolationOracle::Check(*loaded).ok());
  std::remove(result.history_path.c_str());
}

// Sanity: the same explorer run WITHOUT the injected bug passes the gate —
// the mutation test's signal comes from the mutation, not the harness.
TEST(IsolationMutationTest, CrashExplorerPassesWithoutTheMutation) {
  ExplorerConfig cfg;
  cfg.seed = 31;
  auto schedule = CrashSchedule::Parse("tm.sub.prepare_force.before@1#1=error");
  ASSERT_TRUE(schedule.ok()) << schedule.status().message();
  RunResult result = CrashExplorer(cfg).Run(*schedule);
  for (const std::string& v : result.violations) {
    EXPECT_NE(v.rfind("isolation: ", 0), 0u) << v;
  }
  EXPECT_TRUE(result.history_path.empty());
}

}  // namespace
}  // namespace camelot
