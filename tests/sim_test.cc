// Unit tests for the discrete-event simulation kernel: scheduler ordering,
// Async task composition, channels, timeouts, mutexes, and fork/join.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/channel.h"
#include "src/sim/scheduler.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace camelot {
namespace {

TEST(SchedulerTest, PostRunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.Post(Msec(30), [&] { order.push_back(3); });
  sched.Post(Msec(10), [&] { order.push_back(1); });
  sched.Post(Msec(20), [&] { order.push_back(2); });
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), Msec(30));
}

TEST(SchedulerTest, EqualTimesRunFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.Post(Msec(5), [&order, i] { order.push_back(i); });
  }
  sched.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int ran = 0;
  sched.Post(Msec(10), [&] { ++ran; });
  sched.Post(Msec(50), [&] { ++ran; });
  sched.RunUntil(Msec(20));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sched.now(), Msec(20));
  sched.RunUntilIdle();
  EXPECT_EQ(ran, 2);
}

TEST(SchedulerTest, NestedPostDuringEvent) {
  Scheduler sched;
  std::vector<int> order;
  sched.Post(Msec(10), [&] {
    order.push_back(1);
    sched.Post(Msec(5), [&] { order.push_back(2); });
  });
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.now(), Msec(15));
}

Async<void> DelayTwice(Scheduler& sched, std::vector<SimTime>* times) {
  co_await sched.Delay(Msec(10));
  times->push_back(sched.now());
  co_await sched.Delay(Msec(15));
  times->push_back(sched.now());
}

TEST(TaskTest, DelaysAdvanceVirtualTime) {
  Scheduler sched;
  std::vector<SimTime> times;
  sched.Spawn(DelayTwice(sched, &times));
  sched.RunUntilIdle();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Msec(10));
  EXPECT_EQ(times[1], Msec(25));
}

Async<int> Add(Scheduler& sched, int a, int b) {
  co_await sched.Delay(Usec(1));
  co_return a + b;
}

Async<int> Compose(Scheduler& sched) {
  int x = co_await Add(sched, 1, 2);
  int y = co_await Add(sched, x, 10);
  co_return y;
}

Async<void> Capture(Scheduler& sched, int* out) { *out = co_await Compose(sched); }

TEST(TaskTest, NestedAwaitsReturnValues) {
  Scheduler sched;
  int result = 0;
  sched.Spawn(Capture(sched, &result));
  sched.RunUntilIdle();
  EXPECT_EQ(result, 13);
}

TEST(TaskTest, UnstartedTaskIsSafelyDropped) {
  Scheduler sched;
  int touched = 0;
  {
    auto t = Capture(sched, &touched);
    // Dropped without being awaited or spawned: must not run or leak-crash.
  }
  sched.RunUntilIdle();
  EXPECT_EQ(touched, 0);
}

Async<void> Producer(Scheduler& sched, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sched.Delay(Msec(1));
    ch.Send(i);
  }
}

Async<void> Consumer(Channel<int>& ch, std::vector<int>* got) {
  while (true) {
    std::optional<int> v = co_await ch.Receive();
    if (!v) {
      break;
    }
    got->push_back(*v);
  }
}

TEST(ChannelTest, ProducerConsumerFifo) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::vector<int> got;
  sched.Spawn(Consumer(ch, &got));
  sched.Spawn(Producer(sched, ch, 5));
  sched.Post(Msec(100), [&] { ch.Close(); });
  sched.RunUntilIdle();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelTest, SendBeforeReceiveQueues) {
  Scheduler sched;
  Channel<std::string> ch(sched);
  ch.Send("a");
  ch.Send("b");
  std::vector<std::string> got;
  sched.Spawn([](Channel<std::string>& c, std::vector<std::string>* out) -> Async<void> {
    out->push_back(*co_await c.Receive());
    out->push_back(*co_await c.Receive());
  }(ch, &got));
  sched.RunUntilIdle();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
}

TEST(ChannelTest, CloseWakesAllReceiversWithNullopt) {
  Scheduler sched;
  Channel<int> ch(sched);
  int closed_count = 0;
  for (int i = 0; i < 3; ++i) {
    sched.Spawn([](Channel<int>& c, int* count) -> Async<void> {
      auto v = co_await c.Receive();
      if (!v) {
        ++*count;
      }
    }(ch, &closed_count));
  }
  sched.Post(Msec(10), [&] { ch.Close(); });
  sched.RunUntilIdle();
  EXPECT_EQ(closed_count, 3);
}

TEST(ChannelTest, SendAfterCloseIsDropped) {
  Scheduler sched;
  Channel<int> ch(sched);
  ch.Close();
  ch.Send(42);
  EXPECT_TRUE(ch.empty());
}

TEST(ChannelTest, ReceiveTimeoutFiresWhenNoMessage) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::optional<int> result = std::make_optional(99);
  SimTime resumed_at = 0;
  sched.Spawn([](Scheduler& s, Channel<int>& c, std::optional<int>* out,
                 SimTime* at) -> Async<void> {
    *out = co_await c.ReceiveTimeout(Msec(50));
    *at = s.now();
  }(sched, ch, &result, &resumed_at));
  sched.RunUntilIdle();
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(resumed_at, Msec(50));
}

TEST(ChannelTest, ReceiveTimeoutGetsMessageIfInTime) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::optional<int> result;
  sched.Spawn([](Channel<int>& c, std::optional<int>* out) -> Async<void> {
    *out = co_await c.ReceiveTimeout(Msec(50));
  }(ch, &result));
  sched.Post(Msec(10), [&] { ch.Send(7); });
  sched.RunUntilIdle();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, 7);
}

TEST(ChannelTest, TimedOutWaiterDoesNotStealLaterMessage) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::optional<int> first;
  std::optional<int> second;
  sched.Spawn([](Channel<int>& c, std::optional<int>* out) -> Async<void> {
    *out = co_await c.ReceiveTimeout(Msec(10));
  }(ch, &first));
  sched.Spawn([](Channel<int>& c, std::optional<int>* out) -> Async<void> {
    *out = co_await c.ReceiveTimeout(Msec(100));
  }(ch, &second));
  sched.Post(Msec(20), [&] { ch.Send(5); });
  sched.RunUntilIdle();
  EXPECT_FALSE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 5);
}

TEST(ChannelTest, ReceiveTimeoutRacingCloseResumesExactlyOnce) {
  // Close lands at the same virtual instant as the timeout. Whichever event
  // runs first claims the waiter; the other must see it non-pending and back
  // off -- the receiver resumes exactly once, with nullopt.
  Scheduler sched;
  Channel<int> ch(sched);
  int resumes = 0;
  bool got_value = false;
  sched.Spawn([](Channel<int>& c, int* n, bool* got) -> Async<void> {
    auto v = co_await c.ReceiveTimeout(Msec(50));
    ++*n;
    *got = v.has_value();
  }(ch, &resumes, &got_value));
  sched.Post(Msec(50), [&] { ch.Close(); });
  sched.RunUntilIdle();
  EXPECT_EQ(resumes, 1);
  EXPECT_FALSE(got_value);
}

TEST(ChannelTest, DestructionWithPendingTimedReceiverIsSafe) {
  // The timer thunk holds a raw back-pointer to the channel. Destroying the
  // channel before the timer fires must (a) wake the receiver with nullopt
  // via the destructor's Close, and (b) neutralize the thunk so its later
  // firing never touches the dead channel.
  Scheduler sched;
  int resumes = 0;
  bool got_value = false;
  auto ch = std::make_unique<Channel<int>>(sched);
  sched.Spawn([](Channel<int>& c, int* n, bool* got) -> Async<void> {
    auto v = co_await c.ReceiveTimeout(Msec(100));
    ++*n;
    *got = v.has_value();
  }(*ch, &resumes, &got_value));
  sched.RunUntil(Msec(10));
  ch.reset();  // Close + free while the 100ms timer is still queued.
  sched.RunUntilIdle();  // Timer fires at 100ms against the dead channel.
  EXPECT_EQ(resumes, 1);
  EXPECT_FALSE(got_value);
  EXPECT_EQ(sched.now(), Msec(100));
}

TEST(ChannelTest, FilledTimedReceiverSurvivesChannelDestructionBeforeTimerFires) {
  // A message arrives in time, the channel dies, and only then does the stale
  // timer thunk run: it must see the waiter kFilled and return untouched.
  Scheduler sched;
  std::optional<int> result;
  auto ch = std::make_unique<Channel<int>>(sched);
  sched.Spawn([](Channel<int>& c, std::optional<int>* out) -> Async<void> {
    *out = co_await c.ReceiveTimeout(Msec(100));
  }(*ch, &result));
  sched.Post(Msec(10), [&] { ch->Send(7); });
  sched.RunUntil(Msec(20));
  ch.reset();
  sched.RunUntilIdle();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, 7);
}

Async<void> CriticalSection(Scheduler& sched, SimMutex& mu, int id, std::vector<int>* order) {
  co_await mu.Lock();
  order->push_back(id);
  co_await sched.Delay(Msec(10));
  order->push_back(id);
  mu.Unlock();
}

TEST(SimMutexTest, MutualExclusionAndFifoFairness) {
  Scheduler sched;
  SimMutex mu(sched);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sched.Spawn(CriticalSection(sched, mu, i, &order));
  }
  sched.RunUntilIdle();
  // Each section's two entries must be adjacent (exclusion) and in spawn order (FIFO).
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order, (std::vector<int>{0, 0, 1, 1, 2, 2}));
  EXPECT_FALSE(mu.held());
}

Async<int> SlowValue(Scheduler& sched, SimDuration d, int v) {
  co_await sched.Delay(d);
  co_return v;
}

Async<void> RunJoinAll(Scheduler& sched, std::vector<int>* out, SimTime* finished) {
  std::vector<Async<int>> tasks;
  tasks.push_back(SlowValue(sched, Msec(30), 1));
  tasks.push_back(SlowValue(sched, Msec(10), 2));
  tasks.push_back(SlowValue(sched, Msec(20), 3));
  *out = co_await JoinAll(sched, std::move(tasks));
  *finished = sched.now();
}

TEST(JoinAllTest, RunsInParallelAndPreservesOrder) {
  Scheduler sched;
  std::vector<int> results;
  SimTime finished = 0;
  sched.Spawn(RunJoinAll(sched, &results, &finished));
  sched.RunUntilIdle();
  EXPECT_EQ(results, (std::vector<int>{1, 2, 3}));
  // Parallel: total time is the max (30ms), not the sum (60ms).
  EXPECT_EQ(finished, Msec(30));
}

TEST(EventStorageTest, SmallLambdasStayInline) {
  Scheduler sched;
  int hits = 0;
  for (int i = 0; i < 100; ++i) {
    sched.Post(Usec(i), [&hits] { ++hits; });  // Capture fits inline.
  }
  EXPECT_EQ(sched.inline_posts(), 100u);
  EXPECT_EQ(sched.pooled_posts(), 0u);
  EXPECT_EQ(sched.slab_pool().fresh_allocs(), 0u);
  sched.RunUntilIdle();
  EXPECT_EQ(hits, 100);
}

TEST(EventStorageTest, OversizedLambdasUseSlabPoolAndRecycle) {
  Scheduler sched;
  struct Big {
    char payload[200] = {};
  };
  int hits = 0;
  // Serial post/run: the second round must reuse the first round's blocks.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      Big big;
      big.payload[0] = static_cast<char>(i);
      sched.Post(Usec(i), [big, &hits] { hits += big.payload[0] >= 0 ? 1 : 0; });
    }
    sched.RunUntilIdle();
  }
  EXPECT_EQ(hits, 24);
  EXPECT_EQ(sched.pooled_posts(), 24u);
  EXPECT_EQ(sched.inline_posts(), 0u);
  // Only the first round's blocks are fresh; later rounds recycle.
  EXPECT_LE(sched.slab_pool().fresh_allocs(), 8u);
  EXPECT_GE(sched.slab_pool().reused(), 16u);
}

TEST(EventStorageTest, MoveOnlyCapturesSupported) {
  Scheduler sched;
  auto owned = std::make_unique<int>(41);
  int seen = 0;
  sched.Post(Usec(1), [p = std::move(owned), &seen] { seen = *p + 1; });
  sched.RunUntilIdle();
  EXPECT_EQ(seen, 42);
}

TEST(RngTest, DeterministicAcrossRuns) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, ExponentialHasRoughlyCorrectMean) {
  Rng rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

}  // namespace
}  // namespace camelot
