// Unit tests for the failpoint registry, the per-site evaluation handle, and
// the crash-schedule string grammar (see src/base/failpoint.h).
#include <gtest/gtest.h>

#include <string>

#include "src/base/failpoint.h"

namespace camelot {
namespace {

TEST(FailpointRegistryTest, CountsOnlyWhileActive) {
  FailpointRegistry reg;
  EXPECT_FALSE(reg.active());
  reg.Eval("p", SiteId{0}, 0);  // Inactive: not counted.
  EXPECT_EQ(reg.hits("p", SiteId{0}), 0u);

  reg.set_recording(true);
  EXPECT_TRUE(reg.active());
  reg.Eval("p", SiteId{0}, 10);
  reg.Eval("p", SiteId{0}, 20);
  reg.Eval("p", SiteId{1}, 30);
  EXPECT_EQ(reg.hits("p", SiteId{0}), 2u);
  EXPECT_EQ(reg.hits("p", SiteId{1}), 1u);
  ASSERT_EQ(reg.trace().size(), 3u);
  EXPECT_EQ(reg.trace()[0], "10us p@0#1");
  EXPECT_EQ(reg.trace()[2], "30us p@1#1");
}

TEST(FailpointRegistryTest, ArmFiresAtItsHitNumberExactlyOnce) {
  FailpointRegistry reg;
  reg.Arm("p", SiteId{0}, FailpointArm::Drop(2));
  EXPECT_TRUE(reg.active());
  EXPECT_EQ(reg.Eval("p", SiteId{0}, 0).action, FailpointAction::kNone);
  EXPECT_EQ(reg.Eval("p", SiteId{0}, 0).action, FailpointAction::kDrop);
  // Fired: the registry goes inactive again (no arms, not recording).
  EXPECT_FALSE(reg.active());
  EXPECT_EQ(reg.Eval("p", SiteId{0}, 0).action, FailpointAction::kNone);
}

TEST(FailpointRegistryTest, ArmsAreScopedToPointAndSite) {
  FailpointRegistry reg;
  reg.set_recording(true);
  reg.Arm("p", SiteId{0}, FailpointArm::Crash(1));
  EXPECT_EQ(reg.Eval("q", SiteId{0}, 0).action, FailpointAction::kNone);
  EXPECT_EQ(reg.Eval("p", SiteId{1}, 0).action, FailpointAction::kNone);
  EXPECT_EQ(reg.Eval("p", SiteId{0}, 0).action, FailpointAction::kCrash);
}

TEST(FailpointRegistryTest, MultipleArmsPerPointAndUnfiredArms) {
  FailpointRegistry reg;
  reg.Arm("p", SiteId{0}, FailpointArm::Crash(1));
  reg.Arm("p", SiteId{0}, FailpointArm::Error(3));
  EXPECT_EQ(reg.Eval("p", SiteId{0}, 0).action, FailpointAction::kCrash);
  ASSERT_EQ(reg.UnfiredArms().size(), 1u);
  EXPECT_EQ(reg.UnfiredArms()[0], "p@0#3=error");

  // DisarmAll clears arms but keeps counters; Reset clears everything.
  reg.DisarmAll();
  EXPECT_TRUE(reg.UnfiredArms().empty());
  EXPECT_EQ(reg.hits("p", SiteId{0}), 1u);
  reg.Reset();
  EXPECT_EQ(reg.hits("p", SiteId{0}), 0u);
}

TEST(FailpointRegistryTest, DelayCarriesItsDuration) {
  FailpointRegistry reg;
  reg.Arm("p", SiteId{0}, FailpointArm::Delay(1, Usec(5000)));
  const FailpointHit hit = reg.Eval("p", SiteId{0}, 0);
  EXPECT_EQ(hit.action, FailpointAction::kDelay);
  EXPECT_EQ(hit.delay, Usec(5000));
}

TEST(FailpointRegistryTest, CallbackRunsInsideEval) {
  FailpointRegistry reg;
  int fired = 0;
  reg.Arm("p", SiteId{0}, FailpointArm::Callback(2, [&] { ++fired; }));
  reg.Eval("p", SiteId{0}, 0);
  EXPECT_EQ(fired, 0);
  reg.Eval("p", SiteId{0}, 0);
  EXPECT_EQ(fired, 1);
}

TEST(FailpointRegistryTest, DiscoveredIsSortedByPointThenSite) {
  FailpointRegistry reg;
  reg.set_recording(true);
  reg.Eval("b", SiteId{1}, 0);
  reg.Eval("a", SiteId{2}, 0);
  reg.Eval("b", SiteId{0}, 0);
  reg.Eval("b", SiteId{0}, 0);
  const auto discovered = reg.Discovered();
  ASSERT_EQ(discovered.size(), 3u);
  EXPECT_EQ(discovered[0].point, "a");
  EXPECT_EQ(discovered[1].point, "b");
  EXPECT_EQ(discovered[1].site.value, 0u);
  EXPECT_EQ(discovered[1].hits, 2u);
  EXPECT_EQ(discovered[2].site.value, 1u);
}

TEST(FailpointsHandleTest, CrashActionCrashesTheSiteAndDeadSitesAreSuppressed) {
  FailpointRegistry reg;
  bool up = true;
  int crashes = 0;
  const Failpoints fp(
      &reg, SiteId{3}, [] { return static_cast<SimTime>(42); }, [&] { return up; },
      [&] {
        up = false;
        ++crashes;
      });
  reg.Arm("x", SiteId{3}, FailpointArm::Crash(2));
  reg.set_recording(true);
  EXPECT_EQ(fp.Eval("x").action, FailpointAction::kNone);
  EXPECT_EQ(fp.Eval("x").action, FailpointAction::kCrash);
  EXPECT_EQ(crashes, 1);
  EXPECT_FALSE(up);
  // The site is down: further evaluations are suppressed, not counted.
  fp.Eval("x");
  EXPECT_EQ(reg.hits("x", SiteId{3}), 2u);
}

TEST(FailpointsHandleTest, DefaultConstructedHandleIsInert) {
  const Failpoints fp;
  EXPECT_FALSE(fp.active());
  EXPECT_EQ(fp.Eval("anything").action, FailpointAction::kNone);
}

TEST(CrashScheduleStringTest, ToStringParseRoundTrip) {
  CrashSchedule s;
  s.entries.push_back({"tm.2pc.commit_force.before", SiteId{0}, 1, FailpointAction::kCrash, 0});
  s.entries.push_back({"tm.send.COMMIT-ACK", SiteId{2}, 3, FailpointAction::kDelay, Usec(5000)});
  s.entries.push_back({"disk.read", SiteId{1}, 2, FailpointAction::kError, 0});
  const std::string text = s.ToString();
  EXPECT_EQ(text,
            "tm.2pc.commit_force.before@0#1=crash;"
            "tm.send.COMMIT-ACK@2#3=delay:5000;disk.read@1#2=error");
  const auto parsed = CrashSchedule::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->ToString(), text);
}

TEST(CrashScheduleStringTest, ParseRejectsMalformedEntries) {
  EXPECT_FALSE(CrashSchedule::Parse("nope").ok());
  EXPECT_FALSE(CrashSchedule::Parse("p@0#0=crash").ok());  // Hits are 1-based.
  EXPECT_FALSE(CrashSchedule::Parse("p@0#1=explode").ok());
  EXPECT_FALSE(CrashSchedule::Parse("p@0#1=delay:-5").ok());
  EXPECT_TRUE(CrashSchedule::Parse("").ok());  // Empty schedule: no faults.
}

TEST(CrashScheduleStringTest, ArmAllInstallsEveryEntry) {
  const auto parsed = CrashSchedule::Parse("a@0#1=crash;b@1#2=drop");
  ASSERT_TRUE(parsed.ok());
  FailpointRegistry reg;
  parsed->ArmAll(reg);
  EXPECT_EQ(reg.UnfiredArms().size(), 2u);
  EXPECT_TRUE(reg.active());
}

}  // namespace
}  // namespace camelot
