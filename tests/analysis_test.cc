// Tests for the static-analysis module: the paper's published totals, path
// relationships, and formula rendering. Parameterized sweeps check the
// structural invariants across every (protocol, kind, subordinates) cell.
#include <gtest/gtest.h>

#include <tuple>

#include "src/analysis/static_analysis.h"

namespace camelot {
namespace {

TEST(StaticAnalysisTest, PaperTotalsLocal) {
  // Table 3: local update 24.5, local read 9.5.
  EXPECT_DOUBLE_EQ(CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 0).TotalMs(),
                   24.5);
  EXPECT_DOUBLE_EQ(CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kRead, 0).TotalMs(),
                   9.5);
}

TEST(StaticAnalysisTest, TwoPhaseOneSubUpdateNearPaper) {
  // The paper's lumped estimate is 99.5; our itemization is slightly leaner
  // (we do not lump "20 ms of local transaction management messages").
  const double total = CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 1).TotalMs();
  EXPECT_GE(total, 85.0);
  EXPECT_LE(total, 100.0);
}

TEST(StaticAnalysisTest, NonBlockingCountsMatchPaperSection43) {
  // "the critical path consists of 4 log forces and 5 messages. This compares
  // to 2 and 3, respectively, for two-phase commit."
  auto count = [](const PathAnalysis& path, const char* needle) {
    int n = 0;
    for (const auto& ev : path.events) {
      if (ev.name.find(needle) != std::string::npos) {
        ++n;
      }
    }
    return n;
  };
  const auto nbc = CriticalPath(CommitProtocol::kNonBlocking, TxnKind::kWrite, 1);
  EXPECT_EQ(count(nbc, "log force"), 4);
  EXPECT_EQ(count(nbc, "datagram"), 5);
  const auto two_phase = CriticalPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 1);
  EXPECT_EQ(count(two_phase, "log force"), 2);
  EXPECT_EQ(count(two_phase, "datagram"), 3);
  // "The length of the completion path is one datagram shorter for both."
  EXPECT_EQ(count(CompletionPath(CommitProtocol::kNonBlocking, TxnKind::kWrite, 1), "datagram"),
            4);
  EXPECT_EQ(count(CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 1), "datagram"),
            2);
}

TEST(StaticAnalysisTest, NonBlockingReadMatchesTwoPhaseShape) {
  // "A transaction that is completely read-only has the same critical path
  // performance as in two-phase commitment."
  EXPECT_DOUBLE_EQ(CompletionPath(CommitProtocol::kNonBlocking, TxnKind::kRead, 2).TotalMs(),
                   CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kRead, 2).TotalMs());
}

TEST(StaticAnalysisTest, OperationProcessingMatchesPaperDerivation) {
  // "the number of milliseconds to subtract is 3.5 + 29N".
  EXPECT_DOUBLE_EQ(OperationProcessingMs(0), 3.5);
  EXPECT_DOUBLE_EQ(OperationProcessingMs(1), 32.5);
  EXPECT_DOUBLE_EQ(OperationProcessingMs(3), 90.5);
}

TEST(StaticAnalysisTest, FormulaRendersCounts) {
  const auto path = CriticalPath(CommitProtocol::kNonBlocking, TxnKind::kWrite, 1);
  EXPECT_EQ(path.Formula(), "4 LF + 5 DG + 1 RPC + 12.5ms local");
}

TEST(StaticAnalysisTest, CustomPrimitiveCostsPropagate) {
  PrimitiveCosts costs;
  costs.log_force = 30.0;  // A slower disk.
  const double base = CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 0).TotalMs();
  const double slow =
      CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 0, costs).TotalMs();
  EXPECT_DOUBLE_EQ(slow - base, 15.0);
}

// --- Parameterized structural sweep -----------------------------------------

using Cell = std::tuple<CommitProtocol, TxnKind, int>;

class PathInvariantTest : public ::testing::TestWithParam<Cell> {};

TEST_P(PathInvariantTest, CriticalPathDominatesCompletionPath) {
  auto [protocol, kind, subs] = GetParam();
  const double completion = CompletionPath(protocol, kind, subs).TotalMs();
  const double critical = CriticalPath(protocol, kind, subs).TotalMs();
  EXPECT_GT(critical, completion);
}

TEST_P(PathInvariantTest, WritesCostAtLeastAsMuchAsReads) {
  auto [protocol, kind, subs] = GetParam();
  if (kind != TxnKind::kWrite) {
    GTEST_SKIP();
  }
  EXPECT_GE(CompletionPath(protocol, TxnKind::kWrite, subs).TotalMs(),
            CompletionPath(protocol, TxnKind::kRead, subs).TotalMs());
}

TEST_P(PathInvariantTest, MoreSubordinatesNeverCheaper) {
  auto [protocol, kind, subs] = GetParam();
  if (subs == 0) {
    GTEST_SKIP();
  }
  EXPECT_GT(CompletionPath(protocol, kind, subs).TotalMs(),
            CompletionPath(protocol, kind, subs - 1).TotalMs());
}

TEST_P(PathInvariantTest, NonBlockingNeverCheaperThanTwoPhase) {
  auto [protocol, kind, subs] = GetParam();
  if (protocol != CommitProtocol::kNonBlocking || subs == 0) {
    GTEST_SKIP();
  }
  EXPECT_GE(CompletionPath(CommitProtocol::kNonBlocking, kind, subs).TotalMs(),
            CompletionPath(CommitProtocol::kTwoPhase, kind, subs).TotalMs());
}

TEST_P(PathInvariantTest, EventCostsAreAllPositive) {
  auto [protocol, kind, subs] = GetParam();
  for (const auto& ev : CriticalPath(protocol, kind, subs).events) {
    EXPECT_GT(ev.ms, 0.0) << ev.name;
  }
}

std::string CellName(const ::testing::TestParamInfo<Cell>& info) {
  std::string name =
      std::get<0>(info.param) == CommitProtocol::kTwoPhase ? "TwoPhase" : "NonBlocking";
  name += std::get<1>(info.param) == TxnKind::kRead ? "Read" : "Write";
  name += std::to_string(std::get<2>(info.param)) + "Subs";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, PathInvariantTest,
    ::testing::Combine(::testing::Values(CommitProtocol::kTwoPhase,
                                         CommitProtocol::kNonBlocking),
                       ::testing::Values(TxnKind::kRead, TxnKind::kWrite),
                       ::testing::Values(0, 1, 2, 3, 5, 8)),
    CellName);

// --- Expected primitive-count vectors: edge cases ----------------------------

TEST(ExpectedCountsTest, ZeroSubordinates) {
  // Local update: exactly one commit force, nothing else on the protocol side.
  const CountVector write = ExpectedProtocolCounts(
      CommitOptions::Optimized(), /*update_subs=*/0, /*readonly_subs=*/0,
      /*local_updates=*/true, TxnOutcome::kCommit);
  EXPECT_EQ(write, (CountVector{{"coord/local.commit/force", 1}}));
  // Local read: no log activity, no messages at all.
  const CountVector read = ExpectedProtocolCounts(
      CommitOptions::Optimized(), 0, 0, /*local_updates=*/false, TxnOutcome::kCommit);
  EXPECT_TRUE(read.empty());
}

TEST(ExpectedCountsTest, ReadOnlySubordinateVoteHasNoPrepareForce) {
  // A read-only voter writes nothing: phase 1 messages only, zero forces, and
  // (presumed abort) no phase 2 when nobody updated.
  const CountVector counts = ExpectedProtocolCounts(
      CommitOptions::Optimized(), /*update_subs=*/0, /*readonly_subs=*/2,
      /*local_updates=*/false, TxnOutcome::kCommit);
  EXPECT_EQ(counts, (CountVector{{"coord/PREPARE/dgram", 2}, {"sub/VOTE/dgram", 2}}));
  // A read-only voter alongside update subordinates still forces nothing.
  const CountVector mixed = ExpectedProtocolCounts(
      CommitOptions::Optimized(), /*update_subs=*/1, /*readonly_subs=*/1,
      /*local_updates=*/false, TxnOutcome::kCommit);
  EXPECT_EQ(mixed.at("sub/prepare/force"), 1);
  EXPECT_EQ(mixed.at("coord/PREPARE/dgram"), 2);
  EXPECT_EQ(mixed.at("coord/COMMIT/dgram"), 1);  // Read-only voter is done.
}

TEST(ExpectedCountsTest, Section32RemovedSubordinateCommitForce) {
  auto counts = [](const CommitOptions& options) {
    return ExpectedProtocolCounts(options, /*update_subs=*/2, /*readonly_subs=*/0,
                                  /*local_updates=*/true, TxnOutcome::kCommit);
  };
  const CountVector optimized = counts(CommitOptions::Optimized());
  const CountVector unoptimized = counts(CommitOptions::Unoptimized());
  const CountVector intermediate = counts(CommitOptions::Intermediate());
  // Optimized (Section 3.2): commit record spooled, force deferred to the ack.
  EXPECT_EQ(optimized.count("sub/commit/force"), 0u);
  EXPECT_EQ(optimized.at("sub/commit/spool"), 2);
  EXPECT_EQ(optimized.at("sub/ack/force"), 2);
  // Unoptimized baseline: the commit record itself is forced, ack immediate.
  EXPECT_EQ(unoptimized.at("sub/commit/force"), 2);
  EXPECT_EQ(unoptimized.count("sub/commit/spool"), 0u);
  EXPECT_EQ(unoptimized.count("sub/ack/force"), 0u);
  // Intermediate: forces the commit record AND delays the ack behind an ack
  // force — strictly more forces than either endpoint of the comparison.
  EXPECT_EQ(intermediate.at("sub/commit/force"), 2);
  EXPECT_EQ(intermediate.at("sub/ack/force"), 2);
  // Either way the datagram counts are identical: the optimization moves log
  // work, not messages.
  for (const char* key : {"coord/PREPARE/dgram", "sub/VOTE/dgram", "coord/COMMIT/dgram",
                          "sub/COMMIT-ACK/dgram"}) {
    EXPECT_EQ(optimized.at(key), unoptimized.at(key)) << key;
  }
}

TEST(ExpectedCountsTest, AbortPath) {
  // Client abort before prepare: unforced abort records and one-way ABORTs,
  // no acks (presumed abort lets the coordinator forget immediately).
  const CountVector counts = ExpectedProtocolCounts(
      CommitOptions::Optimized(), /*update_subs=*/2, /*readonly_subs=*/1,
      /*local_updates=*/true, TxnOutcome::kAbort);
  EXPECT_EQ(counts, (CountVector{{"coord/ABORT/dgram", 3},
                                 {"coord/abort/spool", 1},
                                 {"sub/abort/spool", 3}}));
  // The abort path is variant-independent: no prepare happened, so the
  // commit-force options never come into play.
  for (const auto& options :
       {CommitOptions::Unoptimized(), CommitOptions::Intermediate(),
        CommitOptions::NonBlocking()}) {
    EXPECT_EQ(ExpectedProtocolCounts(options, 2, 1, true, TxnOutcome::kAbort), counts);
  }
}

TEST(ExpectedCountsTest, NonBlockingQuorumWidensReplicationTargets) {
  // u=2, r=1: n=4, quorum=3, coordinator + update subs reach it — replicate
  // only to the update subordinates.
  const CountVector narrow = ExpectedProtocolCounts(
      CommitOptions::NonBlocking(), /*update_subs=*/2, /*readonly_subs=*/1,
      /*local_updates=*/true, TxnOutcome::kCommit);
  EXPECT_EQ(narrow.at("coord/REPLICATE/dgram"), 2);
  EXPECT_EQ(narrow.at("sub/accept.replicate/force"), 2);
  // u=1, r=2: n=4, quorum=3, update sites alone cannot form it — widen to all.
  const CountVector wide = ExpectedProtocolCounts(
      CommitOptions::NonBlocking(), /*update_subs=*/1, /*readonly_subs=*/2,
      /*local_updates=*/true, TxnOutcome::kCommit);
  EXPECT_EQ(wide.at("coord/REPLICATE/dgram"), 3);
  EXPECT_EQ(wide.at("sub/accept.replicate/force"), 3);
  // The notify phase always covers every subordinate.
  EXPECT_EQ(narrow.at("coord/COMMIT/dgram"), 3);
  EXPECT_EQ(wide.at("coord/COMMIT/dgram"), 3);
}

TEST(ExpectedCountsTest, MinimalTxnAddsIpcLayer) {
  // Local-only read: begin + join + commit calls, one server operation, a
  // vote upcall and a drop-locks one-way. No protocol primitives at all.
  const CountVector read = ExpectedMinimalTxnCounts(
      CommitOptions::Optimized(), TxnKind::kRead, /*subordinates=*/0,
      TxnOutcome::kCommit);
  EXPECT_EQ(read, (CountVector{{"ipc/server/call", 1},
                               {"ipc/server/oneway", 1},
                               {"ipc/server/server_call", 1},
                               {"ipc/tranman/call", 3}}));
  // Aborting skips the vote/drop-locks one-ways: undo happens inside the
  // abort-family call.
  const CountVector abort = ExpectedMinimalTxnCounts(
      CommitOptions::Optimized(), TxnKind::kRead, /*subordinates=*/0,
      TxnOutcome::kAbort);
  EXPECT_EQ(abort.count("ipc/server/oneway"), 0u);
  // Each subordinate adds one join call and one remote RPC.
  const CountVector remote = ExpectedMinimalTxnCounts(
      CommitOptions::Optimized(), TxnKind::kRead, /*subordinates=*/2,
      TxnOutcome::kCommit);
  EXPECT_EQ(remote.at("ipc/tranman/call"), 5);
  EXPECT_EQ(remote.at("ipc/comman/rpc"), 2);
}

}  // namespace
}  // namespace camelot
