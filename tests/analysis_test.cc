// Tests for the static-analysis module: the paper's published totals, path
// relationships, and formula rendering. Parameterized sweeps check the
// structural invariants across every (protocol, kind, subordinates) cell.
#include <gtest/gtest.h>

#include <tuple>

#include "src/analysis/static_analysis.h"

namespace camelot {
namespace {

TEST(StaticAnalysisTest, PaperTotalsLocal) {
  // Table 3: local update 24.5, local read 9.5.
  EXPECT_DOUBLE_EQ(CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 0).TotalMs(),
                   24.5);
  EXPECT_DOUBLE_EQ(CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kRead, 0).TotalMs(),
                   9.5);
}

TEST(StaticAnalysisTest, TwoPhaseOneSubUpdateNearPaper) {
  // The paper's lumped estimate is 99.5; our itemization is slightly leaner
  // (we do not lump "20 ms of local transaction management messages").
  const double total = CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 1).TotalMs();
  EXPECT_GE(total, 85.0);
  EXPECT_LE(total, 100.0);
}

TEST(StaticAnalysisTest, NonBlockingCountsMatchPaperSection43) {
  // "the critical path consists of 4 log forces and 5 messages. This compares
  // to 2 and 3, respectively, for two-phase commit."
  auto count = [](const PathAnalysis& path, const char* needle) {
    int n = 0;
    for (const auto& ev : path.events) {
      if (ev.name.find(needle) != std::string::npos) {
        ++n;
      }
    }
    return n;
  };
  const auto nbc = CriticalPath(CommitProtocol::kNonBlocking, TxnKind::kWrite, 1);
  EXPECT_EQ(count(nbc, "log force"), 4);
  EXPECT_EQ(count(nbc, "datagram"), 5);
  const auto two_phase = CriticalPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 1);
  EXPECT_EQ(count(two_phase, "log force"), 2);
  EXPECT_EQ(count(two_phase, "datagram"), 3);
  // "The length of the completion path is one datagram shorter for both."
  EXPECT_EQ(count(CompletionPath(CommitProtocol::kNonBlocking, TxnKind::kWrite, 1), "datagram"),
            4);
  EXPECT_EQ(count(CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 1), "datagram"),
            2);
}

TEST(StaticAnalysisTest, NonBlockingReadMatchesTwoPhaseShape) {
  // "A transaction that is completely read-only has the same critical path
  // performance as in two-phase commitment."
  EXPECT_DOUBLE_EQ(CompletionPath(CommitProtocol::kNonBlocking, TxnKind::kRead, 2).TotalMs(),
                   CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kRead, 2).TotalMs());
}

TEST(StaticAnalysisTest, OperationProcessingMatchesPaperDerivation) {
  // "the number of milliseconds to subtract is 3.5 + 29N".
  EXPECT_DOUBLE_EQ(OperationProcessingMs(0), 3.5);
  EXPECT_DOUBLE_EQ(OperationProcessingMs(1), 32.5);
  EXPECT_DOUBLE_EQ(OperationProcessingMs(3), 90.5);
}

TEST(StaticAnalysisTest, FormulaRendersCounts) {
  const auto path = CriticalPath(CommitProtocol::kNonBlocking, TxnKind::kWrite, 1);
  EXPECT_EQ(path.Formula(), "4 LF + 5 DG + 1 RPC + 12.5ms local");
}

TEST(StaticAnalysisTest, CustomPrimitiveCostsPropagate) {
  PrimitiveCosts costs;
  costs.log_force = 30.0;  // A slower disk.
  const double base = CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 0).TotalMs();
  const double slow =
      CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 0, costs).TotalMs();
  EXPECT_DOUBLE_EQ(slow - base, 15.0);
}

// --- Parameterized structural sweep -----------------------------------------

using Cell = std::tuple<CommitProtocol, TxnKind, int>;

class PathInvariantTest : public ::testing::TestWithParam<Cell> {};

TEST_P(PathInvariantTest, CriticalPathDominatesCompletionPath) {
  auto [protocol, kind, subs] = GetParam();
  const double completion = CompletionPath(protocol, kind, subs).TotalMs();
  const double critical = CriticalPath(protocol, kind, subs).TotalMs();
  EXPECT_GT(critical, completion);
}

TEST_P(PathInvariantTest, WritesCostAtLeastAsMuchAsReads) {
  auto [protocol, kind, subs] = GetParam();
  if (kind != TxnKind::kWrite) {
    GTEST_SKIP();
  }
  EXPECT_GE(CompletionPath(protocol, TxnKind::kWrite, subs).TotalMs(),
            CompletionPath(protocol, TxnKind::kRead, subs).TotalMs());
}

TEST_P(PathInvariantTest, MoreSubordinatesNeverCheaper) {
  auto [protocol, kind, subs] = GetParam();
  if (subs == 0) {
    GTEST_SKIP();
  }
  EXPECT_GT(CompletionPath(protocol, kind, subs).TotalMs(),
            CompletionPath(protocol, kind, subs - 1).TotalMs());
}

TEST_P(PathInvariantTest, NonBlockingNeverCheaperThanTwoPhase) {
  auto [protocol, kind, subs] = GetParam();
  if (protocol != CommitProtocol::kNonBlocking || subs == 0) {
    GTEST_SKIP();
  }
  EXPECT_GE(CompletionPath(CommitProtocol::kNonBlocking, kind, subs).TotalMs(),
            CompletionPath(CommitProtocol::kTwoPhase, kind, subs).TotalMs());
}

TEST_P(PathInvariantTest, EventCostsAreAllPositive) {
  auto [protocol, kind, subs] = GetParam();
  for (const auto& ev : CriticalPath(protocol, kind, subs).events) {
    EXPECT_GT(ev.ms, 0.0) << ev.name;
  }
}

std::string CellName(const ::testing::TestParamInfo<Cell>& info) {
  std::string name =
      std::get<0>(info.param) == CommitProtocol::kTwoPhase ? "TwoPhase" : "NonBlocking";
  name += std::get<1>(info.param) == TxnKind::kRead ? "Read" : "Write";
  name += std::to_string(std::get<2>(info.param)) + "Subs";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, PathInvariantTest,
    ::testing::Combine(::testing::Values(CommitProtocol::kTwoPhase,
                                         CommitProtocol::kNonBlocking),
                       ::testing::Values(TxnKind::kRead, TxnKind::kWrite),
                       ::testing::Values(0, 1, 2, 3, 5, 8)),
    CellName);

}  // namespace
}  // namespace camelot
