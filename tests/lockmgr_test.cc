// Tests for the family-based lock manager: compatibility rules, FIFO waiting,
// upgrades, timeouts (deadlock fallback), Moss nested-transaction lock
// movement, and randomized invariant sweeps.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/lockmgr/lock_manager.h"
#include "src/sim/scheduler.h"

namespace camelot {
namespace {

Tid MakeTid(uint32_t origin, uint64_t seq, uint32_t serial = 0, uint32_t parent = 0) {
  return Tid{FamilyId{SiteId{origin}, seq}, serial, parent};
}

struct Rig {
  Rig() : sched(1), lm(sched) {}
  // Runs an acquire to completion assuming it can finish without new events.
  Status AcquireNow(const Tid& tid, const std::string& obj, LockMode mode,
                    SimDuration timeout = -1) {
    std::optional<Status> out;
    sched.Spawn([](LockManager& l, Tid t, std::string o, LockMode m, SimDuration to,
                   std::optional<Status>* res) -> Async<void> {
      *res = co_await l.Acquire(t, o, m, to);
    }(lm, tid, obj, mode, timeout, &out));
    sched.RunUntilIdle();
    return out.value_or(InternalError("acquire did not complete"));
  }
  // Starts an acquire that may block; the result lands in *out when granted.
  void AcquireAsync(const Tid& tid, const std::string& obj, LockMode mode,
                    std::optional<Status>* out, SimDuration timeout = -1) {
    sched.Spawn([](LockManager& l, Tid t, std::string o, LockMode m, SimDuration to,
                   std::optional<Status>* res) -> Async<void> {
      *res = co_await l.Acquire(t, o, m, to);
    }(lm, tid, obj, mode, timeout, out));
  }

  Scheduler sched;
  LockManager lm;
};

const Tid kA1 = MakeTid(1, 1);
const Tid kB1 = MakeTid(1, 2);

TEST(LockManagerTest, SharedLocksAcrossFamiliesCoexist) {
  Rig rig;
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kShared).ok());
  EXPECT_TRUE(rig.AcquireNow(kB1, "x", LockMode::kShared).ok());
  EXPECT_EQ(rig.lm.held_lock_count(), 2u);
}

TEST(LockManagerTest, ExclusiveConflictsAcrossFamilies) {
  Rig rig;
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kExclusive).ok());
  std::optional<Status> blocked;
  rig.AcquireAsync(kB1, "x", LockMode::kExclusive, &blocked);
  rig.sched.RunUntilIdle();
  EXPECT_FALSE(blocked.has_value());  // Still waiting.
  rig.lm.Release(kA1, "x");
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(blocked.has_value());
  EXPECT_TRUE(blocked->ok());
}

TEST(LockManagerTest, SameFamilyNeverConflicts) {
  Rig rig;
  const Tid parent = MakeTid(1, 7, 0);
  const Tid child = MakeTid(1, 7, 1, 0);
  EXPECT_TRUE(rig.AcquireNow(parent, "x", LockMode::kExclusive).ok());
  EXPECT_TRUE(rig.AcquireNow(child, "x", LockMode::kExclusive).ok());
  EXPECT_TRUE(rig.lm.Holds(parent, "x", LockMode::kExclusive));
  EXPECT_TRUE(rig.lm.Holds(child, "x", LockMode::kExclusive));
}

TEST(LockManagerTest, SharedBlocksExclusiveUntilReleased) {
  Rig rig;
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kShared).ok());
  std::optional<Status> writer;
  rig.AcquireAsync(kB1, "x", LockMode::kExclusive, &writer);
  rig.sched.RunUntilIdle();
  EXPECT_FALSE(writer.has_value());
  rig.lm.Release(kA1, "x");
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(writer.has_value());
  EXPECT_TRUE(writer->ok());
  EXPECT_TRUE(rig.lm.Holds(kB1, "x", LockMode::kExclusive));
}

TEST(LockManagerTest, ReacquireHeldLockIsImmediate) {
  Rig rig;
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kExclusive).ok());
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kShared).ok());
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kExclusive).ok());
  EXPECT_EQ(rig.lm.held_lock_count(), 1u);
}

TEST(LockManagerTest, UpgradeSharedToExclusiveWhenAlone) {
  Rig rig;
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kShared).ok());
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kExclusive).ok());
  EXPECT_TRUE(rig.lm.Holds(kA1, "x", LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeWaitsForOtherFamilyReader) {
  Rig rig;
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kShared).ok());
  EXPECT_TRUE(rig.AcquireNow(kB1, "x", LockMode::kShared).ok());
  std::optional<Status> upgrade;
  rig.AcquireAsync(kA1, "x", LockMode::kExclusive, &upgrade);
  rig.sched.RunUntilIdle();
  EXPECT_FALSE(upgrade.has_value());
  rig.lm.Release(kB1, "x");
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(upgrade.has_value());
  EXPECT_TRUE(upgrade->ok());
  EXPECT_TRUE(rig.lm.Holds(kA1, "x", LockMode::kExclusive));
}

TEST(LockManagerTest, FifoOrderAmongWaiters) {
  Rig rig;
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kExclusive).ok());
  std::vector<int> grant_order;
  for (int i = 0; i < 3; ++i) {
    rig.sched.Spawn([](LockManager& l, Tid t, std::vector<int>* order, int id,
                       Scheduler& s) -> Async<void> {
      Status st = co_await l.Acquire(t, "x", LockMode::kExclusive, -1);
      EXPECT_TRUE(st.ok());
      order->push_back(id);
      co_await s.Delay(Usec(10));
      l.Release(t, "x");
    }(rig.lm, MakeTid(2, static_cast<uint64_t>(10 + i)), &grant_order, i, rig.sched));
  }
  rig.sched.RunUntilIdle();
  EXPECT_TRUE(grant_order.empty());
  rig.lm.Release(kA1, "x");
  rig.sched.RunUntilIdle();
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2}));
}

TEST(LockManagerTest, NoQueueJumpingPastWaiters) {
  Rig rig;
  // Holder S(A); waiter X(B); a later S(C) must NOT overtake B's X.
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kShared).ok());
  std::optional<Status> writer;
  std::optional<Status> reader;
  rig.AcquireAsync(kB1, "x", LockMode::kExclusive, &writer);
  rig.sched.RunUntilIdle();
  rig.AcquireAsync(MakeTid(3, 3), "x", LockMode::kShared, &reader);
  rig.sched.RunUntilIdle();
  EXPECT_FALSE(writer.has_value());
  EXPECT_FALSE(reader.has_value());  // Queued behind the writer.
  rig.lm.Release(kA1, "x");
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(writer.has_value());
  EXPECT_FALSE(reader.has_value());  // Writer holds X now.
  rig.lm.Release(kB1, "x");
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(reader.has_value());
}

TEST(LockManagerTest, TimeoutBreaksDeadlock) {
  Rig rig;
  // Classic two-family deadlock: A holds x wants y; B holds y wants x.
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kExclusive).ok());
  EXPECT_TRUE(rig.AcquireNow(kB1, "y", LockMode::kExclusive).ok());
  std::optional<Status> a_wants_y;
  std::optional<Status> b_wants_x;
  rig.AcquireAsync(kA1, "y", LockMode::kExclusive, &a_wants_y, Msec(100));
  rig.AcquireAsync(kB1, "x", LockMode::kExclusive, &b_wants_x, Msec(200));
  // After A times out at 100ms (and in a real system aborts, releasing x), B
  // can go — release at 150ms, before B's own 200ms timeout.
  rig.sched.Post(Msec(150), [&] {
    ASSERT_TRUE(a_wants_y.has_value());
    EXPECT_EQ(a_wants_y->code(), StatusCode::kTimedOut);
    rig.lm.ReleaseAll(kA1);
  });
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(b_wants_x.has_value());
  EXPECT_TRUE(b_wants_x->ok());
  EXPECT_EQ(rig.lm.counters().timeouts, 1u);
}

TEST(LockManagerTest, TimedOutWaiterUnblocksCompatibleLaterWaiters) {
  Rig rig;
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kShared).ok());
  std::optional<Status> writer;
  std::optional<Status> reader;
  rig.AcquireAsync(kB1, "x", LockMode::kExclusive, &writer, Msec(50));
  rig.sched.RunUntilIdle();
  rig.AcquireAsync(MakeTid(3, 3), "x", LockMode::kShared, &reader);
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(writer.has_value());
  EXPECT_EQ(writer->code(), StatusCode::kTimedOut);
  // With the X request withdrawn, the queued S is now compatible.
  ASSERT_TRUE(reader.has_value());
  EXPECT_TRUE(reader->ok());
}

TEST(LockManagerTest, MoveToParentTransfersOwnership) {
  Rig rig;
  const Tid parent = MakeTid(1, 5, 0);
  const Tid child = MakeTid(1, 5, 1, 0);
  EXPECT_TRUE(rig.AcquireNow(child, "x", LockMode::kExclusive).ok());
  EXPECT_TRUE(rig.AcquireNow(child, "y", LockMode::kShared).ok());
  EXPECT_TRUE(rig.AcquireNow(parent, "y", LockMode::kExclusive).ok());
  rig.lm.MoveToParent(child, parent);
  EXPECT_TRUE(rig.lm.Holds(parent, "x", LockMode::kExclusive));
  EXPECT_FALSE(rig.lm.Holds(child, "x", LockMode::kShared));
  EXPECT_TRUE(rig.lm.Holds(parent, "y", LockMode::kExclusive));  // Mode merge keeps X.
  EXPECT_EQ(rig.lm.held_lock_count(), 2u);
}

TEST(LockManagerTest, ReleaseFamilyDropsEverything) {
  Rig rig;
  const Tid top = MakeTid(1, 9, 0);
  const Tid nested = MakeTid(1, 9, 1, 0);
  EXPECT_TRUE(rig.AcquireNow(top, "x", LockMode::kExclusive).ok());
  EXPECT_TRUE(rig.AcquireNow(nested, "y", LockMode::kExclusive).ok());
  std::optional<Status> other;
  rig.AcquireAsync(kB1, "x", LockMode::kExclusive, &other);
  rig.sched.RunUntilIdle();
  rig.lm.ReleaseFamily(top.family);
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(other.has_value());
  EXPECT_TRUE(other->ok());
  EXPECT_EQ(rig.lm.held_lock_count(), 1u);  // Only B's fresh lock.
}

TEST(LockManagerTest, ClearWakesWaitersWithUnavailable) {
  Rig rig;
  EXPECT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kExclusive).ok());
  std::optional<Status> waiting;
  rig.AcquireAsync(kB1, "x", LockMode::kExclusive, &waiting);
  rig.sched.RunUntilIdle();
  rig.lm.Clear();
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(waiting.has_value());
  EXPECT_EQ(waiting->code(), StatusCode::kUnavailable);
  EXPECT_EQ(rig.lm.held_lock_count(), 0u);
}

// Property sweep: random acquire/release traffic; invariant: an object with an
// exclusive holder has holders from exactly one family.
TEST(LockManagerTest, RandomTrafficPreservesExclusionInvariant) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Scheduler sched(seed);
    LockManager lm(sched);
    Rng rng(seed * 1234);
    const int n_families = 4;
    const int n_objects = 3;
    int violations = 0;

    for (int f = 0; f < n_families; ++f) {
      sched.Spawn([](Scheduler& s, LockManager& l, Rng* r, int fam, int objects,
                     int* bad) -> Async<void> {
        const Tid tid = MakeTid(1, static_cast<uint64_t>(fam));
        for (int step = 0; step < 50; ++step) {
          const std::string obj = "obj" + std::to_string(r->NextBounded(
                                              static_cast<uint64_t>(objects)));
          const LockMode mode = r->NextBool(0.5) ? LockMode::kShared : LockMode::kExclusive;
          Status st = co_await l.Acquire(tid, obj, mode, Msec(200));
          if (st.ok()) {
            // Invariant check while holding.
            if (mode == LockMode::kExclusive && !l.Holds(tid, obj, LockMode::kExclusive)) {
              ++*bad;
            }
            co_await s.Delay(Usec(static_cast<int64_t>(r->NextBounded(3000))));
            l.Release(tid, obj);
          }
          co_await s.Delay(Usec(static_cast<int64_t>(r->NextBounded(2000))));
        }
      }(sched, lm, &rng, f, n_objects, &violations));
    }
    sched.RunUntilIdle();
    EXPECT_EQ(violations, 0) << "seed " << seed;
    EXPECT_EQ(lm.held_lock_count(), 0u) << "seed " << seed;
    EXPECT_EQ(lm.waiter_count(), 0u) << "seed " << seed;
  }
}

TEST(LockManagerTest, MassWakeupTimeoutCountIsExact) {
  // Sixteen waiters from distinct families, all with the same timeout, queue
  // behind one exclusive holder that never releases. Every timer fires at the
  // same virtual instant; the timeout counter must equal exactly the number
  // of waiters -- no double-counting a waiter its own wakeup already removed.
  Rig rig;
  ASSERT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kExclusive).ok());
  const uint64_t before = rig.lm.counters().timeouts;
  constexpr int kWaiters = 16;
  std::vector<std::optional<Status>> results(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    rig.AcquireAsync(MakeTid(1, 100 + static_cast<uint64_t>(i)), "x", LockMode::kExclusive,
                     &results[i], Msec(50));
  }
  rig.sched.RunUntilIdle();
  for (int i = 0; i < kWaiters; ++i) {
    ASSERT_TRUE(results[i].has_value()) << i;
    EXPECT_FALSE(results[i]->ok()) << i;
  }
  EXPECT_EQ(rig.lm.counters().timeouts - before, static_cast<uint64_t>(kWaiters));
  EXPECT_EQ(rig.lm.waiter_count(), 0u);
  EXPECT_EQ(rig.lm.held_lock_count(), 1u);  // Only the original holder.
}

TEST(LockManagerTest, ReleaseRacingMassTimeoutNeverCountsAWaiterTwice) {
  // The holder releases at the exact instant every waiter's timer fires. Each
  // waiter resolves exactly one way -- granted or timed out -- so grants plus
  // timeouts must account for every waiter exactly once, and nobody lingers.
  Rig rig;
  ASSERT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kExclusive).ok());
  const uint64_t timeouts_before = rig.lm.counters().timeouts;
  constexpr int kWaiters = 8;
  std::vector<std::optional<Status>> results(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    rig.AcquireAsync(MakeTid(1, 200 + static_cast<uint64_t>(i)), "x", LockMode::kExclusive,
                     &results[i], Msec(50));
  }
  rig.sched.Post(Msec(50), [&rig] { rig.lm.Release(kA1, "x"); });
  rig.sched.RunUntilIdle();
  int granted = 0;
  for (int i = 0; i < kWaiters; ++i) {
    ASSERT_TRUE(results[i].has_value()) << i;
    granted += results[i]->ok() ? 1 : 0;
  }
  const uint64_t timed_out = rig.lm.counters().timeouts - timeouts_before;
  EXPECT_EQ(granted + static_cast<int>(timed_out), kWaiters);
  EXPECT_EQ(rig.lm.waiter_count(), 0u);
}

TEST(LockManagerTest, HoldTimeAccountingSpansGrantToRelease) {
  Rig rig;
  ASSERT_TRUE(rig.AcquireNow(kA1, "x", LockMode::kExclusive).ok());
  rig.sched.Post(Msec(250), [&rig] { rig.lm.Release(kA1, "x"); });
  rig.sched.RunUntilIdle();
  EXPECT_EQ(rig.lm.counters().total_hold_time_us, static_cast<uint64_t>(Msec(250)));

  // ReleaseFamily accumulates every lock the family still holds.
  ASSERT_TRUE(rig.AcquireNow(kB1, "y", LockMode::kShared).ok());
  ASSERT_TRUE(rig.AcquireNow(kB1, "z", LockMode::kExclusive).ok());
  rig.sched.Post(Msec(100), [&rig] { rig.lm.ReleaseFamily(kB1.family); });
  rig.sched.RunUntilIdle();
  EXPECT_EQ(rig.lm.counters().total_hold_time_us,
            static_cast<uint64_t>(Msec(250) + 2 * Msec(100)));
}

}  // namespace
}  // namespace camelot
