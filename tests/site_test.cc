// Tests for Site-level behaviour not covered elsewhere: the single-master-
// processor kernel bottleneck, crash/restart listener ordering, and
// incarnation visibility.
#include <gtest/gtest.h>

#include <vector>

#include "src/ipc/site.h"
#include "src/net/network.h"
#include "src/sim/scheduler.h"

namespace camelot {
namespace {

NetConfig QuietNet() {
  NetConfig cfg;
  cfg.send_jitter_mean = 0;
  cfg.stall_probability = 0;
  cfg.receive_skew_mean = 0;
  return cfg;
}

TEST(SiteKernelTest, KernelSerializesDispatchesOnOneProcessor) {
  Scheduler sched;
  Network net(sched, QuietNet());
  IpcConfig ipc;
  ipc.kernel_cpu_per_ipc = Msec(5);
  Site site(sched, net, SiteId{0}, ipc);
  // A handler that returns instantly: all cost is kernel dispatch.
  site.RegisterService("noop", [](RpcContext, uint32_t, Bytes) -> Async<RpcResult> {
    co_return RpcResult{OkStatus(), {}};
  });
  // Fire 4 concurrent calls; with an EXPONENTIAL kernel cost the individual
  // delays vary, but the four dispatches must be strictly serial: the total
  // elapsed time equals the SUM of the per-dispatch draws, which for the
  // seeded RNG is deterministic and must exceed any single draw by ~4x on
  // average. We assert seriality structurally: no two handlers overlap.
  int in_kernel_handlers = 0;
  int overlaps = 0;
  site.RegisterService("probe", [&](RpcContext, uint32_t, Bytes) -> Async<RpcResult> {
    if (in_kernel_handlers > 0) {
      ++overlaps;
    }
    ++in_kernel_handlers;
    co_await sched.Delay(Usec(1));
    --in_kernel_handlers;
    co_return RpcResult{OkStatus(), {}};
  });
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    sched.Spawn([](Site& s, int* d) -> Async<void> {
      co_await s.CallLocal("probe", 0, {}, RpcContext{}, false);
      ++*d;
    }(site, &done));
  }
  sched.RunUntilIdle();
  EXPECT_EQ(done, 4);
  // The kernel queue spaces the handlers out; the 1 us handler bodies cannot
  // overlap when every dispatch holds the single kernel processor first.
  EXPECT_EQ(overlaps, 0);
}

TEST(SiteKernelTest, ZeroKernelCostMeansFullConcurrency) {
  Scheduler sched;
  Network net(sched, QuietNet());
  Site site(sched, net, SiteId{0}, IpcConfig{});  // kernel_cpu_per_ipc = 0.
  int concurrent = 0;
  int peak = 0;
  site.RegisterService("slow", [&](RpcContext, uint32_t, Bytes) -> Async<RpcResult> {
    ++concurrent;
    peak = std::max(peak, concurrent);
    co_await sched.Delay(Msec(10));
    --concurrent;
    co_return RpcResult{OkStatus(), {}};
  });
  for (int i = 0; i < 4; ++i) {
    sched.Spawn([](Site& s) -> Async<void> {
      co_await s.CallLocal("slow", 0, {}, RpcContext{}, false);
    }(site));
  }
  sched.RunUntilIdle();
  EXPECT_EQ(peak, 4);
}

TEST(SiteTest, CrashListenersFireOnceAndInOrder) {
  Scheduler sched;
  Network net(sched, QuietNet());
  Site site(sched, net, SiteId{0}, IpcConfig{});
  std::vector<int> fired;
  site.AddCrashListener([&] { fired.push_back(1); });
  site.AddCrashListener([&] { fired.push_back(2); });
  site.AddRestartListener([&] { fired.push_back(3); });
  site.Crash();
  site.Crash();  // Idempotent.
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  site.Restart();
  site.Restart();  // Idempotent.
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(site.incarnation(), 1u);
  site.Crash();
  site.Restart();
  EXPECT_EQ(site.incarnation(), 2u);
}

TEST(SiteTest, CallsDuringCrashFailWithUnavailable) {
  Scheduler sched;
  Network net(sched, QuietNet());
  Site site(sched, net, SiteId{0}, IpcConfig{});
  site.RegisterService("slow", [&](RpcContext, uint32_t, Bytes) -> Async<RpcResult> {
    co_await sched.Delay(Msec(50));
    co_return RpcResult{OkStatus(), {}};
  });
  std::optional<RpcResult> result;
  sched.Spawn([](Site& s, std::optional<RpcResult>* out) -> Async<void> {
    *out = co_await s.CallLocal("slow", 0, {}, RpcContext{}, false);
  }(site, &result));
  sched.Post(Msec(10), [&] { site.Crash(); });
  sched.RunUntilIdle();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace camelot
