// Tests for the Disk Manager: buffer-pool behaviour, the write-ahead-log rule
// at eviction, crash semantics, and recovery-path access.
#include <gtest/gtest.h>

#include <string>

#include "src/diskmgr/disk_manager.h"
#include "src/sim/scheduler.h"
#include "src/wal/stable_log.h"

namespace camelot {
namespace {

const Tid kTid{FamilyId{SiteId{1}, 1}, 0, 0};

struct Rig {
  explicit Rig(DiskConfig cfg = DiskConfig{}) : sched(1), log(sched, LogConfig{}),
                                                disk(sched, log, cfg) {}

  // Appends an update record and installs the value; returns the record LSN.
  Lsn WriteObj(const std::string& object, uint8_t value) {
    Lsn lsn;
    sched.Spawn([](Rig* rig, std::string obj, uint8_t v, Lsn* out) -> Async<void> {
      Bytes bytes(1, v);
      *out = rig->log.Append(LogRecord::Update(kTid, "srv", obj, {}, bytes));
      co_await rig->disk.Write("srv", obj, bytes, *out);
    }(this, object, value, &lsn));
    sched.RunUntilIdle();
    return lsn;
  }

  std::optional<Bytes> ReadObj(const std::string& object) {
    std::optional<Bytes> out;
    sched.Spawn([](Rig* rig, std::string obj, std::optional<Bytes>* o) -> Async<void> {
      auto v = co_await rig->disk.Read("srv", obj);
      if (v.ok()) {
        *o = *v;
      }
    }(this, object, &out));
    sched.RunUntilIdle();
    return out;
  }

  Scheduler sched;
  StableLog log;
  DiskManager disk;
};

TEST(DiskManagerTest, WriteThenReadHitsBuffer) {
  Rig rig;
  rig.WriteObj("a", 42);
  auto v = rig.ReadObj("a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[0], 42);
  EXPECT_EQ(rig.disk.counters().reads_hit, 1u);
  EXPECT_EQ(rig.disk.counters().reads_miss, 0u);
}

TEST(DiskManagerTest, MissingObjectIsNotFound) {
  Rig rig;
  EXPECT_FALSE(rig.ReadObj("ghost").has_value());
}

TEST(DiskManagerTest, ReadFaultsFromDataDisk) {
  Rig rig;
  rig.disk.RecoveryWrite("srv", "cold", {9});
  const SimTime before = rig.sched.now();
  auto v = rig.ReadObj("cold");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[0], 9);
  EXPECT_EQ(rig.disk.counters().reads_miss, 1u);
  EXPECT_GE(rig.sched.now() - before, DiskConfig{}.disk_read_latency);
  // Second read is a hit, and free.
  const SimTime after_fault = rig.sched.now();
  rig.ReadObj("cold");
  EXPECT_EQ(rig.sched.now(), after_fault);
}

TEST(DiskManagerTest, DirtyPageStaysOffDiskUntilFlush) {
  Rig rig;
  rig.WriteObj("a", 7);
  EXPECT_FALSE(rig.disk.RecoveryRead("srv", "a").ok());
  EXPECT_EQ(rig.disk.dirty_frames(), 1u);
  rig.sched.Spawn([](DiskManager& d) -> Async<void> { co_await d.FlushAll(); }(rig.disk));
  rig.sched.RunUntilIdle();
  auto durable = rig.disk.RecoveryRead("srv", "a");
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ((*durable)[0], 7);
  EXPECT_EQ(rig.disk.dirty_frames(), 0u);
}

TEST(DiskManagerTest, FlushForcesLogFirstWalRule) {
  Rig rig;
  const Lsn lsn = rig.WriteObj("a", 3);
  EXPECT_FALSE(rig.log.IsDurable(lsn));  // Update record not yet forced.
  rig.sched.Spawn([](DiskManager& d) -> Async<void> { co_await d.FlushAll(); }(rig.disk));
  rig.sched.RunUntilIdle();
  // The WAL rule forced the log up to the page LSN before the data write.
  EXPECT_TRUE(rig.log.IsDurable(lsn));
  EXPECT_EQ(rig.disk.counters().wal_forces, 1u);
}

TEST(DiskManagerTest, EvictionWritesBackAndHonorsWalRule) {
  DiskConfig cfg;
  cfg.pool_frames = 4;
  Rig rig(cfg);
  for (int i = 0; i < 8; ++i) {
    rig.WriteObj("obj" + std::to_string(i), static_cast<uint8_t>(i));
  }
  EXPECT_GT(rig.disk.counters().evictions, 0u);
  EXPECT_LE(rig.disk.buffered_frames(), 4u);
  // Early victims are durable on the data disk and re-readable.
  auto v = rig.ReadObj("obj0");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[0], 0);
  // Every flushed page's log records were forced first.
  EXPECT_GT(rig.disk.counters().wal_forces, 0u);
}

TEST(DiskManagerTest, LruKeepsHotPagesResident) {
  DiskConfig cfg;
  cfg.pool_frames = 3;
  Rig rig(cfg);
  rig.WriteObj("hot", 1);
  for (int i = 0; i < 6; ++i) {
    rig.ReadObj("hot");  // Keep it recently used.
    rig.WriteObj("cold" + std::to_string(i), 0);
  }
  const uint64_t misses = rig.disk.counters().reads_miss;
  rig.ReadObj("hot");
  EXPECT_EQ(rig.disk.counters().reads_miss, misses);  // Still resident.
}

TEST(DiskManagerTest, CrashDropsBufferButNotDataDisk) {
  Rig rig;
  rig.WriteObj("flushed", 1);
  rig.sched.Spawn([](DiskManager& d) -> Async<void> { co_await d.FlushAll(); }(rig.disk));
  rig.sched.RunUntilIdle();
  rig.WriteObj("volatile", 2);

  rig.log.OnCrash();
  rig.disk.OnCrash();
  EXPECT_EQ(rig.disk.buffered_frames(), 0u);
  // The flushed page survives on the data disk; the buffered one is gone
  // (recovery would redo/undo it from the log).
  EXPECT_TRUE(rig.disk.RecoveryRead("srv", "flushed").ok());
  EXPECT_FALSE(rig.disk.RecoveryRead("srv", "volatile").ok());
}

TEST(DiskManagerTest, ExistsSeesBufferAndDisk) {
  Rig rig;
  rig.disk.RecoveryWrite("srv", "on_disk", {1});
  rig.WriteObj("in_buffer", 2);
  bool on_disk = false;
  bool in_buffer = false;
  bool ghost = true;
  rig.sched.Spawn([](DiskManager& d, bool* a, bool* b, bool* c) -> Async<void> {
    *a = co_await d.Exists("srv", "on_disk");
    *b = co_await d.Exists("srv", "in_buffer");
    *c = co_await d.Exists("srv", "ghost");
  }(rig.disk, &on_disk, &in_buffer, &ghost));
  rig.sched.RunUntilIdle();
  EXPECT_TRUE(on_disk);
  EXPECT_TRUE(in_buffer);
  EXPECT_FALSE(ghost);
}

// Property sweep: interleaved writes/reads/evictions/flushes never lose a
// committed (flushed) value and always serve the latest written value.
TEST(DiskManagerTest, RandomTrafficServesLatestValues) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    DiskConfig cfg;
    cfg.pool_frames = 4;
    Scheduler sched(seed);
    StableLog log(sched, LogConfig{});
    DiskManager disk(sched, log, cfg);
    Rng rng(seed * 77);
    const int n_objects = 8;
    std::vector<uint8_t> expected(n_objects, 0);

    sched.Spawn([](Scheduler&, StableLog& l, DiskManager& d, Rng* r,
                   std::vector<uint8_t>* exp) -> Async<void> {
      for (int step = 0; step < 120; ++step) {
        const int obj_index = static_cast<int>(r->NextBounded(exp->size()));
        const std::string obj = "o" + std::to_string(obj_index);
        if (r->NextBool(0.5)) {
          const uint8_t value = static_cast<uint8_t>(r->Next());
          Bytes bytes(1, value);
          const Lsn lsn = l.Append(LogRecord::Update(kTid, "srv", obj, {}, bytes));
          co_await d.Write("srv", obj, bytes, lsn);
          (*exp)[static_cast<size_t>(obj_index)] = value;
        } else {
          auto v = co_await d.Read("srv", obj);
          if (v.ok()) {
            EXPECT_EQ((*v)[0], (*exp)[static_cast<size_t>(obj_index)]);
          } else {
            EXPECT_EQ((*exp)[static_cast<size_t>(obj_index)], 0);  // Never written.
          }
        }
        if (step % 40 == 39) {
          co_await d.FlushAll();
        }
      }
    }(sched, log, disk, &rng, &expected));
    sched.RunUntilIdle();
  }
}

// --- Media faults, CRC detection, repair, and the scrubber -------------------------

// Flushes every dirty page so values land on the (possibly faulty) data disk.
void FlushAll(Rig& rig) {
  rig.sched.Spawn([](Rig* r) -> Async<void> { co_await r->disk.FlushAll(); }(&rig));
  rig.sched.RunUntilIdle();
}

// Drops the buffer pool so the next read must touch the physical disk.
void DropPool(Rig& rig) { rig.disk.OnCrash(); }

TEST(DiskManagerTest, TornFlushIsDetectedOnReadNotServed) {
  DiskConfig cfg;
  cfg.faults.torn_write_probability = 1.0;  // Every physical write tears.
  Rig rig(cfg);
  rig.WriteObj("a", 7);
  FlushAll(rig);
  EXPECT_GE(rig.disk.counters().torn_writes_injected, 1u);
  DropPool(rig);
  // No repair hook registered: the CRC failure must surface as an error, the
  // garbled bytes must never be served as data.
  EXPECT_FALSE(rig.ReadObj("a").has_value());
  EXPECT_GE(rig.disk.counters().crc_failures_detected, 1u);
  EXPECT_GE(rig.disk.counters().repair_failures, 1u);
}

TEST(DiskManagerTest, RepairHookRebuildsTornPage) {
  DiskConfig cfg;
  cfg.faults.torn_write_probability = 1.0;
  Rig rig(cfg);
  rig.WriteObj("a", 7);
  FlushAll(rig);
  DropPool(rig);
  rig.disk.set_media_repair([](std::string, std::string) -> Async<Result<Bytes>> {
    co_return Bytes{7};  // Stands in for the recovery manager's redo-from-log.
  });
  auto v = rig.ReadObj("a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[0], 7);
  EXPECT_EQ(rig.disk.counters().pages_repaired, 1u);
  // The rebuilt page was re-stored with a fresh CRC: disable faults and the
  // next cold read is clean, no second repair.
  rig.disk.set_faults(StorageFaultConfig{});
  DropPool(rig);
  v = rig.ReadObj("a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(rig.disk.counters().pages_repaired, 1u);
}

TEST(DiskManagerTest, BitRotDecaysAnUnrelatedResidentPage) {
  DiskConfig cfg;
  cfg.faults.bit_rot_probability = 1.0;  // Every physical write rots some page.
  Rig rig(cfg);
  rig.disk.RecoveryWrite("srv", "victim", Bytes{1, 2, 3});
  rig.WriteObj("other", 9);
  FlushAll(rig);  // The flush of "other" rots a random resident page.
  EXPECT_GE(rig.disk.counters().bit_rot_injected, 1u);
  EXPECT_GE(rig.disk.CorruptPages().size(), 1u);
}

TEST(DiskManagerTest, LatentSectorErrorSurfacesOnColdRead) {
  DiskConfig cfg;
  cfg.faults.latent_sector_error_probability = 1.0;
  Rig rig(cfg);
  rig.disk.RecoveryWrite("srv", "cold", {9});
  EXPECT_FALSE(rig.ReadObj("cold").has_value());  // Sector lost, no hook.
  EXPECT_GE(rig.disk.counters().sector_errors_injected, 1u);
  // A repair (rewrite) makes the sector readable again.
  rig.disk.set_media_repair([](std::string, std::string) -> Async<Result<Bytes>> {
    co_return Bytes{9};
  });
  auto v = rig.ReadObj("cold");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[0], 9);
}

TEST(DiskManagerTest, WriteStallsSlowTheFlushDown) {
  DiskConfig cfg;
  cfg.faults.write_stall_probability = 1.0;
  cfg.faults.write_stall_extra = Usec(100000);
  Rig rig(cfg);
  rig.WriteObj("a", 1);
  const SimTime before = rig.sched.now();
  FlushAll(rig);
  EXPECT_GE(rig.sched.now() - before, cfg.disk_write_latency + Usec(100000));
  EXPECT_GE(rig.disk.counters().write_stalls, 1u);
}

TEST(DiskManagerTest, ScrubberFindsAndRepairsColdCorruptionThenRetires) {
  DiskConfig cfg;
  cfg.scrub_interval = Usec(50000);
  cfg.scrub_pages_per_pass = 2;
  Rig rig(cfg);
  for (int i = 0; i < 6; ++i) {
    rig.disk.RecoveryWrite("srv", "page" + std::to_string(i), {static_cast<uint8_t>(i)});
  }
  rig.disk.CorruptStoredPage("srv", "page3");
  rig.disk.set_media_repair([](std::string, std::string) -> Async<Result<Bytes>> {
    co_return Bytes{3};
  });
  rig.disk.StartScrubber();
  // RunUntilIdle returning proves the scrubber retires once the disk is clean
  // and quiet (a perpetual daemon would hang this call forever).
  rig.sched.RunUntilIdle();
  EXPECT_GE(rig.disk.counters().pages_scrubbed, 6u);
  EXPECT_EQ(rig.disk.counters().scrub_repairs, 1u);
  EXPECT_EQ(rig.disk.counters().pages_repaired, 1u);
  EXPECT_TRUE(rig.disk.CorruptPages().empty());
  auto v = rig.ReadObj("page3");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[0], 3);
}

}  // namespace
}  // namespace camelot
