// Tests for the harness itself: World wiring, Drive vs RunSync semantics,
// StatsReport rendering, and stable-log persistence across processes.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/harness/world.h"

namespace camelot {
namespace {

WorldConfig Quiet(int sites = 2) {
  WorldConfig cfg;
  cfg.site_count = sites;
  cfg.net.send_jitter_mean = 0;
  cfg.net.stall_probability = 0;
  cfg.net.receive_skew_mean = 0;
  return cfg;
}

TEST(WorldTest, SitesAreWiredAndIndependent) {
  World world(Quiet(3));
  EXPECT_EQ(world.site_count(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(world.site(i).site().id(), (SiteId{static_cast<uint32_t>(i)}));
    EXPECT_TRUE(world.site(i).site().up());
  }
  world.AddServer(1, "srv");
  EXPECT_NE(world.site(1).server("srv"), nullptr);
  EXPECT_EQ(world.site(0).server("srv"), nullptr);
  auto where = world.names().Resolve("srv");
  ASSERT_TRUE(where.ok());
  EXPECT_EQ(*where, SiteId{1});
}

TEST(WorldTest, DriveReturnsWithoutDrainingDaemons) {
  World world(Quiet(2));
  world.AddServer(1, "srv")->CreateObjectForSetup("x", EncodeInt64(0));
  AppClient app(world.site(0));
  // Open a transaction that touches the remote site; its orphan watcher will
  // keep the event queue non-idle indefinitely.
  auto tid = world.Drive([](AppClient& a) -> Async<Result<Tid>> {
    auto b = co_await a.Begin();
    co_await a.WriteInt(*b, "srv", "x", 1);
    co_return b;
  }(app));
  ASSERT_TRUE(tid.has_value());
  ASSERT_TRUE(tid->ok());
  // Drive returned even though the watcher's timer is pending.
  EXPECT_GT(world.sched().pending_events(), 0u);
  // Finish the transaction; now everything quiesces.
  auto st = world.Drive([](AppClient& a, Tid t) -> Async<Status> {
    Status r = co_await a.Commit(t);
    co_return r;
  }(app, **tid));
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->ok());
  world.RunUntilIdle();
  EXPECT_EQ(world.site(1).tranman().live_family_count(), 0u);
}

TEST(WorldTest, StatsReportContainsPerSiteCounters) {
  World world(Quiet(2));
  world.AddServer(0, "srv")->CreateObjectForSetup("x", EncodeInt64(0));
  AppClient app(world.site(0));
  world.RunSync([](AppClient& a) -> Async<bool> {
    auto b = co_await a.Begin();
    co_await a.WriteInt(*b, "srv", "x", 5);
    co_await a.Commit(*b);
    co_return true;
  }(app));
  const std::string report = world.StatsReport();
  EXPECT_NE(report.find("site 0"), std::string::npos);
  EXPECT_NE(report.find("site 1"), std::string::npos);
  EXPECT_NE(report.find("txns committed"), std::string::npos);
  EXPECT_NE(report.find("log disk writes"), std::string::npos);
  EXPECT_NE(report.find("network:"), std::string::npos);
}

TEST(StableLogPersistenceTest, SaveAndLoadRoundTripsDurableImage) {
  const std::string path = "/tmp/camelot_log_persist_test.bin";
  const Tid tid{FamilyId{SiteId{0}, 1}, 0, 0};
  {
    Scheduler sched;
    StableLog log(sched, LogConfig{});
    log.Append(LogRecord::Update(tid, "srv", "x", {1}, {2}));
    const Lsn lsn = log.Append(LogRecord::Commit(tid, {}));
    sched.Spawn([](StableLog& l, Lsn x) -> Async<void> { co_await l.Force(x); }(log, lsn));
    sched.RunUntilIdle();
    log.Append(LogRecord::End(tid));  // Volatile tail: must NOT persist.
    ASSERT_TRUE(log.SaveToFile(path));
  }
  {
    Scheduler sched;
    StableLog log(sched, LogConfig{});
    ASSERT_TRUE(log.LoadFromFile(path));
    auto records = log.ReadDurable();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].kind, LogRecordKind::kUpdate);
    EXPECT_EQ(records[1].kind, LogRecordKind::kCommit);
  }
  std::remove(path.c_str());
}

TEST(StableLogPersistenceTest, LoadRejectsCorruptImage) {
  const std::string path = "/tmp/camelot_log_persist_corrupt.bin";
  {
    Scheduler sched;
    StableLog log(sched, LogConfig{});
    const Lsn lsn = log.Append(LogRecord::Abort(Tid{FamilyId{SiteId{0}, 1}, 0, 0}));
    sched.Spawn([](StableLog& l, Lsn x) -> Async<void> { co_await l.Force(x); }(log, lsn));
    sched.RunUntilIdle();
    ASSERT_TRUE(log.SaveToFile(path));
  }
  // Flip a byte in the payload area.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 30, SEEK_SET);
    const char junk = 0x5a;
    std::fwrite(&junk, 1, 1, f);
    std::fclose(f);
  }
  Scheduler sched;
  StableLog log(sched, LogConfig{});
  EXPECT_FALSE(log.LoadFromFile(path));
  std::remove(path.c_str());
}

TEST(StableLogPersistenceTest, LoadPreservesReclaimedBaseOffset) {
  const std::string path = "/tmp/camelot_log_persist_base.bin";
  const Tid tid{FamilyId{SiteId{0}, 1}, 0, 0};
  Lsn checkpoint_start;
  {
    Scheduler sched;
    StableLog log(sched, LogConfig{});
    const Lsn first = log.Append(LogRecord::Abort(tid));
    sched.Spawn([](StableLog& l, Lsn x) -> Async<void> { co_await l.Force(x); }(log, first));
    sched.RunUntilIdle();
    checkpoint_start = log.buffered_lsn();
    const Lsn second = log.Append(LogRecord::Checkpoint());
    sched.Spawn([](StableLog& l, Lsn x) -> Async<void> { co_await l.Force(x); }(log, second));
    sched.RunUntilIdle();
    log.ReclaimBefore(checkpoint_start);
    ASSERT_TRUE(log.SaveToFile(path));
  }
  Scheduler sched;
  StableLog log(sched, LogConfig{});
  ASSERT_TRUE(log.LoadFromFile(path));
  EXPECT_EQ(log.reclaimed_bytes(), checkpoint_start.value);
  auto records = log.ReadDurable();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, LogRecordKind::kCheckpoint);
  // LSNs remain globally consistent after the reload.
  EXPECT_GT(records[0].lsn.value, checkpoint_start.value);
  std::remove(path.c_str());
}

TEST(WorldSnapshotTest, ColdBackupRestoresCommittedState) {
  const std::string prefix = "/tmp/camelot_world_snap_test";
  WorldConfig cfg = Quiet(2);
  World world(cfg);
  for (int i = 0; i < 2; ++i) {
    world.AddServer(i, "srv" + std::to_string(i))->CreateObjectForSetup("x", EncodeInt64(1));
  }
  AppClient app(world.site(0));
  auto commit = [&](int64_t value) {
    world.RunSync([](AppClient& a, int64_t v) -> Async<bool> {
      auto b = co_await a.Begin();
      co_await a.WriteInt(*b, "srv0", "x", v);
      co_await a.WriteInt(*b, "srv1", "x", v);
      co_await a.Commit(*b);
      co_return true;
    }(app, value));
  };
  auto read_x = [&](const std::string& srv) {
    auto v = world.RunSync([](AppClient& a, std::string s) -> Async<int64_t> {
      auto b = co_await a.Begin();
      auto value = co_await a.ReadInt(*b, s, "x");
      co_await a.Commit(*b);
      co_return value.value_or(-1);
    }(app, srv));
    return v.value_or(-1);
  };

  commit(42);
  for (int i = 0; i < 2; ++i) {
    const std::string base = prefix + ".site" + std::to_string(i);
    ASSERT_TRUE(world.site(i).log().SaveToFile(base + ".log"));
    ASSERT_TRUE(world.site(i).diskmgr().SaveToFile(base + ".data"));
  }
  commit(99);  // Post-snapshot state, to be rolled back.
  ASSERT_EQ(read_x("srv0"), 99);

  for (int i = 0; i < 2; ++i) {
    const std::string base = prefix + ".site" + std::to_string(i);
    world.Crash(i);
    ASSERT_TRUE(world.site(i).log().LoadFromFile(base + ".log"));
    ASSERT_TRUE(world.site(i).diskmgr().LoadFromFile(base + ".data"));
    world.Restart(i);
  }
  world.RunUntilIdle();
  EXPECT_EQ(read_x("srv0"), 42);
  EXPECT_EQ(read_x("srv1"), 42);
  for (int i = 0; i < 2; ++i) {
    const std::string base = prefix + ".site" + std::to_string(i);
    std::remove((base + ".log").c_str());
    std::remove((base + ".data").c_str());
  }
}

}  // namespace
}  // namespace camelot
