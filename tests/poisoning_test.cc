// Deterministic tests for the participant-restart defense: a transaction that
// touched a site which then crashed and restarted must abort, whether the
// restart is noticed by a later operation (incarnation poisoning) or only at
// prepare time (the restarted TranMan refuses an unknown family).
#include <gtest/gtest.h>

#include <string>

#include "src/harness/world.h"

namespace camelot {
namespace {

WorldConfig Quiet() {
  WorldConfig cfg;
  cfg.site_count = 2;
  cfg.net.send_jitter_mean = 0;
  cfg.net.stall_probability = 0;
  cfg.net.receive_skew_mean = 0;
  cfg.tranman.orphan_check_interval = Sec(60);  // Keep the orphan watcher quiet.
  return cfg;
}

struct Rig {
  Rig() : world(Quiet()), app(world.site(0)) {
    for (int i = 0; i < 2; ++i) {
      world.AddServer(i, Srv(i))->CreateObjectForSetup("vault", EncodeInt64(100));
    }
  }
  static std::string Srv(int i) { return "server:" + std::to_string(i); }
  int64_t ReadVault(int site) {
    auto v = world.RunSync([](AppClient& a, std::string s) -> Async<int64_t> {
      auto b = co_await a.Begin();
      auto value = co_await a.ReadInt(*b, s, "vault");
      co_await a.Commit(*b);
      co_return value.value_or(-1);
    }(app, Srv(site)));
    return v.value_or(-1);
  }
  World world;
  AppClient app;
};

TEST(PoisoningTest, OperationAfterParticipantRestartFails) {
  Rig rig;
  std::optional<Status> write_status;
  std::optional<Status> commit_status;
  rig.world.sched().Spawn([](Rig& r, std::optional<Status>* ws,
                             std::optional<Status>* cs) -> Async<void> {
    auto tid = co_await r.app.Begin();
    // Read at site 1 (stale after the crash below).
    auto v = co_await r.app.ReadInt(*tid, Rig::Srv(1), "vault");
    EXPECT_EQ(v.value_or(-1), 100);
    // The participant bounces while our transaction is alive.
    r.world.Crash(1);
    r.world.Restart(1);
    co_await r.world.sched().Delay(Sec(1));
    // Any later operation there must be refused: the incarnation changed.
    *ws = co_await r.app.WriteInt(*tid, Rig::Srv(1), "vault", v.value_or(0) - 10);
    *cs = co_await r.app.Commit(*tid);
    if (!(*cs)->ok()) {
      co_await r.app.Abort(*tid);
    }
  }(rig, &write_status, &commit_status));
  rig.world.RunUntilIdle();
  ASSERT_TRUE(write_status.has_value());
  EXPECT_EQ(write_status->code(), StatusCode::kAborted) << write_status->ToString();
  ASSERT_TRUE(commit_status.has_value());
  EXPECT_FALSE(commit_status->ok());
  EXPECT_EQ(rig.ReadVault(1), 100);  // Nothing leaked through.
}

TEST(PoisoningTest, CommitAfterSilentParticipantRestartAborts) {
  Rig rig;
  // The transaction updates site 1, the site bounces, and the app goes
  // STRAIGHT to commit (no later operation to observe the restart): the
  // restarted TranMan no longer knows the family and votes NO.
  std::optional<Status> commit_status;
  rig.world.sched().Spawn([](Rig& r, std::optional<Status>* cs) -> Async<void> {
    auto tid = co_await r.app.Begin();
    Status w = co_await r.app.WriteInt(*tid, Rig::Srv(1), "vault", 55);
    EXPECT_TRUE(w.ok());
    r.world.Crash(1);
    r.world.Restart(1);
    co_await r.world.sched().Delay(Sec(1));
    *cs = co_await r.app.Commit(*tid);
  }(rig, &commit_status));
  rig.world.RunUntilIdle();
  ASSERT_TRUE(commit_status.has_value());
  EXPECT_EQ(commit_status->code(), StatusCode::kAborted) << commit_status->ToString();
  EXPECT_EQ(rig.ReadVault(1), 100);  // The lost volatile write never committed.
}

TEST(PoisoningTest, UnrelatedTransactionsAreNotPoisoned) {
  Rig rig;
  // A restart between two INDEPENDENT transactions must not affect the second.
  rig.world.Crash(1);
  rig.world.Restart(1);
  rig.world.RunUntilIdle();
  auto status = rig.world.RunSync([](Rig& r) -> Async<Status> {
    auto tid = co_await r.app.Begin();
    Status w = co_await r.app.WriteInt(*tid, Rig::Srv(1), "vault", 77);
    if (!w.ok()) {
      co_return w;
    }
    Status st = co_await r.app.Commit(*tid);
    co_return st;
  }(rig));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->ToString();
  EXPECT_EQ(rig.ReadVault(1), 77);
}

}  // namespace
}  // namespace camelot
