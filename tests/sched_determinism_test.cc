// Determinism property tests for the ladder-queue scheduler: identical seeds
// must produce identical event interleavings on the production engine and on
// the preserved pre-ladder binary heap (src/sim/legacy_heap_scheduler.h),
// including the equal-time FIFO tie-break, ring/overflow window crossings,
// and PostAt-in-the-past rejection.

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/base/types.h"
#include "src/sim/legacy_heap_scheduler.h"
#include "src/sim/scheduler.h"

namespace camelot {
namespace {

// One trace entry per executed event: virtual time + the label assigned at
// post time (post order). Two engines agree on the ordering contract iff they
// produce identical traces for the same seeded workload.
using Trace = std::vector<std::pair<SimTime, int>>;

// Delay menu spanning every queue tier: 0 (ready list), sub-bucket, exact
// bucket-width boundaries, mid-ring, the exact ring span (first overflow
// time), and far-future overflow that must migrate back into the ring.
constexpr SimDuration kDelays[] = {0,       0,       1,       7,       640,
                                   1023,    1024,    4096,    50000,   999999,
                                   1048575, 1048576, 2097152, 5000000};

template <typename Sched>
struct RandomWorkload {
  Sched& sched;
  Rng rng;
  Trace trace;
  int posted = 0;
  int budget;

  RandomWorkload(Sched& s, uint64_t seed, int budget_in)
      : sched(s), rng(seed), budget(budget_in) {}

  void PostChildren() {
    const int kids = static_cast<int>(rng.NextBounded(4));
    for (int k = 0; k < kids && posted < budget; ++k) {
      const SimDuration d = kDelays[rng.NextBounded(std::size(kDelays))];
      const int label = posted++;
      sched.Post(d, [this, label] {
        trace.emplace_back(sched.now(), label);
        PostChildren();
      });
    }
  }

  void Seed(int roots) {
    for (int r = 0; r < roots && posted < budget; ++r) {
      const int label = posted++;
      sched.Post(kDelays[rng.NextBounded(std::size(kDelays))], [this, label] {
        trace.emplace_back(sched.now(), label);
        PostChildren();
      });
    }
  }
};

template <typename Sched>
Trace RunDrained(uint64_t seed, int budget) {
  Sched sched(seed);
  RandomWorkload<Sched> w(sched, seed * 7919 + 1, budget);
  w.Seed(5);
  sched.RunUntilIdle();
  EXPECT_EQ(sched.pending_events(), 0u);
  return std::move(w.trace);
}

// Same workload drained through repeated RunUntil() steps (exercises the
// deadline path: partial drains, clock jumps across empty stretches).
template <typename Sched>
Trace RunStepped(uint64_t seed, int budget) {
  Sched sched(seed);
  RandomWorkload<Sched> w(sched, seed * 7919 + 1, budget);
  w.Seed(5);
  SimTime t = 0;
  while (sched.pending_events() > 0) {
    t += Usec(137013);
    sched.RunUntil(t);
  }
  return std::move(w.trace);
}

TEST(SchedDeterminismTest, LadderMatchesLegacyHeapAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const Trace ladder = RunDrained<Scheduler>(seed, 4000);
    const Trace heap = RunDrained<LegacyHeapScheduler>(seed, 4000);
    ASSERT_EQ(ladder.size(), heap.size()) << "seed " << seed;
    ASSERT_EQ(ladder, heap) << "seed " << seed;
  }
}

TEST(SchedDeterminismTest, SteppedRunUntilMatchesLegacyHeap) {
  for (uint64_t seed = 20; seed <= 26; ++seed) {
    const Trace ladder = RunStepped<Scheduler>(seed, 2500);
    const Trace heap = RunStepped<LegacyHeapScheduler>(seed, 2500);
    ASSERT_EQ(ladder, heap) << "seed " << seed;
  }
}

TEST(SchedDeterminismTest, IdenticalSeedsIdenticalTraces) {
  const Trace a = RunDrained<Scheduler>(42, 3000);
  const Trace b = RunDrained<Scheduler>(42, 3000);
  EXPECT_EQ(a, b);
}

// Equal-time FIFO across tiers: events that land at the same virtual instant
// via different routes (posted far ahead into the overflow heap, posted into
// a ring bucket, posted at delay 0 once the time arrives) must still run in
// post order.
TEST(SchedDeterminismTest, EqualTimeFifoAcrossTiers) {
  auto run = [](auto& sched) {
    std::vector<int> order;
    const SimTime t = Usec(3000000);  // Beyond the ring span: overflow first.
    sched.PostAt(t, [&] { order.push_back(0); });   // Overflow tier.
    sched.Post(Usec(2999999), [&order, &sched, t] {
      // One tick before t (by now migrated into the ring): post two more at
      // exactly t — they land in the cursor bucket behind the migrated event.
      sched.PostAt(t, [&order] { order.push_back(2); });
      sched.PostAt(t, [&order, &sched] {
        // Runs at t: a delay-0 post joins the ready list at the same instant.
        sched.Post(0, [&order] { order.push_back(4); });
        order.push_back(3);
      });
      order.push_back(1);
    });
    sched.RunUntilIdle();
    return order;
  };
  Scheduler ladder(1);
  LegacyHeapScheduler heap(1);
  const std::vector<int> expect = {1, 0, 2, 3, 4};
  EXPECT_EQ(run(ladder), expect);
  EXPECT_EQ(run(heap), expect);
}

TEST(SchedDeterminismDeathTest, PostAtInThePastRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Scheduler sched(1);
        sched.Post(Usec(10), [] {});
        sched.RunUntilIdle();  // now == 10us.
        sched.PostAt(Usec(5), [] {});
      },
      "CHECK failed");
  EXPECT_DEATH(
      {
        LegacyHeapScheduler sched(1);
        sched.Post(Usec(10), [] {});
        sched.RunUntilIdle();
        sched.PostAt(Usec(5), [] {});
      },
      "CHECK failed");
}

TEST(SchedDeterminismDeathTest, NegativeDelayRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Scheduler sched(1);
        sched.Post(-1, [] {});
      },
      "CHECK failed");
}

// max_events exhaustion is distinguishable from a drained queue.
TEST(SchedDeterminismTest, DrainResultDistinguishesGuardFromIdle) {
  Scheduler sched(1);
  for (int i = 0; i < 10; ++i) {
    sched.Post(Usec(i), [] {});
  }
  const DrainResult partial = sched.RunUntilIdle(4);
  EXPECT_EQ(partial.processed, 4u);
  EXPECT_FALSE(partial.drained);
  EXPECT_EQ(sched.pending_events(), 6u);

  const DrainResult rest = sched.RunUntilIdle();
  EXPECT_EQ(rest.processed, 6u);
  EXPECT_TRUE(rest.drained);

  // Exactly hitting the guard with nothing left still reports drained.
  sched.Post(0, [] {});
  const DrainResult exact = sched.RunUntilIdle(1);
  EXPECT_EQ(exact.processed, 1u);
  EXPECT_TRUE(exact.drained);

  // Existing arithmetic call sites keep working via the size_t conversion.
  sched.Post(0, [] {});
  EXPECT_TRUE(sched.RunUntilIdle(1) > 0);
}

TEST(SchedDeterminismTest, RunUntilAdvancesClockPastIdleGaps) {
  Scheduler sched(1);
  std::vector<SimTime> fired;
  sched.Post(Usec(100), [&] { fired.push_back(sched.now()); });
  sched.Post(Sec(10), [&] { fired.push_back(sched.now()); });
  EXPECT_EQ(sched.RunUntil(Sec(1)), 1u);
  EXPECT_EQ(sched.now(), Sec(1));
  EXPECT_EQ(sched.RunUntil(Sec(20)), 1u);
  EXPECT_EQ(sched.now(), Sec(20));
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], Usec(100));
  EXPECT_EQ(fired[1], Sec(10));
}

}  // namespace
}  // namespace camelot
