// Parallel-sweep determinism: every explorer sweep must produce byte-identical
// results — run counts, failing schedules, violation text, and replay
// recipes, in the same order — at any host thread count, because each
// schedule runs in its own World and the merge happens in schedule order.
//
// To get a sweep with a rich, deterministic failure set we set
// max_restart_attempts = 0: every crash schedule leaves its site down, so the
// heal loop reports "still down" violations for each crashed site and the
// exhaustive sweep fails on every schedule.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/crash_explorer.h"
#include "src/harness/parallel.h"
#include "src/harness/partition_explorer.h"

namespace camelot {
namespace {

struct CrashSweepOutcome {
  int runs = 0;
  std::vector<std::string> schedules;
  std::vector<std::string> replays;
  std::vector<std::string> violations;
};

CrashSweepOutcome RunCrashSweep(int threads) {
  ExplorerConfig config;
  config.seed = 7;
  config.transfers = 2;
  config.max_restart_attempts = 0;  // Crashed sites stay down: every schedule fails.
  config.sweep_threads = threads;
  CrashExplorer explorer(config);
  CrashSweepOutcome out;
  const std::vector<SweepFailure> failures =
      explorer.ExhaustiveSingleCrashSweep(/*max_hits_per_point=*/1, &out.runs);
  for (const SweepFailure& f : failures) {
    out.schedules.push_back(f.schedule.ToString());
    out.replays.push_back(f.result.replay);
    for (const std::string& v : f.result.violations) {
      out.violations.push_back(v);
    }
  }
  return out;
}

TEST(ParallelSweepTest, ExhaustiveCrashSweepIdenticalAcrossThreadCounts) {
  const CrashSweepOutcome serial = RunCrashSweep(1);
  ASSERT_GT(serial.runs, 0);
  ASSERT_FALSE(serial.schedules.empty())
      << "max_restart_attempts=0 should make every crash schedule fail";
  for (int threads : {2, 8}) {
    const CrashSweepOutcome parallel = RunCrashSweep(threads);
    EXPECT_EQ(parallel.runs, serial.runs) << "threads=" << threads;
    EXPECT_EQ(parallel.schedules, serial.schedules) << "threads=" << threads;
    EXPECT_EQ(parallel.replays, serial.replays) << "threads=" << threads;
    EXPECT_EQ(parallel.violations, serial.violations) << "threads=" << threads;
  }
}

TEST(ParallelSweepTest, RandomCrashSweepIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    ExplorerConfig config;
    config.seed = 11;
    config.transfers = 2;
    config.max_restart_attempts = 0;
    config.sweep_threads = threads;
    CrashExplorer explorer(config);
    int runs = 0;
    std::vector<std::string> out;
    for (const SweepFailure& f :
         explorer.RandomSweep(/*rng_seed=*/99, /*rounds=*/6, /*max_faults=*/2, &runs)) {
      out.push_back(f.schedule.ToString() + " => " + f.result.replay);
    }
    out.push_back("runs=" + std::to_string(runs));
    return out;
  };
  const std::vector<std::string> serial = run(1);
  const std::vector<std::string> parallel = run(8);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelSweepTest, RandomNemesisSweepIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    PartitionExplorerConfig config;
    config.seed = 5;
    config.transfers = 2;
    config.sweep_threads = threads;
    PartitionExplorer explorer(config);
    int runs = 0;
    std::vector<std::string> out;
    for (const PartitionSweepFailure& f :
         explorer.RandomNemesisSweep(/*rng_seed=*/123, /*rounds=*/4, &runs)) {
      out.push_back(f.label + " => " + f.result.replay);
      for (const std::string& v : f.result.violations) {
        out.push_back(v);
      }
    }
    out.push_back("runs=" + std::to_string(runs));
    return out;
  };
  const std::vector<std::string> serial = run(1);
  const std::vector<std::string> parallel = run(8);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    const size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    ParallelFor(threads, n, [&](size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelForTest, HandlesEmptyAndSingleItem) {
  int calls = 0;
  ParallelFor(8, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(8, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, ResolveSweepThreadsPrefersConfigured) {
  EXPECT_EQ(ResolveSweepThreads(3), 3);
  EXPECT_EQ(ResolveSweepThreads(1), 1);
  EXPECT_GE(ResolveSweepThreads(0), 1);
  EXPECT_GE(DefaultSweepThreads(), 1);
}

}  // namespace
}  // namespace camelot
