// Tests for the Communication Manager: name-service routing, the Section 3.1
// site-list spying (direct, transitive, merged), and forgetting.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/comman/comman.h"
#include "src/ipc/name_service.h"
#include "src/ipc/netmsg.h"
#include "src/ipc/site.h"
#include "src/net/network.h"
#include "src/sim/scheduler.h"

namespace camelot {
namespace {

struct Rig {
  explicit Rig(int n_sites = 3) : sched(1), net(sched, QuietNet()) {
    for (int i = 0; i < n_sites; ++i) {
      sites.push_back(std::make_unique<Site>(sched, net, SiteId{static_cast<uint32_t>(i)},
                                             IpcConfig{}));
      nms.push_back(std::make_unique<NetMsgServer>(*sites.back(), net));
      commans.push_back(std::make_unique<ComMan>(*sites.back(), *nms.back(), names));
    }
  }
  static NetConfig QuietNet() {
    NetConfig cfg;
    cfg.send_jitter_mean = 0;
    cfg.stall_probability = 0;
    cfg.receive_skew_mean = 0;
    return cfg;
  }
  Site& site(int i) { return *sites[static_cast<size_t>(i)]; }
  ComMan& comman(int i) { return *commans[static_cast<size_t>(i)]; }

  void AddEcho(int i, const std::string& name) {
    site(i).RegisterService(name, [](RpcContext, uint32_t m, Bytes b) -> Async<RpcResult> {
      ByteWriter w;
      w.U32(m);
      w.Blob(b);
      co_return RpcResult{OkStatus(), w.Take()};
    });
    ASSERT_TRUE(names.Register(name, site(i).id()).ok());
  }

  Scheduler sched;
  Network net;
  NameService names;
  std::vector<std::unique_ptr<Site>> sites;
  std::vector<std::unique_ptr<NetMsgServer>> nms;
  std::vector<std::unique_ptr<ComMan>> commans;
};

const Tid kTid{FamilyId{SiteId{0}, 5}, 0, 0};

TEST(ComManTest, CallRoutesLocallyAndRemotely) {
  Rig rig;
  rig.AddEcho(0, "svc:a");
  rig.AddEcho(1, "svc:b");
  SimTime local_done = 0;
  SimTime remote_done = 0;
  rig.sched.Spawn([](Rig& r, SimTime* local, SimTime* remote) -> Async<void> {
    const SimTime t0 = r.sched.now();
    RpcResult a = co_await r.comman(0).Call("svc:a", 1, {}, kTid);
    EXPECT_TRUE(a.status.ok());
    *local = r.sched.now() - t0;
    const SimTime t1 = r.sched.now();
    RpcResult b = co_await r.comman(0).Call("svc:b", 2, {}, kTid);
    EXPECT_TRUE(b.status.ok());
    *remote = r.sched.now() - t1;
  }(rig, &local_done, &remote_done));
  rig.sched.RunUntilIdle();
  EXPECT_EQ(local_done, Usec(3000));  // Local IPC-to-server cost.
  EXPECT_GT(remote_done, Usec(20000));  // Full Camelot RPC path.
}

TEST(ComManTest, CallToUnknownServiceFails) {
  Rig rig;
  std::optional<Status> status;
  rig.sched.Spawn([](Rig& r, std::optional<Status>* out) -> Async<void> {
    RpcResult res = co_await r.comman(0).Call("svc:ghost", 0, {}, kTid);
    *out = res.status;
  }(rig, &status));
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->code(), StatusCode::kNotFound);
}

TEST(ComManTest, CallerLearnsCalleeSite) {
  Rig rig;
  rig.AddEcho(1, "svc:b");
  rig.sched.Spawn([](Rig& r) -> Async<void> {
    co_await r.comman(0).Call("svc:b", 0, {}, kTid);
  }(rig));
  rig.sched.RunUntilIdle();
  auto known = rig.comman(0).KnownSites(kTid.family);
  ASSERT_EQ(known.size(), 1u);
  EXPECT_EQ(known[0], SiteId{1});
  // The callee learned the caller participates too.
  auto callee_known = rig.comman(1).KnownSites(kTid.family);
  ASSERT_EQ(callee_known.size(), 1u);
  EXPECT_EQ(callee_known[0], SiteId{0});
}

TEST(ComManTest, TransitiveSpreadReachesTheOrigin) {
  // Site 0 calls svc:b at site 1; while processing, site 1 calls svc:c at
  // site 2. Site 0 must end up knowing about BOTH 1 and 2 ("if every
  // operation responds, the site that begins a transaction will eventually
  // learn the identity of all other participating sites").
  Rig rig;
  rig.AddEcho(2, "svc:c");
  rig.site(1).RegisterService("svc:b", [&rig](RpcContext ctx, uint32_t,
                                              Bytes) -> Async<RpcResult> {
    RpcResult inner = co_await rig.comman(1).Call("svc:c", 0, {}, ctx.tid);
    co_return RpcResult{inner.status, {}};
  });
  ASSERT_TRUE(rig.names.Register("svc:b", SiteId{1}).ok());

  rig.sched.Spawn([](Rig& r) -> Async<void> {
    RpcResult res = co_await r.comman(0).Call("svc:b", 0, {}, kTid);
    EXPECT_TRUE(res.status.ok());
  }(rig));
  rig.sched.RunUntilIdle();

  auto known = rig.comman(0).KnownSites(kTid.family);
  ASSERT_EQ(known.size(), 2u);
  EXPECT_EQ(known[0], SiteId{1});
  EXPECT_EQ(known[1], SiteId{2});
}

TEST(ComManTest, SeparateFamiliesAreTrackedSeparately) {
  Rig rig;
  rig.AddEcho(1, "svc:b");
  rig.AddEcho(2, "svc:c");
  const Tid other{FamilyId{SiteId{0}, 6}, 0, 0};
  rig.sched.Spawn([](Rig& r, Tid t2) -> Async<void> {
    co_await r.comman(0).Call("svc:b", 0, {}, kTid);
    co_await r.comman(0).Call("svc:c", 0, {}, t2);
  }(rig, other));
  rig.sched.RunUntilIdle();
  EXPECT_EQ(rig.comman(0).KnownSites(kTid.family), std::vector<SiteId>{SiteId{1}});
  EXPECT_EQ(rig.comman(0).KnownSites(other.family), std::vector<SiteId>{SiteId{2}});
  EXPECT_EQ(rig.comman(0).tracked_family_count(), 2u);
}

TEST(ComManTest, ForgetDropsTheFamily) {
  Rig rig;
  rig.AddEcho(1, "svc:b");
  rig.sched.Spawn([](Rig& r) -> Async<void> {
    co_await r.comman(0).Call("svc:b", 0, {}, kTid);
  }(rig));
  rig.sched.RunUntilIdle();
  ASSERT_EQ(rig.comman(0).tracked_family_count(), 1u);
  rig.comman(0).Forget(kTid.family);
  EXPECT_TRUE(rig.comman(0).KnownSites(kTid.family).empty());
  EXPECT_EQ(rig.comman(0).tracked_family_count(), 0u);
}

TEST(ComManTest, NoteSiteIgnoresSelf) {
  Rig rig;
  rig.comman(0).NoteSite(kTid.family, SiteId{0});  // Self: ignored.
  rig.comman(0).NoteSite(kTid.family, SiteId{2});
  EXPECT_EQ(rig.comman(0).KnownSites(kTid.family), std::vector<SiteId>{SiteId{2}});
}

TEST(ComManTest, CrashLosesTrackingTables) {
  Rig rig;
  rig.AddEcho(1, "svc:b");
  rig.sched.Spawn([](Rig& r) -> Async<void> {
    co_await r.comman(0).Call("svc:b", 0, {}, kTid);
  }(rig));
  rig.sched.RunUntilIdle();
  ASSERT_EQ(rig.comman(0).tracked_family_count(), 1u);
  rig.site(0).Crash();
  EXPECT_EQ(rig.comman(0).tracked_family_count(), 0u);
}

TEST(ComManTest, LookupFindsRegisteredService) {
  Rig rig;
  rig.AddEcho(2, "svc:c");
  std::optional<SiteId> where;
  rig.sched.Spawn([](Rig& r, std::optional<SiteId>* out) -> Async<void> {
    auto res = co_await r.comman(0).Lookup("svc:c");
    if (res.ok()) {
      *out = *res;
    }
  }(rig, &where));
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(where.has_value());
  EXPECT_EQ(*where, SiteId{2});
}

}  // namespace
}  // namespace camelot
