// Serializability property tests: under concurrent random transactions,
// strict two-phase locking must make the outcome equal to SOME serial
// execution — with S2PL (locks held to the commit point), replaying the
// committed transactions in commit order must reproduce the final state.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/harness/world.h"

namespace camelot {
namespace {

WorldConfig Config(int sites, uint64_t seed) {
  WorldConfig cfg;
  cfg.site_count = sites;
  cfg.seed = seed;
  // Keep realistic jitter ON: interleavings are the whole point here.
  cfg.server.lock_wait_timeout = Sec(1.0);
  cfg.ipc.rpc_timeout = Sec(2.5);
  return cfg;
}

std::string Srv(int i) { return "server:" + std::to_string(i); }

// What one committed transaction did, in execution order.
struct TxnTrace {
  SimTime commit_point = 0;
  // (site, object) -> value read before writing; and the value written.
  struct Op {
    int site;
    std::string object;
    int64_t read_value;
    int64_t written_value;
  };
  std::vector<Op> ops;
};

// One client: runs `count` read-modify-write transactions over random objects.
Async<void> Client(World& world, int id, int count, int sites, int objects_per_site,
                   std::vector<TxnTrace>* committed, int* aborted) {
  AppClient app(world.site(0));
  Rng rng(static_cast<uint64_t>(id) * 7919 + 13);
  for (int t = 0; t < count; ++t) {
    auto begin = co_await app.Begin();
    if (!begin.ok()) {
      co_return;
    }
    const Tid tid = *begin;
    TxnTrace trace;
    bool failed = false;
    const int n_ops = 1 + static_cast<int>(rng.NextBounded(3));
    for (int k = 0; k < n_ops && !failed; ++k) {
      const int site = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(sites)));
      const std::string object =
          "obj" + std::to_string(rng.NextBounded(static_cast<uint64_t>(objects_per_site)));
      auto value = co_await app.ReadInt(tid, Srv(site), object);
      if (!value.ok()) {
        failed = true;
        break;
      }
      const int64_t next = *value + 1 + id;  // Client-specific delta.
      Status written = co_await app.WriteInt(tid, Srv(site), object, next);
      if (!written.ok()) {
        failed = true;
        break;
      }
      trace.ops.push_back(TxnTrace::Op{site, object, *value, next});
    }
    if (failed) {
      co_await app.Abort(tid);
      ++*aborted;
      continue;
    }
    Status st = co_await app.Commit(tid);
    if (st.ok()) {
      trace.commit_point = world.sched().now();
      committed->push_back(std::move(trace));
    } else {
      ++*aborted;
    }
  }
}

class SerializabilitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializabilitySweep, CommittedHistoryEqualsSerialReplay) {
  const uint64_t seed = GetParam();
  const int kSites = 2;
  const int kObjects = 3;
  const int kClients = 4;
  World world(Config(kSites, seed));
  for (int i = 0; i < kSites; ++i) {
    DataServer* server = world.AddServer(i, Srv(i));
    for (int o = 0; o < kObjects; ++o) {
      server->CreateObjectForSetup("obj" + std::to_string(o), EncodeInt64(0));
    }
  }
  std::vector<TxnTrace> committed;
  int aborted = 0;
  for (int c = 0; c < kClients; ++c) {
    world.sched().Spawn(Client(world, c, 5, kSites, kObjects, &committed, &aborted));
  }
  world.RunUntilIdle();
  ASSERT_GT(committed.size(), 0u);

  // Replay the committed transactions in commit-point order against a model.
  std::sort(committed.begin(), committed.end(),
            [](const TxnTrace& a, const TxnTrace& b) { return a.commit_point < b.commit_point; });
  std::map<std::pair<int, std::string>, int64_t> model;
  for (const auto& txn : committed) {
    for (const auto& op : txn.ops) {
      auto key = std::make_pair(op.site, op.object);
      const int64_t current = model.count(key) ? model[key] : 0;
      // Strict 2PL: the value each committed op read must be the model value
      // at its transaction's serialization point.
      EXPECT_EQ(op.read_value, current)
          << "seed " << seed << " non-serializable read of " << op.object << "@site"
          << op.site;
      model[key] = op.written_value;
    }
  }
  // The live system's final state must equal the serial replay.
  AppClient reader(world.site(0));
  for (int i = 0; i < kSites; ++i) {
    for (int o = 0; o < kObjects; ++o) {
      const std::string object = "obj" + std::to_string(o);
      auto final_value = world.RunSync([](AppClient& app, std::string srv,
                                          std::string obj) -> Async<int64_t> {
        auto begin = co_await app.Begin();
        auto v = co_await app.ReadInt(*begin, srv, obj);
        co_await app.Commit(*begin);
        co_return v.value_or(-1);
      }(reader, Srv(i), object));
      auto key = std::make_pair(i, object);
      const int64_t expected = model.count(key) ? model[key] : 0;
      EXPECT_EQ(final_value.value_or(-1), expected)
          << "seed " << seed << " divergent final state of " << object << "@site" << i;
    }
  }
  // No lock or transaction leaks either.
  for (int i = 0; i < kSites; ++i) {
    EXPECT_EQ(world.site(i).server(Srv(i))->locks().held_lock_count(), 0u) << "site " << i;
    EXPECT_EQ(world.site(i).tranman().live_family_count(), 0u) << "site " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializabilitySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace camelot
