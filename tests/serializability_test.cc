// Serializability property tests: under concurrent random transactions,
// strict two-phase locking must make the outcome equal to SOME serial
// execution — with S2PL (locks held to the commit point), replaying the
// committed transactions in commit order must reproduce the final state.
//
// The recording and replay machinery lives in the shared harness now:
// World's HistoryRecorder captures every served read/write and outcome
// transition, and IsolationOracle::Check performs the commit-order serial
// replay (src/harness/isolation_oracle.h). This test drives a random
// read-modify-write workload over it and additionally checks the live
// system's final state against the oracle's replayed model.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/harness/isolation_oracle.h"
#include "src/harness/world.h"

namespace camelot {
namespace {

WorldConfig Config(int sites, uint64_t seed) {
  WorldConfig cfg;
  cfg.site_count = sites;
  cfg.seed = seed;
  // Keep realistic jitter ON: interleavings are the whole point here.
  cfg.server.lock_wait_timeout = Sec(1.0);
  cfg.ipc.rpc_timeout = Sec(2.5);
  return cfg;
}

std::string Srv(int i) { return "server:" + std::to_string(i); }

// One client: runs `count` read-modify-write transactions over random objects.
Async<void> Client(World& world, int id, int count, int sites, int objects_per_site,
                   int* committed, int* aborted) {
  AppClient app(world.site(0));
  Rng rng(static_cast<uint64_t>(id) * 7919 + 13);
  for (int t = 0; t < count; ++t) {
    auto begin = co_await app.Begin();
    if (!begin.ok()) {
      co_return;
    }
    const Tid tid = *begin;
    bool failed = false;
    const int n_ops = 1 + static_cast<int>(rng.NextBounded(3));
    for (int k = 0; k < n_ops && !failed; ++k) {
      const int site = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(sites)));
      const std::string object =
          "obj" + std::to_string(rng.NextBounded(static_cast<uint64_t>(objects_per_site)));
      auto value = co_await app.ReadInt(tid, Srv(site), object);
      if (!value.ok()) {
        failed = true;
        break;
      }
      const int64_t next = *value + 1 + id;  // Client-specific delta.
      Status written = co_await app.WriteInt(tid, Srv(site), object, next);
      if (!written.ok()) {
        failed = true;
        break;
      }
    }
    if (failed) {
      co_await app.Abort(tid);
      ++*aborted;
      continue;
    }
    Status st = co_await app.Commit(tid);
    if (st.ok()) {
      ++*committed;
    } else {
      ++*aborted;
    }
  }
}

class SerializabilitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializabilitySweep, CommittedHistoryEqualsSerialReplay) {
  const uint64_t seed = GetParam();
  const int kSites = 2;
  const int kObjects = 3;
  const int kClients = 4;
  World world(Config(kSites, seed));
  world.history().set_enabled(true);  // Before setup: kInit seeds the model.
  for (int i = 0; i < kSites; ++i) {
    DataServer* server = world.AddServer(i, Srv(i));
    for (int o = 0; o < kObjects; ++o) {
      server->CreateObjectForSetup("obj" + std::to_string(o), EncodeInt64(0));
    }
  }
  int committed = 0;
  int aborted = 0;
  for (int c = 0; c < kClients; ++c) {
    world.sched().Spawn(Client(world, c, 5, kSites, kObjects, &committed, &aborted));
  }
  world.RunUntilIdle();
  ASSERT_GT(committed, 0);

  // The recorded history must replay serializably in commit order: every
  // committed read equals the model, no anomaly of any name.
  IsolationReport report = IsolationOracle::Check(world.history().events());
  EXPECT_TRUE(report.ok()) << "seed " << seed << "\n" << report.Explain();
  EXPECT_EQ(report.committed, static_cast<size_t>(committed)) << "seed " << seed;
  EXPECT_GT(report.reads_checked, 0u) << "seed " << seed;

  // The live system's final state must equal the serial replay's.
  AppClient reader(world.site(0));
  for (int i = 0; i < kSites; ++i) {
    for (int o = 0; o < kObjects; ++o) {
      const std::string object = "obj" + std::to_string(o);
      auto final_value = world.RunSync([](AppClient& app, std::string srv,
                                          std::string obj) -> Async<int64_t> {
        auto begin = co_await app.Begin();
        auto v = co_await app.ReadInt(*begin, srv, obj);
        co_await app.Commit(*begin);
        co_return v.value_or(-1);
      }(reader, Srv(i), object));
      ASSERT_TRUE(final_value.has_value());
      EXPECT_TRUE(report.CheckFinalValue(Srv(i), object, EncodeInt64(*final_value)))
          << "seed " << seed << " divergent final state of " << object << "@site" << i;
    }
  }
  EXPECT_TRUE(report.ok()) << "seed " << seed << "\n" << report.Explain();
  // No lock or transaction leaks either.
  for (int i = 0; i < kSites; ++i) {
    EXPECT_EQ(world.site(i).server(Srv(i))->locks().held_lock_count(), 0u) << "site " << i;
    EXPECT_EQ(world.site(i).tranman().live_family_count(), 0u) << "site " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializabilitySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace camelot
