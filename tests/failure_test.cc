// Failure-injection integration tests: crashes at chosen protocol points,
// recovery, 2PC blocking, non-blocking takeover, partitions, and randomized
// atomicity sweeps (money conservation under arbitrary crash timing).
//
// Crash timing is expressed with named failpoints (src/base/failpoint.h):
// arming "tm.2pc.commit_force.before"@0 crashes the coordinator exactly at
// that protocol point, replacing the old poll-the-durable-log watchers.
#include <gtest/gtest.h>

#include <string>

#include "src/harness/world.h"

namespace camelot {
namespace {

WorldConfig FailConfig(int sites, uint64_t seed = 1) {
  WorldConfig cfg;
  cfg.site_count = sites;
  cfg.seed = seed;
  cfg.net.send_jitter_mean = 0;
  cfg.net.stall_probability = 0;
  cfg.net.receive_skew_mean = 0;
  // Tighter protocol timers so failure scenarios resolve quickly.
  cfg.tranman.outcome_timeout = Usec(400000);
  cfg.tranman.retry_interval = Usec(300000);
  cfg.tranman.takeover_backoff = Usec(300000);
  cfg.tranman.orphan_check_interval = Sec(1.0);
  cfg.ipc.rpc_timeout = Sec(1.5);
  return cfg;
}

struct Rig {
  explicit Rig(WorldConfig cfg) : world(cfg), app(world.site(0)) {
    for (int i = 0; i < world.site_count(); ++i) {
      DataServer* server = world.AddServer(i, ServerName(i));
      server->CreateObjectForSetup("acct", EncodeInt64(100));
    }
  }
  static std::string ServerName(int i) { return "server:" + std::to_string(i); }
  DataServer* server(int i) { return world.site(i).server(ServerName(i)); }

  // Reads `acct` on `site_index` in a fresh transaction issued from a healthy
  // home site (`from`).
  int64_t ReadAcct(int site_index, int from = -1) {
    if (from < 0) {
      from = site_index;
    }
    AppClient client(world.site(from));
    auto v = world.RunSync([](AppClient& a, std::string srv) -> Async<int64_t> {
      auto begin = co_await a.Begin();
      if (!begin.ok()) {
        co_return -1;
      }
      auto value = co_await a.ReadInt(*begin, srv, "acct");
      co_await a.Commit(*begin);
      co_return value.value_or(-1);
    }(client, ServerName(site_index)));
    return v.value_or(-1);
  }

  // Arms a one-shot crash of `victim` at the first hit of `point`.
  void CrashAt(const char* point, int victim) {
    world.failpoints().Arm(point, SiteId{static_cast<uint32_t>(victim)},
                           FailpointArm::Crash(1));
  }

  World world;
  AppClient app;
};

Async<Status> TransferTxn(AppClient& app, const std::string& from_srv,
                          const std::string& to_srv, int64_t amount, CommitOptions options) {
  auto begin = co_await app.Begin();
  if (!begin.ok()) {
    co_return begin.status();
  }
  const Tid tid = *begin;
  auto a = co_await app.ReadInt(tid, from_srv, "acct");
  auto b = co_await app.ReadInt(tid, to_srv, "acct");
  if (!a.ok() || !b.ok()) {
    co_await app.Abort(tid);
    co_return AbortedError("read failed");
  }
  Status w1 = co_await app.WriteInt(tid, from_srv, "acct", *a - amount);
  Status w2 = co_await app.WriteInt(tid, to_srv, "acct", *b + amount);
  if (!w1.ok() || !w2.ok()) {
    co_await app.Abort(tid);
    co_return AbortedError("write failed");
  }
  Status st = co_await app.Commit(tid, options);
  co_return st;
}

TEST(FailureTest, CrashBeforeCommitPresumesAbortEverywhere) {
  Rig rig(FailConfig(2));
  // Transaction writes both sites, then the coordinator dies before commit.
  rig.world.sched().Spawn([](Rig& r) -> Async<void> {
    auto begin = co_await r.app.Begin();
    const Tid tid = *begin;
    co_await r.app.WriteInt(tid, Rig::ServerName(0), "acct", 7);
    co_await r.app.WriteInt(tid, Rig::ServerName(1), "acct", 7);
    r.world.Crash(0);  // Dies with the transaction active.
  }(rig));
  rig.world.RunUntilIdle();
  // The subordinate's orphan watcher must eventually abort and release locks.
  EXPECT_EQ(rig.server(1)->locks().held_lock_count(), 0u);
  EXPECT_EQ(rig.world.site(1).tranman().counters().orphans_aborted, 1u);
  EXPECT_EQ(rig.ReadAcct(1), 100);

  rig.world.Restart(0);
  rig.world.RunUntilIdle();
  EXPECT_EQ(rig.ReadAcct(0), 100);  // Undone by restart recovery.
}

TEST(FailureTest, TwoPhaseSubordinateBlocksUntilCoordinatorReturns_Abort) {
  Rig rig(FailConfig(2));
  // Crash the coordinator at the brink of its commit force — squarely inside
  // the window of vulnerability: the subordinate's prepare record is durable
  // (its vote is in) but the coordinator's commit record does not exist.
  rig.CrashAt("tm.2pc.commit_force.before", 0);
  std::optional<Status> commit_status;
  rig.world.sched().Spawn([](Rig& r, std::optional<Status>* out) -> Async<void> {
    Status st = co_await TransferTxn(r.app, Rig::ServerName(0), Rig::ServerName(1), 10,
                                     CommitOptions::Optimized());
    *out = st;
  }(rig, &commit_status));

  // Give the subordinate time to notice and block (but the world cannot go
  // idle yet: it is retrying status queries).
  rig.world.RunFor(Sec(3));
  const FamilyId family{SiteId{0}, 1};
  EXPECT_TRUE(rig.world.site(1).tranman().IsBlocked(family));
  EXPECT_GT(rig.server(1)->locks().held_lock_count(), 0u);
  EXPECT_GT(rig.world.site(1).tranman().counters().blocked_periods, 0u);

  // The coordinator returns with no commit record: presumed abort resolves it.
  rig.world.Restart(0);
  rig.world.RunUntilIdle();
  EXPECT_FALSE(rig.world.site(1).tranman().IsBlocked(family));
  EXPECT_EQ(rig.server(1)->locks().held_lock_count(), 0u);
  EXPECT_EQ(rig.ReadAcct(0), 100);
  EXPECT_EQ(rig.ReadAcct(1), 100);
}

TEST(FailureTest, TwoPhaseCoordinatorCrashAfterCommitPointStillCommits) {
  Rig rig(FailConfig(2));
  // Crash the coordinator as soon as its commit record is durable (before the
  // COMMIT notification can be sent to the subordinate).
  rig.CrashAt("tm.2pc.commit_force.after", 0);
  rig.world.sched().Spawn([](Rig& r) -> Async<void> {
    co_await TransferTxn(r.app, Rig::ServerName(0), Rig::ServerName(1), 10,
                         CommitOptions::Optimized());
  }(rig));
  // Whether or not the commit datagram was already on the wire at crash time,
  // the forced commit record means the decision is COMMIT, period.
  rig.world.RunFor(Sec(3));
  rig.world.Restart(0);
  rig.world.RunUntilIdle();
  // Recovery resumed phase 2: the decision was COMMIT and must prevail.
  EXPECT_EQ(rig.ReadAcct(1), 110);
  EXPECT_EQ(rig.ReadAcct(0), 90);
  EXPECT_EQ(rig.server(1)->locks().held_lock_count(), 0u);
  // Coordinator's log gained an End record after the resumed phase 2 finished.
  EXPECT_EQ(rig.world.site(0).tranman().live_family_count(), 0u);
}

TEST(FailureTest, NonBlockingTakeoverCommitsAfterCoordinatorCrash) {
  Rig rig(FailConfig(3));
  // Crash the coordinator at the brink of its commit force: the replicate
  // phase reached its quorum (commit intent is durable at subordinates) but
  // no subordinate has learned the outcome.
  rig.CrashAt("tm.nbc.commit_force.before", 0);
  std::optional<Status> status;
  rig.world.sched().Spawn([](Rig& r, std::optional<Status>* out) -> Async<void> {
    auto begin = co_await r.app.Begin();
    const Tid tid = *begin;
    for (int i = 0; i < 3; ++i) {
      co_await r.app.WriteInt(tid, Rig::ServerName(i), "acct", 55);
    }
    *out = co_await r.app.Commit(tid, CommitOptions::NonBlocking());
  }(rig, &status));
  rig.world.RunUntilIdle();

  // The subordinates elected themselves coordinators and finished with COMMIT
  // (commit-intent replications existed at a quorum).
  EXPECT_GT(rig.world.site(1).tranman().counters().takeovers +
                rig.world.site(2).tranman().counters().takeovers,
            0u);
  EXPECT_EQ(rig.ReadAcct(1), 55);
  EXPECT_EQ(rig.ReadAcct(2), 55);
  EXPECT_EQ(rig.server(1)->locks().held_lock_count(), 0u);
  EXPECT_EQ(rig.server(2)->locks().held_lock_count(), 0u);

  // The crashed coordinator recovers and adopts the same outcome.
  rig.world.Restart(0);
  rig.world.RunUntilIdle();
  EXPECT_EQ(rig.ReadAcct(0), 55);
}

TEST(FailureTest, NonBlockingTakeoverAbortsWhenNoReplicationExists) {
  Rig rig(FailConfig(3));
  // Crash the coordinator right after the subordinates prepare, before its
  // replicate phase starts: no commit intent exists anywhere, so takeover
  // must ABORT.
  rig.CrashAt("tm.nbc.replicate_force.before", 0);
  rig.world.sched().Spawn([](Rig& r) -> Async<void> {
    auto begin = co_await r.app.Begin();
    const Tid tid = *begin;
    for (int i = 0; i < 3; ++i) {
      co_await r.app.WriteInt(tid, Rig::ServerName(i), "acct", 55);
    }
    co_await r.app.Commit(tid, CommitOptions::NonBlocking());
  }(rig));
  rig.world.RunUntilIdle();

  EXPECT_EQ(rig.ReadAcct(1), 100);
  EXPECT_EQ(rig.ReadAcct(2), 100);
  EXPECT_EQ(rig.server(1)->locks().held_lock_count(), 0u);
  EXPECT_EQ(rig.server(2)->locks().held_lock_count(), 0u);

  rig.world.Restart(0);
  rig.world.RunUntilIdle();
  EXPECT_EQ(rig.ReadAcct(0), 100);
}

TEST(FailureTest, NonBlockingSurvivesPartitionOfCoordinator) {
  Rig rig(FailConfig(3));
  // Partition the coordinator away at the brink of its commit force, once
  // replication reached its quorum; the majority side {1,2} must decide
  // without it. A callback arm replaces the old durable-log polling watcher.
  rig.world.failpoints().Arm(
      "tm.nbc.commit_force.before", SiteId{0}, FailpointArm::Callback(1, [&rig] {
        rig.world.net().SetPartition({{SiteId{0}}, {SiteId{1}, SiteId{2}}});
        // Heal after a while so the coordinator can learn the outcome.
        rig.world.sched().Post(Sec(8), [&rig] { rig.world.net().ClearPartition(); });
      }));

  std::optional<Status> status;
  rig.world.sched().Spawn([](Rig& r, std::optional<Status>* out) -> Async<void> {
    auto begin = co_await r.app.Begin();
    const Tid tid = *begin;
    for (int i = 0; i < 3; ++i) {
      co_await r.app.WriteInt(tid, Rig::ServerName(i), "acct", 77);
    }
    *out = co_await r.app.Commit(tid, CommitOptions::NonBlocking());
  }(rig, &status));
  rig.world.RunUntilIdle();

  // Majority committed during the partition; coordinator converged after heal.
  EXPECT_EQ(rig.ReadAcct(1), 77);
  EXPECT_EQ(rig.ReadAcct(2), 77);
  EXPECT_EQ(rig.ReadAcct(0), 77);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.server(i)->locks().held_lock_count(), 0u) << i;
  }
}

TEST(FailureTest, RecoveryIsIdempotentAcrossDoubleCrash) {
  Rig rig(FailConfig(2));
  // Commit a transaction normally.
  auto st = rig.world.RunSync(TransferTxn(rig.app, Rig::ServerName(0), Rig::ServerName(1), 25,
                                          CommitOptions::Optimized()));
  ASSERT_TRUE(st.has_value() && st->ok());
  // Crash and recover twice; the committed state must survive both times.
  for (int round = 0; round < 2; ++round) {
    rig.world.Crash(0);
    rig.world.Crash(1);
    rig.world.RunFor(Sec(1));
    rig.world.Restart(0);
    rig.world.Restart(1);
    rig.world.RunUntilIdle();
    EXPECT_EQ(rig.ReadAcct(0), 75) << "round " << round;
    EXPECT_EQ(rig.ReadAcct(1), 125) << "round " << round;
  }
}

// The big atomicity property: under a coordinator crash at an ARBITRARY moment
// during a stream of transfers, after recovery the total money is conserved
// and no locks or live transactions leak.
TEST(FailureTest, MoneyConservedUnderRandomCoordinatorCrash) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rig rig(FailConfig(3, seed));
    Rng rng(seed * 97);
    // Stream of transfers from site 0's application.
    rig.world.sched().Spawn([](Rig& r) -> Async<void> {
      for (int i = 0; i < 8; ++i) {
        const int from = i % 3;
        const int to = (i + 1) % 3;
        const CommitOptions options = (i % 2 == 0) ? CommitOptions::Optimized()
                                                   : CommitOptions::NonBlocking();
        co_await TransferTxn(r.app, Rig::ServerName(from), Rig::ServerName(to), 5, options);
        if (!r.world.site(0).site().up()) {
          co_return;
        }
      }
    }(rig));
    // Crash the coordinator site at a random instant inside the stream.
    const SimDuration crash_at = Usec(static_cast<int64_t>(rng.NextBounded(900000)));
    rig.world.sched().Post(crash_at, [&rig] { rig.world.Crash(0); });
    rig.world.RunUntilIdle();
    rig.world.Restart(0);
    rig.world.RunUntilIdle();

    int64_t total = 0;
    for (int i = 0; i < 3; ++i) {
      const int64_t v = rig.ReadAcct(i, /*from=*/1);
      ASSERT_GE(v, 0) << "seed " << seed << " site " << i;
      total += v;
      EXPECT_EQ(rig.server(i)->locks().held_lock_count(), 0u) << "seed " << seed;
    }
    EXPECT_EQ(total, 300) << "seed " << seed;
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(rig.world.site(i).tranman().live_family_count(), 0u)
          << "seed " << seed << " site " << i;
    }
  }
}

TEST(FailureTest, MoneyConservedUnderRandomSubordinateCrash) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rig rig(FailConfig(3, seed));
    Rng rng(seed * 131);
    int attempted = 0;
    int committed = 0;
    rig.world.sched().Spawn([](Rig& r, int* att, int* com) -> Async<void> {
      for (int i = 0; i < 8; ++i) {
        ++*att;
        Status st = co_await TransferTxn(r.app, Rig::ServerName(1), Rig::ServerName(2), 5,
                                         (i % 2 == 0) ? CommitOptions::Optimized()
                                                      : CommitOptions::NonBlocking());
        if (st.ok()) {
          ++*com;
        }
      }
    }(rig, &attempted, &committed));
    const int victim = 1 + static_cast<int>(rng.NextBounded(2));
    const SimDuration crash_at = Usec(static_cast<int64_t>(rng.NextBounded(900000)));
    rig.world.sched().Post(crash_at, [&rig, victim] { rig.world.Crash(victim); });
    // Restart the victim a little later so in-flight protocols must cope with
    // the outage window.
    rig.world.sched().Post(crash_at + Sec(2), [&rig, victim] { rig.world.Restart(victim); });
    rig.world.RunUntilIdle();

    int64_t total = 0;
    for (int i = 0; i < 3; ++i) {
      const int64_t v = rig.ReadAcct(i, /*from=*/0);
      ASSERT_GE(v, 0) << "seed " << seed << " site " << i;
      total += v;
    }
    EXPECT_EQ(total, 300) << "seed " << seed << " (attempted " << attempted << ", committed "
                          << committed << ")";
  }
}

}  // namespace
}  // namespace camelot
