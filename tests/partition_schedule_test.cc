// Partition-schedule exploration against the liveness/availability oracle.
//
// The flagship assertions reproduce the paper's blocking claim: while a
// partition isolates the coordinator, 2PC subordinates sit blocked (holding
// locks, deciding nothing) whereas NBC's connected majority runs quorum
// takeover and decides inside the fault window. Every failing run prints a
// replay recipe; rerun it with
//   CAMELOT_SEED=... CAMELOT_PROTOCOL=... CAMELOT_NEMESIS='...' \
//   ./partition_schedule_test --gtest_filter='*ReplaysNemesisFromEnvironment*'
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/harness/partition_explorer.h"
#include "src/harness/replay.h"

namespace camelot {
namespace {

PartitionExplorerConfig Config(bool non_blocking, uint64_t seed = 1) {
  PartitionExplorerConfig cfg;
  cfg.non_blocking = non_blocking;
  cfg.seed = seed;
  return cfg;
}

void ReportFailures(const std::vector<PartitionSweepFailure>& failures) {
  for (const PartitionSweepFailure& f : failures) {
    ADD_FAILURE() << f.label << " violated the oracle:\n"
                  << f.result.Explain() << "  replay: " << f.result.replay;
  }
}

NemesisScript MustParse(const std::string& text) {
  auto script = NemesisScript::Parse(text);
  CAMELOT_CHECK(script.ok());
  return *script;
}

TEST(PartitionSchedule, FaultFreeRunPassesOracle) {
  for (const CommitOptions& options :
       {CommitOptions::Optimized(), CommitOptions::Unoptimized(),
        CommitOptions::Intermediate(), CommitOptions::NonBlocking(),
        CommitOptions::Paxos(0), CommitOptions::Paxos(1)}) {
    PartitionExplorerConfig cfg;
    cfg.variant = options;
    PartitionExplorer ex(cfg);
    const PartitionRunResult result = ex.Run(NemesisScript{});
    EXPECT_TRUE(result.ok) << ProtocolName(options) << ": " << result.Explain();
    EXPECT_EQ(result.client_ok, ex.config().transfers);
    for (const SiteObservation& obs : result.sites) {
      EXPECT_EQ(obs.decided_in_window, 0u);
      EXPECT_EQ(obs.stuck_families, 0u);
    }
  }
}

// --- The paper's blocking claim, as a falsifiable contrast ------------------------

TEST(PartitionSchedule, TwoPhaseSubordinatesBlockWhileCoordinatorIsolated) {
  // Partition {0} | {1,2} the instant the 2PC coordinator's commit record is
  // durable: subordinates are prepared, in the window of vulnerability, and
  // the COMMIT datagrams die on the wire.
  PartitionExplorer ex(Config(/*non_blocking=*/false));
  const PartitionRunResult result =
      ex.Run(MustParse("tm.2pc.commit_force.after@0#1=partition:0|1,2;+4000000=heal"));
  ASSERT_TRUE(result.ok) << result.Explain() << "  replay: " << result.replay;

  ASSERT_EQ(result.sites.size(), 3u);
  for (int sub : {1, 2}) {
    // Blocked: entered the blocked state, accumulated lock-holding limbo time,
    // and decided NOTHING while the partition stood.
    EXPECT_GT(result.sites[sub].blocked_periods, 0u) << "site " << sub;
    EXPECT_GT(result.sites[sub].blocked_time_us, 0u) << "site " << sub;
    EXPECT_EQ(result.sites[sub].decided_in_window, 0u) << "site " << sub;
  }
}

TEST(PartitionSchedule, NbcQuorumSideDecidesDuringPartition) {
  // Same split, same instant, but under the non-blocking protocol: sites 1+2
  // hold replicated evidence and form a commit quorum (2 of 3), so takeover
  // decides inside the fault window — no waiting for the coordinator.
  PartitionExplorer ex(Config(/*non_blocking=*/true));
  const PartitionRunResult result =
      ex.Run(MustParse("tm.nbc.commit_force.after@0#1=partition:0|1,2;+4000000=heal"));
  ASSERT_TRUE(result.ok) << result.Explain() << "  replay: " << result.replay;

  ASSERT_EQ(result.sites.size(), 3u);
  uint64_t quorum_side_decisions = 0;
  for (int sub : {1, 2}) {
    quorum_side_decisions += result.sites[sub].decided_in_window;
  }
  EXPECT_GT(quorum_side_decisions, 0u)
      << "NBC majority failed to decide during the partition";
}

TEST(PartitionSchedule, PaxosQuorumSideDecidesDuringPartition) {
  // The Paxos Commit non-blocking claim: isolate the coordinator the instant
  // its ballot-0 accept is durable (the commit record itself is only
  // spooled). Acceptors 1+2 hold a commit quorum of accepts (2 of 3 under
  // F = 1), so leader takeover at a promoted ballot decides inside the fault
  // window — same availability as NBC, one fewer coordinator force.
  PartitionExplorerConfig cfg;
  cfg.variant = CommitOptions::Paxos(1);
  PartitionExplorer ex(cfg);
  const PartitionRunResult result =
      ex.Run(MustParse("tm.paxos.accept_force.after@0#1=partition:0|1,2;+4000000=heal"));
  ASSERT_TRUE(result.ok) << result.Explain() << "  replay: " << result.replay;

  ASSERT_EQ(result.sites.size(), 3u);
  uint64_t quorum_side_decisions = 0;
  for (int sub : {1, 2}) {
    quorum_side_decisions += result.sites[sub].decided_in_window;
  }
  EXPECT_GT(quorum_side_decisions, 0u)
      << "Paxos acceptor majority failed to decide during the partition";
  // The recipe for a paxos run must carry F so the replay rebuilds the same
  // acceptor-set geometry.
  EXPECT_NE(result.replay.find("CAMELOT_PROTOCOL=paxos"), std::string::npos) << result.replay;
  EXPECT_NE(result.replay.find("CAMELOT_F=1"), std::string::npos) << result.replay;
}

// --- Exhaustive sweeps -------------------------------------------------------------

TEST(PartitionSchedule, ExhaustiveSinglePartitionSweepTwoPhase) {
  int runs = 0;
  ReportFailures(PartitionExplorer(Config(false)).ExhaustiveSinglePartitionSweep(&runs));
  EXPECT_EQ(runs, 17);  // Fault-free conformance baseline + 4 splits x 4 windows.
}

TEST(PartitionSchedule, ExhaustiveSinglePartitionSweepNonBlocking) {
  int runs = 0;
  ReportFailures(PartitionExplorer(Config(true)).ExhaustiveSinglePartitionSweep(&runs));
  EXPECT_EQ(runs, 17);
}

TEST(PartitionSchedule, ExhaustiveSinglePartitionSweepPaxos) {
  PartitionExplorerConfig cfg;
  cfg.variant = CommitOptions::Paxos(1);
  int runs = 0;
  ReportFailures(PartitionExplorer(cfg).ExhaustiveSinglePartitionSweep(&runs));
  EXPECT_EQ(runs, 17);
}

TEST(PartitionSchedule, RandomNemesisSmoke) {
  for (const CommitOptions& options :
       {CommitOptions::Optimized(), CommitOptions::NonBlocking(), CommitOptions::Paxos(1)}) {
    PartitionExplorerConfig cfg;
    cfg.variant = options;
    int runs = 0;
    ReportFailures(PartitionExplorer(cfg).RandomNemesisSweep(/*rng_seed=*/17, /*rounds=*/4, &runs));
    EXPECT_EQ(runs, 4) << ProtocolName(options);
  }
}

// --- Determinism -------------------------------------------------------------------

TEST(PartitionSchedule, SameSeedAndScriptReproduceIdenticalRuns) {
  const NemesisScript script =
      MustParse("tm.2pc.commit_force.after@0#1=partition:0|1,2;+4000000=heal;"
                "@8000000=reorder:0.3,20000;+2000000=calm");
  auto run = [&script] { return PartitionExplorer(Config(false, 7)).Run(script); };
  const PartitionRunResult a = run();
  const PartitionRunResult b = run();
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.client_ok, b.client_ok);
  EXPECT_EQ(a.nemesis_log, b.nemesis_log);  // Same faults at the same instants.
  EXPECT_EQ(a.datagrams_reordered, b.datagrams_reordered);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(a.sites[i].decided_in_window, b.sites[i].decided_in_window) << i;
    EXPECT_EQ(a.sites[i].blocked_periods, b.sites[i].blocked_periods) << i;
    EXPECT_EQ(a.sites[i].blocked_time_us, b.sites[i].blocked_time_us) << i;
  }
}

// --- Replay from a printed recipe --------------------------------------------------

TEST(PartitionScheduleReplay, ReplaysNemesisFromEnvironment) {
  const char* nemesis_text = std::getenv("CAMELOT_NEMESIS");
  if (nemesis_text == nullptr) {
    GTEST_SKIP() << "set CAMELOT_SEED / CAMELOT_PROTOCOL / CAMELOT_NEMESIS to replay";
  }
  PartitionExplorerConfig cfg;
  if (const char* seed = std::getenv("CAMELOT_SEED")) {
    cfg.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* protocol = std::getenv("CAMELOT_PROTOCOL")) {
    auto options = ParseProtocolName(protocol);
    ASSERT_TRUE(options.ok()) << "CAMELOT_PROTOCOL: " << options.status().message();
    cfg.variant = ApplyPaxosFFromEnv(*options);
  }
  if (std::getenv("CAMELOT_TRACE") != nullptr) {
    SetTraceLevel(TraceLevel::kDebug);
  }
  const auto script = NemesisScript::Parse(nemesis_text);
  ASSERT_TRUE(script.ok()) << script.status().message();
  const PartitionRunResult result = PartitionExplorer(cfg).Run(*script);
  for (const std::string& line : result.nemesis_log) {
    std::printf("%s\n", line.c_str());
  }
  EXPECT_TRUE(result.ok) << result.Explain() << "  replay: " << result.replay;
}

}  // namespace
}  // namespace camelot
