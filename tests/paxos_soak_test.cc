// Paxos Commit soak (ctest label: soak): long-lived transactions — the load
// generator's hold-time distribution keeps locks held for hundreds of
// virtual milliseconds between staging and Commit — under repeated
// crash/restart chaos with F = 1. Long holds are the regime that separates
// Paxos Commit from 2PC: a crash has a wide window to catch families
// mid-commit, and the survivors must resolve through the replicated
// registrar instead of blocking on the dead coordinator. Every run ends with
// the bank-invariant audit (balances conserved, observers agree) and the
// exactly-once counters. Failing runs append their seed recipe to
// paxos_soak_failures.txt (directory overridden by CAMELOT_ARTIFACT_DIR) so
// CI uploads them as an artifact.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/harness/bank_workload.h"
#include "src/harness/load_gen.h"
#include "src/harness/world.h"

namespace camelot {
namespace {

std::string ArtifactPath() {
  const char* dir = std::getenv("CAMELOT_ARTIFACT_DIR");
  return (dir != nullptr ? std::string(dir) + "/" : std::string()) + "paxos_soak_failures.txt";
}

void ReportFailure(const std::string& label, const std::vector<std::string>& violations) {
  std::string joined;
  for (const std::string& v : violations) {
    joined += "  " + v + "\n";
  }
  ADD_FAILURE() << label << " violated the oracle:\n" << joined;
  std::FILE* artifact = std::fopen(ArtifactPath().c_str(), "a");
  if (artifact != nullptr) {
    std::fprintf(artifact, "%s\n%s", label.c_str(), joined.c_str());
    std::fclose(artifact);
  }
}

LoadGenConfig LongLivedConfig(uint64_t seed, uint32_t f) {
  LoadGenConfig cfg;
  cfg.offered_tps = 8.0;
  cfg.duration = Sec(8);
  cfg.accounts_per_site = 16;
  cfg.zipf_theta = 0.4;
  cfg.options = CommitOptions::Paxos(f);
  cfg.hold_time_mean = Sec(0.3);  // ~10x the commit path: locks held, in the open.
  cfg.hold_time_max = Sec(1.5);
  // Contended but viable: ~8 tps with ~350 ms holds keeps 2-3 families' locks
  // open at once over 48 accounts, so crashes land on live families without
  // the workload collapsing into a retry storm.
  cfg.deadline = 0;  // No shedding; every arrival should resolve.
  cfg.max_retries = 3;
  cfg.retry_budget_ratio = 1.0;
  cfg.rng_seed = seed;
  return cfg;
}

WorldConfig SoakWorld(uint64_t seed) {
  WorldConfig cfg;
  cfg.site_count = 3;
  cfg.seed = seed;
  return cfg;
}

// Restarts any down site, then drains the world to a stable idle point. A
// site can go down again during the drain (a late-armed fault never does
// here, but a crash mid-recovery can leave it down), so loop.
bool DrainHealed(World& world) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool any_down = false;
    for (int i = 0; i < world.site_count(); ++i) {
      if (!world.site(i).site().up()) {
        world.Restart(i);
        any_down = true;
      }
    }
    world.RunFor(Sec(3));
    if (!any_down && world.sched().RunUntilIdle(2u * 1000 * 1000).drained) {
      return true;
    }
  }
  return false;
}

TEST(PaxosSoak, LongLivedTransactionsUnderCrashRestartChaos) {
  int total_commits = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const std::string label = "paxos long-lived chaos CAMELOT_SEED=" + std::to_string(seed) +
                              " CAMELOT_PROTOCOL=paxos CAMELOT_F=1";
    World world(SoakWorld(seed));
    LoadGenConfig cfg = LongLivedConfig(seed, /*f=*/1);
    const BankWorkloadConfig bank = ToBankConfig(cfg);
    SetupBank(world, bank);
    LoadGen gen(world, cfg);
    gen.Start();

    // Crash/restart chaos through the arrival window: with 300ms mean holds
    // and 20 tps offered, every crash lands on several open families.
    Rng chaos(seed * 6364136223846793005ULL + 1442695040888963407ULL);
    for (int round = 0; round < 4; ++round) {
      world.RunFor(Sec(1.2));
      const int victim = static_cast<int>(chaos.NextBounded(
          static_cast<uint64_t>(world.site_count())));
      world.Crash(victim);
      world.RunFor(Sec(0.8));
      world.Restart(victim);
    }

    std::vector<std::string> violations;
    if (!DrainHealed(world)) {
      violations.push_back("world did not quiesce after heal");
    }
    for (const std::string& v : AuditBankInvariant(world, bank)) {
      violations.push_back(v);
    }
    for (int i = 0; i < world.site_count(); ++i) {
      const TranManCounters& c = world.site(i).tranman().counters();
      if (c.heuristic_damage != 0) {
        violations.push_back("site " + std::to_string(i) + ": heuristic damage");
      }
      if (c.duplicate_effects != 0) {
        violations.push_back("site " + std::to_string(i) + ": duplicate effects");
      }
    }
    if (!violations.empty()) {
      ReportFailure(label, violations);
    }
    // A fault-free run commits most arrivals; four crash rounds legitimately
    // abort many, but a healthy floor must survive the chaos.
    EXPECT_GT(gen.stats().committed, 5u) << label;
    total_commits += static_cast<int>(gen.stats().committed);
  }
  std::printf("paxos soak: %d long-lived commits across chaos seeds\n", total_commits);
}

TEST(PaxosSoak, FaultFreeLongHoldsResolveEveryArrival) {
  // No chaos: every long-lived arrival must resolve (commit or clean abort),
  // balances conserved, at F = 0 (degenerate 2PC), 1, and 2.
  for (const uint32_t f : {0u, 1u, 2u}) {
    World world(SoakWorld(/*seed=*/42 + f));
    LoadGenConfig cfg = LongLivedConfig(/*seed=*/42 + f, f);
    cfg.duration = Sec(5);
    const BankWorkloadConfig bank = ToBankConfig(cfg);
    SetupBank(world, bank);
    LoadGen gen(world, cfg);
    gen.Start();
    world.RunFor(cfg.duration + Sec(5));
    world.RunUntilIdle();
    const std::string label = "paxos fault-free holds F=" + std::to_string(f);
    EXPECT_TRUE(gen.done()) << label;
    EXPECT_GT(gen.stats().committed, 0u) << label;
    // Mean arrival-to-commit latency must show the hold (>= 200ms with a
    // 300ms mean hold; the plain commit path is tens of milliseconds).
    EXPECT_GT(gen.stats().latency_ms.mean(), 200.0) << label;
    std::vector<std::string> violations = AuditBankInvariant(world, bank);
    if (!violations.empty()) {
      ReportFailure(label, violations);
    }
  }
}

}  // namespace
}  // namespace camelot
