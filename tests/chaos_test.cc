// Chaos soak test: minutes of virtual time with random crashes, restarts,
// partitions, message loss, and duplication, under concurrent transfer
// traffic from multiple sites using BOTH commit protocols. At the end, after
// healing and recovering everything, the invariants must hold:
//   - total money conserved (every transfer was atomic),
//   - all sites agree on every balance,
//   - no leaked locks or live transactions anywhere.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/harness/world.h"

namespace camelot {
namespace {

constexpr int kSites = 4;
constexpr int64_t kInitialBalance = 1000;

std::string Srv(int i) { return "server:" + std::to_string(i); }

WorldConfig ChaosConfig(uint64_t seed) {
  WorldConfig cfg;
  cfg.site_count = kSites;
  cfg.seed = seed;
  cfg.net.loss_probability = 0.02;
  cfg.net.duplicate_probability = 0.02;
  cfg.tranman.outcome_timeout = Usec(500000);
  cfg.tranman.retry_interval = Usec(400000);
  cfg.tranman.takeover_backoff = Usec(400000);
  cfg.tranman.orphan_check_interval = Sec(1.5);
  cfg.ipc.rpc_timeout = Sec(1.5);
  cfg.ipc.rpc_retry_interval = Usec(250000);
  cfg.server.lock_wait_timeout = Sec(1.0);
  return cfg;
}

Async<void> TrafficClient(World& world, int home, int transfers, uint64_t seed, int* committed) {
  AppClient app(world.site(home));
  Scheduler& sched = world.sched();
  Rng rng(seed);
  for (int i = 0; i < transfers; ++i) {
    co_await sched.Delay(Usec(static_cast<int64_t>(rng.NextBounded(120000))));
    if (!world.site(home).site().up()) {
      // Our process died with the site; wait for the restart.
      co_await sched.Delay(Sec(2));
      continue;
    }
    const int from = static_cast<int>(rng.NextBounded(kSites));
    int to = static_cast<int>(rng.NextBounded(kSites));
    if (to == from) {
      to = (to + 1) % kSites;
    }
    const CommitOptions options = rng.NextBool(0.5) ? CommitOptions::Optimized()
                                                    : CommitOptions::NonBlocking();
    auto begin = co_await app.Begin();
    if (!begin.ok()) {
      continue;
    }
    const Tid tid = *begin;
    auto a = co_await app.ReadInt(tid, Srv(from), "vault");
    auto b = co_await app.ReadInt(tid, Srv(to), "vault");
    if (!a.ok() || !b.ok()) {
      co_await app.Abort(tid);
      continue;
    }
    Status w1 = co_await app.WriteInt(tid, Srv(from), "vault", *a - 10);
    Status w2 = co_await app.WriteInt(tid, Srv(to), "vault", *b + 10);
    if (!w1.ok() || !w2.ok()) {
      co_await app.Abort(tid);
      continue;
    }
    Status st = co_await app.Commit(tid, options);
    if (st.ok()) {
      ++*committed;
    }
  }
}

void ChaosDriver(World& world, Rng* rng, int remaining_events) {
  if (remaining_events <= 0) {
    return;
  }
  const SimDuration delay = Sec(1.5) + static_cast<SimDuration>(rng->NextBounded(2000000));
  world.sched().Post(delay, [&world, rng, remaining_events] {
    const int kind = static_cast<int>(rng->NextBounded(3));
    if (kind == 0) {
      // Crash a random site, restart it a little later.
      const int victim = static_cast<int>(rng->NextBounded(kSites));
      if (world.site(victim).site().up()) {
        world.Crash(victim);
        world.sched().Post(Sec(1.0) + static_cast<SimDuration>(rng->NextBounded(2000000)),
                           [&world, victim] {
                             if (!world.site(victim).site().up()) {
                               world.Restart(victim);
                             }
                           });
      }
    } else if (kind == 1) {
      // Partition a random site away, heal later.
      const int isolated = static_cast<int>(rng->NextBounded(kSites));
      std::vector<SiteId> rest;
      for (int i = 0; i < kSites; ++i) {
        if (i != isolated) {
          rest.push_back(SiteId{static_cast<uint32_t>(i)});
        }
      }
      world.net().SetPartition({{SiteId{static_cast<uint32_t>(isolated)}}, rest});
      world.sched().Post(Sec(1.0) + static_cast<SimDuration>(rng->NextBounded(1500000)),
                         [&world] { world.net().ClearPartition(); });
    }
    // kind == 2: calm period (no event).
    ChaosDriver(world, rng, remaining_events - 1);
  });
}

class ChaosSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSweep, MoneyConservedAndStateConvergesThroughChaos) {
  const uint64_t seed = GetParam();
  World world(ChaosConfig(seed));
  for (int i = 0; i < kSites; ++i) {
    world.AddServer(i, Srv(i))->CreateObjectForSetup("vault", EncodeInt64(kInitialBalance));
  }
  int committed = 0;
  for (int home = 0; home < kSites; ++home) {
    world.sched().Spawn(
        TrafficClient(world, home, /*transfers=*/8, seed * 100 + static_cast<uint64_t>(home),
                      &committed));
  }
  Rng chaos_rng(seed * 31337);
  ChaosDriver(world, &chaos_rng, /*remaining_events=*/6);
  world.RunUntilIdle();

  // Heal and recover everything, then let all in-doubt work resolve.
  world.net().ClearPartition();
  for (int i = 0; i < kSites; ++i) {
    if (!world.site(i).site().up()) {
      world.Restart(i);
    }
  }
  world.RunUntilIdle();

  // Invariant 1: money conserved, and every site reads the same balances.
  std::vector<int64_t> balances(kSites, -1);
  for (int observer = 0; observer < 2; ++observer) {
    AppClient auditor(world.site(observer));
    int64_t total = 0;
    for (int i = 0; i < kSites; ++i) {
      auto v = world.RunSync([](AppClient& app, std::string srv) -> Async<int64_t> {
        auto begin = co_await app.Begin();
        if (!begin.ok()) {
          co_return -1;
        }
        auto value = co_await app.ReadInt(*begin, srv, "vault");
        co_await app.Commit(*begin);
        co_return value.value_or(-1);
      }(auditor, Srv(i)));
      const int64_t balance = v.value_or(-1);
      ASSERT_GE(balance, 0) << "seed " << seed << " site " << i;
      if (observer == 0) {
        balances[static_cast<size_t>(i)] = balance;
      } else {
        EXPECT_EQ(balance, balances[static_cast<size_t>(i)])
            << "seed " << seed << ": observers disagree about site " << i;
      }
      total += balance;
    }
    EXPECT_EQ(total, kSites * kInitialBalance)
        << "seed " << seed << " observer " << observer << " (committed " << committed << ")";
  }
  // Invariant 2: nothing leaked.
  for (int i = 0; i < kSites; ++i) {
    EXPECT_EQ(world.site(i).server(Srv(i))->locks().held_lock_count(), 0u)
        << "seed " << seed << " site " << i;
    EXPECT_EQ(world.site(i).tranman().live_family_count(), 0u)
        << "seed " << seed << " site " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Range<uint64_t>(1, 21));

// --- Storage-fault soak ------------------------------------------------------------
//
// The same transfer chaos, but on degraded hardware: the duplexed log and the
// data disks tear writes, rot bits, lose sectors, and stall — while sites
// crash and partitions come and go. Money must still be conserved and every
// site must agree, AND the media-recovery machinery must actually have done
// work (pages rebuilt from the log, log frames salvaged from a mirror).
// One TEST looping seeds internally: the repair/salvage totals accumulate
// across the sweep (each gtest runs in its own process under ctest).

WorldConfig StorageChaosConfig(uint64_t seed) {
  WorldConfig cfg = ChaosConfig(seed);
  cfg.log.duplex = true;  // A single log disk cannot survive torn forces.
  cfg.disk.scrub_interval = Usec(400000);
  cfg.disk.scrub_pages_per_pass = 2;
  return cfg;
}

StorageFaultConfig LogFaults() {
  StorageFaultConfig f;
  f.torn_write_probability = 0.08;
  f.bit_rot_probability = 0.005;
  f.write_stall_probability = 0.05;
  f.write_stall_extra = Usec(30000);
  return f;
}

StorageFaultConfig DiskFaults() {
  StorageFaultConfig f;
  f.torn_write_probability = 0.10;
  f.bit_rot_probability = 0.05;
  f.latent_sector_error_probability = 0.10;
  f.write_stall_probability = 0.05;
  f.write_stall_extra = Usec(30000);
  return f;
}

// Periodically flushes a random live site's pool so dirty pages keep crossing
// the (faulty) physical write path — otherwise small working sets never evict
// and the data disk sees no transfers between crashes.
Async<void> PeriodicFlusher(World& world, uint64_t seed, int rounds) {
  Rng rng(seed);
  for (int i = 0; i < rounds; ++i) {
    co_await world.sched().Delay(
        Usec(600000 + static_cast<int64_t>(rng.NextBounded(400000))));
    const int victim = static_cast<int>(rng.NextBounded(kSites));
    if (world.site(victim).site().up()) {
      co_await world.site(victim).diskmgr().FlushAll();
    }
  }
}

TEST(StorageFaultSoak, MoneyConservedAndMediaHealsAcrossSeeds) {
  uint64_t total_pages_repaired = 0;   // Foreground + scrub + restart sweeps.
  uint64_t total_frames_salvaged = 0;  // Log frames rebuilt from a mirror.
  uint64_t total_crc_failures = 0;
  uint64_t total_scrubbed = 0;

  // Seed range re-tuned when retry backoff gained jitter (which shifts every
  // deterministic trajectory): the sweep needs seeds whose hardware draws
  // never corrupt BOTH mirrors of the same interior log frame, since that is
  // unsalvageable by design (the site refuses service) and the property under
  // test here is the duplexed log surviving single-mirror damage.
  for (uint64_t seed = 3; seed <= 10; ++seed) {
    World world(StorageChaosConfig(seed));
    for (int i = 0; i < kSites; ++i) {
      world.AddServer(i, Srv(i))->CreateObjectForSetup("vault", EncodeInt64(0));
    }
    // Fund the vaults through the normal commit path with faults still OFF:
    // CreateObjectForSetup bypasses the log, and media recovery can only
    // rebuild pages the log has history for.
    auto funded = world.RunSync([](World* w) -> Async<bool> {
      AppClient app(w->site(0));
      auto begin = co_await app.Begin();
      if (!begin.ok()) {
        co_return false;
      }
      for (int i = 0; i < kSites; ++i) {
        auto st = co_await app.WriteInt(*begin, Srv(i), "vault", kInitialBalance);
        if (!st.ok()) {
          co_return false;
        }
      }
      co_return (co_await app.Commit(*begin)).ok();
    }(&world));
    ASSERT_TRUE(funded.value_or(false)) << "seed " << seed;

    // Degrade the hardware, then let the chaos rip.
    for (int i = 0; i < kSites; ++i) {
      world.site(i).log().set_faults(LogFaults());
      world.site(i).diskmgr().set_faults(DiskFaults());
    }
    int committed = 0;
    for (int home = 0; home < kSites; ++home) {
      world.sched().Spawn(TrafficClient(world, home, /*transfers=*/8,
                                        seed * 100 + static_cast<uint64_t>(home), &committed));
    }
    world.sched().Spawn(PeriodicFlusher(world, seed * 7 + 1, /*rounds=*/12));
    Rng chaos_rng(seed * 31337);
    ChaosDriver(world, &chaos_rng, /*remaining_events=*/6);
    world.RunUntilIdle();

    // Heal, then bounce EVERY site once more: the final restarts replay the
    // (torn, rotted) duplexed logs — salvaging mirrors — and run the restart
    // media sweep over whatever the scrubber had not caught yet.
    world.net().ClearPartition();
    for (int i = 0; i < kSites; ++i) {
      if (world.site(i).site().up()) {
        world.Crash(i);
      }
    }
    for (int i = 0; i < kSites; ++i) {
      world.Restart(i);
    }
    world.RunUntilIdle();

    // Invariants, with the faults still enabled: audits ride the same repair
    // machinery (a cold read that trips a latent sector error gets its page
    // rebuilt from the log inline).
    std::vector<int64_t> balances(kSites, -1);
    for (int observer = 0; observer < 2; ++observer) {
      AppClient auditor(world.site(observer));
      int64_t total = 0;
      for (int i = 0; i < kSites; ++i) {
        auto v = world.RunSync([](AppClient& app, std::string srv) -> Async<int64_t> {
          auto begin = co_await app.Begin();
          if (!begin.ok()) {
            co_return -1;
          }
          auto value = co_await app.ReadInt(*begin, srv, "vault");
          co_await app.Commit(*begin);
          co_return value.value_or(-1);
        }(auditor, Srv(i)));
        const int64_t balance = v.value_or(-1);
        ASSERT_GE(balance, 0) << "seed " << seed << " site " << i;
        if (observer == 0) {
          balances[static_cast<size_t>(i)] = balance;
        } else {
          EXPECT_EQ(balance, balances[static_cast<size_t>(i)])
              << "seed " << seed << ": observers disagree about site " << i;
        }
        total += balance;
      }
      EXPECT_EQ(total, kSites * kInitialBalance)
          << "seed " << seed << " observer " << observer << " (committed " << committed << ")";
    }
    for (int i = 0; i < kSites; ++i) {
      EXPECT_EQ(world.site(i).tranman().live_family_count(), 0u)
          << "seed " << seed << " site " << i;
      // No site may have hit unsalvageable interior log corruption.
      EXPECT_EQ(world.site(i).recovery_totals().failed_recoveries, 0u)
          << "seed " << seed << " site " << i;
      total_pages_repaired += world.site(i).diskmgr().counters().pages_repaired +
                              world.site(i).recovery_totals().pages_repaired;
      total_frames_salvaged += world.site(i).log().counters().frames_salvaged;
      total_crc_failures += world.site(i).diskmgr().counters().crc_failures_detected;
      total_scrubbed += world.site(i).diskmgr().counters().pages_scrubbed;
    }
  }
  // The sweep must have exercised the machinery it exists to test: at least
  // one data page rebuilt from the log and at least one log frame salvaged
  // from its mirror, across all seeds.
  EXPECT_GE(total_pages_repaired, 1u);
  EXPECT_GE(total_frames_salvaged, 1u);
  // Every detected CRC failure was either repaired or honestly reported —
  // print the totals for the curious (ctest -V).
  std::printf("storage soak totals: %llu crc failures, %llu pages repaired, "
              "%llu frames salvaged, %llu pages scrubbed\n",
              static_cast<unsigned long long>(total_crc_failures),
              static_cast<unsigned long long>(total_pages_repaired),
              static_cast<unsigned long long>(total_frames_salvaged),
              static_cast<unsigned long long>(total_scrubbed));
}

}  // namespace
}  // namespace camelot
