// Chaos soak test: minutes of virtual time with random crashes, restarts,
// partitions, message loss, and duplication, under concurrent transfer
// traffic from multiple sites using BOTH commit protocols. At the end, after
// healing and recovering everything, the invariants must hold:
//   - total money conserved (every transfer was atomic),
//   - all sites agree on every balance,
//   - no leaked locks or live transactions anywhere.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/harness/world.h"

namespace camelot {
namespace {

constexpr int kSites = 4;
constexpr int64_t kInitialBalance = 1000;

std::string Srv(int i) { return "server:" + std::to_string(i); }

WorldConfig ChaosConfig(uint64_t seed) {
  WorldConfig cfg;
  cfg.site_count = kSites;
  cfg.seed = seed;
  cfg.net.loss_probability = 0.02;
  cfg.net.duplicate_probability = 0.02;
  cfg.tranman.outcome_timeout = Usec(500000);
  cfg.tranman.retry_interval = Usec(400000);
  cfg.tranman.takeover_backoff = Usec(400000);
  cfg.tranman.orphan_check_interval = Sec(1.5);
  cfg.ipc.rpc_timeout = Sec(1.5);
  cfg.ipc.rpc_retry_interval = Usec(250000);
  cfg.server.lock_wait_timeout = Sec(1.0);
  return cfg;
}

Async<void> TrafficClient(World& world, int home, int transfers, uint64_t seed, int* committed) {
  AppClient app(world.site(home));
  Scheduler& sched = world.sched();
  Rng rng(seed);
  for (int i = 0; i < transfers; ++i) {
    co_await sched.Delay(Usec(static_cast<int64_t>(rng.NextBounded(120000))));
    if (!world.site(home).site().up()) {
      // Our process died with the site; wait for the restart.
      co_await sched.Delay(Sec(2));
      continue;
    }
    const int from = static_cast<int>(rng.NextBounded(kSites));
    int to = static_cast<int>(rng.NextBounded(kSites));
    if (to == from) {
      to = (to + 1) % kSites;
    }
    const CommitOptions options = rng.NextBool(0.5) ? CommitOptions::Optimized()
                                                    : CommitOptions::NonBlocking();
    auto begin = co_await app.Begin();
    if (!begin.ok()) {
      continue;
    }
    const Tid tid = *begin;
    auto a = co_await app.ReadInt(tid, Srv(from), "vault");
    auto b = co_await app.ReadInt(tid, Srv(to), "vault");
    if (!a.ok() || !b.ok()) {
      co_await app.Abort(tid);
      continue;
    }
    Status w1 = co_await app.WriteInt(tid, Srv(from), "vault", *a - 10);
    Status w2 = co_await app.WriteInt(tid, Srv(to), "vault", *b + 10);
    if (!w1.ok() || !w2.ok()) {
      co_await app.Abort(tid);
      continue;
    }
    Status st = co_await app.Commit(tid, options);
    if (st.ok()) {
      ++*committed;
    }
  }
}

void ChaosDriver(World& world, Rng* rng, int remaining_events) {
  if (remaining_events <= 0) {
    return;
  }
  const SimDuration delay = Sec(1.5) + static_cast<SimDuration>(rng->NextBounded(2000000));
  world.sched().Post(delay, [&world, rng, remaining_events] {
    const int kind = static_cast<int>(rng->NextBounded(3));
    if (kind == 0) {
      // Crash a random site, restart it a little later.
      const int victim = static_cast<int>(rng->NextBounded(kSites));
      if (world.site(victim).site().up()) {
        world.Crash(victim);
        world.sched().Post(Sec(1.0) + static_cast<SimDuration>(rng->NextBounded(2000000)),
                           [&world, victim] {
                             if (!world.site(victim).site().up()) {
                               world.Restart(victim);
                             }
                           });
      }
    } else if (kind == 1) {
      // Partition a random site away, heal later.
      const int isolated = static_cast<int>(rng->NextBounded(kSites));
      std::vector<SiteId> rest;
      for (int i = 0; i < kSites; ++i) {
        if (i != isolated) {
          rest.push_back(SiteId{static_cast<uint32_t>(i)});
        }
      }
      world.net().SetPartition({{SiteId{static_cast<uint32_t>(isolated)}}, rest});
      world.sched().Post(Sec(1.0) + static_cast<SimDuration>(rng->NextBounded(1500000)),
                         [&world] { world.net().ClearPartition(); });
    }
    // kind == 2: calm period (no event).
    ChaosDriver(world, rng, remaining_events - 1);
  });
}

class ChaosSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSweep, MoneyConservedAndStateConvergesThroughChaos) {
  const uint64_t seed = GetParam();
  World world(ChaosConfig(seed));
  for (int i = 0; i < kSites; ++i) {
    world.AddServer(i, Srv(i))->CreateObjectForSetup("vault", EncodeInt64(kInitialBalance));
  }
  int committed = 0;
  for (int home = 0; home < kSites; ++home) {
    world.sched().Spawn(
        TrafficClient(world, home, /*transfers=*/8, seed * 100 + static_cast<uint64_t>(home),
                      &committed));
  }
  Rng chaos_rng(seed * 31337);
  ChaosDriver(world, &chaos_rng, /*remaining_events=*/6);
  world.RunUntilIdle();

  // Heal and recover everything, then let all in-doubt work resolve.
  world.net().ClearPartition();
  for (int i = 0; i < kSites; ++i) {
    if (!world.site(i).site().up()) {
      world.Restart(i);
    }
  }
  world.RunUntilIdle();

  // Invariant 1: money conserved, and every site reads the same balances.
  std::vector<int64_t> balances(kSites, -1);
  for (int observer = 0; observer < 2; ++observer) {
    AppClient auditor(world.site(observer));
    int64_t total = 0;
    for (int i = 0; i < kSites; ++i) {
      auto v = world.RunSync([](AppClient& app, std::string srv) -> Async<int64_t> {
        auto begin = co_await app.Begin();
        if (!begin.ok()) {
          co_return -1;
        }
        auto value = co_await app.ReadInt(*begin, srv, "vault");
        co_await app.Commit(*begin);
        co_return value.value_or(-1);
      }(auditor, Srv(i)));
      const int64_t balance = v.value_or(-1);
      ASSERT_GE(balance, 0) << "seed " << seed << " site " << i;
      if (observer == 0) {
        balances[static_cast<size_t>(i)] = balance;
      } else {
        EXPECT_EQ(balance, balances[static_cast<size_t>(i)])
            << "seed " << seed << ": observers disagree about site " << i;
      }
      total += balance;
    }
    EXPECT_EQ(total, kSites * kInitialBalance)
        << "seed " << seed << " observer " << observer << " (committed " << committed << ")";
  }
  // Invariant 2: nothing leaked.
  for (int i = 0; i < kSites; ++i) {
    EXPECT_EQ(world.site(i).server(Srv(i))->locks().held_lock_count(), 0u)
        << "seed " << seed << " site " << i;
    EXPECT_EQ(world.site(i).tranman().live_family_count(), 0u)
        << "seed " << seed << " site " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace camelot
