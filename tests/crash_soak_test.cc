// Crash-schedule soak (ctest label: soak): the expensive end of the explorer.
// Multi-seed exhaustive every-hit sweeps plus seeded random multi-fault
// schedules under the two-phase, non-blocking, and Paxos commit protocols. Failing schedules are appended to
// crash_soak_failures.txt (override the directory with CAMELOT_ARTIFACT_DIR)
// so CI can upload them as an artifact; each line is a ready-to-run replay
// recipe for crash_schedule_test's ReplaysScheduleFromEnvironment.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/harness/crash_explorer.h"
#include "src/tranman/local_api.h"

namespace camelot {
namespace {

std::string ArtifactPath() {
  const char* dir = std::getenv("CAMELOT_ARTIFACT_DIR");
  return (dir != nullptr ? std::string(dir) + "/" : std::string()) + "crash_soak_failures.txt";
}

void ReportFailures(const std::vector<SweepFailure>& failures) {
  if (failures.empty()) {
    return;
  }
  std::FILE* artifact = std::fopen(ArtifactPath().c_str(), "a");
  for (const SweepFailure& f : failures) {
    ADD_FAILURE() << "schedule " << f.schedule.ToString() << " violated the oracle:\n"
                  << f.result.Explain() << "  replay: " << f.result.replay;
    if (artifact != nullptr) {
      std::fprintf(artifact, "%s\n", f.result.replay.c_str());
    }
  }
  if (artifact != nullptr) {
    std::fclose(artifact);
  }
}

TEST(CrashSoak, ExhaustiveEveryHitSweepAcrossSeeds) {
  int total_runs = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    for (const CommitOptions& options :
         {CommitOptions::Optimized(), CommitOptions::NonBlocking(), CommitOptions::Paxos(1)}) {
      ExplorerConfig cfg;
      cfg.seed = seed;
      cfg.variant = options;
      cfg.transfers = 4;
      int runs = 0;
      ReportFailures(CrashExplorer(cfg).ExhaustiveSingleCrashSweep(/*max_hits_per_point=*/0,
                                                                   &runs));
      total_runs += runs;
    }
  }
  std::printf("crash soak: %d exhaustive single-crash runs\n", total_runs);
  EXPECT_GE(total_runs, 8000);
}

// The intermediate variants get one exhaustive seed each: their fault
// handling shares the 2PC machinery, so a single sweep guards the parts the
// optimization flags actually change (force counts, ack discipline).
TEST(CrashSoak, ExhaustiveSweepIntermediateVariants) {
  int total_runs = 0;
  for (const CommitOptions& options :
       {CommitOptions::Unoptimized(), CommitOptions::Intermediate()}) {
    ExplorerConfig cfg;
    cfg.variant = options;
    cfg.transfers = 4;
    int runs = 0;
    ReportFailures(CrashExplorer(cfg).ExhaustiveSingleCrashSweep(/*max_hits_per_point=*/0,
                                                                 &runs));
    total_runs += runs;
  }
  std::printf("crash soak: %d intermediate-variant runs\n", total_runs);
  EXPECT_GE(total_runs, 150);
}

TEST(CrashSoak, RandomMultiFaultSchedules) {
  int total_runs = 0;
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    for (const CommitOptions& options :
         {CommitOptions::Optimized(), CommitOptions::NonBlocking(), CommitOptions::Paxos(1)}) {
      ExplorerConfig cfg;
      cfg.seed = seed;
      cfg.variant = options;
      int runs = 0;
      ReportFailures(CrashExplorer(cfg).RandomSweep(/*rng_seed=*/seed * 7919, /*rounds=*/90,
                                                    /*max_faults=*/3, &runs));
      total_runs += runs;
    }
  }
  std::printf("crash soak: %d random multi-fault runs\n", total_runs);
  EXPECT_GE(total_runs, 4000);
}

TEST(CrashSoak, RecoverySweepAcrossSeeds) {
  struct ProtocolBase {
    CommitOptions options;
    const char* base_point;  // Coordinator decision-durable crash point.
  };
  const ProtocolBase bases[] = {
      {CommitOptions::Optimized(), "tm.2pc.commit_force.after"},
      {CommitOptions::NonBlocking(), "tm.nbc.commit_force.after"},
      {CommitOptions::Paxos(1), "tm.paxos.accept_force.after"},
  };
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    for (const ProtocolBase& base : bases) {
      ExplorerConfig cfg;
      cfg.seed = seed;
      cfg.variant = base.options;
      CrashExplorer ex(cfg);
      int runs = 0;
      ReportFailures(
          ex.RecoverySweep({base.base_point, SiteId{0}, 1, FailpointAction::kCrash, 0}, &runs));
      EXPECT_GE(runs, 2) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace camelot
