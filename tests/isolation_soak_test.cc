// Isolation-gated bank chaos soak (ctest label: soak): the balance-conserving
// bank workload (src/harness/bank_workload.h) runs under alternating network
// partitions and site crash/restart rounds, for every commit variant of the
// paper's comparison. After every round the world must pass BOTH gates:
//
//   - AuditBankInvariant: every account readable, two observers at different
//     sites agree (assertDataSync), total balance conserved, and each balance
//     equals the isolation oracle's serial-replay final state;
//   - IsolationOracle::Check: the accumulated operation history — spanning
//     every partition, crash, and restart so far — replays serializably.
//
// Failures append a human-readable line (with a CAMELOT_HISTORY dump of the
// offending history) to isolation_soak_failures.txt, under
// CAMELOT_ARTIFACT_DIR when set, so CI uploads them as artifacts.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/harness/bank_workload.h"
#include "src/harness/isolation_oracle.h"
#include "src/harness/nemesis.h"
#include "src/harness/replay.h"
#include "src/harness/world.h"

namespace camelot {
namespace {

std::string ArtifactPath() {
  const char* dir = std::getenv("CAMELOT_ARTIFACT_DIR");
  return (dir != nullptr ? std::string(dir) + "/" : std::string()) + "isolation_soak_failures.txt";
}

// Tight protocol timers (the explorer tuning): chaos rounds resolve in
// seconds of virtual time and stay bit-deterministic.
WorldConfig ChaosWorldConfig(uint64_t seed) {
  WorldConfig w;
  w.site_count = 3;
  w.seed = seed;
  w.net.send_jitter_mean = 0;
  w.net.stall_probability = 0;
  w.net.receive_skew_mean = 0;
  w.tranman.outcome_timeout = Usec(400000);
  w.tranman.retry_interval = Usec(300000);
  w.tranman.takeover_backoff = Usec(300000);
  w.tranman.orphan_check_interval = Sec(1.0);
  w.ipc.rpc_timeout = Sec(1.5);
  w.server.lock_wait_timeout = Sec(1.0);
  return w;
}

void ReportRoundFailure(const std::string& label, const std::vector<std::string>& violations,
                        const World& world, const HistoryRecorder& history) {
  std::string text = label + " violated the bank/isolation gate:\n";
  for (const std::string& v : violations) {
    text += "  - " + v + "\n";
  }
  auto dumped = DumpHistoryArtifact(history, label);
  if (dumped.ok()) {
    text += "  history: CAMELOT_HISTORY='" + *dumped + "'";
  }
  ADD_FAILURE() << text;
  if (std::FILE* artifact = std::fopen(ArtifactPath().c_str(), "a")) {
    std::fprintf(artifact, "%s\n", text.c_str());
    std::fclose(artifact);
  }
  (void)world;
}

struct Variant {
  const char* name;
  CommitOptions options;
};

const Variant kVariants[] = {
    {"2pc", CommitOptions::Optimized()},
    {"2pc-unopt", CommitOptions::Unoptimized()},
    {"2pc-int", CommitOptions::Intermediate()},
    {"nbc", CommitOptions::NonBlocking()},
    {"paxos", CommitOptions::Paxos(1)},
};

TEST(IsolationSoak, BankWorkloadUnderChaosAllVariants) {
  constexpr int kSeeds = 3;
  constexpr int kRounds = 6;
  int rounds_run = 0;
  for (const Variant& variant : kVariants) {
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      World world(ChaosWorldConfig(seed * 131 + 7));
      world.history().set_enabled(true);
      BankWorkloadConfig bank;
      bank.options = variant.options;
      bank.rng_seed = seed;
      SetupBank(world, bank);
      Nemesis nemesis(world.sched(), world.net(), &world.failpoints());

      for (int round = 0; round < kRounds; ++round) {
        const std::string label = std::string("isolation-soak-") + variant.name + "-s" +
                                  std::to_string(seed) + "-r" + std::to_string(round);
        BankWorkloadStats stats;
        SpawnBankClients(world, bank, &stats);
        if (round % 2 == 0) {
          // Partition round: isolate the clients' site 0 from the majority
          // mid-workload, heal 3 virtual seconds later.
          auto script = NemesisScript::Parse("@1000000=partition:0|1,2;+3000000=heal");
          ASSERT_TRUE(script.ok()) << script.status().message();
          ASSERT_TRUE(nemesis.Install(*script).ok());
          world.RunFor(Sec(8));
        } else {
          // Crash round: take a vault-owning site down mid-workload, bring it
          // back through full media recovery.
          const int victim = 1 + (round / 2) % 2;  // Rounds alternate the victim.
          world.RunFor(Sec(1));
          world.Crash(victim);
          world.RunFor(Sec(2));
          world.Restart(victim);
          world.RunFor(Sec(5));
        }
        nemesis.HealAll();
        for (int i = 0; i < world.site_count(); ++i) {
          if (!world.site(i).site().up()) {
            world.Restart(i);
          }
        }
        world.RunFor(Sec(3));

        // Drain, bounded: a livelocked round fails loudly instead of hanging.
        constexpr size_t kMaxEvents = 2u * 1000 * 1000;
        std::vector<std::string> violations;
        if (world.sched().RunUntilIdle(kMaxEvents) >= kMaxEvents) {
          violations.push_back("round did not quiesce within " + std::to_string(kMaxEvents) +
                               " events");
        }
        if (stats.finished_clients != bank.clients) {
          violations.push_back("only " + std::to_string(stats.finished_clients) + "/" +
                               std::to_string(bank.clients) + " clients finished");
        }

        IsolationReport report = IsolationOracle::Check(world.history().events());
        if (stats.committed == 0) {
          violations.push_back("no transfer committed this round (chaos ate the workload)");
        }
        std::vector<std::string> audit = AuditBankInvariant(world, bank, &report);
        violations.insert(violations.end(), audit.begin(), audit.end());
        for (const IsolationAnomaly& a : report.anomalies) {
          violations.push_back("isolation: " + a.ToString());
        }
        if (!violations.empty()) {
          ReportRoundFailure(label, violations, world, world.history());
        }
        ++rounds_run;
      }
    }
  }
  std::printf("isolation soak: %d chaos rounds across %zu variants\n", rounds_run,
              std::size(kVariants));
  EXPECT_EQ(rounds_run, static_cast<int>(std::size(kVariants)) * kSeeds * kRounds);
}

}  // namespace
}  // namespace camelot
