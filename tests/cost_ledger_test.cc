#include "src/stats/cost_ledger.h"

#include <string>

#include <gtest/gtest.h>

#include "src/base/types.h"

namespace camelot {
namespace {

CostEvent Event(uint32_t site, const std::string& role, const std::string& phase,
                CostPrimitive primitive, uint64_t family_seq = 1) {
  return CostEvent{FamilyId{SiteId{0}, family_seq}, SiteId{site}, role, phase, primitive};
}

TEST(CostLedgerTest, KeyUsesRolePhaseAndPrimitiveSuffix) {
  EXPECT_EQ(CostLedger::Key(Event(0, "coord", "2pc.commit", CostPrimitive::kLogForce)),
            "coord/2pc.commit/force");
  EXPECT_EQ(CostLedger::Key(Event(1, "sub", "COMMIT-ACK", CostPrimitive::kDatagram)),
            "sub/COMMIT-ACK/dgram");
  EXPECT_EQ(CostLedger::Key(Event(0, "ipc", "tranman", CostPrimitive::kLocalIpc)),
            "ipc/tranman/call");
  EXPECT_EQ(CostLedger::Key(Event(0, "ipc", "server", CostPrimitive::kLocalIpcServer)),
            "ipc/server/server_call");
  EXPECT_EQ(CostLedger::Key(Event(0, "ipc", "server", CostPrimitive::kLocalOutOfLine)),
            "ipc/server/oob");
  EXPECT_EQ(CostLedger::Key(Event(0, "ipc", "server", CostPrimitive::kLocalOneway)),
            "ipc/server/oneway");
  EXPECT_EQ(CostLedger::Key(Event(0, "ipc", "comman", CostPrimitive::kRemoteRpc)),
            "ipc/comman/rpc");
  EXPECT_EQ(CostLedger::Key(Event(0, "sub", "commit", CostPrimitive::kLogSpool)),
            "sub/commit/spool");
}

TEST(CostLedgerTest, CountsAggregateByKey) {
  CostLedger ledger;
  ledger.Record(Event(0, "coord", "2pc.commit", CostPrimitive::kLogForce));
  ledger.Record(Event(0, "coord", "2pc.commit", CostPrimitive::kLogForce));
  ledger.Record(Event(1, "sub", "prepare", CostPrimitive::kLogForce));
  const CountVector counts = ledger.Counts();
  EXPECT_EQ(counts.at("coord/2pc.commit/force"), 2);
  EXPECT_EQ(counts.at("sub/prepare/force"), 1);
  EXPECT_EQ(counts.size(), 2u);
}

TEST(CostLedgerTest, CountsForFamilyFilters) {
  CostLedger ledger;
  ledger.Record(Event(0, "coord", "2pc.commit", CostPrimitive::kLogForce, /*family_seq=*/1));
  ledger.Record(Event(0, "coord", "2pc.commit", CostPrimitive::kLogForce, /*family_seq=*/2));
  const CountVector counts = ledger.CountsForFamily(FamilyId{SiteId{0}, 1});
  EXPECT_EQ(counts.at("coord/2pc.commit/force"), 1);
}

TEST(CostLedgerTest, ConformanceCountsExcludeNetAndWalShadows) {
  CostLedger ledger;
  ledger.Record(Event(0, "coord", "COMMIT", CostPrimitive::kDatagram));
  ledger.Record(Event(0, "net", "COMMIT", CostPrimitive::kDatagram));
  ledger.Record(Event(0, "wal", "force", CostPrimitive::kLogForce));
  ledger.Record(Event(0, "ipc", "tranman", CostPrimitive::kLocalIpc));
  const CountVector conformance = ledger.ConformanceCounts();
  EXPECT_EQ(conformance.count("net/COMMIT/dgram"), 0u);
  EXPECT_EQ(conformance.count("wal/force/force"), 0u);
  EXPECT_EQ(conformance.at("coord/COMMIT/dgram"), 1);
  EXPECT_EQ(conformance.at("ipc/tranman/call"), 1);
  // Protocol view additionally drops the IPC layer.
  const CountVector protocol = ledger.ProtocolCounts();
  EXPECT_EQ(protocol.count("ipc/tranman/call"), 0u);
  EXPECT_EQ(protocol.at("coord/COMMIT/dgram"), 1);
}

TEST(CostLedgerTest, UnexpectedRolesStayInConformanceDomain) {
  // Takeover activity during a "fault-free" run must surface in a diff, not
  // vanish into an exclusion list.
  CostLedger ledger;
  ledger.Record(Event(2, "takeover", "replicate", CostPrimitive::kLogForce));
  EXPECT_EQ(ledger.ConformanceCounts().at("takeover/replicate/force"), 1);
}

TEST(CostLedgerTest, DiffEmptyIffEqual) {
  CountVector a{{"coord/commit/force", 1}, {"sub/prepare/force", 2}};
  CountVector b = a;
  EXPECT_EQ(CostLedger::Diff(a, b), "");
  b["sub/prepare/force"] = 3;
  const std::string diff = CostLedger::Diff(a, b);
  EXPECT_NE(diff.find("sub/prepare/force"), std::string::npos);
  EXPECT_NE(diff.find("predicted 2"), std::string::npos);
  EXPECT_NE(diff.find("measured 3"), std::string::npos);
  EXPECT_NE(diff.find("(+1)"), std::string::npos);
  // Keys only on one side appear too, with a signed delta.
  CountVector missing{{"coord/commit/force", 1}};
  const std::string missing_diff = CostLedger::Diff(a, missing);
  EXPECT_NE(missing_diff.find("sub/prepare/force"), std::string::npos);
  EXPECT_NE(missing_diff.find("(-2)"), std::string::npos);
}

TEST(CostLedgerTest, AddCountsMerges) {
  CountVector into{{"a/b/force", 1}};
  AddCounts(into, CountVector{{"a/b/force", 2}, {"c/d/dgram", 1}});
  EXPECT_EQ(into.at("a/b/force"), 3);
  EXPECT_EQ(into.at("c/d/dgram"), 1);
}

TEST(CostLedgerTest, RenderListsEveryEntry) {
  const std::string rendered =
      CostLedger::Render(CountVector{{"a/b/force", 1}, {"c/d/dgram", 2}});
  EXPECT_NE(rendered.find("a/b/force"), std::string::npos);
  EXPECT_NE(rendered.find("c/d/dgram"), std::string::npos);
}

TEST(CostLedgerTest, DefaultRecorderIsInert) {
  const CostRecorder recorder;
  EXPECT_FALSE(recorder.active());
  // Must not crash.
  recorder.Record(FamilyId{}, "coord", "commit", CostPrimitive::kLogForce);
}

TEST(CostLedgerTest, RecorderTagsSite) {
  CostLedger ledger;
  const CostRecorder recorder(&ledger, SiteId{7});
  EXPECT_TRUE(recorder.active());
  recorder.Record(FamilyId{}, "coord", "commit", CostPrimitive::kLogForce);
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger.events()[0].site, SiteId{7});
}

}  // namespace
}  // namespace camelot
