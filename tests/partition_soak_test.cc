// Partition-schedule soak (ctest label: soak): multi-seed exhaustive
// single-partition sweeps plus seeded random multi-fault nemesis scripts
// (partition churn, loss/dup/reorder bursts, congestion storms) under both
// two-phase, non-blocking, and Paxos commit protocols. Failing scripts are appended to
// partition_soak_failures.txt (override the directory with
// CAMELOT_ARTIFACT_DIR) so CI can upload them as an artifact; each line is a
// ready-to-run replay recipe for partition_schedule_test's
// ReplaysNemesisFromEnvironment.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/harness/partition_explorer.h"
#include "src/tranman/local_api.h"

namespace camelot {
namespace {

std::string ArtifactPath() {
  const char* dir = std::getenv("CAMELOT_ARTIFACT_DIR");
  return (dir != nullptr ? std::string(dir) + "/" : std::string()) + "partition_soak_failures.txt";
}

void ReportFailures(const std::vector<PartitionSweepFailure>& failures) {
  if (failures.empty()) {
    return;
  }
  std::FILE* artifact = std::fopen(ArtifactPath().c_str(), "a");
  for (const PartitionSweepFailure& f : failures) {
    ADD_FAILURE() << f.label << " (" << f.script.ToString() << ") violated the oracle:\n"
                  << f.result.Explain() << "  replay: " << f.result.replay;
    if (artifact != nullptr) {
      std::fprintf(artifact, "%s\n", f.result.replay.c_str());
    }
  }
  if (artifact != nullptr) {
    std::fclose(artifact);
  }
}

TEST(PartitionSoak, ExhaustiveSweepAcrossSeeds) {
  int total_runs = 0;
  for (uint64_t seed = 1; seed <= 27; ++seed) {
    for (const CommitOptions& options :
         {CommitOptions::Optimized(), CommitOptions::NonBlocking(), CommitOptions::Paxos(1)}) {
      PartitionExplorerConfig cfg;
      cfg.seed = seed;
      cfg.variant = options;
      cfg.transfers = 6;
      int runs = 0;
      ReportFailures(PartitionExplorer(cfg).ExhaustiveSinglePartitionSweep(&runs));
      total_runs += runs;
    }
  }
  std::printf("partition soak: %d exhaustive single-partition runs\n", total_runs);
  EXPECT_GE(total_runs, 1280);
}

// One exhaustive sweep each for the intermediate commit variants (shared 2PC
// machinery, different force/ack discipline) — see crash_soak_test.cc.
TEST(PartitionSoak, ExhaustiveSweepIntermediateVariants) {
  int total_runs = 0;
  for (const CommitOptions& options :
       {CommitOptions::Unoptimized(), CommitOptions::Intermediate()}) {
    PartitionExplorerConfig cfg;
    cfg.variant = options;
    cfg.transfers = 6;
    int runs = 0;
    ReportFailures(PartitionExplorer(cfg).ExhaustiveSinglePartitionSweep(&runs));
    total_runs += runs;
  }
  std::printf("partition soak: %d intermediate-variant runs\n", total_runs);
  EXPECT_GE(total_runs, 32);
}

TEST(PartitionSoak, RandomMultiFaultNemesisScripts) {
  int total_runs = 0;
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    for (const CommitOptions& options :
         {CommitOptions::Optimized(), CommitOptions::NonBlocking(), CommitOptions::Paxos(1)}) {
      PartitionExplorerConfig cfg;
      cfg.seed = seed;
      cfg.variant = options;
      int runs = 0;
      ReportFailures(
          PartitionExplorer(cfg).RandomNemesisSweep(/*rng_seed=*/seed * 6271, /*rounds=*/90, &runs));
      total_runs += runs;
    }
  }
  std::printf("partition soak: %d random nemesis runs\n", total_runs);
  EXPECT_GE(total_runs, 4000);
}

}  // namespace
}  // namespace camelot
