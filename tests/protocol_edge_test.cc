// Protocol edge cases: simultaneous takeover coordinators, quorum widening to
// passive (read-only) acceptors, abort diffusion under incomplete knowledge,
// group-commit batch windows, and wire-format fuzzing.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "src/harness/world.h"

namespace camelot {
namespace {

WorldConfig Quiet(int sites, uint64_t seed = 1) {
  WorldConfig cfg;
  cfg.site_count = sites;
  cfg.seed = seed;
  cfg.net.send_jitter_mean = 0;
  cfg.net.stall_probability = 0;
  cfg.net.receive_skew_mean = 0;
  cfg.tranman.outcome_timeout = Usec(400000);
  cfg.tranman.retry_interval = Usec(300000);
  cfg.tranman.takeover_backoff = Usec(300000);
  return cfg;
}

std::string Srv(int i) { return "server:" + std::to_string(i); }

struct Rig {
  explicit Rig(WorldConfig cfg) : world(cfg), app(world.site(0)) {
    for (int i = 0; i < world.site_count(); ++i) {
      world.AddServer(i, Srv(i))->CreateObjectForSetup("x", EncodeInt64(0));
    }
  }
  int64_t Read(int site, int from) {
    AppClient client(world.site(from));
    auto v = world.RunSync([](AppClient& a, std::string s) -> Async<int64_t> {
      auto b = co_await a.Begin();
      auto value = co_await a.ReadInt(*b, s, "x");
      co_await a.Commit(*b);
      co_return value.value_or(-1);
    }(client, Srv(site)));
    return v.value_or(-1);
  }
  World world;
  AppClient app;
};

size_t DurableCount(World& world, int site, LogRecordKind kind) {
  size_t n = 0;
  for (const auto& rec : world.site(site).log().ReadDurable()) {
    if (rec.kind == kind) {
      ++n;
    }
  }
  return n;
}

TEST(ProtocolEdgeTest, SimultaneousTakeoverCoordinatorsConverge) {
  // With identical deterministic timeouts, BOTH subordinates become
  // coordinators in the same instant after the real coordinator dies. The
  // epoch scheme ((round << 8) | site) keeps their proposals ordered; exactly
  // one outcome results ("Having several simultaneous coordinators is
  // possible, but is not a problem").
  Rig rig(Quiet(3));
  auto watcher = std::make_shared<std::function<void()>>();
  *watcher = [&rig, watcher] {
    if (DurableCount(rig.world, 1, LogRecordKind::kReplication) > 0 &&
        DurableCount(rig.world, 2, LogRecordKind::kReplication) > 0) {
      rig.world.net().SetPartition({{SiteId{0}}, {SiteId{1}, SiteId{2}}});
      rig.world.Crash(0);
      return;
    }
    rig.world.sched().Post(Usec(200), *watcher);
  };
  rig.world.sched().Post(Usec(200), *watcher);
  rig.world.sched().Spawn([](Rig& r) -> Async<void> {
    auto b = co_await r.app.Begin();
    for (int i = 0; i < 3; ++i) {
      co_await r.app.WriteInt(*b, Srv(i), "x", 42);
    }
    co_await r.app.Commit(*b, CommitOptions::NonBlocking());
  }(rig));
  rig.world.RunUntilIdle();

  // Both subordinates took over (same timeout instant) and both committed.
  EXPECT_GE(rig.world.site(1).tranman().counters().takeovers, 1u);
  EXPECT_GE(rig.world.site(2).tranman().counters().takeovers, 1u);
  EXPECT_EQ(rig.Read(1, 1), 42);
  EXPECT_EQ(rig.Read(2, 2), 42);
  const FamilyId family{SiteId{0}, 1};
  EXPECT_EQ(rig.world.site(1).tranman().QueryState(family), TmTxnState::kCommitted);
  EXPECT_EQ(rig.world.site(2).tranman().QueryState(family), TmTxnState::kCommitted);
}

TEST(ProtocolEdgeTest, ReadOnlyPassiveAcceptorsFillTheCommitQuorum) {
  // 4 participants (coordinator + 3 subs), only ONE update subordinate:
  // commit quorum = 3 but update acceptors = coordinator + 1 sub = 2. The
  // replication phase must widen to the read-only passive acceptors ("often
  // need not participate in the replication phase" — here they must).
  Rig rig(Quiet(4));
  auto status = rig.world.RunSync([](Rig& r) -> Async<Status> {
    auto b = co_await r.app.Begin();
    co_await r.app.WriteInt(*b, Srv(0), "x", 9);  // Coordinator updates.
    co_await r.app.WriteInt(*b, Srv(1), "x", 9);  // One update subordinate.
    (void)co_await r.app.ReadInt(*b, Srv(2), "x");  // Two read-only subs.
    (void)co_await r.app.ReadInt(*b, Srv(3), "x");
    Status st = co_await r.app.Commit(*b, CommitOptions::NonBlocking());
    co_return st;
  }(rig));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->ToString();
  // At least one read-only site holds a replication record: it was drafted
  // into the quorum as a passive acceptor.
  const size_t readonly_replications = DurableCount(rig.world, 2, LogRecordKind::kReplication) +
                                       DurableCount(rig.world, 3, LogRecordKind::kReplication);
  EXPECT_GE(readonly_replications, 1u);
  // But they never wrote prepare or update records (read-only optimization).
  EXPECT_EQ(DurableCount(rig.world, 2, LogRecordKind::kPrepare), 0u);
  EXPECT_EQ(DurableCount(rig.world, 2, LogRecordKind::kUpdate), 0u);
  EXPECT_EQ(rig.Read(1, 0), 9);
  // The notify phase reached the passive acceptors: outcome tombstones, no
  // lingering live state anywhere.
  const FamilyId family{SiteId{0}, 1};
  EXPECT_EQ(rig.world.site(2).tranman().QueryState(family), TmTxnState::kCommitted);
  EXPECT_EQ(rig.world.site(3).tranman().QueryState(family), TmTxnState::kCommitted);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.world.site(i).tranman().live_family_count(), 0u) << "site " << i;
  }
}

TEST(ProtocolEdgeTest, AbortDiffusionReachesSitesTheAborterDoesNotKnow) {
  // The abort protocol "can operate with incomplete knowledge about which
  // sites are involved": the coordinator only knows site 1; site 1 knows the
  // family also touched site 2 and must forward the abort there.
  Rig rig(Quiet(3));
  auto outcome = rig.world.RunSync([](Rig& r) -> Async<Status> {
    auto b = co_await r.app.Begin();
    co_await r.app.WriteInt(*b, Srv(1), "x", 77);
    co_await r.app.WriteInt(*b, Srv(2), "x", 77);
    // Simulate partial knowledge: the coordinator's ComMan forgets site 2
    // (e.g. the response carrying it was never merged); site 1 knows it.
    r.world.site(0).comman().Forget(b->family);
    r.world.site(0).comman().NoteSite(b->family, SiteId{1});
    r.world.site(1).comman().NoteSite(b->family, SiteId{2});
    Status st = co_await r.app.Abort(*b);
    co_return st;
  }(rig));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok());
  rig.world.RunUntilIdle();
  // Site 2 learned of the abort only through site 1's diffusion.
  EXPECT_EQ(rig.Read(2, 0), 0);
  EXPECT_EQ(rig.world.site(2).server(Srv(2))->locks().held_lock_count(), 0u);
  EXPECT_EQ(rig.world.site(2).tranman().live_family_count(), 0u);
}

TEST(ProtocolEdgeTest, BatchWindowCoalescesNearbyForces) {
  Scheduler sched;
  LogConfig cfg;
  cfg.group_commit = true;
  cfg.batch_window = Usec(5000);  // Helland-style group commit timer.
  StableLog log(sched, cfg);
  const Tid tid{FamilyId{SiteId{0}, 1}, 0, 0};
  int done = 0;
  auto force_at = [&](SimDuration at) {
    sched.Post(at, [&] {
      sched.Spawn([](StableLog& l, int* d) -> Async<void> {
        const Lsn lsn = l.Append(LogRecord::Abort(Tid{FamilyId{SiteId{0}, 1}, 0, 0}));
        co_await l.Force(lsn);
        ++*d;
      }(log, &done));
    });
  };
  (void)tid;
  force_at(0);
  force_at(Usec(2000));  // Arrives inside the 5 ms window: same write.
  force_at(Usec(4000));
  sched.RunUntilIdle();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(log.counters().disk_writes, 1u);
  EXPECT_EQ(log.counters().records_batched, 2u);
}

TEST(ProtocolEdgeTest, CommitAcksPiggybackOnLaterTraffic) {
  // "Camelot batches only those messages that are not in the critical path":
  // in a pipelined stream of distributed updates, each commit-ack should ride
  // the next transaction's protocol traffic instead of its own datagram.
  auto run = [](SimDuration piggyback_delay) {
    WorldConfig cfg = Quiet(2);
    cfg.tranman.piggyback_delay = piggyback_delay;
    Rig rig(cfg);
    auto ok = rig.world.RunSync([](Rig* r) -> Async<int> {
      int committed = 0;
      for (int i = 0; i < 10; ++i) {
        auto b = co_await r->app.Begin();
        co_await r->app.WriteInt(*b, Srv(0), "x", i);
        co_await r->app.WriteInt(*b, Srv(1), "x", i);
        Status st = co_await r->app.Commit(*b);
        if (st.ok()) {
          ++committed;
        }
      }
      co_return committed;
    }(&rig));
    EXPECT_EQ(ok.value_or(0), 10);
    return std::make_pair(rig.world.net().counters().datagrams_sent,
                          rig.world.site(1).tranman().counters().messages_piggybacked);
  };
  // The window must outlast the ~100 ms inter-transaction gap so the ack can
  // catch the NEXT transaction's vote.
  auto [with_piggyback, piggybacked] = run(Usec(300000));
  auto [without_piggyback, none] = run(0);
  EXPECT_EQ(none, 0u);
  EXPECT_GT(piggybacked, 0u);  // Acks actually rode other datagrams.
  EXPECT_LT(with_piggyback, without_piggyback);  // Fewer datagrams total.
}

TEST(ProtocolEdgeTest, WireFormatsSurviveRandomBytes) {
  Rng rng(2026);
  int tm_decoded = 0;
  int log_decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.NextBounded(120));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.Next());
    }
    if (TmMsg::Decode(junk).ok()) {
      ++tm_decoded;
    }
    if (LogRecord::Decode(junk).ok()) {
      ++log_decoded;
    }
  }
  // No crash is the property; accidental decodes must be extremely rare.
  EXPECT_LE(tm_decoded, 2);
  EXPECT_LE(log_decoded, 2);
}

TEST(ProtocolEdgeTest, BitFlippedMessagesNeverMisparseSilently) {
  // A single bit flip either still decodes to the same field layout (benign)
  // or is rejected; it must never crash. (Checksums guard the LOG; datagrams
  // rely on structural validation.)
  TmMsg msg;
  msg.type = TmMsgType::kPrepare;
  msg.tid = Tid{FamilyId{SiteId{2}, 9}, 1, 0};
  msg.sites = {SiteId{0}, SiteId{1}, SiteId{2}};
  msg.commit_quorum = 2;
  msg.abort_quorum = 2;
  const Bytes wire = msg.Encode();
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; bit += 3) {
      Bytes mutated = wire;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      auto decoded = TmMsg::Decode(mutated);  // Must not crash.
      (void)decoded;
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace camelot
