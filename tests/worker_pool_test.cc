// Tests for the TranMan worker pool (Section 3.4's thread model) and the
// protocol-message codec.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/scheduler.h"
#include "src/tranman/messages.h"
#include "src/tranman/worker_pool.h"

namespace camelot {
namespace {

TEST(WorkerPoolTest, SingleWorkerSerializesEvents) {
  Scheduler sched;
  WorkerPool pool(sched, 1);
  std::vector<SimTime> finish_times;
  for (int i = 0; i < 3; ++i) {
    sched.Spawn([](Scheduler& s, WorkerPool& p, std::vector<SimTime>* out) -> Async<void> {
      co_await p.Run(Msec(10));
      out->push_back(s.now());
    }(sched, pool, &finish_times));
  }
  sched.RunUntilIdle();
  ASSERT_EQ(finish_times.size(), 3u);
  EXPECT_EQ(finish_times[0], Msec(10));
  EXPECT_EQ(finish_times[1], Msec(20));
  EXPECT_EQ(finish_times[2], Msec(30));
  EXPECT_EQ(pool.queued_events(), 2u);
}

TEST(WorkerPoolTest, ManyWorkersRunInParallel) {
  Scheduler sched;
  WorkerPool pool(sched, 4);
  std::vector<SimTime> finish_times;
  for (int i = 0; i < 4; ++i) {
    sched.Spawn([](Scheduler& s, WorkerPool& p, std::vector<SimTime>* out) -> Async<void> {
      co_await p.Run(Msec(10));
      out->push_back(s.now());
    }(sched, pool, &finish_times));
  }
  sched.RunUntilIdle();
  for (SimTime t : finish_times) {
    EXPECT_EQ(t, Msec(10));
  }
  EXPECT_EQ(pool.queued_events(), 0u);
}

TEST(WorkerPoolTest, FifoAdmission) {
  Scheduler sched;
  WorkerPool pool(sched, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.Spawn([](WorkerPool& p, std::vector<int>* out, int id) -> Async<void> {
      co_await p.Run(Msec(1));
      out->push_back(id);
    }(pool, &order, i));
  }
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WorkerPoolTest, AcquireHoldsThroughExternalWait) {
  // The log-force case: a worker stays occupied while its holder awaits
  // something slower than CPU.
  Scheduler sched;
  WorkerPool pool(sched, 1);
  SimTime second_started = 0;
  sched.Spawn([](Scheduler& s, WorkerPool& p) -> Async<void> {
    co_await p.Acquire();
    co_await s.Delay(Msec(40));  // "Log force" while holding the worker.
    p.Release();
  }(sched, pool));
  sched.Spawn([](Scheduler& s, WorkerPool& p, SimTime* started) -> Async<void> {
    co_await s.Delay(Msec(1));
    co_await p.Run(Msec(1));
    *started = s.now();
  }(sched, pool, &second_started));
  sched.RunUntilIdle();
  EXPECT_EQ(second_started, Msec(41));  // Waited out the full force.
}

TEST(WorkerPoolTest, ZeroCpuEventStillCountsAndQueues) {
  Scheduler sched;
  WorkerPool pool(sched, 1);
  sched.Spawn([](WorkerPool& p) -> Async<void> { co_await p.Run(0); }(pool));
  sched.RunUntilIdle();
  EXPECT_EQ(pool.events(), 1u);
  EXPECT_EQ(pool.available(), 1u);
}

TEST(TmMsgTest, FullRoundTrip) {
  TmMsg msg;
  msg.type = TmMsgType::kPrepare;
  msg.tid = Tid{FamilyId{SiteId{3}, 77}, 2, 1};
  msg.from = SiteId{3};
  msg.protocol = CommitProtocol::kNonBlocking;
  msg.force_subordinate_commit = true;
  msg.piggyback_commit_ack = true;
  msg.sites = {SiteId{0}, SiteId{1}, SiteId{2}};
  msg.commit_quorum = 2;
  msg.abort_quorum = 2;
  msg.vote = TmVote::kReadOnly;
  msg.epoch = 0x20105;
  msg.decision = TmDecision::kCommit;
  msg.state = TmTxnState::kPrepared;
  msg.has_replication = true;
  msg.replicated_epoch = 0x105;
  msg.replicated_decision = TmDecision::kCommit;

  auto decoded = TmMsg::Decode(msg.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->tid, msg.tid);
  EXPECT_EQ(decoded->from, msg.from);
  EXPECT_EQ(decoded->protocol, msg.protocol);
  EXPECT_EQ(decoded->force_subordinate_commit, msg.force_subordinate_commit);
  EXPECT_EQ(decoded->piggyback_commit_ack, msg.piggyback_commit_ack);
  EXPECT_EQ(decoded->sites, msg.sites);
  EXPECT_EQ(decoded->commit_quorum, msg.commit_quorum);
  EXPECT_EQ(decoded->vote, msg.vote);
  EXPECT_EQ(decoded->epoch, msg.epoch);
  EXPECT_EQ(decoded->decision, msg.decision);
  EXPECT_EQ(decoded->state, msg.state);
  EXPECT_EQ(decoded->has_replication, msg.has_replication);
  EXPECT_EQ(decoded->replicated_epoch, msg.replicated_epoch);
  EXPECT_EQ(decoded->replicated_decision, msg.replicated_decision);
}

TEST(TmMsgTest, TruncatedWireFailsCleanly) {
  TmMsg msg;
  msg.type = TmMsgType::kVote;
  msg.tid = Tid{FamilyId{SiteId{1}, 2}, 0, 0};
  Bytes wire = msg.Encode();
  for (size_t cut = 1; cut < wire.size(); cut += 3) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(TmMsg::Decode(truncated).ok()) << "cut=" << cut;
  }
}

TEST(TmMsgTest, TrailingGarbageRejected) {
  TmMsg msg;
  msg.type = TmMsgType::kCommit;
  Bytes wire = msg.Encode();
  wire.push_back(0xff);
  EXPECT_FALSE(TmMsg::Decode(wire).ok());
}

TEST(TmMsgTest, AllTypesHaveNames) {
  for (uint8_t t = 1; t <= 10; ++t) {
    EXPECT_STRNE(TmMsgTypeName(static_cast<TmMsgType>(t)), "UNKNOWN") << static_cast<int>(t);
  }
}

// --- Bounded admission (overload robustness) ----------------------------------

Async<void> AdmitOne(WorkerPool& pool, SimDuration cpu, SimTime deadline,
                     std::vector<Admission>* outcomes) {
  Admission a = co_await pool.Admit(cpu, deadline);
  outcomes->push_back(a);
}

TEST(WorkerPoolTest, AdmissionQueueBoundFastRejects) {
  Scheduler sched;
  WorkerPool pool(sched, 1);
  pool.set_admission_limit(2);
  std::vector<Admission> outcomes;
  // 1 running + 2 queued fill the pool; the 4th and 5th must be rejected
  // without ever occupying a worker.
  for (int i = 0; i < 5; ++i) {
    sched.Spawn(AdmitOne(pool, Msec(10), 0, &outcomes));
  }
  sched.RunUntilIdle();
  ASSERT_EQ(outcomes.size(), 5u);
  int ran = 0;
  int rejected = 0;
  for (Admission a : outcomes) {
    ran += a == Admission::kRun;
    rejected += a == Admission::kRejected;
  }
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(pool.shed_rejected(), 2u);
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(WorkerPoolTest, ExpiredDeadlineShedBeforeOccupyingWorker) {
  Scheduler sched;
  WorkerPool pool(sched, 1);
  std::vector<Admission> outcomes;
  // First event holds the only worker for 50ms; the second's deadline passes
  // at 20ms while it is queued — it must be shed at grant time, unrun.
  sched.Spawn(AdmitOne(pool, Msec(50), 0, &outcomes));
  sched.Spawn(AdmitOne(pool, Msec(10), Msec(20), &outcomes));
  // Arriving already-expired: shed immediately, never queued.
  sched.Spawn([](Scheduler& s, WorkerPool& p, std::vector<Admission>* out) -> Async<void> {
    co_await s.Delay(Msec(60));
    co_await AdmitOne(p, Msec(10), Msec(30), out);
  }(sched, pool, &outcomes));
  sched.RunUntilIdle();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(pool.shed_expired(), 2u);
  int expired = 0;
  for (Admission a : outcomes) {
    expired += a == Admission::kExpired;
  }
  EXPECT_EQ(expired, 2);
}

TEST(WorkerPoolTest, LifoPolicyRunsNewestFirst) {
  Scheduler sched;
  WorkerPool pool(sched, 1);
  pool.set_admission_policy(AdmissionPolicy::kLifo);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sched.Spawn([](WorkerPool& p, std::vector<int>* out, int id) -> Async<void> {
      if (co_await p.Admit(Msec(10)) == Admission::kRun) {
        out->push_back(id);
      }
    }(pool, &order, i));
  }
  sched.RunUntilIdle();
  // 0 grabs the worker; 1..3 queue; LIFO grants 3, 2, 1.
  EXPECT_EQ(order, (std::vector<int>{0, 3, 2, 1}));
}

TEST(WorkerPoolTest, DeadlineDropEvictsTightestQueuedEntry) {
  Scheduler sched;
  WorkerPool pool(sched, 1);
  pool.set_admission_limit(2);
  pool.set_admission_policy(AdmissionPolicy::kDeadlineDrop);
  std::vector<Admission> outcomes;
  std::vector<Admission> victim;
  sched.Spawn(AdmitOne(pool, Msec(50), 0, &outcomes));           // Occupies the worker.
  sched.Spawn(AdmitOne(pool, Msec(10), Msec(30), &victim));      // Queued, tight deadline.
  sched.Spawn(AdmitOne(pool, Msec(10), Msec(500), &outcomes));   // Queued, slack.
  sched.Spawn(AdmitOne(pool, Msec(10), Msec(400), &outcomes));   // Full: evicts the 30ms entry.
  sched.RunUntilIdle();
  ASSERT_EQ(victim.size(), 1u);
  EXPECT_EQ(victim[0], Admission::kRejected);
  for (Admission a : outcomes) {
    EXPECT_EQ(a, Admission::kRun);
  }
  // A newcomer with LESS slack than everyone queued is itself rejected.
  EXPECT_EQ(pool.shed_rejected(), 1u);
}

TEST(WorkerPoolTest, ResizeWithQueuedEventsDispatchesAndShrinksLazily) {
  Scheduler sched;
  WorkerPool pool(sched, 1);
  std::vector<SimTime> finish;
  for (int i = 0; i < 4; ++i) {
    sched.Spawn([](Scheduler& s, WorkerPool& p, std::vector<SimTime>* out) -> Async<void> {
      co_await p.Run(Msec(10));
      out->push_back(s.now());
    }(sched, pool, &finish));
  }
  // Grow while three are queued: the backlog dispatches immediately.
  sched.Spawn([](Scheduler& s, WorkerPool& p) -> Async<void> {
    co_await s.Delay(Msec(1));
    p.Resize(4);
  }(sched, pool));
  sched.RunUntilIdle();
  ASSERT_EQ(finish.size(), 4u);
  EXPECT_EQ(finish[0], Msec(10));
  for (size_t i = 1; i < finish.size(); ++i) {
    EXPECT_EQ(finish[i], Msec(11));  // Dispatched at the resize, 10ms later done.
  }
  // Shrink with work in flight: takes effect as workers release.
  pool.Resize(1);
  std::vector<SimTime> second;
  for (int i = 0; i < 2; ++i) {
    sched.Spawn([](Scheduler& s, WorkerPool& p, std::vector<SimTime>* out) -> Async<void> {
      co_await p.Run(Msec(10));
      out->push_back(s.now());
    }(sched, pool, &second));
  }
  sched.RunUntilIdle();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[1] - second[0], Msec(10));  // Serialized: one worker again.
}

TEST(WorkerPoolTest, QueueHealthInstrumentation) {
  Scheduler sched;
  WorkerPool pool(sched, 1);
  std::vector<Admission> outcomes;
  for (int i = 0; i < 3; ++i) {
    sched.Spawn(AdmitOne(pool, Msec(10), 0, &outcomes));
  }
  sched.RunUntilIdle();
  EXPECT_EQ(pool.depth_high_watermark(), 2u);
  EXPECT_EQ(pool.queued_time_us().count(), 2u);
  EXPECT_EQ(pool.queued_time_us().max(), 20000.0);  // Last in line waited 2 bursts.
  EXPECT_GT(pool.queue_depth().mean(), 0.0);
  pool.ResetQueueStats();
  EXPECT_EQ(pool.depth_high_watermark(), 0u);
  EXPECT_EQ(pool.queued_time_us().count(), 0u);
}

}  // namespace
}  // namespace camelot
