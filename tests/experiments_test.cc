// Guard tests for the experiment drivers and the paper's headline shapes.
// These protect the Figure 2-5 calibration from regressions: if a change to
// the protocols or the cost model breaks an ordering the paper reports, these
// fail before anyone re-reads the bench output. (Short durations/rep counts:
// shapes, not precision.)
#include <gtest/gtest.h>

#include "src/harness/experiments.h"

namespace camelot {
namespace {

LatencyResult Latency(int subs, TxnKind kind, CommitOptions options, int reps = 60) {
  LatencyConfig cfg;
  cfg.subordinates = subs;
  cfg.kind = kind;
  cfg.options = options;
  cfg.repetitions = reps;
  return RunLatencyExperiment(cfg);
}

double Tput(int pairs, TxnKind kind, size_t threads, bool gc) {
  ThroughputConfig cfg;
  cfg.pairs = pairs;
  cfg.kind = kind;
  cfg.tranman_threads = threads;
  cfg.group_commit = gc;
  cfg.duration = Sec(30);
  return RunThroughputExperiment(cfg).tps;
}

TEST(ExperimentShapeTest, Figure2VariantOrdering) {
  const double opt = Latency(1, TxnKind::kWrite, CommitOptions::Optimized()).total_ms.mean();
  const double semi =
      Latency(1, TxnKind::kWrite, CommitOptions::Intermediate()).total_ms.mean();
  const double unopt =
      Latency(1, TxnKind::kWrite, CommitOptions::Unoptimized()).total_ms.mean();
  const double read = Latency(1, TxnKind::kRead, CommitOptions::Optimized()).total_ms.mean();
  EXPECT_LT(opt, semi + 0.5);   // Optimized <= semi-optimized (allow noise).
  EXPECT_LT(semi, unopt + 0.5); // Semi-optimized <= unoptimized.
  EXPECT_LT(read, opt);         // Reads far below writes.
  EXPECT_LT(opt, unopt);        // Strict end-to-end ordering.
}

TEST(ExperimentShapeTest, Figure2VarianceGrowsWithSubordinates) {
  const double s1 = Latency(1, TxnKind::kWrite, CommitOptions::Optimized()).total_ms.stddev();
  const double s3 = Latency(3, TxnKind::kWrite, CommitOptions::Optimized()).total_ms.stddev();
  EXPECT_GT(s3, s1);
}

TEST(ExperimentShapeTest, Figure3NonBlockingRatioIsUnderTwo) {
  const double nbc = Latency(1, TxnKind::kWrite, CommitOptions::NonBlocking()).total_ms.mean();
  const double two_phase =
      Latency(1, TxnKind::kWrite, CommitOptions::Optimized()).total_ms.mean();
  const double ratio = nbc / two_phase;
  EXPECT_GT(ratio, 1.3);  // Clearly costlier...
  EXPECT_LT(ratio, 2.0);  // ..."somewhat less than twice as high".
}

TEST(ExperimentShapeTest, Figure3ReadsMatchTwoPhase) {
  const double nbc = Latency(2, TxnKind::kRead, CommitOptions::NonBlocking()).total_ms.mean();
  const double two_phase =
      Latency(2, TxnKind::kRead, CommitOptions::Optimized()).total_ms.mean();
  EXPECT_NEAR(nbc, two_phase, two_phase * 0.10);
}

TEST(ExperimentShapeTest, StaticAnalysisUnderestimatesMeasurement) {
  const double measured =
      Latency(1, TxnKind::kWrite, CommitOptions::Optimized()).total_ms.mean();
  const double predicted =
      CompletionPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 1).TotalMs();
  EXPECT_GT(measured, predicted);
}

TEST(ExperimentShapeTest, Figure4OneThreadSaturatesEarly) {
  const double two_pairs = Tput(2, TxnKind::kWrite, 1, false);
  const double four_pairs = Tput(4, TxnKind::kWrite, 1, false);
  // Flat beyond ~2 pairs: less than 25% growth from doubling the load.
  EXPECT_LT(four_pairs, two_pairs * 1.25);
}

TEST(ExperimentShapeTest, Figure4FiveAndTwentyThreadsEquivalent) {
  const double five = Tput(4, TxnKind::kWrite, 5, false);
  const double twenty = Tput(4, TxnKind::kWrite, 20, false);
  EXPECT_NEAR(five, twenty, five * 0.05);
}

TEST(ExperimentShapeTest, Figure4GroupCommitOnTop) {
  const double with_gc = Tput(4, TxnKind::kWrite, 20, true);
  const double without_gc = Tput(4, TxnKind::kWrite, 20, false);
  EXPECT_GT(with_gc, without_gc * 1.05);
}

TEST(ExperimentShapeTest, Figure5ReadsOutrunUpdates) {
  const double reads = Tput(4, TxnKind::kRead, 20, true);
  const double updates = Tput(4, TxnKind::kWrite, 20, true);
  EXPECT_GT(reads, updates * 1.2);
}

TEST(ExperimentShapeTest, Figure5MoreThreadsHelpReads) {
  const double one = Tput(4, TxnKind::kRead, 1, true);
  const double twenty = Tput(4, TxnKind::kRead, 20, true);
  EXPECT_GT(twenty, one * 1.1);
}

TEST(ExperimentShapeTest, MulticastCutsVariance) {
  LatencyConfig cfg;
  cfg.subordinates = 3;
  cfg.kind = TxnKind::kWrite;
  cfg.repetitions = 120;
  cfg.pipelined = false;
  const double unicast = RunLatencyExperiment(cfg).total_ms.stddev();
  cfg.multicast = true;
  const double multicast = RunLatencyExperiment(cfg).total_ms.stddev();
  EXPECT_LT(multicast, unicast);
}

TEST(ExperimentShapeTest, NoFailuresAcrossTheBoard) {
  for (int subs = 0; subs <= 3; ++subs) {
    LatencyResult r = Latency(subs, TxnKind::kWrite, CommitOptions::Optimized(), 30);
    EXPECT_EQ(r.failures, 0) << subs << " subordinates";
    EXPECT_EQ(static_cast<int>(r.total_ms.count()), 30);
  }
}

}  // namespace
}  // namespace camelot
