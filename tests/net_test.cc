// Tests for the LAN model: delivery, latency composition, NIC serialization,
// multicast variance reduction, loss, duplication, partitions, and crashes.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/net/network.h"
#include "src/sim/scheduler.h"
#include "src/stats/summary.h"

namespace camelot {
namespace {

NetConfig DeterministicConfig() {
  NetConfig cfg;
  cfg.send_jitter_mean = 0;
  cfg.stall_probability = 0;  // Zero jitter: latency is exactly cycle + propagation.
  cfg.receive_skew_mean = 0;
  return cfg;
}

struct Rig {
  explicit Rig(NetConfig cfg = DeterministicConfig(), uint64_t seed = 1)
      : sched(seed), net(sched, cfg) {
    for (uint32_t i = 0; i < 4; ++i) {
      net.RegisterSite(SiteId{i});
    }
  }
  Scheduler sched;
  Network net;
};

TEST(NetworkTest, DeliversWithDeterministicLatency) {
  Rig rig;
  std::optional<SimTime> delivered_at;
  rig.net.Bind(SiteId{1}, kTranManService, [&](Datagram dg) {
    EXPECT_EQ(dg.src, SiteId{0});
    EXPECT_EQ(dg.type, 7u);
    delivered_at = rig.sched.now();
  });
  rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 7, {1, 2, 3}});
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(delivered_at.has_value());
  // send_cycle (1.7ms) + propagation (5.54ms), no jitter/stall.
  EXPECT_EQ(*delivered_at, Usec(1700) + Usec(5540));
}

TEST(NetworkTest, NicSerializesBackToBackSends) {
  Rig rig;
  std::vector<SimTime> arrivals;
  for (uint32_t dst = 1; dst <= 3; ++dst) {
    rig.net.Bind(SiteId{dst}, kTranManService,
                 [&](Datagram) { arrivals.push_back(rig.sched.now()); });
  }
  for (uint32_t dst = 1; dst <= 3; ++dst) {
    rig.net.Send(Datagram{SiteId{0}, SiteId{dst}, kTranManService, 0, {}});
  }
  rig.sched.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 3u);
  // Each successive send is delayed a full cycle behind the previous one
  // (the paper: "the third prepare message is sent about 3.4ms after the first").
  EXPECT_EQ(arrivals[1] - arrivals[0], Usec(1700));
  EXPECT_EQ(arrivals[2] - arrivals[0], Usec(3400));
}

TEST(NetworkTest, MulticastSharesOneSerialization) {
  Rig rig;
  std::vector<SimTime> arrivals;
  for (uint32_t dst = 1; dst <= 3; ++dst) {
    rig.net.Bind(SiteId{dst}, kTranManService,
                 [&](Datagram) { arrivals.push_back(rig.sched.now()); });
  }
  rig.net.Multicast(SiteId{0}, {SiteId{1}, SiteId{2}, SiteId{3}}, kTranManService, 0, {});
  rig.sched.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], arrivals[1]);
  EXPECT_EQ(arrivals[1], arrivals[2]);
}

TEST(NetworkTest, MulticastSharesOneBodyBuffer) {
  Rig rig;
  std::vector<const uint8_t*> payloads;
  std::vector<size_t> use_counts;
  for (uint32_t dst = 1; dst <= 3; ++dst) {
    rig.net.Bind(SiteId{dst}, kTranManService, [&](Datagram dg) {
      payloads.push_back(dg.body.bytes().data());
      use_counts.push_back(dg.body.use_count());
    });
  }
  rig.net.Multicast(SiteId{0}, {SiteId{1}, SiteId{2}, SiteId{3}}, kTranManService, 0,
                    {7, 8, 9});
  rig.sched.RunUntilIdle();
  ASSERT_EQ(payloads.size(), 3u);
  // One serialization, one buffer: every delivery aliases the same storage
  // instead of carrying a per-destination copy.
  EXPECT_EQ(payloads[0], payloads[1]);
  EXPECT_EQ(payloads[1], payloads[2]);
  for (size_t uc : use_counts) {
    EXPECT_GE(uc, 1u);
  }
}

TEST(NetworkTest, MulticastReducesFanoutVariance) {
  // The paper's Section 4.2 observation: multicasting from coordinator to
  // subordinates substantially reduces the variance of the slowest arrival.
  auto run = [](bool multicast, uint64_t seed) {
    NetConfig cfg;  // Defaults include jitter.
    Scheduler sched(seed);
    Network net(sched, cfg);
    for (uint32_t i = 0; i < 4; ++i) {
      net.RegisterSite(SiteId{i});
    }
    Summary slowest;
    SimTime rep_start = 0;
    SimTime max_arrival = 0;
    int remaining = 0;
    for (uint32_t dst = 1; dst <= 3; ++dst) {
      net.Bind(SiteId{dst}, kTranManService, [&](Datagram) {
        max_arrival = std::max(max_arrival, sched.now());
        if (--remaining == 0) {
          slowest.Add(ToMs(max_arrival - rep_start));
        }
      });
    }
    std::vector<SiteId> dsts{SiteId{1}, SiteId{2}, SiteId{3}};
    for (int rep = 0; rep < 300; ++rep) {
      rep_start = sched.now();
      max_arrival = 0;
      remaining = 3;
      if (multicast) {
        net.Multicast(SiteId{0}, dsts, kTranManService, 0, {});
      } else {
        for (SiteId d : dsts) {
          net.Send(Datagram{SiteId{0}, d, kTranManService, 0, {}});
        }
      }
      sched.RunUntilIdle();
      // Space out repetitions so NIC state resets.
      sched.RunUntil(sched.now() + Sec(1));
    }
    return slowest;
  };
  Summary unicast = run(false, 42);
  Summary multicast = run(true, 42);
  ASSERT_EQ(unicast.count(), 300u);
  ASSERT_EQ(multicast.count(), 300u);
  // Variance (of the slowest-arrival spread) must drop substantially.
  EXPECT_LT(multicast.stddev(), unicast.stddev() * 0.75);
}

TEST(NetworkTest, LossDropsRoughlyTheConfiguredFraction) {
  NetConfig cfg = DeterministicConfig();
  cfg.loss_probability = 0.3;
  Rig rig(cfg, 9);
  int delivered = 0;
  rig.net.Bind(SiteId{1}, kTranManService, [&](Datagram) { ++delivered; });
  for (int i = 0; i < 1000; ++i) {
    rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});
  }
  rig.sched.RunUntilIdle();
  EXPECT_GT(delivered, 600);
  EXPECT_LT(delivered, 800);
  EXPECT_EQ(rig.net.counters().datagrams_lost + delivered, 1000u);
}

TEST(NetworkTest, DuplicationDeliversTwice) {
  NetConfig cfg = DeterministicConfig();
  cfg.duplicate_probability = 1.0;
  Rig rig(cfg);
  int delivered = 0;
  rig.net.Bind(SiteId{1}, kTranManService, [&](Datagram) { ++delivered; });
  rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});
  rig.sched.RunUntilIdle();
  EXPECT_EQ(delivered, 2);
}

TEST(NetworkTest, PartitionBlocksCrossGroupTraffic) {
  Rig rig;
  int delivered = 0;
  rig.net.Bind(SiteId{1}, kTranManService, [&](Datagram) { ++delivered; });
  rig.net.Bind(SiteId{2}, kTranManService, [&](Datagram) { ++delivered; });

  rig.net.SetPartition({{SiteId{0}, SiteId{2}}, {SiteId{1}}});
  EXPECT_FALSE(rig.net.CanCommunicate(SiteId{0}, SiteId{1}));
  EXPECT_TRUE(rig.net.CanCommunicate(SiteId{0}, SiteId{2}));

  rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});  // Cross-group: dropped.
  rig.net.Send(Datagram{SiteId{0}, SiteId{2}, kTranManService, 0, {}});  // Same group: delivered.
  rig.sched.RunUntilIdle();
  EXPECT_EQ(delivered, 1);

  rig.net.ClearPartition();
  rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});
  rig.sched.RunUntilIdle();
  EXPECT_EQ(delivered, 2);
}

TEST(NetworkTest, PartitionInstalledMidFlightDropsAtDelivery) {
  Rig rig;
  int delivered = 0;
  rig.net.Bind(SiteId{1}, kTranManService, [&](Datagram) { ++delivered; });
  rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});
  // Partition lands while the datagram is on the wire.
  rig.sched.Post(Usec(100), [&] { rig.net.SetPartition({{SiteId{0}}, {SiteId{1}}}); });
  rig.sched.RunUntilIdle();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rig.net.counters().datagrams_dropped_partition, 1u);
}

TEST(NetworkTest, CrashedSiteNeitherSendsNorReceives) {
  Rig rig;
  int delivered = 0;
  rig.net.Bind(SiteId{1}, kTranManService, [&](Datagram) { ++delivered; });

  rig.net.CrashSite(SiteId{1});
  rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});
  rig.sched.RunUntilIdle();
  EXPECT_EQ(delivered, 0);

  rig.net.CrashSite(SiteId{0});
  rig.net.RestartSite(SiteId{1});
  rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});  // Sender down: no-op.
  rig.sched.RunUntilIdle();
  EXPECT_EQ(delivered, 0);

  rig.net.RestartSite(SiteId{0});
  rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});
  rig.sched.RunUntilIdle();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkTest, InFlightMessageToCrashingSiteIsDropped) {
  Rig rig;
  int delivered = 0;
  rig.net.Bind(SiteId{1}, kTranManService, [&](Datagram) { ++delivered; });
  rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});
  rig.sched.Post(Usec(100), [&] { rig.net.CrashSite(SiteId{1}); });
  rig.sched.RunUntilIdle();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rig.net.counters().datagrams_dropped_dead, 1u);
}

TEST(NetworkTest, SendToAllHonorsMulticastFlag) {
  Rig rig;
  int delivered = 0;
  for (uint32_t dst = 1; dst <= 3; ++dst) {
    rig.net.Bind(SiteId{dst}, kTranManService, [&](Datagram) { ++delivered; });
  }
  std::vector<SiteId> dsts{SiteId{1}, SiteId{2}, SiteId{3}};
  rig.net.SendToAll(SiteId{0}, dsts, kTranManService, 0, {});
  rig.sched.RunUntilIdle();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(rig.net.counters().multicasts_sent, 0u);

  rig.net.set_use_multicast(true);
  rig.net.SendToAll(SiteId{0}, dsts, kTranManService, 0, {});
  rig.sched.RunUntilIdle();
  EXPECT_EQ(delivered, 6);
  EXPECT_EQ(rig.net.counters().multicasts_sent, 1u);
}

TEST(NetworkTest, ExpectedDatagramLatencyMatchesPaperTable2) {
  NetConfig cfg;
  // Default model must average the paper's 10 ms datagram.
  EXPECT_EQ(cfg.ExpectedDatagramLatency(), Usec(10000));
}

TEST(NetworkTest, ReorderAddsBoundedExtraDelayAndCounts) {
  NetConfig cfg = DeterministicConfig();
  cfg.reorder_probability = 1.0;
  cfg.reorder_delay_max = Usec(20000);
  Rig rig(cfg, 3);
  std::optional<SimTime> delivered_at;
  rig.net.Bind(SiteId{1}, kTranManService, [&](Datagram) { delivered_at = rig.sched.now(); });
  rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(delivered_at.has_value());
  const SimTime base = Usec(1700) + Usec(5540);  // cycle + propagation, no jitter.
  EXPECT_GE(*delivered_at, base);
  EXPECT_LT(*delivered_at, base + Usec(20000));
  EXPECT_EQ(rig.net.counters().datagrams_reordered, 1u);
}

TEST(NetworkTest, ReorderInvertsDeliveryOrderOfBackToBackSends) {
  NetConfig cfg = DeterministicConfig();
  cfg.reorder_probability = 1.0;  // Default reorder_delay_max (40ms) >> NIC cycle.
  Rig rig(cfg, 5);
  std::vector<uint8_t> order;
  rig.net.Bind(SiteId{1}, kTranManService, [&](Datagram dg) { order.push_back(dg.body[0]); });
  for (uint8_t i = 0; i < 20; ++i) {
    rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {i}});
  }
  rig.sched.RunUntilIdle();
  ASSERT_EQ(order.size(), 20u);
  std::vector<uint8_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NE(order, sorted);  // At least one inversion: datagrams overtook each other.
  EXPECT_EQ(rig.net.counters().datagrams_reordered, 20u);
}

TEST(NetworkTest, RpcTransportStaysFifoUnderReorder) {
  // The Mach netmsgserver connection is FIFO-reliable; reorder injection is
  // confined to TranMan datagrams and must never touch the RPC service.
  NetConfig cfg = DeterministicConfig();
  cfg.reorder_probability = 1.0;
  Rig rig(cfg, 5);
  std::vector<uint8_t> order;
  rig.net.Bind(SiteId{1}, kNetMsgService, [&](Datagram dg) { order.push_back(dg.body[0]); });
  for (uint8_t i = 0; i < 20; ++i) {
    rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kNetMsgService, 0, {i}});
  }
  rig.sched.RunUntilIdle();
  ASSERT_EQ(order.size(), 20u);
  std::vector<uint8_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(order, sorted);
  EXPECT_EQ(rig.net.counters().datagrams_reordered, 0u);
}

TEST(NetworkTest, CongestionDelayShiftsMeanLatency) {
  NetConfig cfg = DeterministicConfig();
  cfg.congestion_delay_mean = Usec(5000);
  Rig rig(cfg, 11);
  const SimTime base = Usec(1700) + Usec(5540);
  Summary extra;
  SimTime sent_at = 0;
  rig.net.Bind(SiteId{1}, kTranManService,
               [&](Datagram) { extra.Add(static_cast<double>(rig.sched.now() - sent_at - base)); });
  for (int i = 0; i < 300; ++i) {
    sent_at = rig.sched.now();
    rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});
    rig.sched.RunUntilIdle();
  }
  ASSERT_EQ(extra.count(), 300u);
  EXPECT_GT(extra.mean(), 3500.0);  // Exponential with mean 5000us.
  EXPECT_LT(extra.mean(), 6500.0);
  EXPECT_EQ(rig.net.counters().datagrams_reordered, 0u);  // Congestion is not reorder.
}

TEST(NetworkTest, SetPartitionRejectsBadGroupsWithoutChangingTopology) {
  Rig rig;
  ASSERT_TRUE(rig.net.SetPartition({{SiteId{0}}, {SiteId{1}, SiteId{2}}}).ok());
  ASSERT_FALSE(rig.net.CanCommunicate(SiteId{0}, SiteId{1}));

  // Unknown site.
  EXPECT_FALSE(rig.net.SetPartition({{SiteId{0}, SiteId{9}}, {SiteId{1}}}).ok());
  // Same site in two groups.
  EXPECT_FALSE(rig.net.SetPartition({{SiteId{0}, SiteId{1}}, {SiteId{1}}}).ok());
  // Same site twice in one group.
  EXPECT_FALSE(rig.net.SetPartition({{SiteId{0}, SiteId{0}}, {SiteId{1}}}).ok());
  // Empty group list.
  EXPECT_FALSE(rig.net.SetPartition({{SiteId{0}}, {}}).ok());

  // Every rejection left the existing partition in force.
  EXPECT_TRUE(rig.net.IsPartitioned());
  EXPECT_FALSE(rig.net.CanCommunicate(SiteId{0}, SiteId{1}));
  EXPECT_TRUE(rig.net.CanCommunicate(SiteId{1}, SiteId{2}));
}

TEST(NetworkTest, EmptyGroupsVectorIsolatesEverySite) {
  Rig rig;
  int delivered = 0;
  rig.net.Bind(SiteId{1}, kTranManService, [&](Datagram) { ++delivered; });
  ASSERT_TRUE(rig.net.SetPartition({}).ok());
  EXPECT_TRUE(rig.net.IsPartitioned());
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = a + 1; b < 4; ++b) {
      EXPECT_FALSE(rig.net.CanCommunicate(SiteId{a}, SiteId{b})) << a << "-" << b;
    }
    EXPECT_TRUE(rig.net.CanCommunicate(SiteId{a}, SiteId{a}));  // Loopback survives.
  }
  rig.net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});
  rig.sched.RunUntilIdle();
  EXPECT_EQ(delivered, 0);
}

TEST(NetworkTest, SiteInNoGroupIsIsolated) {
  Rig rig;
  ASSERT_TRUE(rig.net.SetPartition({{SiteId{0}, SiteId{1}}}).ok());  // 2 and 3 unlisted.
  EXPECT_TRUE(rig.net.CanCommunicate(SiteId{0}, SiteId{1}));
  EXPECT_FALSE(rig.net.CanCommunicate(SiteId{0}, SiteId{2}));
  EXPECT_FALSE(rig.net.CanCommunicate(SiteId{2}, SiteId{3}));  // Both isolated: no pair.
}

TEST(NetworkTest, ReinstallReplacesPartitionAtomically) {
  Rig rig;
  ASSERT_TRUE(rig.net.SetPartition({{SiteId{0}}, {SiteId{1}, SiteId{2}}}).ok());
  ASSERT_TRUE(rig.net.SetPartition({{SiteId{0}, SiteId{1}}, {SiteId{2}}}).ok());
  // Only the second install is in force.
  EXPECT_TRUE(rig.net.CanCommunicate(SiteId{0}, SiteId{1}));
  EXPECT_FALSE(rig.net.CanCommunicate(SiteId{1}, SiteId{2}));
  rig.net.ClearPartition();
  EXPECT_FALSE(rig.net.IsPartitioned());
  EXPECT_TRUE(rig.net.CanCommunicate(SiteId{1}, SiteId{2}));
}

TEST(NetworkTest, TopologyListenerFiresOnPartitionChangesOnly) {
  Rig rig;
  int notified = 0;
  rig.net.AddTopologyListener([&] { ++notified; });

  ASSERT_TRUE(rig.net.SetPartition({{SiteId{0}}, {SiteId{1}, SiteId{2}}}).ok());
  EXPECT_EQ(notified, 1);
  ASSERT_TRUE(rig.net.SetPartition({{SiteId{0}, SiteId{1}}, {SiteId{2}}}).ok());
  EXPECT_EQ(notified, 2);  // Re-install is a topology change.
  EXPECT_FALSE(rig.net.SetPartition({{SiteId{9}}}).ok());
  EXPECT_EQ(notified, 2);  // Rejected installs are not.
  rig.net.ClearPartition();
  EXPECT_EQ(notified, 3);
  rig.net.ClearPartition();
  EXPECT_EQ(notified, 3);  // Clearing an unpartitioned net is a no-op.

  rig.net.CrashSite(SiteId{1});
  rig.net.RestartSite(SiteId{1});
  EXPECT_EQ(notified, 3);  // Crash/restart have their own (SITE-UP) signal path.
}

}  // namespace
}  // namespace camelot
