#include "src/harness/replay.h"

#include <gtest/gtest.h>

namespace camelot {
namespace {

TEST(ReplayRecipeTest, PrefixNamesSeedAndProtocol) {
  EXPECT_EQ(ReplayRecipePrefix(42, /*non_blocking=*/false),
            "CAMELOT_SEED=42 CAMELOT_PROTOCOL=2pc");
  EXPECT_EQ(ReplayRecipePrefix(7, /*non_blocking=*/true),
            "CAMELOT_SEED=7 CAMELOT_PROTOCOL=nbc");
}

TEST(ReplayRecipeTest, FullRecipeQuotesSchedule) {
  EXPECT_EQ(ReplayRecipe(3, false, "CAMELOT_SCHEDULE", "disk.read@2#1=error"),
            "CAMELOT_SEED=3 CAMELOT_PROTOCOL=2pc CAMELOT_SCHEDULE='disk.read@2#1=error'");
  EXPECT_EQ(ReplayRecipe(9, true, "CAMELOT_NEMESIS", "partition@1000:0|1,2"),
            "CAMELOT_SEED=9 CAMELOT_PROTOCOL=nbc CAMELOT_NEMESIS='partition@1000:0|1,2'");
}

}  // namespace
}  // namespace camelot
