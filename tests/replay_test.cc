#include "src/harness/replay.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/harness/history.h"

namespace camelot {
namespace {

TEST(ReplayRecipeTest, PrefixNamesSeedAndProtocol) {
  EXPECT_EQ(ReplayRecipePrefix(42, /*non_blocking=*/false),
            "CAMELOT_SEED=42 CAMELOT_PROTOCOL=2pc");
  EXPECT_EQ(ReplayRecipePrefix(7, /*non_blocking=*/true),
            "CAMELOT_SEED=7 CAMELOT_PROTOCOL=nbc");
}

TEST(ReplayRecipeTest, FullRecipeQuotesSchedule) {
  EXPECT_EQ(ReplayRecipe(3, false, "CAMELOT_SCHEDULE", "disk.read@2#1=error"),
            "CAMELOT_SEED=3 CAMELOT_PROTOCOL=2pc CAMELOT_SCHEDULE='disk.read@2#1=error'");
  EXPECT_EQ(ReplayRecipe(9, true, "CAMELOT_NEMESIS", "partition@1000:0|1,2"),
            "CAMELOT_SEED=9 CAMELOT_PROTOCOL=nbc CAMELOT_NEMESIS='partition@1000:0|1,2'");
}

TEST(ReplayRecipeTest, ProtocolNameCoversAllFiveVariants) {
  EXPECT_EQ(ProtocolName(CommitOptions::Optimized()), "2pc");
  EXPECT_EQ(ProtocolName(CommitOptions::Unoptimized()), "2pc-unopt");
  EXPECT_EQ(ProtocolName(CommitOptions::Intermediate()), "2pc-int");
  EXPECT_EQ(ProtocolName(CommitOptions::NonBlocking()), "nbc");
  EXPECT_EQ(ProtocolName(CommitOptions::Paxos(1)), "paxos");
  EXPECT_EQ(ProtocolName(CommitOptions::Paxos(0)), "paxos");  // F rides in CAMELOT_F.
}

TEST(ReplayRecipeTest, ParseProtocolNameRoundTrips) {
  for (const char* name : {"2pc", "2pc-unopt", "2pc-int", "nbc", "paxos"}) {
    auto options = ParseProtocolName(name);
    ASSERT_TRUE(options.ok()) << name;
    EXPECT_EQ(ProtocolName(*options), name);
  }
  EXPECT_FALSE(ParseProtocolName("3pc").ok());
  EXPECT_FALSE(ParseProtocolName("").ok());
}

TEST(ReplayRecipeTest, PaxosPrefixCarriesF) {
  EXPECT_EQ(ReplayRecipePrefix(11, CommitOptions::Paxos(1)),
            "CAMELOT_SEED=11 CAMELOT_PROTOCOL=paxos CAMELOT_F=1");
  EXPECT_EQ(ReplayRecipePrefix(11, CommitOptions::Paxos(3)),
            "CAMELOT_SEED=11 CAMELOT_PROTOCOL=paxos CAMELOT_F=3");
  EXPECT_EQ(ReplayRecipe(11, CommitOptions::Paxos(2), "CAMELOT_SCHEDULE", "x"),
            "CAMELOT_SEED=11 CAMELOT_PROTOCOL=paxos CAMELOT_F=2 CAMELOT_SCHEDULE='x'");
}

TEST(ReplayRecipeTest, ApplyPaxosFFromEnvOverridesParsedDefault) {
  setenv("CAMELOT_F", "2", 1);
  auto parsed = ParseProtocolName("paxos");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->paxos_f, 1u);  // Parse default: smallest non-degenerate F.
  EXPECT_EQ(ApplyPaxosFFromEnv(*parsed).paxos_f, 2u);
  // Non-paxos options pass through untouched even with CAMELOT_F set.
  EXPECT_EQ(ApplyPaxosFFromEnv(CommitOptions::NonBlocking()).protocol,
            CommitProtocol::kNonBlocking);
  unsetenv("CAMELOT_F");
  EXPECT_EQ(ApplyPaxosFFromEnv(*parsed).paxos_f, 1u);  // No env: keep the parsed F.
}

TEST(ReplayRecipeTest, FourVariantPrefixAndRecipe) {
  EXPECT_EQ(ReplayRecipePrefix(5, CommitOptions::Unoptimized()),
            "CAMELOT_SEED=5 CAMELOT_PROTOCOL=2pc-unopt");
  EXPECT_EQ(ReplayRecipe(5, CommitOptions::Intermediate(), "CAMELOT_SCHEDULE", "x"),
            "CAMELOT_SEED=5 CAMELOT_PROTOCOL=2pc-int CAMELOT_SCHEDULE='x'");
}

TEST(ReplayRecipeTest, WithHistoryAppendsQuotedPath) {
  EXPECT_EQ(WithHistory("CAMELOT_SEED=1 CAMELOT_PROTOCOL=2pc", "/tmp/run.history"),
            "CAMELOT_SEED=1 CAMELOT_PROTOCOL=2pc CAMELOT_HISTORY='/tmp/run.history'");
}

TEST(HistoryArtifactTest, DumpAndLoadRoundTrip) {
  HistoryRecorder recorder;
  recorder.set_enabled(true);
  recorder.Record(HistoryEvent{HistoryOp::kInit, 0, 0, kInvalidTid, "vault", "obj",
                               Bytes{1, 2, 3}});
  recorder.Record(HistoryEvent{HistoryOp::kWrite, 10, 1, Tid{FamilyId{0, 1}, 0, 0}, "vault",
                               "obj", Bytes{4, 5}});
  recorder.Record(HistoryEvent{HistoryOp::kCommit, 20, 1, Tid{FamilyId{0, 1}, 0, 0},
                               std::string(), std::string(), Bytes()});

  // Dump under a scratch artifact dir; the label is sanitized.
  std::string dir = ::testing::TempDir();
  setenv("CAMELOT_ARTIFACT_DIR", dir.c_str(), 1);
  auto path = DumpHistoryArtifact(recorder, "round trip/#1");
  unsetenv("CAMELOT_ARTIFACT_DIR");
  ASSERT_TRUE(path.ok()) << path.status().message();
  EXPECT_EQ(path->find(dir), 0u) << *path;
  EXPECT_EQ(path->find(' '), std::string::npos) << *path;

  auto loaded = LoadHistoryFile(*path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded->size(), recorder.events().size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ((*loaded)[i], recorder.events()[i]) << "event " << i;
  }
  std::remove(path->c_str());
}

TEST(HistoryArtifactTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(LoadHistoryFile("/nonexistent/never.history").ok());
}

}  // namespace
}  // namespace camelot
