// HistoryRecorder unit and integration tests: the text format round-trips,
// malformed files are rejected with line numbers, and — the part that keeps
// the IsolationOracle honest — the recorder captures exactly the operations
// the serial-replay argument needs: aborted transactions' reads and writes
// are recorded (and then correctly ignored by the oracle), while recovery's
// redo of already-recorded effects after a crash must NOT be recorded again,
// so a history spanning a site restart still replays serializably.
#include "src/harness/history.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/harness/isolation_oracle.h"
#include "src/harness/world.h"

namespace camelot {
namespace {

TEST(HistoryFormatTest, SerializeParseRoundTrip) {
  HistoryRecorder recorder;
  recorder.set_enabled(true);
  recorder.Record(HistoryEvent{HistoryOp::kInit, 0, 0, kInvalidTid, "vault", "balance",
                               Bytes{0x00, 0xff, 0x10}});
  recorder.Record(
      HistoryEvent{HistoryOp::kRead, 5, 1, Tid{FamilyId{1, 7}, 2, 0}, "vault", "balance",
                   Bytes{0x00, 0xff, 0x10}});
  recorder.Record(HistoryEvent{HistoryOp::kWrite, 9, 1, Tid{FamilyId{1, 7}, 2, 0}, "vault",
                               "balance", Bytes{}});
  recorder.Record(HistoryEvent{HistoryOp::kCommit, 12, 0, Tid{FamilyId{1, 7}, 0, 0},
                               std::string(), std::string(), Bytes()});
  recorder.Record(HistoryEvent{HistoryOp::kAbort, 15, 2, Tid{FamilyId{2, 1}, 0, 0},
                               std::string(), std::string(), Bytes()});

  const std::string text = recorder.Serialize();
  EXPECT_EQ(text.rfind("# camelot-history v1", 0), 0u);

  auto parsed = HistoryRecorder::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_EQ(parsed->size(), recorder.events().size());
  for (size_t i = 0; i < parsed->size(); ++i) {
    EXPECT_EQ((*parsed)[i], recorder.events()[i]) << "event " << i;
  }
}

TEST(HistoryFormatTest, ParseRejectsMalformedInput) {
  // No header.
  EXPECT_FALSE(HistoryRecorder::Parse("5 read 0:1:0 0 vault obj -\n").ok());
  const std::string header = "# camelot-history v1\n";
  // Wrong field count.
  EXPECT_FALSE(HistoryRecorder::Parse(header + "5 read 0:1:0 0 vault\n").ok());
  // Unknown op.
  EXPECT_FALSE(HistoryRecorder::Parse(header + "5 teleport 0:1:0 0 vault obj -\n").ok());
  // Bad tid token.
  EXPECT_FALSE(HistoryRecorder::Parse(header + "5 read 0..1 0 vault obj -\n").ok());
  // Bad value hex.
  EXPECT_FALSE(HistoryRecorder::Parse(header + "5 read 0:1:0 0 vault obj zz\n").ok());
  // Valid minimal file parses.
  auto ok = HistoryRecorder::Parse(header + "5 read 0:1:0 0 vault obj 0aff\n");
  ASSERT_TRUE(ok.ok()) << ok.status().message();
  ASSERT_EQ(ok->size(), 1u);
  EXPECT_EQ((*ok)[0].value, (Bytes{0x0a, 0xff}));
}

TEST(HistoryRecorderTest, DisabledRecorderDropsEvents) {
  HistoryRecorder recorder;
  recorder.Record(HistoryEvent{HistoryOp::kInit, 0, 0, kInvalidTid, "s", "o", Bytes()});
  EXPECT_EQ(recorder.size(), 0u);
  recorder.set_enabled(true);
  recorder.Record(HistoryEvent{HistoryOp::kInit, 0, 0, kInvalidTid, "s", "o", Bytes()});
  EXPECT_EQ(recorder.size(), 1u);
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
}

WorldConfig TwoSiteConfig(uint64_t seed) {
  WorldConfig cfg;
  cfg.site_count = 2;
  cfg.seed = seed;
  return cfg;
}

size_t CountOps(const std::vector<HistoryEvent>& events, HistoryOp op,
                const std::string& object) {
  return static_cast<size_t>(
      std::count_if(events.begin(), events.end(), [&](const HistoryEvent& e) {
        return e.op == op && e.object == object;
      }));
}

TEST(HistoryRecorderTest, AbortedTransactionReadsAreRecordedButBenign) {
  World world(TwoSiteConfig(11));
  world.history().set_enabled(true);
  world.AddServer(0, "vault")->CreateObjectForSetup("obj", EncodeInt64(42));

  AppClient app(world.site(0));
  auto aborted = world.RunSync([](AppClient& app) -> Async<bool> {
    auto begin = co_await app.Begin();
    if (!begin.ok()) {
      co_return false;
    }
    auto v = co_await app.ReadInt(*begin, "vault", "obj");
    if (!v.ok()) {
      co_return false;
    }
    (void)co_await app.WriteInt(*begin, "vault", "obj", *v + 1);
    co_await app.Abort(*begin);
    co_return true;
  }(app));
  ASSERT_TRUE(aborted.value_or(false));
  world.RunUntilIdle();

  const auto& events = world.history().events();
  // The doomed transaction's read AND write are in the history...
  EXPECT_EQ(CountOps(events, HistoryOp::kRead, "obj"), 1u);
  EXPECT_EQ(CountOps(events, HistoryOp::kWrite, "obj"), 1u);
  EXPECT_TRUE(std::any_of(events.begin(), events.end(), [](const HistoryEvent& e) {
    return e.op == HistoryOp::kAbort;
  }));
  // ...but the abort's compensation (undo) write is NOT, and the oracle
  // ignores the aborted family entirely: no anomaly.
  IsolationReport report = IsolationOracle::Check(events);
  EXPECT_TRUE(report.ok()) << report.Explain();
  EXPECT_EQ(report.aborted, 1u);
  EXPECT_EQ(report.committed, 0u);
  // The forward image survived the undo: a fresh reader sees 42 again.
  auto value = world.RunSync([](AppClient& app) -> Async<int64_t> {
    auto begin = co_await app.Begin();
    auto v = co_await app.ReadInt(*begin, "vault", "obj");
    co_await app.Commit(*begin);
    co_return v.value_or(-1);
  }(app));
  EXPECT_EQ(value.value_or(-1), 42);
}

TEST(HistoryRecorderTest, RecoveryReplayDoesNotDoubleRecord) {
  World world(TwoSiteConfig(12));
  world.history().set_enabled(true);
  world.AddServer(0, "vault")->CreateObjectForSetup("obj", EncodeInt64(0));

  AppClient app(world.site(1));  // Remote client: commits span both sites.
  for (int i = 0; i < 3; ++i) {
    auto st = world.RunSync([](AppClient& app, int64_t v) -> Async<Status> {
      auto begin = co_await app.Begin();
      if (!begin.ok()) {
        co_return begin.status();
      }
      Status w = co_await app.WriteInt(*begin, "vault", "obj", v);
      if (!w.ok()) {
        co_return w;
      }
      co_return co_await app.Commit(*begin);
    }(app, i + 1));
    ASSERT_TRUE(st.has_value() && st->ok()) << "transfer " << i;
  }

  const size_t writes_before = CountOps(world.history().events(), HistoryOp::kWrite, "obj");
  ASSERT_EQ(writes_before, 3u);

  // Crash the server's site and recover it: recovery's redo of the committed
  // writes replays them into the page cache WITHOUT re-recording them.
  world.Crash(0);
  world.RunFor(Sec(1));
  world.Restart(0);
  world.RunUntilIdle();
  ASSERT_TRUE(world.site(0).site().up());
  EXPECT_EQ(CountOps(world.history().events(), HistoryOp::kWrite, "obj"), writes_before)
      << "recovery redo must not duplicate history events";

  // The history spans the restart and still replays serializably, and a
  // post-restart read extends it consistently.
  auto value = world.RunSync([](AppClient& app) -> Async<int64_t> {
    auto begin = co_await app.Begin();
    auto v = co_await app.ReadInt(*begin, "vault", "obj");
    co_await app.Commit(*begin);
    co_return v.value_or(-1);
  }(app));
  EXPECT_EQ(value.value_or(-1), 3);
  IsolationReport report = IsolationOracle::Check(world.history().events());
  EXPECT_TRUE(report.ok()) << report.Explain();
  EXPECT_GE(report.committed, 3u);
  EXPECT_TRUE(report.CheckFinalValue("vault", "obj", EncodeInt64(3)));
}

}  // namespace
}  // namespace camelot
