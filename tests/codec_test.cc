// Round-trip and failure-mode tests for the binary codec, including
// property-style sweeps over random payloads.
#include <gtest/gtest.h>

#include "src/base/codec.h"
#include "src/base/rng.h"
#include "src/base/shared_bytes.h"

namespace camelot {
namespace {

TEST(CodecTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.Str("hello");
  w.Blob({1, 2, 3});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Blob(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, IdsRoundTrip) {
  const Tid tid{FamilyId{SiteId{7}, 99}, 3, 1};
  ByteWriter w;
  w.Transaction(tid);
  w.SiteList({SiteId{1}, SiteId{2}, SiteId{3}});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.Transaction(), tid);
  auto sites = r.SiteList();
  ASSERT_EQ(sites.size(), 3u);
  EXPECT_EQ(sites[1], SiteId{2});
  EXPECT_TRUE(r.ok());
}

TEST(CodecTest, OverReadFailsGracefully) {
  ByteWriter w;
  w.U16(5);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.U16(), 5);
  EXPECT_EQ(r.U64(), 0u);  // Over-read: zero value, failed state.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.Str(), "");  // Subsequent reads stay failed.
}

TEST(CodecTest, CorruptLengthDoesNotExplode) {
  ByteWriter w;
  w.U32(0xffffffffu);  // Claims a 4 GB blob.
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.Blob().empty());
  EXPECT_FALSE(r.ok());

  ByteReader r2(w.bytes());
  EXPECT_TRUE(r2.SiteList().empty());
  EXPECT_FALSE(r2.ok());
}

TEST(CodecTest, EmptyContainersRoundTrip) {
  ByteWriter w;
  w.Str("");
  w.Blob({});
  w.SiteList({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.Blob().empty());
  EXPECT_TRUE(r.SiteList().empty());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, Crc32KnownVector) {
  // CRC32C("123456789") = 0xE3069283 (iSCSI test vector).
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xE3069283u);
}

TEST(CodecTest, Crc32DetectsBitFlips) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data(64);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.Next());
    }
    const uint32_t crc = Crc32(data);
    Bytes mutated = data;
    mutated[rng.NextBounded(mutated.size())] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    EXPECT_NE(Crc32(mutated), crc);
  }
}

// Property: any sequence of write ops reads back identically.
TEST(CodecTest, RandomizedRoundTripProperty) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> ops;
    std::vector<uint64_t> ints;
    std::vector<std::string> strs;
    ByteWriter w;
    const int n = static_cast<int>(rng.NextBounded(20));
    for (int i = 0; i < n; ++i) {
      const int op = static_cast<int>(rng.NextBounded(2));
      ops.push_back(op);
      if (op == 0) {
        const uint64_t v = rng.Next();
        ints.push_back(v);
        w.U64(v);
      } else {
        std::string s(rng.NextBounded(32), 'x');
        for (auto& c : s) {
          c = static_cast<char>('a' + rng.NextBounded(26));
        }
        strs.push_back(s);
        w.Str(s);
      }
    }
    ByteReader r(w.bytes());
    size_t ii = 0;
    size_t si = 0;
    for (int op : ops) {
      if (op == 0) {
        EXPECT_EQ(r.U64(), ints[ii++]);
      } else {
        EXPECT_EQ(r.Str(), strs[si++]);
      }
    }
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(SharedBytesTest, CopiesShareOneBuffer) {
  SharedBytes a = Bytes{1, 2, 3};
  SharedBytes b = a;
  SharedBytes c = b;
  EXPECT_EQ(a.use_count(), 3u);
  // All three alias the same underlying storage.
  EXPECT_EQ(&a.bytes(), &b.bytes());
  EXPECT_EQ(&b.bytes(), &c.bytes());
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c[2], 3u);
}

TEST(SharedBytesTest, MoveStealsWithoutTouchingRefcount) {
  SharedBytes a = Bytes{9};
  SharedBytes b = a;
  SharedBytes c = std::move(a);
  EXPECT_EQ(b.use_count(), 2u);
  EXPECT_EQ(c.use_count(), 2u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): moved-from is empty.
}

TEST(SharedBytesTest, DefaultIsEmptyAndReadable) {
  SharedBytes empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.use_count(), 0u);
  // The Bytes view of a null SharedBytes is a valid empty buffer.
  const Bytes& view = empty;
  EXPECT_TRUE(view.empty());
}

TEST(SharedBytesTest, FeedsByteReaderThroughBytesConversion) {
  ByteWriter w;
  w.U32(0xfeedf00d);
  w.Str("shared");
  const SharedBytes wire = w.Take();
  ByteReader r(wire);  // operator const Bytes&.
  EXPECT_EQ(r.U32(), 0xfeedf00du);
  EXPECT_EQ(r.Str(), "shared");
  EXPECT_TRUE(r.ok());
}

TEST(SharedBytesTest, ReassignmentReleasesOldBuffer) {
  SharedBytes a = Bytes{1};
  SharedBytes b = a;
  EXPECT_EQ(a.use_count(), 2u);
  b = Bytes{2};
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(b.use_count(), 1u);
  EXPECT_EQ(b[0], 2u);
  b = a;
  EXPECT_EQ(a.use_count(), 2u);
}

}  // namespace
}  // namespace camelot
