// Protocol-behavior tests for Paxos Commit (Gray & Lamport) in a live world:
// the happy path through the replicated registrar, the F = 0 collapse to
// optimized 2PC, non-blocking progress when an acceptor dies, and leader
// takeover resolving both outcomes after a coordinator crash — the property
// 2PC cannot offer.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "src/harness/world.h"

namespace camelot {
namespace {

WorldConfig QuietConfig(int sites = 3, uint64_t seed = 1) {
  WorldConfig cfg;
  cfg.site_count = sites;
  cfg.seed = seed;
  cfg.net.send_jitter_mean = 0;
  cfg.net.stall_probability = 0;
  cfg.net.receive_skew_mean = 0;
  return cfg;
}

// A world with one "server:N" data server per site, each holding "acct" = 100.
struct Rig {
  explicit Rig(WorldConfig cfg = QuietConfig()) : world(cfg), app(world.site(0)) {
    for (int i = 0; i < world.site_count(); ++i) {
      DataServer* server = world.AddServer(i, ServerName(i));
      server->CreateObjectForSetup("acct", EncodeInt64(100));
    }
  }
  static std::string ServerName(int i) { return "server:" + std::to_string(i); }
  DataServer* server(int i) { return world.site(i).server(ServerName(i)); }

  // The durable (post-flush) value of "acct" at site i.
  int64_t DurableAcct(int i) {
    world.RunSync([](DiskManager& d) -> Async<bool> {
      co_await d.FlushAll();
      co_return true;
    }(world.site(i).diskmgr()));
    auto value = server(i)->PeekDurable("acct");
    EXPECT_TRUE(value.ok()) << "site " << i;
    return value.ok() ? DecodeInt64(*value) : -1;
  }

  uint64_t TotalTakeovers() {
    uint64_t n = 0;
    for (int i = 0; i < world.site_count(); ++i) {
      n += world.site(i).tranman().counters().takeovers;
    }
    return n;
  }

  World world;
  AppClient app;
};

// One increment of "acct" on each of the first n_sites sites, committed with
// `options`.
Async<Status> IncrementTxn(AppClient& app, int n_sites, CommitOptions options) {
  auto begin = co_await app.Begin();
  if (!begin.ok()) {
    co_return begin.status();
  }
  const Tid tid = *begin;
  for (int i = 0; i < n_sites; ++i) {
    const std::string server = Rig::ServerName(i);
    auto v = co_await app.ReadInt(tid, server, "acct");
    if (!v.ok()) {
      co_return v.status();
    }
    Status w = co_await app.WriteInt(tid, server, "acct", *v + 1);
    if (!w.ok()) {
      co_return w;
    }
  }
  co_return co_await app.Commit(tid, options);
}

// Spawns `task` without draining: the crash tests need the world to keep
// running (takeover timers, retransmissions) after the client's own site
// dies under it mid-commit.
template <typename T>
Async<void> Capture(Async<T> task, std::optional<T>* out) {
  out->emplace(co_await std::move(task));
}

TEST(PaxosCommitTest, DistributedCommitPersistsOnAllSitesThroughAcceptors) {
  Rig rig(QuietConfig(3));
  rig.world.failpoints().set_recording(true);
  auto status = rig.world.RunSync(IncrementTxn(rig.app, 3, CommitOptions::Paxos(1)));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->ToString();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.DurableAcct(i), 101) << "site " << i;
    // All three sites are acceptors (2F+1 = 3): each forced a ballot-0
    // accept record — the replicated registrar the takeover path reads.
    EXPECT_GE(rig.world.failpoints().hits("tm.paxos.accept_force.after",
                                          SiteId{static_cast<uint32_t>(i)}),
              1u)
        << "site " << i;
  }
  EXPECT_EQ(rig.TotalTakeovers(), 0u);
}

TEST(PaxosCommitTest, FZeroCollapsesToOptimizedTwoPhase) {
  // F = 0 means one acceptor (the coordinator) and quorum 1: the paper's
  // degenerate case, routed literally through the optimized-2PC coordinator.
  Rig rig(QuietConfig(3));
  rig.world.failpoints().set_recording(true);
  auto status = rig.world.RunSync(IncrementTxn(rig.app, 3, CommitOptions::Paxos(0)));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->ToString();
  EXPECT_EQ(rig.world.failpoints().hits("tm.2pc.commit_force.after", SiteId{0}), 1u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.world.failpoints().hits("tm.paxos.accept_force.after",
                                          SiteId{static_cast<uint32_t>(i)}),
              0u);
    EXPECT_EQ(rig.DurableAcct(i), 101) << "site " << i;
  }
}

TEST(PaxosCommitTest, AcceptorCrashDoesNotBlockCommitAtFOne) {
  // Kill acceptor 1 the moment it starts forcing its accept record. The
  // coordinator still reaches F+1 = 2 accepts (itself + site 2), so the
  // client's commit succeeds — a single failure never blocks Paxos Commit.
  Rig rig(QuietConfig(3));
  rig.world.failpoints().Arm("tm.paxos.accept_force.before", SiteId{1}, FailpointArm::Crash());
  std::optional<Status> status;
  rig.world.sched().Spawn(Capture(IncrementTxn(rig.app, 3, CommitOptions::Paxos(1)), &status));
  rig.world.RunFor(Sec(30));
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->ToString();
  EXPECT_EQ(rig.DurableAcct(0), 101);
  EXPECT_EQ(rig.DurableAcct(2), 101);
  // The dead acceptor recovers, finds its prepared family, asks around, and
  // commits too.
  rig.world.Restart(1);
  rig.world.RunFor(Sec(30));
  EXPECT_EQ(rig.DurableAcct(1), 101);
  EXPECT_EQ(rig.world.site(1).tranman().counters().duplicate_effects, 0u);
}

TEST(PaxosCommitTest, CoordinatorCrashAfterAcceptQuorumResolvesToCommitByTakeover) {
  // The coordinator dies immediately after its own ballot-0 accept force. Its
  // vote multicast already reached acceptors 1 and 2, so they hold (or will
  // force) commit-deciding accepts: a takeover leader reading any F+1 = 2 of
  // the three registrars sees the decision and drives commit — no blocking on
  // the dead coordinator, which is exactly where 2PC would wedge.
  Rig rig(QuietConfig(3));
  rig.world.failpoints().Arm("tm.paxos.accept_force.after", SiteId{0}, FailpointArm::Crash());
  std::optional<Status> status;
  rig.world.sched().Spawn(Capture(IncrementTxn(rig.app, 3, CommitOptions::Paxos(1)), &status));
  rig.world.RunFor(Sec(60));
  // The client lived on the crashed site; its commit call never returns a
  // verdict. The survivors must still resolve.
  EXPECT_GE(rig.TotalTakeovers(), 1u);
  EXPECT_EQ(rig.DurableAcct(1), 101);
  EXPECT_EQ(rig.DurableAcct(2), 101);
  // The coordinator restarts, recovers its prepared family, and learns the
  // commit from the survivors' tombstones.
  rig.world.Restart(0);
  rig.world.RunFor(Sec(60));
  EXPECT_EQ(rig.DurableAcct(0), 101);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.world.site(i).tranman().counters().heuristic_damage, 0u) << "site " << i;
    EXPECT_EQ(rig.world.site(i).tranman().counters().duplicate_effects, 0u) << "site " << i;
  }
}

TEST(PaxosCommitTest, CoordinatorCrashBeforeItsVoteResolvesToAbortByTakeover) {
  // The coordinator dies before multicasting its own vote, which also
  // precedes the PREPARE fan-out: the subordinates never hear of the
  // transaction at all and orphan-abort their staged writes. The interesting
  // party is the coordinator itself — it restarts holding a prepared family
  // (its vote was hardened before the crash) that it must NOT presume abort
  // on, since it cannot know which sends completed. Its takeover reads
  // promised-empty testimony from acceptors 1 and 2 ("never accepted
  // anything, and now promised away ballot 0") and aborts at a higher
  // ballot, replicating the abort through them as passive acceptors.
  Rig rig(QuietConfig(3));
  rig.world.failpoints().Arm("tm.send.VOTE", SiteId{0}, FailpointArm::Crash());
  std::optional<Status> status;
  rig.world.sched().Spawn(Capture(IncrementTxn(rig.app, 3, CommitOptions::Paxos(1)), &status));
  rig.world.RunFor(Sec(60));
  EXPECT_EQ(rig.DurableAcct(1), 100);
  EXPECT_EQ(rig.DurableAcct(2), 100);
  rig.world.Restart(0);
  rig.world.RunFor(Sec(60));
  EXPECT_GE(rig.world.site(0).tranman().counters().takeovers, 1u);
  EXPECT_EQ(rig.DurableAcct(0), 100);
  // The family resolved — nothing left blocked holding vault 0's lock.
  EXPECT_EQ(rig.world.site(0).tranman().live_family_count(), 0u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.world.site(i).tranman().counters().heuristic_damage, 0u) << "site " << i;
  }
}

TEST(PaxosCommitTest, AcceptorSetIsFirstTwoQcMinusOneSites) {
  const std::vector<SiteId> sites = {SiteId{0}, SiteId{1}, SiteId{2}, SiteId{3}, SiteId{4}};
  EXPECT_EQ(TranMan::PaxosAcceptors(sites, 2).size(), 3u);  // F=1: 2*2-1.
  EXPECT_EQ(TranMan::PaxosAcceptors(sites, 3).size(), 5u);  // F=2: 2*3-1.
  EXPECT_EQ(TranMan::PaxosAcceptors(sites, 1).size(), 1u);  // F=0: coordinator only.
  // Clamped to the participant count when the transaction is too narrow.
  const std::vector<SiteId> narrow = {SiteId{0}, SiteId{1}};
  EXPECT_EQ(TranMan::PaxosAcceptors(narrow, 3).size(), 2u);
  // The coordinator (first site) always leads the acceptor list.
  EXPECT_EQ(TranMan::PaxosAcceptors(sites, 2).front(), SiteId{0});
}

}  // namespace
}  // namespace camelot
