// Deep nested-transaction tests (Moss model): multi-level trees, distributed
// subtree aborts, lock anti-inheritance chains, and interaction with top-level
// commitment.
#include <gtest/gtest.h>

#include <string>

#include "src/harness/world.h"

namespace camelot {
namespace {

WorldConfig Quiet(int sites) {
  WorldConfig cfg;
  cfg.site_count = sites;
  cfg.net.send_jitter_mean = 0;
  cfg.net.stall_probability = 0;
  cfg.net.receive_skew_mean = 0;
  return cfg;
}

std::string Srv(int i) { return "server:" + std::to_string(i); }

struct Rig {
  explicit Rig(int sites) : world(Quiet(sites)), app(world.site(0)) {
    for (int i = 0; i < sites; ++i) {
      DataServer* server = world.AddServer(i, Srv(i));
      for (const char* obj : {"a", "b", "c"}) {
        server->CreateObjectForSetup(obj, EncodeInt64(0));
      }
    }
  }
  int64_t Read(int site, const std::string& obj) {
    auto v = world.RunSync([](AppClient& a, std::string s, std::string o) -> Async<int64_t> {
      auto b = co_await a.Begin();
      auto value = co_await a.ReadInt(*b, s, o);
      co_await a.Commit(*b);
      co_return value.value_or(-1);
    }(app, Srv(site), obj));
    return v.value_or(-1);
  }
  World world;
  AppClient app;
};

TEST(NestedTest, ThreeLevelTreeCommitsThroughAncestors) {
  Rig rig(1);
  auto result = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto top = co_await app.Begin();
    auto child = co_await app.Begin(*top);
    auto grandchild = co_await app.Begin(*child);
    co_await app.WriteInt(*grandchild, Srv(0), "a", 3);
    CAMELOT_CHECK((co_await app.Commit(*grandchild)).ok());  // -> child owns it.
    co_await app.WriteInt(*child, Srv(0), "b", 2);
    CAMELOT_CHECK((co_await app.Commit(*child)).ok());       // -> top owns both.
    Status st = co_await app.Commit(*top);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok()) << result->ToString();
  EXPECT_EQ(rig.Read(0, "a"), 3);
  EXPECT_EQ(rig.Read(0, "b"), 2);
}

TEST(NestedTest, AbortingMiddleLevelUndoesItsCommittedChildren) {
  Rig rig(1);
  auto result = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto top = co_await app.Begin();
    co_await app.WriteInt(*top, Srv(0), "a", 1);  // Top's own work survives.
    auto child = co_await app.Begin(*top);
    auto grandchild = co_await app.Begin(*child);
    co_await app.WriteInt(*grandchild, Srv(0), "b", 9);
    CAMELOT_CHECK((co_await app.Commit(*grandchild)).ok());
    // The grandchild's effect is now the CHILD's; aborting the child must
    // undo it even though the grandchild "committed".
    co_await app.WriteInt(*child, Srv(0), "c", 9);
    CAMELOT_CHECK((co_await app.Abort(*child)).ok());
    Status st = co_await app.Commit(*top);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(rig.Read(0, "a"), 1);  // Top's write committed.
  EXPECT_EQ(rig.Read(0, "b"), 0);  // Grandchild's write undone with the child.
  EXPECT_EQ(rig.Read(0, "c"), 0);  // Child's own write undone.
}

TEST(NestedTest, DistributedSubtreeAbortUndoesRemoteSites) {
  Rig rig(3);
  auto result = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto top = co_await app.Begin();
    co_await app.WriteInt(*top, Srv(1), "a", 5);  // Parent writes remotely too.
    auto child = co_await app.Begin(*top);
    co_await app.WriteInt(*child, Srv(1), "b", 7);  // Child on site 1...
    co_await app.WriteInt(*child, Srv(2), "c", 8);  // ...and site 2.
    CAMELOT_CHECK((co_await app.Abort(*child)).ok());
    Status st = co_await app.Commit(*top);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(rig.Read(1, "a"), 5);  // Parent's remote write survived.
  EXPECT_EQ(rig.Read(1, "b"), 0);  // Child's writes undone on both sites.
  EXPECT_EQ(rig.Read(2, "c"), 0);
  EXPECT_EQ(rig.world.site(1).server(Srv(1))->locks().held_lock_count(), 0u);
  EXPECT_EQ(rig.world.site(2).server(Srv(2))->locks().held_lock_count(), 0u);
}

TEST(NestedTest, SiblingsAreIndependent) {
  Rig rig(1);
  auto result = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto top = co_await app.Begin();
    auto left = co_await app.Begin(*top);
    auto right = co_await app.Begin(*top);
    co_await app.WriteInt(*left, Srv(0), "a", 11);
    co_await app.WriteInt(*right, Srv(0), "b", 22);
    CAMELOT_CHECK((co_await app.Abort(*left)).ok());   // Left dies...
    CAMELOT_CHECK((co_await app.Commit(*right)).ok()); // ...right survives.
    Status st = co_await app.Commit(*top);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(rig.Read(0, "a"), 0);
  EXPECT_EQ(rig.Read(0, "b"), 22);
}

TEST(NestedTest, ChildSeesParentWritesAndMayOverwrite) {
  Rig rig(1);
  auto result = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto top = co_await app.Begin();
    co_await app.WriteInt(*top, Srv(0), "a", 1);
    auto child = co_await app.Begin(*top);
    // Same family: no lock conflict; the child reads the parent's value.
    auto seen = co_await app.ReadInt(*child, Srv(0), "a");
    EXPECT_EQ(seen.value_or(-1), 1);
    co_await app.WriteInt(*child, Srv(0), "a", 2);
    CAMELOT_CHECK((co_await app.Commit(*child)).ok());
    Status st = co_await app.Commit(*top);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(rig.Read(0, "a"), 2);
}

TEST(NestedTest, AbortedChildsOverwriteRestoresParentValue) {
  Rig rig(1);
  auto result = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto top = co_await app.Begin();
    co_await app.WriteInt(*top, Srv(0), "a", 1);
    auto child = co_await app.Begin(*top);
    co_await app.WriteInt(*child, Srv(0), "a", 99);
    CAMELOT_CHECK((co_await app.Abort(*child)).ok());
    // The child's undo restores the PARENT's uncommitted value, not the
    // pre-transaction value.
    auto seen = co_await app.ReadInt(*top, Srv(0), "a");
    EXPECT_EQ(seen.value_or(-1), 1);
    Status st = co_await app.Commit(*top);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(rig.Read(0, "a"), 1);
}

TEST(NestedTest, NestedCommitRequiresChildrenFinished) {
  Rig rig(1);
  auto result = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto top = co_await app.Begin();
    auto child = co_await app.Begin(*top);
    auto grandchild = co_await app.Begin(*child);
    (void)grandchild;
    Status st = co_await app.Commit(*child);  // Grandchild still active.
    co_await app.Abort(*top);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->code(), StatusCode::kFailedPrecondition);
}

TEST(NestedTest, NestedBeginUnderFinishedParentFails) {
  Rig rig(1);
  auto result = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto top = co_await app.Begin();
    auto child = co_await app.Begin(*top);
    CAMELOT_CHECK((co_await app.Commit(*child)).ok());
    auto grandchild = co_await app.Begin(*child);  // Parent already committed.
    co_await app.Abort(*top);
    co_return grandchild.ok() ? OkStatus() : grandchild.status();
  }(rig.app));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->code(), StatusCode::kFailedPrecondition);
}

TEST(NestedTest, DeepChainThenTopLevelDistributedCommit) {
  // Five levels of nesting, work spread over three sites, everything commits
  // through one two-phase commit at the top.
  Rig rig(3);
  auto result = rig.world.RunSync([](AppClient& app) -> Async<Status> {
    auto top = co_await app.Begin();
    Tid current = *top;
    for (int depth = 0; depth < 5; ++depth) {
      auto child = co_await app.Begin(current);
      if (!child.ok()) {
        co_return child.status();
      }
      co_await app.WriteInt(*child, Srv(depth % 3), "a", depth + 1);
      current = *child;
    }
    // Commit the chain bottom-up.
    while (current.serial != 0) {
      Status st = co_await app.Commit(current);
      if (!st.ok()) {
        co_return st;
      }
      current.serial = current.parent_serial;  // Walk up (serials are the path).
      // Re-derive parent's parent from the chain: serial N was begun under N-1.
      current.parent_serial = current.serial == 0 ? 0 : current.serial - 1;
    }
    Status st = co_await app.Commit(*top);
    co_return st;
  }(rig.app));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok()) << result->ToString();
  // The deepest write per site wins (depths 3,4,5 hit sites 2,0,1 -> values).
  EXPECT_EQ(rig.Read(0, "a"), 4);  // depth 3 (value 4) on site 0.
  EXPECT_EQ(rig.Read(1, "a"), 5);  // depth 4 (value 5) on site 1.
  EXPECT_EQ(rig.Read(2, "a"), 3);  // depth 2 (value 3) on site 2.
}

}  // namespace
}  // namespace camelot
