// Tests for log-record encoding and the stable log: durability semantics,
// group-commit batching, crash/torn-write behaviour, and replay.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/sim/scheduler.h"
#include "src/wal/log_record.h"
#include "src/wal/stable_log.h"

namespace camelot {
namespace {

const Tid kTid{FamilyId{SiteId{1}, 42}, 0, 0};

TEST(LogRecordTest, UpdateRoundTrips) {
  LogRecord rec = LogRecord::Update(kTid, "server:acct", "alice", {1, 2}, {3, 4, 5});
  auto decoded = LogRecord::Decode(rec.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, LogRecordKind::kUpdate);
  EXPECT_EQ(decoded->tid, kTid);
  EXPECT_EQ(decoded->server, "server:acct");
  EXPECT_EQ(decoded->object, "alice");
  EXPECT_EQ(decoded->old_value, (Bytes{1, 2}));
  EXPECT_EQ(decoded->new_value, (Bytes{3, 4, 5}));
}

TEST(LogRecordTest, PrepareRoundTrips) {
  LogRecord rec = LogRecord::Prepare(kTid, SiteId{7}, {SiteId{1}, SiteId{2}},
                                     CommitProtocol::kNonBlocking, 2, 1);
  auto decoded = LogRecord::Decode(rec.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, LogRecordKind::kPrepare);
  EXPECT_EQ(decoded->coordinator, SiteId{7});
  EXPECT_EQ(decoded->sites.size(), 2u);
  EXPECT_EQ(decoded->protocol, CommitProtocol::kNonBlocking);
  EXPECT_EQ(decoded->commit_quorum, 2u);
  EXPECT_EQ(decoded->abort_quorum, 1u);
}

TEST(LogRecordTest, AllKindsRoundTrip) {
  std::vector<LogRecord> records = {
      LogRecord::Update(kTid, "s", "o", {}, {9}),
      LogRecord::Prepare(kTid, SiteId{0}, {SiteId{1}}, CommitProtocol::kTwoPhase, 0, 0),
      LogRecord::Commit(kTid, {SiteId{1}, SiteId{2}}),
      LogRecord::Abort(kTid),
      LogRecord::Replication(kTid, SiteId{3}, 5, 1, {SiteId{1}}),
      LogRecord::End(kTid),
  };
  for (const auto& rec : records) {
    auto decoded = LogRecord::Decode(rec.Encode());
    ASSERT_TRUE(decoded.ok()) << LogRecordKindName(rec.kind);
    EXPECT_EQ(decoded->kind, rec.kind);
    EXPECT_EQ(decoded->tid, rec.tid);
  }
}

TEST(LogRecordTest, TruncatedPayloadFailsDecode) {
  Bytes enc = LogRecord::Update(kTid, "server", "obj", {1}, {2}).Encode();
  enc.resize(enc.size() - 3);
  EXPECT_FALSE(LogRecord::Decode(enc).ok());
}

Async<void> ForceTask(StableLog& log, Lsn lsn, bool* durable) {
  *durable = co_await log.Force(lsn);
}

TEST(StableLogTest, AppendIsNotDurableUntilForced) {
  Scheduler sched;
  StableLog log(sched, LogConfig{});
  const Lsn lsn = log.Append(LogRecord::Abort(kTid));
  EXPECT_FALSE(log.IsDurable(lsn));
  bool done = false;
  sched.Spawn(ForceTask(log, lsn, &done));
  sched.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_TRUE(log.IsDurable(lsn));
  EXPECT_EQ(sched.now(), Usec(15000));  // One 15 ms force.
}

TEST(StableLogTest, ForceOfDurableLsnIsFree) {
  Scheduler sched;
  StableLog log(sched, LogConfig{});
  const Lsn lsn = log.Append(LogRecord::Abort(kTid));
  bool first = false;
  bool second = false;
  sched.Spawn(ForceTask(log, lsn, &first));
  sched.RunUntilIdle();
  const SimTime after_first = sched.now();
  sched.Spawn(ForceTask(log, lsn, &second));
  sched.RunUntilIdle();
  EXPECT_TRUE(second);
  EXPECT_EQ(sched.now(), after_first);  // No extra disk write.
  EXPECT_EQ(log.counters().disk_writes, 1u);
}

TEST(StableLogTest, GroupCommitBatchesConcurrentForces) {
  Scheduler sched;
  LogConfig cfg;
  cfg.group_commit = true;
  StableLog log(sched, cfg);
  // One force in flight; nine more arrive while the disk is busy.
  std::vector<Lsn> lsns;
  for (int i = 0; i < 10; ++i) {
    lsns.push_back(log.Append(LogRecord::Abort(kTid)));
  }
  int done_count = 0;
  for (int i = 0; i < 10; ++i) {
    sched.Spawn([](StableLog& l, Lsn lsn, int* done) -> Async<void> {
      co_await l.Force(lsn);
      ++*done;
    }(log, lsns[static_cast<size_t>(i)], &done_count));
  }
  sched.RunUntilIdle();
  EXPECT_EQ(done_count, 10);
  // First write takes whatever is buffered at daemon start — since all were
  // appended before any force ran, one physical write covers all ten.
  EXPECT_EQ(log.counters().disk_writes, 1u);
  EXPECT_EQ(sched.now(), Usec(15000));
}

TEST(StableLogTest, WithoutGroupCommitForcesSerialize) {
  Scheduler sched;
  LogConfig cfg;
  cfg.group_commit = false;
  StableLog log(sched, cfg);
  int done_count = 0;
  for (int i = 0; i < 4; ++i) {
    // Interleave append and force per transaction, as committers do.
    sched.Spawn([](StableLog& l, int* done) -> Async<void> {
      const Lsn lsn = l.Append(LogRecord::Abort(kTid));
      co_await l.Force(lsn);
      ++*done;
    }(log, &done_count));
  }
  sched.RunUntilIdle();
  EXPECT_EQ(done_count, 4);
  // All four appends happen at t=0 before the first write finishes; the first
  // force publishes only up to ITS lsn, so later forces still need their own
  // writes: four serial writes.
  EXPECT_EQ(log.counters().disk_writes, 4u);
  EXPECT_EQ(sched.now(), Usec(60000));
}

TEST(StableLogTest, GroupCommitSecondBatchCollectsArrivalsDuringWrite) {
  Scheduler sched;
  StableLog log(sched, LogConfig{});
  int done_count = 0;
  auto force_one = [&](SimDuration at) {
    sched.Post(at, [&] {
      sched.Spawn([](StableLog& l, int* done) -> Async<void> {
        const Lsn lsn = l.Append(LogRecord::Abort(kTid));
        co_await l.Force(lsn);
        ++*done;
      }(log, &done_count));
    });
  };
  force_one(0);          // Batch 1 (write t=0..15).
  force_one(Usec(3000));   // Arrive during write: batch 2.
  force_one(Usec(6000));   // Batch 2.
  force_one(Usec(9000));   // Batch 2.
  sched.RunUntilIdle();
  EXPECT_EQ(done_count, 4);
  EXPECT_EQ(log.counters().disk_writes, 2u);
  EXPECT_EQ(log.counters().records_batched, 2u);
  EXPECT_EQ(sched.now(), Usec(30000));
}

TEST(StableLogTest, ReadDurableReplaysExactlyTheForcedPrefix) {
  Scheduler sched;
  StableLog log(sched, LogConfig{});
  log.Append(LogRecord::Update(kTid, "s", "a", {1}, {2}));
  const Lsn forced = log.Append(LogRecord::Commit(kTid, {}));
  sched.Spawn([](StableLog& l, Lsn lsn) -> Async<void> { co_await l.Force(lsn); }(log, forced));
  sched.RunUntilIdle();
  log.Append(LogRecord::End(kTid));  // Appended after the force: not durable.

  auto records = log.ReadDurable();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, LogRecordKind::kUpdate);
  EXPECT_EQ(records[1].kind, LogRecordKind::kCommit);
  EXPECT_EQ(records[1].lsn, forced);
}

TEST(StableLogTest, CrashLosesUnforcedTail) {
  Scheduler sched;
  StableLog log(sched, LogConfig{});
  const Lsn first = log.Append(LogRecord::Abort(kTid));
  sched.Spawn([](StableLog& l, Lsn lsn) -> Async<void> { co_await l.Force(lsn); }(log, first));
  sched.RunUntilIdle();
  log.Append(LogRecord::Commit(kTid, {}));  // In the volatile tail.
  log.OnCrash();
  auto records = log.ReadDurable();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, LogRecordKind::kAbort);
  EXPECT_EQ(log.buffered_lsn(), log.durable_lsn());
}

TEST(StableLogTest, CrashMidWriteLeavesAtMostATornFrame) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Scheduler sched(seed);
    StableLog log(sched, LogConfig{});
    const Lsn lsn = log.Append(LogRecord::Update(kTid, "srv", "obj", Bytes(40, 1), Bytes(40, 2)));
    bool force_durable = true;
    sched.Spawn(ForceTask(log, lsn, &force_durable));
    sched.Post(Usec(7000), [&] { log.OnCrash(); });  // Mid-write (force = 15 ms).
    sched.RunUntilIdle();
    // Force must report the truth: durable iff the torn prefix covers the record.
    EXPECT_EQ(force_durable, log.IsDurable(lsn));
    // Replay must never see a half-record: either zero records or (if the torn
    // prefix happened to be complete) exactly one intact record.
    auto records = log.ReadDurable();
    EXPECT_LE(records.size(), 1u);
    if (records.size() == 1) {
      EXPECT_EQ(records[0].new_value, Bytes(40, 2));
    }
  }
}

TEST(StableLogTest, CorruptionStopsReplayAtBadFrame) {
  Scheduler sched;
  StableLog log(sched, LogConfig{});
  log.Append(LogRecord::Abort(kTid));
  const Lsn lsn = log.Append(LogRecord::End(kTid));
  sched.Spawn([](StableLog& l, Lsn x) -> Async<void> { co_await l.Force(x); }(log, lsn));
  sched.RunUntilIdle();
  ASSERT_EQ(log.ReadDurable().size(), 2u);
  log.CorruptDurableByte(2);  // Inside the first frame's header.
  EXPECT_TRUE(log.ReadDurable().empty());
}

TEST(StableLogTest, LogSurvivesCrashButTailDoesNot) {
  // Property sweep: random interleavings of appends, forces and one crash;
  // afterwards the replayed prefix must be a prefix of what was appended.
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Scheduler sched(seed);
    Rng rng(seed * 31);
    StableLog log(sched, LogConfig{});
    std::vector<uint8_t> appended;  // Marker byte per record, in order.
    int forced_count = 0;

    const int n = 12;
    for (int i = 0; i < n; ++i) {
      sched.Post(Usec(static_cast<int64_t>(rng.NextBounded(40000))), [&log, &appended, &sched, i,
                                                                      &forced_count, &rng] {
        const uint8_t marker = static_cast<uint8_t>(i);
        appended.push_back(marker);
        const Lsn lsn = log.Append(LogRecord::Update(kTid, "s", "o", {}, {marker}));
        if (rng.NextBool(0.7)) {
          sched.Spawn([](StableLog& l, Lsn x, int* cnt) -> Async<void> {
            co_await l.Force(x);
            ++*cnt;
          }(log, lsn, &forced_count));
        }
      });
    }
    // Crash strictly after the last append so the appended list stays a
    // faithful record of pre-crash order (a force may still be mid-write).
    sched.Post(Usec(41000), [&log] { log.OnCrash(); });
    sched.RunUntilIdle();

    auto records = log.ReadDurable();
    ASSERT_LE(records.size(), appended.size());
    for (size_t i = 0; i < records.size(); ++i) {
      ASSERT_EQ(records[i].new_value.size(), 1u);
      // Replay order must match append order (prefix property).
      EXPECT_EQ(records[i].new_value[0], appended[i]) << "seed " << seed;
    }
  }
}

// --- Duplexing and media corruption ------------------------------------------------

TEST(StableLogTest, DuplexForcesBothMirrorsInParallel) {
  Scheduler sched;
  LogConfig cfg;
  cfg.duplex = true;
  StableLog log(sched, cfg);
  const Lsn lsn = log.Append(LogRecord::Abort(kTid));
  bool done = false;
  sched.Spawn(ForceTask(log, lsn, &done));
  sched.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(sched.now(), Usec(15000));  // The mirrors are parallel, not serial.
  EXPECT_EQ(log.counters().disk_writes, 1u);
  EXPECT_EQ(log.counters().mirror_writes, 2u);
  EXPECT_EQ(log.ReadDurable().size(), 1u);
}

TEST(StableLogTest, DuplexSalvagesFrameFromIntactMirror) {
  Scheduler sched;
  LogConfig cfg;
  cfg.duplex = true;
  StableLog log(sched, cfg);
  log.Append(LogRecord::Update(kTid, "srv", "obj", {1}, {2}));
  const Lsn lsn = log.Append(LogRecord::Commit(kTid, {}));
  sched.Spawn([](StableLog& l, Lsn x) -> Async<void> { co_await l.Force(x); }(log, lsn));
  sched.RunUntilIdle();
  log.CorruptDurableByte(13, /*mirror=*/0);  // First frame's payload, primary copy.
  LogReplay replay = log.ReplayDurable();
  EXPECT_EQ(replay.end, LogScanEnd::kCleanEnd);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].kind, LogRecordKind::kUpdate);
  EXPECT_EQ(replay.records[0].new_value, (Bytes{2}));
  EXPECT_EQ(replay.frames_salvaged, 1u);
  EXPECT_EQ(log.counters().frames_salvaged, 1u);
  // The replay also repaired the damaged mirror in place: a second scan is clean.
  EXPECT_EQ(log.ReplayDurable().frames_salvaged, 0u);
}

TEST(StableLogTest, InteriorCorruptionIsLoudNotSilent) {
  Scheduler sched;
  StableLog log(sched, LogConfig{});  // Single log disk: nothing to salvage from.
  log.Append(LogRecord::Update(kTid, "srv", "obj", {1}, {2}));
  const Lsn lsn = log.Append(LogRecord::Commit(kTid, {}));
  sched.Spawn([](StableLog& l, Lsn x) -> Async<void> { co_await l.Force(x); }(log, lsn));
  sched.RunUntilIdle();
  log.CorruptDurableByte(13);  // First frame's payload: committed work is damaged.
  LogReplay replay = log.ReplayDurable();
  EXPECT_EQ(replay.end, LogScanEnd::kInteriorCorruption);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(log.counters().interior_corruption, 1u);
  // No truncation: the damaged image stays as evidence, nothing pretends the
  // log legitimately ends at the corruption.
  EXPECT_EQ(log.durable_lsn(), lsn);
}

TEST(StableLogTest, ReplayTruncatesTornTailSoNewAppendsExtendCleanLog) {
  // A crash mid-write can leave a torn final frame in the durable image.
  // ReplayDurable must classify it as a torn tail (not corruption) and
  // truncate it — otherwise the garbage sits mid-log forever and silently
  // ends every future replay there once new records are appended past it.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Scheduler sched(seed);
    StableLog log(sched, LogConfig{});
    const Lsn keep = log.Append(LogRecord::Abort(kTid));
    bool keep_durable = false;
    sched.Spawn(ForceTask(log, keep, &keep_durable));
    sched.RunUntilIdle();
    ASSERT_TRUE(keep_durable);
    const Lsn lost =
        log.Append(LogRecord::Update(kTid, "srv", "obj", Bytes(40, 1), Bytes(40, 2)));
    bool lost_durable = true;
    sched.Spawn(ForceTask(log, lost, &lost_durable));
    sched.Post(Usec(22000), [&] { log.OnCrash(); });  // Mid-write (15..30 ms).
    sched.RunUntilIdle();

    LogReplay replay = log.ReplayDurable();
    EXPECT_NE(replay.end, LogScanEnd::kInteriorCorruption) << "seed " << seed;
    ASSERT_GE(replay.records.size(), 1u);
    // The log now ends at the last intact frame; appending must extend it
    // cleanly and replay must see everything.
    const Lsn next = log.Append(LogRecord::End(kTid));
    bool next_durable = false;
    sched.Spawn(ForceTask(log, next, &next_durable));
    sched.RunUntilIdle();
    ASSERT_TRUE(next_durable);
    auto records = log.ReadDurable();
    ASSERT_EQ(records.size(), replay.records.size() + 1) << "seed " << seed;
    EXPECT_EQ(records.back().kind, LogRecordKind::kEnd);
  }
}

TEST(StableLogTest, DuplexCrashMidWriteNeverReadsAsInteriorCorruption) {
  // Each mirror keeps an independently torn prefix of an interrupted write;
  // replay must always classify the result as a (possibly clean) tail, and
  // Force's verdict must agree with what replay can actually recover.
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Scheduler sched(seed);
    LogConfig cfg;
    cfg.duplex = true;
    StableLog log(sched, cfg);
    const Lsn lsn =
        log.Append(LogRecord::Update(kTid, "srv", "obj", Bytes(40, 1), Bytes(40, 2)));
    bool durable = true;
    sched.Spawn(ForceTask(log, lsn, &durable));
    sched.Post(Usec(7000), [&] { log.OnCrash(); });
    sched.RunUntilIdle();
    LogReplay replay = log.ReplayDurable();
    EXPECT_NE(replay.end, LogScanEnd::kInteriorCorruption) << "seed " << seed;
    EXPECT_EQ(durable, replay.records.size() == 1u) << "seed " << seed;
  }
}

TEST(StableLogTest, TornForceFaultOnDuplexedLogLosesNothing) {
  // With torn-write faults on EVERY force, a duplexed log still replays all
  // records: a torn force damages one mirror per event and replay salvages
  // from the other copy.
  Scheduler sched;
  LogConfig cfg;
  cfg.duplex = true;
  cfg.faults.torn_write_probability = 1.0;
  StableLog log(sched, cfg);
  for (uint8_t i = 0; i < 8; ++i) {
    const Lsn lsn = log.Append(LogRecord::Update(kTid, "srv", "obj", {}, {i}));
    bool done = false;
    sched.Spawn(ForceTask(log, lsn, &done));
    sched.RunUntilIdle();
    ASSERT_TRUE(done);
  }
  EXPECT_EQ(log.counters().torn_writes_injected, 8u);
  LogReplay replay = log.ReplayDurable();
  EXPECT_EQ(replay.end, LogScanEnd::kCleanEnd);
  ASSERT_EQ(replay.records.size(), 8u);
  for (uint8_t i = 0; i < 8; ++i) {
    EXPECT_EQ(replay.records[i].new_value, (Bytes{i}));
  }
  // After the repairing replay both mirrors are whole again.
  EXPECT_EQ(log.ReplayDurable().frames_salvaged, 0u);
}

}  // namespace
}  // namespace camelot
