// Overload robustness: the capacity model, the overload oracle across all
// four commit variants, latency-storm recovery, the A/B proof that admission
// control is load-bearing (the shedding-disabled arm collapses), the
// off-path queue bound, and channel depth high-watermarks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/harness/load_gen.h"
#include "src/harness/overload_oracle.h"
#include "src/harness/replay.h"
#include "src/sim/channel.h"

namespace camelot {
namespace {

TEST(CapacityModelTest, PredictsAFiniteKnee) {
  OverloadExplorerConfig cfg;
  OverloadExplorer explorer(cfg);
  const CapacityModel model = explorer.Capacity();
  EXPECT_GT(model.predicted_tps, 0);
  EXPECT_GT(model.events, 4);   // Begin+commit+joins plus real datagrams.
  EXPECT_GE(model.forces, 2);   // Coordinator commit + subordinate prepare at least.
  EXPECT_GT(model.per_txn_pool_us, 0);
  // Unoptimized 2PC forces more, so its knee must be at or below Optimized's.
  OverloadExplorerConfig unopt = cfg;
  unopt.variant = CommitOptions::Unoptimized();
  EXPECT_LE(OverloadExplorer(unopt).Capacity().predicted_tps, model.predicted_tps);
}

TEST(ZipfianTest, SkewConcentratesOnHotKeys) {
  Rng rng(7);
  ZipfianGenerator zipf(100, 0.99);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[zipf.Next(rng)];
  }
  // The hottest key dominates any mid-range key under heavy skew.
  EXPECT_GT(counts[0], counts[50] * 5);
  // Uniform fallback: no key should dominate.
  ZipfianGenerator uniform(100, 0.0);
  std::vector<int> ucounts(100, 0);
  for (int i = 0; i < 10000; ++i) {
    ++ucounts[uniform.Next(rng)];
  }
  EXPECT_LT(ucounts[0], 300);
}

class OverloadVariants : public ::testing::TestWithParam<const char*> {};

TEST_P(OverloadVariants, SpikeSurvivesWithAdmissionControl) {
  OverloadExplorerConfig cfg;
  cfg.variant = *ParseProtocolName(GetParam());
  OverloadExplorer explorer(cfg);
  const OverloadRunResult result = explorer.Run();
  EXPECT_TRUE(result.ok) << result.Explain();
  // The spike must actually have pressed the admission machinery.
  EXPECT_GT(result.overload_rejects + result.deadline_shed + result.background.shed +
                result.spike.shed,
            0u)
      << "5x offered load never tripped admission control\n"
      << result.Explain();
}

INSTANTIATE_TEST_SUITE_P(AllCommitVariants, OverloadVariants,
                         ::testing::Values("2pc", "2pc-unopt", "2pc-int", "nbc"));

TEST(OverloadExplorerTest, LatencyStormRecovers) {
  OverloadExplorerConfig cfg;
  OverloadExplorer explorer(cfg);
  const OverloadRunResult result = explorer.RunLatencyStorm();
  EXPECT_TRUE(result.ok) << result.Explain();
}

TEST(OverloadExplorerTest, SheddingDisabledCollapses) {
  OverloadExplorerConfig cfg;
  cfg.shedding = false;
  OverloadExplorer explorer(cfg);
  const OverloadRunResult result = explorer.Run();
  // The collapse arm must exhibit the collapse signature...
  const std::vector<std::string> missing = OverloadExplorer::ExpectCollapse(result);
  EXPECT_TRUE(missing.empty()) << [&] {
    std::string out;
    for (const auto& m : missing) {
      out += m + "\n";
    }
    return out + result.Explain();
  }();
  // ...but even a collapsing system must stay SAFE: conservation and leak
  // freedom are audited in both arms (violations carry a "safety:" prefix).
  for (const auto& v : result.violations) {
    EXPECT_TRUE(v.find("safety:") == std::string::npos &&
                v.find("leak") == std::string::npos)
        << result.Explain();
  }
}

TEST(OverloadExplorerTest, OffPathQueueStaysBounded) {
  // The shedding run's world uses the default off-path bound; the counter
  // only moves when a destination backs up, so here we just assert the bound
  // plumbed through and the explorer surfaces the counter.
  OverloadExplorerConfig cfg;
  OverloadExplorer explorer(cfg);
  const OverloadRunResult result = explorer.Run();
  EXPECT_NE(result.queue_health.find("off-path dropped"), std::string::npos);
}

TEST(ChannelTest, DepthHighWatermarkTracksPeakBacklog) {
  Scheduler sched;
  Channel<int> ch(sched);
  for (int i = 0; i < 5; ++i) {
    ch.Send(i);
  }
  EXPECT_EQ(ch.high_watermark(), 5u);
  sched.Spawn([](Channel<int>& c) -> Async<void> {
    for (int i = 0; i < 5; ++i) {
      co_await c.Receive();
    }
  }(ch));
  sched.RunUntilIdle();
  ch.Send(9);  // Draining does not reset the peak.
  EXPECT_EQ(ch.high_watermark(), 5u);
}

}  // namespace
}  // namespace camelot
