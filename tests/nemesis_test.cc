// Tests for the network nemesis: script parsing / round-tripping, timed and
// trigger-driven application, relative-event chaining, re-install semantics,
// and HealAll's synthetic observer events.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/failpoint.h"
#include "src/harness/nemesis.h"
#include "src/net/network.h"
#include "src/sim/scheduler.h"

namespace camelot {
namespace {

NetConfig DeterministicConfig() {
  NetConfig cfg;
  cfg.send_jitter_mean = 0;
  cfg.stall_probability = 0;
  cfg.receive_skew_mean = 0;
  return cfg;
}

struct Rig {
  Rig() : sched(1), net(sched, DeterministicConfig()) {
    for (uint32_t i = 0; i < 3; ++i) {
      net.RegisterSite(SiteId{i});
    }
  }
  Scheduler sched;
  Network net;
  FailpointRegistry failpoints;
};

TEST(NemesisScriptTest, ParsesEveryEventForm) {
  auto script = NemesisScript::Parse(
      "@1000=partition:0|1,2;+2000=heal;tm.send.PREPARE@0#3=loss:0.25;+500=calm;"
      "@9=reorder:0.5,40000;@10=dup:0.1;@11=congest:15000;@12=partition:");
  ASSERT_TRUE(script.ok());
  const auto& ev = script->events;
  ASSERT_EQ(ev.size(), 8u);

  EXPECT_EQ(ev[0].when, NemesisEvent::When::kAbsolute);
  EXPECT_EQ(ev[0].at, Usec(1000));
  EXPECT_EQ(ev[0].action, NemesisEvent::Action::kPartition);
  ASSERT_EQ(ev[0].groups.size(), 2u);
  EXPECT_EQ(ev[0].groups[0], (std::vector<SiteId>{SiteId{0}}));
  EXPECT_EQ(ev[0].groups[1], (std::vector<SiteId>{SiteId{1}, SiteId{2}}));

  EXPECT_EQ(ev[1].when, NemesisEvent::When::kRelative);
  EXPECT_EQ(ev[1].at, Usec(2000));
  EXPECT_EQ(ev[1].action, NemesisEvent::Action::kHeal);

  EXPECT_EQ(ev[2].when, NemesisEvent::When::kTrigger);
  EXPECT_EQ(ev[2].point, "tm.send.PREPARE");
  EXPECT_EQ(ev[2].site, SiteId{0});
  EXPECT_EQ(ev[2].hit, 3u);
  EXPECT_EQ(ev[2].action, NemesisEvent::Action::kLoss);
  EXPECT_DOUBLE_EQ(ev[2].value, 0.25);

  EXPECT_EQ(ev[3].action, NemesisEvent::Action::kCalm);
  EXPECT_EQ(ev[4].action, NemesisEvent::Action::kReorder);
  EXPECT_DOUBLE_EQ(ev[4].value, 0.5);
  EXPECT_EQ(ev[4].duration, Usec(40000));
  EXPECT_EQ(ev[5].action, NemesisEvent::Action::kDup);
  EXPECT_EQ(ev[6].action, NemesisEvent::Action::kCongest);
  EXPECT_EQ(ev[6].duration, Usec(15000));
  EXPECT_EQ(ev[7].action, NemesisEvent::Action::kPartition);
  EXPECT_TRUE(ev[7].groups.empty());  // "partition:" isolates every site.
}

TEST(NemesisScriptTest, ToStringRoundTrips) {
  const std::string text =
      "@1000=partition:0|1,2;+2000=heal;tm.prepared@1#1=reorder:0.5,40000;+500=calm";
  auto script = NemesisScript::Parse(text);
  ASSERT_TRUE(script.ok());
  const std::string canonical = script->ToString();
  auto reparsed = NemesisScript::Parse(canonical);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToString(), canonical);
  ASSERT_EQ(reparsed->events.size(), script->events.size());
  EXPECT_EQ(reparsed->events[2].point, "tm.prepared");
  EXPECT_EQ(reparsed->events[2].duration, Usec(40000));
}

TEST(NemesisScriptTest, RejectsMalformedScripts) {
  EXPECT_FALSE(NemesisScript::Parse("no-equals").ok());
  EXPECT_FALSE(NemesisScript::Parse("=heal").ok());
  EXPECT_FALSE(NemesisScript::Parse("@abc=heal").ok());
  EXPECT_FALSE(NemesisScript::Parse("point#1=heal").ok());          // No @site.
  EXPECT_FALSE(NemesisScript::Parse("point@0#0=heal").ok());        // Hit is 1-based.
  EXPECT_FALSE(NemesisScript::Parse("@1=loss:1.5").ok());           // p > 1.
  EXPECT_FALSE(NemesisScript::Parse("@1=loss:").ok());
  EXPECT_FALSE(NemesisScript::Parse("@1=explode").ok());
  EXPECT_FALSE(NemesisScript::Parse("@1=partition:0|x").ok());
  EXPECT_FALSE(NemesisScript::Parse("@1=reorder:0.5,-3").ok());
  EXPECT_FALSE(NemesisScript::Parse("@1=congest:abc").ok());
}

TEST(NemesisTest, TimedEventsApplyAtTheirInstants) {
  Rig rig;
  Nemesis nemesis(rig.sched, rig.net);
  auto script = NemesisScript::Parse("@1000=partition:0|1,2;+2000=heal");
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(nemesis.Install(*script).ok());

  rig.sched.RunUntil(Usec(1500));
  EXPECT_TRUE(rig.net.IsPartitioned());
  EXPECT_FALSE(rig.net.CanCommunicate(SiteId{0}, SiteId{1}));
  EXPECT_EQ(nemesis.applied_count(), 1);

  // The relative heal chains off the partition's application: 1000 + 2000.
  rig.sched.RunUntil(Usec(3500));
  EXPECT_FALSE(rig.net.IsPartitioned());
  EXPECT_EQ(nemesis.applied_count(), 2);
  EXPECT_TRUE(nemesis.Unapplied().empty());
  ASSERT_EQ(nemesis.log().size(), 2u);
}

TEST(NemesisTest, TriggerEventFiresAtTheArmedHit) {
  Rig rig;
  Nemesis nemesis(rig.sched, rig.net, &rig.failpoints);
  auto script = NemesisScript::Parse("pt.x@1#2=partition:0|1,2;+1000=heal");
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(nemesis.Install(*script).ok());

  rig.failpoints.Eval("pt.x", SiteId{1}, rig.sched.now());
  EXPECT_EQ(nemesis.applied_count(), 0);  // First hit: not yet.
  rig.failpoints.Eval("pt.x", SiteId{2}, rig.sched.now());
  EXPECT_EQ(nemesis.applied_count(), 0);  // Wrong site: not counted for site 1.
  rig.failpoints.Eval("pt.x", SiteId{1}, rig.sched.now());
  EXPECT_EQ(nemesis.applied_count(), 1);  // Second hit at site 1: partition.
  EXPECT_TRUE(rig.net.IsPartitioned());

  // The relative heal chains off the trigger's application.
  rig.sched.RunUntilIdle();
  EXPECT_FALSE(rig.net.IsPartitioned());
  EXPECT_EQ(nemesis.applied_count(), 2);
}

TEST(NemesisTest, TriggerScriptWithoutRegistryIsRejected) {
  Rig rig;
  Nemesis nemesis(rig.sched, rig.net);  // No registry.
  auto script = NemesisScript::Parse("pt.x@1#1=heal");
  ASSERT_TRUE(script.ok());
  EXPECT_FALSE(nemesis.Install(*script).ok());
}

TEST(NemesisTest, ReinstallReplacesPendingScript) {
  Rig rig;
  Nemesis nemesis(rig.sched, rig.net);
  auto first = NemesisScript::Parse("@1000=partition:0|1,2");
  auto second = NemesisScript::Parse("@2000=partition:0,1|2");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(nemesis.Install(*first).ok());
  ASSERT_TRUE(nemesis.Install(*second).ok());  // Replaces before anything fired.

  rig.sched.RunUntilIdle();
  // Only the second script applied: 0 and 1 share a group.
  EXPECT_EQ(nemesis.applied_count(), 1);
  EXPECT_TRUE(rig.net.IsPartitioned());
  EXPECT_TRUE(rig.net.CanCommunicate(SiteId{0}, SiteId{1}));
  EXPECT_FALSE(rig.net.CanCommunicate(SiteId{0}, SiteId{2}));
}

TEST(NemesisTest, HealAllClearsFaultsAndNotifiesObserver) {
  Rig rig;
  Nemesis nemesis(rig.sched, rig.net);
  std::vector<NemesisEvent::Action> seen;
  nemesis.set_on_apply([&](const NemesisEvent& ev) { seen.push_back(ev.action); });
  auto script = NemesisScript::Parse("@1000=partition:0|1,2;@1500=loss:0.5");
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(nemesis.Install(*script).ok());
  rig.sched.RunUntilIdle();
  ASSERT_TRUE(rig.net.IsPartitioned());

  nemesis.HealAll();
  EXPECT_FALSE(rig.net.IsPartitioned());
  // Observer saw: partition, loss, then HealAll's synthetic heal + calm.
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[2], NemesisEvent::Action::kHeal);
  EXPECT_EQ(seen[3], NemesisEvent::Action::kCalm);
}

TEST(NemesisTest, UnappliedReportsUnfiredTriggers) {
  Rig rig;
  Nemesis nemesis(rig.sched, rig.net, &rig.failpoints);
  auto script = NemesisScript::Parse("pt.never@0#1=partition:0|1,2;+1000=heal");
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(nemesis.Install(*script).ok());
  rig.sched.RunUntilIdle();
  EXPECT_EQ(nemesis.applied_count(), 0);
  const auto unapplied = nemesis.Unapplied();
  ASSERT_EQ(unapplied.size(), 2u);  // The trigger and the heal chained behind it.
  EXPECT_EQ(unapplied[0], "pt.never@0#1=partition:0|1,2");
}

}  // namespace
}  // namespace camelot
