// Tests for the extension features: heuristic resolution of blocked
// transactions (LU 6.2, paper Section 5), quiescent checkpointing, and
// protocol robustness under message loss and duplication.
#include <gtest/gtest.h>

#include <string>

#include "src/harness/world.h"

namespace camelot {
namespace {

WorldConfig Quiet(int sites, uint64_t seed = 1) {
  WorldConfig cfg;
  cfg.site_count = sites;
  cfg.seed = seed;
  cfg.net.send_jitter_mean = 0;
  cfg.net.stall_probability = 0;
  cfg.net.receive_skew_mean = 0;
  cfg.tranman.outcome_timeout = Usec(400000);
  cfg.tranman.retry_interval = Usec(300000);
  return cfg;
}

std::string Srv(int i) { return "server:" + std::to_string(i); }

struct Rig {
  explicit Rig(WorldConfig cfg) : world(cfg), app(world.site(0)) {
    for (int i = 0; i < world.site_count(); ++i) {
      world.AddServer(i, Srv(i))->CreateObjectForSetup("acct", EncodeInt64(100));
    }
  }
  int64_t ReadAcct(int site, int from) {
    AppClient client(world.site(from));
    auto v = world.RunSync([](AppClient& a, std::string s) -> Async<int64_t> {
      auto b = co_await a.Begin();
      auto value = co_await a.ReadInt(*b, s, "acct");
      co_await a.Commit(*b);
      co_return value.value_or(-1);
    }(client, Srv(site)));
    return v.value_or(-1);
  }
  World world;
  AppClient app;
};

// Drives a 2-site update into the blocked state: subordinate prepared, then
// the coordinator crashes before deciding.
void BlockSubordinate(Rig& rig) {
  rig.world.failpoints().Arm(
      "tm.sub.prepare_force.after", SiteId{1},
      FailpointArm::Callback(1, [&rig] { rig.world.Crash(0); }));
  rig.world.sched().Spawn([](Rig& r) -> Async<void> {
    auto b = co_await r.app.Begin();
    co_await r.app.WriteInt(*b, Srv(0), "acct", 50);
    co_await r.app.WriteInt(*b, Srv(1), "acct", 150);
    co_await r.app.Commit(*b);
  }(rig));
  rig.world.RunUntilIdle();  // Subordinate parks blocked.
}

TEST(HeuristicTest, HeuristicAbortUnblocksAndReleasesLocks) {
  Rig rig(Quiet(2));
  BlockSubordinate(rig);
  const FamilyId family{SiteId{0}, 1};
  TranMan& sub = rig.world.site(1).tranman();
  ASSERT_EQ(sub.QueryState(family), TmTxnState::kPrepared);
  ASSERT_GT(rig.world.site(1).server(Srv(1))->locks().held_lock_count(), 0u);

  // Operator decides: abort.
  EXPECT_TRUE(sub.HeuristicResolve(family, TmDecision::kAbort).ok());
  rig.world.RunUntilIdle();
  EXPECT_EQ(sub.QueryState(family), TmTxnState::kAborted);
  EXPECT_EQ(rig.world.site(1).server(Srv(1))->locks().held_lock_count(), 0u);
  EXPECT_EQ(rig.ReadAcct(1, 1), 100);  // Undone.
  EXPECT_EQ(sub.counters().heuristic_resolutions, 1u);
  // The coordinator never decided, so there is no damage (yet).
  EXPECT_EQ(sub.counters().heuristic_damage, 0u);
}

TEST(HeuristicTest, HeuristicCommitAppliesTheUpdates) {
  Rig rig(Quiet(2));
  BlockSubordinate(rig);
  const FamilyId family{SiteId{0}, 1};
  TranMan& sub = rig.world.site(1).tranman();
  EXPECT_TRUE(sub.HeuristicResolve(family, TmDecision::kCommit).ok());
  rig.world.RunUntilIdle();
  EXPECT_EQ(sub.QueryState(family), TmTxnState::kCommitted);
  EXPECT_EQ(rig.ReadAcct(1, 1), 150);  // The prepared update took effect.
  EXPECT_EQ(rig.world.site(1).server(Srv(1))->locks().held_lock_count(), 0u);
}

TEST(HeuristicTest, DamageDetectedWhenRealOutcomeDisagrees) {
  Rig rig(Quiet(2));
  BlockSubordinate(rig);
  const FamilyId family{SiteId{0}, 1};
  TranMan& sub = rig.world.site(1).tranman();
  // The operator guesses COMMIT...
  ASSERT_TRUE(sub.HeuristicResolve(family, TmDecision::kCommit).ok());
  rig.world.RunUntilIdle();
  // ...but the restarted coordinator has no commit record: presumed ABORT.
  // Its recovered state answers the subordinate's (tombstoned) family via a
  // direct ABORT when the subordinate is probed... simulate the coordinator
  // side by restarting it; the SITE-UP beacon makes nothing happen for the
  // tombstone, so drive the contradiction explicitly with an abort datagram.
  rig.world.Restart(0);
  rig.world.RunUntilIdle();
  // The genuine outcome (presumed abort) arrives as an ABORT message.
  rig.world.net().Send(Datagram{SiteId{0}, SiteId{1}, kTranManService,
                                static_cast<uint32_t>(TmMsgType::kAbort), [&] {
                                  TmMsg abort;
                                  abort.type = TmMsgType::kAbort;
                                  abort.tid = Tid{family, 0, 0};
                                  abort.from = SiteId{0};
                                  // TranMan datagrams are batch containers.
                                  ByteWriter w;
                                  w.U16(1);
                                  w.Blob(abort.Encode());
                                  return w.Take();
                                }()});
  rig.world.RunUntilIdle();
  EXPECT_EQ(sub.counters().heuristic_damage, 1u);
}

TEST(HeuristicTest, OnlyPreparedTransactionsAreResolvable) {
  Rig rig(Quiet(2));
  TranMan& tm = rig.world.site(0).tranman();
  EXPECT_EQ(tm.HeuristicResolve(FamilyId{SiteId{0}, 99}, TmDecision::kAbort).code(),
            StatusCode::kNotFound);
  // An active (unprepared) transaction cannot be heuristically resolved.
  auto begin = rig.world.RunSync([](AppClient& a) -> Async<Tid> {
    auto b = co_await a.Begin();
    co_await a.WriteInt(*b, Srv(0), "acct", 1);
    co_return *b;
  }(rig.app));
  ASSERT_TRUE(begin.has_value());
  EXPECT_EQ(tm.HeuristicResolve(begin->family, TmDecision::kAbort).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, CheckpointSkipsReplayedPrefix) {
  Rig rig(Quiet(1));
  // Ten committed transactions, then a checkpoint, then two more.
  auto run_txns = [&](int n) {
    rig.world.RunSync([](AppClient& a, int count) -> Async<bool> {
      for (int i = 0; i < count; ++i) {
        auto b = co_await a.Begin();
        co_await a.WriteInt(*b, Srv(0), "acct", 100 + i);
        co_await a.Commit(*b);
      }
      co_return true;
    }(rig.app, n));
  };
  run_txns(10);
  auto checkpointed = rig.world.RunSync([](RecoveryManager& r) -> Async<Status> {
    Status st = co_await r.WriteCheckpoint();
    co_return st;
  }(rig.world.site(0).recovery()));
  ASSERT_TRUE(checkpointed.has_value());
  EXPECT_TRUE(checkpointed->ok()) << checkpointed->ToString();
  run_txns(2);

  rig.world.Crash(0);
  rig.world.Restart(0);
  rig.world.RunUntilIdle();
  // Only the post-checkpoint records were replayed, and the data is right.
  // (Recovery runs inside Restart; re-run it directly to read the report.)
  auto report = rig.world.RunSync([](World* w) -> Async<RecoveryReport> {
    RecoveryReport rep = co_await w->site(0).recovery().Recover(w->site(0).ServerMap());
    co_return rep;
  }(&rig.world));
  ASSERT_TRUE(report.has_value());
  // The pre-checkpoint records were physically reclaimed; replay saw only the
  // checkpoint record (skipped) plus the post-checkpoint transactions.
  EXPECT_EQ(report->records_skipped, 1u);
  EXPECT_LE(report->records_replayed, 4u);  // 2 txns x (update + commit).
  EXPECT_GT(rig.world.site(0).log().reclaimed_bytes(), 0u);
  EXPECT_EQ(rig.ReadAcct(0, 0), 101);  // The last committed value (100 + 1).
}

TEST(CheckpointTest, CheckpointRefusedWhileTransactionsLive) {
  Rig rig(Quiet(1));
  // Hold a transaction open across the checkpoint attempt.
  rig.world.sched().Spawn([](Rig* r) -> Async<void> {
    auto b = co_await r->app.Begin();
    co_await r->app.WriteInt(*b, Srv(0), "acct", 7);
    auto st = co_await r->world.site(0).recovery().WriteCheckpoint();
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
    co_await r->app.Commit(*b);
  }(&rig));
  rig.world.RunUntilIdle();
}

TEST(CheckpointTest, PreCheckpointDataSurvivesCrash) {
  Rig rig(Quiet(1));
  rig.world.RunSync([](AppClient& a) -> Async<bool> {
    auto b = co_await a.Begin();
    co_await a.WriteInt(*b, Srv(0), "acct", 777);
    co_await a.Commit(*b);
    co_return true;
  }(rig.app));
  rig.world.RunSync([](RecoveryManager& r) -> Async<Status> {
    Status st = co_await r.WriteCheckpoint();
    co_return st;
  }(rig.world.site(0).recovery()));
  rig.world.Crash(0);
  rig.world.Restart(0);
  rig.world.RunUntilIdle();
  // The value lives on the flushed data disk even though its log records are
  // behind the checkpoint and were not replayed.
  EXPECT_EQ(rig.ReadAcct(0, 0), 777);
}

// --- Protocol robustness under message loss/duplication, parameterized ---------

struct LossCase {
  double loss;
  double duplicates;
  uint8_t protocol;  // 0 = 2PC, 1 = NBC.
};

class LossSweepTest : public ::testing::TestWithParam<LossCase> {};

TEST_P(LossSweepTest, TransfersStayAtomicUnderUnreliableNetwork) {
  const LossCase param = GetParam();
  WorldConfig cfg = Quiet(3, 97);
  cfg.net.loss_probability = param.loss;
  cfg.net.duplicate_probability = param.duplicates;
  cfg.ipc.rpc_retry_interval = Usec(200000);
  Rig rig(cfg);
  const CommitOptions options = param.protocol == 0 ? CommitOptions::Optimized()
                                                    : CommitOptions::NonBlocking();
  int committed = 0;
  rig.world.sched().Spawn([](Rig* r, CommitOptions opts, int* ok) -> Async<void> {
    for (int i = 0; i < 6; ++i) {
      auto b = co_await r->app.Begin();
      const Tid tid = *b;
      auto v1 = co_await r->app.ReadInt(tid, Srv(1), "acct");
      auto v2 = co_await r->app.ReadInt(tid, Srv(2), "acct");
      if (!v1.ok() || !v2.ok()) {
        co_await r->app.Abort(tid);
        continue;
      }
      Status w1 = co_await r->app.WriteInt(tid, Srv(1), "acct", *v1 - 5);
      Status w2 = co_await r->app.WriteInt(tid, Srv(2), "acct", *v2 + 5);
      if (!w1.ok() || !w2.ok()) {
        co_await r->app.Abort(tid);
        continue;
      }
      Status st = co_await r->app.Commit(tid, opts);
      if (st.ok()) {
        ++*ok;
      }
    }
  }(&rig, options, &committed));
  rig.world.RunUntilIdle();

  // Whatever committed or aborted, money is conserved and nothing leaks.
  const int64_t total = rig.ReadAcct(1, 0) + rig.ReadAcct(2, 0);
  EXPECT_EQ(total, 200) << "committed=" << committed;
  EXPECT_EQ(rig.world.site(1).server(Srv(1))->locks().held_lock_count(), 0u);
  EXPECT_EQ(rig.world.site(2).server(Srv(2))->locks().held_lock_count(), 0u);
  EXPECT_GT(committed, 0);  // Retries must push most transactions through.
}

INSTANTIATE_TEST_SUITE_P(
    Networks, LossSweepTest,
    ::testing::Values(LossCase{0.05, 0.0, 0}, LossCase{0.15, 0.0, 0},
                      LossCase{0.0, 0.3, 0}, LossCase{0.10, 0.10, 0},
                      LossCase{0.05, 0.0, 1}, LossCase{0.15, 0.0, 1},
                      LossCase{0.0, 0.3, 1}, LossCase{0.10, 0.10, 1}),
    [](const ::testing::TestParamInfo<LossCase>& param_info) {
      char name[64];
      std::snprintf(name, sizeof(name), "%s_loss%d_dup%d",
                    param_info.param.protocol == 0 ? "TwoPhase" : "NonBlocking",
                    static_cast<int>(param_info.param.loss * 100),
                    static_cast<int>(param_info.param.duplicates * 100));
      return std::string(name);
    });

}  // namespace
}  // namespace camelot
