// Tests for the statistics utilities: summaries, tables, and ASCII charts.
#include <gtest/gtest.h>

#include "src/stats/ascii_chart.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace camelot {
namespace {

TEST(SummaryTest, MeanAndStddevMatchKnownValues) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // Sample stddev (n-1).
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(SummaryTest, EmptyAndSingletonAreSafe) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
}

TEST(SummaryTest, PercentilesNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
}

TEST(SummaryTest, MeanStddevStringFormat) {
  Summary s;
  s.Add(10.0);
  s.Add(20.0);
  EXPECT_EQ(s.MeanStddevString(1), "15.0 (7.1)");
}

TEST(SummaryTest, ClearResets) {
  Summary s;
  s.Add(1.0);
  s.Clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"A", "LONG HEADER"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer cell", "2"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("A            LONG HEADER"), std::string::npos);
  EXPECT_NE(out.find("-----------  -----------"), std::string::npos);
  EXPECT_NE(out.find("longer cell  2"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"A", "B", "C"});
  t.AddRow({"only one"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("only one"), std::string::npos);
}

TEST(TableTest, CsvEscapesQuotesAndCommas) {
  Table t({"name", "value"});
  t.AddRow({"with,comma", "with\"quote"});
  const std::string csv = t.RenderCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(AsciiChartTest, PlotsMarkersAndLegend) {
  AsciiChart chart("x", "y", 40, 10);
  chart.AddSeries("rising", '*', {0, 1, 2, 3}, {0, 10, 20, 30});
  const std::string out = chart.Render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* = rising"), std::string::npos);
  EXPECT_NE(out.find("(x)"), std::string::npos);
  // The max point appears near the top: first plotted row has a mark.
  const size_t first_line_end = out.find('\n');
  ASSERT_NE(first_line_end, std::string::npos);
}

TEST(AsciiChartTest, TwoSeriesBothVisible) {
  AsciiChart chart("n", "ms", 40, 12);
  chart.AddSeries("low", 'a', {0, 1, 2}, {1, 2, 3});
  chart.AddSeries("high", 'b', {0, 1, 2}, {10, 20, 30});
  const std::string out = chart.Render();
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiChartTest, EmptyAndDegenerateSeriesAreSafe) {
  AsciiChart empty("x", "y");
  EXPECT_FALSE(empty.Render().empty());

  AsciiChart flat("x", "y");
  flat.AddSeries("point", 'p', {5}, {5});  // Single point, zero x-range.
  EXPECT_NE(flat.Render().find('p'), std::string::npos);

  AsciiChart zero("x", "y");
  zero.AddSeries("zeros", 'z', {0, 1}, {0, 0});  // All-zero y.
  EXPECT_FALSE(zero.Render().empty());
}

}  // namespace
}  // namespace camelot
