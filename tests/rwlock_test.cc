// Tests for SimRwLock (the paper's "rw-lock" package): reader sharing, writer
// exclusion, no-starvation ordering, and a randomized invariant sweep.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/sim/rwlock.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"

namespace camelot {
namespace {

TEST(SimRwLockTest, ReadersShare) {
  Scheduler sched;
  SimRwLock rw(sched);
  int concurrent = 0;
  int max_concurrent = 0;
  for (int i = 0; i < 4; ++i) {
    sched.Spawn([](Scheduler& s, SimRwLock& lock, int* cur, int* peak) -> Async<void> {
      co_await lock.LockShared();
      ++*cur;
      *peak = std::max(*peak, *cur);
      co_await s.Delay(Msec(10));
      --*cur;
      lock.UnlockShared();
    }(sched, rw, &concurrent, &max_concurrent));
  }
  sched.RunUntilIdle();
  EXPECT_EQ(max_concurrent, 4);
  EXPECT_EQ(sched.now(), Msec(10));  // All in parallel.
}

TEST(SimRwLockTest, WriterExcludesEveryone) {
  Scheduler sched;
  SimRwLock rw(sched);
  std::vector<int> order;
  sched.Spawn([](Scheduler& s, SimRwLock& lock, std::vector<int>* out) -> Async<void> {
    co_await lock.LockExclusive();
    out->push_back(1);
    co_await s.Delay(Msec(10));
    out->push_back(2);
    lock.UnlockExclusive();
  }(sched, rw, &order));
  sched.Spawn([](Scheduler& s, SimRwLock& lock, std::vector<int>* out) -> Async<void> {
    co_await s.Delay(Msec(1));
    co_await lock.LockShared();
    out->push_back(3);
    lock.UnlockShared();
  }(sched, rw, &order));
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimRwLockTest, QueuedWriterBlocksNewReaders) {
  Scheduler sched;
  SimRwLock rw(sched);
  std::vector<char> order;
  // Reader A holds; writer W queues; reader B must NOT overtake W.
  sched.Spawn([](Scheduler& s, SimRwLock& lock, std::vector<char>* out) -> Async<void> {
    co_await lock.LockShared();
    co_await s.Delay(Msec(10));
    out->push_back('A');
    lock.UnlockShared();
  }(sched, rw, &order));
  sched.Spawn([](Scheduler& s, SimRwLock& lock, std::vector<char>* out) -> Async<void> {
    co_await s.Delay(Msec(1));
    co_await lock.LockExclusive();
    out->push_back('W');
    lock.UnlockExclusive();
  }(sched, rw, &order));
  sched.Spawn([](Scheduler& s, SimRwLock& lock, std::vector<char>* out) -> Async<void> {
    co_await s.Delay(Msec(2));
    co_await lock.LockShared();
    out->push_back('B');
    lock.UnlockShared();
  }(sched, rw, &order));
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<char>{'A', 'W', 'B'}));
}

TEST(SimRwLockTest, ReaderBatchWakesTogetherAfterWriter) {
  Scheduler sched;
  SimRwLock rw(sched);
  SimTime reader_done[3] = {0, 0, 0};
  sched.Spawn([](Scheduler& s, SimRwLock& lock) -> Async<void> {
    co_await lock.LockExclusive();
    co_await s.Delay(Msec(10));
    lock.UnlockExclusive();
  }(sched, rw));
  for (int i = 0; i < 3; ++i) {
    sched.Spawn([](Scheduler& s, SimRwLock& lock, SimTime* done) -> Async<void> {
      co_await s.Delay(Msec(1));
      co_await lock.LockShared();
      co_await s.Delay(Msec(5));
      *done = s.now();
      lock.UnlockShared();
    }(sched, rw, &reader_done[i]));
  }
  sched.RunUntilIdle();
  // All three readers ran concurrently after the writer: done at ~15 ms each.
  for (SimTime t : reader_done) {
    EXPECT_EQ(t, Msec(15));
  }
}

TEST(SimRwLockTest, RandomTrafficPreservesExclusionInvariant) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Scheduler sched(seed);
    SimRwLock rw(sched);
    Rng rng(seed * 17);
    int readers_in = 0;
    bool writer_in = false;
    int violations = 0;
    for (int i = 0; i < 12; ++i) {
      sched.Spawn([](Scheduler& s, SimRwLock& lock, Rng* r, int* readers, bool* writer,
                     int* bad) -> Async<void> {
        for (int step = 0; step < 20; ++step) {
          co_await s.Delay(Usec(static_cast<int64_t>(r->NextBounded(2000))));
          if (r->NextBool(0.3)) {
            co_await lock.LockExclusive();
            if (*readers != 0 || *writer) {
              ++*bad;
            }
            *writer = true;
            co_await s.Delay(Usec(static_cast<int64_t>(r->NextBounded(500))));
            *writer = false;
            lock.UnlockExclusive();
          } else {
            co_await lock.LockShared();
            if (*writer) {
              ++*bad;
            }
            ++*readers;
            co_await s.Delay(Usec(static_cast<int64_t>(r->NextBounded(500))));
            --*readers;
            lock.UnlockShared();
          }
        }
      }(sched, rw, &rng, &readers_in, &writer_in, &violations));
    }
    sched.RunUntilIdle();
    EXPECT_EQ(violations, 0) << "seed " << seed;
    EXPECT_EQ(rw.readers(), 0);
    EXPECT_FALSE(rw.writer_held());
    EXPECT_EQ(rw.waiter_count(), 0u);
  }
}

}  // namespace
}  // namespace camelot
