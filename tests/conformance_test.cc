// Primitive-cost conformance: every cell of the {variant, txn kind,
// subordinate count, outcome} matrix must execute EXACTLY the primitives the
// static analysis predicts, and take at least as long as the analysis's
// (deliberately underestimating) latency prediction. The mutation tests prove
// the oracle has teeth: an extra protocol log force — armed through the
// failpoint subsystem — is rejected with a per-primitive diff naming it.
#include "src/harness/conformance.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/static_analysis.h"
#include "src/base/failpoint.h"
#include "src/harness/world.h"
#include "src/stats/cost_ledger.h"

namespace camelot {
namespace {

std::string CellLabel(const std::string& variant, TxnKind kind, int subordinates,
                      TxnOutcome outcome) {
  return variant + "/" + (kind == TxnKind::kWrite ? "write" : "read") + "/subs=" +
         std::to_string(subordinates) + "/" +
         (outcome == TxnOutcome::kCommit ? "commit" : "abort");
}

// Drives every {kind, subs, outcome} cell for one commit variant and asserts
// exact count conformance plus the latency underestimate bias.
void RunVariantMatrix(const std::string& variant, const CommitOptions& options) {
  uint64_t seed = 1;
  for (const TxnKind kind : {TxnKind::kRead, TxnKind::kWrite}) {
    for (int subordinates = 0; subordinates <= 3; ++subordinates) {
      for (const TxnOutcome outcome : {TxnOutcome::kCommit, TxnOutcome::kAbort}) {
        ConformanceScenario scenario;
        scenario.options = options;
        scenario.kind = kind;
        scenario.subordinates = subordinates;
        scenario.outcome = outcome;
        scenario.seed = seed++;
        const ConformanceReport report = RunConformanceScenario(scenario);
        EXPECT_TRUE(report.ok())
            << CellLabel(variant, kind, subordinates, outcome) << "\n"
            << report.Explain();
      }
    }
  }
}

TEST(ConformanceMatrix, Optimized) {
  RunVariantMatrix("optimized", CommitOptions::Optimized());
}

TEST(ConformanceMatrix, Unoptimized) {
  RunVariantMatrix("unoptimized", CommitOptions::Unoptimized());
}

TEST(ConformanceMatrix, Intermediate) {
  RunVariantMatrix("intermediate", CommitOptions::Intermediate());
}

TEST(ConformanceMatrix, NonBlocking) {
  RunVariantMatrix("non_blocking", CommitOptions::NonBlocking());
}

// The acceptance-criterion mutation: arm one extra protocol log force through
// the failpoint subsystem and assert the oracle rejects the run with a diff
// naming the extra force. The callback fires when the subordinate passes its
// prepare-force point during the measured transaction and charges one more
// sub-side commit force to the ledger — exactly what a regression that
// re-introduced the Section 3.2 subordinate commit force would record.
TEST(ConformanceMutation, ExtraSubordinateForceIsRejected) {
  ConformanceScenario scenario;  // Optimized write, 1 subordinate, commit.
  const ConformanceReport report = RunConformanceScenario(
      scenario, [](World& world) {
        World* w = &world;
        world.failpoints().Arm(
            "tm.sub.prepare_force.after", SiteId{1},
            FailpointArm::Callback(1, [w] {
              w->cost_ledger().Record(CostEvent{FamilyId{}, SiteId{1}, "sub",
                                                "commit", CostPrimitive::kLogForce});
            }));
      });
  EXPECT_TRUE(report.txn_status.ok()) << report.txn_status.message();
  EXPECT_FALSE(report.counts_match);
  EXPECT_FALSE(report.ok());
  // The diff must name the extra primitive, with direction and magnitude.
  EXPECT_NE(report.diff.find("sub/commit/force"), std::string::npos) << report.diff;
  EXPECT_NE(report.diff.find("(+1)"), std::string::npos) << report.diff;
  EXPECT_NE(report.Explain().find("sub/commit/force"), std::string::npos);
}

// Cross-variant mutation: the Intermediate prediction (subordinate commit
// force kept, ack still delayed) must NOT match an Optimized run — the whole
// point of the Section 3.2 comparison is that the variants are separable by
// their primitive counts alone.
TEST(ConformanceMutation, IntermediatePredictionRejectsOptimizedRun) {
  ConformanceScenario scenario;  // Optimized write, 1 subordinate, commit.
  const ConformanceReport report = RunConformanceScenario(scenario);
  ASSERT_TRUE(report.ok()) << report.Explain();
  const CountVector wrong_prediction = ExpectedMinimalTxnCounts(
      CommitOptions::Intermediate(), TxnKind::kWrite, /*subordinates=*/1,
      TxnOutcome::kCommit);
  const std::string diff = CostLedger::Diff(wrong_prediction, report.measured);
  EXPECT_FALSE(diff.empty());
  EXPECT_NE(diff.find("sub/commit/force"), std::string::npos) << diff;
}

// A failed (aborted-by-fault) run is reported as such rather than silently
// compared: arm a drop that never fires during the measured window to check
// the prepare hook itself does not perturb counts.
TEST(ConformanceMutation, UnfiredArmDoesNotPerturbCounts) {
  ConformanceScenario scenario;
  const ConformanceReport report = RunConformanceScenario(
      scenario, [](World& world) {
        world.failpoints().Arm("tm.sub.prepare_force.after", SiteId{1},
                               FailpointArm::Drop(/*hit_number=*/1000));
      });
  EXPECT_TRUE(report.ok()) << report.Explain();
}

}  // namespace
}  // namespace camelot
