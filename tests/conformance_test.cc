// Primitive-cost conformance: every cell of the {variant, txn kind,
// subordinate count, outcome} matrix must execute EXACTLY the primitives the
// static analysis predicts, and take at least as long as the analysis's
// (deliberately underestimating) latency prediction. The mutation tests prove
// the oracle has teeth: an extra protocol log force — armed through the
// failpoint subsystem — is rejected with a per-primitive diff naming it.
#include "src/harness/conformance.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/static_analysis.h"
#include "src/base/failpoint.h"
#include "src/harness/world.h"
#include "src/stats/cost_ledger.h"

namespace camelot {
namespace {

std::string CellLabel(const std::string& variant, TxnKind kind, int subordinates,
                      TxnOutcome outcome) {
  return variant + "/" + (kind == TxnKind::kWrite ? "write" : "read") + "/subs=" +
         std::to_string(subordinates) + "/" +
         (outcome == TxnOutcome::kCommit ? "commit" : "abort");
}

// Drives every {kind, subs, outcome} cell for one commit variant and asserts
// exact count conformance plus the latency underestimate bias.
void RunVariantMatrix(const std::string& variant, const CommitOptions& options) {
  uint64_t seed = 1;
  for (const TxnKind kind : {TxnKind::kRead, TxnKind::kWrite}) {
    for (int subordinates = 0; subordinates <= 3; ++subordinates) {
      for (const TxnOutcome outcome : {TxnOutcome::kCommit, TxnOutcome::kAbort}) {
        ConformanceScenario scenario;
        scenario.options = options;
        scenario.kind = kind;
        scenario.subordinates = subordinates;
        scenario.outcome = outcome;
        scenario.seed = seed++;
        const ConformanceReport report = RunConformanceScenario(scenario);
        EXPECT_TRUE(report.ok())
            << CellLabel(variant, kind, subordinates, outcome) << "\n"
            << report.Explain();
      }
    }
  }
}

TEST(ConformanceMatrix, Optimized) {
  RunVariantMatrix("optimized", CommitOptions::Optimized());
}

TEST(ConformanceMatrix, Unoptimized) {
  RunVariantMatrix("unoptimized", CommitOptions::Unoptimized());
}

TEST(ConformanceMatrix, Intermediate) {
  RunVariantMatrix("intermediate", CommitOptions::Intermediate());
}

TEST(ConformanceMatrix, NonBlocking) {
  RunVariantMatrix("non_blocking", CommitOptions::NonBlocking());
}

TEST(ConformanceMatrix, PaxosF0) {
  RunVariantMatrix("paxos_f0", CommitOptions::Paxos(0));
}

TEST(ConformanceMatrix, PaxosF1) {
  RunVariantMatrix("paxos_f1", CommitOptions::Paxos(1));
}

// F = 2 with at most 3 subordinates exercises the acceptor-set clamp:
// min(2F+1, participants) pulled odd, so every cell runs at F_eff <= 1.
TEST(ConformanceMatrix, PaxosF2Clamped) {
  RunVariantMatrix("paxos_f2", CommitOptions::Paxos(2));
}

// Gray & Lamport's degenerate-case theorem, as executable fact: the PREDICTED
// F = 0 Paxos vector is the optimized two-phase vector in every cell, and a
// MEASURED F = 0 Paxos run matches the optimized two-phase prediction exactly.
TEST(ConformanceMatrix, PaxosF0CollapsesToOptimizedTwoPhase) {
  for (const TxnKind kind : {TxnKind::kRead, TxnKind::kWrite}) {
    for (int subordinates = 0; subordinates <= 3; ++subordinates) {
      for (const TxnOutcome outcome : {TxnOutcome::kCommit, TxnOutcome::kAbort}) {
        EXPECT_EQ(ExpectedMinimalTxnCounts(CommitOptions::Paxos(0), kind, subordinates, outcome),
                  ExpectedMinimalTxnCounts(CommitOptions::Optimized(), kind, subordinates,
                                           outcome))
            << CellLabel("paxos_f0-vs-optimized", kind, subordinates, outcome);
      }
    }
  }
  ConformanceScenario scenario;  // Write, 1 subordinate, commit.
  scenario.options = CommitOptions::Paxos(0);
  const ConformanceReport report = RunConformanceScenario(scenario);
  ASSERT_TRUE(report.txn_status.ok()) << report.txn_status.message();
  const CountVector optimized_prediction = ExpectedMinimalTxnCounts(
      CommitOptions::Optimized(), TxnKind::kWrite, /*subordinates=*/1, TxnOutcome::kCommit);
  EXPECT_EQ(CostLedger::Diff(optimized_prediction, report.measured), "");
}

// The acceptance-criterion mutation: arm one extra protocol log force through
// the failpoint subsystem and assert the oracle rejects the run with a diff
// naming the extra force. The callback fires when the subordinate passes its
// prepare-force point during the measured transaction and charges one more
// sub-side commit force to the ledger — exactly what a regression that
// re-introduced the Section 3.2 subordinate commit force would record.
TEST(ConformanceMutation, ExtraSubordinateForceIsRejected) {
  ConformanceScenario scenario;  // Optimized write, 1 subordinate, commit.
  const ConformanceReport report = RunConformanceScenario(
      scenario, [](World& world) {
        World* w = &world;
        world.failpoints().Arm(
            "tm.sub.prepare_force.after", SiteId{1},
            FailpointArm::Callback(1, [w] {
              w->cost_ledger().Record(CostEvent{FamilyId{}, SiteId{1}, "sub",
                                                "commit", CostPrimitive::kLogForce});
            }));
      });
  EXPECT_TRUE(report.txn_status.ok()) << report.txn_status.message();
  EXPECT_FALSE(report.counts_match);
  EXPECT_FALSE(report.ok());
  // The diff must name the extra primitive, with direction and magnitude.
  EXPECT_NE(report.diff.find("sub/commit/force"), std::string::npos) << report.diff;
  EXPECT_NE(report.diff.find("(+1)"), std::string::npos) << report.diff;
  EXPECT_NE(report.Explain().find("sub/commit/force"), std::string::npos);
}

// Cross-variant mutation: the Intermediate prediction (subordinate commit
// force kept, ack still delayed) must NOT match an Optimized run — the whole
// point of the Section 3.2 comparison is that the variants are separable by
// their primitive counts alone.
TEST(ConformanceMutation, IntermediatePredictionRejectsOptimizedRun) {
  ConformanceScenario scenario;  // Optimized write, 1 subordinate, commit.
  const ConformanceReport report = RunConformanceScenario(scenario);
  ASSERT_TRUE(report.ok()) << report.Explain();
  const CountVector wrong_prediction = ExpectedMinimalTxnCounts(
      CommitOptions::Intermediate(), TxnKind::kWrite, /*subordinates=*/1,
      TxnOutcome::kCommit);
  const std::string diff = CostLedger::Diff(wrong_prediction, report.measured);
  EXPECT_FALSE(diff.empty());
  EXPECT_NE(diff.find("sub/commit/force"), std::string::npos) << diff;
}

// Paxos mutation 1: fail one remote acceptor's ballot-0 accept force. Under
// F = 1 the transaction still commits (the other two acceptors are a quorum),
// but the oracle rejects the run with a diff naming the missing accept force.
TEST(ConformanceMutation, PaxosSkippedAcceptForceIsRejected) {
  ConformanceScenario scenario;
  scenario.options = CommitOptions::Paxos(1);
  scenario.kind = TxnKind::kWrite;
  scenario.subordinates = 2;  // Acceptor set = all three sites.
  const ConformanceReport report = RunConformanceScenario(
      scenario, [](World& world) {
        world.failpoints().Arm("tm.paxos.accept_force.before", SiteId{1},
                               FailpointArm::Error(/*hit_number=*/1));
      });
  EXPECT_TRUE(report.txn_status.ok()) << report.txn_status.message();
  EXPECT_FALSE(report.counts_match);
  EXPECT_NE(report.diff.find("acceptor/paxos.accept/force"), std::string::npos) << report.diff;
  EXPECT_NE(report.diff.find("(-1)"), std::string::npos) << report.diff;
}

// Paxos mutation 2: drop the coordinator's first notify-phase COMMIT
// datagram. The decision is already carried by the accept quorum, so the
// transaction still commits; the retransmitter re-multicasts to every
// un-acked subordinate, leaving a count vector indistinguishable from the
// fault-free run (a dropped multicast is never recorded). The hit-2 callback
// proves the retransmission really happened: a fault-free run evaluates the
// COMMIT send point exactly once.
TEST(ConformanceMutation, PaxosDroppedCommitDatagramStillCommits) {
  ConformanceScenario scenario;
  scenario.options = CommitOptions::Paxos(1);
  scenario.kind = TxnKind::kWrite;
  scenario.subordinates = 2;
  auto retransmitted = std::make_shared<bool>(false);
  const ConformanceReport report = RunConformanceScenario(
      scenario, [retransmitted](World& world) {
        world.failpoints().Arm("tm.send.COMMIT", SiteId{0},
                               FailpointArm::Drop(/*hit_number=*/1));
        world.failpoints().Arm(
            "tm.send.COMMIT", SiteId{0},
            FailpointArm::Callback(/*hit_number=*/2,
                                   [retransmitted] { *retransmitted = true; }));
      });
  EXPECT_TRUE(report.txn_status.ok()) << report.txn_status.message();
  EXPECT_TRUE(*retransmitted);
  EXPECT_TRUE(report.counts_match) << report.diff;
}

// A failed (aborted-by-fault) run is reported as such rather than silently
// compared: arm a drop that never fires during the measured window to check
// the prepare hook itself does not perturb counts.
TEST(ConformanceMutation, UnfiredArmDoesNotPerturbCounts) {
  ConformanceScenario scenario;
  const ConformanceReport report = RunConformanceScenario(
      scenario, [](World& world) {
        world.failpoints().Arm("tm.sub.prepare_force.after", SiteId{1},
                               FailpointArm::Drop(/*hit_number=*/1000));
      });
  EXPECT_TRUE(report.ok()) << report.Explain();
}

}  // namespace
}  // namespace camelot
