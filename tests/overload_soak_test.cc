// Overload soak (ctest label: soak): multi-seed overload-oracle runs across
// every commit variant, admission policy, and both spike kinds (load spike /
// congestion storm), plus shedding-disabled collapse confirmation. Failing
// runs append their replay recipe + queue-health report to
// overload_soak_failures.txt (directory overridden by CAMELOT_ARTIFACT_DIR)
// so CI uploads them as an artifact.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/harness/overload_oracle.h"
#include "src/harness/replay.h"
#include "src/tranman/local_api.h"

namespace camelot {
namespace {

std::string ArtifactPath() {
  const char* dir = std::getenv("CAMELOT_ARTIFACT_DIR");
  return (dir != nullptr ? std::string(dir) + "/" : std::string()) + "overload_soak_failures.txt";
}

void ReportFailure(const std::string& label, const OverloadRunResult& result) {
  ADD_FAILURE() << label << " violated the overload oracle:\n" << result.Explain();
  std::FILE* artifact = std::fopen(ArtifactPath().c_str(), "a");
  if (artifact != nullptr) {
    std::fprintf(artifact, "%s: %s\n%s", label.c_str(), result.replay.c_str(),
                 result.Explain().c_str());
    std::fclose(artifact);
  }
}

TEST(OverloadSoak, SpikesAcrossSeedsVariantsAndPolicies) {
  int runs = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (const char* name : {"2pc", "2pc-unopt", "2pc-int", "nbc"}) {
      for (const AdmissionPolicy policy :
           {AdmissionPolicy::kFifo, AdmissionPolicy::kLifo, AdmissionPolicy::kDeadlineDrop}) {
        OverloadExplorerConfig cfg;
        cfg.seed = seed;
        cfg.variant = *ParseProtocolName(name);
        cfg.admission_policy = policy;
        const OverloadRunResult result = OverloadExplorer(cfg).Run();
        ++runs;
        if (!result.ok) {
          ReportFailure(std::string(name) + " policy=" +
                            std::to_string(static_cast<int>(policy)) +
                            " seed=" + std::to_string(seed),
                        result);
        }
      }
    }
  }
  std::printf("overload soak: %d spike runs\n", runs);
  EXPECT_GE(runs, 36);
}

TEST(OverloadSoak, LatencyStormsAcrossSeeds) {
  int runs = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (const char* name : {"2pc", "nbc"}) {
      OverloadExplorerConfig cfg;
      cfg.seed = seed;
      cfg.variant = *ParseProtocolName(name);
      const OverloadRunResult result = OverloadExplorer(cfg).RunLatencyStorm();
      ++runs;
      if (!result.ok) {
        ReportFailure(std::string("storm ") + name + " seed=" + std::to_string(seed), result);
      }
    }
  }
  std::printf("overload soak: %d storm runs\n", runs);
}

TEST(OverloadSoak, CollapseArmStaysCollapsedAndSafe) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    OverloadExplorerConfig cfg;
    cfg.seed = seed;
    cfg.shedding = false;
    const OverloadRunResult result = OverloadExplorer(cfg).Run();
    const std::vector<std::string> missing = OverloadExplorer::ExpectCollapse(result);
    if (!missing.empty()) {
      OverloadRunResult annotated = result;
      annotated.violations = missing;
      ReportFailure("collapse arm seed=" + std::to_string(seed), annotated);
    }
    for (const auto& v : result.violations) {
      if (v.find("safety:") != std::string::npos || v.find("leak") != std::string::npos) {
        ReportFailure("collapse-arm safety seed=" + std::to_string(seed), result);
        break;
      }
    }
  }
}

}  // namespace
}  // namespace camelot
