// Name service: maps service names ("server:accounts") to the site hosting
// them. In Camelot this is provided by the NetMsgServer/ComMan pair; here it
// is a world-global registry, with lookups charged one local IPC (the paper's
// Figure 1, event 1: "Application uses the ComMan as a name server").
#ifndef SRC_IPC_NAME_SERVICE_H_
#define SRC_IPC_NAME_SERVICE_H_

#include <string>
#include <unordered_map>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/ipc/site.h"
#include "src/sim/task.h"

namespace camelot {

class NameService {
 public:
  Status Register(const std::string& name, SiteId site);
  void Unregister(const std::string& name);

  // Immediate lookup (no cost); used internally by system components.
  Result<SiteId> Resolve(const std::string& name) const;

  // Application-facing lookup: costs one local IPC to the ComMan.
  Async<Result<SiteId>> Lookup(Site& from, const std::string& name) const;

 private:
  std::unordered_map<std::string, SiteId> names_;
};

}  // namespace camelot

#endif  // SRC_IPC_NAME_SERVICE_H_
