// Token-bucket retry budget (the SRE "retry budget" pattern).
//
// Every FIRST attempt earns `ratio` tokens (capped at `cap`); every retry
// spends one. While the bucket is empty, retries are suppressed — so under
// overload the retry traffic is bounded to `ratio` of the fresh traffic and
// cannot amplify offered load into a metastable retry storm. A ratio <= 0
// makes the budget unlimited (every retry granted), which is the legacy
// behaviour and the A/B "shedding disabled" configuration.
#ifndef SRC_IPC_RETRY_BUDGET_H_
#define SRC_IPC_RETRY_BUDGET_H_

#include <algorithm>
#include <cstdint>

namespace camelot {

class RetryBudget {
 public:
  RetryBudget() = default;  // Unlimited.
  RetryBudget(double ratio, double cap) : ratio_(ratio), cap_(cap) {}

  bool unlimited() const { return ratio_ <= 0.0; }

  // Adopts new parameters (runtime reconfiguration); accumulated tokens are
  // clamped to the new cap, counters are preserved.
  void Configure(double ratio, double cap) {
    ratio_ = ratio;
    cap_ = cap;
    tokens_ = std::min(tokens_, std::max(cap_, 0.0));
  }

  // Call once per first attempt.
  void OnAttempt() {
    if (!unlimited()) {
      tokens_ = std::min(cap_, tokens_ + ratio_);
    }
  }

  // Returns true (and spends a token) if a retry may be sent now.
  bool TryRetry() {
    if (unlimited()) {
      ++granted_;
      return true;
    }
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      ++granted_;
      return true;
    }
    ++suppressed_;
    return false;
  }

  double tokens() const { return tokens_; }
  uint64_t granted() const { return granted_; }
  uint64_t suppressed() const { return suppressed_; }

 private:
  double ratio_ = 0.0;  // <= 0: unlimited.
  double cap_ = 0.0;
  double tokens_ = 0.0;
  uint64_t granted_ = 0;
  uint64_t suppressed_ = 0;
};

}  // namespace camelot

#endif  // SRC_IPC_RETRY_BUDGET_H_
