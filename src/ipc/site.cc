#include "src/ipc/site.h"

#include "src/base/logging.h"

namespace camelot {

namespace {

// "server:3" and "server:7" are the same kind of IPC target; the ledger keys
// by the service family, not the instance.
std::string ServicePhase(const std::string& service) {
  const size_t colon = service.find(':');
  return colon == std::string::npos ? service : service.substr(0, colon);
}

}  // namespace

Site::Site(Scheduler& sched, Network& net, SiteId id, IpcConfig ipc_config)
    : sched_(sched), net_(net), id_(id), ipc_config_(ipc_config), kernel_(sched) {
  net_.RegisterSite(id_);
}

void Site::Crash() {
  if (!up_) {
    return;
  }
  up_ = false;
  net_.CrashSite(id_);
  CTRACE("[%8.1fms] %s CRASH", ToMs(sched_.now()), ToString(id_).c_str());
  // Listeners close mailboxes and discard volatile state.
  for (auto& fn : crash_listeners_) {
    fn();
  }
}

void Site::Restart() {
  if (up_) {
    return;
  }
  up_ = true;
  ++incarnation_;
  net_.RestartSite(id_);
  CTRACE("[%8.1fms] %s RESTART (incarnation %u)", ToMs(sched_.now()), ToString(id_).c_str(),
         incarnation_);
  for (auto& fn : restart_listeners_) {
    fn();
  }
}

void Site::RegisterService(const std::string& name, Handler handler) {
  services_[name] = std::move(handler);
}

Async<RpcResult> Site::CallLocal(const std::string& service, uint32_t method, Bytes body,
                                 RpcContext ctx, bool to_data_server) {
  if (!up_) {
    co_return RpcResult{UnavailableError("site down"), {}};
  }
  SimDuration cost = to_data_server ? ipc_config_.local_rpc_server : ipc_config_.local_rpc;
  CostPrimitive primitive =
      to_data_server ? CostPrimitive::kLocalIpcServer : CostPrimitive::kLocalIpc;
  if (body.size() >= ipc_config_.out_of_line_threshold) {
    cost = ipc_config_.local_out_of_line;
    primitive = CostPrimitive::kLocalOutOfLine;
  }
  cost_recorder_.Record(ctx.tid.family, "ipc", ServicePhase(service), primitive);
  const uint32_t inc = incarnation_;
  co_await sched_.Delay(cost / 2);  // Request transfer.
  if (!up_ || incarnation_ != inc) {
    co_return RpcResult{UnavailableError("site crashed during call"), {}};
  }
  RpcResult result = co_await Dispatch(service, method, std::move(body), ctx);
  co_await sched_.Delay(cost - cost / 2);  // Reply transfer.
  if (!up_ || incarnation_ != inc) {
    co_return RpcResult{UnavailableError("site crashed during call"), {}};
  }
  co_return result;
}

namespace {

Async<void> RunOneWay(Site* site, std::string service, uint32_t method, Bytes body, RpcContext ctx,
                      SimDuration delay, uint32_t inc) {
  co_await site->sched().Delay(delay);
  if (!site->up() || site->incarnation() != inc) {
    co_return;
  }
  co_await site->Dispatch(service, method, std::move(body), ctx);
}

}  // namespace

void Site::NotifyLocal(const std::string& service, uint32_t method, Bytes body, RpcContext ctx) {
  if (!up_) {
    return;
  }
  cost_recorder_.Record(ctx.tid.family, "ipc", ServicePhase(service),
                        CostPrimitive::kLocalOneway);
  sched_.Spawn(RunOneWay(this, service, method, std::move(body), ctx, ipc_config_.local_oneway,
                         incarnation_));
}

Async<RpcResult> Site::Dispatch(const std::string& service, uint32_t method, Bytes body,
                                RpcContext ctx) {
  if (!up_) {
    co_return RpcResult{UnavailableError("site down"), {}};
  }
  auto it = services_.find(service);
  if (it == services_.end()) {
    co_return RpcResult{NotFoundError("no such service: " + service), {}};
  }
  // Copy the handler: a crash/restart may rebuild the registry mid-call.
  Handler handler = it->second;
  if (ipc_config_.kernel_cpu_per_ipc > 0) {
    // All message dispatch funnels through one kernel processor. The cost is
    // exponentially distributed around the configured mean: kernel work is
    // bursty, and that burstiness is what de-phases concurrent transactions.
    co_await kernel_.Lock();
    co_await sched_.Delay(static_cast<SimDuration>(
        sched_.rng().NextExponential(static_cast<double>(ipc_config_.kernel_cpu_per_ipc))));
    kernel_.Unlock();
    if (!up_) {
      co_return RpcResult{UnavailableError("site down"), {}};
    }
  }
  RpcResult result = co_await handler(ctx, method, std::move(body));
  co_return result;
}

}  // namespace camelot
