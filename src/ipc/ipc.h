// IPC cost model and common RPC types.
//
// All costs default to the paper's Table 2 / Section 4.1 measurements of Mach
// 2.0 on the IBM RT PC. Round-trip costs are split evenly between the request
// and reply directions when applied.
#ifndef SRC_IPC_IPC_H_
#define SRC_IPC_IPC_H_

#include <cstdint>
#include <string>

#include "src/base/codec.h"
#include "src/base/status.h"
#include "src/base/types.h"

namespace camelot {

struct IpcConfig {
  // Synchronous local call+reply between Camelot system processes (Table 2: 1.5 ms).
  SimDuration local_rpc = Usec(1500);
  // Synchronous local call+reply into a data server (Table 2: 3 ms).
  SimDuration local_rpc_server = Usec(3000);
  // One-way local in-line message (Table 2: 1 ms).
  SimDuration local_oneway = Usec(1000);
  // Local IPC carrying out-of-line (lazily mapped) data (Table 2: 5.5 ms).
  SimDuration local_out_of_line = Usec(5500);
  // Payloads at or above this size use out-of-line transfer.
  size_t out_of_line_threshold = 1024;

  // Base NetMsgServer-to-NetMsgServer RPC round trip (Section 4.1: 19.1 ms).
  SimDuration netmsg_rpc = Usec(19100);
  // ComMan <-> NetMsgServer IPC, round trip across both sites (Section 4.1: 2 x 1.5 ms).
  SimDuration comman_ipc_total = Usec(3000);
  // ComMan CPU per call at EACH site (Section 4.1: 3.2 ms per site).
  SimDuration comman_cpu_per_site = Usec(3200);

  // How long a remote RPC waits for its response before failing kTimedOut.
  SimDuration rpc_timeout = Sec(3.0);
  // Retransmit gaps while waiting: the first gap is rpc_retry_interval, then
  // capped jittered exponential backoff (x2 per attempt, ±20%, capped at
  // rpc_retry_cap) — fixed-interval retransmits from many callers march in
  // lockstep and re-lose together on a congested link.
  SimDuration rpc_retry_interval = Usec(500000);
  SimDuration rpc_retry_cap = Sec(2.0);
  // Token-bucket budget for retransmits: each fresh Call earns
  // rpc_retry_budget_ratio tokens (capped at rpc_retry_budget_cap); each
  // retransmit spends one. When empty, the caller keeps waiting without
  // resending, so retransmits cannot amplify offered load during overload.
  // ratio <= 0 (the default) = unlimited.
  double rpc_retry_budget_ratio = 0.0;
  double rpc_retry_budget_cap = 0.0;

  // Kernel CPU consumed per dispatched message, serialized on ONE processor.
  // Models the paper's Mach 2.0 "single run queue on one master processor";
  // 0 disables the bottleneck (the default for latency experiments, where one
  // transaction runs at a time and queueing never occurs).
  SimDuration kernel_cpu_per_ipc = 0;

  // Expected round trip of a Camelot remote RPC (the paper's 28.5 ms).
  SimDuration ExpectedRemoteRpc() const {
    return netmsg_rpc + comman_ipc_total + 2 * comman_cpu_per_site;
  }
};

// Per-call latency attribution, for the Section 4.1 breakdown bench.
struct RpcTrace {
  SimDuration netmsg = 0;      // Base NMS transport (both directions).
  SimDuration comman_ipc = 0;  // ComMan<->NMS hops.
  SimDuration comman_cpu = 0;  // ComMan processing.
  SimDuration server = 0;      // Time inside the remote handler.
  SimDuration total = 0;
};

// Context visible to an RPC handler.
struct RpcContext {
  SiteId caller_site = kInvalidSite;
  Tid tid = kInvalidTid;  // Transaction on whose behalf the call is made (may be invalid).
  // Client deadline (absolute virtual time; 0 = none), propagated on the wire
  // so servers can shed work that is already past the point of usefulness.
  SimTime deadline = 0;
};

// An RPC response: status code plus payload bytes.
struct RpcResult {
  Status status;
  Bytes body;
};

}  // namespace camelot

#endif  // SRC_IPC_IPC_H_
