// NetMsgServer: the per-site store-and-forward agent that carries RPCs between
// sites (the Mach network message server of the paper's Section 3.1).
//
// Requests and responses travel as datagrams over the Network; the
// NetMsgServer provides the "reliable connection" illusion by retransmitting
// requests and suppressing duplicates with a response cache. The Communication
// Manager (src/comman) interposes on this path, adding its costs and spying on
// transaction site lists via the decorator hooks below.
#ifndef SRC_IPC_NETMSG_H_
#define SRC_IPC_NETMSG_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/rng.h"
#include "src/ipc/ipc.h"
#include "src/ipc/retry_budget.h"
#include "src/ipc/site.h"
#include "src/net/network.h"
#include "src/sim/channel.h"

namespace camelot {

class NetMsgServer {
 public:
  NetMsgServer(Site& site, Network& net);

  // Synchronous remote RPC. `via_comman` charges the Communication Manager
  // costs on both sites (every Camelot data RPC sets this; see src/comman).
  // Retries until `site.ipc().rpc_timeout`, then fails kTimedOut.
  // `trace`, if non-null, receives the latency attribution.
  Async<RpcResult> Call(SiteId dst, const std::string& service, uint32_t method, Bytes body,
                        RpcContext ctx, bool via_comman, RpcTrace* trace = nullptr);

  // --- ComMan interposition hooks ---------------------------------------------
  // Called at the responding site to produce piggyback data attached to the
  // response (Camelot: the list of sites used to generate the response).
  void set_response_decorator(std::function<Bytes(const Tid&)> fn) {
    response_decorator_ = std::move(fn);
  }
  // Called at the caller when a response (with piggyback data) arrives; also
  // reports which site answered and that site's incarnation, so the ComMan
  // can detect a participant that crashed and restarted mid-transaction.
  void set_response_ingest(
      std::function<void(const Tid&, const Bytes&, SiteId, uint32_t)> fn) {
    response_ingest_ = std::move(fn);
  }
  // Called at the destination when a request on behalf of `tid` arrives from a
  // remote site (Camelot: the destination learns the caller participates).
  void set_request_ingest(std::function<void(const Tid&, SiteId)> fn) {
    request_ingest_ = std::move(fn);
  }

  // --- Retransmit observability -----------------------------------------------
  uint64_t calls() const { return calls_; }
  uint64_t retransmits() const { return retransmits_; }
  uint64_t retransmits_suppressed() const { return budget_.suppressed(); }
  // Virtual times of the most recent retransmits (bounded log), so tests can
  // assert concurrent callers do not retransmit in lockstep waves.
  const std::vector<SimTime>& retransmit_times() const { return retransmit_times_; }
  void clear_retransmit_times() { retransmit_times_.clear(); }

 private:
  struct PendingCall {
    std::shared_ptr<Channel<SharedBytes>> reply;  // Raw response wire bytes.
  };

  void OnDatagram(Datagram dg);
  void HandleRequest(SharedBytes wire);
  void HandleResponse(SharedBytes wire);
  Async<void> RunRequest(uint64_t rpc_id, SiteId caller, std::string service, uint32_t method,
                         bool via_comman, Tid tid, SimTime deadline, Bytes body);
  void SendResponse(SiteId dst, SharedBytes wire);
  void CacheResponse(uint64_t rpc_id, SharedBytes wire);

  // Next retransmit gap for `attempt` (0-based): capped jittered exponential
  // backoff, mirroring TranMan::Backoff.
  SimDuration RetryGap(int attempt);

  Site& site_;
  Network& net_;
  // Backoff jitter draws come from a per-site rng (NOT the shared scheduler
  // rng) so adding a retransmit never perturbs unrelated draws.
  Rng rng_;
  RetryBudget budget_;
  uint64_t calls_ = 0;
  uint64_t retransmits_ = 0;
  std::vector<SimTime> retransmit_times_;
  uint64_t next_rpc_id_ = 1;
  std::unordered_map<uint64_t, PendingCall> pending_;
  // Duplicate suppression: rpc_id -> cached response wire (bounded FIFO).
  // Shared buffers: re-serving a duplicate resends the cached wire without
  // copying it.
  std::unordered_map<uint64_t, SharedBytes> served_;
  std::deque<uint64_t> served_order_;
  std::unordered_map<uint64_t, bool> in_progress_;
  std::function<Bytes(const Tid&)> response_decorator_;
  std::function<void(const Tid&, const Bytes&, SiteId, uint32_t)> response_ingest_;
  std::function<void(const Tid&, SiteId)> request_ingest_;
};

}  // namespace camelot

#endif  // SRC_IPC_NETMSG_H_
