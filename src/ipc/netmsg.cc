#include "src/ipc/netmsg.h"

#include <utility>

#include "src/base/logging.h"

namespace camelot {

namespace {

constexpr uint32_t kRequestType = 1;
constexpr uint32_t kResponseType = 2;
constexpr size_t kServedCacheLimit = 8192;
constexpr size_t kRetransmitLogLimit = 4096;

struct RequestWire {
  uint64_t rpc_id;
  SiteId caller;
  std::string service;
  uint32_t method;
  bool via_comman;
  Tid tid;
  SimTime deadline;  // Client deadline (absolute virtual time; 0 = none).
  Bytes body;
};

Bytes EncodeRequest(const RequestWire& r) {
  ByteWriter w;
  w.U64(r.rpc_id);
  w.Site(r.caller);
  w.Str(r.service);
  w.U32(r.method);
  w.U8(r.via_comman ? 1 : 0);
  w.Transaction(r.tid);
  w.I64(r.deadline);
  w.Blob(r.body);
  return w.Take();
}

bool DecodeRequest(const Bytes& wire, RequestWire* out) {
  ByteReader r(wire);
  out->rpc_id = r.U64();
  out->caller = r.Site();
  out->service = r.Str();
  out->method = r.U32();
  out->via_comman = r.U8() != 0;
  out->tid = r.Transaction();
  out->deadline = r.I64();
  out->body = r.Blob();
  return r.ok();
}

struct ResponseWire {
  uint64_t rpc_id;
  uint32_t status_code;
  std::string status_msg;
  int64_t handler_us;  // Time spent inside the handler, for RpcTrace.
  Tid tid;
  SiteId responder;
  uint32_t incarnation;  // Responder's incarnation (crash detection).
  Bytes piggyback;  // ComMan site list, opaque to this layer.
  Bytes body;
};

Bytes EncodeResponse(const ResponseWire& r) {
  ByteWriter w;
  w.U64(r.rpc_id);
  w.U32(r.status_code);
  w.Str(r.status_msg);
  w.I64(r.handler_us);
  w.Transaction(r.tid);
  w.Site(r.responder);
  w.U32(r.incarnation);
  w.Blob(r.piggyback);
  w.Blob(r.body);
  return w.Take();
}

bool DecodeResponse(const Bytes& wire, ResponseWire* out) {
  ByteReader r(wire);
  out->rpc_id = r.U64();
  out->status_code = r.U32();
  out->status_msg = r.Str();
  out->handler_us = r.I64();
  out->tid = r.Transaction();
  out->responder = r.Site();
  out->incarnation = r.U32();
  out->piggyback = r.Blob();
  out->body = r.Blob();
  return r.ok();
}

}  // namespace

NetMsgServer::NetMsgServer(Site& site, Network& net)
    : site_(site),
      net_(net),
      rng_(0xa076'1d64'78bd'642fULL ^ (site.id().value * 0xe703'7ed1'a0b4'28dbULL)),
      budget_(site.ipc().rpc_retry_budget_ratio, site.ipc().rpc_retry_budget_cap) {
  net_.Bind(site_.id(), kNetMsgService, [this](Datagram dg) { OnDatagram(std::move(dg)); });
  site_.AddCrashListener([this] {
    // All connection state is volatile: pending callers see closed channels.
    for (auto& [id, call] : pending_) {
      call.reply->Close();
    }
    pending_.clear();
    served_.clear();
    served_order_.clear();
    in_progress_.clear();
  });
}

Async<RpcResult> NetMsgServer::Call(SiteId dst, const std::string& service, uint32_t method,
                                    Bytes body, RpcContext ctx, bool via_comman, RpcTrace* trace) {
  const SimTime start = site_.sched().now();
  const uint32_t inc = site_.incarnation();
  const IpcConfig& ipc = site_.ipc();
  site_.cost_recorder().Record(ctx.tid.family, "ipc", via_comman ? "comman" : "netmsg",
                               CostPrimitive::kRemoteRpc);

  // Caller-side ComMan interposition: client->ComMan->NMS instead of client->NMS.
  const SimDuration comman_leg = via_comman
      ? (ipc.comman_cpu_per_site / 2 + ipc.comman_ipc_total / 4)
      : 0;
  if (comman_leg > 0) {
    co_await site_.sched().Delay(comman_leg);
  }

  const uint64_t rpc_id = (static_cast<uint64_t>(site_.id().value) << 40) | next_rpc_id_++;
  RequestWire req{rpc_id, site_.id(), service, method, via_comman, ctx.tid, ctx.deadline,
                  std::move(body)};
  // Encoded once; every retransmit below resends the same shared buffer.
  const SharedBytes wire = EncodeRequest(req);

  auto reply = std::make_shared<Channel<SharedBytes>>(site_.sched());
  pending_[rpc_id] = PendingCall{reply};

  const SimTime deadline = site_.sched().now() + ipc.rpc_timeout;
  std::optional<SharedBytes> raw;
  ++calls_;
  // Budget knobs are re-read per call so harnesses can reconfigure a live
  // site (tokens and counters survive reconfiguration).
  budget_.Configure(ipc.rpc_retry_budget_ratio, ipc.rpc_retry_budget_cap);
  budget_.OnAttempt();
  int attempt = 0;
  while (true) {
    if (!site_.up() || site_.incarnation() != inc) {
      pending_.erase(rpc_id);
      co_return RpcResult{UnavailableError("caller site crashed"), {}};
    }
    if (attempt == 0) {
      net_.Send(Datagram{site_.id(), dst, kNetMsgService, kRequestType, wire});
    } else if (budget_.TryRetry()) {
      ++retransmits_;
      if (retransmit_times_.size() < kRetransmitLogLimit) {
        retransmit_times_.push_back(site_.sched().now());
      }
      net_.Send(Datagram{site_.id(), dst, kNetMsgService, kRequestType, wire});
      CDEBUG("[%8.1fms] %s nms retransmit rpc %llu -> %s", ToMs(site_.sched().now()),
             ToString(site_.id()).c_str(), static_cast<unsigned long long>(rpc_id),
             ToString(dst).c_str());
    }
    const SimDuration wait =
        std::min<SimDuration>(RetryGap(attempt++), deadline - site_.sched().now());
    if (wait <= 0) {
      break;
    }
    raw = co_await reply->ReceiveTimeout(wait);
    if (raw.has_value() || reply->closed()) {
      break;
    }
    if (site_.sched().now() >= deadline) {
      break;
    }
  }
  pending_.erase(rpc_id);

  if (!site_.up() || site_.incarnation() != inc) {
    co_return RpcResult{UnavailableError("caller site crashed"), {}};
  }
  if (!raw.has_value()) {
    co_return RpcResult{TimedOutError("no response from " + ToString(dst)), {}};
  }

  ResponseWire resp;
  if (!DecodeResponse(*raw, &resp)) {
    co_return RpcResult{CorruptionError("bad response wire format"), {}};
  }

  // Caller-side ComMan on the reply path: ingest the piggybacked site list
  // and the responder's incarnation.
  if (via_comman) {
    if (response_ingest_ && resp.tid.IsValid()) {
      response_ingest_(resp.tid, resp.piggyback, resp.responder, resp.incarnation);
    }
    co_await site_.sched().Delay(comman_leg);
  }

  if (trace != nullptr) {
    trace->total = site_.sched().now() - start;
    trace->server = resp.handler_us;
    trace->comman_cpu = via_comman ? 2 * ipc.comman_cpu_per_site : 0;
    trace->comman_ipc = via_comman ? ipc.comman_ipc_total : 0;
    trace->netmsg = trace->total - trace->comman_cpu - trace->comman_ipc - trace->server;
  }

  Status status = resp.status_code == 0
      ? OkStatus()
      : Status(static_cast<StatusCode>(resp.status_code), resp.status_msg);
  co_return RpcResult{std::move(status), std::move(resp.body)};
}

SimDuration NetMsgServer::RetryGap(int attempt) {
  const IpcConfig& ipc = site_.ipc();
  double d = static_cast<double>(ipc.rpc_retry_interval);
  const double cap = static_cast<double>(std::max(ipc.rpc_retry_cap, ipc.rpc_retry_interval));
  for (int i = 0; i < attempt && d < cap; ++i) {
    d *= 2.0;
  }
  d = std::min(d, cap);
  d *= 0.8 + 0.4 * rng_.NextDouble();  // ±20% jitter.
  return std::max<SimDuration>(static_cast<SimDuration>(d), 1);
}

void NetMsgServer::OnDatagram(Datagram dg) {
  if (!site_.up()) {
    return;
  }
  if (dg.type == kRequestType) {
    HandleRequest(std::move(dg.body));
  } else if (dg.type == kResponseType) {
    HandleResponse(std::move(dg.body));
  }
}

void NetMsgServer::HandleRequest(SharedBytes wire) {
  RequestWire req;
  if (!DecodeRequest(wire, &req)) {
    return;
  }
  // Duplicate suppression.
  if (auto it = served_.find(req.rpc_id); it != served_.end()) {
    SendResponse(req.caller, it->second);
    return;
  }
  if (in_progress_.contains(req.rpc_id)) {
    return;  // Original execution will respond.
  }
  in_progress_[req.rpc_id] = true;
  site_.sched().Spawn(RunRequest(req.rpc_id, req.caller, std::move(req.service), req.method,
                                 req.via_comman, req.tid, req.deadline, std::move(req.body)));
}

Async<void> NetMsgServer::RunRequest(uint64_t rpc_id, SiteId caller, std::string service,
                                     uint32_t method, bool via_comman, Tid tid, SimTime deadline,
                                     Bytes body) {
  const uint32_t inc = site_.incarnation();
  const IpcConfig& ipc = site_.ipc();

  // Destination-side ComMan interposition on the request path.
  if (via_comman) {
    if (request_ingest_ && tid.IsValid()) {
      request_ingest_(tid, caller);
    }
    co_await site_.sched().Delay(ipc.comman_cpu_per_site / 2 + ipc.comman_ipc_total / 4);
    if (!site_.up() || site_.incarnation() != inc) {
      co_return;
    }
  }

  const SimTime handler_start = site_.sched().now();
  RpcContext ctx{caller, tid, deadline};
  RpcResult result = co_await site_.Dispatch(service, method, std::move(body), ctx);
  const SimDuration handler_us = site_.sched().now() - handler_start;
  if (!site_.up() || site_.incarnation() != inc) {
    co_return;  // Crashed while processing: no response, caller times out.
  }

  // Destination-side ComMan on the reply path: attach the site list.
  Bytes piggyback;
  if (via_comman) {
    if (response_decorator_ && tid.IsValid()) {
      piggyback = response_decorator_(tid);
    }
    co_await site_.sched().Delay(ipc.comman_cpu_per_site / 2 + ipc.comman_ipc_total / 4);
    if (!site_.up() || site_.incarnation() != inc) {
      co_return;
    }
  }

  ResponseWire resp{rpc_id, static_cast<uint32_t>(result.status.code()), result.status.message(),
                    handler_us, tid, site_.id(), site_.incarnation(), std::move(piggyback),
                    std::move(result.body)};
  // One shared buffer backs the cache entry and the outgoing datagram.
  SharedBytes resp_wire = EncodeResponse(resp);
  in_progress_.erase(rpc_id);
  CacheResponse(rpc_id, resp_wire);
  SendResponse(caller, std::move(resp_wire));
}

void NetMsgServer::SendResponse(SiteId dst, SharedBytes wire) {
  net_.Send(Datagram{site_.id(), dst, kNetMsgService, kResponseType, std::move(wire)});
}

void NetMsgServer::CacheResponse(uint64_t rpc_id, SharedBytes wire) {
  served_[rpc_id] = std::move(wire);
  served_order_.push_back(rpc_id);
  while (served_order_.size() > kServedCacheLimit) {
    served_.erase(served_order_.front());
    served_order_.pop_front();
  }
}

void NetMsgServer::HandleResponse(SharedBytes wire) {
  ByteReader r(wire);
  const uint64_t rpc_id = r.U64();
  if (!r.ok()) {
    return;
  }
  auto it = pending_.find(rpc_id);
  if (it == pending_.end()) {
    return;  // Late or duplicate response.
  }
  it->second.reply->Send(std::move(wire));
  pending_.erase(it);
}

}  // namespace camelot
