// Site: one machine in the simulated distributed system.
//
// A Site hosts named services (the per-process request ports of the paper's
// Figure 1: application, data servers, TranMan, ComMan, Disk Manager,
// Recovery), provides local IPC with Mach-like costs, and implements crash /
// restart with an incarnation counter so that work spawned before a crash can
// detect that its world is gone.
#ifndef SRC_IPC_SITE_H_
#define SRC_IPC_SITE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/ipc/ipc.h"
#include "src/net/network.h"
#include "src/sim/scheduler.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/stats/cost_ledger.h"

namespace camelot {

class Site {
 public:
  // A service handler: processes one request and returns the response.
  using Handler = std::function<Async<RpcResult>(RpcContext, uint32_t method, Bytes body)>;

  Site(Scheduler& sched, Network& net, SiteId id, IpcConfig ipc_config);

  SiteId id() const { return id_; }
  Scheduler& sched() { return sched_; }
  Network& net() { return net_; }
  const IpcConfig& ipc() const { return ipc_config_; }
  // Experiments tune IPC costs between runs (never mid-call).
  IpcConfig& mutable_ipc() { return ipc_config_; }

  // Install the per-site cost recorder (inert by default). Every local IPC
  // records one ledger event keyed by the target service family.
  void set_cost_recorder(CostRecorder recorder) { cost_recorder_ = recorder; }
  const CostRecorder& cost_recorder() const { return cost_recorder_; }

  // --- Liveness ---------------------------------------------------------------
  bool up() const { return up_; }
  uint32_t incarnation() const { return incarnation_; }

  // Crash: the site stops sending and receiving; all registered crash listeners
  // fire (processes close their mailboxes); volatile state is lost by the
  // owning components.
  void Crash();
  // Restart: bumps the incarnation and fires restart listeners (components
  // rebuild volatile state and run recovery).
  void Restart();

  void AddCrashListener(std::function<void()> fn) { crash_listeners_.push_back(std::move(fn)); }
  void AddRestartListener(std::function<void()> fn) {
    restart_listeners_.push_back(std::move(fn));
  }

  // --- Services ---------------------------------------------------------------
  void RegisterService(const std::string& name, Handler handler);
  bool HasService(const std::string& name) const { return services_.contains(name); }

  // Synchronous local RPC to a service on this site. Applies the Mach local IPC
  // cost (split request/reply); `to_data_server` selects the heavier
  // local_rpc_server cost. Fails kUnavailable if the site is down or the
  // service is missing, kNotFound if the service does not exist.
  Async<RpcResult> CallLocal(const std::string& service, uint32_t method, Bytes body,
                             RpcContext ctx, bool to_data_server);

  // One-way local message (fire and forget, 1 ms). The handler's response is
  // discarded.
  void NotifyLocal(const std::string& service, uint32_t method, Bytes body, RpcContext ctx);

  // Dispatch used by the NetMsgServer when a remote request arrives. No local
  // IPC cost here; transport costs are charged by the caller.
  Async<RpcResult> Dispatch(const std::string& service, uint32_t method, Bytes body,
                            RpcContext ctx);

 private:
  Scheduler& sched_;
  Network& net_;
  SiteId id_;
  IpcConfig ipc_config_;
  SimMutex kernel_;  // The single master-processor run queue (see IpcConfig).
  CostRecorder cost_recorder_;
  bool up_ = true;
  uint32_t incarnation_ = 0;
  std::unordered_map<std::string, Handler> services_;
  std::vector<std::function<void()>> crash_listeners_;
  std::vector<std::function<void()>> restart_listeners_;
};

}  // namespace camelot

#endif  // SRC_IPC_SITE_H_
