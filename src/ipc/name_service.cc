#include "src/ipc/name_service.h"

namespace camelot {

Status NameService::Register(const std::string& name, SiteId site) {
  auto [it, inserted] = names_.emplace(name, site);
  if (!inserted) {
    return AlreadyExistsError("name already registered: " + name);
  }
  return OkStatus();
}

void NameService::Unregister(const std::string& name) { names_.erase(name); }

Result<SiteId> NameService::Resolve(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return NotFoundError("unknown service name: " + name);
  }
  return it->second;
}

Async<Result<SiteId>> NameService::Lookup(Site& from, const std::string& name) const {
  co_await from.sched().Delay(from.ipc().local_rpc);
  co_return Resolve(name);
}

}  // namespace camelot
