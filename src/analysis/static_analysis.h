// The paper's "static" (non-empirical) latency analysis (Section 4.2):
// protocol latency predicted as the sum of primitive costs along the
// completion path (until commit-transaction returns) or the critical path
// (until all locks are dropped). "Assuming that identical parallel operations
// proceed perfectly in parallel and have constant service time, the length of
// the critical path is simply that of the serial portion plus the time of the
// slowest of each group of parallel operations."
//
// The analysis deliberately ignores CPU time inside processes, so it tends to
// UNDERESTIMATE measured latency — reproducing that bias is part of the
// reproduction (Table 3).
#ifndef SRC_ANALYSIS_STATIC_ANALYSIS_H_
#define SRC_ANALYSIS_STATIC_ANALYSIS_H_

#include <string>
#include <vector>

#include "src/stats/cost_ledger.h"
#include "src/tranman/local_api.h"
#include "src/wal/log_record.h"

namespace camelot {

// Table 2 of the paper, in milliseconds.
struct PrimitiveCosts {
  double local_ipc = 1.5;         // Local in-line IPC (call + reply).
  double local_ipc_server = 3.0;  // Local in-line IPC to a data server.
  double local_out_of_line = 5.5;
  double local_oneway = 1.0;
  double remote_rpc = 29.0;       // Remote operation (28.5 RPC + 0.5 lock/data).
  double log_force = 15.0;
  double datagram = 10.0;
  double get_lock = 0.5;
  double drop_lock = 0.5;
};

enum class TxnKind { kRead, kWrite };

struct PathEvent {
  std::string name;
  double ms = 0;
};

struct PathAnalysis {
  std::vector<PathEvent> events;

  double TotalMs() const;
  // Compact formula, e.g. "2 LF + 3 DG + 1 RPC + 13.0ms local".
  std::string Formula() const;
};

// The shortest sequence of actions before the commit-transaction call returns.
PathAnalysis CompletionPath(CommitProtocol protocol, TxnKind kind, int subordinates,
                            const PrimitiveCosts& costs = {});

// Options-aware form: Paxos Commit's path depends on F (F = 0 collapses to the
// optimized two-phase path; F >= 1 swaps NBC's replicate round for a parallel
// accept round and spools the commit record). The protocol-only form above
// models kPaxos at F = 1.
PathAnalysis CompletionPath(const CommitOptions& options, TxnKind kind, int subordinates,
                            const PrimitiveCosts& costs = {});

// The shortest sequence of actions before ALL locks are dropped and the call
// has returned (always at least as long as the completion path).
PathAnalysis CriticalPath(CommitProtocol protocol, TxnKind kind, int subordinates,
                          const PrimitiveCosts& costs = {});

PathAnalysis CriticalPath(const CommitOptions& options, TxnKind kind, int subordinates,
                          const PrimitiveCosts& costs = {});

// The paper derives "transaction management cost" by subtracting operation
// processing: 3.5 ms for the local operation plus 29 ms per (serial) remote
// operation.
double OperationProcessingMs(int subordinates, const PrimitiveCosts& costs = {});

// --- Expected primitive-count vectors -----------------------------------------
//
// Where the path analyses above predict milliseconds, these predict the exact
// primitives a fault-free run performs, keyed like the CostLedger
// ("role/phase/primitive"). The ConformanceOracle (src/harness) asserts
// measured == predicted after every fault-free protocol run.

enum class TxnOutcome { kCommit, kAbort };

// Protocol-only counts (log forces, unforced protocol appends, datagrams) for
// one transaction family under `options`:
//   update_subs   subordinate sites whose servers voted kUpdate (U)
//   readonly_subs subordinate sites whose servers voted kReadOnly (R)
//   local_updates whether the coordinator's own site wrote (L)
// TxnOutcome::kAbort models a client-driven abort issued after the operations
// (before any prepare), the abort path the harness exercises.
//
// Captures the Section 3.2 optimization exactly: with
// force_subordinate_commit = false an update subordinate spools (never
// forces) its commit record and forces only before the delayed ack; the
// unoptimized protocol forces the commit record and acks immediately.
CountVector ExpectedProtocolCounts(const CommitOptions& options, int update_subs,
                                   int readonly_subs, bool local_updates, TxnOutcome outcome);

// Full conformance-domain counts (protocol counts plus the local/remote IPC
// layer) for the harness's minimal transaction: begin, one operation on the
// coordinator's server and one per subordinate site, then commit or abort.
// kWrite updates every site (U = subordinates, L = true); kRead reads
// everywhere (R = subordinates, L = false).
CountVector ExpectedMinimalTxnCounts(const CommitOptions& options, TxnKind kind,
                                     int subordinates, TxnOutcome outcome);

}  // namespace camelot

#endif  // SRC_ANALYSIS_STATIC_ANALYSIS_H_
