#include "src/analysis/static_analysis.h"

#include <cmath>
#include <cstdio>

namespace camelot {

double PathAnalysis::TotalMs() const {
  double total = 0;
  for (const auto& ev : events) {
    total += ev.ms;
  }
  return total;
}

std::string PathAnalysis::Formula() const {
  int forces = 0;
  int datagrams = 0;
  int rpcs = 0;
  double local = 0;
  for (const auto& ev : events) {
    if (ev.name.find("log force") != std::string::npos) {
      ++forces;
    } else if (ev.name.find("datagram") != std::string::npos) {
      ++datagrams;
    } else if (ev.name.find("remote op") != std::string::npos) {
      ++rpcs;
    } else {
      local += ev.ms;
    }
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%d LF + %d DG + %d RPC + %.1fms local", forces, datagrams,
                rpcs, local);
  return buf;
}

double OperationProcessingMs(int subordinates, const PrimitiveCosts& costs) {
  return (costs.local_ipc_server + costs.get_lock) + subordinates * costs.remote_rpc;
}

namespace {

// The shared front of every minimal transaction: begin, the (serial)
// operations at each site, and the commit call with the local vote.
void FrontEvents(PathAnalysis* path, TxnKind kind, int subordinates,
                 const PrimitiveCosts& c) {
  (void)kind;
  path->events.push_back({"begin-transaction (local IPC)", c.local_ipc});
  path->events.push_back({"local operation (IPC to server)", c.local_ipc_server});
  path->events.push_back({"join-transaction (local IPC)", c.local_ipc});
  path->events.push_back({"get lock", c.get_lock});
  for (int i = 0; i < subordinates; ++i) {
    path->events.push_back({"remote op " + std::to_string(i + 1), c.remote_rpc});
  }
  path->events.push_back({"commit-transaction call (local IPC)", c.local_ipc});
  path->events.push_back({"vote local server (local IPC)", c.local_ipc});
}

}  // namespace

PathAnalysis CompletionPath(CommitProtocol protocol, TxnKind kind, int subordinates,
                            const PrimitiveCosts& c) {
  PathAnalysis path;
  FrontEvents(&path, kind, subordinates, c);

  if (subordinates == 0) {
    if (kind == TxnKind::kWrite) {
      path.events.push_back({"commit log force", c.log_force});
    }
    return path;
  }

  if (protocol == CommitProtocol::kTwoPhase) {
    path.events.push_back({"prepare datagram", c.datagram});
    path.events.push_back({"subordinate vote (local IPC)", c.local_ipc});
    if (kind == TxnKind::kWrite) {
      path.events.push_back({"subordinate prepare log force", c.log_force});
    }
    path.events.push_back({"vote datagram", c.datagram});
    if (kind == TxnKind::kWrite) {
      path.events.push_back({"coordinator commit log force", c.log_force});
    }
    return path;
  }

  // Non-blocking commitment. Read-only transactions skip the coordinator
  // prepare, replication, and notify phases entirely (same shape as 2PC).
  if (kind == TxnKind::kRead) {
    path.events.push_back({"prepare datagram", c.datagram});
    path.events.push_back({"subordinate vote (local IPC)", c.local_ipc});
    path.events.push_back({"vote datagram", c.datagram});
    return path;
  }
  path.events.push_back({"coordinator prepare log force", c.log_force});
  path.events.push_back({"prepare datagram", c.datagram});
  path.events.push_back({"subordinate vote (local IPC)", c.local_ipc});
  path.events.push_back({"subordinate prepare log force", c.log_force});
  path.events.push_back({"vote datagram", c.datagram});
  path.events.push_back({"replicate datagram", c.datagram});
  path.events.push_back({"subordinate replication log force", c.log_force});
  path.events.push_back({"replicate-ack datagram", c.datagram});
  path.events.push_back({"coordinator commit log force", c.log_force});
  return path;
}

PathAnalysis CriticalPath(CommitProtocol protocol, TxnKind kind, int subordinates,
                          const PrimitiveCosts& c) {
  PathAnalysis path = CompletionPath(protocol, kind, subordinates, c);
  if (subordinates == 0) {
    path.events.push_back({"drop-locks call (local one-way)", c.local_oneway});
    path.events.push_back({"drop lock", c.drop_lock});
    return path;
  }
  if (kind == TxnKind::kWrite) {
    // "The length of the completion path is one datagram shorter for both
    // protocols": the outcome notification to the subordinates.
    path.events.push_back({"commit datagram", c.datagram});
    path.events.push_back({"subordinate drop-locks call (local one-way)", c.local_oneway});
    path.events.push_back({"drop lock", c.drop_lock});
  } else {
    // Read-only subordinates drop their (read) locks when they vote; only the
    // local read locks remain until the call returns.
    path.events.push_back({"drop-locks call (local one-way)", c.local_oneway});
    path.events.push_back({"drop lock", c.drop_lock});
  }
  return path;
}

}  // namespace camelot
