#include "src/analysis/static_analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace camelot {

double PathAnalysis::TotalMs() const {
  double total = 0;
  for (const auto& ev : events) {
    total += ev.ms;
  }
  return total;
}

std::string PathAnalysis::Formula() const {
  int forces = 0;
  int datagrams = 0;
  int rpcs = 0;
  double local = 0;
  for (const auto& ev : events) {
    if (ev.name.find("log force") != std::string::npos) {
      ++forces;
    } else if (ev.name.find("datagram") != std::string::npos) {
      ++datagrams;
    } else if (ev.name.find("remote op") != std::string::npos) {
      ++rpcs;
    } else {
      local += ev.ms;
    }
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%d LF + %d DG + %d RPC + %.1fms local", forces, datagrams,
                rpcs, local);
  return buf;
}

double OperationProcessingMs(int subordinates, const PrimitiveCosts& costs) {
  return (costs.local_ipc_server + costs.get_lock) + subordinates * costs.remote_rpc;
}

namespace {

// The shared front of every minimal transaction: begin, the (serial)
// operations at each site, and the commit call with the local vote.
void FrontEvents(PathAnalysis* path, TxnKind kind, int subordinates,
                 const PrimitiveCosts& c) {
  (void)kind;
  path->events.push_back({"begin-transaction (local IPC)", c.local_ipc});
  path->events.push_back({"local operation (IPC to server)", c.local_ipc_server});
  path->events.push_back({"join-transaction (local IPC)", c.local_ipc});
  path->events.push_back({"get lock", c.get_lock});
  for (int i = 0; i < subordinates; ++i) {
    path->events.push_back({"remote op " + std::to_string(i + 1), c.remote_rpc});
  }
  path->events.push_back({"commit-transaction call (local IPC)", c.local_ipc});
  path->events.push_back({"vote local server (local IPC)", c.local_ipc});
}

// Acceptor-set sizing, mirroring HandleCommit: min(2F+1, participants),
// clamped odd so quorums are strict majorities of the set.
int64_t PaxosAcceptorCount(uint32_t paxos_f, int64_t subordinates) {
  int64_t a = std::min<int64_t>(2 * static_cast<int64_t>(paxos_f) + 1, subordinates + 1);
  if (a % 2 == 0) {
    --a;
  }
  return a;
}

}  // namespace

PathAnalysis CompletionPath(const CommitOptions& options, TxnKind kind, int subordinates,
                            const PrimitiveCosts& c) {
  if (options.protocol != CommitProtocol::kPaxos) {
    return CompletionPath(options.protocol, kind, subordinates, c);
  }
  if (PaxosAcceptorCount(options.paxos_f, subordinates) <= 1) {
    // Gray & Lamport's degenerate case: F = 0 Paxos Commit IS the optimized
    // two-phase protocol, path for path.
    return CompletionPath(CommitProtocol::kTwoPhase, kind, subordinates, c);
  }
  PathAnalysis path;
  FrontEvents(&path, kind, subordinates, c);
  // Read-only transactions skip the prepare force, the accept round, and the
  // notify phase entirely (same shape as the other protocols).
  if (kind == TxnKind::kRead) {
    path.events.push_back({"prepare datagram", c.datagram});
    path.events.push_back({"subordinate vote (local IPC)", c.local_ipc});
    path.events.push_back({"vote datagram", c.datagram});
    return path;
  }
  // Votes fan to the whole acceptor set and the ballot-0 accepts proceed in
  // parallel, so F never appears in the path length. The commit record is only
  // spooled: F+1 durable accepts already carry the decision, which is how
  // Paxos Commit undercuts NBC by one force and one datagram.
  path.events.push_back({"coordinator prepare log force", c.log_force});
  path.events.push_back({"prepare datagram", c.datagram});
  path.events.push_back({"subordinate vote (local IPC)", c.local_ipc});
  path.events.push_back({"subordinate prepare log force", c.log_force});
  path.events.push_back({"vote datagram", c.datagram});
  path.events.push_back({"acceptor accept log force", c.log_force});
  path.events.push_back({"accepted datagram", c.datagram});
  return path;
}

PathAnalysis CompletionPath(CommitProtocol protocol, TxnKind kind, int subordinates,
                            const PrimitiveCosts& c) {
  if (protocol == CommitProtocol::kPaxos) {
    // Protocol-only callers get the smallest non-degenerate registrar (F = 1).
    return CompletionPath(CommitOptions::Paxos(1), kind, subordinates, c);
  }
  PathAnalysis path;
  FrontEvents(&path, kind, subordinates, c);

  if (subordinates == 0) {
    if (kind == TxnKind::kWrite) {
      path.events.push_back({"commit log force", c.log_force});
    }
    return path;
  }

  if (protocol == CommitProtocol::kTwoPhase) {
    path.events.push_back({"prepare datagram", c.datagram});
    path.events.push_back({"subordinate vote (local IPC)", c.local_ipc});
    if (kind == TxnKind::kWrite) {
      path.events.push_back({"subordinate prepare log force", c.log_force});
    }
    path.events.push_back({"vote datagram", c.datagram});
    if (kind == TxnKind::kWrite) {
      path.events.push_back({"coordinator commit log force", c.log_force});
    }
    return path;
  }

  // Non-blocking commitment. Read-only transactions skip the coordinator
  // prepare, replication, and notify phases entirely (same shape as 2PC).
  if (kind == TxnKind::kRead) {
    path.events.push_back({"prepare datagram", c.datagram});
    path.events.push_back({"subordinate vote (local IPC)", c.local_ipc});
    path.events.push_back({"vote datagram", c.datagram});
    return path;
  }
  path.events.push_back({"coordinator prepare log force", c.log_force});
  path.events.push_back({"prepare datagram", c.datagram});
  path.events.push_back({"subordinate vote (local IPC)", c.local_ipc});
  path.events.push_back({"subordinate prepare log force", c.log_force});
  path.events.push_back({"vote datagram", c.datagram});
  path.events.push_back({"replicate datagram", c.datagram});
  path.events.push_back({"subordinate replication log force", c.log_force});
  path.events.push_back({"replicate-ack datagram", c.datagram});
  path.events.push_back({"coordinator commit log force", c.log_force});
  return path;
}

CountVector ExpectedProtocolCounts(const CommitOptions& options, int update_subs,
                                   int readonly_subs, bool local_updates, TxnOutcome outcome) {
  CountVector counts;
  const int64_t u = update_subs;
  const int64_t r = readonly_subs;
  const int64_t s = u + r;
  auto add = [&counts](const char* key, int64_t n) {
    if (n > 0) {
      counts[key] += n;
    }
  };

  if (outcome == TxnOutcome::kAbort) {
    // Client abort before any prepare: one unforced abort record per
    // participant, one ABORT datagram per subordinate, no acks (presumed
    // abort), no forwards (each subordinate only knows the coordinator).
    add("coord/abort/spool", 1);
    add("coord/ABORT/dgram", s);
    add("sub/abort/spool", s);
    return counts;
  }

  if (s == 0) {
    // Local-only commit: one force iff anything was written.
    add("coord/local.commit/force", local_updates ? 1 : 0);
    return counts;
  }

  if (options.protocol == CommitProtocol::kPaxos) {
    const int64_t a = PaxosAcceptorCount(options.paxos_f, s);
    if (a <= 1) {
      // F_eff = 0: Gray & Lamport's theorem — Paxos Commit with a single
      // acceptor is EXACTLY the optimized two-phase protocol, count for count.
      return ExpectedProtocolCounts(CommitOptions::Optimized(), update_subs, readonly_subs,
                                    local_updates, outcome);
    }
    // Phase 1: prepare fan-out; every yes vote fans to the whole acceptor set
    // (the first `a` participant sites, coordinator first) minus its sender.
    add("coord/PREPARE/dgram", s);
    add("coord/paxos.prepare/force", local_updates ? 1 : 0);
    add("coord/VOTE/dgram", a - 1);
    add("sub/VOTE/dgram", s * a - (a - 1));
    add("sub/prepare/force", u);
    if (u == 0 && !local_updates) {
      // Entirely read-only: trivially committed, no accept round. The
      // lingering read-only acceptors are told the outcome and ack their
      // tombstones (the acks land on the retired family).
      add("coord/COMMIT/dgram", a - 1);
      add("sub/COMMIT-ACK/dgram", a - 1);
      return counts;
    }
    // Ballot-0 accepts: every acceptor forces one batched accept record; the
    // remote ones report theirs to the leader.
    add("acceptor/paxos.accept/force", a);
    add("acceptor/PAXOS-ACCEPTED/dgram", a - 1);
    // Commit point: spooled, never forced — F+1 durable accepts carry the
    // decision across any F crashes.
    add("coord/paxos.commit/spool", 1);
    // Notify phase: update subordinates plus the read-only remote acceptors
    // (update sites are assumed to occupy the front of the site list, which is
    // join order — how every harness workload builds it).
    const int64_t ro_acceptors = std::min(r, std::max<int64_t>(0, (a - 1) - u));
    add("coord/COMMIT/dgram", u + ro_acceptors);
    add("sub/COMMIT-ACK/dgram", u + ro_acceptors);
    add("sub/commit/spool", u);
    add("sub/ack/force", u);
    add("coord/end/spool", 1);
    return counts;
  }

  // Phase 1 is shared: prepare fan-out, one vote each, a prepare force at
  // every update subordinate (read-only voters write nothing).
  add("coord/PREPARE/dgram", s);
  add("sub/VOTE/dgram", s);
  add("sub/prepare/force", u);

  if (options.protocol == CommitProtocol::kTwoPhase) {
    if (u == 0 && !local_updates) {
      return counts;  // Entirely read-only: no commit record, no phase 2.
    }
    add("coord/2pc.commit/force", 1);
    add("coord/end/spool", 1);
    add("coord/COMMIT/dgram", u);
    add("sub/COMMIT-ACK/dgram", u);
    if (options.force_subordinate_commit) {
      add("sub/commit/force", u);
      // The intermediate variant forces AND delays the ack behind an ack
      // force; the unoptimized baseline acks immediately after its force.
      add("sub/ack/force", options.piggyback_commit_ack ? u : 0);
    } else {
      // Section 3.2: the subordinate spools its commit record and forces
      // only before the (delayed, piggybacked) ack.
      add("sub/commit/spool", u);
      add("sub/ack/force", u);
    }
    return counts;
  }

  // Non-blocking commitment.
  if (u == 0) {
    // Every subordinate read-only: the local commit record alone decides;
    // passive acceptors are told the outcome and ack their tombstones.
    add("coord/local.commit/force", local_updates ? 1 : 0);
    add("coord/COMMIT/dgram", s);
    add("sub/COMMIT-ACK/dgram", s);
    return counts;
  }
  add("coord/nbc.prepare/force", local_updates ? 1 : 0);
  add("coord/nbc.replicate/force", 1);
  // Replication targets: the update subordinates, widened to the read-only
  // pool when the update sites (plus the coordinator) cannot form the quorum.
  const int64_t n = s + 1;
  const int64_t commit_quorum = n / 2 + 1;
  const int64_t targets = (u + 1 >= commit_quorum) ? u : s;
  add("coord/REPLICATE/dgram", targets);
  add("sub/accept.replicate/force", targets);
  add("sub/REPLICATE-ACK/dgram", targets);
  add("coord/nbc.commit/force", 1);
  // Notify phase covers every subordinate: update subs spool + ack-force,
  // passive acceptors ack immediately.
  add("coord/COMMIT/dgram", s);
  add("sub/COMMIT-ACK/dgram", s);
  add("sub/commit/spool", u);
  add("sub/ack/force", u);
  add("coord/end/spool", 1);
  return counts;
}

CountVector ExpectedMinimalTxnCounts(const CommitOptions& options, TxnKind kind,
                                     int subordinates, TxnOutcome outcome) {
  const int64_t s = subordinates;
  const bool write = kind == TxnKind::kWrite;
  CountVector counts = ExpectedProtocolCounts(options, write ? subordinates : 0,
                                              write ? 0 : subordinates, write, outcome);
  auto add = [&counts](const char* key, int64_t n) {
    if (n > 0) {
      counts[key] += n;
    }
  };
  // Begin + one join per participating site + the commit (or abort) call.
  add("ipc/tranman/call", s + 3);
  // The coordinator's own operation is a local data-server IPC; each
  // subordinate operation is one ComMan-mediated remote RPC.
  add("ipc/server/server_call", 1);
  add("ipc/comman/rpc", s);
  if (outcome == TxnOutcome::kCommit) {
    // One local vote upcall per site, one drop-locks one-way per site.
    add("ipc/server/call", s + 1);
    add("ipc/server/oneway", s + 1);
  } else {
    // Abort: no votes; each site's abort-family call undoes and drops locks.
    add("ipc/server/call", s + 1);
  }
  return counts;
}

namespace {

void AppendCriticalTail(PathAnalysis* path, TxnKind kind, int subordinates,
                        const PrimitiveCosts& c) {
  if (subordinates == 0) {
    path->events.push_back({"drop-locks call (local one-way)", c.local_oneway});
    path->events.push_back({"drop lock", c.drop_lock});
    return;
  }
  if (kind == TxnKind::kWrite) {
    path->events.push_back({"commit datagram", c.datagram});
    path->events.push_back({"subordinate drop-locks call (local one-way)", c.local_oneway});
    path->events.push_back({"drop lock", c.drop_lock});
  } else {
    path->events.push_back({"drop-locks call (local one-way)", c.local_oneway});
    path->events.push_back({"drop lock", c.drop_lock});
  }
}

}  // namespace

PathAnalysis CriticalPath(const CommitOptions& options, TxnKind kind, int subordinates,
                          const PrimitiveCosts& c) {
  PathAnalysis path = CompletionPath(options, kind, subordinates, c);
  AppendCriticalTail(&path, kind, subordinates, c);
  return path;
}

PathAnalysis CriticalPath(CommitProtocol protocol, TxnKind kind, int subordinates,
                          const PrimitiveCosts& c) {
  PathAnalysis path = CompletionPath(protocol, kind, subordinates, c);
  if (subordinates == 0) {
    path.events.push_back({"drop-locks call (local one-way)", c.local_oneway});
    path.events.push_back({"drop lock", c.drop_lock});
    return path;
  }
  if (kind == TxnKind::kWrite) {
    // "The length of the completion path is one datagram shorter for both
    // protocols": the outcome notification to the subordinates.
    path.events.push_back({"commit datagram", c.datagram});
    path.events.push_back({"subordinate drop-locks call (local one-way)", c.local_oneway});
    path.events.push_back({"drop lock", c.drop_lock});
  } else {
    // Read-only subordinates drop their (read) locks when they vote; only the
    // local read locks remain until the call returns.
    path.events.push_back({"drop-locks call (local one-way)", c.local_oneway});
    path.events.push_back({"drop lock", c.drop_lock});
  }
  return path;
}

}  // namespace camelot
