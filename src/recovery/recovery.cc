#include "src/recovery/recovery.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "src/base/logging.h"

namespace camelot {

namespace {

struct FamilyTrace {
  Tid top;
  bool committed = false;
  bool aborted = false;
  bool ended = false;
  bool prepared = false;
  LogRecord prepare;      // Last prepare record.
  bool has_replication = false;
  LogRecord replication;  // Highest-epoch replication record.
  std::vector<SiteId> commit_sites;  // Subordinates listed in our commit record.
  std::vector<const LogRecord*> updates;  // In log order.
  std::set<std::string> servers;
};

}  // namespace

RecoveryManager::RecoveryManager(Site& site, DiskManager& diskmgr, StableLog& log,
                                 TranMan& tranman)
    : site_(site), diskmgr_(diskmgr), log_(log), tranman_(tranman) {}

bool RecoveryManager::AtPoint(const char* point) {
  if (failpoints_.active()) {
    failpoints_.Eval(point);
  }
  return !site_.up();
}

Async<Status> RecoveryManager::WriteCheckpoint() {
  if (tranman_.live_family_count() != 0) {
    co_return FailedPreconditionError("live transactions present; checkpoint must be quiescent");
  }
  co_await diskmgr_.FlushAll();
  if (tranman_.live_family_count() != 0) {
    co_return FailedPreconditionError("transaction began during checkpoint flush");
  }
  if (AtPoint("recovery.checkpoint_force.before")) {
    co_return UnavailableError("crashed before checkpoint force");
  }
  const Lsn lsn = log_.Append(LogRecord::Checkpoint());
  const bool durable = co_await log_.Force(lsn);
  if (!durable || !site_.up()) {
    co_return UnavailableError("crashed during checkpoint force");
  }
  if (AtPoint("recovery.checkpoint_force.after")) {
    co_return UnavailableError("crashed after checkpoint force");
  }
  // Everything before the checkpoint record is flushed data of finished
  // transactions: reclaim the space — but retain the configured number of
  // checkpoint generations, because media recovery rebuilds a corrupt page by
  // redoing its history, and a page damaged AFTER the checkpoint flushed it
  // needs the previous interval's records (a bounded on-disk archive).
  const size_t keep = static_cast<size_t>(
      std::max(1, log_.config().checkpoint_generations_retained));
  std::vector<uint64_t> starts;  // Frame-start offset of each checkpoint record.
  uint64_t prev = log_.reclaimed_bytes();
  for (const LogRecord& rec : log_.ReadDurable()) {
    if (rec.kind == LogRecordKind::kCheckpoint) {
      starts.push_back(prev);
    }
    prev = rec.lsn.value;
  }
  if (starts.size() >= keep) {
    log_.ReclaimBefore(Lsn{starts[starts.size() - keep]});
  }
  co_return OkStatus();
}

Async<RecoveryReport> RecoveryManager::Recover(
    const std::map<std::string, DataServer*>& servers) {
  RecoveryReport report;
  LogReplay replay = log_.ReplayDurable();
  report.frames_salvaged = replay.frames_salvaged;
  if (replay.end == LogScanEnd::kInteriorCorruption) {
    // A complete interior frame failed CRC on every mirror: the disk lost
    // committed work. Replaying the prefix and carrying on would silently
    // drop transactions that were acknowledged as durable — refuse instead.
    report.status = CorruptionError(
        "log interior corruption: committed work lost; refusing to silently truncate replay");
    CTRACE("[%8.1fms] %s recovery FAILED: interior log corruption after %zu records",
           ToMs(site_.sched().now()), ToString(site_.id()).c_str(), replay.records.size());
    co_return report;
  }
  std::vector<LogRecord> records = std::move(replay.records);
  // Replay starts at the LAST durable checkpoint: everything before it is
  // flushed data of finished transactions.
  size_t start = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].kind == LogRecordKind::kCheckpoint) {
      start = i + 1;
    }
  }
  report.records_skipped = start;
  if (start > 0) {
    records.erase(records.begin(), records.begin() + static_cast<ptrdiff_t>(start));
  }
  report.records_replayed = records.size();

  if (AtPoint("recovery.scan_done")) {
    report.status = UnavailableError("crashed during recovery (after log scan)");
    co_return report;
  }

  // --- Pass 1: analysis -------------------------------------------------------
  std::unordered_map<FamilyId, FamilyTrace> traces;
  std::vector<FamilyId> family_order;  // First-touched order, for determinism.
  for (const LogRecord& rec : records) {
    auto [it, inserted] = traces.try_emplace(rec.tid.family);
    FamilyTrace& trace = it->second;
    if (inserted) {
      trace.top = rec.tid.TopLevel();
      family_order.push_back(rec.tid.family);
    }
    switch (rec.kind) {
      case LogRecordKind::kUpdate:
        trace.updates.push_back(&rec);
        trace.servers.insert(rec.server);
        break;
      case LogRecordKind::kPrepare:
        trace.prepared = true;
        trace.prepare = rec;
        break;
      case LogRecordKind::kCommit:
        trace.committed = true;
        trace.commit_sites = rec.sites;
        break;
      case LogRecordKind::kAbort:
        trace.aborted = true;
        break;
      case LogRecordKind::kReplication:
        if (!trace.has_replication || rec.epoch >= trace.replication.epoch) {
          trace.has_replication = true;
          trace.replication = rec;
        }
        break;
      case LogRecordKind::kEnd:
        trace.ended = true;
        break;
      case LogRecordKind::kCheckpoint:
        break;  // Stripped above; a torn trailing one is harmless.
    }
  }

  // --- Pass 2: redo — "repeat history" -------------------------------------------
  // EVERY update record is replayed in log order, including losers' forwards
  // and their compensation records (CLRs): a live abort's undo is itself part
  // of history, and replaying it keeps interleavings with later winners
  // correct (strict 2PL serializes per-object record sequences).
  for (const LogRecord& rec : records) {
    if (rec.kind != LogRecordKind::kUpdate) {
      continue;
    }
    if (AtPoint("recovery.redo")) {
      report.status = UnavailableError("crashed during recovery (mid-redo)");
      co_return report;
    }
    diskmgr_.RecoveryWrite(rec.server, rec.object, rec.new_value);
    ++report.redo_writes;
  }
  if (AtPoint("recovery.redo_done")) {
    report.status = UnavailableError("crashed during recovery (after redo)");
    co_return report;
  }

  // --- Pass 3: undo losers' UN-compensated forwards (newest first) ----------------
  // A loser record needs undoing only if no CLR compensated it. Because the
  // aborting transaction held its locks until its undo finished, every
  // un-compensated forward is the newest record on its object, so writing its
  // old_value after full replay is correct. Per (family, object) the records
  // form a stack: forwards push, CLRs pop; the survivors get undone.
  Lsn clr_lsn{0};
  for (const FamilyId& family : family_order) {
    const FamilyTrace& trace = traces.at(family);
    const bool in_doubt =
        (trace.prepared || trace.has_replication) && !trace.committed && !trace.aborted;
    if (trace.committed || in_doubt) {
      continue;
    }
    std::unordered_map<std::string, std::vector<const LogRecord*>> pending;
    for (const LogRecord* rec : trace.updates) {
      auto& stack = pending[rec->server + "\x1f" + rec->object];
      if (rec->is_undo) {
        if (!stack.empty()) {
          stack.pop_back();
        }
      } else {
        stack.push_back(rec);
      }
    }
    std::vector<const LogRecord*> survivors;
    for (auto& [key, stack] : pending) {
      survivors.insert(survivors.end(), stack.begin(), stack.end());
    }
    std::sort(survivors.begin(), survivors.end(),
              [](const LogRecord* a, const LogRecord* b) { return a->lsn > b->lsn; });
    for (const LogRecord* rec : survivors) {
      if (AtPoint("recovery.undo")) {
        report.status = UnavailableError("crashed during recovery (mid-undo)");
        co_return report;
      }
      diskmgr_.RecoveryWrite(rec->server, rec->object, rec->old_value);
      // Log a CLR for the restart undo, exactly as a live abort would. This
      // keeps "repeat history" complete: the newest update record for an
      // object is always its current value, which is what media recovery
      // (RebuildPage) depends on — and a re-crash won't re-undo these.
      clr_lsn = log_.Append(LogRecord::UndoUpdate(rec->tid, rec->server, rec->object,
                                                  rec->new_value, rec->old_value));
      ++report.undo_writes;
    }
  }
  if (clr_lsn.value > 0) {
    // CLRs must be durable before media recovery may trust repeat history.
    if (!co_await log_.Force(clr_lsn) || !site_.up()) {
      report.status = UnavailableError("crashed during recovery (CLR force)");
      co_return report;
    }
  }
  if (AtPoint("recovery.undo_done")) {
    report.status = UnavailableError("crashed during recovery (after undo)");
    co_return report;
  }

  // --- Media recovery: rebuild CRC-failing data pages from the log ---------------
  // Passes 2-3 re-stored (clean) every page with post-checkpoint coverage, so
  // what is still corrupt here was damaged after its last update was
  // checkpointed away — rebuild it from whatever the log physically retains.
  for (const auto& [segment, object] : diskmgr_.CorruptPages()) {
    if (AtPoint("recovery.media_sweep")) {
      report.status = UnavailableError("crashed during recovery (mid-media-sweep)");
      co_return report;
    }
    Result<Bytes> rebuilt = co_await RebuildPage(segment, object);
    if (!site_.up()) {
      report.status = UnavailableError("crashed during recovery (media rebuild)");
      co_return report;
    }
    if (rebuilt.ok()) {
      diskmgr_.RecoveryWrite(segment, object, *rebuilt);
      ++report.pages_repaired;
    } else {
      // No retained coverage (e.g. the history was reclaimed at a checkpoint
      // and the media rotted afterwards). A real deployment falls back to the
      // archive log here; we count it and leave the page to fail loudly.
      ++report.repair_failures;
    }
  }
  if (AtPoint("recovery.media_done")) {
    report.status = UnavailableError("crashed during recovery (after media sweep)");
    co_return report;
  }

  // --- Pass 4: rebuild volatile state ------------------------------------------
  for (const FamilyId& family : family_order) {
    FamilyTrace& trace = traces.at(family);
    if (trace.committed) {
      ++report.families_committed;
      if (!trace.commit_sites.empty() && !trace.ended) {
        // We were the coordinator and phase 2 was cut short: resume it so the
        // remaining subordinates drop their locks and ack.
        std::vector<std::string> server_names(trace.servers.begin(), trace.servers.end());
        // The commit record does not name the protocol, but the prepare (or
        // ballot-0 accept) record does — restoring it matters because NBC and
        // Paxos coordinators keep tombstones after phase 2 where 2PC retires.
        CommitOptions options = CommitOptions::Optimized();
        if (trace.prepared) {
          options.protocol = trace.prepare.protocol;
        } else if (trace.has_replication) {
          options.protocol = trace.replication.protocol;
        }
        tranman_.RestoreCoordinator(trace.top, trace.commit_sites, std::move(server_names),
                                    options);
        ++report.coordinators_resumed;
      } else {
        tranman_.RestoreTombstone(trace.top, TmTxnState::kCommitted);
      }
      continue;
    }
    if (trace.aborted) {
      ++report.families_aborted;
      tranman_.RestoreTombstone(trace.top, TmTxnState::kAborted);
      continue;
    }
    if (trace.prepared || trace.has_replication) {
      // In doubt: re-take locks, re-register updates, re-park the participant.
      // (A replication record without a prepare record happens for a read-only
      // NBC coordinator or a passive acceptor — still a quorum participant.)
      ++report.families_prepared;
      for (const LogRecord* update : trace.updates) {
        auto server_it = servers.find(update->server);
        if (server_it == servers.end()) {
          continue;  // Server no longer configured; its data stays redone.
        }
        co_await server_it->second->RestorePreparedUpdate(update->tid, update->object,
                                                          update->old_value, update->new_value,
                                                          update->lsn);
      }
      TranMan::RestoredSubordinate restored;
      restored.tid = trace.top;
      if (trace.prepared) {
        restored.coordinator = trace.prepare.coordinator;
        restored.sites = trace.prepare.sites;
        restored.protocol = trace.prepare.protocol;
        restored.commit_quorum = trace.prepare.commit_quorum;
        restored.abort_quorum = trace.prepare.abort_quorum;
      } else {
        // Only replication records: a quorum participant without prepared
        // updates of its own (read-only NBC coordinator, passive acceptor).
        // The record carries protocol and quorum sizes; legacy NBC records
        // hold zeros, reconstructed with the majority rule every NBC
        // coordinator uses.
        restored.coordinator = trace.replication.coordinator;
        restored.sites = trace.replication.sites;
        restored.protocol = trace.replication.protocol;
        const uint32_t n = static_cast<uint32_t>(trace.replication.sites.size());
        restored.commit_quorum = trace.replication.commit_quorum != 0
                                     ? trace.replication.commit_quorum
                                     : n / 2 + 1;
        restored.abort_quorum = trace.replication.abort_quorum != 0
                                    ? trace.replication.abort_quorum
                                    : n + 1 - restored.commit_quorum;
      }
      restored.has_replication = trace.has_replication;
      if (trace.has_replication) {
        restored.replicated_epoch = trace.replication.epoch;
        restored.replicated_decision = static_cast<TmDecision>(trace.replication.decision);
      }
      restored.local_servers.assign(trace.servers.begin(), trace.servers.end());
      tranman_.RestoreSubordinate(std::move(restored));
      continue;
    }
    // Loser with no outcome record: presumed abort, already undone.
    ++report.families_presumed;
  }

  CTRACE("[%8.1fms] %s recovery: %zu records, %zu committed, %zu aborted, %zu presumed, "
         "%zu prepared, %zu coordinators resumed",
         ToMs(site_.sched().now()), ToString(site_.id()).c_str(), report.records_replayed,
         report.families_committed, report.families_aborted, report.families_presumed,
         report.families_prepared, report.coordinators_resumed);
  co_return report;
}

Async<Result<Bytes>> RecoveryManager::RebuildPage(std::string segment, std::string object) {
  // Media recovery re-reads the retained log from stable storage: charge one
  // log-disk transfer for the scan.
  co_await site_.sched().Delay(log_.config().force_latency);
  const std::vector<LogRecord> records = log_.ReadDurable();
  // Repeat history for just this page. Every writer logs its forwards AND its
  // undos (live aborts and restart undo both emit CLRs), so the newest update
  // record is the page's current committed-or-flushed value. Prepared
  // in-doubt updates are included deliberately: their forwards are what the
  // WAL rule allowed onto the disk.
  const Bytes* value = nullptr;
  for (const LogRecord& rec : records) {
    if (rec.kind == LogRecordKind::kUpdate && rec.server == segment && rec.object == object) {
      value = &rec.new_value;
    }
  }
  if (value == nullptr) {
    co_return CorruptionError("media recovery: no retained log coverage for " + segment + "/" +
                              object);
  }
  co_return *value;
}

}  // namespace camelot
