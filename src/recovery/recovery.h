// Recovery Process: after a failure, reads the log and repairs the site.
//
// Restart sequence (value logging, locks serialize per-object histories):
//   1. Analysis — one pass over the durable log classifying every family:
//      committed (commit record), aborted (abort record), prepared-undecided
//      (prepare without outcome), or loser (updates with no outcome: presumed
//      abort).
//   2. Redo — updates of committed AND prepared families are reapplied to the
//      data disk in log order ("repeat history" for winners; prepared
//      transactions keep their updates AND their locks so the eventual
//      outcome can be applied through the normal commit/abort paths).
//   3. Undo — updates of losers are reversed, newest first.
//   4. Rebuild — servers re-take the exclusive locks of prepared transactions;
//      the transaction manager re-parks prepared subordinates (status query /
//      takeover), resumes committed coordinators whose End record is missing,
//      and plants outcome tombstones (NBC change 4).
//
// The log scan itself is ReplayDurable(): mirror-salvaging and end-classified.
// A torn tail is expected (crash cut a force short) and is truncated; interior
// corruption that no mirror can cover means committed work is gone, and
// Recover fails LOUDLY (kCorruption status) instead of silently truncating
// replay at the damage. Between passes 3 and 4 a media sweep rebuilds every
// data page whose stored CRC fails, by redoing its history from the log
// (RebuildPage); the same routine is the disk manager's repair hook for
// corruption found later by foreground reads or the background scrubber.
#ifndef SRC_RECOVERY_RECOVERY_H_
#define SRC_RECOVERY_RECOVERY_H_

#include <map>
#include <string>
#include <vector>

#include "src/diskmgr/disk_manager.h"
#include "src/ipc/site.h"
#include "src/server/data_server.h"
#include "src/tranman/tranman.h"
#include "src/wal/stable_log.h"

namespace camelot {

struct RecoveryReport {
  // Non-OK means restart could NOT restore a consistent state — in practice
  // kCorruption when the log scan hit interior media corruption with no
  // intact mirror (committed work is gone; silent truncation would be worse).
  Status status = OkStatus();
  size_t records_replayed = 0;   // Records AFTER the last checkpoint.
  size_t records_skipped = 0;    // Records before the last checkpoint.
  size_t families_committed = 0;
  size_t families_aborted = 0;     // Explicit abort records.
  size_t families_presumed = 0;    // No outcome record: presumed abort.
  size_t families_prepared = 0;    // Left prepared (in doubt), locks re-taken.
  size_t coordinators_resumed = 0; // Commit without End: phase 2 restarted.
  size_t redo_writes = 0;
  size_t undo_writes = 0;
  // Media recovery (see DESIGN.md "Storage fault model").
  size_t frames_salvaged = 0;   // Log frames rebuilt from the other mirror.
  size_t pages_repaired = 0;    // CRC-failing data pages rebuilt from the log.
  size_t repair_failures = 0;   // Corrupt pages the retained log cannot rebuild.
};

class RecoveryManager {
 public:
  RecoveryManager(Site& site, DiskManager& diskmgr, StableLog& log, TranMan& tranman);

  // Runs the full restart sequence. `servers` maps server name -> instance
  // (freshly re-constructed, empty volatile state).
  Async<RecoveryReport> Recover(const std::map<std::string, DataServer*>& servers);

  // Writes a quiescent checkpoint: flushes every dirty page and appends a
  // forced CHECKPOINT record, after which restart replay begins there. Fails
  // kFailedPrecondition while any transaction is live at this site (the
  // simple policy Camelot-era systems used between batch windows).
  Async<Status> WriteCheckpoint();

  // Media recovery: rebuilds one page's current committed value by repeating
  // history from the full *retained* durable log (i.e. falling back past the
  // last checkpoint to whatever the log still physically holds). Both live
  // aborts and restart undo log CLRs, so the newest update record for an
  // object IS its current value. Registered with the disk manager as the
  // repair hook for CRC-failing pages (foreground reads and the scrubber);
  // also used by Recover's restart media sweep. Corruption if the retained
  // log has no coverage for the page.
  Async<Result<Bytes>> RebuildPage(std::string segment, std::string object);

  // Failpoints between and inside the restart passes (crash/callback):
  //   recovery.scan_done, recovery.redo (before each pass-2 write),
  //   recovery.redo_done, recovery.undo (before each pass-3 undo),
  //   recovery.undo_done, recovery.media_sweep (before each page rebuild),
  //   recovery.media_done, recovery.checkpoint_force.before/.after.
  // A crash mid-recovery leaves the report kUnavailable; the harness restarts
  // the site again and recovery must be idempotent.
  void set_failpoints(Failpoints failpoints) { failpoints_ = std::move(failpoints); }

 private:
  // Evaluates a recovery failpoint; true means a crash fired (stop recovery).
  bool AtPoint(const char* point);

  Site& site_;
  DiskManager& diskmgr_;
  StableLog& log_;
  TranMan& tranman_;
  Failpoints failpoints_;
};

}  // namespace camelot

#endif  // SRC_RECOVERY_RECOVERY_H_
