// Allocation-free event thunks for the discrete-event scheduler.
//
// The old engine stored every queued event as a std::function<void()>, which
// heap-allocates for any capture over two pointers — i.e. for almost every
// interesting event (datagram deliveries, retransmit timers, protocol
// continuations). At millions of events per simulated run that allocator
// traffic dominates the engine's host-CPU profile.
//
// EventFn is a move-only callable with a large inline small-buffer (big enough
// for every hot-path capture: coroutine resumes, channel wakeups, datagram
// deliveries). Oversized captures fall back to a per-scheduler SlabPool — a
// size-classed free list that recycles blocks instead of hitting the global
// allocator — so the steady-state hot path performs zero heap allocations
// either way.
#ifndef SRC_SIM_EVENT_H_
#define SRC_SIM_EVENT_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace camelot {

// Size-classed free list for oversized event captures. Owned by one Scheduler
// and used only from that scheduler's (single) host thread; blocks are
// returned to the pool when the event is destroyed and reused by later posts.
class SlabPool {
 public:
  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  ~SlabPool() {
    for (FreeBlock*& head : free_) {
      while (head != nullptr) {
        FreeBlock* next = head->next;
        ::operator delete(static_cast<void*>(head));
        head = next;
      }
    }
  }

  void* Allocate(size_t size) {
    const int cls = ClassFor(size);
    if (cls < 0) {
      ++oversize_allocs_;
      return ::operator new(size);
    }
    if (free_[cls] != nullptr) {
      FreeBlock* block = free_[cls];
      free_[cls] = block->next;
      ++reused_;
      return block;
    }
    ++fresh_allocs_;
    return ::operator new(ClassSize(cls));
  }

  void Free(void* ptr, size_t size) {
    const int cls = ClassFor(size);
    if (cls < 0) {
      ::operator delete(ptr);
      return;
    }
    auto* block = static_cast<FreeBlock*>(ptr);
    block->next = free_[cls];
    free_[cls] = block;
  }

  // Observability for the allocation-free-hot-path tests and bench_engine.
  uint64_t fresh_allocs() const { return fresh_allocs_; }
  uint64_t reused() const { return reused_; }
  uint64_t oversize_allocs() const { return oversize_allocs_; }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  // Classes 0..kClasses-1 hold blocks of 128 << class bytes (128B .. 16KB);
  // anything larger goes straight to the global allocator (no event in the
  // system is that big; this is a safety valve, not a hot path).
  static constexpr int kClasses = 8;
  static constexpr size_t kMinBlock = 128;

  static constexpr size_t ClassSize(int cls) { return kMinBlock << cls; }

  static int ClassFor(size_t size) {
    size_t block = kMinBlock;
    for (int cls = 0; cls < kClasses; ++cls, block <<= 1) {
      if (size <= block) {
        return cls;
      }
    }
    return -1;
  }

  FreeBlock* free_[kClasses] = {};
  uint64_t fresh_allocs_ = 0;
  uint64_t reused_ = 0;
  uint64_t oversize_allocs_ = 0;
};

// A move-only callable for scheduler events. Callables up to kInlineCapacity
// bytes live inline in the Event itself; larger ones are placed in a SlabPool
// block. Invocation, move, and destruction all dispatch through one manager
// function pointer instantiated per callable type.
class EventFn {
 public:
  // Large enough for every hot-path capture: a coroutine handle (8B), channel
  // waiter wakeups (~24B), and a full datagram delivery (this + Datagram with
  // a shared body, ~40B). Event = EventFn + time + seq stays at 80 bytes.
  static constexpr size_t kInlineCapacity = 56;

  EventFn() = default;

  template <typename F, typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& fn, SlabPool* pool) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>) {
      // The dominant case (captures are pointers, handles, and ints): no
      // manager at all — moves are raw byte copies and destruction is a
      // no-op, which keeps heap sifts inside the queue's buckets cheap.
      ::new (static_cast<void*>(storage_.inline_bytes)) Fn(std::forward<F>(fn));
      inline_invoke_ = &InvokeInline<Fn>;
    } else if constexpr (sizeof(Fn) <= kInlineCapacity &&
                         alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_.inline_bytes)) Fn(std::forward<F>(fn));
      manager_ = &InlineManager<Fn>;
      inline_invoke_ = &InvokeInline<Fn>;
    } else {
      void* block = pool->Allocate(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(fn));
      storage_.heap.ptr = block;
      storage_.heap.size = sizeof(Fn);
      storage_.heap.pool = pool;
      manager_ = &HeapManager<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(std::move(other)); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  explicit operator bool() const { return manager_ != nullptr || inline_invoke_ != nullptr; }

  bool is_inline() const { return inline_invoke_ != nullptr; }

  // The caller must move the Event out of any container before invoking: the
  // callable may post new events and reallocate the container under itself.
  void operator()() {
    if (inline_invoke_ != nullptr) {
      inline_invoke_(storage_.inline_bytes);
    } else {
      manager_(Op::kInvoke, this, nullptr);
    }
  }

 private:
  enum class Op { kInvoke, kMove, kDestroy };

  using Manager = void (*)(Op, EventFn*, EventFn*);
  using InlineInvoke = void (*)(void*);

  template <typename Fn>
  static void InlineManager(Op op, EventFn* self, EventFn* target) {
    auto* fn = std::launder(reinterpret_cast<Fn*>(self->storage_.inline_bytes));
    switch (op) {
      case Op::kInvoke:
        (*fn)();
        break;
      case Op::kMove:
        ::new (static_cast<void*>(target->storage_.inline_bytes)) Fn(std::move(*fn));
        fn->~Fn();
        break;
      case Op::kDestroy:
        fn->~Fn();
        break;
    }
  }

  template <typename Fn>
  static void HeapManager(Op op, EventFn* self, EventFn* target) {
    auto* fn = std::launder(reinterpret_cast<Fn*>(self->storage_.heap.ptr));
    switch (op) {
      case Op::kInvoke:
        (*fn)();
        break;
      case Op::kMove:
        target->storage_.heap = self->storage_.heap;
        break;
      case Op::kDestroy:
        fn->~Fn();
        self->storage_.heap.pool->Free(self->storage_.heap.ptr, self->storage_.heap.size);
        break;
    }
  }

  template <typename Fn>
  static void InvokeInline(void* bytes) {
    (*std::launder(reinterpret_cast<Fn*>(bytes)))();
  }

  void MoveFrom(EventFn&& other) noexcept {
    manager_ = other.manager_;
    inline_invoke_ = other.inline_invoke_;
    if (manager_ != nullptr) {
      manager_(Op::kMove, &other, this);
    } else if (inline_invoke_ != nullptr) {
      storage_ = other.storage_;  // Trivial inline: a plain byte copy.
    }
    other.manager_ = nullptr;
    other.inline_invoke_ = nullptr;
  }

  void Reset() {
    if (manager_ != nullptr) {
      manager_(Op::kDestroy, this, nullptr);
      manager_ = nullptr;
      inline_invoke_ = nullptr;
    }
  }

  union Storage {
    alignas(std::max_align_t) unsigned char inline_bytes[kInlineCapacity];
    struct {
      void* ptr;
      size_t size;
      SlabPool* pool;
    } heap;
  };

  Storage storage_;
  Manager manager_ = nullptr;
  InlineInvoke inline_invoke_ = nullptr;
};

}  // namespace camelot

#endif  // SRC_SIM_EVENT_H_
