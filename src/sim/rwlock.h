// SimRwLock: the "rw-lock" package of the paper's Section 3.4 — shared/
// exclusive locks that make waiters sleep on condition variables instead of
// spinning, "resulting in considerable CPU savings if a thread must wait for
// a lock for an extended period". Used for long-held internal resources;
// FIFO-fair with writer batching semantics like SimMutex.
#ifndef SRC_SIM_RWLOCK_H_
#define SRC_SIM_RWLOCK_H_

#include <coroutine>
#include <deque>

#include "src/base/logging.h"
#include "src/sim/scheduler.h"

namespace camelot {

class SimRwLock {
 public:
  explicit SimRwLock(Scheduler& sched) : sched_(&sched) {}

  SimRwLock(const SimRwLock&) = delete;
  SimRwLock& operator=(const SimRwLock&) = delete;

  // co_await rw.LockShared(); ... rw.UnlockShared();
  auto LockShared() {
    struct Awaiter {
      SimRwLock* rw;
      bool await_ready() {
        // Readers do not jump a queued writer (no writer starvation).
        if (rw->writer_held_ || HasQueuedWriter(*rw)) {
          return false;
        }
        ++rw->readers_;
        return true;
      }
      void await_suspend(std::coroutine_handle<> h) {
        rw->waiters_.push_back({h, /*writer=*/false});
      }
      void await_resume() const noexcept {}
      static bool HasQueuedWriter(const SimRwLock& rw) {
        for (const auto& w : rw.waiters_) {
          if (w.writer) {
            return true;
          }
        }
        return false;
      }
    };
    return Awaiter{this};
  }

  // co_await rw.LockExclusive(); ... rw.UnlockExclusive();
  auto LockExclusive() {
    struct Awaiter {
      SimRwLock* rw;
      bool await_ready() {
        if (rw->writer_held_ || rw->readers_ > 0 || !rw->waiters_.empty()) {
          return false;
        }
        rw->writer_held_ = true;
        return true;
      }
      void await_suspend(std::coroutine_handle<> h) {
        rw->waiters_.push_back({h, /*writer=*/true});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void UnlockShared() {
    CAMELOT_CHECK(readers_ > 0);
    --readers_;
    if (readers_ == 0) {
      WakeFront();
    }
  }

  void UnlockExclusive() {
    CAMELOT_CHECK(writer_held_);
    writer_held_ = false;
    WakeFront();
  }

  int readers() const { return readers_; }
  bool writer_held() const { return writer_held_; }
  size_t waiter_count() const { return waiters_.size(); }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    bool writer;
  };

  // Grants the front waiter: a writer alone, or the whole run of readers.
  void WakeFront() {
    if (waiters_.empty() || writer_held_ || readers_ > 0) {
      return;
    }
    if (waiters_.front().writer) {
      writer_held_ = true;
      auto h = waiters_.front().handle;
      waiters_.pop_front();
      sched_->Post(0, [h] { h.resume(); });
      return;
    }
    while (!waiters_.empty() && !waiters_.front().writer) {
      ++readers_;
      auto h = waiters_.front().handle;
      waiters_.pop_front();
      sched_->Post(0, [h] { h.resume(); });
    }
  }

  Scheduler* sched_;
  int readers_ = 0;
  bool writer_held_ = false;
  std::deque<Waiter> waiters_;
};

}  // namespace camelot

#endif  // SRC_SIM_RWLOCK_H_
