// The discrete-event scheduler: a virtual clock plus an ordered queue of
// thunks. Coroutines suspend on awaitables (Delay, channel receives, mutexes)
// that post their resumption as future events.
//
// Determinism: events at equal times run in posting order (FIFO tie-break),
// and all randomness flows from the seed given at construction, so any run is
// exactly reproducible.
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/types.h"
#include "src/sim/task.h"

namespace camelot {

class Scheduler {
 public:
  explicit Scheduler(uint64_t seed = 1);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  // Run `fn` after `delay` of virtual time (delay >= 0).
  void Post(SimDuration delay, std::function<void()> fn);

  // Run `fn` at absolute virtual time `t` (>= now).
  void PostAt(SimTime t, std::function<void()> fn);

  // Awaitable: suspend the current coroutine for `delay` of virtual time.
  auto Delay(SimDuration delay) {
    struct Awaiter {
      Scheduler* sched;
      SimDuration delay;
      bool await_ready() const noexcept { return delay <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        sched->Post(delay, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, delay};
  }

  // Launch a root task. The frame is freed when the task completes; tasks
  // still suspended when the simulation stops are leaked (the simulator never
  // destroys a suspended coroutine, so dangling-waiter bugs cannot occur).
  void Spawn(Async<void> task);

  // Drain the event queue. Returns the number of events processed. Stops after
  // max_events as a runaway guard.
  size_t RunUntilIdle(size_t max_events = SIZE_MAX);

  // Process events with time <= t, then set now to t. Returns events processed.
  size_t RunUntil(SimTime t);

  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
};

}  // namespace camelot

#endif  // SRC_SIM_SCHEDULER_H_
