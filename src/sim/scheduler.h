// The discrete-event scheduler: a virtual clock plus an ordered queue of
// thunks. Coroutines suspend on awaitables (Delay, channel receives, mutexes)
// that post their resumption as future events.
//
// Determinism: events at equal times run in posting order (FIFO tie-break),
// and all randomness flows from the seed given at construction, so any run is
// exactly reproducible.
//
// The queue is a multi-rung ladder: a ready list for events at the current
// instant, a bottom rung of one-microsecond slots covering the 1.024ms bucket
// of virtual time now executing, two rungs of epoch-aligned buckets (1.024ms
// buckets spanning the current ~1.05s epoch, then 1.05s buckets spanning the
// current ~18min epoch), and a min-heap for the rare events beyond that. As
// the clock crosses an epoch or bucket boundary, the bucket it enters is
// spread one rung down; because SimTime has microsecond resolution, a bottom
// slot holds only equal-time events, whose FIFO order is exactly
// ascending-seq order — so steady-state post and pop are O(1) appends and
// pops, with no comparisons on any rung. Events are EventFn thunks (src/sim/event.h)
// that store their captures inline or in a per-scheduler slab pool, so the
// steady-state post/drain path performs no heap allocation. The ordering
// contract is identical to the old binary heap (see legacy_heap_scheduler.h,
// kept as the A/B reference): strict (time, seq) order everywhere.
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <coroutine>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/types.h"
#include "src/sim/event.h"
#include "src/sim/task.h"

namespace camelot {

// Result of a drain call. Converts to the processed count so existing
// arithmetic call sites keep working; `drained` distinguishes a genuinely
// empty queue from stopping at the max_events runaway guard.
struct DrainResult {
  size_t processed = 0;
  bool drained = true;

  operator size_t() const { return processed; }  // NOLINT(google-explicit-constructor)
};

class Scheduler {
 public:
  explicit Scheduler(uint64_t seed = 1);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  // Run `fn` after `delay` of virtual time (delay >= 0).
  template <typename F>
  void Post(SimDuration delay, F&& fn) {
    CAMELOT_CHECK(delay >= 0);
    PostAt(now_ + delay, std::forward<F>(fn));
  }

  // Run `fn` at absolute virtual time `t` (>= now).
  template <typename F>
  void PostAt(SimTime t, F&& fn) {
    PushEvent(t, EventFn(std::forward<F>(fn), &pool_));
  }

  // Awaitable: suspend the current coroutine for `delay` of virtual time.
  auto Delay(SimDuration delay) {
    struct Awaiter {
      Scheduler* sched;
      SimDuration delay;
      bool await_ready() const noexcept { return delay <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        sched->Post(delay, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, delay};
  }

  // Launch a root task. The frame is freed when the task completes; tasks
  // still suspended when the simulation stops are leaked (the simulator never
  // destroys a suspended coroutine, so dangling-waiter bugs cannot occur).
  void Spawn(Async<void> task);

  // Drain the event queue. Stops after max_events as a runaway guard; the
  // result's `drained` flag tells the two apart.
  DrainResult RunUntilIdle(size_t max_events = SIZE_MAX);

  // Process events with time <= t, then set now to t. Returns events processed.
  size_t RunUntil(SimTime t);

  size_t pending_events() const { return size_; }

  // Event-representation observability (allocation-free hot-path tests and
  // bench_engine): how many posts stored their capture inline vs in the slab
  // pool, and the pool's own alloc/reuse counters.
  uint64_t inline_posts() const { return inline_posts_; }
  uint64_t pooled_posts() const { return pooled_posts_; }
  const SlabPool& slab_pool() const { return pool_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    EventFn fn;

    Event(SimTime t, uint64_t s, EventFn f) : time(t), seq(s), fn(std::move(f)) {}
    Event(Event&&) noexcept = default;
    Event& operator=(Event&&) noexcept = default;
  };
  // Comparator for the overflow min-heap ("a runs after b"), identical to the
  // old binary-heap engine's.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };
  // A future rung bucket: plain appends in posting order, plus a cached
  // minimum time so PeekMinTime never has to scan or sort the contents.
  struct Bucket {
    std::vector<Event> events;
    SimTime min_time = 0;
  };

  // A bottom-rung slot: all events at one exact SimTime, in ascending seq
  // order (FIFO). Drained front-to-back via `head`.
  struct Slot {
    std::vector<Event> events;
    size_t head = 0;
  };

  // Every rung has 1024 buckets/slots. Bottom slots are 1us (covering the
  // current 1.024ms window), rung-1 buckets are 1.024ms (covering the current
  // ~1.05s epoch), rung-2 buckets are ~1.05s (covering the current ~18min
  // epoch). Only events more than ~18min out touch the overflow heap —
  // typical message delays and timeouts never do.
  static constexpr size_t kBuckets = 1024;
  static constexpr size_t kBucketMask = kBuckets - 1;
  static constexpr size_t kBitWords = kBuckets / 64;
  static constexpr int kShift0 = 10;   // log2(bottom window in us)
  static constexpr int kShift1 = 20;   // log2(rung-1 epoch)
  static constexpr int kShift2 = 30;   // log2(rung-2 epoch)
  static constexpr SimTime kWidth = SimTime{1} << kShift0;
  static constexpr SimTime kWidthMask = kWidth - 1;
  static constexpr SimTime kSpan1 = SimTime{1} << kShift1;
  static constexpr SimTime kSpan2 = SimTime{1} << kShift2;

  // An epoch-aligned rung: bucket i covers [start + (i << shift),
  // start + ((i + 1) << shift)) of virtual time, where shift is kShift0 for
  // rung 1 and kShift1 for rung 2. The occupancy bitmap lets scans skip
  // empty buckets word-at-a-time.
  struct Rung {
    std::vector<Bucket> buckets;
    uint64_t bits[kBitWords] = {};
    size_t count = 0;
    SimTime start = 0;

    Rung() : buckets(kBuckets) {}
  };

  void PushEvent(SimTime t, EventFn fn);
  void RungAppend(Rung& r, int shift, Event ev);
  // Place an event into its bottom-rung slot, keeping the slot's ascending
  // seq order (direct posts append; spread/migrated events may insert).
  void SlotInsert(Event ev);
  Event TakeFromSlot(size_t off);
  Event PopMin();
  SimTime PeekMinTime() const;
  bool PopAndRun();
  // Advance the virtual clock (and the ladder windows) to t.
  void AdvanceTo(SimTime t);
  // Make t's bottom window current: advance any epoch the clock crossed
  // (migrating overflow into rung 2, spreading t's rung-2 bucket into rung 1,
  // then t's rung-1 bucket into the bottom slots). Each crossed level must
  // already be drained.
  void OpenWindow(SimTime t);
  void MigrateOverflow();
  void SpreadRung1Bucket(SimTime t);
  void SpreadRung2Bucket(SimTime t);

  static void SetBit(uint64_t* bits, size_t i) { bits[i >> 6] |= uint64_t{1} << (i & 63); }
  static void ClearBit(uint64_t* bits, size_t i) {
    bits[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  // Next set bit >= from; the caller guarantees one exists.
  static size_t FindFirstBit(const uint64_t* bits, size_t from);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t size_ = 0;
  Rng rng_;

  // pool_ must outlive every container of Events below (EventFn destructors
  // return their blocks to it), so it is declared first.
  SlabPool pool_;

  std::vector<Event> ready_;  // events at time == now_, FIFO
  size_t ready_head_ = 0;
  // Bottom rung: slot off holds events at exactly ring_start_ + off.
  std::vector<Slot> bottom_;
  uint64_t bits_[kBitWords] = {};
  size_t bottom_count_ = 0;
  size_t bottom_cursor_ = 0;   // all slots before this are empty
  SimTime ring_start_ = 0;     // bottom window start; aligned, always <= now_
  Rung rung1_;                 // epoch [rung1_.start, rung1_.start + kSpan1)
  Rung rung2_;                 // epoch [rung2_.start, rung2_.start + kSpan2)
  std::vector<Event> overflow_;  // min-heap; times >= rung2_.start + kSpan2

  uint64_t inline_posts_ = 0;
  uint64_t pooled_posts_ = 0;
};

}  // namespace camelot

#endif  // SRC_SIM_SCHEDULER_H_
