// Async<T>: a lazily-started coroutine task for the discrete-event simulator.
//
// An Async<T> does nothing until awaited; awaiting starts it and suspends the
// awaiter until the task completes (symmetric transfer, no stack growth).
// Root tasks are launched with Scheduler::Spawn, which owns the frame and
// frees it on completion.
//
// The simulator is strictly single-threaded, so no synchronization appears
// anywhere in this file.
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace camelot {

template <typename T>
class Async;

// Promise storage: value case and void case.
template <typename T>
struct AsyncPromiseStorage {
  std::optional<T> value;
  void return_value(T v) { value.emplace(std::move(v)); }
  T Take() { return std::move(*value); }
};

template <>
struct AsyncPromiseStorage<void> {
  void return_void() {}
  void Take() {}
};

template <typename T>
struct AsyncPromise : AsyncPromiseStorage<T> {
  std::coroutine_handle<> continuation;

  Async<T> get_return_object();

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<AsyncPromise> h) noexcept {
      // Resume whoever awaited us; if nobody did (detached root), finish here.
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { std::terminate(); }
};

// A lazily-started simulation task yielding a T.
template <typename T = void>
class Async {
 public:
  using promise_type = AsyncPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Async() = default;
  explicit Async(Handle h) : handle_(h) {}

  Async(Async&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Async& operator=(Async&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Async(const Async&) = delete;
  Async& operator=(const Async&) = delete;

  ~Async() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  // Awaiting starts the task and resumes the awaiter when it finishes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // Symmetric transfer: start the child now.
      }
      T await_resume() { return handle.promise().Take(); }
    };
    return Awaiter{handle_};
  }

  // Used by Scheduler::Spawn; transfers frame ownership to the caller.
  Handle Release() { return std::exchange(handle_, {}); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

template <typename T>
Async<T> AsyncPromise<T>::get_return_object() {
  return Async<T>(std::coroutine_handle<AsyncPromise<T>>::from_promise(*this));
}

}  // namespace camelot

#endif  // SRC_SIM_TASK_H_
