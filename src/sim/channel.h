// Channel<T>: the simulator's message queue / mailbox.
//
// Unbounded FIFO. Receivers suspend when empty; Send hands an item directly to
// the oldest pending receiver (scheduling its resumption at the current
// virtual time) or queues it. Close() wakes all receivers with nullopt;
// further Sends are dropped — this is how a crashed site's mailboxes behave.
//
// Receive returns std::optional<T>: nullopt means the channel was closed (or,
// for ReceiveTimeout, that the timeout elapsed first).
#ifndef SRC_SIM_CHANNEL_H_
#define SRC_SIM_CHANNEL_H_

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>

#include "src/base/logging.h"
#include "src/sim/scheduler.h"

namespace camelot {

template <typename T>
class Channel {
 public:
  explicit Channel(Scheduler& sched) : sched_(&sched) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Destroying a channel with pending timed receivers must neutralize their
  // timer thunks (which hold a raw back-pointer): closing marks every waiter
  // non-pending, so a later timer firing returns without touching the dead
  // channel, and the receivers resume with nullopt.
  ~Channel() { Close(); }

  void Send(T item) {
    if (closed_) {
      return;  // Receiver is gone (site crashed); drop on the floor.
    }
    // Hand off to the oldest live waiter, if any.
    while (!waiters_.empty()) {
      auto waiter = waiters_.front();
      waiters_.pop_front();
      if (waiter->state != WaiterState::kPending) {
        continue;  // Timed out; its resume is already scheduled.
      }
      waiter->state = WaiterState::kFilled;
      waiter->slot.emplace(std::move(item));
      sched_->Post(0, [h = waiter->handle] { h.resume(); });
      return;
    }
    items_.push_back(std::move(item));
    if (items_.size() > high_watermark_) {
      high_watermark_ = items_.size();
    }
  }

  // Wake every pending receiver with nullopt and drop queued items. Idempotent.
  void Close() {
    if (closed_) {
      return;
    }
    closed_ = true;
    items_.clear();
    for (auto& waiter : waiters_) {
      if (waiter->state == WaiterState::kPending) {
        waiter->state = WaiterState::kClosed;
        sched_->Post(0, [h = waiter->handle] { h.resume(); });
      }
    }
    waiters_.clear();
  }

  bool closed() const { return closed_; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  // Deepest the queue of undelivered items has ever been (queue-health
  // instrumentation; never reset by Close).
  size_t high_watermark() const { return high_watermark_; }

  // co_await ch.Receive() -> std::optional<T> (nullopt iff closed).
  auto Receive() { return ReceiveAwaiter{this, -1, {}}; }

  // co_await ch.ReceiveTimeout(d) -> std::optional<T> (nullopt on close OR timeout).
  auto ReceiveTimeout(SimDuration timeout) { return ReceiveAwaiter{this, timeout, {}}; }

 private:
  enum class WaiterState { kPending, kFilled, kClosed, kTimedOut };

  struct Waiter {
    std::coroutine_handle<> handle;
    WaiterState state = WaiterState::kPending;
    std::optional<T> slot;
  };

  struct ReceiveAwaiter {
    Channel* ch;
    SimDuration timeout;  // < 0 means wait forever.
    // Shared so the timer thunk stays valid even after the awaiter resumes.
    std::shared_ptr<Waiter> waiter;

    bool await_ready() const { return !ch->items_.empty() || ch->closed_; }

    void await_suspend(std::coroutine_handle<> h) {
      waiter = std::make_shared<Waiter>();
      waiter->handle = h;
      ch->waiters_.push_back(waiter);
      if (timeout >= 0) {
        ch->sched_->Post(timeout, [w = waiter, channel = ch] {
          if (w->state != WaiterState::kPending) {
            return;  // Already filled or closed.
          }
          w->state = WaiterState::kTimedOut;
          channel->RemoveWaiter(w.get());
          w->handle.resume();
        });
      }
    }

    std::optional<T> await_resume() {
      if (waiter) {
        // We suspended: outcome is in the waiter node.
        if (waiter->state == WaiterState::kFilled) {
          return std::move(waiter->slot);
        }
        return std::nullopt;  // Closed or timed out.
      }
      // Fast path: never suspended.
      if (!ch->items_.empty()) {
        std::optional<T> out(std::move(ch->items_.front()));
        ch->items_.pop_front();
        return out;
      }
      return std::nullopt;  // Closed.
    }
  };

  void RemoveWaiter(const Waiter* w) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (it->get() == w) {
        waiters_.erase(it);
        return;
      }
    }
  }

  Scheduler* sched_;
  std::deque<T> items_;
  std::deque<std::shared_ptr<Waiter>> waiters_;
  size_t high_watermark_ = 0;
  bool closed_ = false;
};

}  // namespace camelot

#endif  // SRC_SIM_CHANNEL_H_
