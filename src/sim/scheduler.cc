#include "src/sim/scheduler.h"

#include <utility>

namespace camelot {

namespace {

// A self-destroying wrapper that drives a detached root Async<void>.
struct Detached {
  struct promise_type {
    Detached get_return_object() {
      return Detached{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }  // Frame self-frees.
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle;
};

Detached RunDetached(Async<void> task) { co_await std::move(task); }

}  // namespace

Scheduler::Scheduler(uint64_t seed) : rng_(seed) {}

void Scheduler::Post(SimDuration delay, std::function<void()> fn) {
  CAMELOT_CHECK(delay >= 0);
  PostAt(now_ + delay, std::move(fn));
}

void Scheduler::PostAt(SimTime t, std::function<void()> fn) {
  CAMELOT_CHECK(t >= now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Scheduler::Spawn(Async<void> task) {
  if (!task.valid()) {
    return;
  }
  Detached d = RunDetached(std::move(task));
  Post(0, [h = d.handle] { h.resume(); });
}

size_t Scheduler::RunUntilIdle(size_t max_events) {
  size_t processed = 0;
  while (!queue_.empty() && processed < max_events) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    CAMELOT_CHECK(ev.time >= now_);
    now_ = ev.time;
    ev.fn();
    ++processed;
  }
  return processed;
}

size_t Scheduler::RunUntil(SimTime t) {
  size_t processed = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++processed;
  }
  if (t > now_) {
    now_ = t;
  }
  return processed;
}

}  // namespace camelot
