#include "src/sim/scheduler.h"

#include <algorithm>
#include <utility>

namespace camelot {

namespace {

// A self-destroying wrapper that drives a detached root Async<void>.
struct Detached {
  struct promise_type {
    Detached get_return_object() {
      return Detached{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }  // Frame self-frees.
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle;
};

Detached RunDetached(Async<void> task) { co_await std::move(task); }

}  // namespace

Scheduler::Scheduler(uint64_t seed)
    : rng_(seed), bottom_(static_cast<size_t>(kWidth)) {}

void Scheduler::Spawn(Async<void> task) {
  if (!task.valid()) {
    return;
  }
  Detached d = RunDetached(std::move(task));
  Post(0, [h = d.handle] { h.resume(); });
}

void Scheduler::PushEvent(SimTime t, EventFn fn) {
  CAMELOT_CHECK(t >= now_);
  if (fn.is_inline()) {
    ++inline_posts_;
  } else {
    ++pooled_posts_;
  }
  const uint64_t seq = next_seq_++;
  ++size_;
  if (t == now_) {
    ready_.emplace_back(t, seq, std::move(fn));
    return;
  }
  const SimTime off = t - ring_start_;
  if (off < kWidth) {
    // Current window: straight into the bottom rung. A direct post carries
    // the largest seq so far, so a plain append keeps the slot FIFO-ordered.
    Slot& s = bottom_[static_cast<size_t>(off)];
    if (s.events.empty()) {
      SetBit(bits_, static_cast<size_t>(off));
    }
    s.events.emplace_back(t, seq, std::move(fn));
    ++bottom_count_;
  } else if (t - rung1_.start < kSpan1) {
    RungAppend(rung1_, kShift0, Event(t, seq, std::move(fn)));
  } else if (t - rung2_.start < kSpan2) {
    RungAppend(rung2_, kShift1, Event(t, seq, std::move(fn)));
  } else {
    overflow_.emplace_back(t, seq, std::move(fn));
    std::push_heap(overflow_.begin(), overflow_.end(), EventAfter{});
  }
}

void Scheduler::RungAppend(Rung& r, int shift, Event ev) {
  const size_t idx = static_cast<size_t>(ev.time >> shift) & kBucketMask;
  Bucket& b = r.buckets[idx];
  if (b.events.empty()) {
    SetBit(r.bits, idx);
    b.min_time = ev.time;
  } else if (ev.time < b.min_time) {
    b.min_time = ev.time;
  }
  b.events.push_back(std::move(ev));
  ++r.count;
}

void Scheduler::SlotInsert(Event ev) {
  const size_t off = static_cast<size_t>(ev.time - ring_start_);
  Slot& s = bottom_[off];
  if (s.events.empty()) {
    SetBit(bits_, off);
  }
  // Spread and migrated events can carry smaller seqs than direct posts
  // already in the slot; walk back to the FIFO position (usually the end).
  auto pos = s.events.end();
  while (pos != s.events.begin() + static_cast<ptrdiff_t>(s.head) &&
         (pos - 1)->seq > ev.seq) {
    --pos;
  }
  s.events.insert(pos, std::move(ev));
  ++bottom_count_;
}

Scheduler::Event Scheduler::TakeFromSlot(size_t off) {
  Slot& s = bottom_[off];
  Event ev = std::move(s.events[s.head]);
  ++s.head;
  if (s.head == s.events.size()) {
    s.events.clear();
    s.head = 0;
    ClearBit(bits_, off);
  }
  --bottom_count_;
  return ev;
}

size_t Scheduler::FindFirstBit(const uint64_t* bits, size_t from) {
  size_t word = from >> 6;
  uint64_t w = bits[word] & (~uint64_t{0} << (from & 63));
  while (w == 0) {
    w = bits[++word];
  }
  return (word << 6) + static_cast<size_t>(__builtin_ctzll(w));
}

void Scheduler::MigrateOverflow() {
  // Called on a rung-2 epoch cross: pull everything that now falls inside the
  // new epoch into rung 2. Events landing in the epoch's entry bucket are
  // cascaded further down by the spreads that follow.
  const SimTime limit = rung2_.start + kSpan2;
  while (!overflow_.empty() && overflow_.front().time < limit) {
    std::pop_heap(overflow_.begin(), overflow_.end(), EventAfter{});
    Event ev = std::move(overflow_.back());
    overflow_.pop_back();
    RungAppend(rung2_, kShift1, std::move(ev));
  }
}

void Scheduler::SpreadRung2Bucket(SimTime t) {
  const size_t idx = static_cast<size_t>(t >> kShift1) & kBucketMask;
  Bucket& b = rung2_.buckets[idx];
  if (b.events.empty()) {
    return;
  }
  rung2_.count -= b.events.size();
  ClearBit(rung2_.bits, idx);
  for (Event& ev : b.events) {
    RungAppend(rung1_, kShift0, std::move(ev));
  }
  b.events.clear();
}

void Scheduler::SpreadRung1Bucket(SimTime t) {
  const size_t idx = static_cast<size_t>(t >> kShift0) & kBucketMask;
  Bucket& b = rung1_.buckets[idx];
  if (b.events.empty()) {
    return;
  }
  rung1_.count -= b.events.size();
  ClearBit(rung1_.bits, idx);
  for (Event& ev : b.events) {
    SlotInsert(std::move(ev));
  }
  b.events.clear();
}

void Scheduler::OpenWindow(SimTime t) {
  const SimTime aligned0 = t & ~kWidthMask;
  if (aligned0 <= ring_start_) {
    return;
  }
  // Safe to jump: every pending event is >= t, so the bottom rung — and every
  // rung bucket between the old and new anchors — is empty.
  CAMELOT_CHECK(bottom_count_ == 0);
  const SimTime aligned2 = t & ~(kSpan2 - 1);
  if (aligned2 > rung2_.start) {
    CAMELOT_CHECK(rung1_.count == 0 && rung2_.count == 0);
    rung2_.start = aligned2;
    MigrateOverflow();
  }
  const SimTime aligned1 = t & ~(kSpan1 - 1);
  if (aligned1 > rung1_.start) {
    CAMELOT_CHECK(rung1_.count == 0);
    rung1_.start = aligned1;
    SpreadRung2Bucket(t);
  }
  ring_start_ = aligned0;
  bottom_cursor_ = 0;
  SpreadRung1Bucket(t);
}

void Scheduler::AdvanceTo(SimTime t) {
  now_ = t;
  OpenWindow(t);
}

Scheduler::Event Scheduler::PopMin() {
  if (ready_head_ < ready_.size()) {
    // The minimum is at time now_. The only other place an event at now_ can
    // live is its bottom-rung slot (posted earlier, for what was then the
    // future) — it would carry a smaller seq than anything in ready_.
    const SimTime off = now_ - ring_start_;
    if (off < kWidth) {
      Slot& s = bottom_[static_cast<size_t>(off)];
      if (s.head < s.events.size() &&
          s.events[s.head].seq < ready_[ready_head_].seq) {
        return TakeFromSlot(static_cast<size_t>(off));
      }
    }
    Event ev = std::move(ready_[ready_head_]);
    ++ready_head_;
    if (ready_head_ == ready_.size()) {
      ready_.clear();
      ready_head_ = 0;
    }
    return ev;
  }
  if (bottom_count_ > 0) {
    const size_t off = FindFirstBit(bits_, bottom_cursor_);
    bottom_cursor_ = off;
    return TakeFromSlot(off);
  }
  if (rung1_.count == 0 && rung2_.count == 0) {
    // All pending work is beyond the ladder; pull the next epoch's worth of
    // overflow in. (Ladder events always precede overflow events — the time
    // ranges are disjoint — so the rungs are checked first.)
    CAMELOT_CHECK(!overflow_.empty());
    OpenWindow(overflow_.front().time);
  }
  if (bottom_count_ == 0) {
    // The next event is in a future bucket: open that bucket's window, which
    // cascades it down into the bottom rung. Epoch-aligned indexing means the
    // first set bit is the earliest bucket — no wrap-around to reason about.
    if (rung1_.count > 0) {
      const size_t idx = FindFirstBit(rung1_.bits, 0);
      OpenWindow(rung1_.buckets[idx].min_time);
    } else {
      const size_t idx = FindFirstBit(rung2_.bits, 0);
      OpenWindow(rung2_.buckets[idx].min_time);
    }
  }
  CAMELOT_CHECK(bottom_count_ > 0);
  const size_t off = FindFirstBit(bits_, bottom_cursor_);
  bottom_cursor_ = off;
  return TakeFromSlot(off);
}

SimTime Scheduler::PeekMinTime() const {
  if (ready_head_ < ready_.size()) {
    return now_;
  }
  if (bottom_count_ > 0) {
    return ring_start_ + static_cast<SimTime>(FindFirstBit(bits_, bottom_cursor_));
  }
  if (rung1_.count > 0) {
    return rung1_.buckets[FindFirstBit(rung1_.bits, 0)].min_time;
  }
  if (rung2_.count > 0) {
    return rung2_.buckets[FindFirstBit(rung2_.bits, 0)].min_time;
  }
  CAMELOT_CHECK(!overflow_.empty());
  return overflow_.front().time;
}

bool Scheduler::PopAndRun() {
  if (size_ == 0) {
    return false;
  }
  Event ev = PopMin();
  --size_;
  CAMELOT_CHECK(ev.time >= now_);
  if (ev.time != now_) {
    AdvanceTo(ev.time);
  }
  ev.fn();
  return true;
}

DrainResult Scheduler::RunUntilIdle(size_t max_events) {
  size_t processed = 0;
  while (processed < max_events && PopAndRun()) {
    ++processed;
  }
  return DrainResult{processed, size_ == 0};
}

size_t Scheduler::RunUntil(SimTime t) {
  size_t processed = 0;
  while (size_ > 0 && PeekMinTime() <= t) {
    PopAndRun();
    ++processed;
  }
  if (t > now_) {
    AdvanceTo(t);
  }
  return processed;
}

}  // namespace camelot
