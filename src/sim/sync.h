// Synchronization helpers for simulation coroutines: a FIFO mutex (models an
// exclusive resource such as the log disk arm), and fork/join over Async tasks
// (models "identical parallel operations" in the paper's protocol analysis).
#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include <coroutine>
#include <deque>
#include <optional>
#include <vector>

#include "src/sim/channel.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"

namespace camelot {

// Exclusive, FIFO-fair simulated mutex. Not recursive (the paper notes that
// Camelot's spin locks could self-deadlock; ours simply must not be re-locked
// by the holder).
class SimMutex {
 public:
  explicit SimMutex(Scheduler& sched) : sched_(&sched) {}

  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  // co_await mu.Lock();  ...  mu.Unlock();
  auto Lock() {
    struct Awaiter {
      SimMutex* mu;
      bool await_ready() {
        if (!mu->held_) {
          mu->held_ = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { mu->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  // Ownership passes directly to the next waiter, preserving FIFO order.
  void Unlock() {
    CAMELOT_CHECK(held_);
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sched_->Post(0, [h] { h.resume(); });
    } else {
      held_ = false;
    }
  }

  bool held() const { return held_; }
  size_t waiter_count() const { return waiters_.size(); }

 private:
  Scheduler* sched_;
  bool held_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Fork/join: run all tasks concurrently, return their results in input order.
namespace internal {

template <typename T>
Async<void> JoinRunner(Async<T> task, std::vector<std::optional<T>>* out, size_t index,
                       Channel<size_t>* done) {
  T value = co_await std::move(task);
  (*out)[index].emplace(std::move(value));
  done->Send(index);
}

inline Async<void> JoinRunnerVoid(Async<void> task, Channel<size_t>* done, size_t index) {
  co_await std::move(task);
  done->Send(index);
}

}  // namespace internal

template <typename T>
Async<std::vector<T>> JoinAll(Scheduler& sched, std::vector<Async<T>> tasks) {
  const size_t n = tasks.size();
  std::vector<std::optional<T>> results(n);
  Channel<size_t> done(sched);
  for (size_t i = 0; i < n; ++i) {
    sched.Spawn(internal::JoinRunner(std::move(tasks[i]), &results, i, &done));
  }
  for (size_t i = 0; i < n; ++i) {
    co_await done.Receive();
  }
  std::vector<T> out;
  out.reserve(n);
  for (auto& r : results) {
    out.push_back(std::move(*r));
  }
  co_return out;
}

inline Async<void> JoinAllVoid(Scheduler& sched, std::vector<Async<void>> tasks) {
  const size_t n = tasks.size();
  Channel<size_t> done(sched);
  for (size_t i = 0; i < n; ++i) {
    sched.Spawn(internal::JoinRunnerVoid(std::move(tasks[i]), &done, i));
  }
  for (size_t i = 0; i < n; ++i) {
    co_await done.Receive();
  }
}

}  // namespace camelot

#endif  // SRC_SIM_SYNC_H_
