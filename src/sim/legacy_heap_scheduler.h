// The pre-ladder-queue engine, preserved verbatim (minus the coroutine glue)
// as an A/B reference: the determinism property test replays identical
// workloads through this heap and the production ladder queue and asserts the
// (time, seq) interleavings match event-for-event, and bench_engine reports
// both engines' events/sec so the committed baseline shows the before/after.
//
// Keep this in sync with the Scheduler determinism CONTRACT, not its
// implementation: time order, FIFO seq tie-break at equal times, PostAt
// rejects times in the past.
#ifndef SRC_SIM_LEGACY_HEAP_SCHEDULER_H_
#define SRC_SIM_LEGACY_HEAP_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/base/logging.h"
#include "src/base/types.h"

namespace camelot {

class LegacyHeapScheduler {
 public:
  explicit LegacyHeapScheduler(uint64_t /*seed*/ = 1) {}

  LegacyHeapScheduler(const LegacyHeapScheduler&) = delete;
  LegacyHeapScheduler& operator=(const LegacyHeapScheduler&) = delete;

  SimTime now() const { return now_; }

  void Post(SimDuration delay, std::function<void()> fn) {
    CAMELOT_CHECK(delay >= 0);
    PostAt(now_ + delay, std::move(fn));
  }

  void PostAt(SimTime t, std::function<void()> fn) {
    CAMELOT_CHECK(t >= now_);
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  size_t RunUntilIdle(size_t max_events = SIZE_MAX) {
    size_t processed = 0;
    while (!queue_.empty() && processed < max_events) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      CAMELOT_CHECK(ev.time >= now_);
      now_ = ev.time;
      ev.fn();
      ++processed;
    }
    return processed;
  }

  size_t RunUntil(SimTime t) {
    size_t processed = 0;
    while (!queue_.empty() && queue_.top().time <= t) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.time;
      ev.fn();
      ++processed;
    }
    if (t > now_) {
      now_ = t;
    }
    return processed;
  }

  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
};

}  // namespace camelot

#endif  // SRC_SIM_LEGACY_HEAP_SCHEDULER_H_
