#include "src/harness/load_gen.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace camelot {

// --- ZipfianGenerator ---------------------------------------------------------
//
// Gray et al.'s rejection-free inverse-CDF approximation as popularized by
// YCSB: two CDF breakpoints handle the head exactly, the tail uses the
// closed-form inverse of the continuous approximation.

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(std::max<uint64_t>(n, 1)), theta_(theta) {
  if (theta_ <= 0.0) {
    return;  // Uniform; Next() special-cases it.
  }
  zetan_ = 0;
  for (uint64_t i = 1; i <= n_; ++i) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) const {
  if (theta_ <= 0.0) {
    return rng.NextBounded(n_);
  }
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double frac = std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t key = static_cast<uint64_t>(static_cast<double>(n_) * frac);
  return std::min(key, n_ - 1);
}

// --- LoadGenStats -------------------------------------------------------------

double LoadGenStats::GoodputTps(SimTime from, SimTime to) const {
  if (to <= from || bucket_width <= 0) {
    return 0;
  }
  uint64_t commits = 0;
  for (size_t i = 0; i < goodput_buckets.size(); ++i) {
    const SimTime lo = start + static_cast<SimTime>(i) * bucket_width;
    const SimTime hi = lo + bucket_width;
    if (lo >= from && hi <= to) {
      commits += goodput_buckets[i];
    }
  }
  return static_cast<double>(commits) * 1e6 / static_cast<double>(to - from);
}

// --- LoadGen ------------------------------------------------------------------

BankWorkloadConfig ToBankConfig(const LoadGenConfig& cfg) {
  BankWorkloadConfig bank;
  bank.accounts_per_site = cfg.accounts_per_site;
  bank.initial_balance = cfg.initial_balance;
  bank.max_amount = cfg.max_amount;
  bank.options = cfg.options;
  bank.rng_seed = cfg.rng_seed;
  return bank;
}

LoadGen::LoadGen(World& world, LoadGenConfig cfg)
    : world_(world),
      cfg_(cfg),
      rng_(cfg.rng_seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL),
      budget_(cfg.retry_budget_ratio, cfg.retry_budget_cap),
      zipf_(static_cast<uint64_t>(world.site_count()) *
                static_cast<uint64_t>(std::max(cfg.accounts_per_site, 1)),
            cfg.zipf_theta) {
  stats_.bucket_width = cfg_.bucket_width;
}

void LoadGen::Start() {
  stats_.start = world_.sched().now();
  world_.sched().Spawn(ArrivalLoop());
}

Async<void> LoadGen::ArrivalLoop() {
  const SimTime end = world_.sched().now() + cfg_.duration;
  const double mean_gap_us = 1e6 / std::max(cfg_.offered_tps, 1e-9);
  while (world_.sched().now() < end) {
    const SimTime arrival = world_.sched().now();
    ++stats_.offered;
    ++in_flight_;
    stats_.in_flight_peak = std::max(stats_.in_flight_peak, in_flight_);
    world_.sched().Spawn(RunTxn(stats_.offered, arrival));
    SimDuration gap =
        cfg_.arrivals == LoadGenConfig::Arrivals::kPoisson
            ? static_cast<SimDuration>(rng_.NextExponential(mean_gap_us))
            : static_cast<SimDuration>(mean_gap_us);
    co_await world_.sched().Delay(std::max<SimDuration>(gap, 1));
  }
  arrivals_done_ = true;
}

LoadGen::Pick LoadGen::PickAccount(Rng& rng) const {
  const uint64_t key = zipf_.Next(rng);
  const int per_site = std::max(cfg_.accounts_per_site, 1);
  return Pick{static_cast<int>(key / static_cast<uint64_t>(per_site)),
              static_cast<int>(key % static_cast<uint64_t>(per_site))};
}

void LoadGen::RecordCommit(SimTime arrival, SimTime deadline) {
  const SimTime now = world_.sched().now();
  ++stats_.committed;
  stats_.latency_ms.Add(static_cast<double>(now - arrival) / 1000.0);
  if (deadline > 0 && now > deadline) {
    ++stats_.late_commits;
    return;
  }
  ++stats_.goodput;
  if (stats_.bucket_width > 0 && now >= stats_.start) {
    const size_t bucket =
        static_cast<size_t>((now - stats_.start) / stats_.bucket_width);
    if (stats_.goodput_buckets.size() <= bucket) {
      stats_.goodput_buckets.resize(bucket + 1, 0);
    }
    ++stats_.goodput_buckets[bucket];
  }
}

Async<Status> LoadGen::Attempt(AppClient& app, Rng& rng, bool read_only, SimTime /*deadline*/) {
  Pick from = PickAccount(rng);
  Pick to = PickAccount(rng);
  if (from.site == to.site && from.index == to.index) {
    to.index = (to.index + 1) % std::max(cfg_.accounts_per_site, 1);
    if (cfg_.accounts_per_site <= 1) {
      to.site = (to.site + 1) % world_.site_count();
    }
  }
  const int64_t amount =
      1 + static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(
              std::max<int64_t>(cfg_.max_amount, 1))));
  auto begin = co_await app.Begin();
  if (!begin.ok()) {
    co_return begin.status();
  }
  const Tid tid = *begin;
  auto a = co_await app.ReadInt(tid, BankServerName(from.site), BankAccountName(from.index));
  auto b = co_await app.ReadInt(tid, BankServerName(to.site), BankAccountName(to.index));
  Status staged = !a.ok() ? a.status() : b.status();
  if (staged.ok() && !read_only) {
    Status w1 = co_await app.WriteInt(tid, BankServerName(from.site),
                                      BankAccountName(from.index), *a - amount);
    Status w2 = co_await app.WriteInt(tid, BankServerName(to.site),
                                      BankAccountName(to.index), *b + amount);
    staged = !w1.ok() ? w1 : w2;
  }
  if (!staged.ok()) {
    co_await app.Abort(tid);
    co_return staged;
  }
  // Long-lived transactions: think with the locks held before committing, so
  // a nemesis crash has a real window to catch the family mid-flight.
  if (cfg_.hold_time_mean > 0) {
    SimDuration hold = static_cast<SimDuration>(
        rng.NextExponential(static_cast<double>(cfg_.hold_time_mean)));
    if (cfg_.hold_time_max > 0) {
      hold = std::min(hold, cfg_.hold_time_max);
    }
    co_await world_.sched().Delay(std::max<SimDuration>(hold, 1));
  }
  co_return co_await app.Commit(tid, cfg_.options);
}

Async<void> LoadGen::RunTxn(uint64_t id, SimTime arrival) {
  // The absolute deadline is fixed at arrival and survives retries.
  const SimTime deadline = cfg_.deadline > 0 ? arrival + cfg_.deadline : 0;
  const int home = static_cast<int>(id % static_cast<uint64_t>(world_.site_count()));
  AppClient app(world_.site(home));
  if (cfg_.propagate_deadlines) {
    app.set_deadline(deadline);
  }
  Rng rng(cfg_.rng_seed * 1000003 + id * 7919 + 23);
  const bool read_only = rng.NextBool(cfg_.read_fraction);

  budget_.OnAttempt();
  Status last = OkStatus();
  for (int attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Past-deadline retries are pure waste even when nothing downstream
      // sheds; the budget gates the rest so a mass failure cannot double or
      // triple the offered load (the retry-storm amplifier).
      if (!cfg_.retry_past_deadline && deadline > 0 && world_.sched().now() > deadline) {
        break;
      }
      if (!budget_.TryRetry()) {
        break;
      }
      ++stats_.retries;
    }
    last = co_await Attempt(app, rng, read_only, deadline);
    if (last.ok()) {
      RecordCommit(arrival, deadline);
      break;
    }
  }
  if (!last.ok()) {
    if (last.code() == StatusCode::kOverloaded) {
      ++stats_.shed;
    } else {
      ++stats_.failed;
    }
  }
  stats_.retries_suppressed = budget_.suppressed();
  --in_flight_;
  ++finished_;
}

}  // namespace camelot
