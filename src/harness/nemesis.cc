#include "src/harness/nemesis.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/base/logging.h"

namespace camelot {
namespace {

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseI64(const std::string& s, int64_t* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseProb(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && *out >= 0.0 && *out <= 1.0;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string GroupsToString(const std::vector<std::vector<SiteId>>& groups) {
  std::string out;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (g > 0) {
      out += '|';
    }
    for (size_t i = 0; i < groups[g].size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += std::to_string(groups[g][i].value);
    }
  }
  return out;
}

Status ParseGroups(const std::string& text, std::vector<std::vector<SiteId>>* out) {
  out->clear();
  if (text.empty()) {
    return OkStatus();  // "partition:" — isolate everyone.
  }
  for (const std::string& group_text : Split(text, '|')) {
    std::vector<SiteId> group;
    for (const std::string& site_text : Split(group_text, ',')) {
      uint64_t site = 0;
      if (!ParseU64(site_text, &site)) {
        return InvalidArgumentError("nemesis: bad site '" + site_text + "' in partition groups");
      }
      group.push_back(SiteId{static_cast<uint32_t>(site)});
    }
    out->push_back(std::move(group));
  }
  return OkStatus();
}

}  // namespace

std::string NemesisEvent::ToString() const {
  std::string out;
  switch (when) {
    case When::kAbsolute:
      out += "@" + std::to_string(at);
      break;
    case When::kRelative:
      out += "+" + std::to_string(at);
      break;
    case When::kTrigger:
      out += point + "@" + std::to_string(site.value) + "#" + std::to_string(hit);
      break;
  }
  out += "=";
  switch (action) {
    case Action::kPartition:
      out += "partition:" + GroupsToString(groups);
      break;
    case Action::kHeal:
      out += "heal";
      break;
    case Action::kLoss:
      out += "loss:" + std::to_string(value);
      break;
    case Action::kDup:
      out += "dup:" + std::to_string(value);
      break;
    case Action::kReorder:
      out += "reorder:" + std::to_string(value);
      if (duration > 0) {
        out += "," + std::to_string(duration);
      }
      break;
    case Action::kCongest:
      out += "congest:" + std::to_string(duration);
      break;
    case Action::kCalm:
      out += "calm";
      break;
  }
  return out;
}

std::string NemesisScript::ToString() const {
  std::string out;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      out += ";";
    }
    out += events[i].ToString();
  }
  return out;
}

Result<NemesisScript> NemesisScript::Parse(std::string_view text) {
  NemesisScript script;
  if (text.empty()) {
    return script;
  }
  for (const std::string& event_text : Split(text, ';')) {
    if (event_text.empty()) {
      continue;
    }
    const size_t eq = event_text.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("nemesis: event '" + event_text + "' has no '='");
    }
    const std::string when_text = event_text.substr(0, eq);
    const std::string action_text = event_text.substr(eq + 1);
    NemesisEvent ev;

    // -- when --
    if (when_text.empty()) {
      return InvalidArgumentError("nemesis: event '" + event_text + "' has no firing condition");
    }
    if (when_text[0] == '@' || when_text[0] == '+') {
      int64_t usec = 0;
      if (!ParseI64(when_text.substr(1), &usec) || usec < 0) {
        return InvalidArgumentError("nemesis: bad time '" + when_text + "'");
      }
      ev.when = when_text[0] == '@' ? NemesisEvent::When::kAbsolute : NemesisEvent::When::kRelative;
      ev.at = usec;
    } else {
      // point@site#hit (same shape as a CrashSchedule entry's location).
      const size_t at_pos = when_text.rfind('@');
      const size_t hash_pos = when_text.rfind('#');
      if (at_pos == std::string::npos || hash_pos == std::string::npos || hash_pos < at_pos) {
        return InvalidArgumentError("nemesis: bad trigger '" + when_text +
                                    "' (want point@site#hit)");
      }
      ev.when = NemesisEvent::When::kTrigger;
      ev.point = when_text.substr(0, at_pos);
      uint64_t site = 0;
      if (ev.point.empty() ||
          !ParseU64(when_text.substr(at_pos + 1, hash_pos - at_pos - 1), &site) ||
          !ParseU64(when_text.substr(hash_pos + 1), &ev.hit) || ev.hit == 0) {
        return InvalidArgumentError("nemesis: bad trigger '" + when_text + "'");
      }
      ev.site = SiteId{static_cast<uint32_t>(site)};
    }

    // -- action --
    const size_t colon = action_text.find(':');
    const std::string verb = action_text.substr(0, colon);
    const std::string arg = colon == std::string::npos ? "" : action_text.substr(colon + 1);
    if (verb == "partition") {
      ev.action = NemesisEvent::Action::kPartition;
      if (Status s = ParseGroups(arg, &ev.groups); !s.ok()) {
        return s;
      }
    } else if (verb == "heal") {
      ev.action = NemesisEvent::Action::kHeal;
    } else if (verb == "loss" || verb == "dup" || verb == "reorder") {
      ev.action = verb == "loss"  ? NemesisEvent::Action::kLoss
                : verb == "dup"   ? NemesisEvent::Action::kDup
                                  : NemesisEvent::Action::kReorder;
      std::string prob_text = arg;
      if (verb == "reorder") {
        const size_t comma = arg.find(',');
        if (comma != std::string::npos) {
          prob_text = arg.substr(0, comma);
          int64_t max_delay = 0;
          if (!ParseI64(arg.substr(comma + 1), &max_delay) || max_delay <= 0) {
            return InvalidArgumentError("nemesis: bad reorder delay in '" + action_text + "'");
          }
          ev.duration = max_delay;
        }
      }
      if (!ParseProb(prob_text, &ev.value)) {
        return InvalidArgumentError("nemesis: bad probability in '" + action_text + "'");
      }
    } else if (verb == "congest") {
      ev.action = NemesisEvent::Action::kCongest;
      int64_t usec = 0;
      if (!ParseI64(arg, &usec) || usec < 0) {
        return InvalidArgumentError("nemesis: bad congest mean in '" + action_text + "'");
      }
      ev.duration = usec;
    } else if (verb == "calm") {
      ev.action = NemesisEvent::Action::kCalm;
    } else {
      return InvalidArgumentError("nemesis: unknown action '" + action_text + "'");
    }
    script.events.push_back(std::move(ev));
  }
  return script;
}

Status Nemesis::Install(NemesisScript script) {
  for (const NemesisEvent& ev : script.events) {
    if (ev.when == NemesisEvent::When::kTrigger && failpoints_ == nullptr) {
      return InvalidArgumentError("nemesis: trigger event '" + ev.ToString() +
                                  "' needs a failpoint registry");
    }
  }
  ++generation_;
  script_ = std::move(script);
  applied_.assign(script_.events.size(), false);
  applied_count_ = 0;
  const uint64_t gen = generation_;
  for (size_t i = 0; i < script_.events.size(); ++i) {
    const NemesisEvent& ev = script_.events[i];
    switch (ev.when) {
      case NemesisEvent::When::kAbsolute:
        sched_.Post(ev.at, [this, i, gen] { Apply(i, gen); });
        break;
      case NemesisEvent::When::kRelative:
        if (i == 0) {  // Relative to Install() when there is no predecessor.
          sched_.Post(ev.at, [this, i, gen] { Apply(i, gen); });
        }
        break;  // Otherwise chained by the predecessor's Apply.
      case NemesisEvent::When::kTrigger:
        failpoints_->Arm(ev.point, ev.site,
                         FailpointArm::Callback(ev.hit, [this, i, gen] { Apply(i, gen); }));
        break;
    }
  }
  return OkStatus();
}

void Nemesis::Apply(size_t index, uint64_t generation) {
  if (generation != generation_ || index >= applied_.size() || applied_[index]) {
    return;
  }
  applied_[index] = true;
  ++applied_count_;
  const NemesisEvent& ev = script_.events[index];
  switch (ev.action) {
    case NemesisEvent::Action::kPartition: {
      const Status s = net_.SetPartition(ev.groups);
      CAMELOT_CHECK(s.ok());  // Scripts are validated before they run.
      break;
    }
    case NemesisEvent::Action::kHeal:
      net_.ClearPartition();
      break;
    case NemesisEvent::Action::kLoss:
      net_.set_loss_probability(ev.value);
      break;
    case NemesisEvent::Action::kDup:
      net_.set_duplicate_probability(ev.value);
      break;
    case NemesisEvent::Action::kReorder:
      net_.set_reorder_probability(ev.value);
      if (ev.duration > 0) {
        net_.set_reorder_delay_max(ev.duration);
      }
      break;
    case NemesisEvent::Action::kCongest:
      net_.set_congestion_delay_mean(ev.duration);
      break;
    case NemesisEvent::Action::kCalm:
      net_.set_loss_probability(0);
      net_.set_duplicate_probability(0);
      net_.set_reorder_probability(0);
      net_.set_congestion_delay_mean(0);
      break;
  }
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "[%8.1fms] ", ToMs(sched_.now()));
  log_.push_back(stamp + ev.ToString());
  if (on_apply_) {
    on_apply_(ev);
  }
  // Chain the next event if it is relative to this one.
  const size_t next = index + 1;
  if (next < script_.events.size() &&
      script_.events[next].when == NemesisEvent::When::kRelative) {
    const uint64_t gen = generation_;
    sched_.Post(script_.events[next].at, [this, next, gen] { Apply(next, gen); });
  }
}

void Nemesis::HealAll() {
  NemesisEvent heal;
  heal.action = NemesisEvent::Action::kHeal;
  NemesisEvent calm;
  calm.action = NemesisEvent::Action::kCalm;
  for (const NemesisEvent* ev : {&heal, &calm}) {
    if (ev->action == NemesisEvent::Action::kHeal) {
      net_.ClearPartition();
    } else {
      net_.set_loss_probability(0);
      net_.set_duplicate_probability(0);
      net_.set_reorder_probability(0);
      net_.set_congestion_delay_mean(0);
    }
    if (on_apply_) {
      on_apply_(*ev);
    }
  }
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "[%8.1fms] ", ToMs(sched_.now()));
  log_.push_back(std::string(stamp) + "healall");
}

std::vector<std::string> Nemesis::Unapplied() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < script_.events.size(); ++i) {
    if (!applied_[i]) {
      out.push_back(script_.events[i].ToString());
    }
  }
  return out;
}

}  // namespace camelot
