#include "src/harness/partition_explorer.h"

#include <string>
#include <utility>
#include <vector>

#include "src/analysis/static_analysis.h"
#include "src/base/logging.h"
#include "src/harness/isolation_oracle.h"
#include "src/harness/oracle.h"
#include "src/harness/parallel.h"
#include "src/harness/replay.h"

namespace camelot {
namespace {

std::string Srv(int i) { return "server:" + std::to_string(i); }

// Same tight tuning as the crash explorer: zero jitter keeps every run
// bit-deterministic, and short protocol timers make partition scenarios
// resolve in seconds of virtual time.
WorldConfig MakeWorldConfig(const PartitionExplorerConfig& cfg) {
  WorldConfig w;
  w.site_count = cfg.site_count;
  w.seed = cfg.seed;
  w.net.send_jitter_mean = 0;
  w.net.stall_probability = 0;
  w.net.receive_skew_mean = 0;
  w.tranman.outcome_timeout = Usec(400000);
  w.tranman.retry_interval = Usec(300000);
  w.tranman.takeover_backoff = Usec(300000);
  w.tranman.orphan_check_interval = Sec(1.0);
  w.ipc.rpc_timeout = Sec(1.5);
  w.server.lock_wait_timeout = Sec(1.0);
  return w;
}

Async<Status> OneTransfer(AppClient& app, std::string from_srv, std::string to_srv,
                          int64_t amount, CommitOptions options) {
  auto begin = co_await app.Begin();
  if (!begin.ok()) {
    co_return begin.status();
  }
  const Tid tid = *begin;
  auto a = co_await app.ReadInt(tid, from_srv, "vault");
  auto b = co_await app.ReadInt(tid, to_srv, "vault");
  if (!a.ok() || !b.ok()) {
    co_await app.Abort(tid);
    co_return AbortedError("read failed");
  }
  Status w1 = co_await app.WriteInt(tid, from_srv, "vault", *a - amount);
  Status w2 = co_await app.WriteInt(tid, to_srv, "vault", *b + amount);
  if (!w1.ok() || !w2.ok()) {
    co_await app.Abort(tid);
    co_return AbortedError("write failed");
  }
  co_return co_await app.Commit(tid, options);
}

// The fixed workload: serial transfers ping-ponging `amount` between vault 1
// and vault 2 (direction alternates), coordinated from site 0's application.
// Every transfer spans three sites, so a coordinator-isolating split leaves
// the two vault owners as a connected NBC majority. One transaction per
// transfer, never retried — the oracle reasons about which attempts
// committed, and a retry would be a second attempt.
Async<void> Workload(World* world, PartitionExplorerConfig cfg, std::vector<Status>* statuses,
                     std::vector<bool>* attempted, bool* done) {
  AppClient app(world->site(0));
  const CommitOptions options = cfg.Options();
  for (int i = 0; i < cfg.transfers; ++i) {
    const int from = 1 + (i % 2);
    const int to = 3 - from;
    Status st = co_await OneTransfer(app, Srv(from), Srv(to), cfg.amount, options);
    statuses->push_back(st);
    attempted->push_back(true);
  }
  *done = true;
}

void Violate(PartitionRunResult* out, std::string text) {
  out->ok = false;
  out->violations.push_back(std::move(text));
}

uint64_t Decided(World& world, int site) {
  const TranManCounters& c = world.site(site).tranman().counters();
  return c.committed + c.aborted;
}

}  // namespace

std::string PartitionRunResult::Explain() const {
  std::string out;
  for (const auto& v : violations) {
    out += "  - " + v + "\n";
  }
  if (!nemesis_log.empty()) {
    out += "  nemesis log:\n";
    for (const auto& line : nemesis_log) {
      out += "    " + line + "\n";
    }
  }
  return out;
}

std::string PartitionExplorer::ReplayPrefix() const {
  return ReplayRecipePrefix(config_.seed, config_.Options());
}

PartitionRunResult PartitionExplorer::Run(const NemesisScript& script) {
  PartitionRunResult out;
  out.replay =
      ReplayRecipe(config_.seed, config_.Options(), "CAMELOT_NEMESIS", script.ToString());

  World world(MakeWorldConfig(config_));
  world.history().set_enabled(true);  // Record from the first setup install on.
  const int n = config_.site_count;
  for (int i = 0; i < n; ++i) {
    world.AddServer(i, Srv(i))->CreateObjectForSetup("vault",
                                                     EncodeInt64(config_.initial_balance));
  }

  // In-window decision accounting: between each partition install and the
  // matching heal, count per-site commit/abort decisions. HealAll() emits a
  // synthetic heal, so an un-healed script still closes its window.
  Nemesis nemesis(world.sched(), world.net(), &world.failpoints());
  bool window_open = false;
  std::vector<uint64_t> snapshot(static_cast<size_t>(n), 0);
  std::vector<uint64_t> in_window(static_cast<size_t>(n), 0);
  nemesis.set_on_apply([&](const NemesisEvent& ev) {
    if (ev.action == NemesisEvent::Action::kPartition && !window_open) {
      window_open = true;
      for (int i = 0; i < n; ++i) {
        snapshot[static_cast<size_t>(i)] = Decided(world, i);
      }
    } else if (ev.action == NemesisEvent::Action::kHeal && window_open) {
      window_open = false;
      for (int i = 0; i < n; ++i) {
        in_window[static_cast<size_t>(i)] += Decided(world, i) - snapshot[static_cast<size_t>(i)];
      }
    }
  });
  if (Status s = nemesis.Install(script); !s.ok()) {
    Violate(&out, "nemesis install failed: " + s.message());
    return out;
  }

  std::vector<Status> statuses;
  std::vector<bool> attempted;
  bool done = false;
  world.sched().Spawn(Workload(&world, config_, &statuses, &attempted, &done));
  world.RunFor(config_.workload_window);

  // Force-heal whatever the script left installed, then give the installation
  // a bounded resolution window. The liveness oracle: after this window, no
  // site may still hold an undecided family.
  nemesis.HealAll();
  world.RunFor(config_.resolve_window);

  out.nemesis_log = nemesis.log();
  out.unapplied = nemesis.Unapplied();
  // Unfired trigger arms must not fire on audit traffic (a partition during
  // the balance audit would be a false positive, not a protocol bug).
  world.failpoints().DisarmAll();

  if (!done) {
    Violate(&out, "liveness: workload did not finish (" + std::to_string(statuses.size()) + "/" +
                      std::to_string(config_.transfers) + " transfers attempted)");
  }
  for (int i = 0; i < n; ++i) {
    const size_t live = world.site(i).tranman().live_family_count();
    if (live != 0) {
      Violate(&out, "liveness: site " + std::to_string(i) + " still holds " +
                        std::to_string(live) + " undecided families " +
                        std::to_string(config_.resolve_window / 1000000) +
                        "s after all faults healed");
    }
  }

  // Drain: bounded, so a livelocked run fails loudly instead of hanging.
  bool quiesced = true;
  constexpr size_t kMaxEvents = 2u * 1000 * 1000;
  if (!world.sched().RunUntilIdle(kMaxEvents).drained) {
    quiesced = false;
    Violate(&out, "world did not quiesce within " + std::to_string(kMaxEvents) + " events");
  }

  out.sites.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const TranManCounters& c = world.site(i).tranman().counters();
    SiteObservation& obs = out.sites[static_cast<size_t>(i)];
    obs.decided_in_window = in_window[static_cast<size_t>(i)];
    obs.blocked_periods = c.blocked_periods;
    obs.blocked_time_us = c.blocked_time_us;
    obs.stuck_families = c.stuck_families;
  }
  out.datagrams_reordered = world.net().counters().datagrams_reordered;

  for (const Status& st : statuses) {
    if (st.ok()) {
      ++out.client_ok;
    }
  }
  if (!quiesced || !out.ok) {
    return out;  // No quiescent installation to audit (RunSync would hang).
  }

  // Primitive-cost conformance gate for the fault-free baseline (before the
  // audit transactions add their own traffic): every ping-pong transfer is a
  // 2-update-subordinate commit with no coordinator-site writes, so the
  // whole run's protocol counts are exactly `transfers` times that vector.
  if (script.empty() && done) {
    bool all_ok = true;
    for (const Status& st : statuses) {
      all_ok = all_ok && st.ok();
    }
    if (all_ok) {
      const CommitOptions options = config_.Options();
      CountVector predicted;
      for (int i = 0; i < config_.transfers; ++i) {
        AddCounts(predicted, ExpectedProtocolCounts(options, /*update_subs=*/2,
                                                    /*readonly_subs=*/0,
                                                    /*local_updates=*/false,
                                                    TxnOutcome::kCommit));
      }
      const std::string diff =
          CostLedger::Diff(predicted, world.cost_ledger().ProtocolCounts());
      if (!diff.empty()) {
        Violate(&out, "fault-free run violated primitive-cost conformance:\n" + diff);
      }
    }
  }

  std::vector<TransferAttempt> attempts;
  for (size_t i = 0; i < statuses.size(); ++i) {
    TransferAttempt a;
    a.status = statuses[i];
    a.attempted = attempted[i];
    a.from_vault = 1 + (static_cast<int>(i) % 2);
    a.to_vault = 3 - a.from_vault;
    a.amount = config_.amount;
    attempts.push_back(std::move(a));
  }
  std::vector<std::string> violations;
  AuditBalancesAndSubset(world, n, config_.initial_balance, attempts, &violations);
  AuditLeaks(world, n, &violations);
  AuditExactlyOnce(world, n, &violations);
  for (auto& v : violations) {
    Violate(&out, std::move(v));
  }

  // Isolation gate: the whole run's history — workload, partitions, and the
  // audit transactions above — must replay serializably. A failure dumps the
  // history and extends the recipe so the verdict reproduces offline.
  IsolationReport isolation = IsolationOracle::Check(world.history().events());
  if (!isolation.ok()) {
    for (const IsolationAnomaly& a : isolation.anomalies) {
      Violate(&out, "isolation: " + a.ToString());
    }
    auto dumped = DumpHistoryArtifact(
        world.history(),
        "partition-" + std::to_string(config_.seed) + "-" + ProtocolName(config_.Options()) +
            "-" + std::to_string(std::hash<std::string>{}(out.replay)));
    if (dumped.ok()) {
      out.history_path = *dumped;
      out.replay = WithHistory(out.replay, *dumped);
    }
  }
  return out;
}

void PartitionExplorer::RunScripts(const std::vector<SweepCandidate>& candidates,
                                   std::vector<PartitionSweepFailure>* failures) {
  // Each script runs in its own World, so runs are independent and
  // bit-identical at any thread count; merging in candidate order keeps the
  // failure list (and every replay recipe in it) byte-identical too.
  std::vector<PartitionRunResult> results(candidates.size());
  ParallelFor(ResolveSweepThreads(config_.sweep_threads), candidates.size(),
              [&](size_t i) { results[i] = Run(candidates[i].script); });
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!results[i].ok) {
      PartitionSweepFailure f;
      f.label = candidates[i].label;
      f.script = candidates[i].script;
      f.result = std::move(results[i]);
      failures->push_back(std::move(f));
    }
  }
}

std::vector<PartitionSweepFailure> PartitionExplorer::ExhaustiveSinglePartitionSweep(int* runs) {
  // Every 2-way split of the 3-site world plus total isolation. "" means
  // "partition:" with no groups — every site isolated.
  const std::vector<std::string> kSplits = {"0|1,2", "1|0,2", "2|0,1", ""};
  // Phase windows: when the split installs, relative to the commit protocol's
  // life cycle. Triggers that the workload never reaches leave the run
  // fault-free, which the oracle accepts (Unapplied records them).
  struct Phase {
    const char* name;
    std::string when;
  };
  // "Decided" anchor per protocol: the coordinator's decision force — for
  // Paxos Commit the ballot-0 accept force, the closest durable event to the
  // commit point (the commit record itself is only spooled).
  const CommitProtocol proto = config_.Options().protocol;
  std::string decided_force = "tm.2pc.commit_force.after";
  if (proto == CommitProtocol::kNonBlocking) {
    decided_force = "tm.nbc.commit_force.after";
  } else if (proto == CommitProtocol::kPaxos) {
    decided_force = "tm.paxos.accept_force.after";
  }
  const std::string decided_point = decided_force + "@0#1";
  const std::vector<Phase> kPhases = {
      {"active", "@1000000"},          // Mid-workload, between protocol steps.
      {"prepare", "tm.send.PREPARE@0#1"},  // The instant PREPARE leaves site 0.
      {"voted", "tm.prepared@1#1"},    // First subordinate vote is durable.
      {"decided", decided_point},      // Coordinator's decision hits the disk.
  };

  std::vector<PartitionSweepFailure> failures;
  int count = 0;
  // Fault-free baseline first: it runs the conformance gate (exact
  // predicted-vs-measured primitive counts), so instrumentation or protocol
  // drift fails the sweep even when every faulted run still looks atomic.
  {
    PartitionRunResult baseline = Run(NemesisScript{});
    ++count;
    if (!baseline.ok) {
      PartitionSweepFailure f;
      f.label = ProtocolName(config_.Options()) + "/baseline";
      f.result = std::move(baseline);
      failures.push_back(std::move(f));
    }
  }
  std::vector<SweepCandidate> candidates;
  for (const std::string& split : kSplits) {
    for (const Phase& phase : kPhases) {
      const std::string text = phase.when + "=partition:" + split + ";+4000000=heal";
      Result<NemesisScript> script = NemesisScript::Parse(text);
      CAMELOT_CHECK(script.ok());
      SweepCandidate c;
      c.label = ProtocolName(config_.Options()) + "/" + phase.name + "/split{" +
                (split.empty() ? "isolate-all" : split) + "}";
      c.script = std::move(*script);
      candidates.push_back(std::move(c));
    }
  }
  RunScripts(candidates, &failures);
  count += static_cast<int>(candidates.size());
  if (runs != nullptr) {
    *runs = count;
  }
  return failures;
}

std::vector<PartitionSweepFailure> PartitionExplorer::RandomNemesisSweep(uint64_t rng_seed,
                                                                         int rounds, int* runs) {
  const std::vector<std::string> kSplits = {"0|1,2", "1|0,2", "2|0,1", ""};
  std::vector<PartitionSweepFailure> failures;
  // Script generation draws from the sweep Rng in round order; runs consume
  // no sweep randomness, so pre-generating all scripts and fanning the runs
  // out yields the exact draw sequence (and scripts) of the old serial
  // interleaved loop.
  Rng rng(rng_seed);
  std::vector<SweepCandidate> candidates;
  for (int round = 0; round < rounds; ++round) {
    // 1..3 fault episodes, each an install at a random virtual time undone a
    // random 0.5-4 s later. All episode times land inside the workload
    // window, so HealAll() at its end is a backstop, not the primary heal.
    const int episodes = 1 + static_cast<int>(rng.NextBounded(3));
    std::string text;
    for (int e = 0; e < episodes; ++e) {
      const int64_t start = 500000 + static_cast<int64_t>(rng.NextBounded(7500000));
      const int64_t dur = 500000 + static_cast<int64_t>(rng.NextBounded(3500000));
      std::string fault;
      std::string undo;
      switch (rng.NextBounded(5)) {
        case 0:
          fault = "partition:" + kSplits[rng.NextBounded(kSplits.size())];
          undo = "heal";
          break;
        case 1:
          fault = "loss:" + std::to_string(0.05 + 0.25 * rng.NextDouble());
          undo = "calm";
          break;
        case 2:
          fault = "dup:" + std::to_string(0.05 + 0.25 * rng.NextDouble());
          undo = "calm";
          break;
        case 3:
          fault = "reorder:" + std::to_string(0.1 + 0.4 * rng.NextDouble()) + "," +
                  std::to_string(5000 + rng.NextBounded(60000));
          undo = "calm";
          break;
        default:
          fault = "congest:" + std::to_string(2000 + rng.NextBounded(20000));
          undo = "calm";
          break;
      }
      if (!text.empty()) {
        text += ";";
      }
      text += "@" + std::to_string(start) + "=" + fault + ";+" + std::to_string(dur) + "=" + undo;
    }
    Result<NemesisScript> script = NemesisScript::Parse(text);
    CAMELOT_CHECK(script.ok());
    SweepCandidate c;
    c.label = "random#" + std::to_string(round);
    c.script = std::move(*script);
    candidates.push_back(std::move(c));
  }
  RunScripts(candidates, &failures);
  if (runs != nullptr) {
    *runs = static_cast<int>(candidates.size());
  }
  return failures;
}

}  // namespace camelot
