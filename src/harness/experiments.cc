#include "src/harness/experiments.h"

#include "src/base/logging.h"

namespace camelot {

namespace {

std::string ServerName(int site) { return "server:" + std::to_string(site); }

}  // namespace

Async<Status> MinimalTransaction(AppClient& app, int subordinates, TxnKind kind,
                                 CommitOptions options, int64_t value, TxnOutcome outcome) {
  auto begin = co_await app.Begin();
  if (!begin.ok()) {
    co_return begin.status();
  }
  const Tid tid = *begin;
  for (int site = 0; site <= subordinates; ++site) {
    if (kind == TxnKind::kWrite) {
      Status st = co_await app.WriteInt(tid, ServerName(site), "obj", value);
      if (!st.ok()) {
        co_await app.Abort(tid);
        co_return st;
      }
    } else {
      auto v = co_await app.ReadInt(tid, ServerName(site), "obj");
      if (!v.ok()) {
        co_await app.Abort(tid);
        co_return v.status();
      }
    }
  }
  if (outcome == TxnOutcome::kAbort) {
    co_return co_await app.Abort(tid);
  }
  Status st = co_await app.Commit(tid, options);
  co_return st;
}

namespace {

Async<void> DriveLatency(World& world, const LatencyConfig& config, LatencyResult* out) {
  AppClient app(world.site(0));
  Scheduler& sched = world.sched();
  const int subs = config.subordinates;

  // Warm the buffer pools (the paper reports steady-state latencies).
  co_await MinimalTransaction(app, subs, TxnKind::kWrite, CommitOptions::Optimized(), 0);
  co_await sched.Delay(Usec(300000));

  for (int rep = 0; rep < config.repetitions; ++rep) {
    const SimTime start = sched.now();
    Status st = co_await MinimalTransaction(app, subs, config.kind, config.options, rep);
    if (!st.ok()) {
      ++out->failures;
      co_await sched.Delay(Usec(300000));
      continue;
    }
    const SimTime committed = sched.now();
    out->total_ms.Add(ToMs(committed - start));
    out->tm_ms.Add(ToMs(committed - start) - OperationProcessingMs(subs));

    if (config.pipelined) {
      continue;  // Next transaction starts immediately (the paper's app).
    }

    // Isolated mode: measure the critical path by waiting until every
    // server's lock table is empty.
    while (true) {
      bool any_locks = false;
      for (int site = 0; site <= subs; ++site) {
        if (world.site(site).server(ServerName(site))->locks().held_lock_count() > 0) {
          any_locks = true;
          break;
        }
      }
      if (!any_locks) {
        break;
      }
      co_await sched.Delay(Usec(200));
    }
    out->critical_ms.Add(ToMs(sched.now() - start));

    // Let the epilogue (delayed acks, End records) finish so repetitions are
    // independent ("no other activity is in progress").
    co_await sched.Delay(Usec(250000));
  }
}

}  // namespace

WorldConfig LatencyWorldConfig(int subordinates, uint64_t seed, bool deterministic) {
  WorldConfig cfg;
  cfg.site_count = subordinates + 1;
  cfg.seed = seed;
  if (deterministic) {
    cfg.net.send_jitter_mean = 0;
  cfg.net.stall_probability = 0;
    cfg.net.receive_skew_mean = 0;
  }
  // Plenty of worker threads and negligible per-event CPU: the latency
  // experiments measure the protocols, not queueing.
  cfg.tranman.worker_threads = 20;
  cfg.tranman.cpu_per_event = Usec(150);
  return cfg;
}

LatencyResult RunLatencyExperiment(const LatencyConfig& config) {
  WorldConfig world_cfg = LatencyWorldConfig(config.subordinates, config.seed,
                                             config.deterministic);
  World world(world_cfg);
  world.net().set_use_multicast(config.multicast);
  for (int site = 0; site < world.site_count(); ++site) {
    DataServer* server = world.AddServer(site, ServerName(site));
    server->CreateObjectForSetup("obj", EncodeInt64(0));
  }
  LatencyResult result;
  world.sched().Spawn(DriveLatency(world, config, &result));
  world.RunUntilIdle();
  return result;
}

namespace {

Async<void> DriveThroughputClient(World& world, int pair, TxnKind kind, SimTime warmup_end,
                                  SimTime end, uint64_t* commits) {
  AppClient app(world.site(0));
  Scheduler& sched = world.sched();
  const std::string server = "pair" + std::to_string(pair);
  Rng rng(world.config().seed * 1000003 + static_cast<uint64_t>(pair));
  int64_t next = 0;
  while (sched.now() < end) {
    // A little think time de-phases the clients (real applications are not
    // lock-stepped; without this, log forces never collide and group commit
    // has nothing to batch).
    co_await sched.Delay(
        static_cast<SimDuration>(rng.NextExponential(5000.0)));
    auto begin = co_await app.Begin();
    if (!begin.ok()) {
      co_return;
    }
    Status st;
    if (kind == TxnKind::kWrite) {
      st = co_await app.WriteInt(*begin, server, "obj", next++);
    } else {
      auto v = co_await app.ReadInt(*begin, server, "obj");
      st = v.ok() ? OkStatus() : v.status();
    }
    if (!st.ok()) {
      co_await app.Abort(*begin);
      continue;
    }
    st = co_await app.Commit(*begin);
    if (st.ok() && sched.now() >= warmup_end && sched.now() < end) {
      ++*commits;
    }
  }
}

}  // namespace

ThroughputResult RunThroughputExperiment(const ThroughputConfig& config) {
  WorldConfig cfg;
  cfg.site_count = 1;
  cfg.seed = config.seed;
  cfg.net.send_jitter_mean = 0;
  cfg.net.stall_probability = 0;  // Single-site experiment; no network involved.
  cfg.net.receive_skew_mean = 0;
  // The VAX 8200 profile.
  auto scale = [&](SimDuration d) {
    return static_cast<SimDuration>(static_cast<double>(d) * config.ipc_scale);
  };
  cfg.ipc.local_rpc = scale(cfg.ipc.local_rpc);
  cfg.ipc.local_rpc_server = scale(cfg.ipc.local_rpc_server);
  cfg.ipc.local_oneway = scale(cfg.ipc.local_oneway);
  cfg.ipc.local_out_of_line = scale(cfg.ipc.local_out_of_line);
  cfg.ipc.kernel_cpu_per_ipc = config.kernel_cpu_per_ipc;
  cfg.tranman.worker_threads = config.tranman_threads;
  cfg.tranman.cpu_per_event = config.cpu_per_event;
  cfg.log.group_commit = config.group_commit;
  cfg.log.force_latency = config.force_latency;

  World world(cfg);
  for (int pair = 0; pair < config.pairs; ++pair) {
    DataServer* server = world.AddServer(0, "pair" + std::to_string(pair));
    server->CreateObjectForSetup("obj", EncodeInt64(0));
  }

  const SimTime warmup_end = world.sched().now() + config.duration / 10;
  const SimTime end = world.sched().now() + config.duration;
  uint64_t commits = 0;
  for (int pair = 0; pair < config.pairs; ++pair) {
    world.sched().Spawn(
        DriveThroughputClient(world, pair, config.kind, warmup_end, end, &commits));
  }
  world.RunUntilIdle();

  ThroughputResult result;
  result.commits = commits;
  result.tps = static_cast<double>(commits) /
               (static_cast<double>(end - warmup_end) / 1e6);
  result.disk_writes = world.site(0).log().counters().disk_writes;
  result.pool_queued_events = world.site(0).tranman().pool().queued_events();
  return result;
}

}  // namespace camelot
