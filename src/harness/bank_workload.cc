#include "src/harness/bank_workload.h"

#include <utility>

#include "src/base/rng.h"

namespace camelot {
namespace {

struct Account {
  int site;
  int index;
};

Account PickAccount(Rng& rng, int sites, int per_site) {
  return Account{static_cast<int>(rng.NextBounded(static_cast<uint64_t>(sites))),
                 static_cast<int>(rng.NextBounded(static_cast<uint64_t>(per_site)))};
}

Async<void> BankClient(World* world, BankWorkloadConfig cfg, int id, BankWorkloadStats* stats) {
  const int sites = world->site_count();
  const int home = id % sites;
  AppClient app(world->site(home));
  Rng rng(cfg.rng_seed * 1000003 + static_cast<uint64_t>(id) * 7919 + 17);
  for (int t = 0; t < cfg.transfers_per_client; ++t) {
    // A chaos schedule may have the home site down; wait out the outage,
    // bounded so the run always quiesces even if healing fails.
    for (int wait = 0; wait < 8 && !world->site(home).site().up(); ++wait) {
      co_await world->sched().Delay(Sec(1));
    }
    if (!world->site(home).site().up()) {
      ++stats->aborted;
      continue;
    }
    Account from = PickAccount(rng, sites, cfg.accounts_per_site);
    Account to = PickAccount(rng, sites, cfg.accounts_per_site);
    if (from.site == to.site && from.index == to.index) {
      to.index = (to.index + 1) % cfg.accounts_per_site;
      if (cfg.accounts_per_site == 1) {
        to.site = (to.site + 1) % sites;
      }
    }
    const int64_t amount = 1 + static_cast<int64_t>(
                                   rng.NextBounded(static_cast<uint64_t>(cfg.max_amount)));
    auto begin = co_await app.Begin();
    if (!begin.ok()) {
      ++stats->aborted;
      continue;
    }
    const Tid tid = *begin;
    auto a = co_await app.ReadInt(tid, BankServerName(from.site), BankAccountName(from.index));
    auto b = co_await app.ReadInt(tid, BankServerName(to.site), BankAccountName(to.index));
    bool staged = a.ok() && b.ok();
    if (staged) {
      Status w1 = co_await app.WriteInt(tid, BankServerName(from.site),
                                        BankAccountName(from.index), *a - amount);
      Status w2 = co_await app.WriteInt(tid, BankServerName(to.site),
                                        BankAccountName(to.index), *b + amount);
      staged = w1.ok() && w2.ok();
    }
    if (!staged) {
      co_await app.Abort(tid);
      ++stats->aborted;
      continue;
    }
    const SimTime before = world->sched().now();
    Status st = co_await app.Commit(tid, cfg.options);
    if (st.ok()) {
      ++stats->committed;
      stats->commit_latency_total += world->sched().now() - before;
    } else {
      ++stats->aborted;
    }
  }
  ++stats->finished_clients;
}

}  // namespace

std::string BankServerName(int site) { return "bank:" + std::to_string(site); }

std::string BankAccountName(int index) { return "acct" + std::to_string(index); }

void SetupBank(World& world, const BankWorkloadConfig& cfg) {
  for (int i = 0; i < world.site_count(); ++i) {
    DataServer* server = world.AddServer(i, BankServerName(i));
    for (int k = 0; k < cfg.accounts_per_site; ++k) {
      server->CreateObjectForSetup(BankAccountName(k), EncodeInt64(cfg.initial_balance));
    }
  }
}

void SpawnBankClients(World& world, const BankWorkloadConfig& cfg, BankWorkloadStats* stats) {
  for (int c = 0; c < cfg.clients; ++c) {
    world.sched().Spawn(BankClient(&world, cfg, c, stats));
  }
}

namespace {

// One read-only transaction per account; balances can legitimately be
// negative (no overdraft check), so success is reported out of band.
struct AuditRead {
  bool ok = false;
  int64_t balance = 0;
};

Async<AuditRead> ReadAccount(AppClient& app, std::string server, std::string object) {
  auto begin = co_await app.Begin();
  if (!begin.ok()) {
    co_return AuditRead{};
  }
  auto value = co_await app.ReadInt(*begin, server, object);
  co_await app.Commit(*begin);
  if (!value.ok()) {
    co_return AuditRead{};
  }
  co_return AuditRead{true, *value};
}

}  // namespace

std::vector<std::string> AuditBankInvariant(World& world, const BankWorkloadConfig& cfg,
                                            IsolationReport* report) {
  std::vector<std::string> violations;
  const int n = world.site_count();
  AppClient first(world.site(0));
  AppClient second(world.site(n - 1));
  int64_t total = 0;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < cfg.accounts_per_site; ++k) {
      const std::string server = BankServerName(i);
      const std::string object = BankAccountName(k);
      const AuditRead a = world.RunSync(ReadAccount(first, server, object)).value_or(AuditRead{});
      const AuditRead b = world.RunSync(ReadAccount(second, server, object)).value_or(AuditRead{});
      if (!a.ok || !b.ok) {
        violations.push_back("audit read of " + server + "/" + object + " failed");
        continue;
      }
      if (a.balance != b.balance) {
        // assertDataSync: two sites' views of one account must agree.
        violations.push_back("observers disagree about " + server + "/" + object + ": " +
                             std::to_string(a.balance) + " vs " + std::to_string(b.balance));
      }
      total += a.balance;
      if (report != nullptr &&
          !report->CheckFinalValue(server, object, EncodeInt64(a.balance))) {
        violations.push_back("final " + server + "/" + object +
                             " diverges from the serial replay");
      }
    }
  }
  const int64_t funded =
      static_cast<int64_t>(n) * cfg.accounts_per_site * cfg.initial_balance;
  if (violations.empty() && total != funded) {
    violations.push_back("bank money not conserved: total " + std::to_string(total) +
                         " != " + std::to_string(funded));
  }
  return violations;
}

}  // namespace camelot
