#include "src/harness/isolation_oracle.h"

#include <algorithm>
#include <cstring>

namespace camelot {
namespace {

using ObjectKey = std::pair<std::string, std::string>;  // (server, object).

// Values are int64 in every gated workload; fall back to hex for odd sizes.
std::string ValueStr(const Bytes& v) {
  if (v.empty()) {
    return "(empty)";
  }
  if (v.size() == 8) {
    int64_t x = 0;
    std::memcpy(&x, v.data(), 8);
    return std::to_string(x);
  }
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  for (uint8_t byte : v) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

struct FamilyHistory {
  std::vector<const HistoryEvent*> ops;  // kRead/kWrite, in recorded order.
  bool has_commit = false;
  bool has_abort = false;
  SimTime commit_ts = 0;  // Earliest commit transition — the serialization point.

  bool WroteObject(const ObjectKey& key) const {
    for (const HistoryEvent* e : ops) {
      if (e->op == HistoryOp::kWrite && e->server == key.first && e->object == key.second) {
        return true;
      }
    }
    return false;
  }
  bool WroteAnything() const {
    return std::any_of(ops.begin(), ops.end(),
                       [](const HistoryEvent* e) { return e->op == HistoryOp::kWrite; });
  }
};

// One write (or setup install) of a value, for provenance lookups.
struct VersionSource {
  FamilyId family;  // Invalid for kInit.
  SimTime ts = 0;
};

}  // namespace

const char* AnomalyName(AnomalyType type) {
  switch (type) {
    case AnomalyType::kDivergentOutcome:
      return "divergent-outcome";
    case AnomalyType::kReadOfAborted:
      return "read-of-aborted";
    case AnomalyType::kDirtyRead:
      return "dirty-read";
    case AnomalyType::kLostUpdate:
      return "lost-update";
    case AnomalyType::kWriteSkew:
      return "write-skew";
    case AnomalyType::kNonSerializableRead:
      return "non-serializable-read";
    case AnomalyType::kDivergentFinalState:
      return "divergent-final-state";
  }
  return "?";
}

std::string IsolationAnomaly::ToString() const {
  std::string out = AnomalyName(type);
  if (family.IsValid()) {
    out += " family=" + camelot::ToString(family.origin) + ":" +
           std::to_string(family.sequence);
  }
  if (!object.empty()) {
    out += " at " + server + "/" + object;
  }
  if (!detail.empty()) {
    out += ": " + detail;
  }
  return out;
}

std::string IsolationReport::Explain() const {
  std::string out = "isolation: " + std::to_string(committed) + " committed, " +
                    std::to_string(aborted) + " aborted, " + std::to_string(undecided) +
                    " undecided, " + std::to_string(reads_checked) + " reads checked, " +
                    std::to_string(anomalies.size()) + " anomalies\n";
  for (const IsolationAnomaly& a : anomalies) {
    out += "  " + a.ToString() + "\n";
  }
  return out;
}

bool IsolationReport::CheckFinalValue(const std::string& server, const std::string& object,
                                      const Bytes& actual) {
  auto it = final_state.find({server, object});
  if (it == final_state.end()) {
    return true;  // Object unknown to the history; nothing to compare against.
  }
  if (it->second == actual) {
    return true;
  }
  anomalies.push_back(IsolationAnomaly{
      AnomalyType::kDivergentFinalState, FamilyId{kInvalidSite, 0}, server, object,
      "observed " + ValueStr(actual) + ", serial replay has " + ValueStr(it->second)});
  return false;
}

IsolationReport IsolationOracle::Check(const std::vector<HistoryEvent>& events) {
  IsolationReport report;

  // Pass 1: group per family, find outcomes, and index every written value's
  // provenance (aborted and undecided writers included — that is how leaked
  // writes get named).
  std::map<FamilyId, FamilyHistory> families;
  std::map<ObjectKey, std::vector<std::pair<Bytes, VersionSource>>> provenance;
  std::map<ObjectKey, Bytes> model;  // Seeded by kInit, advanced by the replay.
  for (const HistoryEvent& e : events) {
    switch (e.op) {
      case HistoryOp::kInit:
        model[{e.server, e.object}] = e.value;
        provenance[{e.server, e.object}].push_back(
            {e.value, VersionSource{FamilyId{kInvalidSite, 0}, e.ts}});
        break;
      case HistoryOp::kRead:
      case HistoryOp::kWrite: {
        families[e.tid.family].ops.push_back(&e);
        if (e.op == HistoryOp::kWrite) {
          provenance[{e.server, e.object}].push_back(
              {e.value, VersionSource{e.tid.family, e.ts}});
        }
        break;
      }
      case HistoryOp::kCommit: {
        FamilyHistory& fam = families[e.tid.family];
        if (!fam.has_commit || e.ts < fam.commit_ts) {
          fam.commit_ts = e.ts;
        }
        fam.has_commit = true;
        break;
      }
      case HistoryOp::kAbort:
        families[e.tid.family].has_abort = true;
        break;
    }
  }

  std::vector<std::pair<FamilyId, const FamilyHistory*>> committed;
  for (const auto& [id, fam] : families) {
    if (fam.has_commit && fam.has_abort) {
      report.anomalies.push_back(
          IsolationAnomaly{AnomalyType::kDivergentOutcome, id, "", "",
                           "family committed at one site and aborted at another"});
    }
    if (fam.has_commit) {
      ++report.committed;
      committed.push_back({id, &fam});
    } else if (fam.has_abort) {
      ++report.aborted;
    } else if (!fam.ops.empty()) {
      ++report.undecided;
    }
  }

  // Serial order: earliest commit transition, family id as the deterministic
  // tie-break (two families can commit at the same virtual microsecond).
  std::sort(committed.begin(), committed.end(), [](const auto& a, const auto& b) {
    if (a.second->commit_ts != b.second->commit_ts) {
      return a.second->commit_ts < b.second->commit_ts;
    }
    return a.first < b.first;
  });

  // Classifies a committed read that disagrees with the model by the observed
  // value's provenance. Lower rank = stronger (more specific) classification.
  auto classify = [&](const FamilyId& reader, const FamilyHistory& fam,
                      const HistoryEvent& read) {
    const ObjectKey key{read.server, read.object};
    int best_rank = 99;
    AnomalyType best = AnomalyType::kNonSerializableRead;
    std::string evidence = "value of unknown provenance";
    auto consider = [&](int rank, AnomalyType type, std::string why) {
      if (rank < best_rank) {
        best_rank = rank;
        best = type;
        evidence = std::move(why);
      }
    };
    auto prov = provenance.find(key);
    if (prov != provenance.end()) {
      for (const auto& [value, source] : prov->second) {
        if (value != read.value || source.family == reader) {
          continue;
        }
        if (!source.family.IsValid()) {
          // Initial version, superseded by the time of this serialization point.
          consider(4, fam.WroteObject(key) ? AnomalyType::kLostUpdate
                   : fam.WroteAnything()  ? AnomalyType::kWriteSkew
                                          : AnomalyType::kNonSerializableRead,
                   "stale initial version");
          continue;
        }
        auto wit = families.find(source.family);
        if (wit == families.end()) {
          continue;
        }
        const FamilyHistory& writer = wit->second;
        if (!writer.has_commit) {
          if (writer.has_abort) {
            consider(1, AnomalyType::kReadOfAborted,
                     "written by aborted family " + std::to_string(source.family.sequence));
          } else {
            consider(2, AnomalyType::kDirtyRead,
                     "written by undecided family " + std::to_string(source.family.sequence));
          }
        } else if (read.ts < writer.commit_ts) {
          consider(2, AnomalyType::kDirtyRead,
                   "read before writer family " + std::to_string(source.family.sequence) +
                       " committed");
        } else {
          consider(3, fam.WroteObject(key) ? AnomalyType::kLostUpdate
                   : fam.WroteAnything()  ? AnomalyType::kWriteSkew
                                          : AnomalyType::kNonSerializableRead,
                   "stale committed version from family " +
                       std::to_string(source.family.sequence));
        }
      }
    }
    report.anomalies.push_back(IsolationAnomaly{
        best, reader, read.server, read.object,
        "read " + ValueStr(read.value) + ", serial replay has " +
            ValueStr(model[key]) + " (" + evidence + ")"});
  };

  // Pass 2: the serial replay. Each committed family's ops run in recorded
  // order at its serialization point; reads must match the model exactly.
  for (const auto& [id, fam] : committed) {
    for (const HistoryEvent* e : fam->ops) {
      const ObjectKey key{e->server, e->object};
      if (e->op == HistoryOp::kRead) {
        ++report.reads_checked;
        auto it = model.find(key);
        if (it == model.end() || it->second != e->value) {
          classify(id, *fam, *e);
        }
      } else {
        model[key] = e->value;
      }
    }
  }

  report.final_state = std::move(model);
  return report;
}

}  // namespace camelot
