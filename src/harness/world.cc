#include "src/harness/world.h"

#include "src/base/logging.h"
#include "src/stats/table.h"

namespace camelot {

CamelotSite::CamelotSite(Scheduler& sched, Network& net, NameService& names, SiteId id,
                         const WorldConfig& config, FailpointRegistry& failpoints,
                         CostLedger& cost_ledger, HistoryRecorder& history)
    : site_(sched, net, id, config.ipc),
      netmsg_(site_, net),
      names_(names),
      comman_(site_, netmsg_, names),
      log_(sched, config.log),
      diskmgr_(sched, log_, config.disk),
      tranman_(site_, net, comman_, log_, config.tranman),
      recovery_(site_, diskmgr_, log_, tranman_),
      history_(&history) {
  site_.AddCrashListener([this] {
    log_.OnCrash();
    diskmgr_.OnCrash();
  });
  // Every component that hosts failpoints shares one per-site handle into the
  // world's registry; a kCrash trigger takes this whole site down.
  const Failpoints handle(
      &failpoints, id, [this] { return site_.sched().now(); },
      [this] { return site_.up(); },
      [this] {
        if (site_.up()) {
          site_.Crash();
        }
      });
  log_.set_failpoints(handle);
  diskmgr_.set_failpoints(handle);
  tranman_.set_failpoints(handle);
  recovery_.set_failpoints(handle);
  failpoint_handle_ = handle;
  // Every top-level outcome transition this site applies lands in the
  // world-wide history (a no-op while the recorder is disabled).
  tranman_.set_outcome_hook([this](const FamilyId& family, bool committed) {
    history_->Record(HistoryEvent{
        committed ? HistoryOp::kCommit : HistoryOp::kAbort, site_.sched().now(),
        site_.id(), Tid{family, 0, 0}, std::string(), std::string(), Bytes()});
  });
  // Likewise one per-site recorder into the world's cost ledger: the IPC
  // layer and the stable log tag their primitives with this site's id.
  const CostRecorder recorder(&cost_ledger, id);
  site_.set_cost_recorder(recorder);
  log_.set_cost_recorder(recorder);
  // Media recovery: a CRC-failing data page (foreground read or background
  // scrub) is rebuilt by redoing its history from the log.
  diskmgr_.set_media_repair([this](std::string segment, std::string object) {
    return recovery_.RebuildPage(std::move(segment), std::move(object));
  });
  diskmgr_.StartScrubber();
}

void CamelotSite::RecordRecovery(const RecoveryReport& report) {
  last_recovery_ = report;
  ++recovery_totals_.recoveries;
  if (!report.status.ok()) {
    ++recovery_totals_.failed_recoveries;
  }
  recovery_totals_.frames_salvaged += report.frames_salvaged;
  recovery_totals_.pages_repaired += report.pages_repaired;
  recovery_totals_.repair_failures += report.repair_failures;
}

DataServer* CamelotSite::AddServer(const std::string& name, ServerConfig config) {
  auto server = std::make_unique<DataServer>(site_, name, diskmgr_, names_, config);
  DataServer* raw = server.get();
  raw->set_failpoints(failpoint_handle_);
  raw->set_history_hook([this, raw](const Tid& tid, const std::string& object,
                                    const Bytes& value, ServerHistoryOp op) {
    HistoryOp hop = HistoryOp::kRead;
    if (op == ServerHistoryOp::kWrite) {
      hop = HistoryOp::kWrite;
    } else if (op == ServerHistoryOp::kInit) {
      hop = HistoryOp::kInit;
    }
    history_->Record(HistoryEvent{hop, site_.sched().now(), site_.id(), tid, raw->name(),
                                  object, value});
  });
  servers_.emplace(name, std::move(server));
  return raw;
}

DataServer* CamelotSite::server(const std::string& name) {
  auto it = servers_.find(name);
  return it == servers_.end() ? nullptr : it->second.get();
}

std::map<std::string, DataServer*> CamelotSite::ServerMap() {
  std::map<std::string, DataServer*> out;
  for (auto& [name, server] : servers_) {
    out.emplace(name, server.get());
  }
  return out;
}

World::World(WorldConfig config)
    : config_(config), sched_(config.seed), net_(sched_, config.net) {
  net_.set_cost_ledger(&cost_ledger_);
  for (int i = 0; i < config.site_count; ++i) {
    sites_.push_back(std::make_unique<CamelotSite>(sched_, net_, names_,
                                                   SiteId{static_cast<uint32_t>(i)}, config_,
                                                   failpoints_, cost_ledger_, history_));
  }
}

DataServer* World::AddServer(int site_index, const std::string& name) {
  return site(site_index).AddServer(name, config_.server);
}

void World::Crash(int site_index) { site(site_index).site().Crash(); }

void World::Restart(int site_index) {
  CamelotSite& s = site(site_index);
  s.site().Restart();
  sched_.Spawn([](CamelotSite* cs) -> Async<void> {
    RecoveryReport report = co_await cs->recovery().Recover(cs->ServerMap());
    if (!cs->site().up()) {
      // A failpoint crashed the site mid-recovery: the interrupted pass does
      // not count as a recovery; the site stays down until restarted again.
      co_return;
    }
    cs->RecordRecovery(report);
    if (!report.status.ok()) {
      // Interior log corruption: the durable state is not trustworthy.
      // Refuse service (stay down) rather than run on a silently truncated
      // history — a real installation would page an operator for the archive.
      cs->site().Crash();
      co_return;
    }
    cs->tranman().AnnounceRecovered();
    cs->diskmgr().StartScrubber();
  }(&s));
}

std::string World::StatsReport() {
  Table table({"METRIC"});
  std::vector<std::string> headers{"METRIC"};
  for (size_t i = 0; i < sites_.size(); ++i) {
    headers.push_back("site " + std::to_string(i));
  }
  Table report(headers);
  auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells{name};
    for (auto& site : sites_) {
      cells.push_back(std::to_string(getter(*site)));
    }
    report.AddRow(cells);
  };
  row("up", [](CamelotSite& s) {
    return static_cast<uint64_t>(s.site().up() ? 1 : 0);
  });
  row("txns begun", [](CamelotSite& s) {
    return s.tranman().counters().begun;
  });
  row("txns committed", [](CamelotSite& s) {
    return s.tranman().counters().committed;
  });
  row("txns aborted", [](CamelotSite& s) {
    return s.tranman().counters().aborted;
  });
  row("prepares handled", [](CamelotSite& s) {
    return s.tranman().counters().prepares_handled;
  });
  row("read-only votes", [](CamelotSite& s) {
    return s.tranman().counters().read_only_votes;
  });
  row("blocked periods", [](CamelotSite& s) {
    return s.tranman().counters().blocked_periods;
  });
  row("blocked time (us)", [](CamelotSite& s) {
    return s.tranman().counters().blocked_time_us;
  });
  row("stuck families", [](CamelotSite& s) {
    return s.tranman().counters().stuck_families;
  });
  row("duplicate effects", [](CamelotSite& s) {
    return s.tranman().counters().duplicate_effects;
  });
  row("lock hold time (us)", [](CamelotSite& s) {
    uint64_t total = 0;
    for (auto& [name, server] : s.ServerMap()) {
      total += server->locks().counters().total_hold_time_us;
    }
    return total;
  });
  row("takeovers", [](CamelotSite& s) {
    return s.tranman().counters().takeovers;
  });
  row("orphans aborted", [](CamelotSite& s) {
    return s.tranman().counters().orphans_aborted;
  });
  row("heuristic resolutions", [](CamelotSite& s) {
    return s.tranman().counters().heuristic_resolutions;
  });
  row("heuristic damage", [](CamelotSite& s) {
    return s.tranman().counters().heuristic_damage;
  });
  row("live families", [](CamelotSite& s) {
    return static_cast<uint64_t>(s.tranman().live_family_count());
  });
  row("log appends", [](CamelotSite& s) {
    return s.log().counters().appends;
  });
  row("log force requests", [](CamelotSite& s) {
    return s.log().counters().force_requests;
  });
  row("log disk writes", [](CamelotSite& s) {
    return s.log().counters().disk_writes;
  });
  row("log records batched", [](CamelotSite& s) {
    return s.log().counters().records_batched;
  });
  row("data reads (hit)", [](CamelotSite& s) {
    return s.diskmgr().counters().reads_hit;
  });
  row("data reads (miss)", [](CamelotSite& s) {
    return s.diskmgr().counters().reads_miss;
  });
  row("pool evictions", [](CamelotSite& s) {
    return s.diskmgr().counters().evictions;
  });
  row("log mirror writes", [](CamelotSite& s) {
    return s.log().counters().mirror_writes;
  });
  row("log torn writes", [](CamelotSite& s) {
    return s.log().counters().torn_writes_injected;
  });
  row("log frames salvaged", [](CamelotSite& s) {
    return s.log().counters().frames_salvaged;
  });
  row("data crc failures", [](CamelotSite& s) {
    return s.diskmgr().counters().crc_failures_detected;
  });
  row("data pages repaired", [](CamelotSite& s) {
    return s.diskmgr().counters().pages_repaired;
  });
  row("pages scrubbed", [](CamelotSite& s) {
    return s.diskmgr().counters().pages_scrubbed;
  });
  row("restart pages rebuilt", [](CamelotSite& s) {
    return static_cast<uint64_t>(s.recovery_totals().pages_repaired);
  });
  row("pool queued events", [](CamelotSite& s) {
    return s.tranman().pool().queued_events();
  });
  row("pool wait p99 (us)", [](CamelotSite& s) {
    return static_cast<uint64_t>(s.tranman().pool().queued_time_us().Percentile(99));
  });
  row("pool depth hwm", [](CamelotSite& s) {
    return static_cast<uint64_t>(s.tranman().pool().depth_high_watermark());
  });
  row("admission rejects", [](CamelotSite& s) {
    return s.tranman().counters().overload_rejects;
  });
  row("deadline shed", [](CamelotSite& s) {
    return s.tranman().counters().deadline_shed;
  });
  row("prepares shed", [](CamelotSite& s) {
    return s.tranman().counters().prepares_shed;
  });
  row("off-path dropped", [](CamelotSite& s) {
    return s.tranman().counters().offpath_dropped;
  });
  row("server deadline rejects", [](CamelotSite& s) {
    uint64_t total = 0;
    for (auto& [name, server] : s.ServerMap()) {
      total += server->counters().deadline_rejects;
    }
    return total;
  });
  row("rpc retransmits", [](CamelotSite& s) {
    return s.netmsg().retransmits();
  });
  row("rpc retries suppressed", [](CamelotSite& s) {
    return s.netmsg().retransmits_suppressed();
  });
  std::string out = report.Render();
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "network: %llu datagrams sent, %llu delivered, %llu lost, %llu dup'd, "
                "%llu reordered, %llu multicasts\n",
                static_cast<unsigned long long>(net_.counters().datagrams_sent),
                static_cast<unsigned long long>(net_.counters().datagrams_delivered),
                static_cast<unsigned long long>(net_.counters().datagrams_lost),
                static_cast<unsigned long long>(net_.counters().datagrams_duplicated),
                static_cast<unsigned long long>(net_.counters().datagrams_reordered),
                static_cast<unsigned long long>(net_.counters().multicasts_sent));
  out += buf;
  return out;
}

// --- AppClient -------------------------------------------------------------------

Async<Result<Tid>> AppClient::Begin(Tid parent) {
  RpcResult result = co_await home_.site().CallLocal(kTranManServiceName, kTmBegin,
                                                     EncodeBeginRequest(parent),
                                                     RpcContext{home_.site().id(), parent,
                                                                deadline_},
                                                     /*to_data_server=*/false);
  if (!result.status.ok()) {
    co_return result.status;
  }
  ByteReader r(result.body);
  const Tid tid = r.Transaction();
  if (!r.ok()) {
    co_return CorruptionError("bad begin response");
  }
  co_return tid;
}

Async<Status> AppClient::Commit(const Tid& tid, CommitOptions options) {
  RpcResult result = co_await home_.site().CallLocal(kTranManServiceName, kTmCommit,
                                                     EncodeCommitRequest(tid, options),
                                                     RpcContext{home_.site().id(), tid, deadline_},
                                                     /*to_data_server=*/false);
  co_return result.status;
}

Async<Status> AppClient::Abort(const Tid& tid) {
  RpcResult result = co_await home_.site().CallLocal(kTranManServiceName, kTmAbort,
                                                     EncodeTidOnly(tid),
                                                     RpcContext{home_.site().id(), tid, deadline_},
                                                     /*to_data_server=*/false);
  co_return result.status;
}

Async<Result<Bytes>> AppClient::Read(const Tid& tid, const std::string& server,
                                     const std::string& object) {
  RpcResult result =
      co_await home_.comman().Call(server, kSrvRead, EncodeObjectRequest(tid, object), tid,
                                   /*trace=*/nullptr, deadline_);
  if (!result.status.ok()) {
    co_return result.status;
  }
  ByteReader r(result.body);
  Bytes value = r.Blob();
  if (!r.ok()) {
    co_return CorruptionError("bad read response");
  }
  co_return value;
}

Async<Status> AppClient::Write(const Tid& tid, const std::string& server,
                               const std::string& object, Bytes value) {
  RpcResult result = co_await home_.comman().Call(server, kSrvWrite,
                                                  EncodeWriteRequest(tid, object, value), tid,
                                                  /*trace=*/nullptr, deadline_);
  co_return result.status;
}

Async<Result<int64_t>> AppClient::ReadInt(const Tid& tid, const std::string& server,
                                          const std::string& object) {
  auto result = co_await Read(tid, server, object);
  if (!result.ok()) {
    co_return result.status();
  }
  co_return DecodeInt64(*result);
}

Async<Status> AppClient::WriteInt(const Tid& tid, const std::string& server,
                                  const std::string& object, int64_t value) {
  Status status = co_await Write(tid, server, object, EncodeInt64(value));
  co_return status;
}

}  // namespace camelot
