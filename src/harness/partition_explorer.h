// PartitionExplorer: systematic partition-schedule exploration with a
// liveness/availability oracle — the network-fault twin of CrashExplorer.
//
// Each run builds a fresh CamelotWorld, drives a fixed transfer workload
// (vault 1 <-> vault 2 ping-pong coordinated from site 0, so every transfer
// spans three sites and NBC has a quorum to win on either side of a
// coordinator-isolating split), installs a NemesisScript against the live
// network, force-heals every fault at the end of the workload window, and
// audits:
//
//   - liveness: within `resolve_window` of virtual time after HealAll(),
//     every started transaction family reaches a decided outcome at every
//     site (zero live families), and the world then quiesces;
//   - safety: the shared crash-explorer oracle — observer agreement, money
//     conservation, commit-subset match, zero leaked locks/families, and
//     exactly-once effects under datagram duplication and reordering;
//   - isolation: the run's recorded operation history replays serializably
//     (src/harness/isolation_oracle.h); a failure names the anomaly, dumps
//     the history file, and appends CAMELOT_HISTORY=<file> to the recipe;
//   - availability evidence: per-site decisions *inside* the fault window
//     (counted between each partition install and the matching heal) plus
//     blocked-period/blocked-time counters, so tests can assert the paper's
//     blocking claim — 2PC subordinates stall while a partition isolates the
//     coordinator, NBC's connected quorum decides anyway.
//
// Every failing run carries a one-line replay recipe:
//   CAMELOT_SEED=<s> CAMELOT_PROTOCOL=<2pc|nbc> CAMELOT_NEMESIS='<script>'
// which partition_schedule_test honors via those environment variables.
#ifndef SRC_HARNESS_PARTITION_EXPLORER_H_
#define SRC_HARNESS_PARTITION_EXPLORER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/harness/nemesis.h"
#include "src/harness/world.h"
#include "src/tranman/local_api.h"

namespace camelot {

struct PartitionExplorerConfig {
  int site_count = 3;
  uint64_t seed = 1;
  bool non_blocking = false;  // Commit protocol for the workload's transfers.
  // Full four-variant selection; when set it overrides non_blocking (see
  // ExplorerConfig::variant — same contract).
  std::optional<CommitOptions> variant;

  CommitOptions Options() const {
    return variant.value_or(non_blocking ? CommitOptions::NonBlocking()
                                         : CommitOptions::Optimized());
  }
  int transfers = 4;          // Serial; transfer i moves amount between vaults
                              // 1 and 2 (direction alternates), coordinated
                              // from site 0.
  int64_t initial_balance = 1000;
  int64_t amount = 10;
  // Virtual time allotted to the workload (faults fire inside this window;
  // HealAll() runs at its end), then to post-heal resolution before the
  // liveness check.
  SimDuration workload_window = Sec(20);
  SimDuration resolve_window = Sec(20);
  // Host threads for the sweep fan-out (each script runs in an independent
  // World, so runs are bit-identical at any thread count and failures are
  // merged in script order). 0 = CAMELOT_SWEEP_THREADS / host default.
  int sweep_threads = 0;
};

// Per-site availability evidence gathered across every fault window.
struct SiteObservation {
  uint64_t decided_in_window = 0;  // committed+aborted deltas while partitioned.
  uint64_t blocked_periods = 0;    // Final counter values (whole run).
  uint64_t blocked_time_us = 0;
  uint64_t stuck_families = 0;
};

struct PartitionRunResult {
  bool ok = true;
  std::vector<std::string> violations;  // Oracle failures, human-readable.
  int client_ok = 0;                    // Transfers whose commit returned OK.
  std::vector<SiteObservation> sites;
  uint64_t datagrams_reordered = 0;
  std::vector<std::string> nemesis_log;  // Applied events, timestamped.
  std::vector<std::string> unapplied;    // Events whose condition never fired.
  std::string replay;                    // One-line replay recipe for this run.
  std::string history_path;              // Dumped history (isolation failures only).

  std::string Explain() const;  // Violations joined, one per line.
};

struct PartitionSweepFailure {
  std::string label;
  NemesisScript script;
  PartitionRunResult result;
};

class PartitionExplorer {
 public:
  explicit PartitionExplorer(PartitionExplorerConfig config) : config_(config) {}

  const PartitionExplorerConfig& config() const { return config_; }

  // One full run: install `script`, drive workload, HealAll, resolve, audit.
  PartitionRunResult Run(const NemesisScript& script);

  // One run per {group split} x {phase window}: the split is installed when
  // the phase trigger fires (workload active / PREPARE sent / first sub voted
  // / decision forced) and healed 4 virtual seconds later. Covers every
  // 2-way split of a 3-site world plus total isolation, under the configured
  // protocol. Returns the failing runs; `runs` (optional) counts runs.
  std::vector<PartitionSweepFailure> ExhaustiveSinglePartitionSweep(int* runs = nullptr);

  // `rounds` seeded random multi-fault scripts: partition episodes mixed with
  // loss / duplication / reorder / congestion bursts, each force-healed at
  // the end of the workload window.
  std::vector<PartitionSweepFailure> RandomNemesisSweep(uint64_t rng_seed, int rounds,
                                                        int* runs = nullptr);

  // The replay recipe prefix for this configuration (seed + protocol).
  std::string ReplayPrefix() const;

 private:
  struct SweepCandidate {
    std::string label;
    NemesisScript script;
  };

  // Fan the candidate scripts across the sweep thread pool, appending the
  // failing runs to `failures` in candidate order.
  void RunScripts(const std::vector<SweepCandidate>& candidates,
                  std::vector<PartitionSweepFailure>* failures);

  PartitionExplorerConfig config_;
};

}  // namespace camelot

#endif  // SRC_HARNESS_PARTITION_EXPLORER_H_
