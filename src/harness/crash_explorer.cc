#include "src/harness/crash_explorer.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/static_analysis.h"
#include "src/harness/isolation_oracle.h"
#include "src/harness/oracle.h"
#include "src/harness/parallel.h"
#include "src/harness/replay.h"

namespace camelot {
namespace {

std::string Srv(int i) { return "server:" + std::to_string(i); }

// Tight protocol timers (the failure_test tuning): crash scenarios resolve in
// seconds of virtual time, and zero jitter keeps every run bit-deterministic.
WorldConfig MakeWorldConfig(const ExplorerConfig& cfg) {
  WorldConfig w;
  w.site_count = cfg.site_count;
  w.seed = cfg.seed;
  w.net.send_jitter_mean = 0;
  w.net.stall_probability = 0;
  w.net.receive_skew_mean = 0;
  w.tranman.outcome_timeout = Usec(400000);
  w.tranman.retry_interval = Usec(300000);
  w.tranman.takeover_backoff = Usec(300000);
  w.tranman.orphan_check_interval = Sec(1.0);
  w.ipc.rpc_timeout = Sec(1.5);
  w.server.lock_wait_timeout = Sec(1.0);
  return w;
}

Async<Status> OneTransfer(AppClient& app, std::string from_srv, std::string to_srv,
                          int64_t amount, CommitOptions options) {
  auto begin = co_await app.Begin();
  if (!begin.ok()) {
    co_return begin.status();
  }
  const Tid tid = *begin;
  auto a = co_await app.ReadInt(tid, from_srv, "vault");
  auto b = co_await app.ReadInt(tid, to_srv, "vault");
  if (!a.ok() || !b.ok()) {
    co_await app.Abort(tid);
    co_return AbortedError("read failed");
  }
  Status w1 = co_await app.WriteInt(tid, from_srv, "vault", *a - amount);
  Status w2 = co_await app.WriteInt(tid, to_srv, "vault", *b + amount);
  if (!w1.ok() || !w2.ok()) {
    co_await app.Abort(tid);
    co_return AbortedError("write failed");
  }
  co_return co_await app.Commit(tid, options);
}

// The fixed workload: `transfers` serial transfers issued from site 0's
// application; transfer i moves `amount` from vault i%N to vault (i+1)%N, so
// with N >= 3 every transfer spans three sites (coordinator + two vault
// owners). One transaction per transfer, never retried — the oracle reasons
// about which attempts committed, and a retry would be a second attempt.
Async<void> Workload(World* world, ExplorerConfig cfg, std::vector<Status>* statuses,
                     std::vector<bool>* attempted, bool* done) {
  AppClient app(world->site(0));
  const int n = cfg.site_count;
  const CommitOptions options = cfg.Options();
  for (int i = 0; i < cfg.transfers; ++i) {
    // If the home site is down (a schedule crashed it), wait out the outage —
    // bounded, so the run always quiesces even if healing fails.
    for (int wait = 0; wait < 8 && !world->site(0).site().up(); ++wait) {
      co_await world->sched().Delay(Sec(1));
    }
    if (!world->site(0).site().up()) {
      statuses->push_back(UnavailableError("home site down"));
      attempted->push_back(false);
      continue;
    }
    Status st = co_await OneTransfer(app, Srv(i % n), Srv((i + 1) % n), cfg.amount, options);
    statuses->push_back(st);
    attempted->push_back(true);
  }
  *done = true;
}

void Violate(RunResult* out, std::string text) {
  out->ok = false;
  out->violations.push_back(std::move(text));
}

}  // namespace

std::string RunResult::Explain() const {
  std::string out;
  for (const auto& v : violations) {
    out += "  - " + v + "\n";
  }
  return out;
}

std::string CrashExplorer::ReplayPrefix() const {
  return ReplayRecipePrefix(config_.seed, config_.Options());
}

std::vector<DiscoveredPoint> CrashExplorer::Discover() {
  return Run(CrashSchedule{}, /*record=*/true).discovered;
}

RunResult CrashExplorer::Run(const CrashSchedule& schedule, bool record) {
  RunResult out;
  out.replay =
      ReplayRecipe(config_.seed, config_.Options(), "CAMELOT_SCHEDULE", schedule.ToString());

  World world(MakeWorldConfig(config_));
  world.history().set_enabled(true);  // Record from the first setup install on.
  const int n = config_.site_count;
  for (int i = 0; i < n; ++i) {
    world.AddServer(i, Srv(i))->CreateObjectForSetup("vault",
                                                     EncodeInt64(config_.initial_balance));
  }
  if (record) {
    world.failpoints().set_recording(true);
  }
  schedule.ArmAll(world.failpoints());

  std::vector<Status> statuses;
  std::vector<bool> attempted;
  bool done = false;
  world.sched().Spawn(Workload(&world, config_, &statuses, &attempted, &done));
  world.RunFor(config_.workload_window);

  // Heal: restart every down site, again if a recovery.* crash took one back
  // down mid-restart (recovery must be idempotent across the retries).
  int attempts = 0;
  while (attempts < config_.max_restart_attempts) {
    std::vector<int> down;
    for (int i = 0; i < n; ++i) {
      if (!world.site(i).site().up()) {
        down.push_back(i);
      }
    }
    if (down.empty()) {
      break;
    }
    ++attempts;
    for (int i : down) {
      world.Restart(i);
    }
    world.RunFor(config_.heal_window);
  }
  bool all_up = true;
  for (int i = 0; i < n; ++i) {
    if (!world.site(i).site().up()) {
      all_up = false;
      Violate(&out, "site " + std::to_string(i) + " still down after " +
                        std::to_string(attempts) + " restart attempts");
    }
  }

  // Drain: let every in-doubt outcome, orphan watcher, and the workload's
  // remaining transfers resolve. Bounded so a livelocked run fails loudly
  // instead of hanging the sweep. A schedule entry can fire during the drain
  // itself — e.g. a crash armed on a commit-ack that is only sent once the
  // coordinator's retransmission reaches the healed site — taking a site
  // down after the heal loop finished; re-heal and re-drain until stable so
  // the audit reads a fully recovered installation.
  bool quiesced = all_up;
  if (all_up) {
    constexpr size_t kMaxEvents = 2u * 1000 * 1000;
    int late_heals = 0;
    for (;;) {
      if (!world.sched().RunUntilIdle(kMaxEvents).drained) {
        quiesced = false;
        Violate(&out, "world did not quiesce within " + std::to_string(kMaxEvents) + " events");
        break;
      }
      std::vector<int> down;
      for (int i = 0; i < n; ++i) {
        if (!world.site(i).site().up()) {
          down.push_back(i);
        }
      }
      if (down.empty()) {
        break;
      }
      if (++late_heals > config_.max_restart_attempts) {
        quiesced = false;
        for (int i : down) {
          Violate(&out, "site " + std::to_string(i) + " still down after " +
                            std::to_string(late_heals - 1) + " late restart attempts");
        }
        break;
      }
      for (int i : down) {
        world.Restart(i);
      }
      world.RunFor(config_.heal_window);
    }
  }

  // Freeze the exploration record before the audit: discovery must cover only
  // the workload + healing, so every discovered hit is reachable before the
  // audit traffic starts (a sweep crash during the audit would be a false
  // positive, not a protocol bug).
  if (record) {
    out.trace = world.failpoints().trace();
    out.discovered = world.failpoints().Discovered();
    world.failpoints().set_recording(false);
  }
  world.failpoints().DisarmAll();

  if (!done) {
    Violate(&out, "workload did not finish (" + std::to_string(statuses.size()) + "/" +
                      std::to_string(config_.transfers) + " transfers attempted)");
  }
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (statuses[i].ok()) {
      ++out.client_ok;
    }
  }
  if (!all_up || !quiesced) {
    return out;  // No quiescent installation to audit (RunSync would hang).
  }

  // Primitive-cost conformance gate (fault-free runs only, before the audit
  // transactions add their own protocol traffic): the ledger's protocol
  // counts must equal the static analysis's prediction for the transfer
  // workload, exactly — an extra force or duplicate datagram is a bug even
  // when atomicity holds.
  if (schedule.entries.empty() && done) {
    bool all_ok = true;
    for (const Status& st : statuses) {
      all_ok = all_ok && st.ok();
    }
    if (all_ok) {
      const CommitOptions options = config_.Options();
      CountVector predicted;
      for (int i = 0; i < config_.transfers; ++i) {
        int update_subs = 0;
        bool local_updates = false;
        for (const int vault : {i % n, (i + 1) % n}) {
          if (vault == 0) {
            local_updates = true;
          } else {
            ++update_subs;
          }
        }
        AddCounts(predicted, ExpectedProtocolCounts(options, update_subs, /*readonly_subs=*/0,
                                                    local_updates, TxnOutcome::kCommit));
      }
      const CountVector measured = world.cost_ledger().ProtocolCounts();
      std::string diff = CostLedger::Diff(predicted, measured);
      if (!diff.empty()) {
        Violate(&out, "fault-free run violated primitive-cost conformance:\n" + diff);
      }
    }
  }

  // Audits (shared with the partition explorer; see harness/oracle.h):
  // observer agreement + money conservation + commit-subset match, then leak
  // and recovery checks.
  std::vector<TransferAttempt> transfer_attempts;
  for (size_t i = 0; i < statuses.size(); ++i) {
    TransferAttempt a;
    a.status = statuses[i];
    a.attempted = attempted[i];
    a.from_vault = static_cast<int>(i) % n;
    a.to_vault = (static_cast<int>(i) + 1) % n;
    a.amount = config_.amount;
    transfer_attempts.push_back(std::move(a));
  }
  std::vector<std::string> violations;
  AuditBalancesAndSubset(world, n, config_.initial_balance, transfer_attempts, &violations);
  AuditLeaks(world, n, &violations);
  AuditExactlyOnce(world, n, &violations);
  for (auto& v : violations) {
    Violate(&out, std::move(v));
  }

  // Isolation gate: the whole run's history — workload, healing, and the
  // audit transactions above — must replay serializably. A failure dumps the
  // history and extends the recipe so the verdict reproduces offline.
  IsolationReport isolation = IsolationOracle::Check(world.history().events());
  if (!isolation.ok()) {
    for (const IsolationAnomaly& a : isolation.anomalies) {
      Violate(&out, "isolation: " + a.ToString());
    }
    auto dumped = DumpHistoryArtifact(
        world.history(),
        "crash-" + std::to_string(config_.seed) + "-" + ProtocolName(config_.Options()) + "-" +
            std::to_string(std::hash<std::string>{}(out.replay)));
    if (dumped.ok()) {
      out.history_path = *dumped;
      out.replay = WithHistory(out.replay, *dumped);
    }
  }
  return out;
}

void CrashExplorer::RunSchedules(const std::vector<CrashSchedule>& schedules,
                                 std::vector<SweepFailure>* failures) {
  // Each schedule builds its own World, so runs are independent and
  // bit-identical at any thread count; merging in schedule order keeps the
  // failure list (and every replay recipe in it) byte-identical too.
  std::vector<RunResult> results(schedules.size());
  ParallelFor(ResolveSweepThreads(config_.sweep_threads), schedules.size(),
              [&](size_t i) { results[i] = Run(schedules[i]); });
  for (size_t i = 0; i < schedules.size(); ++i) {
    if (!results[i].ok) {
      failures->push_back({schedules[i], std::move(results[i])});
    }
  }
}

std::vector<SweepFailure> CrashExplorer::ExhaustiveSingleCrashSweep(uint64_t max_hits_per_point,
                                                                    int* runs) {
  std::vector<SweepFailure> failures;
  // The fault-free discovery run is itself gated (conformance + oracle); a
  // violation there means every sweep result would be noise.
  RunResult discovery = Run(CrashSchedule{}, /*record=*/true);
  if (!discovery.ok) {
    failures.push_back({CrashSchedule{}, discovery});
  }
  std::vector<CrashSchedule> schedules;
  for (const DiscoveredPoint& dp : discovery.discovered) {
    const uint64_t cap =
        max_hits_per_point == 0 ? dp.hits : std::min(dp.hits, max_hits_per_point);
    for (uint64_t hit = 1; hit <= cap; ++hit) {
      CrashSchedule schedule;
      schedule.entries.push_back({dp.point, dp.site, hit, FailpointAction::kCrash, 0});
      schedules.push_back(std::move(schedule));
    }
  }
  RunSchedules(schedules, &failures);
  if (runs != nullptr) {
    *runs = static_cast<int>(schedules.size());
  }
  return failures;
}

std::vector<SweepFailure> CrashExplorer::RecoverySweep(const ScheduleEntry& base, int* runs) {
  std::vector<SweepFailure> failures;
  CrashSchedule base_only;
  base_only.entries.push_back(base);
  RunResult recorded = Run(base_only, /*record=*/true);
  if (!recorded.ok) {
    failures.push_back({base_only, recorded});
  }
  std::vector<CrashSchedule> schedules;
  for (const DiscoveredPoint& dp : recorded.discovered) {
    if (dp.point.rfind("recovery.", 0) != 0) {
      continue;
    }
    CrashSchedule schedule;
    schedule.entries.push_back(base);
    schedule.entries.push_back({dp.point, dp.site, 1, FailpointAction::kCrash, 0});
    schedules.push_back(std::move(schedule));
  }
  RunSchedules(schedules, &failures);
  if (runs != nullptr) {
    *runs = 1 + static_cast<int>(schedules.size());
  }
  return failures;
}

std::vector<SweepFailure> CrashExplorer::RandomSweep(uint64_t rng_seed, int rounds,
                                                     int max_faults, int* runs) {
  std::vector<SweepFailure> failures;
  RunResult discovery = Run(CrashSchedule{}, /*record=*/true);
  if (!discovery.ok) {
    failures.push_back({CrashSchedule{}, discovery});
  }
  const std::vector<DiscoveredPoint> discovered = std::move(discovery.discovered);
  if (discovered.empty()) {
    if (runs != nullptr) {
      *runs = 0;
    }
    return failures;
  }
  // Schedule generation draws from the sweep Rng in round order; runs consume
  // no sweep randomness, so pre-generating all schedules and fanning the runs
  // out yields the exact draw sequence (and schedules) of the old serial
  // interleaved loop.
  Rng rng(rng_seed);
  std::vector<CrashSchedule> schedules;
  for (int round = 0; round < rounds; ++round) {
    const int faults = 1 + static_cast<int>(rng.NextBounded(
                               static_cast<uint64_t>(std::max(1, max_faults))));
    CrashSchedule schedule;
    for (int j = 0; j < faults; ++j) {
      const DiscoveredPoint& dp = discovered[rng.NextBounded(discovered.size())];
      ScheduleEntry e;
      e.point = dp.point;
      e.site = dp.site;
      e.hit = 1 + rng.NextBounded(dp.hits);
      // Drop and error only mean something where the woven code has a loss or
      // failure path: datagram sends and disk I/O. At protocol force points
      // and transitions they would inject impossible failures (a log force
      // cannot fail while the site stays up), so roll crash or delay there.
      const bool lossy = dp.point.rfind("tm.send.", 0) == 0 || dp.point.rfind("disk.", 0) == 0;
      switch (rng.NextBounded(lossy ? 4 : 2)) {
        case 0:
          e.action = FailpointAction::kCrash;
          break;
        case 1:
          e.action = FailpointAction::kDelay;
          e.delay = Usec(1000 + static_cast<int64_t>(rng.NextBounded(400000)));
          break;
        case 2:
          e.action = FailpointAction::kDrop;
          break;
        default:
          e.action = FailpointAction::kError;
          break;
      }
      schedule.entries.push_back(std::move(e));
    }
    schedules.push_back(std::move(schedule));
  }
  RunSchedules(schedules, &failures);
  if (runs != nullptr) {
    *runs = static_cast<int>(schedules.size());
  }
  return failures;
}

}  // namespace camelot
