#include "src/harness/history.h"

#include <charconv>
#include <cstdio>

namespace camelot {
namespace {

constexpr std::string_view kHeader = "# camelot-history v1";

std::string HexEncode(const Bytes& b) {
  if (b.empty()) {
    return "-";
  }
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

Result<Bytes> HexDecode(std::string_view s) {
  Bytes out;
  if (s == "-") {
    return out;
  }
  if (s.size() % 2 != 0) {
    return InvalidArgumentError("odd-length hex value");
  }
  out.reserve(s.size() / 2);
  for (size_t i = 0; i < s.size(); i += 2) {
    const int hi = HexNibble(s[i]);
    const int lo = HexNibble(s[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgumentError("bad hex digit in value");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

// Tids serialize as origin:sequence:serial — parent_serial is omitted because
// only top-level ops reach the recorder today, and "-" stands for kInvalidTid.
std::string TidToken(const Tid& tid) {
  if (!tid.IsValid()) {
    return "-";
  }
  return std::to_string(tid.family.origin.value) + ":" +
         std::to_string(tid.family.sequence) + ":" + std::to_string(tid.serial);
}

bool ParseU64(std::string_view s, uint64_t* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

Result<Tid> ParseTidToken(std::string_view s) {
  if (s == "-") {
    return kInvalidTid;
  }
  const size_t c1 = s.find(':');
  const size_t c2 = s.find(':', c1 == std::string_view::npos ? c1 : c1 + 1);
  uint64_t origin = 0, sequence = 0, serial = 0;
  if (c1 == std::string_view::npos || c2 == std::string_view::npos ||
      !ParseU64(s.substr(0, c1), &origin) ||
      !ParseU64(s.substr(c1 + 1, c2 - c1 - 1), &sequence) ||
      !ParseU64(s.substr(c2 + 1), &serial)) {
    return InvalidArgumentError("bad tid token");
  }
  Tid tid;
  tid.family.origin = SiteId{static_cast<uint32_t>(origin)};
  tid.family.sequence = sequence;
  tid.serial = static_cast<uint32_t>(serial);
  return tid;
}

Result<HistoryOp> ParseOpToken(std::string_view s) {
  for (HistoryOp op : {HistoryOp::kInit, HistoryOp::kRead, HistoryOp::kWrite,
                       HistoryOp::kCommit, HistoryOp::kAbort}) {
    if (s == HistoryOpName(op)) {
      return op;
    }
  }
  return InvalidArgumentError("unknown history op");
}

// NB: both arms must already be string_views — a `? "-" : s` ternary would
// materialize a temporary std::string and return a dangling view of it.
std::string_view FieldOrDash(const std::string& s) {
  return s.empty() ? std::string_view("-") : std::string_view(s);
}

}  // namespace

const char* HistoryOpName(HistoryOp op) {
  switch (op) {
    case HistoryOp::kInit:
      return "init";
    case HistoryOp::kRead:
      return "read";
    case HistoryOp::kWrite:
      return "write";
    case HistoryOp::kCommit:
      return "commit";
    case HistoryOp::kAbort:
      return "abort";
  }
  return "?";
}

std::string HistoryEvent::ToLine() const {
  std::string line = std::to_string(ts);
  line += ' ';
  line += HistoryOpName(op);
  line += ' ';
  line += TidToken(tid);
  line += ' ';
  line += std::to_string(site.value);
  line += ' ';
  line += FieldOrDash(server);
  line += ' ';
  line += FieldOrDash(object);
  line += ' ';
  line += HexEncode(value);
  return line;
}

std::string HistoryRecorder::Serialize() const {
  std::string out(kHeader);
  out += '\n';
  for (const HistoryEvent& e : events_) {
    out += e.ToLine();
    out += '\n';
  }
  return out;
}

Result<std::vector<HistoryEvent>> HistoryRecorder::Parse(std::string_view text) {
  std::vector<HistoryEvent> out;
  size_t line_no = 0;
  bool saw_header = false;
  while (!text.empty()) {
    const size_t eol = text.find('\n');
    std::string_view line = text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      if (line_no == 1 && line != kHeader) {
        return InvalidArgumentError("not a camelot-history v1 file");
      }
      saw_header = saw_header || line == kHeader;
      continue;
    }
    if (!saw_header) {
      return InvalidArgumentError("missing camelot-history header");
    }
    // Split into exactly 7 whitespace-separated tokens.
    std::string_view tok[7];
    size_t n_tok = 0;
    size_t pos = 0;
    while (pos < line.size() && n_tok < 7) {
      while (pos < line.size() && line[pos] == ' ') {
        ++pos;
      }
      const size_t start = pos;
      while (pos < line.size() && line[pos] != ' ') {
        ++pos;
      }
      if (pos > start) {
        tok[n_tok++] = line.substr(start, pos - start);
      }
    }
    const auto bad = [&](const std::string& what) {
      return InvalidArgumentError("history line " + std::to_string(line_no) + ": " + what);
    };
    if (n_tok != 7 || pos != line.size()) {
      return bad("expected 7 fields");
    }
    HistoryEvent e;
    uint64_t ts = 0, site = 0;
    if (!ParseU64(tok[0], &ts)) {
      return bad("bad timestamp");
    }
    e.ts = static_cast<SimTime>(ts);
    auto op = ParseOpToken(tok[1]);
    if (!op.ok()) {
      return bad(op.status().message());
    }
    e.op = *op;
    auto tid = ParseTidToken(tok[2]);
    if (!tid.ok()) {
      return bad(tid.status().message());
    }
    e.tid = *tid;
    if (!ParseU64(tok[3], &site)) {
      return bad("bad site");
    }
    e.site = SiteId{static_cast<uint32_t>(site)};
    e.server = tok[4] == "-" ? std::string() : std::string(tok[4]);
    e.object = tok[5] == "-" ? std::string() : std::string(tok[5]);
    auto value = HexDecode(tok[6]);
    if (!value.ok()) {
      return bad(value.status().message());
    }
    e.value = std::move(*value);
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace camelot
