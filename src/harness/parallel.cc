#include "src/harness/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace camelot {

int DefaultSweepThreads() {
  if (const char* env = std::getenv("CAMELOT_SWEEP_THREADS"); env != nullptr) {
    const int v = std::atoi(env);
    if (v >= 1) {
      return std::min(v, 64);
    }
  }
  return std::clamp(static_cast<int>(std::thread::hardware_concurrency()), 1, 16);
}

int ResolveSweepThreads(int configured) {
  return configured >= 1 ? configured : DefaultSweepThreads();
}

void ParallelFor(int threads, size_t n, const std::function<void(size_t)>& fn) {
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  const auto worker = [&next, n, &fn] {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      fn(i);
    }
  };
  const size_t workers = std::min(static_cast<size_t>(threads), n);
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t t = 1; t < workers; ++t) {
    pool.emplace_back(worker);
  }
  worker();  // The calling thread pulls items too.
  for (std::thread& th : pool) {
    th.join();
  }
}

}  // namespace camelot
