// Open-loop load generator: offered load that does not slow down when the
// system does.
//
// The bank workload's clients are closed-loop — each waits for its transfer
// to finish before issuing the next, so under overload the offered rate
// politely collapses to the service rate and the system never sees a real
// overload. This generator is the opposite: an arrival process (Poisson or
// deterministic) spawns one independent transaction coroutine per arrival at
// the configured rate regardless of how many are still in flight. That is
// what makes congestion collapse observable: arrivals keep coming while the
// backlog's latency grows past every client's deadline.
//
// Transactions are balance-conserving transfers over the bank_workload
// account table (so AuditBankInvariant still gates every overload run), with
// Zipfian account selection for hotspot contention and a read-only fraction.
// Each arrival carries an absolute client deadline; when propagate_deadlines
// is set the deadline rides every RPC (AppClient::set_deadline) so admission
// control and servers can shed zombie work. Client-level retries (after a
// shed or a transient failure) are gated by a shared token-bucket
// RetryBudget — the SRE pattern that stops a retry storm from amplifying an
// overload into a metastable failure.
//
// The stats separate throughput from goodput: a commit that lands after its
// deadline is real work the system did for nobody. Goodput is also bucketed
// by commit time so the overload explorer can locate the recovery instant
// after a load spike.
#ifndef SRC_HARNESS_LOAD_GEN_H_
#define SRC_HARNESS_LOAD_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/harness/bank_workload.h"
#include "src/harness/world.h"
#include "src/ipc/retry_budget.h"
#include "src/stats/summary.h"

namespace camelot {

// YCSB-style Zipfian generator over [0, n): key 0 is the hottest. theta in
// [0, 1); 0 degenerates to uniform. Deterministic given the caller's Rng.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);
  uint64_t Next(Rng& rng) const;
  uint64_t n() const { return n_; }

 private:
  uint64_t n_ = 1;
  double theta_ = 0;
  double zetan_ = 1;  // Sum of 1/i^theta for i in [1, n].
  double alpha_ = 0;
  double eta_ = 0;
};

struct LoadGenConfig {
  enum class Arrivals : uint8_t { kPoisson, kDeterministic };

  double offered_tps = 50.0;              // Mean arrival rate (open loop).
  Arrivals arrivals = Arrivals::kPoisson;
  SimDuration duration = Sec(10);         // Arrival window; completions may trail it.

  double read_fraction = 0.0;             // Fraction of read-only (audit-style) txns.
  int accounts_per_site = 8;
  int64_t initial_balance = 1000;
  double zipf_theta = 0.99;               // Account hotspot skew; 0 = uniform.
  int64_t max_amount = 5;                 // Transfer amounts 1..max_amount.
  CommitOptions options = CommitOptions::Optimized();

  // Long-lived transactions: after staging its updates (locks held) each
  // transaction thinks for an exponentially distributed hold time before
  // calling Commit (0 = commit immediately, the classic short-txn shape).
  // This is the paper's interactive-transaction regime — the window in which
  // a crash catches transactions mid-flight, and exactly the regime where a
  // blocking commit protocol strands locks behind a dead coordinator.
  SimDuration hold_time_mean = 0;
  SimDuration hold_time_max = 0;          // Per-draw clamp; 0 = unclamped.

  // Per-arrival client deadline (relative; 0 = none). The absolute deadline is
  // fixed at arrival time and survives retries — a retry does not buy the
  // client more patience.
  SimDuration deadline = Sec(2);
  // When false the deadline is still used to CLASSIFY outcomes (goodput vs
  // late) but is not attached to any RPC, so nothing downstream can shed on
  // it. This is the A/B lever: both arms measure goodput identically; only
  // one lets the system act on deadlines.
  bool propagate_deadlines = true;

  // Client-level retries after a shed / transient failure: at most
  // max_retries extra attempts per arrival, all gated by a generator-wide
  // token-bucket budget (ratio tokens earned per first attempt, spend 1 per
  // retry; ratio <= 0 = unlimited). See src/ipc/retry_budget.h.
  int max_retries = 2;
  double retry_budget_ratio = 0.1;
  double retry_budget_cap = 50.0;
  // Collapse-arm client behavior: keep retrying failed attempts until
  // max_retries even after the deadline has passed (the user hammering
  // reload). Combined with an unlimited budget this is the retry-storm
  // amplifier the budget exists to cap.
  bool retry_past_deadline = false;

  SimDuration bucket_width = Sec(1);      // Goodput time-bucket width.
  uint64_t rng_seed = 1;                  // Arrival gaps + account choices.
};

struct LoadGenStats {
  uint64_t offered = 0;        // Arrivals generated.
  uint64_t committed = 0;      // Commit returned OK (any time).
  uint64_t goodput = 0;        // Committed within the client deadline.
  uint64_t late_commits = 0;   // Committed after the deadline: wasted work.
  uint64_t shed = 0;           // Final outcome kOverloaded (admission/deadline shed).
  uint64_t failed = 0;         // Any other final failure (aborts, timeouts).
  uint64_t retries = 0;        // Extra attempts actually issued.
  uint64_t retries_suppressed = 0;  // Retries the token budget refused.
  uint64_t in_flight_peak = 0;

  Summary latency_ms;          // Arrival-to-commit-return, committed txns only.

  // In-deadline commits per bucket_width of virtual time, indexed from the
  // generator's start instant. The explorer reads these to find the knee and
  // the recovery point.
  std::vector<uint64_t> goodput_buckets;
  SimDuration bucket_width = Sec(1);
  SimTime start = 0;

  // Mean in-deadline commits/sec between the two absolute instants.
  double GoodputTps(SimTime from, SimTime to) const;
};

// The account table the generator transfers over — SetupBank-compatible so
// AuditBankInvariant audits an overload run exactly like a chaos run.
BankWorkloadConfig ToBankConfig(const LoadGenConfig& cfg);

class LoadGen {
 public:
  // The world must already have the bank installed (SetupBank(ToBankConfig)).
  LoadGen(World& world, LoadGenConfig cfg);

  // Spawns the arrival process; returns immediately (open loop).
  void Start();

  // True once the arrival window closed and every spawned txn finished.
  bool done() const { return arrivals_done_ && finished_ == stats_.offered; }

  const LoadGenStats& stats() const { return stats_; }
  const LoadGenConfig& config() const { return cfg_; }
  const RetryBudget& budget() const { return budget_; }

 private:
  struct Pick {
    int site;
    int index;
  };

  Async<void> ArrivalLoop();
  Async<void> RunTxn(uint64_t id, SimTime arrival);
  Async<Status> Attempt(AppClient& app, Rng& rng, bool read_only, SimTime deadline);
  Pick PickAccount(Rng& rng) const;
  void RecordCommit(SimTime arrival, SimTime deadline);

  World& world_;
  LoadGenConfig cfg_;
  LoadGenStats stats_;
  Rng rng_;
  RetryBudget budget_;
  ZipfianGenerator zipf_;
  uint64_t in_flight_ = 0;
  uint64_t finished_ = 0;
  bool arrivals_done_ = false;
};

}  // namespace camelot

#endif  // SRC_HARNESS_LOAD_GEN_H_
