// Network nemesis: deterministic, replayable network-fault scripts driven
// against a live CamelotWorld — the network-side analogue of CrashSchedule.
//
// A NemesisScript is an ordered list of events. Each event pairs a firing
// condition ("when") with a network fault action:
//
//   when:
//     @<usec>              absolute virtual time, measured from Install();
//     +<usec>              relative: fires <usec> after the PREVIOUS event in
//                          the script applied (chains off triggers, so "heal
//                          4 s after the partition installed" works even when
//                          the install time is protocol-dependent);
//     <point>@<site>#<hit> failpoint trigger: fires when the named failpoint
//                          reaches its <hit>-th evaluation on <site> (e.g.
//                          "tm.2pc.commit_force.after@0#1" = the instant the
//                          coordinator's commit record hits the disk).
//
//   action:
//     partition:<g>|<g>... install a partition; groups separated by '|',
//                          sites by ',' (e.g. "partition:0|1,2"). Sites in no
//                          group are isolated; "partition:" alone isolates
//                          every site.
//     heal                 clear the partition;
//     loss:<p>             set datagram loss probability;
//     dup:<p>              set datagram duplication probability;
//     reorder:<p>[,<max>]  set reorder probability (and optionally the max
//                          extra delay draw, usec);
//     congest:<usec>       set the congestion delay mean (0 turns it off);
//     calm                 reset loss/dup/reorder/congestion to zero.
//
// Textual form (the CAMELOT_NEMESIS replay string): events joined by ';',
// e.g. "tm.2pc.commit_force.after@0#1=partition:0|1,2;+4000000=heal".
//
// Determinism: timed events post plain scheduler events; trigger events arm
// FailpointArm::Callback on the shared registry. For a fixed (seed, workload,
// script) every run applies the same faults at the same virtual instants.
#ifndef SRC_HARNESS_NEMESIS_H_
#define SRC_HARNESS_NEMESIS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/base/failpoint.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/net/network.h"
#include "src/sim/scheduler.h"

namespace camelot {

struct NemesisEvent {
  enum class When : uint8_t { kAbsolute, kRelative, kTrigger };
  enum class Action : uint8_t { kPartition, kHeal, kLoss, kDup, kReorder, kCongest, kCalm };

  When when = When::kAbsolute;
  SimDuration at = 0;    // kAbsolute: offset from Install(); kRelative: offset
                         // from the previous event's application.
  std::string point;     // kTrigger.
  SiteId site{0};        // kTrigger.
  uint64_t hit = 1;      // kTrigger.

  Action action = Action::kHeal;
  double value = 0;                          // kLoss / kDup / kReorder probability.
  SimDuration duration = 0;                  // kCongest mean; kReorder max delay (0 = keep).
  std::vector<std::vector<SiteId>> groups;   // kPartition.

  std::string ToString() const;
};

struct NemesisScript {
  std::vector<NemesisEvent> events;

  bool empty() const { return events.empty(); }
  std::string ToString() const;
  static Result<NemesisScript> Parse(std::string_view text);
};

// Drives one script against one world. Install() schedules/arms every event;
// the nemesis then applies them as their conditions fire. HealAll() force-
// clears every installed fault (partition + probabilistic knobs) — explorers
// call it at the end of the fault window so the liveness oracle always
// measures a fully-healed network.
class Nemesis {
 public:
  // `failpoints` may be null when the script has no trigger events.
  Nemesis(Scheduler& sched, Network& net, FailpointRegistry* failpoints = nullptr)
      : sched_(sched), net_(net), failpoints_(failpoints) {}

  // Schedules every event. Trigger events require a registry. A second
  // Install replaces the first (not-yet-fired timed events of the old script
  // become no-ops).
  Status Install(NemesisScript script);

  // Applied regardless of script position: clear partition + calm all knobs.
  // Reported to the on_apply observer as a synthetic kHeal then kCalm event.
  void HealAll();

  // Observer invoked after each event (including HealAll's synthetic events)
  // is applied to the network — explorers snapshot counters here to measure
  // "decisions inside the partition window".
  void set_on_apply(std::function<void(const NemesisEvent&)> fn) { on_apply_ = std::move(fn); }

  int applied_count() const { return applied_count_; }
  // Installed events whose condition never fired (e.g. a trigger the workload
  // never reached, or a relative event chained behind one).
  std::vector<std::string> Unapplied() const;
  // One line per applied event: "[<ms>] <event>".
  const std::vector<std::string>& log() const { return log_; }

 private:
  void Apply(size_t index, uint64_t generation);

  Scheduler& sched_;
  Network& net_;
  FailpointRegistry* failpoints_;
  NemesisScript script_;
  std::function<void(const NemesisEvent&)> on_apply_;
  std::vector<bool> applied_;
  std::vector<std::string> log_;
  int applied_count_ = 0;
  uint64_t generation_ = 0;  // Bumped by Install; stale timed events no-op.
};

}  // namespace camelot

#endif  // SRC_HARNESS_NEMESIS_H_
