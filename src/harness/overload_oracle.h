// OverloadExplorer: drives open-loop load spikes against a live Camelot
// installation and audits that admission control keeps the system out of
// congestion collapse — the overload twin of the crash/partition explorers.
//
// The capacity model predicts the saturation knee from the same Table-2
// primitive counts the conformance oracle audits: one transaction's expected
// protocol events and log forces, priced in worker-pool occupancy, divided
// into the installation's total worker-seconds. The explorer then offers
// multiples of that knee (0.5x baseline, a 5x spike, recovery) from two
// open-loop generators and asserts, on the quiesced world:
//
//   - goodput floor: in-deadline commits/sec during the spike stay above a
//     fraction of the baseline (the system does useful work WHILE overloaded,
//     instead of servicing a stale backlog for nobody);
//   - bounded p99: committed-transaction latency stays within a multiple of
//     the client deadline (unbounded queues show up here first);
//   - recovery: within the recovery window the background load's goodput
//     returns to >= recovery_fraction of its pre-spike average — the
//     anti-metastability check (a retry storm that outlives its trigger
//     fails this even though the spike itself ended);
//   - safety under pressure: money conservation (AuditBankInvariant), no
//     leaked locks or live families (AuditLeaks) — shedding must never
//     corrupt; a shed transaction is an aborted transaction.
//
// RunLatencyStorm swaps the load spike for a nemesis congestion storm (every
// datagram delayed), the trigger class where the offered rate never changes
// but capacity drops — the classic metastable-failure entry path.
//
// The A/B: a run with `shedding = false` disables the admission queue bound,
// deadline propagation, expiry shedding, and the retry budget, keeping the
// IDENTICAL goodput definition. ExpectCollapse() asserts that this arm
// actually collapses (goodput floor or recovery fails and p99 blows through
// the bound) — proving the machinery is load-bearing, not decorative.
//
// Every failing run prints a replay recipe and the queue-health report
// (per-site pool wait percentiles, depth high-watermarks, shed counters).
#ifndef SRC_HARNESS_OVERLOAD_ORACLE_H_
#define SRC_HARNESS_OVERLOAD_ORACLE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/harness/load_gen.h"
#include "src/harness/world.h"
#include "src/tranman/local_api.h"
#include "src/tranman/worker_pool.h"

namespace camelot {

// The predicted saturation knee, derived from ExpectedProtocolCounts for one
// two-site transfer. Deliberately conservative: it prices every log force at
// the full force latency although group commit amortizes concurrent forces,
// so the true knee is at or above predicted_tps — which is exactly what an
// admission-control planner wants from a capacity estimate.
struct CapacityModel {
  double predicted_tps = 0;     // World-wide knee (all sites' workers pooled).
  double per_txn_pool_us = 0;   // Worker-occupancy one transaction costs.
  int64_t events = 0;           // Pool events per transaction (calls + datagrams).
  int64_t forces = 0;           // Log forces per transaction.
  std::string Explain() const;
};

CapacityModel PredictCapacity(const WorldConfig& world, const CommitOptions& options);

// Per-site queue-health rows: worker-pool wait p50/p99 and depth HWM, shed
// and drop counters, RPC retransmit totals. Printed by tests and explorers
// when an overload oracle fails.
std::string QueueHealthReport(World& world);

struct OverloadExplorerConfig {
  int site_count = 3;
  uint64_t seed = 1;
  std::optional<CommitOptions> variant;
  CommitOptions Options() const { return variant.value_or(CommitOptions::Optimized()); }

  // World sizing: a small pool and a fat per-event CPU burst put the knee low
  // enough that short virtual windows carry real overload.
  size_t worker_threads = 2;
  SimDuration cpu_per_event = Usec(3000);

  // The machinery under test; `shedding = false` is the collapse arm.
  bool shedding = true;
  size_t admission_queue_limit = 64;
  AdmissionPolicy admission_policy = AdmissionPolicy::kDeadlineDrop;
  size_t max_live_families = 512;
  double rpc_retry_budget_ratio = 0.1;  // Transport-level budget (shedding arm).
  double rpc_retry_budget_cap = 50;

  // Load profile in multiples of the MEASURED usable knee. The static model
  // bounds CPU and forces but not lock contention on the Zipfian hotspot
  // (which ignites well below the CPU knee), so each run first calibrates: a
  // shedding world is driven at the predicted CPU-bound rate for
  // calibration_window and the goodput it sustains is taken as the usable
  // capacity. Both arms anchor on the same measurement so the A/B compares
  // identical offered load.
  SimDuration calibration_window = Sec(6);
  double baseline_multiplier = 0.5;
  double spike_multiplier = 5.0;
  SimDuration baseline_window = Sec(6);
  SimDuration spike_window = Sec(4);
  SimDuration recovery_window = Sec(8);

  // Template for both generators; offered_tps/duration/propagation are set
  // per phase and per arm. Defaults favour moderate contention so overload —
  // not lock starvation — is what the oracle measures.
  LoadGenConfig load = [] {
    LoadGenConfig l;
    l.accounts_per_site = 16;
    l.zipf_theta = 0.5;
    l.deadline = Sec(2);
    l.read_fraction = 0.2;
    return l;
  }();

  // Oracle thresholds.
  double goodput_floor = 0.25;     // Spike goodput >= floor x baseline goodput.
  double p99_bound_ms = 0;         // 0 = 1.5 x the client deadline.
  double recovery_fraction = 0.75; // Post-spike background goodput recovery.

  SimDuration storm_congestion = Usec(30000);  // RunLatencyStorm delay mean.
};

struct OverloadRunResult {
  bool ok = true;
  std::vector<std::string> violations;
  CapacityModel capacity;

  // Goodput a shedding world sustained when driven at the predicted CPU-bound
  // rate: the usable knee once lock contention is in the picture.
  double measured_capacity_tps = 0;
  double offered_baseline_tps = 0;
  double offered_spike_tps = 0;
  double baseline_goodput_tps = 0;
  double spike_goodput_tps = 0;
  double recovered_goodput_tps = 0;
  double p99_ms = 0;
  double p99_bound_ms = 0;

  LoadGenStats background;  // The whole-run 0.5x generator.
  LoadGenStats spike;       // The spike-window generator (empty for storms).
  uint64_t overload_rejects = 0;  // Summed over sites.
  uint64_t prepares_shed = 0;
  uint64_t deadline_shed = 0;
  uint64_t offpath_dropped = 0;
  uint64_t server_deadline_rejects = 0;

  std::string queue_health;  // Always captured; printed on failure.
  std::string replay;
  std::string Explain() const;  // Violations + queue health + replay.
};

class OverloadExplorer {
 public:
  explicit OverloadExplorer(OverloadExplorerConfig config) : config_(config) {}

  const OverloadExplorerConfig& config() const { return config_; }
  CapacityModel Capacity() const;

  // Baseline -> load spike -> recovery. Robustness oracles apply only on the
  // shedding arm; the safety oracles (conservation, leaks) apply always.
  OverloadRunResult Run();
  // Baseline -> congestion storm (offered load unchanged) -> recovery.
  OverloadRunResult RunLatencyStorm();

  // Asserts `result` (a shedding-disabled run) exhibits congestion collapse;
  // returns violations naming what FAILED to collapse. An empty return means
  // the A/B demonstrated that admission control is load-bearing.
  static std::vector<std::string> ExpectCollapse(const OverloadRunResult& result);

 private:
  OverloadRunResult RunInternal(bool storm);

  OverloadExplorerConfig config_;
};

}  // namespace camelot

#endif  // SRC_HARNESS_OVERLOAD_ORACLE_H_
