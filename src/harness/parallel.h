// Host-thread fan-out for explorer sweeps.
//
// Every sweep schedule runs in its own World (scheduler, network, sites,
// failpoints, ledgers all World members), so runs are independent and
// bit-identical regardless of which host thread executes them. The sweeps
// pre-generate their schedule lists, fan the runs out here, and merge results
// in schedule order — failure ordering and replay recipes are byte-identical
// at any thread count.
#ifndef SRC_HARNESS_PARALLEL_H_
#define SRC_HARNESS_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace camelot {

// Thread count used when a sweep config leaves sweep_threads at 0:
// CAMELOT_SWEEP_THREADS if set (>= 1), else hardware_concurrency clamped to
// [1, 16].
int DefaultSweepThreads();

// configured >= 1 -> configured; otherwise DefaultSweepThreads().
int ResolveSweepThreads(int configured);

// Runs fn(i) for every i in [0, n), fanned across up to `threads` host
// threads (serial when threads <= 1 or n <= 1); items are handed out via an
// atomic counter. Blocks until all items complete. fn must keep parallel
// items independent — no shared mutable state without the caller's own
// synchronization.
void ParallelFor(int threads, size_t n, const std::function<void(size_t)>& fn);

}  // namespace camelot

#endif  // SRC_HARNESS_PARALLEL_H_
