// IsolationOracle: checks a recorded operation history (src/harness/history.h)
// for serializability, Jepsen-style, and names the anomaly when it is not.
//
// The check generalizes the serial-replay argument the fault-free
// serializability tests have always made: under strict two-phase locking every
// lock a committed family took was held from first touch until its commit
// transition, so ordering committed families by their EARLIEST recorded commit
// transition is a valid serial order. Replaying the committed families' writes
// in that order against the recorded initial state yields the value every
// committed read must have seen — any read that disagrees with the model is a
// bug, and the observed value's provenance tells us which classic anomaly to
// call it:
//
//   read of aborted   — the value was written by a family that aborted
//                       (e.g. a skipped/leaked undo);
//   dirty read        — the value was written by a family that had not yet
//                       committed when the read happened (leaked write locks);
//   lost update       — the value is a stale committed version and the reader
//                       also wrote this object (its update clobbered one it
//                       never saw);
//   write skew        — stale committed version, and the reader wrote OTHER
//                       objects based on it;
//   non-serializable  — stale version read-only, or unknown provenance.
//
// Two cross-variant anomalies need no replay: a family with both a commit and
// an abort transition in the history (divergent outcome — sites disagree
// about atomicity), and a post-quiesce state that disagrees with the replay
// (divergent final state, checked via IsolationReport::CheckFinalValue).
//
// Caveat: provenance is value-based, so when distinct writes produce equal
// bytes an anomaly can be attributed to the wrong class — but never invented:
// only reads that genuinely disagree with the serial replay are reported.
#ifndef SRC_HARNESS_ISOLATION_ORACLE_H_
#define SRC_HARNESS_ISOLATION_ORACLE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/history.h"

namespace camelot {

enum class AnomalyType : uint8_t {
  kDivergentOutcome,     // A family both committed and aborted (site disagreement).
  kReadOfAborted,        // Committed read observed an aborted family's write.
  kDirtyRead,            // Committed read observed a not-yet-committed write.
  kLostUpdate,           // Reader overwrote a committed version it never saw.
  kWriteSkew,            // Reader wrote elsewhere based on a stale version.
  kNonSerializableRead,  // Stale or unexplainable read; no finer class fits.
  kDivergentFinalState,  // Quiesced state disagrees with the serial replay.
};

const char* AnomalyName(AnomalyType type);

struct IsolationAnomaly {
  AnomalyType type = AnomalyType::kNonSerializableRead;
  FamilyId family;     // The observing (or outcome-divergent) family.
  std::string server;  // Where; empty for kDivergentOutcome.
  std::string object;
  std::string detail;  // Human-readable evidence.

  std::string ToString() const;
};

struct IsolationReport {
  std::vector<IsolationAnomaly> anomalies;
  size_t committed = 0;   // Families with a commit transition.
  size_t aborted = 0;     // Families with only abort transitions.
  size_t undecided = 0;   // Families that touched data but never concluded.
  size_t reads_checked = 0;

  // The serial replay's final value per (server, object).
  std::map<std::pair<std::string, std::string>, Bytes> final_state;

  bool ok() const { return anomalies.empty(); }
  std::string Explain() const;

  // Compares an out-of-band observation of (server, object) — e.g. a durable
  // peek after quiesce — against the replay; appends a kDivergentFinalState
  // anomaly and returns false on mismatch.
  bool CheckFinalValue(const std::string& server, const std::string& object,
                       const Bytes& actual);
};

class IsolationOracle {
 public:
  static IsolationReport Check(const std::vector<HistoryEvent>& events);
};

}  // namespace camelot

#endif  // SRC_HARNESS_ISOLATION_ORACLE_H_
