#include "src/harness/oracle.h"

#include <string>
#include <vector>

namespace camelot {
namespace {

std::string Srv(int i) { return "server:" + std::to_string(i); }

Async<int64_t> ReadVault(AppClient& app, std::string srv) {
  auto begin = co_await app.Begin();
  if (!begin.ok()) {
    co_return -1;
  }
  auto value = co_await app.ReadInt(*begin, srv, "vault");
  co_await app.Commit(*begin);
  co_return value.value_or(-1);
}

}  // namespace

void AuditBalancesAndSubset(World& world, int site_count, int64_t initial_balance,
                            const std::vector<TransferAttempt>& attempts,
                            std::vector<std::string>* violations) {
  const int n = site_count;
  // Two observers read every vault; they must agree and every read must
  // succeed.
  std::vector<int64_t> balances(static_cast<size_t>(n), -1);
  for (int observer = 0; observer < 2 && observer < n; ++observer) {
    AppClient auditor(world.site(observer));
    for (int i = 0; i < n; ++i) {
      const int64_t balance = world.RunSync(ReadVault(auditor, Srv(i))).value_or(-1);
      if (balance < 0) {
        violations->push_back("audit read of vault " + std::to_string(i) + " from observer " +
                              std::to_string(observer) + " failed");
        return;
      }
      if (observer == 0) {
        balances[static_cast<size_t>(i)] = balance;
      } else if (balance != balances[static_cast<size_t>(i)]) {
        violations->push_back("observers disagree about vault " + std::to_string(i) + ": " +
                              std::to_string(balances[static_cast<size_t>(i)]) + " vs " +
                              std::to_string(balance));
      }
    }
  }

  // Money conserved, and the final balances are explained by some subset of
  // the attempted transfers that includes every client-visible OK.
  int64_t total = 0;
  std::vector<int64_t> delta(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    total += balances[static_cast<size_t>(i)];
    delta[static_cast<size_t>(i)] = balances[static_cast<size_t>(i)] - initial_balance;
  }
  if (total != static_cast<int64_t>(n) * initial_balance) {
    std::string detail;
    for (int i = 0; i < n; ++i) {
      detail += (i > 0 ? " " : "") + std::to_string(balances[static_cast<size_t>(i)]);
    }
    violations->push_back("money not conserved: total " + std::to_string(total) + " != " +
                          std::to_string(static_cast<int64_t>(n) * initial_balance) +
                          " (balances: " + detail + ")");
  }
  const size_t k = attempts.size();
  if (k <= 20) {  // 2^k subsets; the explorer workloads are a handful.
    uint32_t must = 0;
    uint32_t may = 0;
    for (size_t i = 0; i < k; ++i) {
      if (attempts[i].status.ok()) {
        must |= 1u << i;
      }
      if (attempts[i].attempted) {
        may |= 1u << i;  // Never-attempted transfers cannot have committed.
      }
    }
    bool matched = false;
    for (uint32_t mask = 0; mask < (1u << k) && !matched; ++mask) {
      if ((mask & must) != must || (mask & ~may) != 0) {
        continue;
      }
      std::vector<int64_t> d(static_cast<size_t>(n), 0);
      for (size_t i = 0; i < k; ++i) {
        if (mask & (1u << i)) {
          d[static_cast<size_t>(attempts[i].from_vault)] -= attempts[i].amount;
          d[static_cast<size_t>(attempts[i].to_vault)] += attempts[i].amount;
        }
      }
      matched = (d == delta);
    }
    if (!matched) {
      violations->push_back(
          "final balances match no subset of attempted transfers containing every "
          "client-OK commit (lost commit or partial transfer)");
    }
  }
}

void AuditLeaks(World& world, int site_count, std::vector<std::string>* violations) {
  for (int i = 0; i < site_count; ++i) {
    CamelotSite& s = world.site(i);
    // Every server on the site is audited, whatever the workload named them.
    size_t locks = 0;
    for (const auto& [name, server] : s.ServerMap()) {
      locks += server->locks().held_lock_count();
    }
    if (locks != 0) {
      violations->push_back("site " + std::to_string(i) + " leaked " + std::to_string(locks) +
                            " locks");
    }
    const size_t live = s.tranman().live_family_count();
    if (live != 0) {
      violations->push_back("site " + std::to_string(i) + " has " + std::to_string(live) +
                            " live families");
    }
    if (s.recovery_totals().failed_recoveries != 0) {
      violations->push_back("site " + std::to_string(i) + " reported " +
                            std::to_string(s.recovery_totals().failed_recoveries) +
                            " failed recoveries");
    }
  }
}

void AuditExactlyOnce(World& world, int site_count, std::vector<std::string>* violations) {
  for (int i = 0; i < site_count; ++i) {
    const uint64_t dups = world.site(i).tranman().counters().duplicate_effects;
    if (dups != 0) {
      violations->push_back("site " + std::to_string(i) + " re-drove " + std::to_string(dups) +
                            " commit/abort effects on already-final families "
                            "(duplicate or reordered datagram broke exactly-once)");
    }
  }
}

}  // namespace camelot
