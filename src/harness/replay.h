// Replay-recipe formatting shared by the crash and partition explorers: every
// oracle failure prints a one-line environment-variable recipe that rebuilds
// the exact run. Both explorers share the seed/protocol prefix; each appends
// its own schedule variable (CAMELOT_SCHEDULE / CAMELOT_NEMESIS), and
// isolation failures add CAMELOT_HISTORY=<file> pointing at the dumped
// operation history so the oracle verdict is reproducible offline without
// re-running the simulation.
#ifndef SRC_HARNESS_REPLAY_H_
#define SRC_HARNESS_REPLAY_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/harness/history.h"
#include "src/tranman/local_api.h"

namespace camelot {

// The five commit variants, as replay-recipe protocol tokens: "2pc"
// (Optimized), "2pc-unopt" (Unoptimized), "2pc-int" (Intermediate), "nbc"
// (NonBlocking), "paxos" (Paxos Commit; F rides in CAMELOT_F, defaulting
// to 1 on parse).
std::string ProtocolName(const CommitOptions& options);
Result<CommitOptions> ParseProtocolName(std::string_view name);

// Overrides paxos_f from the CAMELOT_F environment variable on a parsed
// "paxos" option set; every other protocol passes through untouched.
CommitOptions ApplyPaxosFFromEnv(CommitOptions options);

// "CAMELOT_SEED=<seed> CAMELOT_PROTOCOL=<2pc|nbc>"
std::string ReplayRecipePrefix(uint64_t seed, bool non_blocking);
// Same, with the full four-variant protocol token.
std::string ReplayRecipePrefix(uint64_t seed, const CommitOptions& options);

// The full recipe: prefix + " <variable>='<schedule>'".
std::string ReplayRecipe(uint64_t seed, bool non_blocking, const std::string& variable,
                         const std::string& schedule);
std::string ReplayRecipe(uint64_t seed, const CommitOptions& options,
                         const std::string& variable, const std::string& schedule);

// Appends " CAMELOT_HISTORY='<path>'" to an existing recipe.
std::string WithHistory(const std::string& recipe, const std::string& history_path);

// Writes a serialized history under CAMELOT_ARTIFACT_DIR (or the working
// directory when unset) as "<label>.history"; `label` is sanitized to
// [A-Za-z0-9._-]. Returns the path written.
Result<std::string> DumpHistoryArtifact(const HistoryRecorder& history,
                                        const std::string& label);

// Loads and parses a history file (the target of a CAMELOT_HISTORY recipe).
Result<std::vector<HistoryEvent>> LoadHistoryFile(const std::string& path);

}  // namespace camelot

#endif  // SRC_HARNESS_REPLAY_H_
