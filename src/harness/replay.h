// Replay-recipe formatting shared by the crash and partition explorers: every
// oracle failure prints a one-line environment-variable recipe that rebuilds
// the exact run. Both explorers share the seed/protocol prefix; each appends
// its own schedule variable (CAMELOT_SCHEDULE / CAMELOT_NEMESIS).
#ifndef SRC_HARNESS_REPLAY_H_
#define SRC_HARNESS_REPLAY_H_

#include <string>

namespace camelot {

// "CAMELOT_SEED=<seed> CAMELOT_PROTOCOL=<2pc|nbc>"
std::string ReplayRecipePrefix(uint64_t seed, bool non_blocking);

// The full recipe: prefix + " <variable>='<schedule>'".
std::string ReplayRecipe(uint64_t seed, bool non_blocking, const std::string& variable,
                         const std::string& schedule);

}  // namespace camelot

#endif  // SRC_HARNESS_REPLAY_H_
