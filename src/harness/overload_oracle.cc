#include "src/harness/overload_oracle.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "src/analysis/static_analysis.h"
#include "src/base/logging.h"
#include "src/harness/nemesis.h"
#include "src/harness/oracle.h"
#include "src/harness/replay.h"
#include "src/stats/cost_ledger.h"

namespace camelot {
namespace {

std::string Fmt(const char* format, double a, double b = 0, double c = 0) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), format, a, b, c);
  return buf;
}

bool HasSuffix(const std::string& key, const std::string& suffix) {
  return key.size() >= suffix.size() &&
         key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0;
}

WorldConfig MakeWorldConfig(const OverloadExplorerConfig& cfg) {
  WorldConfig w;
  w.site_count = cfg.site_count;
  w.seed = cfg.seed;
  // Deterministic network; the load generator supplies all the randomness.
  w.net.send_jitter_mean = 0;
  w.net.stall_probability = 0;
  w.net.receive_skew_mean = 0;
  w.tranman.worker_threads = cfg.worker_threads;
  w.tranman.cpu_per_event = cfg.cpu_per_event;
  // Short lock waits: under a hotspot the fallback must fail fast so the
  // oracle measures queueing, not deadlock-timeout tails.
  w.server.lock_wait_timeout = Sec(1.0);
  w.ipc.rpc_timeout = Sec(2.0);
  if (cfg.shedding) {
    w.tranman.admission_queue_limit = cfg.admission_queue_limit;
    w.tranman.admission_policy = cfg.admission_policy;
    w.tranman.max_live_families = cfg.max_live_families;
    w.tranman.shed_expired_work = true;
    w.ipc.rpc_retry_budget_ratio = cfg.rpc_retry_budget_ratio;
    w.ipc.rpc_retry_budget_cap = cfg.rpc_retry_budget_cap;
  } else {
    // The collapse arm: unbounded queues, no deadline enforcement anywhere,
    // unlimited transport retries.
    w.tranman.admission_queue_limit = 0;
    w.tranman.max_live_families = 0;
    w.tranman.shed_expired_work = false;
    w.ipc.rpc_retry_budget_ratio = 0;
  }
  return w;
}

void Violate(OverloadRunResult* out, std::string text) {
  out->ok = false;
  out->violations.push_back(std::move(text));
}

// The usable knee: drive a shedding world at the predicted CPU-bound rate
// and measure the goodput it sustains. Lock contention on the Zipfian
// hotspot caps real capacity well below the CPU/force model; admission
// control keeps goodput pinned near that cap even when offered load exceeds
// it, so the sustained goodput IS the capacity. Both arms calibrate with the
// shedding configuration so the A/B drives identical offered load.
double MeasureUsableCapacity(const OverloadExplorerConfig& cfg, double predicted_tps) {
  OverloadExplorerConfig shed_cfg = cfg;
  shed_cfg.shedding = true;
  World world(MakeWorldConfig(shed_cfg));
  LoadGenConfig lg = cfg.load;
  lg.options = cfg.Options();
  lg.offered_tps = predicted_tps;
  lg.duration = cfg.calibration_window;
  lg.rng_seed = cfg.seed + 9001;
  SetupBank(world, ToBankConfig(lg));
  LoadGen gen(world, lg);
  const SimTime t0 = world.sched().now();
  gen.Start();
  world.RunFor(cfg.calibration_window);
  world.RunUntilIdle();
  return gen.stats().GoodputTps(t0, t0 + cfg.calibration_window);
}

}  // namespace

std::string CapacityModel::Explain() const {
  std::string out = Fmt("predicted knee %.1f tps", predicted_tps);
  out += Fmt(" (%.0f us pool occupancy/txn: ", per_txn_pool_us);
  out += std::to_string(events) + " events, " + std::to_string(forces) + " forces)";
  return out;
}

CapacityModel PredictCapacity(const WorldConfig& world, const CommitOptions& options) {
  CapacityModel model;
  // One two-site transfer: coordinator's site updates locally, one update
  // subordinate (the generator's transfers touch two sites on average; the
  // occasional one-site transfer costs less, keeping the estimate safe).
  const CountVector counts =
      ExpectedProtocolCounts(options, /*update_subs=*/1, /*readonly_subs=*/0,
                             /*local_updates=*/true, TxnOutcome::kCommit);
  int64_t dgrams = 0;
  for (const auto& [key, count] : counts) {
    if (HasSuffix(key, "/force")) {
      model.forces += count;
    } else if (HasSuffix(key, "/dgram")) {
      dgrams += count;
    }
  }
  // Pool events: the client's begin + commit calls, one first-touch join per
  // touched site, and one event per received protocol datagram.
  model.events = 2 + 2 + dgrams;
  model.per_txn_pool_us =
      static_cast<double>(model.events * world.tranman.cpu_per_event) +
      static_cast<double>(model.forces * world.log.force_latency);
  const double worker_us_per_sec =
      static_cast<double>(world.site_count) *
      static_cast<double>(world.tranman.worker_threads) * 1e6;
  model.predicted_tps =
      model.per_txn_pool_us > 0 ? worker_us_per_sec / model.per_txn_pool_us : 0;
  return model;
}

std::string QueueHealthReport(World& world) {
  std::string out = "queue health:\n";
  for (int i = 0; i < world.site_count(); ++i) {
    CamelotSite& site = world.site(i);
    WorkerPool& pool = site.tranman().pool();
    const TranManCounters& tm = site.tranman().counters();
    out += "  site " + std::to_string(i) + ": pool wait p50/p99 " +
           Fmt("%.0f/%.0f us", pool.queued_time_us().Percentile(50),
               pool.queued_time_us().Percentile(99)) +
           ", depth hwm " + std::to_string(pool.depth_high_watermark()) +
           ", queued " + std::to_string(pool.queued_events()) + "/" +
           std::to_string(pool.events()) + " events" + ", shed " +
           std::to_string(pool.shed_rejected()) + " rejected + " +
           std::to_string(pool.shed_expired()) + " expired\n";
    out += "    tranman: " + std::to_string(tm.overload_rejects) + " overload rejects, " +
           std::to_string(tm.prepares_shed) + " prepares shed, " +
           std::to_string(tm.deadline_shed) + " deadline shed, " +
           std::to_string(tm.offpath_dropped) + " off-path dropped\n";
    uint64_t deadline_rejects = 0;
    for (auto& [name, server] : site.ServerMap()) {
      deadline_rejects += server->counters().deadline_rejects;
    }
    out += "    servers: " + std::to_string(deadline_rejects) + " deadline rejects; rpc " +
           std::to_string(site.netmsg().retransmits()) + " retransmits (" +
           std::to_string(site.netmsg().retransmits_suppressed()) +
           " budget-suppressed) over " + std::to_string(site.netmsg().calls()) + " calls\n";
  }
  return out;
}

std::string OverloadRunResult::Explain() const {
  std::string out;
  for (const auto& v : violations) {
    out += "  - " + v + "\n";
  }
  out += "  " + capacity.Explain() + "\n";
  out += Fmt("  measured usable capacity %.1f tps\n", measured_capacity_tps);
  out += Fmt("  offered %.1f baseline / %.1f spike tps\n", offered_baseline_tps,
             offered_spike_tps);
  out += Fmt("  goodput %.1f baseline -> %.1f spike -> %.1f recovered tps\n",
             baseline_goodput_tps, spike_goodput_tps, recovered_goodput_tps);
  out += Fmt("  p99 %.0f ms (bound %.0f ms)\n", p99_ms, p99_bound_ms);
  out += "  " + queue_health;
  out += "  replay: " + replay + "\n";
  return out;
}

CapacityModel OverloadExplorer::Capacity() const {
  return PredictCapacity(MakeWorldConfig(config_), config_.Options());
}

OverloadRunResult OverloadExplorer::Run() { return RunInternal(/*storm=*/false); }

OverloadRunResult OverloadExplorer::RunLatencyStorm() { return RunInternal(/*storm=*/true); }

OverloadRunResult OverloadExplorer::RunInternal(bool storm) {
  OverloadRunResult out;
  out.replay = ReplayRecipe(config_.seed, config_.Options(), "CAMELOT_OVERLOAD",
                            std::string(storm ? "storm" : "spike") +
                                (config_.shedding ? "" : ",noshed"));

  const WorldConfig world_config = MakeWorldConfig(config_);
  World world(world_config);
  out.capacity = PredictCapacity(world_config, config_.Options());

  LoadGenConfig base = config_.load;
  base.options = config_.Options();
  base.rng_seed = config_.seed;
  // The A/B lever: the collapse arm still CLASSIFIES by deadline but never
  // tells the system about it, and retries without a budget.
  base.propagate_deadlines = config_.shedding && config_.load.propagate_deadlines;
  if (!config_.shedding) {
    base.retry_budget_ratio = 0;
    // Unbudgeted clients hammer reload: they keep retrying to exhaustion even
    // past their deadline, so every shed or lock timeout multiplies the
    // offered load — the storm the budget and deadline propagation prevent.
    base.retry_past_deadline = true;
    base.max_retries = 3 * config_.load.max_retries;
  }
  SetupBank(world, ToBankConfig(base));

  const SimDuration total_window =
      config_.baseline_window + config_.spike_window + config_.recovery_window;
  out.measured_capacity_tps =
      MeasureUsableCapacity(config_, out.capacity.predicted_tps);
  // Floor the knee so a degenerate calibration still drives some load (the
  // baseline-goodput oracle below would then name the real problem).
  const double knee = std::max(1.0, out.measured_capacity_tps);
  out.offered_baseline_tps = config_.baseline_multiplier * knee;
  out.offered_spike_tps = config_.spike_multiplier * knee;

  LoadGenConfig bg_cfg = base;
  bg_cfg.offered_tps = out.offered_baseline_tps;
  bg_cfg.duration = total_window;
  LoadGen background(world, bg_cfg);

  LoadGenConfig spike_cfg = base;
  // The spike generator ADDS load on top of the background's 0.5x.
  spike_cfg.offered_tps = out.offered_spike_tps - out.offered_baseline_tps;
  spike_cfg.duration = config_.spike_window;
  spike_cfg.rng_seed = config_.seed + 101;

  const SimTime t0 = world.sched().now();
  const SimTime spike_start = t0 + config_.baseline_window;
  const SimTime spike_end = spike_start + config_.spike_window;
  const SimTime recovery_end = spike_end + config_.recovery_window;

  background.Start();
  world.RunFor(config_.baseline_window);
  out.baseline_goodput_tps = background.stats().GoodputTps(t0, spike_start);

  Nemesis nemesis(world.sched(), world.net(), &world.failpoints());
  std::optional<LoadGen> spike;
  if (storm) {
    // Offered load unchanged; capacity drops out from under it.
    NemesisEvent on;
    on.when = NemesisEvent::When::kAbsolute;
    on.at = 0;
    on.action = NemesisEvent::Action::kCongest;
    on.duration = config_.storm_congestion;
    NemesisEvent off;
    off.when = NemesisEvent::When::kAbsolute;
    off.at = config_.spike_window;
    off.action = NemesisEvent::Action::kCalm;
    CAMELOT_CHECK(nemesis.Install(NemesisScript{{on, off}}).ok());
  } else {
    spike.emplace(world, spike_cfg);
    spike->Start();
  }
  world.RunFor(config_.spike_window);
  out.spike_goodput_tps = background.stats().GoodputTps(spike_start, spike_end) +
                          (spike ? spike->stats().GoodputTps(spike_start, spike_end) : 0);

  world.RunFor(config_.recovery_window);
  // Recovery is judged on the tail of the window so the backlog the spike
  // left behind has had its chance to drain.
  const SimTime tail_start = spike_end + config_.recovery_window / 2;
  out.recovered_goodput_tps = background.stats().GoodputTps(tail_start, recovery_end);

  world.RunUntilIdle();  // Drain stragglers before auditing.

  out.background = background.stats();
  if (spike) {
    out.spike = spike->stats();
  }
  Summary latency = out.background.latency_ms;
  for (double sample : out.spike.latency_ms.samples()) {
    latency.Add(sample);
  }
  out.p99_ms = latency.Percentile(99);
  out.p99_bound_ms = config_.p99_bound_ms > 0
                         ? config_.p99_bound_ms
                         : 1.5 * static_cast<double>(config_.load.deadline) / 1000.0;
  for (int i = 0; i < world.site_count(); ++i) {
    const TranManCounters& tm = world.site(i).tranman().counters();
    out.overload_rejects += tm.overload_rejects;
    out.prepares_shed += tm.prepares_shed;
    out.deadline_shed += tm.deadline_shed;
    out.offpath_dropped += tm.offpath_dropped;
    for (auto& [name, server] : world.site(i).ServerMap()) {
      out.server_deadline_rejects += server->counters().deadline_rejects;
    }
  }
  out.queue_health = QueueHealthReport(world);

  // Liveness of the generators themselves: every arrival must resolve.
  if (!background.done() || (spike && !spike->done())) {
    Violate(&out, "load generator did not quiesce: arrivals still in flight after drain");
  }

  if (config_.shedding) {
    if (out.baseline_goodput_tps <= 0) {
      Violate(&out, "baseline produced zero goodput; capacity model is off");
    }
    if (out.spike_goodput_tps < config_.goodput_floor * out.baseline_goodput_tps) {
      Violate(&out, Fmt("goodput floor violated: %.1f tps during the spike < %.2f x "
                        "baseline %.1f tps",
                        out.spike_goodput_tps, config_.goodput_floor,
                        out.baseline_goodput_tps));
    }
    if (out.p99_ms > out.p99_bound_ms) {
      Violate(&out, Fmt("p99 latency unbounded: %.0f ms > %.0f ms bound", out.p99_ms,
                        out.p99_bound_ms));
    }
    if (out.recovered_goodput_tps < config_.recovery_fraction * out.baseline_goodput_tps) {
      Violate(&out, Fmt("no recovery: %.1f tps in the recovery tail < %.2f x baseline "
                        "%.1f tps (metastable residue)",
                        out.recovered_goodput_tps, config_.recovery_fraction,
                        out.baseline_goodput_tps));
    }
  }

  // Safety under pressure, both arms: shedding (or collapsing) must never
  // corrupt. Conservation audits every account; leaks audit locks/families.
  std::vector<std::string> safety = AuditBankInvariant(world, ToBankConfig(base));
  for (auto& v : safety) {
    Violate(&out, "safety: " + std::move(v));
  }
  AuditLeaks(world, config_.site_count, &out.violations);
  out.ok = out.violations.empty();
  return out;
}

std::vector<std::string> OverloadExplorer::ExpectCollapse(const OverloadRunResult& result) {
  std::vector<std::string> missing;
  // The collapse signature: the backlog outlives the spike (no recovery in
  // the tail) and committed latency blows through the deadline-derived bound.
  const bool goodput_collapsed =
      result.recovered_goodput_tps < 0.5 * result.baseline_goodput_tps ||
      result.spike_goodput_tps < 0.1 * result.baseline_goodput_tps;
  if (!goodput_collapsed) {
    missing.push_back(Fmt("congestion collapse absent: goodput held (%.1f spike / %.1f "
                          "recovered vs %.1f baseline tps) without admission control",
                          result.spike_goodput_tps, result.recovered_goodput_tps,
                          result.baseline_goodput_tps));
  }
  if (result.p99_ms <= result.p99_bound_ms) {
    missing.push_back(Fmt("congestion collapse absent: p99 %.0f ms stayed under the %.0f "
                          "ms bound without admission control",
                          result.p99_ms, result.p99_bound_ms));
  }
  return missing;
}

}  // namespace camelot
