// CrashExplorer: systematic crash-schedule exploration with an atomicity
// oracle.
//
// Each run builds a fresh CamelotWorld, drives a fixed multi-site transfer
// workload (every transfer touches three sites: the coordinator plus two
// vault owners) under an armed CrashSchedule, then HEALS the installation —
// restarting every down site, repeatedly if a schedule crashes a site again
// mid-recovery — and finally audits the survivors:
//
//   - money conserved: the sum of all vault balances equals the initial
//     funding plus the effects of some subset of the attempted transfers,
//     and that subset contains every transfer whose commit returned OK
//     (client-visible OK implies durably committed);
//   - agreement: two independent observer sites read identical balances;
//   - nothing leaked: zero held locks and zero live transaction families at
//     every site, and no recovery pass reported failure;
//   - isolation: the run's recorded operation history replays serializably
//     (src/harness/isolation_oracle.h); a failure names the anomaly, dumps
//     the history file, and appends CAMELOT_HISTORY=<file> to the recipe.
//
// Exploration modes:
//   Discover()                — fault-free recording run; returns every
//                               (point, site, hits) the workload evaluates.
//   ExhaustiveSingleCrashSweep — one run per discovered (point, site, hit):
//                               crash there, heal, audit.
//   RecoverySweep             — given a base crash, discover which recovery.*
//                               points the restart evaluates, then sweep a
//                               second crash over each (crash-during-recovery
//                               schedules; recovery must be idempotent).
//   RandomSweep               — seeded multi-fault schedules (crash / drop /
//                               delay / error at random discovered points).
//
// Every failing run carries a one-line replay recipe:
//   CAMELOT_SEED=<s> CAMELOT_PROTOCOL=<2pc|nbc> CAMELOT_SCHEDULE='<schedule>'
// which the crash_schedule_test honors via those environment variables, and
// determinism guarantees the rerun reproduces the identical event trace.
#ifndef SRC_HARNESS_CRASH_EXPLORER_H_
#define SRC_HARNESS_CRASH_EXPLORER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/base/failpoint.h"
#include "src/harness/world.h"
#include "src/tranman/local_api.h"

namespace camelot {

struct ExplorerConfig {
  int site_count = 3;
  uint64_t seed = 1;
  bool non_blocking = false;  // Commit protocol for the workload's transfers.
  // Full four-variant selection (Optimized / Unoptimized / Intermediate /
  // NonBlocking); when set it overrides non_blocking. Everything — workload,
  // conformance prediction, replay recipe — goes through Options().
  std::optional<CommitOptions> variant;

  CommitOptions Options() const {
    return variant.value_or(non_blocking ? CommitOptions::NonBlocking()
                                         : CommitOptions::Optimized());
  }
  int transfers = 3;          // Serial transfers; transfer i moves amount from
                              // vault i%N to vault (i+1)%N, coordinated by 0.
  int64_t initial_balance = 1000;
  int64_t amount = 10;
  // Virtual time allotted to the workload before healing starts, and to each
  // heal round before re-checking which sites are still down.
  SimDuration workload_window = Sec(6);
  SimDuration heal_window = Sec(3);
  int max_restart_attempts = 4;  // A schedule may crash recovery itself.
  // Host threads for the sweep fan-out (each schedule is an independent
  // World, so runs are bit-identical at any thread count and failures are
  // merged in schedule order). 0 = CAMELOT_SWEEP_THREADS / host default.
  int sweep_threads = 0;
};

struct RunResult {
  bool ok = true;
  std::vector<std::string> violations;  // Oracle failures, human-readable.
  int client_ok = 0;                    // Transfers whose commit returned OK.
  std::vector<std::string> trace;       // Registry trace (recording runs only).
  std::vector<DiscoveredPoint> discovered;  // Recording runs only.
  std::string replay;                   // One-line replay recipe for this run.
  std::string history_path;             // Dumped history (isolation failures only).

  std::string Explain() const;  // Violations joined, one per line.
};

struct SweepFailure {
  CrashSchedule schedule;
  RunResult result;
};

class CrashExplorer {
 public:
  explicit CrashExplorer(ExplorerConfig config) : config_(config) {}

  const ExplorerConfig& config() const { return config_; }

  // Fault-free recording run. Workload-only discovery: the returned set holds
  // every (point, site) with its total hit count.
  std::vector<DiscoveredPoint> Discover();

  // One full run: arm `schedule`, drive workload, heal, audit.
  RunResult Run(const CrashSchedule& schedule, bool record = false);

  // Crash once at every discovered (point, site, hit <= max_hits_per_point;
  // 0 = every hit). Returns the failing runs; `runs` (optional) counts runs.
  std::vector<SweepFailure> ExhaustiveSingleCrashSweep(uint64_t max_hits_per_point = 1,
                                                       int* runs = nullptr);

  // Crash-during-recovery: runs `base` recording to learn which recovery.*
  // points its heal evaluates, then sweeps {base, crash@recovery-point} pairs.
  std::vector<SweepFailure> RecoverySweep(const ScheduleEntry& base, int* runs = nullptr);

  // `rounds` random schedules of 1..max_faults entries drawn from the
  // discovered set with actions crash/drop/delay/error.
  std::vector<SweepFailure> RandomSweep(uint64_t rng_seed, int rounds, int max_faults,
                                        int* runs = nullptr);

  // The replay recipe prefix for this configuration (seed + protocol).
  std::string ReplayPrefix() const;

 private:
  // Fan the schedules across the sweep thread pool, appending the failing
  // runs to `failures` in schedule order.
  void RunSchedules(const std::vector<CrashSchedule>& schedules,
                    std::vector<SweepFailure>* failures);

  ExplorerConfig config_;
};

}  // namespace camelot

#endif  // SRC_HARNESS_CRASH_EXPLORER_H_
