// CamelotWorld: wires up an N-site Camelot installation inside one simulation.
//
// Every site gets the paper's process set: NetMsgServer, Communication
// Manager, Disk Manager (owning the stable log with group commit), Recovery
// Manager, and the Transaction Manager, plus any data servers the caller
// adds. This is the embedding API used by the examples, tests, and every
// bench.
#ifndef SRC_HARNESS_WORLD_H_
#define SRC_HARNESS_WORLD_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/failpoint.h"
#include "src/comman/comman.h"
#include "src/harness/history.h"
#include "src/diskmgr/disk_manager.h"
#include "src/ipc/name_service.h"
#include "src/ipc/netmsg.h"
#include "src/ipc/site.h"
#include "src/net/network.h"
#include "src/recovery/recovery.h"
#include "src/server/data_server.h"
#include "src/sim/scheduler.h"
#include "src/stats/cost_ledger.h"
#include "src/tranman/tranman.h"
#include "src/wal/stable_log.h"

namespace camelot {

struct WorldConfig {
  int site_count = 2;
  uint64_t seed = 1;
  NetConfig net;
  IpcConfig ipc;
  LogConfig log;
  DiskConfig disk;
  ServerConfig server;
  TranManConfig tranman;
};

// One site's full Camelot process set.
class CamelotSite {
 public:
  CamelotSite(Scheduler& sched, Network& net, NameService& names, SiteId id,
              const WorldConfig& config, FailpointRegistry& failpoints,
              CostLedger& cost_ledger, HistoryRecorder& history);

  Site& site() { return site_; }
  NetMsgServer& netmsg() { return netmsg_; }
  ComMan& comman() { return comman_; }
  StableLog& log() { return log_; }
  DiskManager& diskmgr() { return diskmgr_; }
  TranMan& tranman() { return tranman_; }
  RecoveryManager& recovery() { return recovery_; }

  DataServer* AddServer(const std::string& name, ServerConfig config);
  DataServer* server(const std::string& name);
  std::map<std::string, DataServer*> ServerMap();

  // Media-recovery observability: the report of the most recent restart, and
  // totals accumulated across every restart of this site (the chaos soak
  // asserts on these).
  struct RecoveryTotals {
    size_t recoveries = 0;
    size_t failed_recoveries = 0;  // Non-OK status (interior log corruption).
    size_t frames_salvaged = 0;
    size_t pages_repaired = 0;
    size_t repair_failures = 0;
  };
  void RecordRecovery(const RecoveryReport& report);
  const RecoveryReport& last_recovery() const { return last_recovery_; }
  const RecoveryTotals& recovery_totals() const { return recovery_totals_; }

 private:
  Site site_;
  NetMsgServer netmsg_;
  NameService& names_;
  ComMan comman_;
  StableLog log_;
  DiskManager diskmgr_;
  TranMan tranman_;
  RecoveryManager recovery_;
  std::map<std::string, std::unique_ptr<DataServer>> servers_;
  HistoryRecorder* history_;       // World-wide; hooks installed per component.
  Failpoints failpoint_handle_;    // Shared by late-added servers (AddServer).
  RecoveryReport last_recovery_;
  RecoveryTotals recovery_totals_;
};

class World {
 public:
  explicit World(WorldConfig config = {});

  Scheduler& sched() { return sched_; }
  Network& net() { return net_; }
  NameService& names() { return names_; }
  const WorldConfig& config() const { return config_; }
  int site_count() const { return static_cast<int>(sites_.size()); }
  CamelotSite& site(int index) { return *sites_.at(static_cast<size_t>(index)); }

  DataServer* AddServer(int site_index, const std::string& name);

  // Failure injection. Restart spawns the recovery process automatically.
  void Crash(int site_index);
  void Restart(int site_index);

  // The shared failpoint registry every site's components evaluate against
  // (arm points / record discovery here; see base/failpoint.h).
  FailpointRegistry& failpoints() { return failpoints_; }

  // The world-wide primitive-cost ledger: every protocol log force/spool,
  // datagram, and local IPC lands here tagged {family, site, role, phase}.
  // The ConformanceOracle compares it against the static analysis.
  CostLedger& cost_ledger() { return cost_ledger_; }

  // The world-wide operation history (off until history().set_enabled(true)):
  // every served read/write and top-level outcome transition, the input the
  // IsolationOracle checks. See src/harness/history.h.
  HistoryRecorder& history() { return history_; }

  // Drives the simulation.
  size_t RunUntilIdle() { return sched_.RunUntilIdle(); }
  size_t RunFor(SimDuration d) { return sched_.RunUntil(sched_.now() + d); }

  // A per-site operational snapshot (transactions, logging, disk, network),
  // rendered as a fixed-width table — the observability surface an operator
  // of a Camelot installation would watch.
  std::string StatsReport();

  // Spawns `task` and drains the scheduler; returns the captured result
  // (nullopt if the task never completed — e.g. it is blocked).
  template <typename T>
  std::optional<T> RunSync(Async<T> task) {
    std::optional<T> result;
    sched_.Spawn(Capture(std::move(task), &result));
    sched_.RunUntilIdle();
    return result;
  }

  // Like RunSync but stops as soon as the task completes (plus a short settle
  // window), leaving long-lived daemons pending. Use this from drivers that
  // hold transactions open across calls (e.g. the interactive shell): an open
  // transaction's orphan watcher keeps the event queue legitimately non-idle.
  template <typename T>
  std::optional<T> Drive(Async<T> task, SimDuration settle = Usec(100000)) {
    std::optional<T> result;
    sched_.Spawn(Capture(std::move(task), &result));
    while (!result.has_value() && sched_.RunUntilIdle(1) > 0) {
    }
    if (result.has_value()) {
      RunFor(settle);
    }
    return result;
  }

 private:
  template <typename T>
  static Async<void> Capture(Async<T> task, std::optional<T>* out) {
    out->emplace(co_await std::move(task));
  }

  WorldConfig config_;
  Scheduler sched_;
  Network net_;
  NameService names_;
  FailpointRegistry failpoints_;  // Declared before sites_: handles point here.
  CostLedger cost_ledger_;        // Likewise: per-site recorders point here.
  HistoryRecorder history_;       // Likewise: per-site hooks point here.
  std::vector<std::unique_ptr<CamelotSite>> sites_;
};

// Application-side façade: issues the calls of Figure 1 with their real costs
// (name lookups, local IPC to TranMan, ComMan-mediated operations).
class AppClient {
 public:
  explicit AppClient(CamelotSite& home) : home_(home) {}

  // Client deadline (absolute virtual time; 0 = none) attached to every
  // subsequent Begin/Commit/Abort/Read/Write so servers and transaction
  // managers can shed the work once it is past the point of usefulness.
  void set_deadline(SimTime deadline) { deadline_ = deadline; }
  SimTime deadline() const { return deadline_; }

  Async<Result<Tid>> Begin(Tid parent = kInvalidTid);
  Async<Status> Commit(const Tid& tid, CommitOptions options = CommitOptions::Optimized());
  Async<Status> Abort(const Tid& tid);

  Async<Result<Bytes>> Read(const Tid& tid, const std::string& server,
                            const std::string& object);
  Async<Status> Write(const Tid& tid, const std::string& server, const std::string& object,
                      Bytes value);
  Async<Result<int64_t>> ReadInt(const Tid& tid, const std::string& server,
                                 const std::string& object);
  Async<Status> WriteInt(const Tid& tid, const std::string& server, const std::string& object,
                         int64_t value);

  CamelotSite& home() { return home_; }

 private:
  CamelotSite& home_;
  SimTime deadline_ = 0;
};

}  // namespace camelot

#endif  // SRC_HARNESS_WORLD_H_
