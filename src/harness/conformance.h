// Primitive-cost conformance oracle (the static-analysis gate).
//
// The paper's Section 4.2 analysis predicts protocol latency by summing
// primitive costs; reproducing it honestly requires that the runtime perform
// EXACTLY the primitives the analysis charges for — no extra log force, no
// duplicate datagram, no hidden IPC. This oracle closes that loop: it drives
// one fault-free minimal transaction in a deterministic world, then asserts
//   measured primitive counts == ExpectedMinimalTxnCounts(...)   (exact), and
//   measured completion latency >= CompletionPath(...).TotalMs() (the
//   analysis deliberately underestimates: it ignores in-process CPU).
// On a count mismatch the report carries a per-primitive diff naming every
// unexpected or missing primitive.
#ifndef SRC_HARNESS_CONFORMANCE_H_
#define SRC_HARNESS_CONFORMANCE_H_

#include <functional>
#include <string>

#include "src/analysis/static_analysis.h"
#include "src/harness/world.h"

namespace camelot {

// One cell of the conformance matrix: the paper's minimal transaction under a
// commit variant, operation kind, subordinate count, and outcome.
struct ConformanceScenario {
  CommitOptions options = CommitOptions::Optimized();
  TxnKind kind = TxnKind::kWrite;
  int subordinates = 1;
  TxnOutcome outcome = TxnOutcome::kCommit;
  uint64_t seed = 1;
};

struct ConformanceReport {
  bool counts_match = false;
  bool latency_ok = false;  // measured_ms >= predicted_ms (underestimate bias).
  Status txn_status;        // Outcome of the driven transaction itself.
  CountVector predicted;
  CountVector measured;
  std::string diff;  // Per-primitive diff; empty iff the counts match exactly.
  double predicted_ms = 0;
  double measured_ms = 0;

  bool ok() const { return counts_match && latency_ok && txn_status.ok(); }
  // Human-readable verdict: the latency comparison plus the count diff.
  std::string Explain() const;
};

// Builds a deterministic Table-2-calibrated world, runs one warmup write
// transaction (steady state), clears the ledger, drives the scenario's
// minimal transaction to quiescence, and compares. `prepare` (optional) runs
// after the warmup and ledger clear, right before the measured transaction —
// mutation tests arm failpoints there.
ConformanceReport RunConformanceScenario(
    const ConformanceScenario& scenario,
    const std::function<void(World&)>& prepare = nullptr);

}  // namespace camelot

#endif  // SRC_HARNESS_CONFORMANCE_H_
