#include "src/harness/conformance.h"

#include <cstdio>
#include <utility>

#include "src/harness/experiments.h"

namespace camelot {
namespace {

struct TimedRun {
  Status status;
  double ms = 0;
};

Async<TimedRun> TimedMinimalTransaction(World& world, AppClient& app,
                                        ConformanceScenario scenario) {
  TimedRun out;
  const SimTime start = world.sched().now();
  out.status = co_await MinimalTransaction(app, scenario.subordinates, scenario.kind,
                                           scenario.options, /*value=*/1, scenario.outcome);
  out.ms = ToMs(world.sched().now() - start);
  co_return out;
}

}  // namespace

std::string ConformanceReport::Explain() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "txn %s; latency %s (predicted %.1f ms, measured %.1f ms); counts %s\n",
                txn_status.ok() ? "ok" : txn_status.message().c_str(),
                latency_ok ? "ok" : "UNDER PREDICTION", predicted_ms, measured_ms,
                counts_match ? "match" : "MISMATCH");
  std::string out = buf;
  if (!counts_match) {
    out += diff;
  }
  return out;
}

ConformanceReport RunConformanceScenario(const ConformanceScenario& scenario,
                                         const std::function<void(World&)>& prepare) {
  WorldConfig config = LatencyWorldConfig(scenario.subordinates, scenario.seed,
                                          /*deterministic=*/true);
  // Deterministic mode zeroes the stochastic datagram components (jitter,
  // stalls, receive skew) that the Table-2 calibration counts on, which would
  // make the sim UNDERSHOOT the analysis's 10ms/datagram. Fold their means
  // into the deterministic propagation delay instead: 1.7ms send cycle +
  // 8.3ms propagation = exactly one Table-2 datagram.
  config.net.propagation = Usec(8300);
  World world(config);
  for (int site = 0; site < world.site_count(); ++site) {
    world.AddServer(site, "server:" + std::to_string(site))
        ->CreateObjectForSetup("obj", EncodeInt64(0));
  }
  AppClient app(world.site(0));

  // Warmup to steady state (pools populated, name service primed), then drain
  // the epilogue (delayed acks, End records) so the measured family's events
  // are the only ones in the ledger.
  world.RunSync(MinimalTransaction(app, scenario.subordinates, TxnKind::kWrite,
                                   CommitOptions::Optimized(), /*value=*/0));
  world.cost_ledger().Clear();
  if (prepare) {
    prepare(world);
  }

  ConformanceReport report;
  auto timed = world.RunSync(TimedMinimalTransaction(world, app, scenario));
  // RunSync drains to idle, so the commit epilogue (delayed ack force,
  // COMMIT-ACK, the coordinator's End record) has fully landed in the ledger.
  report.txn_status = timed.has_value() ? timed->status : UnavailableError("txn never finished");
  report.measured_ms = timed.has_value() ? timed->ms : 0;

  report.predicted = ExpectedMinimalTxnCounts(scenario.options, scenario.kind,
                                              scenario.subordinates, scenario.outcome);
  report.measured = world.cost_ledger().ConformanceCounts();
  report.diff = CostLedger::Diff(report.predicted, report.measured);
  report.counts_match = report.diff.empty();

  if (scenario.outcome == TxnOutcome::kCommit) {
    // Options-aware so Paxos Commit's F (and its F = 0 collapse to two-phase)
    // shape the predicted path.
    report.predicted_ms = CompletionPath(scenario.options, scenario.kind,
                                         scenario.subordinates)
                              .TotalMs();
    // The paper's static analysis must underestimate: it charges primitive
    // costs only, never the CPU between them.
    report.latency_ok = report.measured_ms >= report.predicted_ms;
  } else {
    // No published completion-path model for the abort path; counts only.
    report.latency_ok = true;
  }
  return report;
}

}  // namespace camelot
