// Shared explorer oracle: the audits every fault-exploration harness applies
// to a quiesced CamelotWorld after its faults healed.
//
// The workloads under exploration are vault transfers ("server:i" on site i,
// each holding an int64 object "vault"). Each attempt records its
// client-visible outcome plus which vaults it moved money between, so the
// audits can reason about arbitrary transfer patterns (the crash explorer's
// ring, the partition explorer's two-vault ping-pong, ...).
//
// Invariants:
//   - AuditBalancesAndSubset: two independent observers read identical
//     balances; money is conserved; the final balances are explained by SOME
//     subset of the attempted transfers that contains EVERY transfer whose
//     commit returned OK (client-visible OK implies durably committed;
//     timeouts and errors may have committed or not — both are legal).
//   - AuditLeaks: zero held locks, zero live (undecided) transaction
//     families at every site, and no recovery pass reported failure.
//   - AuditExactlyOnce: no site re-drove a commit/abort effect on an
//     already-final family (TranManCounters::duplicate_effects stays 0 even
//     under datagram duplication and reordering).
#ifndef SRC_HARNESS_ORACLE_H_
#define SRC_HARNESS_ORACLE_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/harness/world.h"

namespace camelot {

struct TransferAttempt {
  Status status;          // Client-visible outcome of the commit (or abort).
  bool attempted = false;  // False: never issued, cannot have committed.
  int from_vault = 0;
  int to_vault = 0;
  int64_t amount = 0;
};

// All audits append human-readable lines to `violations`; an empty append
// means the invariant held. The world must be quiescent (the balance audit
// issues its own read-only transactions through World::RunSync).
void AuditBalancesAndSubset(World& world, int site_count, int64_t initial_balance,
                            const std::vector<TransferAttempt>& attempts,
                            std::vector<std::string>* violations);
void AuditLeaks(World& world, int site_count, std::vector<std::string>* violations);
void AuditExactlyOnce(World& world, int site_count, std::vector<std::string>* violations);

}  // namespace camelot

#endif  // SRC_HARNESS_ORACLE_H_
