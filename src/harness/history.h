// HistoryRecorder: a Jepsen-style operation history of a running Camelot
// world — every transactional read and write the data servers serve, every
// top-level commit/abort transition the transaction managers apply, and the
// initial value of every object installed at setup, each stamped
// {tid, site, server, object, value, virtual time}.
//
// The recorder is the measured side of the isolation oracle
// (src/harness/isolation_oracle.h): after a chaos run quiesces, the oracle
// replays the committed transactions in commit order against the recorded
// initial state and checks that every committed read is explainable — the
// serializability twin of the primitive-cost conformance gate.
//
// Recording is a single vector push per event (no I/O, no sim-time cost), so
// both explorers keep it on for every schedule sweep and soak. Histories
// serialize to a line-oriented replayable text format; a failing run dumps
// its history and prints a CAMELOT_HISTORY= replay recipe (see
// src/harness/replay.h) that reproduces the oracle verdict offline.
//
// Deliberately NOT recorded, so a replay stays value-faithful:
//   - recovery redo/undo and RestorePreparedUpdate (they reconstruct writes
//     already in the history; re-recording would double-count them);
//   - abort-path compensation writes (an aborted family's effects must
//     vanish, which the replay models by never applying them);
//   - nested-subtree aborts (none of the gated workloads nest; see
//     DESIGN.md "Isolation oracle and bank workload" for the limitation).
#ifndef SRC_HARNESS_HISTORY_H_
#define SRC_HARNESS_HISTORY_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/codec.h"
#include "src/base/status.h"
#include "src/base/types.h"

namespace camelot {

enum class HistoryOp : uint8_t {
  kInit,    // CreateObjectForSetup installed the object (tid invalid).
  kRead,    // A transaction read `value` from (server, object).
  kWrite,   // A transaction wrote `value` to (server, object).
  kCommit,  // A site applied the family's commit transition (server/object empty).
  kAbort,   // A site applied the family's abort transition (server/object empty).
};

const char* HistoryOpName(HistoryOp op);

struct HistoryEvent {
  HistoryOp op = HistoryOp::kRead;
  SimTime ts = 0;
  SiteId site{};        // Site that observed the event.
  Tid tid = kInvalidTid;  // Invalid for kInit.
  std::string server;   // Data server name; empty for commit/abort.
  std::string object;   // Empty for commit/abort.
  Bytes value;          // Read/written/initial value; empty for commit/abort.

  std::string ToLine() const;  // The serialized one-line form.

  friend bool operator==(const HistoryEvent&, const HistoryEvent&) = default;
};

class HistoryRecorder {
 public:
  // Recording is off until a harness opts in (the explorers and the isolation
  // tests do); a disabled recorder drops events at the cost of one branch.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void Record(HistoryEvent event) {
    if (enabled_) {
      events_.push_back(std::move(event));
    }
  }

  void Clear() { events_.clear(); }
  size_t size() const { return events_.size(); }
  const std::vector<HistoryEvent>& events() const { return events_; }

  // The replayable history-file format (what CAMELOT_HISTORY points at):
  //   # camelot-history v1
  //   <ts> <op> <tid|-> <site> <server|-> <object|-> <value-hex|->
  // one line per event, whitespace-separated tokens, values hex-encoded.
  std::string Serialize() const;
  static Result<std::vector<HistoryEvent>> Parse(std::string_view text);

 private:
  bool enabled_ = false;
  std::vector<HistoryEvent> events_;
};

}  // namespace camelot

#endif  // SRC_HARNESS_HISTORY_H_
