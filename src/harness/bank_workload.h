// Bank workload: a balance-conserving random-transfer workload for chaos
// runs, the history-generating counterpart of the explorers' fixed transfer
// scripts (and the closest thing Camelot has to a Jepsen bank test).
//
// Setup shards an account table across every site (server "bank:<i>" with
// accounts "acct<k>"), all funded equally. Clients — one per site, round
// robin — issue random transfers between random accounts, most of them
// cross-site so every commit exercises the distributed protocol. A transfer
// moves money but never creates or destroys it, so whatever subset of
// transfers commits, the total balance is invariant.
//
// AuditBankInvariant is the per-round gate: two observers at different sites
// read every account (the mmts-style assertDataSync — replicas must agree
// after a heal), the total must equal the initial funding, and, when an
// IsolationReport is supplied, every observed balance must equal the commit-
// order serial replay's final value.
#ifndef SRC_HARNESS_BANK_WORKLOAD_H_
#define SRC_HARNESS_BANK_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/harness/isolation_oracle.h"
#include "src/harness/world.h"

namespace camelot {

struct BankWorkloadConfig {
  int accounts_per_site = 2;
  int64_t initial_balance = 100;
  int clients = 3;
  int transfers_per_client = 6;
  int64_t max_amount = 20;  // Transfer amounts are 1..max_amount.
  CommitOptions options = CommitOptions::Optimized();
  uint64_t rng_seed = 1;  // Client choices only; the world has its own seed.
};

struct BankWorkloadStats {
  int committed = 0;
  int aborted = 0;   // Any attempt whose commit did not return OK.
  int finished_clients = 0;
  // Virtual time spent inside Commit() across committed transfers — the
  // client-observed commit latency the overhead bench reports.
  SimDuration commit_latency_total = 0;
};

std::string BankServerName(int site);
std::string BankAccountName(int index);

// Installs the account table (call before running anything): server
// "bank:<i>" on every site, accounts "acct<0..accounts_per_site)" each funded
// with initial_balance.
void SetupBank(World& world, const BankWorkloadConfig& cfg);

// Spawns cfg.clients transfer clients (homes round-robin across sites). Each
// issues transfers_per_client random transfers, aborting cleanly on any
// failed step and waiting out (bounded) windows where its home site is down.
void SpawnBankClients(World& world, const BankWorkloadConfig& cfg, BankWorkloadStats* stats);

// Post-quiesce gate; returns human-readable violations (empty = pass):
//   - every account readable, two observers agree (assertDataSync);
//   - total balance equals the initial funding (conservation);
//   - with `report`, each balance matches the serial replay's final state
//     (appends kDivergentFinalState anomalies to the report on mismatch).
std::vector<std::string> AuditBankInvariant(World& world, const BankWorkloadConfig& cfg,
                                            IsolationReport* report = nullptr);

}  // namespace camelot

#endif  // SRC_HARNESS_BANK_WORKLOAD_H_
