#include "src/harness/replay.h"

namespace camelot {

std::string ReplayRecipePrefix(uint64_t seed, bool non_blocking) {
  return "CAMELOT_SEED=" + std::to_string(seed) +
         " CAMELOT_PROTOCOL=" + (non_blocking ? "nbc" : "2pc");
}

std::string ReplayRecipe(uint64_t seed, bool non_blocking, const std::string& variable,
                         const std::string& schedule) {
  return ReplayRecipePrefix(seed, non_blocking) + " " + variable + "='" + schedule + "'";
}

}  // namespace camelot
