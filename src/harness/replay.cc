#include "src/harness/replay.h"

#include <cstdio>
#include <cstdlib>

namespace camelot {

std::string ProtocolName(const CommitOptions& options) {
  if (options.protocol == CommitProtocol::kPaxos) {
    return "paxos";
  }
  if (options.protocol == CommitProtocol::kNonBlocking) {
    return "nbc";
  }
  if (options.force_subordinate_commit) {
    return options.piggyback_commit_ack ? "2pc-int" : "2pc-unopt";
  }
  return "2pc";
}

Result<CommitOptions> ParseProtocolName(std::string_view name) {
  if (name == "2pc") {
    return CommitOptions::Optimized();
  }
  if (name == "2pc-unopt") {
    return CommitOptions::Unoptimized();
  }
  if (name == "2pc-int") {
    return CommitOptions::Intermediate();
  }
  if (name == "nbc") {
    return CommitOptions::NonBlocking();
  }
  if (name == "paxos") {
    // The name alone does not carry F; recipes pair it with CAMELOT_F
    // (ApplyPaxosFFromEnv), defaulting to the smallest non-degenerate set.
    return CommitOptions::Paxos(1);
  }
  return InvalidArgumentError("unknown protocol name: " + std::string(name));
}

CommitOptions ApplyPaxosFFromEnv(CommitOptions options) {
  if (options.protocol != CommitProtocol::kPaxos) {
    return options;
  }
  if (const char* f = std::getenv("CAMELOT_F")) {
    options.paxos_f = static_cast<uint32_t>(std::strtoul(f, nullptr, 10));
  }
  return options;
}

std::string ReplayRecipePrefix(uint64_t seed, bool non_blocking) {
  return "CAMELOT_SEED=" + std::to_string(seed) +
         " CAMELOT_PROTOCOL=" + (non_blocking ? "nbc" : "2pc");
}

std::string ReplayRecipePrefix(uint64_t seed, const CommitOptions& options) {
  std::string prefix =
      "CAMELOT_SEED=" + std::to_string(seed) + " CAMELOT_PROTOCOL=" + ProtocolName(options);
  if (options.protocol == CommitProtocol::kPaxos) {
    prefix += " CAMELOT_F=" + std::to_string(options.paxos_f);
  }
  return prefix;
}

std::string ReplayRecipe(uint64_t seed, bool non_blocking, const std::string& variable,
                         const std::string& schedule) {
  return ReplayRecipePrefix(seed, non_blocking) + " " + variable + "='" + schedule + "'";
}

std::string ReplayRecipe(uint64_t seed, const CommitOptions& options,
                         const std::string& variable, const std::string& schedule) {
  return ReplayRecipePrefix(seed, options) + " " + variable + "='" + schedule + "'";
}

std::string WithHistory(const std::string& recipe, const std::string& history_path) {
  return recipe + " CAMELOT_HISTORY='" + history_path + "'";
}

Result<std::string> DumpHistoryArtifact(const HistoryRecorder& history,
                                        const std::string& label) {
  std::string name;
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    name.push_back(ok ? c : '_');
  }
  if (name.empty()) {
    name = "run";
  }
  std::string path;
  if (const char* dir = std::getenv("CAMELOT_ARTIFACT_DIR")) {
    path = std::string(dir) + "/";
  }
  path += name + ".history";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot write history file: " + path);
  }
  const std::string text = history.Serialize();
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return UnavailableError("short write to history file: " + path);
  }
  return path;
}

Result<std::vector<HistoryEvent>> LoadHistoryFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return NotFoundError("cannot open history file: " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return HistoryRecorder::Parse(text);
}

}  // namespace camelot
