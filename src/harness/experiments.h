// Experiment drivers shared by the benches: the paper's "basic experiments".
//
// Latency experiment (Figures 2 and 3, Table 3): a minimal distributed
// transaction — one small operation at a single server at each site — run on
// a coordinator plus 0..3 subordinate sites, repeated many times; per-repeat
// latency from begin-transaction to commit-transaction return, plus the
// derived transaction-management-only cost (total minus operation
// processing), plus the measured critical path (until all locks dropped).
//
// Throughput experiment (Figures 4 and 5): N application/server pairs at one
// site execute minimal local transactions in a closed loop; the TranMan
// worker-thread count, group commit, and kernel bottleneck are parameters.
#ifndef SRC_HARNESS_EXPERIMENTS_H_
#define SRC_HARNESS_EXPERIMENTS_H_

#include <string>

#include "src/analysis/static_analysis.h"
#include "src/harness/world.h"
#include "src/stats/summary.h"

namespace camelot {

// The paper's minimal distributed transaction: one small operation at a
// single server at each of `subordinates + 1` sites, then commit under
// `options` — or, with TxnOutcome::kAbort, a client abort after the
// operations (the abort path the conformance oracle audits). Servers must be
// named "server:<site>" holding an int64 object "obj" (see
// RunLatencyExperiment for the canonical setup).
Async<Status> MinimalTransaction(AppClient& app, int subordinates, TxnKind kind,
                                 CommitOptions options, int64_t value,
                                 TxnOutcome outcome = TxnOutcome::kCommit);

// --- Latency ------------------------------------------------------------------

struct LatencyConfig {
  int subordinates = 1;
  TxnKind kind = TxnKind::kWrite;
  CommitOptions options = CommitOptions::Optimized();
  int repetitions = 100;
  bool multicast = false;
  uint64_t seed = 1;
  // Realistic jitter by default; zero for deterministic runs.
  bool deterministic = false;
  // The paper's experiment pipelines transactions back-to-back on the SAME
  // data element, so each transaction inherits lock-wait from its
  // predecessor's (variant-dependent) lock-drop time — this is what separates
  // the optimized / semi-optimized / unoptimized curves in Figure 2. Set
  // false to quiesce between repetitions (isolated-transaction mode, which
  // also enables the critical-path measurement).
  bool pipelined = true;
};

struct LatencyResult {
  Summary total_ms;      // Begin to commit-return (completion).
  Summary tm_ms;         // Derived transaction-management cost.
  Summary critical_ms;   // Begin to all-locks-dropped.
  int failures = 0;
};

LatencyResult RunLatencyExperiment(const LatencyConfig& config);

// --- Throughput -----------------------------------------------------------------

struct ThroughputConfig {
  int pairs = 1;                 // Application/server pairs.
  TxnKind kind = TxnKind::kWrite;
  size_t tranman_threads = 20;
  bool group_commit = true;
  SimDuration duration = Sec(60);
  uint64_t seed = 1;
  // The VAX 8200 multiprocessor profile: slower IPC, a per-event TranMan CPU
  // burst, the single-master-processor kernel bottleneck, and the Table-1 raw
  // disk write time for a log force.
  SimDuration cpu_per_event = Usec(12000);
  SimDuration kernel_cpu_per_ipc = Usec(4000);
  // One log force on the throughput testbed's shared disk: Table 1's 26.8 ms
  // raw track write plus seek/rotational positioning. Slow enough that the
  // logger is the update-test bottleneck, as the paper reports.
  SimDuration force_latency = Usec(50000);
  double ipc_scale = 3.0;  // VAX 8200 local IPC is ~3x slower than the RT.
};

struct ThroughputResult {
  double tps = 0;
  uint64_t commits = 0;
  uint64_t disk_writes = 0;
  uint64_t pool_queued_events = 0;  // Events that waited for a TranMan thread.
};

ThroughputResult RunThroughputExperiment(const ThroughputConfig& config);

// Applies the Table-2-calibrated world used by the latency experiments.
WorldConfig LatencyWorldConfig(int subordinates, uint64_t seed, bool deterministic);

}  // namespace camelot

#endif  // SRC_HARNESS_EXPERIMENTS_H_
