#include "src/net/network.h"

#include <algorithm>

#include "src/base/logging.h"

namespace camelot {

namespace {
uint64_t BindingKey(SiteId site, ServiceId service) {
  return (static_cast<uint64_t>(site.value) << 32) | service;
}
}  // namespace

Network::Network(Scheduler& sched, NetConfig config)
    : sched_(sched), config_(config), rng_(sched.rng().Fork()) {}

void Network::RegisterSite(SiteId site) {
  CAMELOT_CHECK(!sites_.contains(site));
  sites_.emplace(site, SiteState{});
}

void Network::Bind(SiteId site, ServiceId service, std::function<void(Datagram)> deliver) {
  bindings_[BindingKey(site, service)] = std::move(deliver);
}

void Network::Unbind(SiteId site, ServiceId service) {
  bindings_.erase(BindingKey(site, service));
}

SimTime Network::OccupyNic(SiteState& sender, SimDuration occupancy) {
  const SimTime start = std::max(sched_.now(), sender.nic_free_at);
  sender.nic_free_at = start + occupancy;
  return sender.nic_free_at;
}

SimDuration Network::InjectedDelay(const Datagram& dg) {
  SimDuration extra = 0;
  if (config_.congestion_delay_mean > 0) {
    extra += static_cast<SimDuration>(
        rng_.NextExponential(static_cast<double>(config_.congestion_delay_mean)));
  }
  // Reordering holds a datagram back so traffic sent later arrives first. The
  // RPC transport is exempt: Mach's netmsgserver connections were
  // FIFO-reliable, and our NetMsgServer already dedups retransmissions, so
  // only the TranMan datagram protocols should ever see out-of-order delivery.
  if (config_.reorder_probability > 0 && dg.service != kNetMsgService &&
      rng_.NextBool(config_.reorder_probability)) {
    ++counters_.datagrams_reordered;
    extra += static_cast<SimDuration>(
        rng_.NextBounded(static_cast<uint64_t>(std::max<SimDuration>(config_.reorder_delay_max, 1))));
  }
  return extra;
}

bool Network::LoseOrDrop(const Datagram& dg) {
  if (!CanCommunicate(dg.src, dg.dst)) {
    ++counters_.datagrams_dropped_partition;
    return true;
  }
  if (config_.loss_probability > 0 && rng_.NextBool(config_.loss_probability)) {
    ++counters_.datagrams_lost;
    return true;
  }
  return false;
}

void Network::DeliverAfter(SimDuration delay, Datagram dg) {
  sched_.Post(delay, [this, dg = std::move(dg)]() mutable {
    auto site_it = sites_.find(dg.dst);
    if (site_it == sites_.end() || !site_it->second.up) {
      ++counters_.datagrams_dropped_dead;
      return;
    }
    if (!CanCommunicate(dg.src, dg.dst)) {
      ++counters_.datagrams_dropped_partition;
      return;
    }
    auto it = bindings_.find(BindingKey(dg.dst, dg.service));
    if (it == bindings_.end()) {
      ++counters_.datagrams_dropped_dead;
      return;
    }
    ++counters_.datagrams_delivered;
    it->second(std::move(dg));
  });
}

void Network::Send(Datagram dg) {
  auto it = sites_.find(dg.src);
  CAMELOT_CHECK(it != sites_.end());
  SiteState& sender = it->second;
  if (!sender.up) {
    return;  // A crashed site sends nothing.
  }
  ++counters_.datagrams_sent;
  if (cost_ledger_ != nullptr) {
    cost_ledger_->Record(
        CostEvent{FamilyId{kInvalidSite, 0}, dg.src, "net", "send", CostPrimitive::kDatagram});
  }
  if (LoseOrDrop(dg)) {
    return;
  }
  // The send jitter extends the NIC occupancy itself: the sending thread does
  // its sends sequentially, so a scheduling hiccup on one send delays every
  // later send too (this is what makes fan-out variance grow with the number
  // of subordinates, and what multicast avoids).
  SimDuration jitter =
      static_cast<SimDuration>(rng_.NextExponential(static_cast<double>(config_.send_jitter_mean)));
  if (config_.stall_probability > 0 && rng_.NextBool(config_.stall_probability)) {
    jitter += static_cast<SimDuration>(
        rng_.NextExponential(static_cast<double>(config_.stall_mean)));
  }
  const SimTime serialized_at = OccupyNic(sender, config_.send_cycle + jitter);
  const SimDuration skew =
      static_cast<SimDuration>(rng_.NextExponential(static_cast<double>(config_.receive_skew_mean)));
  const SimDuration total_delay =
      (serialized_at - sched_.now()) + config_.propagation + skew + InjectedDelay(dg);

  if (config_.duplicate_probability > 0 && rng_.NextBool(config_.duplicate_probability)) {
    ++counters_.datagrams_duplicated;
    DeliverAfter(total_delay + config_.propagation + InjectedDelay(dg), dg);
  }
  DeliverAfter(total_delay, std::move(dg));
}

void Network::Multicast(SiteId src, const std::vector<SiteId>& dsts, ServiceId service,
                        uint32_t type, SharedBytes body) {
  auto it = sites_.find(src);
  CAMELOT_CHECK(it != sites_.end());
  SiteState& sender = it->second;
  if (!sender.up) {
    return;
  }
  ++counters_.multicasts_sent;
  // One serialization (slightly longer for group packet assembly), ONE jitter
  // draw shared by the whole group: the delay that varies run-to-run shifts all
  // receivers together instead of independently.
  SimDuration shared_jitter =
      static_cast<SimDuration>(rng_.NextExponential(static_cast<double>(config_.send_jitter_mean)));
  if (config_.stall_probability > 0 && rng_.NextBool(config_.stall_probability)) {
    shared_jitter += static_cast<SimDuration>(
        rng_.NextExponential(static_cast<double>(config_.stall_mean)));
  }
  const SimDuration occupancy = config_.send_cycle + shared_jitter +
      config_.multicast_per_dest * static_cast<SimDuration>(dsts.size());
  const SimTime serialized_at = OccupyNic(sender, occupancy);
  for (SiteId dst : dsts) {
    Datagram dg{src, dst, service, type, body};
    ++counters_.datagrams_sent;
    if (cost_ledger_ != nullptr) {
      cost_ledger_->Record(
          CostEvent{FamilyId{kInvalidSite, 0}, src, "net", "multicast", CostPrimitive::kDatagram});
    }
    if (LoseOrDrop(dg)) {
      continue;
    }
    const SimDuration skew = static_cast<SimDuration>(
        rng_.NextExponential(static_cast<double>(config_.receive_skew_mean)));
    DeliverAfter((serialized_at - sched_.now()) + config_.propagation + skew + InjectedDelay(dg),
                 std::move(dg));
  }
}

void Network::SendToAll(SiteId src, const std::vector<SiteId>& dsts, ServiceId service,
                        uint32_t type, SharedBytes body) {
  if (use_multicast_ && dsts.size() > 1) {
    Multicast(src, dsts, service, type, std::move(body));
    return;
  }
  for (SiteId dst : dsts) {
    Send(Datagram{src, dst, service, type, body});
  }
}

void Network::Broadcast(SiteId src, ServiceId service, uint32_t type, SharedBytes body) {
  std::vector<SiteId> dsts;
  for (const auto& [id, state] : sites_) {
    if (id != src) {
      dsts.push_back(id);
    }
  }
  std::sort(dsts.begin(), dsts.end());
  SendToAll(src, dsts, service, type, std::move(body));
}

void Network::CrashSite(SiteId site) {
  auto it = sites_.find(site);
  CAMELOT_CHECK(it != sites_.end());
  it->second.up = false;
}

void Network::RestartSite(SiteId site) {
  auto it = sites_.find(site);
  CAMELOT_CHECK(it != sites_.end());
  it->second.up = true;
  it->second.nic_free_at = sched_.now();
}

bool Network::IsUp(SiteId site) const {
  auto it = sites_.find(site);
  return it != sites_.end() && it->second.up;
}

Status Network::SetPartition(std::vector<std::vector<SiteId>> groups) {
  // Validate fully before touching any state, so a rejected call leaves the
  // current topology (including any already-installed partition) intact.
  std::unordered_map<SiteId, int> assignment;
  int group_index = 0;
  for (const auto& group : groups) {
    if (group.empty()) {
      return InvalidArgumentError("SetPartition: empty group " + std::to_string(group_index));
    }
    for (SiteId s : group) {
      if (!sites_.contains(s)) {
        return InvalidArgumentError("SetPartition: unknown site " + std::to_string(s.value));
      }
      auto [it, inserted] = assignment.emplace(s, group_index);
      if (!inserted) {
        return InvalidArgumentError(
            "SetPartition: site " + std::to_string(s.value) + " listed in group " +
            std::to_string(it->second) + " and group " + std::to_string(group_index));
      }
    }
    ++group_index;
  }
  // Apply: re-installing over an existing partition replaces it atomically;
  // sites absent from every group (and an entirely empty `groups`) end up
  // isolated.
  for (auto& [id, state] : sites_) {
    auto it = assignment.find(id);
    state.partition_group = it == assignment.end() ? -1 : it->second;
  }
  partitioned_ = true;
  NotifyTopologyChange();
  return OkStatus();
}

void Network::ClearPartition() {
  const bool was_partitioned = partitioned_;
  partitioned_ = false;
  for (auto& [id, state] : sites_) {
    state.partition_group = -1;
  }
  if (was_partitioned) {
    NotifyTopologyChange();
  }
}

void Network::NotifyTopologyChange() {
  for (const auto& fn : topology_listeners_) {
    fn();
  }
}

bool Network::CanCommunicate(SiteId a, SiteId b) const {
  if (a == b) {
    return true;
  }
  if (!partitioned_) {
    return true;
  }
  auto ia = sites_.find(a);
  auto ib = sites_.find(b);
  if (ia == sites_.end() || ib == sites_.end()) {
    return false;
  }
  return ia->second.partition_group >= 0 && ia->second.partition_group == ib->second.partition_group;
}

}  // namespace camelot
