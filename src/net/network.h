// The LAN model: an extended token-ring-style local network connecting sites.
//
// Latency of one datagram = NIC serialization at the sender (an exclusive
// resource: back-to-back sends queue, the paper's 1.7 ms "cycle time for
// sending datagrams") + sender OS scheduling jitter (exponential; the paper
// attributes most commit-latency variance to "the coordinator's repeated
// sends", i.e. per-send jitter) + propagation + small per-receiver skew.
//
// Multicast performs ONE serialization and draws ONE sender jitter for the
// whole group (a single physical transmission), which is exactly why it
// reduces the variance of the fan-out without materially changing the mean.
//
// Failure injection: site crash/restart, network partition, probabilistic
// message loss, duplication, reordering, and congestion delay. Loss and
// duplication apply to every datagram; reordering is confined to the TranMan
// datagram service — the NetMsgServer's RPC transport stays FIFO-reliable, as
// Mach's connection-oriented netmsgserver did (its own retransmit/dedup layer
// already makes it at-most-once end to end, so reordering beneath it would
// only exercise that layer, not the commit protocols).
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/codec.h"
#include "src/base/rng.h"
#include "src/base/shared_bytes.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/sim/scheduler.h"
#include "src/stats/cost_ledger.h"

namespace camelot {

// Dispatch key within a destination site (which process the datagram is for).
using ServiceId = uint32_t;

inline constexpr ServiceId kTranManService = 1;   // TranMan-to-TranMan datagrams.
inline constexpr ServiceId kNetMsgService = 2;    // NetMsgServer RPC transport.

struct Datagram {
  SiteId src;
  SiteId dst;
  ServiceId service = 0;
  uint32_t type = 0;  // Protocol-defined message type.
  // Shared so fan-out, retransmits, and duplicates are refcount bumps on one
  // buffer instead of per-destination copies.
  SharedBytes body;
};

struct NetConfig {
  // Exclusive per-site NIC occupancy per datagram send ("cycle time", paper: 1.7 ms).
  SimDuration send_cycle = Usec(1700);
  // Mean of the exponential OS-scheduling jitter charged per send operation.
  SimDuration send_jitter_mean = Usec(1500);
  // Occasionally a send stalls hard (preemption, page fault): with probability
  // stall_probability an extra Exp(stall_mean) is added. The heavy tail is
  // what makes fan-out variance grow quickly with the subordinate count.
  double stall_probability = 0.08;
  SimDuration stall_mean = Usec(12000);
  // Extra fixed cost for assembling a multicast packet, per destination.
  SimDuration multicast_per_dest = Usec(200);
  // Wire propagation + receive-side processing (so that one datagram averages
  // roughly 10 ms total: 1.7 cycle + 1.5 jitter + ~1.0 expected stall + 5.5
  // propagation + 0.3 skew).
  SimDuration propagation = Usec(5540);
  // Mean of small per-receiver exponential skew.
  SimDuration receive_skew_mean = Usec(300);
  // Probability that a datagram is silently lost / duplicated.
  double loss_probability = 0.0;
  double duplicate_probability = 0.0;
  // Probability that a non-RPC datagram is reordered behind later traffic: it
  // is held back by Uniform(0, reorder_delay_max) extra delay. RPC datagrams
  // (kNetMsgService) are exempt — that transport is FIFO-reliable as in Mach.
  double reorder_probability = 0.0;
  SimDuration reorder_delay_max = Usec(40000);
  // Congestion: mean of an exponential extra delivery delay added to every
  // datagram while > 0 (a nemesis "delay storm" knob).
  SimDuration congestion_delay_mean = 0;

  // Expected latency of a single uncontended datagram (for static analysis).
  SimDuration ExpectedDatagramLatency() const {
    const auto expected_stall =
        static_cast<SimDuration>(stall_probability * static_cast<double>(stall_mean));
    return send_cycle + send_jitter_mean + expected_stall + propagation + receive_skew_mean;
  }
};

struct NetCounters {
  uint64_t datagrams_sent = 0;
  uint64_t datagrams_delivered = 0;
  uint64_t datagrams_lost = 0;
  uint64_t datagrams_dropped_partition = 0;
  uint64_t datagrams_dropped_dead = 0;
  uint64_t datagrams_duplicated = 0;
  uint64_t datagrams_reordered = 0;
  uint64_t multicasts_sent = 0;
};

class Network {
 public:
  Network(Scheduler& sched, NetConfig config);

  // --- Topology -------------------------------------------------------------
  // Sites must be registered before use; they start up.
  void RegisterSite(SiteId site);

  // Binds a handler invoked (at delivery time) for datagrams addressed to
  // (site, service). Typically enqueues into a process mailbox.
  void Bind(SiteId site, ServiceId service, std::function<void(Datagram)> deliver);
  void Unbind(SiteId site, ServiceId service);

  // --- Data path ------------------------------------------------------------
  // Fire-and-forget unreliable datagram.
  void Send(Datagram dg);

  // One serialization + one sender jitter draw for the whole group. The body
  // is shared across all destinations (one buffer, N refcount bumps).
  void Multicast(SiteId src, const std::vector<SiteId>& dsts, ServiceId service, uint32_t type,
                 SharedBytes body);

  // If true, Send() to multiple destinations via SendToAll uses Multicast.
  void set_use_multicast(bool v) { use_multicast_ = v; }
  bool use_multicast() const { return use_multicast_; }

  // Fan-out honoring the multicast setting (the commit protocols call this).
  void SendToAll(SiteId src, const std::vector<SiteId>& dsts, ServiceId service, uint32_t type,
                 SharedBytes body);

  // Delivery to every registered site except the sender (recovery beacons).
  void Broadcast(SiteId src, ServiceId service, uint32_t type, SharedBytes body);

  // --- Failure injection ------------------------------------------------------
  void CrashSite(SiteId site);
  void RestartSite(SiteId site);
  bool IsUp(SiteId site) const;

  // Splits sites into groups; traffic crosses a group boundary only while no
  // partition is installed. Sites absent from every group are isolated. An
  // empty `groups` isolates every site. Re-installing over an existing
  // partition replaces it atomically. Rejects (without changing the current
  // topology) an unknown site, a site listed twice — across groups or within
  // one — and an empty group list.
  Status SetPartition(std::vector<std::vector<SiteId>> groups);
  void ClearPartition();
  bool IsPartitioned() const { return partitioned_; }
  bool CanCommunicate(SiteId a, SiteId b) const;

  // Invoked after every SetPartition / ClearPartition (not on site
  // crash/restart — recovery beacons cover those). Components use this to
  // re-probe in-doubt state: a blocked participant parked before a partition
  // healed would otherwise never learn connectivity came back.
  void AddTopologyListener(std::function<void()> fn) {
    topology_listeners_.push_back(std::move(fn));
  }

  void set_loss_probability(double p) { config_.loss_probability = p; }
  void set_duplicate_probability(double p) { config_.duplicate_probability = p; }
  void set_reorder_probability(double p) { config_.reorder_probability = p; }
  void set_reorder_delay_max(SimDuration d) { config_.reorder_delay_max = d; }
  void set_congestion_delay_mean(SimDuration d) { config_.congestion_delay_mean = d; }

  const NetConfig& config() const { return config_; }
  const NetCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = NetCounters{}; }

  // Site-level cost shadow: every attempted send records net/send/dgram (or
  // net/multicast/dgram per destination) against the sending site. Family
  // attribution happens higher up, in TranMan's ledger events.
  void set_cost_ledger(CostLedger* ledger) { cost_ledger_ = ledger; }

 private:
  struct SiteState {
    bool up = true;
    SimTime nic_free_at = 0;
    int partition_group = -1;  // -1 while no partition is installed.
  };

  // Computes when the NIC finishes serializing a send started now.
  SimTime OccupyNic(SiteState& sender, SimDuration occupancy);
  void DeliverAfter(SimDuration delay, Datagram dg);
  bool LoseOrDrop(const Datagram& dg);  // Returns true if the datagram dies at send time.
  // Congestion + reorder extra delay for one datagram (0 when both are off).
  SimDuration InjectedDelay(const Datagram& dg);
  void NotifyTopologyChange();

  Scheduler& sched_;
  NetConfig config_;
  Rng rng_;
  CostLedger* cost_ledger_ = nullptr;
  bool use_multicast_ = false;
  bool partitioned_ = false;
  std::unordered_map<SiteId, SiteState> sites_;
  std::unordered_map<uint64_t, std::function<void(Datagram)>> bindings_;
  std::vector<std::function<void()>> topology_listeners_;
  NetCounters counters_;
};

}  // namespace camelot

#endif  // SRC_NET_NETWORK_H_
