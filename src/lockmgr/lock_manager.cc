#include "src/lockmgr/lock_manager.h"

#include <algorithm>

#include "src/base/logging.h"

namespace camelot {

bool LockManager::Compatible(const LockState& state, const Tid& tid, LockMode mode) {
  for (const Holder& h : state.holders) {
    if (h.tid.family == tid.family) {
      continue;  // Same family never conflicts (paper, Section 3.4).
    }
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Async<Status> LockManager::Acquire(const Tid& tid, const std::string& object, LockMode mode,
                                   SimDuration timeout) {
  ++counters_.acquisitions;
  LockState& state = locks_[object];

  // Re-entrant / upgrade handling for a tid that already holds the lock.
  for (Holder& h : state.holders) {
    if (h.tid == tid) {
      if (h.mode == LockMode::kExclusive || mode == LockMode::kShared) {
        ++counters_.immediate_grants;
        co_return OkStatus();
      }
      // Upgrade S -> X: legal when no other family holds the lock.
      if (Compatible(state, tid, LockMode::kExclusive)) {
        h.mode = LockMode::kExclusive;
        ++counters_.immediate_grants;
        co_return OkStatus();
      }
      break;  // Must wait for the other family to drain.
    }
  }

  // FIFO fairness: do not jump the queue even if currently compatible.
  if (state.waiters.empty() && Compatible(state, tid, mode)) {
    state.holders.push_back(Holder{tid, mode, sched_.now()});
    ++counters_.immediate_grants;
    co_return OkStatus();
  }

  ++counters_.waits;
  auto waiter = std::make_shared<Waiter>();
  waiter->tid = tid;
  waiter->mode = mode;
  waiter->wake = std::make_shared<Channel<Status>>(sched_);
  state.waiters.push_back(waiter);

  std::optional<Status> outcome;
  if (timeout < 0) {
    outcome = co_await waiter->wake->Receive();
  } else {
    outcome = co_await waiter->wake->ReceiveTimeout(timeout);
  }
  if (outcome.has_value()) {
    co_return *outcome;
  }
  // Timed out (or the table was cleared): withdraw the request if it is still
  // queued. If it was granted in the same instant, honour the grant.
  if (waiter->granted) {
    co_return OkStatus();
  }
  auto it = locks_.find(object);
  if (it != locks_.end()) {
    auto& q = it->second.waiters;
    q.erase(std::remove(q.begin(), q.end(), waiter), q.end());
    // Our departure may unblock others (e.g. an S behind our X).
    GrantWaiters(object, it->second);
    EraseIfFree(object);
  }
  ++counters_.timeouts;
  co_return TimedOutError("lock wait timed out on " + object + " (" + ToString(tid) + ")");
}

bool LockManager::Holds(const Tid& tid, const std::string& object, LockMode mode) const {
  auto it = locks_.find(object);
  if (it == locks_.end()) {
    return false;
  }
  for (const Holder& h : it->second.holders) {
    if (h.tid == tid && (h.mode == LockMode::kExclusive || mode == LockMode::kShared)) {
      return true;
    }
  }
  return false;
}

bool LockManager::FamilyHolds(const FamilyId& family, const std::string& object) const {
  auto it = locks_.find(object);
  if (it == locks_.end()) {
    return false;
  }
  for (const Holder& h : it->second.holders) {
    if (h.tid.family == family) {
      return true;
    }
  }
  return false;
}

void LockManager::GrantWaiters(const std::string& /*object*/, LockState& state) {
  while (!state.waiters.empty()) {
    auto& front = state.waiters.front();
    // A waiter whose tid already holds the lock is an upgrader.
    bool handled = false;
    for (Holder& h : state.holders) {
      if (h.tid == front->tid) {
        if (front->mode == LockMode::kExclusive &&
            !Compatible(state, front->tid, LockMode::kExclusive)) {
          return;  // Upgrade still blocked.
        }
        if (front->mode == LockMode::kExclusive) {
          h.mode = LockMode::kExclusive;
        }
        handled = true;
        break;
      }
    }
    if (!handled) {
      if (!Compatible(state, front->tid, front->mode)) {
        return;
      }
      state.holders.push_back(Holder{front->tid, front->mode, sched_.now()});
    }
    front->granted = true;
    front->wake->Send(OkStatus());
    state.waiters.pop_front();
  }
}

void LockManager::EraseIfFree(const std::string& object) {
  auto it = locks_.find(object);
  if (it != locks_.end() && it->second.holders.empty() && it->second.waiters.empty()) {
    locks_.erase(it);
  }
}

void LockManager::Release(const Tid& tid, const std::string& object) {
  auto it = locks_.find(object);
  if (it == locks_.end()) {
    return;
  }
  auto& holders = it->second.holders;
  const size_t before = holders.size();
  holders.erase(std::remove_if(holders.begin(), holders.end(),
                               [&](const Holder& h) {
                                 if (h.tid != tid) {
                                   return false;
                                 }
                                 counters_.total_hold_time_us +=
                                     static_cast<uint64_t>(sched_.now() - h.acquired_at);
                                 return true;
                               }),
                holders.end());
  if (holders.size() != before) {
    ++counters_.releases;
    GrantWaiters(object, it->second);
    EraseIfFree(object);
  }
}

void LockManager::ReleaseAll(const Tid& tid) {
  std::vector<std::string> objects;
  for (const auto& [object, state] : locks_) {
    for (const Holder& h : state.holders) {
      if (h.tid == tid) {
        objects.push_back(object);
        break;
      }
    }
  }
  for (const auto& object : objects) {
    Release(tid, object);
  }
}

void LockManager::ReleaseFamily(const FamilyId& family) {
  std::vector<std::string> objects;
  for (const auto& [object, state] : locks_) {
    for (const Holder& h : state.holders) {
      if (h.tid.family == family) {
        objects.push_back(object);
        break;
      }
    }
  }
  for (const auto& object : objects) {
    auto it = locks_.find(object);
    if (it == locks_.end()) {
      continue;
    }
    auto& holders = it->second.holders;
    const size_t before = holders.size();
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [&](const Holder& h) {
                                   if (h.tid.family != family) {
                                     return false;
                                   }
                                   counters_.total_hold_time_us +=
                                       static_cast<uint64_t>(sched_.now() - h.acquired_at);
                                   return true;
                                 }),
                  holders.end());
    if (holders.size() != before) {
      ++counters_.releases;
      GrantWaiters(object, it->second);
      EraseIfFree(object);
    }
  }
}

void LockManager::MoveToParent(const Tid& child, const Tid& parent) {
  CAMELOT_CHECK(child.family == parent.family);
  for (auto& [object, state] : locks_) {
    Holder* parent_holder = nullptr;
    Holder* child_holder = nullptr;
    for (Holder& h : state.holders) {
      if (h.tid == parent) {
        parent_holder = &h;
      } else if (h.tid == child) {
        child_holder = &h;
      }
    }
    if (child_holder == nullptr) {
      continue;
    }
    if (parent_holder != nullptr) {
      // Parent already holds it: merge modes, drop the child entry.
      parent_holder->mode = std::max(parent_holder->mode, child_holder->mode);
      auto& holders = state.holders;
      holders.erase(std::remove_if(holders.begin(), holders.end(),
                                   [&](const Holder& h) { return h.tid == child; }),
                    holders.end());
    } else {
      child_holder->tid = parent;
    }
  }
}

size_t LockManager::held_lock_count() const {
  size_t n = 0;
  for (const auto& [object, state] : locks_) {
    n += state.holders.size();
  }
  return n;
}

size_t LockManager::waiter_count() const {
  size_t n = 0;
  for (const auto& [object, state] : locks_) {
    n += state.waiters.size();
  }
  return n;
}

void LockManager::Clear() {
  for (auto& [object, state] : locks_) {
    for (auto& w : state.waiters) {
      w->wake->Send(UnavailableError("lock table cleared (site crash)"));
    }
  }
  locks_.clear();
}

}  // namespace camelot
