// Family-based shared/exclusive locking for data servers.
//
// Following the paper's Section 3.4, locking "is designed to permit
// concurrency only among different transaction families": two transactions of
// the same Moss-model family never conflict with each other (intra-family
// serialization is the application's business), while across families the
// usual shared/exclusive rules apply.
//
// Nested-transaction rules (Moss):
//   - nested commit: the child's locks are anti-inherited by its parent
//     (MoveToParent);
//   - nested abort: locks acquired by the aborted subtree are released,
//     except where an ancestor also holds the lock;
//   - top-level commit/abort: ReleaseFamily drops everything.
//
// The lock manager is pure bookkeeping: the 0.5 ms get/drop costs of Table 2
// are charged by the data server around these calls. Waiting is FIFO-fair,
// with a timeout used as the deadlock fallback (cross-family deadlocks are
// broken by aborting the timed-out transaction).
#ifndef SRC_LOCKMGR_LOCK_MANAGER_H_
#define SRC_LOCKMGR_LOCK_MANAGER_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/sim/channel.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"

namespace camelot {

enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

inline const char* LockModeName(LockMode m) {
  return m == LockMode::kShared ? "S" : "X";
}

struct LockCounters {
  uint64_t acquisitions = 0;
  uint64_t immediate_grants = 0;
  uint64_t waits = 0;
  uint64_t timeouts = 0;
  uint64_t releases = 0;
  // Total grant-to-release sim-time over all released locks. Locks that
  // evaporate in a crash (Clear) are not counted — the interesting number is
  // how long committed/aborted work kept others out, e.g. while a partition
  // blocked a prepared subordinate.
  uint64_t total_hold_time_us = 0;
};

class LockManager {
 public:
  explicit LockManager(Scheduler& sched) : sched_(sched) {}

  // Acquires `object` in `mode` for `tid`. Grants immediately when compatible
  // (same family never conflicts; shared/shared never conflicts); otherwise
  // waits FIFO until granted or `timeout` elapses (kTimedOut: caller should
  // abort — this is the deadlock fallback). timeout < 0 waits forever.
  Async<Status> Acquire(const Tid& tid, const std::string& object, LockMode mode,
                        SimDuration timeout);

  // True if `tid` (itself, not an ancestor) holds `object` at >= `mode`.
  bool Holds(const Tid& tid, const std::string& object, LockMode mode) const;
  // True if any member of the family holds `object`.
  bool FamilyHolds(const FamilyId& family, const std::string& object) const;

  // Releases one lock held by `tid`; no-op if not held.
  void Release(const Tid& tid, const std::string& object);
  // Releases every lock held by exactly `tid`.
  void ReleaseAll(const Tid& tid);
  // Drops every lock held by any member of the family (top-level commit/abort).
  void ReleaseFamily(const FamilyId& family);
  // Nested commit: re-owns all of `child`'s locks to `parent`.
  void MoveToParent(const Tid& child, const Tid& parent);

  size_t held_lock_count() const;
  size_t waiter_count() const;
  const LockCounters& counters() const { return counters_; }

  // Drops all state (site crash: volatile lock tables evaporate). Waiters are
  // woken with kUnavailable.
  void Clear();

 private:
  struct Holder {
    Tid tid;
    LockMode mode;
    SimTime acquired_at = 0;
  };
  struct Waiter {
    Tid tid;
    LockMode mode;
    std::shared_ptr<Channel<Status>> wake;
    bool granted = false;
  };
  struct LockState {
    std::vector<Holder> holders;
    std::deque<std::shared_ptr<Waiter>> waiters;
  };

  // Whether `tid` may hold `object` in `mode` alongside the current holders.
  static bool Compatible(const LockState& state, const Tid& tid, LockMode mode);
  // After any release, promote newly-compatible waiters (FIFO, batch of
  // compatible shareds).
  void GrantWaiters(const std::string& object, LockState& state);
  void EraseIfFree(const std::string& object);

  Scheduler& sched_;
  std::unordered_map<std::string, LockState> locks_;
  LockCounters counters_;
};

}  // namespace camelot

#endif  // SRC_LOCKMGR_LOCK_MANAGER_H_
