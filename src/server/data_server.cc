#include "src/server/data_server.h"

#include <algorithm>

#include "src/base/logging.h"

namespace camelot {

DataServer::DataServer(Site& site, std::string name, DiskManager& diskmgr, NameService& names,
                       ServerConfig config)
    : site_(site),
      name_(std::move(name)),
      diskmgr_(diskmgr),
      names_(names),
      config_(config),
      locks_(site.sched()) {
  site_.RegisterService(name_, [this](RpcContext ctx, uint32_t method, Bytes body) {
    return Handle(ctx, method, std::move(body));
  });
  CAMELOT_CHECK(names_.Register(name_, site_.id()).ok());
  site_.AddCrashListener([this] {
    families_.clear();
    locks_.Clear();
    concluded_.clear();
    concluded_order_.clear();
  });
}

void DataServer::CreateObjectForSetup(const std::string& object, Bytes value) {
  if (history_hook_) {
    history_hook_(kInvalidTid, object, value, ServerHistoryOp::kInit);
  }
  diskmgr_.RecoveryWrite(name_, object, std::move(value));
}

Result<Bytes> DataServer::PeekDurable(const std::string& object) const {
  return diskmgr_.RecoveryRead(name_, object);
}

Async<void> DataServer::RestorePreparedUpdate(const Tid& tid, const std::string& object,
                                              Bytes old_value, Bytes new_value, Lsn lsn) {
  FamilyState& fam = families_[tid.family];
  fam.joined = true;  // TranMan already knows about us via its own recovery.
  Status lock = co_await locks_.Acquire(tid, object, LockMode::kExclusive, Usec(0));
  CAMELOT_CHECK(lock.ok());  // Nothing else can hold locks during restart.
  fam.updates.push_back(UpdateEntry{tid, object, std::move(old_value), std::move(new_value),
                                    lsn});
}

Async<RpcResult> DataServer::Handle(RpcContext ctx, uint32_t method, Bytes body) {
  ByteReader r(body);
  // Deadline shed: a transactional operation that arrives after its client's
  // deadline is zombie work — refuse before joining or touching locks. The
  // protocol upcalls (vote/commit/abort) below are never shed: they complete
  // work the transaction manager already admitted.
  if ((method == kSrvRead || method == kSrvWrite || method == kSrvCreate) &&
      ctx.deadline > 0 && site_.sched().now() > ctx.deadline) {
    ++counters_.deadline_rejects;
    co_return RpcResult{OverloadedError("client deadline already passed"), {}};
  }
  switch (method) {
    case kSrvRead: {
      const Tid tid = r.Transaction();
      const std::string object = r.Str();
      if (!r.ok()) {
        co_return RpcResult{InvalidArgumentError("bad read request"), {}};
      }
      RpcResult result = co_await HandleRead(tid, object);
      co_return result;
    }
    case kSrvWrite:
    case kSrvCreate: {
      const Tid tid = r.Transaction();
      const std::string object = r.Str();
      Bytes value = r.Blob();
      if (!r.ok()) {
        co_return RpcResult{InvalidArgumentError("bad write request"), {}};
      }
      if (method == kSrvCreate) {
        const bool exists = co_await diskmgr_.Exists(name_, object);
        if (exists) {
          co_return RpcResult{AlreadyExistsError(object), {}};
        }
      }
      RpcResult result = co_await HandleWrite(tid, object, std::move(value));
      co_return result;
    }
    case kSrvVote: {
      const Tid top = r.Transaction();
      RpcResult result = co_await HandleVote(top);
      co_return result;
    }
    case kSrvCommitFamily: {
      const Tid top = r.Transaction();
      RpcResult result = co_await HandleCommitFamily(top);
      co_return result;
    }
    case kSrvAbortFamily: {
      const Tid top = r.Transaction();
      RpcResult result = co_await HandleAbortFamily(top);
      co_return result;
    }
    case kSrvNestedCommit: {
      const Tid child = r.Transaction();
      const Tid parent = r.Transaction();
      RpcResult result = co_await HandleNestedCommit(child, parent);
      co_return result;
    }
    case kSrvAbortSubtree: {
      const Tid top = r.Transaction();
      const uint32_t n = r.U32();
      std::vector<uint32_t> serials;
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        serials.push_back(r.U32());
      }
      if (!r.ok()) {
        co_return RpcResult{InvalidArgumentError("bad abort-subtree request"), {}};
      }
      RpcResult result = co_await HandleAbortSubtree(top, serials);
      co_return result;
    }
    default:
      co_return RpcResult{InvalidArgumentError("unknown server method"), {}};
  }
}

bool DataServer::Concluded(const FamilyId& family) const { return concluded_.contains(family); }

void DataServer::MarkConcluded(const FamilyId& family) {
  if (concluded_.insert(family).second) {
    concluded_order_.push_back(family);
    while (concluded_order_.size() > 4096) {
      concluded_.erase(concluded_order_.front());
      concluded_order_.pop_front();
    }
  }
}

Async<Status> DataServer::EnsureJoined(const Tid& tid) {
  FamilyState& fam = families_[tid.family];
  if (fam.joined) {
    co_return OkStatus();
  }
  // Figure 1, event 4: "Server notifies TranMan that it is taking part".
  RpcResult result = co_await site_.CallLocal(kTranManServiceName, kTmJoin,
                                              EncodeJoinRequest(tid, name_),
                                              RpcContext{site_.id(), tid},
                                              /*to_data_server=*/false);
  if (!result.status.ok()) {
    co_return result.status;
  }
  // Note: families_ may have been rebuilt (crash) while we awaited.
  families_[tid.family].joined = true;
  ++counters_.joins;
  co_return OkStatus();
}

Async<RpcResult> DataServer::HandleRead(const Tid& tid, const std::string& object) {
  if (!tid.IsValid()) {
    co_return RpcResult{InvalidArgumentError("read requires a transaction"), {}};
  }
  if (Concluded(tid.family)) {
    co_return RpcResult{AbortedError("transaction already concluded"), {}};
  }
  Status joined = co_await EnsureJoined(tid);
  if (!joined.ok()) {
    co_return RpcResult{std::move(joined), {}};
  }
  co_await site_.sched().Delay(config_.lock_cost);
  Status lock = co_await locks_.Acquire(tid, object, LockMode::kShared,
                                        config_.lock_wait_timeout);
  if (!lock.ok()) {
    co_return RpcResult{std::move(lock), {}};
  }
  if (Concluded(tid.family)) {
    locks_.Release(tid, object);
    co_return RpcResult{AbortedError("transaction concluded while waiting"), {}};
  }
  auto value = co_await diskmgr_.Read(name_, object);
  if (!value.ok()) {
    co_return RpcResult{value.status(), {}};
  }
  if (history_hook_) {
    history_hook_(tid, object, *value, ServerHistoryOp::kRead);
  }
  ++counters_.reads;
  ByteWriter w;
  w.Blob(*value);
  co_return RpcResult{OkStatus(), w.Take()};
}

Async<RpcResult> DataServer::HandleWrite(const Tid& tid, const std::string& object, Bytes value) {
  if (!tid.IsValid()) {
    co_return RpcResult{InvalidArgumentError("write requires a transaction"), {}};
  }
  if (Concluded(tid.family)) {
    co_return RpcResult{AbortedError("transaction already concluded"), {}};
  }
  Status joined = co_await EnsureJoined(tid);
  if (!joined.ok()) {
    co_return RpcResult{std::move(joined), {}};
  }
  co_await site_.sched().Delay(config_.lock_cost);
  Status lock = co_await locks_.Acquire(tid, object, LockMode::kExclusive,
                                        config_.lock_wait_timeout);
  if (!lock.ok()) {
    co_return RpcResult{std::move(lock), {}};
  }
  if (Concluded(tid.family)) {
    locks_.Release(tid, object);
    co_return RpcResult{AbortedError("transaction concluded while waiting"), {}};
  }
  const uint32_t inc = site_.incarnation();
  Bytes old_value;
  auto existing = co_await diskmgr_.Read(name_, object);
  if (!site_.up() || site_.incarnation() != inc) {
    // The site crashed while we read: appending the update now would plant a
    // record (and a dirty page) in the NEXT incarnation's state.
    co_return RpcResult{UnavailableError("site crashed during write"), {}};
  }
  if (existing.ok()) {
    old_value = *existing;
  } else if (existing.status().code() != StatusCode::kNotFound) {
    // Only "does not exist yet" legitimately means an empty before-image. A
    // transient read failure must fail the write: logging old_value = {} here
    // would make a later undo ERASE the page's real contents.
    co_return RpcResult{existing.status(), {}};
  }
  // Figure 1, event 5: report old and new value to the disk manager; the
  // update record is appended now but forced as late as possible.
  const Lsn lsn = diskmgr_.log().Append(
      LogRecord::Update(tid, name_, object, old_value, value));
  Status written = co_await diskmgr_.Write(name_, object, value, lsn);
  if (!written.ok()) {
    co_return RpcResult{std::move(written), {}};
  }
  if (history_hook_) {
    history_hook_(tid, object, value, ServerHistoryOp::kWrite);
  }
  families_[tid.family].updates.push_back(UpdateEntry{tid, object, std::move(old_value),
                                                      std::move(value), lsn});
  ++counters_.writes;
  co_return RpcResult{OkStatus(), {}};
}

Async<RpcResult> DataServer::HandleVote(const Tid& top) {
  ByteWriter w;
  if (inject_vote_no_ > 0) {
    --inject_vote_no_;
    w.U8(static_cast<uint8_t>(ServerVote::kNo));
    co_return RpcResult{OkStatus(), w.Take()};
  }
  auto it = families_.find(top.family);
  if (it == families_.end() || it->second.updates.empty()) {
    ++counters_.votes_readonly;
    w.U8(static_cast<uint8_t>(ServerVote::kReadOnly));
  } else {
    ++counters_.votes_update;
    w.U8(static_cast<uint8_t>(ServerVote::kUpdate));
  }
  co_return RpcResult{OkStatus(), w.Take()};
}

Async<RpcResult> DataServer::HandleCommitFamily(const Tid& top) {
  // Figure 1, event 11: drop the locks held by the transaction.
  MarkConcluded(top.family);
  co_await site_.sched().Delay(config_.lock_cost);
  locks_.ReleaseFamily(top.family);
  families_.erase(top.family);
  ++counters_.commits;
  co_return RpcResult{OkStatus(), {}};
}

Async<void> DataServer::UndoUpdates(std::vector<UpdateEntry> updates) {
  // Newest first; value logging makes undo a plain write of the old value.
  // The records are CLRs so recovery knows these forwards were compensated.
  const uint32_t inc = site_.incarnation();
  for (auto it = updates.rbegin(); it != updates.rend(); ++it) {
    if (!site_.up() || site_.incarnation() != inc) {
      co_return;  // Crashed mid-undo; restart recovery finishes the job.
    }
    if (failpoints_.active()) {
      const FailpointHit hit = failpoints_.Eval("server.undo");
      if (hit.action == FailpointAction::kDrop) {
        continue;  // Injected bug: leak the forward image by skipping compensation.
      }
      if (hit.action == FailpointAction::kDelay) {
        co_await site_.sched().Delay(hit.delay);
      }
      if (!site_.up() || site_.incarnation() != inc) {
        co_return;
      }
    }
    const Lsn lsn = diskmgr_.log().Append(
        LogRecord::UndoUpdate(it->tid, name_, it->object, it->new_value, it->old_value));
    co_await diskmgr_.Write(name_, it->object, it->old_value, lsn);
  }
}

Async<RpcResult> DataServer::HandleAbortFamily(const Tid& top) {
  MarkConcluded(top.family);
  auto it = families_.find(top.family);
  if (it != families_.end()) {
    std::vector<UpdateEntry> updates = std::move(it->second.updates);
    families_.erase(it);
    co_await UndoUpdates(std::move(updates));
  }
  co_await site_.sched().Delay(config_.lock_cost);
  locks_.ReleaseFamily(top.family);
  ++counters_.aborts;
  co_return RpcResult{OkStatus(), {}};
}

Async<RpcResult> DataServer::HandleNestedCommit(const Tid& child, const Tid& parent) {
  auto it = families_.find(child.family);
  if (it != families_.end()) {
    for (auto& update : it->second.updates) {
      if (update.tid == child) {
        update.tid = parent;  // Anti-inheritance: effects now belong to the parent.
      }
    }
  }
  locks_.MoveToParent(child, parent);
  co_return RpcResult{OkStatus(), {}};
}

Async<RpcResult> DataServer::HandleAbortSubtree(const Tid& top,
                                                const std::vector<uint32_t>& serials) {
  auto is_victim = [&serials](const Tid& tid) {
    return std::find(serials.begin(), serials.end(), tid.serial) != serials.end();
  };
  auto it = families_.find(top.family);
  if (it != families_.end()) {
    std::vector<UpdateEntry> victims;
    auto& updates = it->second.updates;
    for (auto u = updates.begin(); u != updates.end();) {
      if (is_victim(u->tid)) {
        victims.push_back(std::move(*u));
        u = updates.erase(u);
      } else {
        ++u;
      }
    }
    co_await UndoUpdates(std::move(victims));
  }
  co_await site_.sched().Delay(config_.lock_cost);
  for (uint32_t serial : serials) {
    Tid victim = top;
    victim.serial = serial;
    locks_.ReleaseAll(victim);
  }
  ++counters_.aborts;
  co_return RpcResult{OkStatus(), {}};
}

}  // namespace camelot
