// DataServer: a Camelot data server managing recoverable objects.
//
// Each server controls a set of named objects (instances of abstract types; we
// provide byte-blob values with int64 helpers), serializes access with the
// family-based lock manager, joins a transaction with the local TranMan on
// first touch (Figure 1, event 4), logs old/new values through the disk
// manager "as late as possible" (event 5), and answers the transaction
// manager's vote / commit / abort upcalls.
//
// The server's volatile state (join table, per-family update lists, locks) is
// lost on a crash; its durable state is whatever the disk manager and log
// preserve, which the recovery module repairs at restart.
#ifndef SRC_SERVER_DATA_SERVER_H_
#define SRC_SERVER_DATA_SERVER_H_

#include <deque>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/failpoint.h"
#include "src/diskmgr/disk_manager.h"
#include "src/ipc/name_service.h"
#include "src/ipc/site.h"
#include "src/lockmgr/lock_manager.h"
#include "src/tranman/local_api.h"

namespace camelot {

struct ServerConfig {
  // Table 2: get lock / drop lock 0.5 ms each; data access negligible.
  SimDuration lock_cost = Usec(500);
  // How long an operation waits for a contended lock before giving up (the
  // deadlock fallback; the failed operation aborts its transaction). Must be
  // shorter than the RPC timeout so the caller learns the outcome from us,
  // not from a transport timeout.
  SimDuration lock_wait_timeout = Sec(2.0);
};

struct ServerCounters {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t joins = 0;
  uint64_t votes_update = 0;
  uint64_t votes_readonly = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  // Read/write/create requests refused because the propagated client deadline
  // had already passed when they arrived (zombie work shed before locking).
  uint64_t deadline_rejects = 0;
};

// What a history hook observes: the setup install, or a transactional
// read/write this server served. The harness's HistoryRecorder subscribes via
// set_history_hook; the hook is a plain std::function so this layer stays
// independent of the harness.
enum class ServerHistoryOp : uint8_t { kInit, kRead, kWrite };
using ServerHistoryHook = std::function<void(const Tid& tid, const std::string& object,
                                             const Bytes& value, ServerHistoryOp op)>;

class DataServer {
 public:
  DataServer(Site& site, std::string name, DiskManager& diskmgr, NameService& names,
             ServerConfig config = {});

  const std::string& name() const { return name_; }
  LockManager& locks() { return locks_; }
  const ServerCounters& counters() const { return counters_; }

  // Observes served reads/writes (and setup installs). Recovery replays and
  // abort compensation are NOT reported — they reconstruct or cancel writes
  // the hook already saw, and re-reporting would corrupt a serial replay.
  void set_history_hook(ServerHistoryHook hook) { history_hook_ = std::move(hook); }

  // Failpoint handle for the abort/undo path (point "server.undo": a kDrop
  // arm skips one compensation write — the injected-anomaly lever the
  // isolation oracle's mutation tests pull).
  void set_failpoints(Failpoints failpoints) { failpoints_ = std::move(failpoints); }

  // Non-transactional setup: installs an object directly on the data disk.
  void CreateObjectForSetup(const std::string& object, Bytes value);

  // Testing hook: make the server vote "no" on the next `n` vote requests.
  void InjectVoteNo(int n) { inject_vote_no_ = n; }

  // Direct durable read (recovery/test inspection; no locks, no cost).
  Result<Bytes> PeekDurable(const std::string& object) const;

  // Recovery: reconstructs the volatile trace of one update belonging to a
  // prepared-but-undecided transaction — re-takes its exclusive lock and
  // re-registers the update so a later commit/abort upcall behaves normally.
  // Called in log order during restart.
  Async<void> RestorePreparedUpdate(const Tid& tid, const std::string& object, Bytes old_value,
                                    Bytes new_value, Lsn lsn);

 private:
  struct UpdateEntry {
    Tid tid;
    std::string object;
    Bytes old_value;
    Bytes new_value;
    Lsn lsn;
  };
  struct FamilyState {
    bool joined = false;    // Join reported to the local TranMan.
    std::vector<UpdateEntry> updates;  // In execution order.
  };

  Async<RpcResult> Handle(RpcContext ctx, uint32_t method, Bytes body);
  Async<RpcResult> HandleRead(const Tid& tid, const std::string& object);
  Async<RpcResult> HandleWrite(const Tid& tid, const std::string& object, Bytes value);
  Async<RpcResult> HandleVote(const Tid& top);
  Async<RpcResult> HandleCommitFamily(const Tid& top);
  Async<RpcResult> HandleAbortFamily(const Tid& top);
  Async<RpcResult> HandleNestedCommit(const Tid& child, const Tid& parent);
  Async<RpcResult> HandleAbortSubtree(const Tid& top, const std::vector<uint32_t>& serials);

  // First-touch join with the local transaction manager.
  Async<Status> EnsureJoined(const Tid& tid);
  // Undo the given updates (newest first) and forget them.
  Async<void> UndoUpdates(std::vector<UpdateEntry> updates);

  // Zombie-operation defense: an operation whose caller already gave up (RPC
  // timeout) may complete after its family committed/aborted; concluded
  // families reject late operations instead of resurrecting state.
  bool Concluded(const FamilyId& family) const;
  void MarkConcluded(const FamilyId& family);

  Site& site_;
  std::string name_;
  DiskManager& diskmgr_;
  NameService& names_;
  ServerConfig config_;
  LockManager locks_;
  std::unordered_map<FamilyId, FamilyState> families_;
  std::set<FamilyId> concluded_;
  std::deque<FamilyId> concluded_order_;
  ServerCounters counters_;
  ServerHistoryHook history_hook_;
  Failpoints failpoints_;
  int inject_vote_no_ = 0;
};

}  // namespace camelot

#endif  // SRC_SERVER_DATA_SERVER_H_
