// Datagram protocol spoken between transaction managers on different sites.
//
// "CornMan does not provide message transport for the transaction manager. In
// order to process distributed protocols as quickly as possible, transaction
// managers on different sites communicate using datagrams" (paper, footnote 1)
// — so these messages ride the raw Network with TranMan-implemented
// timeout/retry, and every handler is idempotent so duplicates are harmless.
#ifndef SRC_TRANMAN_MESSAGES_H_
#define SRC_TRANMAN_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "src/base/codec.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/tranman/local_api.h"

namespace camelot {

enum class TmMsgType : uint8_t {
  kPrepare = 1,       // coordinator -> subordinate (both protocols)
  kVote = 2,          // subordinate -> coordinator
  kCommit = 3,        // coordinator -> subordinate (notify phase)
  kAbort = 4,         // anyone -> anyone (presumed abort: no ack)
  kCommitAck = 5,     // subordinate -> coordinator (after commit record durable)
  kReplicate = 6,     // NBC replication phase / takeover re-proposal
  kReplicateAck = 7,  // acceptor -> proposer
  kStatusReq = 8,     // in-doubt site / takeover coordinator -> participants
  kStatusResp = 9,    // participant -> asker
  kSiteUp = 10,       // recovered site -> everyone: re-probe me if in doubt
  kPaxosAccepted = 11,  // Paxos acceptor -> leader: batched ballot-0 accept done
};

const char* TmMsgTypeName(TmMsgType type);

enum class TmVote : uint8_t {
  kCommit = 1,    // Prepared with updates.
  kReadOnly = 2,  // No updates here; drop me from later phases.
  kAbort = 3,     // Refused (or site state lost).
};

enum class TmDecision : uint8_t {
  kAbort = 0,
  kCommit = 1,
};

// A participant's answer to kStatusReq.
enum class TmTxnState : uint8_t {
  kUnknown = 0,   // Never heard of it / already forgotten (presume abort).
  kActive = 1,
  kPrepared = 2,
  kCommitted = 3,
  kAborted = 4,
};

struct TmMsg {
  TmMsgType type = TmMsgType::kPrepare;
  Tid tid;
  SiteId from = kInvalidSite;

  // kPrepare.
  CommitProtocol protocol = CommitProtocol::kTwoPhase;
  bool force_subordinate_commit = false;
  bool piggyback_commit_ack = false;
  std::vector<SiteId> sites;  // All participants, coordinator first.
  uint32_t commit_quorum = 0;
  uint32_t abort_quorum = 0;

  // kPrepare: the client deadline for the family (absolute virtual time;
  // 0 = none). A subordinate receiving an already-expired prepare refuses it
  // (votes abort) instead of doing work the client has given up on.
  SimTime deadline = 0;

  // kVote.
  TmVote vote = TmVote::kAbort;

  // kReplicate / kReplicateAck / kStatusReq / kStatusResp.
  uint64_t epoch = 0;
  TmDecision decision = TmDecision::kAbort;

  // kStatusResp.
  TmTxnState state = TmTxnState::kUnknown;
  bool has_replication = false;
  uint64_t replicated_epoch = 0;
  TmDecision replicated_decision = TmDecision::kAbort;
  // kStatusResp to a Paxos takeover read: the family is unknown here, but a
  // promise at the read's epoch was recorded — "no accepted value" is real
  // testimony a leader may count toward its read quorum, unlike a bare
  // kUnknown (which proves nothing: an amnesiac acceptor may have accepted
  // and lost the memory).
  bool promised = false;

  Bytes Encode() const;
  static Result<TmMsg> Decode(const Bytes& wire);
};

}  // namespace camelot

#endif  // SRC_TRANMAN_MESSAGES_H_
