#include "src/tranman/tranman.h"

#include <algorithm>
#include <string_view>

#include "src/base/logging.h"
#include "src/sim/sync.h"

namespace camelot {

namespace {

// Epochs encode (round, site) so concurrent takeover coordinators never collide.
uint64_t MakeEpoch(uint64_t round, SiteId site) { return (round << 8) | (site.value & 0xff); }
uint64_t EpochRound(uint64_t epoch) { return epoch >> 8; }

Bytes EncodeTid(const Tid& tid) {
  ByteWriter w;
  w.Transaction(tid);
  return w.Take();
}

}  // namespace

TranMan::TranMan(Site& site, Network& net, ComMan& comman, StableLog& log, TranManConfig config)
    : site_(site),
      net_(net),
      comman_(comman),
      log_(log),
      config_(config),
      pool_(site.sched(), config.worker_threads),
      // Seeded from the site id, NOT forked from the scheduler's stream:
      // constructing a TranMan must not consume shared draws, or adding a
      // site would shift every other component's random trajectory.
      rng_(0x9e3779b97f4a7c15ULL ^
           (static_cast<uint64_t>(site.id().value) * 0xbf58476d1ce4e5b9ULL)) {
  pool_.set_admission_limit(config_.admission_queue_limit);
  pool_.set_admission_policy(config_.admission_policy);
  site_.RegisterService(kTranManServiceName,
                        [this](RpcContext ctx, uint32_t method, Bytes body) {
                          return Handle(ctx, method, std::move(body));
                        });
  net_.Bind(site_.id(), kTranManService, [this](Datagram dg) { OnDatagram(std::move(dg)); });
  net_.AddTopologyListener([this] { OnTopologyChange(); });
  site_.AddCrashListener([this] {
    // Volatile state evaporates; coroutines mid-protocol notice via closed
    // inboxes and incarnation checks. Family memory moves to the graveyard so
    // suspended coroutines holding pointers stay memory-safe.
    for (auto& [id, fam] : families_) {
      if (fam->inbox) {
        fam->inbox->Close();
      }
      graveyard_.push_back(std::move(fam));
    }
    families_.clear();
    readonly_voted_.clear();
    offpath_queue_.clear();
  });
}

// --- Plumbing --------------------------------------------------------------------

TranMan::Family* TranMan::FindFamily(const FamilyId& id) {
  auto it = families_.find(id);
  return it == families_.end() ? nullptr : it->second.get();
}

const TranMan::Family* TranMan::FindFamily(const FamilyId& id) const {
  auto it = families_.find(id);
  return it == families_.end() ? nullptr : it->second.get();
}

TranMan::Family* TranMan::CreateFamily(const Tid& top) {
  auto fam = std::make_unique<Family>();
  fam->top = top.TopLevel();
  Family* raw = fam.get();
  if (const auto it = orphan_promises_.find(top.family); it != orphan_promises_.end()) {
    raw->promised_epoch = it->second;  // The promise binds the family it reserved.
    orphan_promises_.erase(it);
  }
  families_.emplace(top.family, std::move(fam));
  return raw;
}

void TranMan::RecordOutcome(const FamilyId& family, bool committed) {
  if (committed) {
    ++counters_.committed;
  } else {
    ++counters_.aborted;
  }
  if (outcome_hook_) {
    outcome_hook_(family, committed);
  }
}

void TranMan::RetireFamily(const FamilyId& id) {
  auto it = families_.find(id);
  if (it == families_.end()) {
    return;
  }
  if (it->second->inbox) {
    it->second->inbox->Close();
  }
  graveyard_.push_back(std::move(it->second));
  families_.erase(it);
  comman_.Forget(id);
}

Async<bool> TranMan::ForceHoldingWorker(Lsn lsn) {
  co_await pool_.Acquire();
  const bool durable = co_await log_.Force(lsn);
  pool_.Release();
  co_return durable;
}

Async<bool> TranMan::AtForcePoint(std::string point, uint32_t inc) {
  if (!failpoints_.active()) {
    co_return true;
  }
  const FailpointHit hit = failpoints_.Eval(point);
  if (hit.action == FailpointAction::kDelay) {
    co_await site_.sched().Delay(hit.delay);
  }
  co_return !Dead(inc) && hit.action != FailpointAction::kError;
}

namespace {

// Maps a force failpoint name to the {role, phase} the static analysis
// predicts under. Every protocol force flows through ForceAt/DirectForceAt,
// so this table is the single attribution point.
struct ForceAttribution {
  const char* role;
  const char* phase;
};

ForceAttribution AttributeForce(std::string_view point) {
  if (point == "tm.local.commit_force") return {"coord", "local.commit"};
  if (point == "tm.2pc.commit_force") return {"coord", "2pc.commit"};
  if (point == "tm.sub.prepare_force") return {"sub", "prepare"};
  if (point == "tm.sub.commit_force") return {"sub", "commit"};
  if (point == "tm.sub.ack_force") return {"sub", "ack"};
  if (point == "tm.nbc.prepare_force") return {"coord", "nbc.prepare"};
  if (point == "tm.nbc.replicate_force") return {"coord", "nbc.replicate"};
  if (point == "tm.nbc.commit_force") return {"coord", "nbc.commit"};
  if (point == "tm.takeover.replicate_force") return {"takeover", "replicate"};
  if (point == "tm.takeover.commit_force") return {"takeover", "commit"};
  if (point == "tm.accept.replicate_force") return {"sub", "accept.replicate"};
  if (point == "tm.paxos.prepare_force") return {"coord", "paxos.prepare"};
  if (point == "tm.paxos.accept_force") return {"acceptor", "paxos.accept"};
  return {"tm", "other"};
}

}  // namespace

Async<bool> TranMan::ForceAt(const char* point, const FamilyId& family, Lsn lsn) {
  const uint32_t inc = site_.incarnation();
  if (!co_await AtForcePoint(std::string(point) + ".before", inc)) {
    co_return false;
  }
  if (!co_await ForceHoldingWorker(lsn)) {
    co_return false;
  }
  if (!co_await AtForcePoint(std::string(point) + ".after", inc)) {
    co_return false;
  }
  if (!Dead(inc)) {
    const ForceAttribution attr = AttributeForce(point);
    site_.cost_recorder().Record(family, attr.role, attr.phase, CostPrimitive::kLogForce);
    co_return true;
  }
  co_return false;
}

Async<bool> TranMan::DirectForceAt(const char* point, const FamilyId& family, Lsn lsn) {
  const uint32_t inc = site_.incarnation();
  if (!co_await AtForcePoint(std::string(point) + ".before", inc)) {
    co_return false;
  }
  if (!co_await log_.Force(lsn)) {
    co_return false;
  }
  if (!co_await AtForcePoint(std::string(point) + ".after", inc)) {
    co_return false;
  }
  if (!Dead(inc)) {
    const ForceAttribution attr = AttributeForce(point);
    site_.cost_recorder().Record(family, attr.role, attr.phase, CostPrimitive::kLogForce);
    co_return true;
  }
  co_return false;
}

void TranMan::RecordSpool(const FamilyId& family, const char* role, const char* phase) {
  site_.cost_recorder().Record(family, role, phase, CostPrimitive::kLogSpool);
}

void TranMan::RecordDatagram(const TmMsg& msg) {
  const CostRecorder& recorder = site_.cost_recorder();
  if (!recorder.active()) {
    return;
  }
  const char* role = "peer";
  switch (msg.type) {
    case TmMsgType::kPrepare:
    case TmMsgType::kCommit:
    case TmMsgType::kReplicate:
      role = "coord";
      break;
    case TmMsgType::kVote:
      // Paxos fans every participant's vote out to the whole acceptor set, so
      // the coordinator sends votes too; 2PC/NBC only ever see "sub" here.
      role = msg.tid.family.origin == site_.id() ? "coord" : "sub";
      break;
    case TmMsgType::kCommitAck:
    case TmMsgType::kReplicateAck:
    case TmMsgType::kStatusReq:
      role = "sub";
      break;
    case TmMsgType::kPaxosAccepted:
      role = "acceptor";
      break;
    case TmMsgType::kAbort:
      // Abort diffusion from the family's origin is the coordinator-side
      // abort (a client abort never marks the family as coordinator, and
      // presumed abort may have forgotten the family entirely by send time).
      role = msg.tid.family.origin == site_.id() ? "coord" : "sub";
      break;
    case TmMsgType::kStatusResp:
    case TmMsgType::kSiteUp:
      break;
  }
  recorder.Record(msg.tid.family, role, TmMsgTypeName(msg.type), CostPrimitive::kDatagram);
}

bool TranMan::AtTransition(const char* transition) {
  if (failpoints_.active()) {
    failpoints_.Eval(transition);
  }
  return !site_.up();
}

uint64_t TranMan::NextEpoch(Family* fam) {
  uint64_t round = fam->takeover_round + 1;
  const uint64_t seen = std::max(fam->promised_epoch, fam->replicated_epoch);
  round = std::max(round, EpochRound(seen) + 1);
  fam->takeover_round = round;
  return MakeEpoch(round, site_.id());
}

Status TranMan::HeuristicResolve(const FamilyId& family, TmDecision decision) {
  Family* fam = FindFamily(family);
  if (fam == nullptr) {
    return NotFoundError("unknown transaction");
  }
  if (fam->state != TmTxnState::kPrepared || fam->passive_acceptor) {
    return FailedPreconditionError("only a prepared (in-doubt) participant can be "
                                   "heuristically resolved");
  }
  ++counters_.heuristic_resolutions;
  fam->heuristic = true;
  if (decision == TmDecision::kCommit) {
    // Deliver a synthetic COMMIT to the waiting subordinate coroutine; the
    // normal path writes the commit record and acks the (absent) coordinator.
    TmMsg commit;
    commit.type = TmMsgType::kCommit;
    commit.tid = fam->top;
    commit.from = site_.id();
    if (fam->inbox && !fam->inbox->closed()) {
      fam->inbox->Send(std::move(commit));
    }
  } else {
    TmMsg abort;
    abort.type = TmMsgType::kAbort;
    abort.tid = fam->top;
    abort.from = site_.id();
    if (fam->inbox && !fam->inbox->closed()) {
      fam->inbox->Send(std::move(abort));
    }
  }
  return OkStatus();
}

TmTxnState TranMan::QueryState(const FamilyId& family) const {
  const Family* fam = FindFamily(family);
  return fam == nullptr ? TmTxnState::kUnknown : fam->state;
}

bool TranMan::IsBlocked(const FamilyId& family) const {
  const Family* fam = FindFamily(family);
  return fam != nullptr && fam->blocked;
}

size_t TranMan::live_family_count() const {
  size_t n = 0;
  for (const auto& [id, fam] : families_) {
    if (fam->state != TmTxnState::kCommitted && fam->state != TmTxnState::kAborted) {
      ++n;
    }
  }
  return n;
}

// --- Blocked-state and backoff plumbing --------------------------------------------

void TranMan::MarkBlocked(Family* fam) {
  if (fam->blocked) {
    return;
  }
  fam->blocked = true;
  fam->blocked_since = site_.sched().now();
  ++counters_.blocked_periods;
}

void TranMan::ClearBlocked(Family* fam) {
  if (!fam->blocked) {
    return;
  }
  fam->blocked = false;
  counters_.blocked_time_us +=
      static_cast<uint64_t>(site_.sched().now() - fam->blocked_since);
}

SimDuration TranMan::Backoff(SimDuration base, SimDuration cap, uint64_t attempt) {
  double d = static_cast<double>(base);
  for (uint64_t i = 0; i < attempt && d < static_cast<double>(cap); ++i) {
    d *= config_.backoff_multiplier;
  }
  d = std::min(d, static_cast<double>(cap));
  if (config_.backoff_jitter > 0) {
    d *= 1.0 - config_.backoff_jitter + 2.0 * config_.backoff_jitter * rng_.NextDouble();
  }
  return std::max<SimDuration>(static_cast<SimDuration>(d), 1);
}

void TranMan::ArmStuckWatch(Family* fam) {
  if (fam->watchdog_armed || config_.stuck_family_deadline <= 0) {
    return;
  }
  fam->watchdog_armed = true;
  site_.sched().Spawn(StuckFamilyWatch(fam->top.family, site_.incarnation()));
}

Async<void> TranMan::StuckFamilyWatch(FamilyId family_id, uint32_t inc) {
  co_await site_.sched().Delay(config_.stuck_family_deadline);
  if (Dead(inc)) {
    co_return;
  }
  Family* fam = FindFamily(family_id);
  if (fam == nullptr) {
    co_return;
  }
  fam->watchdog_armed = false;
  if (fam->state != TmTxnState::kCommitted && fam->state != TmTxnState::kAborted) {
    ++counters_.stuck_families;
    CTRACE("[%8.1fms] %s STUCK family %s undecided past deadline (state %d, blocked %d)",
           ToMs(site_.sched().now()), ToString(site_.id()).c_str(),
           ToString(fam->top).c_str(), static_cast<int>(fam->state),
           fam->blocked ? 1 : 0);
  }
}

void TranMan::OnTopologyChange() {
  if (!site_.up()) {
    return;
  }
  for (auto& [id, fam] : families_) {
    if (fam->state == TmTxnState::kPrepared && fam->committing && !fam->passive_acceptor &&
        !fam->is_coordinator) {
      // An in-doubt subordinate: restart its resolution clock and ask for
      // status right away (the response lands in the inbox and wakes even a
      // parked waiter). Without this, a participant that exhausted its rounds
      // during a partition would hold locks forever after the heal.
      fam->takeover_round = 0;
      ++counters_.status_queries;
      TmMsg req;
      req.type = TmMsgType::kStatusReq;
      req.tid = fam->top;
      if (fam->protocol == CommitProtocol::kTwoPhase) {
        SendMsg(fam->coordinator, req);
      } else {
        for (SiteId s : fam->sites) {
          if (s != site_.id()) {
            SendMsg(s, req);
          }
        }
      }
    } else if (fam->is_coordinator && fam->inbox && !fam->inbox->closed()) {
      // A parked phase-2 coordinator: nudge its inbox so it resends the
      // outcome to laggards (lost acks do not retransmit themselves).
      TmMsg nudge;
      nudge.type = TmMsgType::kSiteUp;
      nudge.tid = fam->top;
      nudge.from = site_.id();
      fam->inbox->Send(nudge);
    }
  }
}

// --- Datagram layer ----------------------------------------------------------------

namespace {

Bytes EncodeBatch(const std::vector<TmMsg>& msgs) {
  ByteWriter w;
  w.U16(static_cast<uint16_t>(msgs.size()));
  for (const TmMsg& m : msgs) {
    w.Blob(m.Encode());
  }
  return w.Take();
}

}  // namespace

void TranMan::SendMsg(SiteId dst, TmMsg msg) {
  msg.from = site_.id();
  if (failpoints_.active()) {
    const FailpointHit hit =
        failpoints_.Eval(std::string("tm.send.") + TmMsgTypeName(msg.type));
    if (!site_.up() || hit.action == FailpointAction::kDrop ||
        hit.action == FailpointAction::kError) {
      return;  // Crashed at the point, or the datagram is lost.
    }
    if (hit.action == FailpointAction::kDelay) {
      const uint32_t inc = site_.incarnation();
      site_.sched().Post(hit.delay, [this, dst, inc, delayed = std::move(msg)]() mutable {
        if (!Dead(inc)) {
          SendMsg(dst, std::move(delayed));
        }
      });
      return;
    }
  }
  std::vector<TmMsg> batch{std::move(msg)};
  // Piggyback: queued off-path messages for this destination ride along.
  auto it = offpath_queue_.find(dst);
  if (it != offpath_queue_.end() && !it->second.empty()) {
    counters_.messages_piggybacked += it->second.size();
    for (TmMsg& queued : it->second) {
      batch.push_back(std::move(queued));
    }
    offpath_queue_.erase(it);
  }
  // Each logical message in the batch is its own ledger datagram, so the
  // measured counts do not depend on how piggybacking packed the wire.
  for (const TmMsg& m : batch) {
    RecordDatagram(m);
  }
  net_.Send(Datagram{site_.id(), dst, kTranManService,
                     static_cast<uint32_t>(batch.front().type), EncodeBatch(batch)});
}

void TranMan::SendMsgToAll(const std::vector<SiteId>& dsts, TmMsg msg) {
  if (dsts.empty()) {
    return;
  }
  msg.from = site_.id();
  bool any_queued = false;
  for (SiteId dst : dsts) {
    auto it = offpath_queue_.find(dst);
    any_queued = any_queued || (it != offpath_queue_.end() && !it->second.empty());
  }
  if (any_queued) {
    // Per-destination payloads differ: fall back to unicast sends (each
    // evaluates its own tm.send.* failpoint inside SendMsg).
    for (SiteId dst : dsts) {
      TmMsg copy = msg;
      SendMsg(dst, std::move(copy));
    }
    return;
  }
  if (failpoints_.active()) {
    const FailpointHit hit =
        failpoints_.Eval(std::string("tm.send.") + TmMsgTypeName(msg.type));
    if (!site_.up() || hit.action == FailpointAction::kDrop ||
        hit.action == FailpointAction::kError) {
      return;  // Crashed at the point, or the whole multicast is lost.
    }
    if (hit.action == FailpointAction::kDelay) {
      const uint32_t inc = site_.incarnation();
      site_.sched().Post(hit.delay,
                         [this, dsts, inc, delayed = std::move(msg)]() mutable {
                           if (!Dead(inc)) {
                             SendMsgToAll(dsts, std::move(delayed));
                           }
                         });
      return;
    }
  }
  for (size_t i = 0; i < dsts.size(); ++i) {
    RecordDatagram(msg);  // One logical datagram per destination.
  }
  net_.SendToAll(site_.id(), dsts, kTranManService, static_cast<uint32_t>(msg.type),
                 EncodeBatch({msg}));
}

void TranMan::QueueOffPath(SiteId dst, TmMsg msg) {
  msg.from = site_.id();
  if (config_.piggyback_delay <= 0) {
    SendMsg(dst, std::move(msg));  // No batching: an ordinary unicast send.
    return;
  }
  auto& queue = offpath_queue_[dst];
  const bool first = queue.empty();
  queue.push_back(std::move(msg));
  if (config_.offpath_queue_limit > 0 && queue.size() > config_.offpath_queue_limit) {
    // Drop-oldest: a long partition must not grow this queue without bound.
    // Off-path messages (commit-acks) are re-derived by protocol timeouts,
    // so dropping one costs a retransmit, never correctness.
    queue.erase(queue.begin());
    ++counters_.offpath_dropped;
  }
  if (first) {
    const uint32_t inc = site_.incarnation();
    site_.sched().Post(config_.piggyback_delay, [this, dst, inc] {
      if (!Dead(inc)) {
        FlushOffPath(dst);
      }
    });
  }
}

void TranMan::FlushOffPath(SiteId dst) {
  auto it = offpath_queue_.find(dst);
  if (it == offpath_queue_.end() || it->second.empty()) {
    return;
  }
  if (failpoints_.active()) {
    const FailpointHit hit =
        failpoints_.Eval(std::string("tm.send.") + TmMsgTypeName(it->second.front().type));
    if (!site_.up()) {
      return;  // Crashed at the point (the queue died with the site).
    }
    // A crash listener or callback may have touched the queue: re-find.
    it = offpath_queue_.find(dst);
    if (it == offpath_queue_.end() || it->second.empty()) {
      return;
    }
    if (hit.action == FailpointAction::kDrop || hit.action == FailpointAction::kError) {
      offpath_queue_.erase(it);  // The whole batch is lost in flight.
      return;
    }
    if (hit.action == FailpointAction::kDelay) {
      const uint32_t inc = site_.incarnation();
      site_.sched().Post(hit.delay, [this, dst, inc] {
        if (!Dead(inc)) {
          FlushOffPath(dst);
        }
      });
      return;
    }
  }
  std::vector<TmMsg> batch = std::move(it->second);
  offpath_queue_.erase(it);
  for (const TmMsg& m : batch) {
    RecordDatagram(m);
  }
  net_.Send(Datagram{site_.id(), dst, kTranManService,
                     static_cast<uint32_t>(batch.front().type), EncodeBatch(batch)});
}

void TranMan::OnDatagram(Datagram dg) {
  if (!site_.up()) {
    return;
  }
  ByteReader r(dg.body);
  const uint16_t count = r.U16();
  for (uint16_t i = 0; i < count && r.ok(); ++i) {
    const Bytes wire = r.Blob();
    auto msg = TmMsg::Decode(wire);
    if (msg.ok()) {
      site_.sched().Spawn(DispatchMsg(std::move(*msg)));
    }
  }
}

Async<void> TranMan::DispatchMsg(TmMsg msg) {
  const uint32_t inc = site_.incarnation();
  // Every protocol event passes through the worker pool (Section 3.4).
  // Incoming prepares are NEW work at this site: they use the bounded
  // admission queue (with the propagated client deadline), while completion
  // traffic — votes, outcomes, acks, status — is never shed, since dropping
  // it would stall in-flight commits and hold locks longer.
  if (msg.type == TmMsgType::kPrepare) {
    const Admission adm = co_await pool_.Admit(
        config_.cpu_per_event, config_.shed_expired_work ? msg.deadline : 0);
    if (adm != Admission::kRun) {
      if (Dead(inc)) {
        co_return;
      }
      // Refuse rather than silently drop: an abort vote is always safe
      // before a commit decision exists, and it resolves the coordinator
      // immediately instead of after vote_timeout.
      ++counters_.prepares_shed;
      if (adm == Admission::kExpired) {
        ++counters_.deadline_shed;
      }
      TmMsg vote;
      vote.type = TmMsgType::kVote;
      vote.tid = msg.tid;
      vote.vote = TmVote::kAbort;
      SendMsg(msg.from, vote);
      co_return;
    }
  } else {
    co_await pool_.Run(config_.cpu_per_event);
  }
  if (Dead(inc)) {
    co_return;
  }
  switch (msg.type) {
    case TmMsgType::kPrepare:
      co_await HandleRemotePrepare(std::move(msg));
      co_return;
    case TmMsgType::kVote: {
      Family* fam = FindFamily(msg.tid.family);
      // Paxos votes fan out to the whole acceptor set. At the coordinator the
      // vote feeds GatherVotes via the inbox like any other protocol; at the
      // other acceptors it feeds the ballot-0 accept machinery. Votes for
      // unknown families are dropped: an amnesiac acceptor must never
      // re-assemble a ballot-0 accept from retransmitted votes alone.
      if (msg.protocol == CommitProtocol::kPaxos && fam != nullptr && !fam->is_coordinator) {
        co_await HandlePaxosVote(std::move(msg));
        co_return;
      }
      if (fam != nullptr && fam->inbox && !fam->inbox->closed()) {
        fam->inbox->Send(std::move(msg));
      }
      co_return;
    }
    case TmMsgType::kCommitAck:
    case TmMsgType::kReplicateAck:
    case TmMsgType::kPaxosAccepted:
    case TmMsgType::kStatusResp: {
      Family* fam = FindFamily(msg.tid.family);
      if (fam != nullptr && fam->inbox && !fam->inbox->closed()) {
        fam->inbox->Send(std::move(msg));
      }
      co_return;
    }
    case TmMsgType::kCommit: {
      Family* fam = FindFamily(msg.tid.family);
      if (fam == nullptr) {
        // Already finished and forgotten: the ack must have been lost.
        co_await HandleCommitForUnknown(std::move(msg));
        co_return;
      }
      if (fam->state == TmTxnState::kCommitted) {
        TmMsg ack;
        ack.type = TmMsgType::kCommitAck;
        ack.tid = msg.tid;
        SendMsg(msg.from, ack);
        co_return;
      }
      if (fam->state == TmTxnState::kAborted && fam->heuristic) {
        // We guessed ABORT; the real outcome is COMMIT. Record the damage and
        // ack so the coordinator can finish (the data here is already wrong —
        // exactly the risk LU 6.2 accepts).
        ++counters_.heuristic_damage;
        CTRACE("[%8.1fms] %s HEURISTIC DAMAGE: aborted %s but coordinator committed",
               ToMs(site_.sched().now()), ToString(site_.id()).c_str(),
               ToString(msg.tid).c_str());
        TmMsg ack;
        ack.type = TmMsgType::kCommitAck;
        ack.tid = msg.tid;
        SendMsg(msg.from, ack);
        co_return;
      }
      if (fam->passive_acceptor && fam->state == TmTxnState::kPrepared) {
        fam->state = TmTxnState::kCommitted;  // Outcome tombstone (change 4).
        TmMsg ack;
        ack.type = TmMsgType::kCommitAck;
        ack.tid = msg.tid;
        SendMsg(msg.from, ack);
        co_return;
      }
      if (fam->state == TmTxnState::kPrepared && fam->inbox && !fam->inbox->closed()) {
        fam->inbox->Send(std::move(msg));
      }
      co_return;
    }
    case TmMsgType::kAbort:
      co_await HandleAbortMsg(std::move(msg));
      co_return;
    case TmMsgType::kReplicate:
      co_await HandleReplicate(std::move(msg));
      co_return;
    case TmMsgType::kStatusReq:
      co_await HandleStatusReq(std::move(msg));
      co_return;
    case TmMsgType::kSiteUp: {
      // A site recovered: nudge every in-doubt family so its parked waiter
      // gets a fresh status answer (the response lands in the inbox).
      for (auto& [id, fam] : families_) {
        if (fam->state == TmTxnState::kPrepared && fam->committing && !fam->passive_acceptor) {
          fam->takeover_round = 0;
          TmMsg req;
          req.type = TmMsgType::kStatusReq;
          req.tid = fam->top;
          SendMsg(msg.from, req);
        }
      }
      co_return;
    }
  }
}

void TranMan::AnnounceRecovered() {
  TmMsg up;
  up.type = TmMsgType::kSiteUp;
  up.from = site_.id();
  net_.Broadcast(site_.id(), kTranManService, static_cast<uint32_t>(TmMsgType::kSiteUp),
                 EncodeBatch({up}));
}

// --- Service handler ----------------------------------------------------------------

Async<RpcResult> TranMan::Handle(RpcContext ctx, uint32_t method, Bytes body) {
  const uint32_t inc = site_.incarnation();
  if (method == kTmBegin) {
    // New work enters through bounded admission: the fast checks (deadline
    // already passed, live-family cap) and a full queue reject the begin
    // kOverloaded before it can occupy a worker — the client counts it as
    // shed, not failed, and backs off.
    Status admit = AdmissionCheck(ctx.deadline, /*creates_family=*/true);
    if (!admit.ok()) {
      ++counters_.overload_rejects;
      co_return RpcResult{std::move(admit), {}};
    }
    const Admission adm = co_await pool_.Admit(
        config_.cpu_per_event, config_.shed_expired_work ? ctx.deadline : 0);
    if (adm != Admission::kRun) {
      ++counters_.overload_rejects;
      if (adm == Admission::kExpired) {
        ++counters_.deadline_shed;
        co_return RpcResult{OverloadedError("deadline passed while queued for admission"), {}};
      }
      co_return RpcResult{OverloadedError("admission queue full"), {}};
    }
  } else {
    co_await pool_.Run(config_.cpu_per_event);
  }
  if (Dead(inc)) {
    co_return RpcResult{UnavailableError("site down"), {}};
  }
  ByteReader r(body);
  switch (method) {
    case kTmBegin: {
      const Tid parent = r.Transaction();
      RpcResult result = co_await HandleBegin(parent, ctx.deadline);
      co_return result;
    }
    case kTmCommit: {
      const Tid tid = r.Transaction();
      CommitOptions options;
      options.protocol = static_cast<CommitProtocol>(r.U8());
      options.force_subordinate_commit = r.U8() != 0;
      options.piggyback_commit_ack = r.U8() != 0;
      options.paxos_f = r.U32();
      if (!r.ok()) {
        co_return RpcResult{InvalidArgumentError("bad commit request"), {}};
      }
      if (ctx.deadline > 0) {
        // A commit call can carry the deadline even when begin did not (e.g.
        // the client adopted one mid-transaction); the prepare fan-out reads
        // it off the family.
        if (Family* fam = FindFamily(tid.family); fam != nullptr && fam->deadline == 0) {
          fam->deadline = ctx.deadline;
        }
      }
      if (tid.IsTopLevel()) {
        RpcResult result = co_await HandleCommit(tid, options);
        co_return result;
      }
      RpcResult result = co_await HandleNestedCommit(tid);
      co_return result;
    }
    case kTmAbort: {
      const Tid tid = r.Transaction();
      if (tid.IsTopLevel()) {
        RpcResult result = co_await HandleAbort(tid);
        co_return result;
      }
      RpcResult result = co_await HandleNestedAbort(tid);
      co_return result;
    }
    case kTmJoin: {
      const Tid tid = r.Transaction();
      const std::string server = r.Str();
      if (!r.ok()) {
        co_return RpcResult{InvalidArgumentError("bad join request"), {}};
      }
      RpcResult result = co_await HandleJoin(tid, server);
      co_return result;
    }
    case kTmNestedCommitRemote: {
      const Tid child = r.Transaction();
      const Tid parent = r.Transaction();
      RpcResult result = co_await HandleNestedCommitRemote(child, parent);
      co_return result;
    }
    case kTmQueryStatus: {
      const Tid tid = r.Transaction();
      ByteWriter w;
      w.U8(static_cast<uint8_t>(QueryState(tid.family)));
      co_return RpcResult{OkStatus(), w.Take()};
    }
    case kTmAbortSubtreeRemote: {
      const Tid top = r.Transaction();
      const uint32_t n = r.U32();
      std::vector<uint32_t> serials;
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        serials.push_back(r.U32());
      }
      RpcResult result = co_await HandleAbortSubtreeRemote(top, std::move(serials));
      co_return result;
    }
    default:
      co_return RpcResult{InvalidArgumentError("unknown tranman method"), {}};
  }
}

Status TranMan::AdmissionCheck(SimTime deadline, bool creates_family) const {
  if (config_.shed_expired_work && deadline > 0 && site_.sched().now() > deadline) {
    return OverloadedError("client deadline already passed");
  }
  if (creates_family && config_.max_live_families > 0 &&
      live_family_count() >= config_.max_live_families) {
    return OverloadedError("live-family cap reached");
  }
  return OkStatus();
}

Async<RpcResult> TranMan::HandleBegin(const Tid& parent, SimTime deadline) {
  if (!parent.IsValid()) {
    // New top-level transaction; this site is the family origin.
    const Tid tid{FamilyId{site_.id(), next_family_seq_++}, 0, 0};
    Family* fam = CreateFamily(tid);
    fam->deadline = deadline;
    ++counters_.begun;
    co_return RpcResult{OkStatus(), EncodeTid(tid)};
  }
  // Nested transaction under `parent` (created at the family origin).
  Family* fam = FindFamily(parent.family);
  if (fam == nullptr || fam->state != TmTxnState::kActive || fam->committing) {
    co_return RpcResult{FailedPreconditionError("parent not active"), {}};
  }
  if (parent.family.origin != site_.id()) {
    co_return RpcResult{InvalidArgumentError("nested begin must run at the family origin"), {}};
  }
  const bool parent_ok =
      parent.IsTopLevel() || fam->active_nested.contains(parent.serial);
  if (!parent_ok) {
    co_return RpcResult{FailedPreconditionError("parent transaction is not active"), {}};
  }
  Tid child = parent;
  child.serial = fam->next_serial++;
  child.parent_serial = parent.serial;
  fam->nested_parent[child.serial] = parent.serial;
  fam->active_nested.insert(child.serial);
  ++counters_.begun;
  co_return RpcResult{OkStatus(), EncodeTid(child)};
}

Async<RpcResult> TranMan::HandleJoin(const Tid& tid, const std::string& server) {
  Family* fam = FindFamily(tid.family);
  if (fam == nullptr) {
    // First contact with this family at this (subordinate) site: the join
    // creates a family, so the in-flight cap applies. Rejecting is safe —
    // the server op fails kOverloaded and the client aborts the transaction.
    if (config_.max_live_families > 0 && live_family_count() >= config_.max_live_families) {
      ++counters_.overload_rejects;
      co_return RpcResult{OverloadedError("live-family cap reached"), {}};
    }
    fam = CreateFamily(tid);
    if (tid.family.origin != site_.id()) {
      site_.sched().Spawn(OrphanWatch(tid.family, site_.incarnation()));
    }
  }
  if (fam->state != TmTxnState::kActive || fam->committing) {
    co_return RpcResult{FailedPreconditionError("transaction no longer active"), {}};
  }
  if (std::find(fam->local_servers.begin(), fam->local_servers.end(), server) ==
      fam->local_servers.end()) {
    fam->local_servers.push_back(server);
  }
  co_return RpcResult{OkStatus(), {}};
}

// --- Server upcalls --------------------------------------------------------------------

Async<ServerVote> TranMan::VoteLocalServers(Family* fam) {
  if (fam->local_servers.empty()) {
    co_return ServerVote::kReadOnly;
  }
  std::vector<Async<RpcResult>> calls;
  calls.reserve(fam->local_servers.size());
  for (const auto& server : fam->local_servers) {
    calls.push_back(site_.CallLocal(server, kSrvVote, EncodeTidOnly(fam->top),
                                    RpcContext{site_.id(), fam->top},
                                    /*to_data_server=*/false));
  }
  std::vector<RpcResult> results = co_await JoinAll(site_.sched(), std::move(calls));
  bool any_update = false;
  for (const auto& result : results) {
    if (!result.status.ok()) {
      co_return ServerVote::kNo;
    }
    ByteReader r(result.body);
    const auto vote = static_cast<ServerVote>(r.U8());
    if (vote == ServerVote::kNo) {
      co_return ServerVote::kNo;
    }
    if (vote == ServerVote::kUpdate) {
      any_update = true;
    }
  }
  co_return any_update ? ServerVote::kUpdate : ServerVote::kReadOnly;
}

void TranMan::NotifyServersDropLocks(const Family& fam) {
  for (const auto& server : fam.local_servers) {
    site_.NotifyLocal(server, kSrvCommitFamily, EncodeTidOnly(fam.top),
                      RpcContext{site_.id(), fam.top});
  }
}

Async<Status> TranMan::CallServersAbort(const Family& fam) {
  std::vector<Async<RpcResult>> calls;
  calls.reserve(fam.local_servers.size());
  for (const auto& server : fam.local_servers) {
    calls.push_back(site_.CallLocal(server, kSrvAbortFamily, EncodeTidOnly(fam.top),
                                    RpcContext{site_.id(), fam.top},
                                    /*to_data_server=*/false));
  }
  if (calls.empty()) {
    co_return OkStatus();
  }
  co_await JoinAll(site_.sched(), std::move(calls));
  co_return OkStatus();
}

// --- Commit entry point -------------------------------------------------------------------

Async<RpcResult> TranMan::HandleCommit(const Tid& tid, const CommitOptions& options) {
  Family* fam = FindFamily(tid.family);
  if (fam == nullptr) {
    co_return RpcResult{NotFoundError("unknown transaction"), {}};
  }
  if (fam->state != TmTxnState::kActive || fam->committing) {
    co_return RpcResult{FailedPreconditionError("transaction not active"), {}};
  }
  if (!fam->active_nested.empty()) {
    co_return RpcResult{FailedPreconditionError("nested transactions still active"), {}};
  }
  fam->committing = true;
  const uint32_t inc = site_.incarnation();

  // Figure 1, event 8: ask local servers whether they are willing to commit.
  const ServerVote local_vote = co_await VoteLocalServers(fam);
  if (Dead(inc)) {
    co_return RpcResult{UnavailableError("site crashed"), {}};
  }
  std::vector<SiteId> subs = comman_.KnownSites(tid.family);
  if (local_vote == ServerVote::kNo) {
    co_await AbortDistributed(fam, subs);
    co_return RpcResult{AbortedError("a local server refused to commit"), {}};
  }
  if (comman_.IsPoisoned(tid.family)) {
    // A participant crashed and restarted while this transaction ran: its
    // locks and joins there are gone, so any reads made at it may be stale.
    co_await AbortDistributed(fam, subs);
    co_return RpcResult{AbortedError("a participant restarted mid-transaction"), {}};
  }
  const bool local_updates = local_vote == ServerVote::kUpdate;

  Status status;
  if (subs.empty()) {
    status = co_await CommitLocalOnly(fam, local_updates);
  } else if (options.protocol == CommitProtocol::kNonBlocking) {
    status = co_await CoordinateNonBlocking(fam, options, subs, local_updates);
  } else if (options.protocol == CommitProtocol::kPaxos) {
    // Acceptor set: min(2F+1, participants) clamped odd, coordinator first.
    uint32_t acceptors = std::min<uint32_t>(2 * options.paxos_f + 1,
                                            static_cast<uint32_t>(subs.size()) + 1);
    if (acceptors % 2 == 0) {
      --acceptors;
    }
    const uint32_t f_eff = (acceptors - 1) / 2;
    if (f_eff == 0) {
      // Gray & Lamport's theorem in code: Paxos Commit with one acceptor IS
      // the optimized two-phase protocol, so route it literally through the
      // 2PC engine and the cost vectors collapse by construction.
      status = co_await CoordinateTwoPhase(fam, CommitOptions::Optimized(), subs, local_updates);
    } else {
      status = co_await CoordinatePaxos(fam, f_eff, subs, local_updates);
    }
  } else {
    status = co_await CoordinateTwoPhase(fam, options, subs, local_updates);
  }
  if (!status.ok() && !Dead(inc)) {
    // The coordinate path failed while this site stayed up (e.g. an injected
    // force error). An undecided family must not be abandoned with
    // committing=true: no watcher will ever resolve it, its locks never
    // release, and subordinates poll its status forever. No decision record
    // exists while the state is still kActive, so presumed abort is safe.
    fam = FindFamily(tid.family);
    if (fam != nullptr && fam->state == TmTxnState::kActive) {
      co_await AbortDistributed(fam, subs);
    }
  }
  co_return RpcResult{std::move(status), {}};
}

Async<Status> TranMan::CommitLocalOnly(Family* fam, bool has_updates) {
  if (has_updates) {
    // Figure 1, event 9: the single log force that commits the transaction.
    const Lsn lsn = log_.Append(LogRecord::Commit(fam->top, {}));
    if (!co_await ForceAt("tm.local.commit_force", fam->top.family, lsn)) {
      co_return UnavailableError("crashed during commit force");
    }
  }
  if (AtTransition("tm.committed")) {
    co_return UnavailableError("site crashed");
  }
  fam->state = TmTxnState::kCommitted;
  RecordOutcome(fam->top.family, /*committed=*/true);
  NotifyServersDropLocks(*fam);  // Event 11, off the completion path.
  RetireFamily(fam->top.family);
  co_return OkStatus();
}

Async<RpcResult> TranMan::HandleAbort(const Tid& tid) {
  Family* fam = FindFamily(tid.family);
  if (fam == nullptr) {
    co_return RpcResult{NotFoundError("unknown transaction"), {}};
  }
  if (fam->committing) {
    co_return RpcResult{FailedPreconditionError("commitment already in progress"), {}};
  }
  fam->committing = true;
  std::vector<SiteId> subs = comman_.KnownSites(tid.family);
  co_await AbortDistributed(fam, subs);
  co_return RpcResult{OkStatus(), {}};
}

Async<void> TranMan::AbortDistributed(Family* fam, const std::vector<SiteId>& notify) {
  const uint32_t inc = site_.incarnation();
  // Presumed abort: the abort record is never forced.
  log_.Append(LogRecord::Abort(fam->top));
  RecordSpool(fam->top.family, "coord", "abort");
  co_await CallServersAbort(*fam);
  if (Dead(inc)) {
    co_return;
  }
  TmMsg abort;
  abort.type = TmMsgType::kAbort;
  abort.tid = fam->top;
  SendMsgToAll(notify, abort);
  if (AtTransition("tm.aborted")) {
    co_return;
  }
  fam->state = TmTxnState::kAborted;
  RecordOutcome(fam->top.family, /*committed=*/false);
  if (fam->protocol != CommitProtocol::kTwoPhase && fam->committing && fam->is_coordinator) {
    // Change 4: NBC (and Paxos) participants keep a tombstone so late status
    // queries see the outcome instead of inferring the wrong one.
    comman_.Forget(fam->top.family);
  } else {
    RetireFamily(fam->top.family);
  }
}

// --- Two-phase commitment (coordinator) ------------------------------------------------------

Async<TranMan::VoteRound> TranMan::GatherVotes(Family* fam, const TmMsg& prepare_template,
                                               const std::vector<SiteId>& subs) {
  const uint32_t inc = site_.incarnation();
  VoteRound round;
  std::set<SiteId> pending(subs.begin(), subs.end());
  std::unordered_map<SiteId, TmVote> votes;

  SendMsgToAll(subs, prepare_template);
  const SimTime deadline = site_.sched().now() + config_.vote_timeout;
  bool any_abort = false;
  uint64_t silent_rounds = 0;
  while (!pending.empty() && !any_abort) {
    const SimDuration wait = std::min<SimDuration>(
        Backoff(config_.retry_interval, config_.retry_interval_max, silent_rounds),
        deadline - site_.sched().now());
    if (wait <= 0) {
      break;  // Vote timeout: presume the worst.
    }
    auto msg = co_await fam->inbox->ReceiveTimeout(wait);
    if (Dead(inc) || fam->inbox->closed()) {
      co_return round;  // all_yes stays false.
    }
    if (!msg.has_value()) {
      // Silence: retransmit the prepare to the laggards.
      ++silent_rounds;
      SendMsgToAll({pending.begin(), pending.end()}, prepare_template);
      continue;
    }
    silent_rounds = 0;
    if (msg->type != TmMsgType::kVote || !pending.contains(msg->from)) {
      continue;
    }
    pending.erase(msg->from);
    votes[msg->from] = msg->vote;
    if (msg->vote == TmVote::kAbort) {
      any_abort = true;
    }
  }
  round.all_yes = pending.empty() && !any_abort;
  round.any_abort = any_abort;
  for (const auto& [sub_site, vote] : votes) {
    if (vote == TmVote::kCommit) {
      round.update_subs.push_back(sub_site);
    }
  }
  std::sort(round.update_subs.begin(), round.update_subs.end());
  co_return round;
}

Async<Status> TranMan::CoordinateTwoPhase(Family* fam, const CommitOptions& options,
                                          std::vector<SiteId> subs, bool local_updates) {
  const uint32_t inc = site_.incarnation();
  fam->is_coordinator = true;
  fam->coordinator = site_.id();
  fam->protocol = CommitProtocol::kTwoPhase;
  fam->force_sub_commit = options.force_subordinate_commit;
  fam->piggyback_ack = options.piggyback_commit_ack;
  fam->sites.clear();
  fam->sites.push_back(site_.id());
  fam->sites.insert(fam->sites.end(), subs.begin(), subs.end());
  fam->inbox = std::make_shared<Channel<TmMsg>>(site_.sched());

  TmMsg prepare;
  prepare.type = TmMsgType::kPrepare;
  prepare.tid = fam->top;
  prepare.protocol = CommitProtocol::kTwoPhase;
  prepare.force_subordinate_commit = options.force_subordinate_commit;
  prepare.piggyback_commit_ack = options.piggyback_commit_ack;
  prepare.sites = fam->sites;
  prepare.deadline = fam->deadline;

  VoteRound votes = co_await GatherVotes(fam, prepare, subs);
  if (Dead(inc)) {
    co_return UnavailableError("site crashed");
  }
  if (!votes.all_yes) {
    co_await AbortDistributed(fam, subs);
    co_return AbortedError("a participant voted no or timed out");
  }

  if (votes.update_subs.empty() && !local_updates) {
    // The entire transaction was read-only: commit without writing anything.
    if (AtTransition("tm.committed")) {
      co_return UnavailableError("site crashed");
    }
    fam->state = TmTxnState::kCommitted;
    RecordOutcome(fam->top.family, /*committed=*/true);
    NotifyServersDropLocks(*fam);
    RetireFamily(fam->top.family);
    co_return OkStatus();
  }

  // Commit point: force the commit record listing subordinates needing acks.
  const Lsn lsn = log_.Append(LogRecord::Commit(fam->top, votes.update_subs));
  if (!co_await ForceAt("tm.2pc.commit_force", fam->top.family, lsn)) {
    co_return UnavailableError("crashed during commit force");
  }
  if (AtTransition("tm.committed")) {
    co_return UnavailableError("site crashed");
  }
  fam->state = TmTxnState::kCommitted;
  RecordOutcome(fam->top.family, /*committed=*/true);
  NotifyServersDropLocks(*fam);
  // Phase 2 is off the completion path: the application's call returns now.
  site_.sched().Spawn(CoordinatorPhase2(fam->top.family, std::move(votes.update_subs)));
  co_return OkStatus();
}

Async<void> TranMan::CoordinatorPhase2(FamilyId family, std::vector<SiteId> update_subs) {
  const uint32_t inc = site_.incarnation();
  Family* fam = FindFamily(family);
  if (fam == nullptr) {
    co_return;
  }
  std::set<SiteId> pending(update_subs.begin(), update_subs.end());
  TmMsg commit;
  commit.type = TmMsgType::kCommit;
  commit.tid = fam->top;

  // Send COMMIT once up front; retransmit to the remaining laggards only on
  // silence (a receive timeout) or a topology change — each ack used to reset
  // the loop into another full resend, which made the fault-free datagram
  // count quadratic in the subordinate count.
  int silent_rounds = 0;
  SendMsgToAll({pending.begin(), pending.end()}, commit);
  while (!pending.empty()) {
    if (Dead(inc) || fam->inbox->closed()) {
      co_return;
    }
    std::optional<TmMsg> msg;
    if (silent_rounds < 30) {
      msg = co_await fam->inbox->ReceiveTimeout(Backoff(
          config_.retry_interval, config_.retry_interval_max,
          static_cast<uint64_t>(silent_rounds)));
    } else {
      // Park: a subordinate is unreachable. Its recovery will ask us for
      // status and then ack; we stay receptive without flooding the network.
      msg = co_await fam->inbox->Receive();
    }
    if (Dead(inc)) {
      co_return;
    }
    if (!msg.has_value()) {
      if (fam->inbox->closed()) {
        co_return;
      }
      ++silent_rounds;
      if (silent_rounds < 30) {
        SendMsgToAll({pending.begin(), pending.end()}, commit);
      }
      continue;
    }
    if (msg->type == TmMsgType::kCommitAck) {
      pending.erase(msg->from);
      silent_rounds = 0;
    } else if (msg->type == TmMsgType::kSiteUp) {
      silent_rounds = 0;  // Topology changed: resume resending to laggards.
      SendMsgToAll({pending.begin(), pending.end()}, commit);
    }
  }
  // Presumed abort epilogue: now that everyone wrote a commit record, the
  // coordinator may forget (End is never forced).
  log_.Append(LogRecord::End(fam->top));
  RecordSpool(fam->top.family, "coord", "end");
  if (fam->protocol != CommitProtocol::kTwoPhase) {
    comman_.Forget(fam->top.family);  // Keep the tombstone itself (change 4).
  } else {
    RetireFamily(family);
  }
}

// --- Non-blocking commitment (coordinator) ------------------------------------------------

Async<Status> TranMan::CoordinateNonBlocking(Family* fam, const CommitOptions& /*options*/,
                                             std::vector<SiteId> subs, bool local_updates) {
  const uint32_t inc = site_.incarnation();
  fam->is_coordinator = true;
  fam->coordinator = site_.id();
  fam->protocol = CommitProtocol::kNonBlocking;
  fam->force_sub_commit = false;  // NBC notify phase always uses the optimized form.
  fam->piggyback_ack = true;
  fam->sites.clear();
  fam->sites.push_back(site_.id());
  fam->sites.insert(fam->sites.end(), subs.begin(), subs.end());
  const uint32_t n = static_cast<uint32_t>(fam->sites.size());
  fam->commit_quorum = n / 2 + 1;
  fam->abort_quorum = n + 1 - fam->commit_quorum;
  fam->inbox = std::make_shared<Channel<TmMsg>>(site_.sched());

  // Change 5: the coordinator prepares (forces its prepare record, which also
  // hardens its own update records) BEFORE sending the prepare message. A
  // read-only coordinator skips this so that a completely read-only
  // transaction keeps the two-phase critical path (paper, Section 6).
  if (local_updates) {
    const Lsn prep_lsn = log_.Append(LogRecord::Prepare(fam->top, site_.id(), fam->sites,
                                                        CommitProtocol::kNonBlocking,
                                                        fam->commit_quorum, fam->abort_quorum));
    if (!co_await ForceAt("tm.nbc.prepare_force", fam->top.family, prep_lsn)) {
      co_return UnavailableError("crashed during prepare force");
    }
  }
  if (AtTransition("tm.prepared")) {
    co_return UnavailableError("site crashed");
  }
  fam->state = TmTxnState::kPrepared;

  // Change 1: the prepare message carries the site list and quorum sizes.
  TmMsg prepare;
  prepare.type = TmMsgType::kPrepare;
  prepare.tid = fam->top;
  prepare.protocol = CommitProtocol::kNonBlocking;
  prepare.sites = fam->sites;
  prepare.commit_quorum = fam->commit_quorum;
  prepare.abort_quorum = fam->abort_quorum;
  prepare.deadline = fam->deadline;

  VoteRound votes = co_await GatherVotes(fam, prepare, subs);
  if (Dead(inc)) {
    co_return UnavailableError("site crashed");
  }
  if (!votes.all_yes) {
    // No commit intent was ever replicated, so a plain presumed-abort is safe.
    co_await AbortDistributed(fam, subs);
    co_return AbortedError("a participant voted no or timed out");
  }

  if (votes.update_subs.empty()) {
    // Only this site (at most) made updates: no replication phase is needed,
    // the local commit record alone decides.
    Status status = co_await CommitLocalOnlyNbc(fam, local_updates, subs);
    co_return status;
  }

  // A takeover may have raced our vote gathering: a participant that timed
  // out started a higher-epoch round, and we promised it (HandleStatusReq) or
  // outright accepted its ABORT (HandleReplicate). Starting our own epoch-0
  // commit round UNDER that promise would clobber the accepted state and let
  // disjoint-looking quorums decide commit AND abort. Since our commit intent
  // was never replicated, nobody can decide commit — aborting is safe and
  // agrees with any outcome the takeover can reach.
  if (fam->has_replication || fam->promised_epoch > 0) {
    co_await SubordinateAbort(fam);
    co_return AbortedError("superseded by a takeover round during vote gathering");
  }

  // Replication phase (change 3): replicate the commit intent until a commit
  // quorum (counting our own forced records) exists.
  fam->has_replication = true;
  fam->replicated_epoch = MakeEpoch(0, site_.id());
  fam->replicated_decision = TmDecision::kCommit;
  const Lsn rep_lsn = log_.Append(LogRecord::Replication(
      fam->top, site_.id(), fam->replicated_epoch, static_cast<uint8_t>(TmDecision::kCommit),
      fam->sites, fam->protocol, fam->commit_quorum, fam->abort_quorum));
  if (!co_await ForceAt("tm.nbc.replicate_force", fam->top.family, rep_lsn)) {
    co_return UnavailableError("crashed during replication force");
  }

  TmMsg replicate;
  replicate.type = TmMsgType::kReplicate;
  replicate.tid = fam->top;
  replicate.epoch = fam->replicated_epoch;
  replicate.decision = TmDecision::kCommit;
  replicate.commit_quorum = fam->commit_quorum;
  replicate.abort_quorum = fam->abort_quorum;

  std::set<SiteId> acked;
  // Read-only subordinates linger as passive acceptors; widen to them if the
  // update subordinates alone cannot form the quorum ("read-only sites...
  // often need not participate in the replication phase" — but when update
  // sites are short, they must).
  std::vector<SiteId> targets = votes.update_subs;
  std::set<SiteId> readonly_pool;
  for (SiteId s : subs) {
    if (std::find(targets.begin(), targets.end(), s) == targets.end()) {
      readonly_pool.insert(s);
    }
  }
  if (targets.size() + 1 < fam->commit_quorum) {
    // Not enough update acceptors even if all ack: draft passive acceptors now.
    targets.insert(targets.end(), readonly_pool.begin(), readonly_pool.end());
    readonly_pool.clear();
  }
  int rounds = 0;
  SendMsgToAll(targets, replicate);
  while (acked.size() + 1 < fam->commit_quorum) {
    auto msg = co_await fam->inbox->ReceiveTimeout(config_.retry_interval);
    if (Dead(inc) || fam->inbox->closed()) {
      co_return UnavailableError("site crashed");
    }
    if (msg.has_value()) {
      if (msg->type == TmMsgType::kReplicateAck && msg->epoch == replicate.epoch) {
        acked.insert(msg->from);
      } else if (msg->type == TmMsgType::kCommit) {
        // A takeover coordinator beat us to the decision: adopt it.
        co_await SubordinateCommit(fam);
        co_return OkStatus();
      } else if (msg->type == TmMsgType::kAbort) {
        co_await SubordinateAbort(fam);
        co_return AbortedError("aborted by a takeover coordinator");
      }
      continue;
    }
    ++rounds;
    if (rounds > 2 && !readonly_pool.empty()) {
      targets.insert(targets.end(), readonly_pool.begin(), readonly_pool.end());
      readonly_pool.clear();
    }
    if (rounds > config_.max_takeover_rounds) {
      // Cannot reach a commit quorum (multiple failures / partition). Demote
      // ourselves to an ordinary blocked participant: the takeover machinery
      // (ours, or a subordinate's) finishes the job when connectivity returns.
      fam->takeover_round = 0;
      site_.sched().Spawn(SubordinateWait(fam->top.family, inc));
      co_return BlockedError("commit quorum unreachable; transaction left prepared");
    }
    std::vector<SiteId> missing;
    for (SiteId s : targets) {
      if (!acked.contains(s)) {
        missing.push_back(s);
      }
    }
    SendMsgToAll(missing, replicate);
  }

  // Commit point: the log write that completes a commit quorum.
  const Lsn commit_lsn = log_.Append(LogRecord::Commit(fam->top, votes.update_subs));
  if (!co_await ForceAt("tm.nbc.commit_force", fam->top.family, commit_lsn)) {
    co_return UnavailableError("crashed during commit force");
  }
  if (AtTransition("tm.committed")) {
    co_return UnavailableError("site crashed");
  }
  fam->state = TmTxnState::kCommitted;
  RecordOutcome(fam->top.family, /*committed=*/true);
  NotifyServersDropLocks(*fam);
  // Notify phase covers EVERY subordinate still holding state: update subs
  // write their commit records; read-only passive acceptors tombstone the
  // outcome (change 4) and ack immediately.
  site_.sched().Spawn(CoordinatorPhase2(fam->top.family, subs));
  co_return OkStatus();
}

Async<Status> TranMan::CommitLocalOnlyNbc(Family* fam, bool local_updates,
                                          const std::vector<SiteId>& subs) {
  if (local_updates) {
    const Lsn lsn = log_.Append(LogRecord::Commit(fam->top, {}));
    if (!co_await ForceAt("tm.local.commit_force", fam->top.family, lsn)) {
      co_return UnavailableError("crashed during commit force");
    }
  }
  if (AtTransition("tm.committed")) {
    co_return UnavailableError("site crashed");
  }
  fam->state = TmTxnState::kCommitted;
  RecordOutcome(fam->top.family, /*committed=*/true);
  NotifyServersDropLocks(*fam);
  // Tell read-only subordinates (passive acceptors) the outcome so their
  // tombstones are right; no acks matter.
  TmMsg commit;
  commit.type = TmMsgType::kCommit;
  commit.tid = fam->top;
  SendMsgToAll(subs, commit);
  co_return OkStatus();
}

// --- Paxos Commit (Gray & Lamport) ----------------------------------------------------------

std::vector<SiteId> TranMan::PaxosAcceptors(const std::vector<SiteId>& sites,
                                            uint32_t commit_quorum) {
  size_t a = commit_quorum > 0 ? 2 * static_cast<size_t>(commit_quorum) - 1 : 1;
  a = std::min(a, sites.size());
  return {sites.begin(), sites.begin() + static_cast<std::ptrdiff_t>(a)};
}

Async<Status> TranMan::CoordinatePaxos(Family* fam, uint32_t f_eff, std::vector<SiteId> subs,
                                       bool local_updates) {
  const uint32_t inc = site_.incarnation();
  fam->is_coordinator = true;
  fam->coordinator = site_.id();
  fam->protocol = CommitProtocol::kPaxos;
  fam->force_sub_commit = false;  // The notify phase always uses the optimized form.
  fam->piggyback_ack = true;
  fam->sites.clear();
  fam->sites.push_back(site_.id());
  fam->sites.insert(fam->sites.end(), subs.begin(), subs.end());
  fam->commit_quorum = f_eff + 1;
  fam->abort_quorum = f_eff + 1;
  fam->inbox = std::make_shared<Channel<TmMsg>>(site_.sched());

  // An updating coordinator prepares (hardening its updates) before fanning
  // out, like NBC: its vote must survive a crash once it reaches an acceptor.
  if (local_updates) {
    const Lsn prep_lsn = log_.Append(LogRecord::Prepare(fam->top, site_.id(), fam->sites,
                                                        CommitProtocol::kPaxos,
                                                        fam->commit_quorum, fam->abort_quorum));
    if (!co_await ForceAt("tm.paxos.prepare_force", fam->top.family, prep_lsn)) {
      co_return UnavailableError("crashed during prepare force");
    }
  }
  if (AtTransition("tm.prepared")) {
    co_return UnavailableError("site crashed");
  }
  fam->state = TmTxnState::kPrepared;
  fam->paxos_votes[site_.id()] = local_updates ? TmVote::kCommit : TmVote::kReadOnly;

  TmMsg prepare;
  prepare.type = TmMsgType::kPrepare;
  prepare.tid = fam->top;
  prepare.protocol = CommitProtocol::kPaxos;
  prepare.sites = fam->sites;
  prepare.commit_quorum = fam->commit_quorum;
  prepare.abort_quorum = fam->abort_quorum;
  prepare.deadline = fam->deadline;

  // The coordinator is acceptor 0; the replicated registrar is the first
  // 2F+1 participant sites. Its own vote goes to the other acceptors, since
  // each needs the complete vote set to form its ballot-0 accept.
  const std::vector<SiteId> acceptors = PaxosAcceptors(fam->sites, fam->commit_quorum);
  const std::vector<SiteId> remote_acceptors(acceptors.begin() + 1, acceptors.end());
  TmMsg own_vote;
  own_vote.type = TmMsgType::kVote;
  own_vote.tid = fam->top;
  own_vote.protocol = CommitProtocol::kPaxos;
  own_vote.vote = local_updates ? TmVote::kCommit : TmVote::kReadOnly;
  SendMsgToAll(remote_acceptors, own_vote);

  VoteRound votes = co_await GatherVotes(fam, prepare, subs);
  if (Dead(inc)) {
    co_return UnavailableError("site crashed");
  }
  if (!votes.all_yes) {
    if (votes.any_abort) {
      // An explicit no vote: that participant can never re-vote yes, so no
      // acceptor can ever complete an all-yes set. Presumed abort is safe.
      co_await AbortDistributed(fam, subs);
      co_return AbortedError("a participant voted no");
    }
    // A silent participant: its yes vote may already sit at an acceptor, so
    // unlike 2PC/NBC we may NOT presume abort — a later leader could find a
    // commit accept. Park and resolve through ballot promotion.
    fam->takeover_round = 0;
    site_.sched().Spawn(SubordinateWait(fam->top.family, inc));
    co_return BlockedError("votes incomplete; resolving through takeover");
  }

  if (votes.update_subs.empty() && !local_updates) {
    // Entirely read-only: trivially committed, nothing to replicate. Tell the
    // lingering read-only acceptors so their tombstones are right (their acks
    // land on the retired family and are dropped).
    if (AtTransition("tm.committed")) {
      co_return UnavailableError("site crashed");
    }
    fam->state = TmTxnState::kCommitted;
    RecordOutcome(fam->top.family, /*committed=*/true);
    NotifyServersDropLocks(*fam);
    TmMsg commit;
    commit.type = TmMsgType::kCommit;
    commit.tid = fam->top;
    SendMsgToAll(remote_acceptors, commit);
    RetireFamily(fam->top.family);
    co_return OkStatus();
  }

  // A takeover raced the vote gathering: we promised a higher ballot or
  // accepted its value, so a ballot-0 accept is off the table. Unlike NBC we
  // must not unilaterally abort either — the fanned-out votes may let another
  // quorum decide commit. Park and let the takeover machinery resolve it.
  if (fam->has_replication || fam->promised_epoch > 0) {
    fam->takeover_round = 0;
    site_.sched().Spawn(SubordinateWait(fam->top.family, inc));
    co_return BlockedError("superseded by a takeover round during vote gathering");
  }

  // Ballot-0 accept at acceptor 0.
  fam->has_replication = true;
  fam->replicated_epoch = MakeEpoch(0, site_.id());
  fam->replicated_decision = TmDecision::kCommit;
  const Lsn rep_lsn = log_.Append(LogRecord::Replication(
      fam->top, site_.id(), fam->replicated_epoch, static_cast<uint8_t>(TmDecision::kCommit),
      fam->sites, CommitProtocol::kPaxos, fam->commit_quorum, fam->abort_quorum));
  if (!co_await ForceAt("tm.paxos.accept_force", fam->top.family, rep_lsn)) {
    co_return UnavailableError("crashed during accept force");
  }

  // Wait for F more acceptors to report their ballot-0 accepts durable.
  std::set<SiteId> accepted;
  int rounds = 0;
  while (accepted.size() + 1 < fam->commit_quorum) {
    auto msg = co_await fam->inbox->ReceiveTimeout(config_.retry_interval);
    if (Dead(inc) || fam->inbox->closed()) {
      co_return UnavailableError("site crashed");
    }
    if (msg.has_value()) {
      if (msg->type == TmMsgType::kPaxosAccepted && msg->epoch == fam->replicated_epoch) {
        accepted.insert(msg->from);
      } else if (msg->type == TmMsgType::kCommit) {
        co_await SubordinateCommit(fam);
        co_return OkStatus();
      } else if (msg->type == TmMsgType::kAbort) {
        co_await SubordinateAbort(fam);
        co_return AbortedError("aborted by a takeover coordinator");
      }
      continue;
    }
    ++rounds;
    if (rounds > config_.max_takeover_rounds) {
      // More than F acceptors unreachable: demote to an ordinary blocked
      // participant; takeover resumes when connectivity returns.
      fam->takeover_round = 0;
      site_.sched().Spawn(SubordinateWait(fam->top.family, inc));
      co_return BlockedError("accept quorum unreachable; transaction left prepared");
    }
    // Retransmitted prepares make every participant re-vote to the whole
    // acceptor set, re-feeding any acceptor whose vote copies were lost.
    SendMsgToAll(subs, prepare);
  }

  // Commit point: F+1 durable accepts decide. The commit record is only
  // spooled — the decision survives any F acceptor crashes without it, and a
  // recovering leader re-derives it from the acceptor set.
  std::vector<SiteId> notify = votes.update_subs;
  for (SiteId s : remote_acceptors) {
    if (std::find(votes.update_subs.begin(), votes.update_subs.end(), s) ==
        votes.update_subs.end()) {
      notify.push_back(s);
    }
  }
  log_.Append(LogRecord::Commit(fam->top, notify));
  RecordSpool(fam->top.family, "coord", "paxos.commit");
  if (AtTransition("tm.committed")) {
    co_return UnavailableError("site crashed");
  }
  fam->state = TmTxnState::kCommitted;
  RecordOutcome(fam->top.family, /*committed=*/true);
  NotifyServersDropLocks(*fam);
  // Notify phase: update subordinates write commit records; read-only
  // acceptors tombstone the outcome and ack immediately.
  site_.sched().Spawn(CoordinatorPhase2(fam->top.family, std::move(notify)));
  co_return OkStatus();
}

Async<void> TranMan::HandlePaxosVote(TmMsg msg) {
  Family* fam = FindFamily(msg.tid.family);
  if (fam == nullptr) {
    co_return;
  }
  fam->paxos_votes[msg.from] = msg.vote;
  co_await TryFormPaxosAccept(msg.tid.family, site_.incarnation());
}

Async<void> TranMan::TryFormPaxosAccept(FamilyId family_id, uint32_t inc) {
  Family* fam = FindFamily(family_id);
  if (fam == nullptr || fam->protocol != CommitProtocol::kPaxos ||
      fam->state != TmTxnState::kPrepared || fam->is_coordinator) {
    co_return;
  }
  if (fam->promised_epoch > 0 || fam->has_replication) {
    co_return;  // A higher ballot exists; ballot 0 may no longer act.
  }
  if (fam->sites.empty() || fam->commit_quorum == 0) {
    co_return;  // No paxos context yet (a vote raced the prepare).
  }
  const std::vector<SiteId> acceptors = PaxosAcceptors(fam->sites, fam->commit_quorum);
  if (std::find(acceptors.begin(), acceptors.end(), site_.id()) == acceptors.end()) {
    co_return;  // Not an acceptor.
  }
  bool any_update = false;
  for (SiteId s : fam->sites) {
    const auto it = fam->paxos_votes.find(s);
    if (it == fam->paxos_votes.end() || it->second == TmVote::kAbort) {
      co_return;  // Incomplete (or doomed): no ballot-0 accept.
    }
    any_update |= it->second == TmVote::kCommit;
  }
  if (!any_update) {
    co_return;  // Entirely read-only: the leader commits trivially.
  }
  // Complete all-yes vote set: form this acceptor's batched ballot-0 accept.
  // has_replication flips before the force so a concurrent vote arrival
  // cannot re-enter.
  fam->has_replication = true;
  fam->replicated_epoch = MakeEpoch(0, fam->coordinator);
  fam->replicated_decision = TmDecision::kCommit;
  const Lsn lsn = log_.Append(LogRecord::Replication(
      fam->top, fam->coordinator, fam->replicated_epoch,
      static_cast<uint8_t>(TmDecision::kCommit), fam->sites, CommitProtocol::kPaxos,
      fam->commit_quorum, fam->abort_quorum));
  if (!co_await DirectForceAt("tm.paxos.accept_force", family_id, lsn)) {
    co_return;
  }
  fam = FindFamily(family_id);
  if (fam == nullptr || Dead(inc)) {
    co_return;
  }
  if (fam->coordinator != site_.id()) {
    TmMsg accepted;
    accepted.type = TmMsgType::kPaxosAccepted;
    accepted.tid = fam->top;
    accepted.epoch = fam->replicated_epoch;
    SendMsg(fam->coordinator, accepted);
  }
}

// --- Subordinate side ----------------------------------------------------------------------

Async<void> TranMan::HandleRemotePrepare(TmMsg msg) {
  const uint32_t inc = site_.incarnation();
  ++counters_.prepares_handled;
  Family* fam = FindFamily(msg.tid.family);

  // Paxos votes go to the whole acceptor set (minus ourselves), derived from
  // the prepare itself so even a retired family can re-vote correctly.
  const auto paxos_vote_targets = [this, &msg]() {
    std::vector<SiteId> targets = PaxosAcceptors(msg.sites, msg.commit_quorum);
    targets.erase(std::remove(targets.begin(), targets.end(), site_.id()), targets.end());
    return targets;
  };
  const auto send_vote = [&](TmMsg vote) {
    if (msg.protocol == CommitProtocol::kPaxos) {
      vote.protocol = CommitProtocol::kPaxos;
      SendMsgToAll(paxos_vote_targets(), vote);
    } else {
      SendMsg(msg.from, vote);
    }
  };

  if (fam != nullptr && fam->state == TmTxnState::kPrepared && !fam->passive_acceptor) {
    // Duplicate prepare: our vote was lost somewhere; re-vote.
    TmMsg vote;
    vote.type = TmMsgType::kVote;
    vote.tid = msg.tid;
    vote.vote = TmVote::kCommit;
    send_vote(std::move(vote));
    co_return;
  }
  if (fam != nullptr && (fam->state == TmTxnState::kCommitted ||
                         fam->state == TmTxnState::kAborted)) {
    co_return;  // Stale retransmission.
  }
  if (fam != nullptr && fam->passive_acceptor) {
    TmMsg vote;
    vote.type = TmMsgType::kVote;
    vote.tid = msg.tid;
    vote.vote = TmVote::kReadOnly;
    send_vote(std::move(vote));
    co_return;
  }
  if (fam != nullptr && fam->committing) {
    // A duplicate prepare raced the one we are already processing (vote /
    // prepare force in flight). Let the first finish; it sends the vote.
    co_return;
  }
  if (fam == nullptr) {
    if (readonly_voted_.contains(msg.tid.family)) {
      TmMsg vote;
      vote.type = TmMsgType::kVote;
      vote.tid = msg.tid;
      vote.vote = TmVote::kReadOnly;
      send_vote(std::move(vote));
      co_return;
    }
    // We know nothing (e.g. our volatile state died): refuse, forcing abort.
    TmMsg vote;
    vote.type = TmMsgType::kVote;
    vote.tid = msg.tid;
    vote.vote = TmVote::kAbort;
    SendMsg(msg.from, vote);
    co_return;
  }

  if (config_.shed_expired_work && msg.deadline > 0 && site_.sched().now() > msg.deadline) {
    // The propagated client deadline passed while this prepare was queued or
    // in flight: refuse it instead of preparing work nobody is waiting for.
    // No commit decision can exist while our vote is outstanding, so an
    // abort vote is safe, and aborting locally releases the locks now.
    ++counters_.deadline_shed;
    fam->committing = true;
    log_.Append(LogRecord::Abort(fam->top));
    RecordSpool(fam->top.family, "sub", "abort");
    co_await CallServersAbort(*fam);
    if (Dead(inc)) {
      co_return;
    }
    TmMsg vote;
    vote.type = TmMsgType::kVote;
    vote.tid = msg.tid;
    vote.vote = TmVote::kAbort;
    SendMsg(msg.from, vote);
    fam->state = TmTxnState::kAborted;
    RecordOutcome(msg.tid.family, /*committed=*/false);
    RetireFamily(msg.tid.family);
    co_return;
  }

  fam->committing = true;
  fam->coordinator = msg.from;
  fam->sites = msg.sites;
  fam->protocol = msg.protocol;
  fam->force_sub_commit = msg.force_subordinate_commit;
  fam->piggyback_ack = msg.piggyback_commit_ack;
  fam->commit_quorum = msg.commit_quorum;
  fam->abort_quorum = msg.abort_quorum;

  const ServerVote local_vote = co_await VoteLocalServers(fam);
  if (Dead(inc)) {
    co_return;
  }
  // Revalidate: the family may have been aborted while we polled the servers.
  fam = FindFamily(msg.tid.family);
  if (fam == nullptr || fam->state != TmTxnState::kActive) {
    co_return;
  }

  if (local_vote == ServerVote::kNo) {
    log_.Append(LogRecord::Abort(fam->top));
    RecordSpool(fam->top.family, "sub", "abort");
    co_await CallServersAbort(*fam);
    if (Dead(inc)) {
      co_return;
    }
    TmMsg vote;
    vote.type = TmMsgType::kVote;
    vote.tid = msg.tid;
    vote.vote = TmVote::kAbort;
    SendMsg(msg.from, vote);
    fam->state = TmTxnState::kAborted;
    RecordOutcome(msg.tid.family, /*committed=*/false);
    RetireFamily(msg.tid.family);
    co_return;
  }

  if (local_vote == ServerVote::kReadOnly) {
    // Read-only optimization: no log records, locks dropped now, and no part
    // in the second (or replication/notify) phase.
    ++counters_.read_only_votes;
    NotifyServersDropLocks(*fam);
    bool lingers = msg.protocol == CommitProtocol::kNonBlocking;
    if (msg.protocol == CommitProtocol::kPaxos) {
      // A read-only site inside the acceptor set must linger: the registrar
      // needs its accept and status answers even though it holds no data.
      const std::vector<SiteId> acceptors = PaxosAcceptors(msg.sites, msg.commit_quorum);
      lingers = std::find(acceptors.begin(), acceptors.end(), site_.id()) != acceptors.end();
    }
    if (lingers) {
      // Linger as a passive acceptor / status responder (change 4).
      fam->passive_acceptor = true;
      fam->state = TmTxnState::kPrepared;
      if (msg.protocol == CommitProtocol::kPaxos) {
        fam->paxos_votes[site_.id()] = TmVote::kReadOnly;
      }
    }
    TmMsg vote;
    vote.type = TmMsgType::kVote;
    vote.tid = msg.tid;
    vote.vote = TmVote::kReadOnly;
    send_vote(std::move(vote));
    if (lingers) {
      if (msg.protocol == CommitProtocol::kPaxos) {
        co_await TryFormPaxosAccept(msg.tid.family, inc);
      }
    } else {
      readonly_voted_.insert(msg.tid.family);
      RetireFamily(msg.tid.family);
    }
    co_return;
  }

  // Update subordinate: force the prepare record (which also hardens all our
  // update records, making this the "one fewer log force" baseline).
  const Lsn prep_lsn = log_.Append(LogRecord::Prepare(fam->top, msg.from, msg.sites,
                                                      msg.protocol, msg.commit_quorum,
                                                      msg.abort_quorum));
  if (!co_await ForceAt("tm.sub.prepare_force", fam->top.family, prep_lsn)) {
    co_return;
  }
  fam = FindFamily(msg.tid.family);
  if (fam == nullptr) {
    co_return;
  }
  if (AtTransition("tm.prepared")) {
    co_return;
  }
  fam->state = TmTxnState::kPrepared;
  fam->inbox = std::make_shared<Channel<TmMsg>>(site_.sched());
  if (msg.protocol == CommitProtocol::kPaxos) {
    fam->paxos_votes[site_.id()] = TmVote::kCommit;
  }

  TmMsg vote;
  vote.type = TmMsgType::kVote;
  vote.tid = msg.tid;
  vote.vote = TmVote::kCommit;
  send_vote(std::move(vote));
  site_.sched().Spawn(SubordinateWait(msg.tid.family, inc));
  if (msg.protocol == CommitProtocol::kPaxos) {
    // Votes that arrived while our prepare force was in flight may have
    // completed the set.
    co_await TryFormPaxosAccept(msg.tid.family, inc);
  }
}

Async<void> TranMan::SubordinateWait(FamilyId family_id, uint32_t inc) {
  int status_rounds = 0;
  uint64_t silent_rounds = 0;
  {
    Family* fam = FindFamily(family_id);
    if (fam != nullptr) {
      ArmStuckWatch(fam);  // Surfaces this family if it never decides.
    }
  }
  while (true) {
    Family* fam = FindFamily(family_id);
    if (fam == nullptr || Dead(inc)) {
      co_return;
    }
    if (fam->state == TmTxnState::kCommitted || fam->state == TmTxnState::kAborted) {
      co_return;
    }
    const bool park =
        (fam->protocol != CommitProtocol::kTwoPhase &&
         fam->takeover_round >= static_cast<uint64_t>(config_.max_takeover_rounds)) ||
        (fam->protocol == CommitProtocol::kTwoPhase && status_rounds >= config_.max_status_rounds);
    std::optional<TmMsg> msg;
    if (park) {
      // Still receptive: a SITE-UP beacon or topology-change probe answer
      // lands here and resumes resolution.
      msg = co_await fam->inbox->Receive();
    } else {
      msg = co_await fam->inbox->ReceiveTimeout(
          Backoff(config_.outcome_timeout, config_.outcome_timeout_max, silent_rounds));
    }
    fam = FindFamily(family_id);
    if (fam == nullptr || Dead(inc)) {
      co_return;
    }
    if (!msg.has_value()) {
      if (fam->inbox->closed()) {
        co_return;
      }
      ++silent_rounds;
      // Silence inside the window of vulnerability.
      if (fam->protocol == CommitProtocol::kTwoPhase) {
        // 2PC: we are blocked; all we can do is ask the coordinator.
        MarkBlocked(fam);
        ++counters_.status_queries;
        ++status_rounds;
        TmMsg req;
        req.type = TmMsgType::kStatusReq;
        req.tid = fam->top;
        SendMsg(fam->coordinator, req);
        continue;
      }
      // NBC/Paxos: become a coordinator (change 2 / leader takeover).
      const bool resolved = fam->protocol == CommitProtocol::kPaxos
                                ? co_await TakeoverPaxos(family_id, inc)
                                : co_await Takeover(family_id, inc);
      if (resolved || Dead(inc)) {
        co_return;
      }
      continue;
    }
    silent_rounds = 0;
    switch (msg->type) {
      case TmMsgType::kCommit:
        co_await SubordinateCommit(fam);
        co_return;
      case TmMsgType::kAbort:
        co_await SubordinateAbort(fam);
        co_return;
      case TmMsgType::kStatusResp: {
        if (msg->state == TmTxnState::kCommitted) {
          co_await SubordinateCommit(fam);
          co_return;
        }
        if (msg->state == TmTxnState::kAborted) {
          co_await SubordinateAbort(fam);  // A definite outcome from anyone.
          co_return;
        }
        if (msg->state == TmTxnState::kUnknown) {
          // Presumed abort — but ONLY on the coordinator's authority: it
          // forgets a transaction only after abort or full completion. A
          // recovered PEER answers unknown for any transaction it never
          // touched (the site-up nudge queries whoever just came back up);
          // treating that as an outcome aborts committed work.
          //
          // Paxos Commit exempts even the coordinator: a read-only leader
          // holds NO durable state before the decision (its ballot-0 accept
          // may have died with it), yet the acceptor set can have committed
          // without it. Only quorum takeover may resolve a paxos family.
          if (msg->from == fam->coordinator &&
              fam->protocol != CommitProtocol::kPaxos) {
            co_await SubordinateAbort(fam);
            co_return;
          }
          continue;  // Amnesia proves nothing here; keep waiting.
        }
        status_rounds = 0;  // Coordinator alive but undecided: keep waiting.
        continue;
      }
      default:
        continue;
    }
  }
}

Async<void> TranMan::SubordinateCommit(Family* fam) {
  const uint32_t inc = site_.incarnation();
  if (fam->state == TmTxnState::kCommitted || fam->state == TmTxnState::kAborted) {
    // Exactly-once sensor: a duplicated or reordered outcome datagram slipped
    // past the dispatch-layer idempotence checks. Count it and apply nothing.
    ++counters_.duplicate_effects;
    co_return;
  }
  ClearBlocked(fam);
  if (AtTransition("tm.committed")) {
    co_return;
  }
  fam->state = TmTxnState::kCommitted;
  RecordOutcome(fam->top.family, /*committed=*/true);
  const FamilyId family_id = fam->top.family;

  if (fam->force_sub_commit) {
    // Unoptimized: force the commit record, then drop locks, then ack.
    const Lsn lsn = log_.Append(LogRecord::Commit(fam->top, {}));
    if (!co_await ForceAt("tm.sub.commit_force", fam->top.family, lsn)) {
      co_return;
    }
    fam = FindFamily(family_id);
    if (fam == nullptr) {
      co_return;
    }
    NotifyServersDropLocks(*fam);
    if (fam->piggyback_ack) {
      site_.sched().Spawn(DelayedCommitAck(family_id, fam->top, fam->coordinator, lsn, inc));
    } else {
      TmMsg ack;
      ack.type = TmMsgType::kCommitAck;
      ack.tid = fam->top;
      SendMsg(fam->coordinator, ack);
      if (fam->protocol == CommitProtocol::kTwoPhase && !fam->heuristic) {
        RetireFamily(family_id);
      }
    }
    co_return;
  }

  // Optimized (Section 3.2): drop locks FIRST, append the commit record
  // without forcing it, and ack only once it is durable — the coordinator's
  // commit record meanwhile guarantees the outcome.
  NotifyServersDropLocks(*fam);
  const Lsn lsn = log_.Append(LogRecord::Commit(fam->top, {}));
  RecordSpool(fam->top.family, "sub", "commit");
  site_.sched().Spawn(DelayedCommitAck(family_id, fam->top, fam->coordinator, lsn, inc));
  co_return;
}

Async<void> TranMan::DelayedCommitAck(FamilyId family_id, Tid top, SiteId coordinator,
                                      Lsn commit_lsn, uint32_t inc) {
  co_await site_.sched().Delay(config_.ack_delay);
  if (Dead(inc)) {
    co_return;
  }
  // Usually free: a group-commit batch or later traffic already hardened it.
  if (!co_await DirectForceAt("tm.sub.ack_force", family_id, commit_lsn)) {
    co_return;
  }
  TmMsg ack;
  ack.type = TmMsgType::kCommitAck;
  ack.tid = top;
  // The ack is never on anyone's critical path: let it ride other traffic.
  QueueOffPath(coordinator, ack);
  Family* fam = FindFamily(family_id);
  if (fam != nullptr && fam->protocol == CommitProtocol::kTwoPhase && !fam->heuristic) {
    RetireFamily(family_id);
  }
}

Async<void> TranMan::SubordinateAbort(Family* fam) {
  const uint32_t inc = site_.incarnation();
  if (fam->state == TmTxnState::kCommitted || fam->state == TmTxnState::kAborted) {
    ++counters_.duplicate_effects;  // See SubordinateCommit: exactly-once sensor.
    co_return;
  }
  ClearBlocked(fam);
  const FamilyId family_id = fam->top.family;
  log_.Append(LogRecord::Abort(fam->top));
  RecordSpool(family_id, "sub", "abort");
  co_await CallServersAbort(*fam);
  if (Dead(inc)) {
    co_return;
  }
  fam = FindFamily(family_id);
  if (fam == nullptr) {
    co_return;
  }
  if (AtTransition("tm.aborted")) {
    co_return;
  }
  fam->state = TmTxnState::kAborted;
  RecordOutcome(fam->top.family, /*committed=*/false);
  if (fam->protocol == CommitProtocol::kTwoPhase && !fam->heuristic) {
    RetireFamily(family_id);
  }
  co_return;
}

Async<void> TranMan::OrphanWatch(FamilyId family_id, uint32_t inc) {
  int failed_probes = 0;
  while (true) {
    co_await site_.sched().Delay(config_.orphan_check_interval);
    if (Dead(inc)) {
      co_return;
    }
    Family* fam = FindFamily(family_id);
    if (fam == nullptr || fam->state != TmTxnState::kActive || fam->committing) {
      co_return;  // Resolved, or the commit protocol now owns the family.
    }
    const SiteId origin = family_id.origin;
    RpcResult result = co_await comman_.netmsg().Call(
        origin, kTranManServiceName, kTmQueryStatus, EncodeTid(fam->top),
        RpcContext{site_.id(), fam->top}, /*via_comman=*/false);
    if (Dead(inc)) {
      co_return;
    }
    fam = FindFamily(family_id);
    if (fam == nullptr || fam->state != TmTxnState::kActive || fam->committing) {
      co_return;
    }
    bool presume_dead = false;
    if (!result.status.ok()) {
      presume_dead = ++failed_probes >= config_.max_orphan_probes;
    } else {
      ByteReader r(result.body);
      const auto state = static_cast<TmTxnState>(r.U8());
      if (state == TmTxnState::kUnknown || state == TmTxnState::kAborted) {
        presume_dead = true;  // Origin has forgotten or aborted: abort here too.
      } else {
        failed_probes = 0;  // Alive and still active: keep watching.
      }
    }
    if (presume_dead) {
      // Safe: we never prepared, so the transaction cannot have committed.
      fam->committing = true;
      log_.Append(LogRecord::Abort(fam->top));
      RecordSpool(fam->top.family, "sub", "abort");
      co_await CallServersAbort(*fam);
      if (Dead(inc)) {
        co_return;
      }
      fam = FindFamily(family_id);
      if (fam != nullptr) {
        fam->state = TmTxnState::kAborted;
        RecordOutcome(family_id, /*committed=*/false);
        ++counters_.orphans_aborted;
        RetireFamily(family_id);
      }
      co_return;
    }
  }
}

// --- Takeover (NBC, change 2) -----------------------------------------------------------------

Async<bool> TranMan::Takeover(FamilyId family_id, uint32_t inc) {
  Family* fam = FindFamily(family_id);
  if (fam == nullptr) {
    co_return true;
  }
  ++counters_.takeovers;
  const uint64_t epoch = NextEpoch(fam);
  std::vector<SiteId> others;
  for (SiteId s : fam->sites) {
    if (s != site_.id()) {
      others.push_back(s);
    }
  }
  const uint32_t n = static_cast<uint32_t>(fam->sites.size());
  const uint32_t qc = fam->commit_quorum != 0 ? fam->commit_quorum : n / 2 + 1;
  const uint32_t qa = fam->abort_quorum != 0 ? fam->abort_quorum : n + 1 - qc;

  // Status phase: read the participants' states (and take their promises).
  TmMsg req;
  req.type = TmMsgType::kStatusReq;
  req.tid = fam->top;
  req.epoch = epoch;
  SendMsgToAll(others, req);

  std::unordered_map<SiteId, TmMsg> responses;
  {
    const SimTime deadline = site_.sched().now() + 2 * config_.retry_interval;
    while (site_.sched().now() < deadline &&
           responses.size() < others.size()) {
      auto msg = co_await fam->inbox->ReceiveTimeout(deadline - site_.sched().now());
      if (Dead(inc)) {
        co_return true;
      }
      fam = FindFamily(family_id);
      if (fam == nullptr || fam->inbox->closed()) {
        co_return true;
      }
      if (!msg.has_value()) {
        break;
      }
      if (msg->type == TmMsgType::kStatusResp) {
        responses[msg->from] = *msg;
      } else if (msg->type == TmMsgType::kCommit) {
        co_await SubordinateCommit(fam);
        co_return true;
      } else if (msg->type == TmMsgType::kAbort) {
        co_await SubordinateAbort(fam);
        co_return true;
      }
    }
  }

  // Adopt any already-final outcome.
  for (const auto& [from, resp] : responses) {
    if (resp.state == TmTxnState::kCommitted) {
      co_await SubordinateCommit(fam);
      TmMsg commit;
      commit.type = TmMsgType::kCommit;
      commit.tid = fam->top;
      SendMsgToAll(others, commit);
      co_return true;
    }
    if (resp.state == TmTxnState::kAborted) {
      co_await SubordinateAbort(fam);
      TmMsg abort;
      abort.type = TmMsgType::kAbort;
      abort.tid = fam->top;
      SendMsgToAll(others, abort);
      co_return true;
    }
  }

  // Choose a proposal: the highest-epoch replicated decision wins; with no
  // replication evidence anywhere, abort is the safe default.
  TmDecision proposal = TmDecision::kAbort;
  uint64_t best_epoch = 0;
  bool any_replication = false;
  auto consider = [&](bool has, uint64_t rep_epoch, TmDecision dec) {
    if (has && (!any_replication || rep_epoch > best_epoch)) {
      any_replication = true;
      best_epoch = rep_epoch;
      proposal = dec;
    }
  };
  consider(fam->has_replication, fam->replicated_epoch, fam->replicated_decision);
  uint32_t abort_static_support = 0;  // kUnknown/read-only: can never join a commit quorum.
  uint32_t prepared_count = 0;
  for (const auto& [from, resp] : responses) {
    consider(resp.has_replication, resp.replicated_epoch, resp.replicated_decision);
    if (resp.state == TmTxnState::kUnknown) {
      ++abort_static_support;
    } else if (resp.state == TmTxnState::kPrepared) {
      ++prepared_count;
    }
  }

  // Safety: the read (promise) set must intersect every quorum of the other
  // decision. With Qc + Qa = n + 1 that means max(Qc, Qa) responses incl. us.
  const uint32_t read_set = static_cast<uint32_t>(responses.size()) + 1;
  if (read_set < std::max(qc, qa)) {
    // No reachable quorum: we are blocked too (NBC's minority side), just
    // like a 2PC subordinate in the window of vulnerability.
    MarkBlocked(fam);
    co_await site_.sched().Delay(
        Backoff(config_.takeover_backoff, config_.takeover_backoff_max, fam->takeover_round));
    co_return false;  // Not enough of the cohort reachable; stay blocked.
  }

  const uint32_t needed = proposal == TmDecision::kCommit ? qc : qa;

  // Accept our own proposal durably.
  fam->promised_epoch = std::max(fam->promised_epoch, epoch);
  fam->has_replication = true;
  fam->replicated_epoch = epoch;
  fam->replicated_decision = proposal;
  const Lsn rep_lsn = log_.Append(LogRecord::Replication(fam->top, site_.id(), epoch,
                                                         static_cast<uint8_t>(proposal),
                                                         fam->sites, fam->protocol,
                                                         fam->commit_quorum, fam->abort_quorum));
  if (!co_await DirectForceAt("tm.takeover.replicate_force", fam->top.family, rep_lsn)) {
    co_return true;
  }
  fam = FindFamily(family_id);
  if (fam == nullptr) {
    co_return true;
  }

  TmMsg replicate;
  replicate.type = TmMsgType::kReplicate;
  replicate.tid = fam->top;
  replicate.epoch = epoch;
  replicate.decision = proposal;
  std::vector<SiteId> acceptors;
  for (const auto& [from, resp] : responses) {
    if (resp.state == TmTxnState::kPrepared) {
      acceptors.push_back(from);
    }
  }
  SendMsgToAll(acceptors, replicate);

  uint32_t support = 1;  // Ourselves.
  if (proposal == TmDecision::kAbort) {
    support += abort_static_support;
  }
  {
    const SimTime deadline = site_.sched().now() + 2 * config_.retry_interval;
    std::set<SiteId> acked;
    while (support + acked.size() < needed && site_.sched().now() < deadline) {
      auto msg = co_await fam->inbox->ReceiveTimeout(deadline - site_.sched().now());
      if (Dead(inc)) {
        co_return true;
      }
      fam = FindFamily(family_id);
      if (fam == nullptr || fam->inbox->closed()) {
        co_return true;
      }
      if (!msg.has_value()) {
        break;
      }
      if (msg->type == TmMsgType::kReplicateAck && msg->epoch == epoch) {
        acked.insert(msg->from);
      } else if (msg->type == TmMsgType::kCommit) {
        co_await SubordinateCommit(fam);
        co_return true;
      } else if (msg->type == TmMsgType::kAbort) {
        co_await SubordinateAbort(fam);
        co_return true;
      }
    }
    support += static_cast<uint32_t>(acked.size());
  }

  if (support < needed) {
    MarkBlocked(fam);
    co_await site_.sched().Delay(
        Backoff(config_.takeover_backoff, config_.takeover_backoff_max, fam->takeover_round));
    co_return false;  // Quorum not reached this round.
  }

  // Decision point.
  if (proposal == TmDecision::kCommit) {
    const Lsn commit_lsn = log_.Append(LogRecord::Commit(fam->top, {}));
    if (!co_await DirectForceAt("tm.takeover.commit_force", fam->top.family, commit_lsn)) {
      co_return true;
    }
    fam = FindFamily(family_id);
    if (fam == nullptr) {
      co_return true;
    }
    ClearBlocked(fam);
    if (AtTransition("tm.committed")) {
      co_return true;
    }
    fam->state = TmTxnState::kCommitted;
    RecordOutcome(fam->top.family, /*committed=*/true);
    NotifyServersDropLocks(*fam);
    TmMsg commit;
    commit.type = TmMsgType::kCommit;
    commit.tid = fam->top;
    SendMsgToAll(others, commit);
  } else {
    log_.Append(LogRecord::Abort(fam->top));
    RecordSpool(fam->top.family, "takeover", "abort");
    co_await CallServersAbort(*fam);
    if (Dead(inc)) {
      co_return true;
    }
    fam = FindFamily(family_id);
    if (fam == nullptr) {
      co_return true;
    }
    ClearBlocked(fam);
    if (AtTransition("tm.aborted")) {
      co_return true;
    }
    fam->state = TmTxnState::kAborted;
    RecordOutcome(fam->top.family, /*committed=*/false);
    TmMsg abort;
    abort.type = TmMsgType::kAbort;
    abort.tid = fam->top;
    SendMsgToAll(others, abort);
  }
  co_return true;
}

// --- Takeover (Paxos Commit leader promotion) -------------------------------------------------

Async<bool> TranMan::TakeoverPaxos(FamilyId family_id, uint32_t inc) {
  Family* fam = FindFamily(family_id);
  if (fam == nullptr) {
    co_return true;
  }
  ++counters_.takeovers;
  const uint64_t epoch = NextEpoch(fam);
  std::vector<SiteId> others;
  for (SiteId s : fam->sites) {
    if (s != site_.id()) {
      others.push_back(s);
    }
  }
  const uint32_t n = static_cast<uint32_t>(fam->sites.size());
  const uint32_t qc = fam->commit_quorum != 0 ? fam->commit_quorum : n / 2 + 1;
  const uint32_t qa = fam->abort_quorum != 0 ? fam->abort_quorum : qc;
  const std::vector<SiteId> acceptors = PaxosAcceptors(fam->sites, qc);
  const bool self_acceptor =
      std::find(acceptors.begin(), acceptors.end(), site_.id()) != acceptors.end();

  // Status phase: read the participants' states (and take acceptor promises —
  // the protocol marker tells family-less acceptors to promise too, turning
  // their kUnknown into countable "no accepted value" testimony).
  TmMsg req;
  req.type = TmMsgType::kStatusReq;
  req.tid = fam->top;
  req.epoch = epoch;
  req.protocol = CommitProtocol::kPaxos;
  SendMsgToAll(others, req);

  std::unordered_map<SiteId, TmMsg> responses;
  {
    const SimTime deadline = site_.sched().now() + 2 * config_.retry_interval;
    while (site_.sched().now() < deadline && responses.size() < others.size()) {
      auto msg = co_await fam->inbox->ReceiveTimeout(deadline - site_.sched().now());
      if (Dead(inc)) {
        co_return true;
      }
      fam = FindFamily(family_id);
      if (fam == nullptr || fam->inbox->closed()) {
        co_return true;
      }
      if (!msg.has_value()) {
        break;
      }
      if (msg->type == TmMsgType::kStatusResp) {
        responses[msg->from] = *msg;
      } else if (msg->type == TmMsgType::kCommit) {
        co_await SubordinateCommit(fam);
        co_return true;
      } else if (msg->type == TmMsgType::kAbort) {
        co_await SubordinateAbort(fam);
        co_return true;
      }
    }
  }

  // Adopt any already-final outcome (every paxos participant keeps a
  // tombstone, so late leaders find the truth instead of re-deciding).
  for (const auto& [from, resp] : responses) {
    if (resp.state == TmTxnState::kCommitted) {
      co_await SubordinateCommit(fam);
      TmMsg commit;
      commit.type = TmMsgType::kCommit;
      commit.tid = fam->top;
      SendMsgToAll(others, commit);
      co_return true;
    }
    if (resp.state == TmTxnState::kAborted) {
      co_await SubordinateAbort(fam);
      TmMsg abort;
      abort.type = TmMsgType::kAbort;
      abort.tid = fam->top;
      SendMsgToAll(others, abort);
      co_return true;
    }
  }

  // Read quorum: F+1 acceptors testifying about ballot 0, counting ourselves
  // if we are one. Two kinds of testimony count: a prepared acceptor (its
  // response carries a promise at `epoch` plus any accepted value), and a
  // promised-empty acceptor — no family, but it recorded a promise at `epoch`
  // when it answered, so "no accepted value" now stays true. A bare kUnknown
  // (no promise) never counts: an amnesiac acceptor can no longer accept
  // anything, but neither does it testify about ballot 0.
  std::vector<SiteId> prepared_acceptors;
  std::vector<SiteId> promised_empty;
  for (const auto& [from, resp] : responses) {
    if (std::find(acceptors.begin(), acceptors.end(), from) == acceptors.end()) {
      continue;
    }
    if (resp.state == TmTxnState::kPrepared) {
      prepared_acceptors.push_back(from);
    } else if (resp.state == TmTxnState::kUnknown && resp.promised) {
      promised_empty.push_back(from);
    }
  }
  const uint32_t read_set = static_cast<uint32_t>(prepared_acceptors.size()) +
                            static_cast<uint32_t>(promised_empty.size()) +
                            (self_acceptor ? 1 : 0);
  if (read_set < qc) {
    MarkBlocked(fam);
    co_await site_.sched().Delay(
        Backoff(config_.takeover_backoff, config_.takeover_backoff_max, fam->takeover_round));
    co_return false;
  }

  // Proposal: the highest-ballot accepted decision in the read set wins; with
  // no accept anywhere, abort is the safe default (a commit accept quorum
  // would intersect our read set in at least one acceptor).
  TmDecision proposal = TmDecision::kAbort;
  uint64_t best_epoch = 0;
  bool any_replication = false;
  auto consider = [&](bool has, uint64_t rep_epoch, TmDecision dec) {
    if (has && (!any_replication || rep_epoch > best_epoch)) {
      any_replication = true;
      best_epoch = rep_epoch;
      proposal = dec;
    }
  };
  if (self_acceptor) {
    consider(fam->has_replication, fam->replicated_epoch, fam->replicated_decision);
  }
  for (const auto& [from, resp] : responses) {
    if (std::find(acceptors.begin(), acceptors.end(), from) != acceptors.end()) {
      consider(resp.has_replication, resp.replicated_epoch, resp.replicated_decision);
    }
  }

  if (fam->promised_epoch > epoch) {
    // A newer leader read us while we gathered status; defer to it.
    MarkBlocked(fam);
    co_await site_.sched().Delay(
        Backoff(config_.takeover_backoff, config_.takeover_backoff_max, fam->takeover_round));
    co_return false;
  }

  const uint32_t needed = proposal == TmDecision::kCommit ? qc : qa;

  // Accept phase at this ballot: our own durable accept (if we are an
  // acceptor) plus REPLICATEs to the prepared acceptors. Only real forced
  // accepts count toward the quorum — Paxos has no static support.
  fam->promised_epoch = std::max(fam->promised_epoch, epoch);
  uint32_t support = 0;
  if (self_acceptor) {
    fam->has_replication = true;
    fam->replicated_epoch = epoch;
    fam->replicated_decision = proposal;
    const Lsn rep_lsn = log_.Append(LogRecord::Replication(
        fam->top, site_.id(), epoch, static_cast<uint8_t>(proposal), fam->sites,
        CommitProtocol::kPaxos, qc, qa));
    if (!co_await DirectForceAt("tm.takeover.replicate_force", fam->top.family, rep_lsn)) {
      co_return true;
    }
    fam = FindFamily(family_id);
    if (fam == nullptr) {
      co_return true;
    }
    support = 1;
  }

  TmMsg replicate;
  replicate.type = TmMsgType::kReplicate;
  replicate.tid = fam->top;
  replicate.epoch = epoch;
  replicate.decision = proposal;
  replicate.commit_quorum = qc;
  replicate.abort_quorum = qa;
  // Promised-empty acceptors materialize a passive-acceptor family from this
  // message (HandleReplicate), so it must carry the participant set.
  replicate.sites = fam->sites;
  std::vector<SiteId> replicate_targets = prepared_acceptors;
  replicate_targets.insert(replicate_targets.end(), promised_empty.begin(),
                           promised_empty.end());
  SendMsgToAll(replicate_targets, replicate);

  {
    const SimTime deadline = site_.sched().now() + 2 * config_.retry_interval;
    std::set<SiteId> acked;
    while (support + acked.size() < needed && site_.sched().now() < deadline) {
      auto msg = co_await fam->inbox->ReceiveTimeout(deadline - site_.sched().now());
      if (Dead(inc)) {
        co_return true;
      }
      fam = FindFamily(family_id);
      if (fam == nullptr || fam->inbox->closed()) {
        co_return true;
      }
      if (!msg.has_value()) {
        break;
      }
      if (msg->type == TmMsgType::kReplicateAck && msg->epoch == epoch) {
        acked.insert(msg->from);
      } else if (msg->type == TmMsgType::kCommit) {
        co_await SubordinateCommit(fam);
        co_return true;
      } else if (msg->type == TmMsgType::kAbort) {
        co_await SubordinateAbort(fam);
        co_return true;
      }
    }
    support += static_cast<uint32_t>(acked.size());
  }

  if (support < needed) {
    MarkBlocked(fam);
    co_await site_.sched().Delay(
        Backoff(config_.takeover_backoff, config_.takeover_backoff_max, fam->takeover_round));
    co_return false;
  }

  // Decision point: the accept quorum at this ballot is durable, so (unlike
  // NBC takeover) the commit record is only spooled, mirroring the leader.
  if (proposal == TmDecision::kCommit) {
    ClearBlocked(fam);
    log_.Append(LogRecord::Commit(fam->top, {}));
    RecordSpool(fam->top.family, "takeover", "paxos.commit");
    if (AtTransition("tm.committed")) {
      co_return true;
    }
    fam->state = TmTxnState::kCommitted;
    RecordOutcome(fam->top.family, /*committed=*/true);
    NotifyServersDropLocks(*fam);
    TmMsg commit;
    commit.type = TmMsgType::kCommit;
    commit.tid = fam->top;
    SendMsgToAll(others, commit);
  } else {
    log_.Append(LogRecord::Abort(fam->top));
    RecordSpool(fam->top.family, "takeover", "abort");
    co_await CallServersAbort(*fam);
    if (Dead(inc)) {
      co_return true;
    }
    fam = FindFamily(family_id);
    if (fam == nullptr) {
      co_return true;
    }
    ClearBlocked(fam);
    if (AtTransition("tm.aborted")) {
      co_return true;
    }
    fam->state = TmTxnState::kAborted;
    RecordOutcome(fam->top.family, /*committed=*/false);
    TmMsg abort;
    abort.type = TmMsgType::kAbort;
    abort.tid = fam->top;
    SendMsgToAll(others, abort);
  }
  co_return true;
}

// --- Stateless-ish message handlers ---------------------------------------------------------

Async<void> TranMan::HandleReplicate(TmMsg msg) {
  Family* fam = FindFamily(msg.tid.family);
  if (fam == nullptr) {
    // A takeover leader counted our promised-empty status answer and now
    // replicates its decision through us: materialize the passive-acceptor
    // family the promise reserved. Without a recorded promise we never
    // testified, so refuse and let the leader find a real quorum.
    const auto it = orphan_promises_.find(msg.tid.family);
    if (it == orphan_promises_.end() || msg.epoch < it->second || msg.sites.empty()) {
      co_return;
    }
    fam = CreateFamily(msg.tid);  // Consumes the promise into promised_epoch.
    fam->state = TmTxnState::kPrepared;
    fam->committing = true;
    fam->passive_acceptor = true;
    fam->protocol = CommitProtocol::kPaxos;
    fam->coordinator = msg.sites.front();
    fam->sites = msg.sites;
    fam->inbox = std::make_shared<Channel<TmMsg>>(site_.sched());
  }
  if (fam->state != TmTxnState::kPrepared) {
    co_return;
  }
  if (msg.epoch < fam->promised_epoch || msg.epoch < fam->replicated_epoch) {
    co_return;  // Promised a newer coordinator; refuse.
  }
  fam->promised_epoch = msg.epoch;
  fam->has_replication = true;
  fam->replicated_epoch = msg.epoch;
  fam->replicated_decision = msg.decision;
  if (msg.commit_quorum != 0) {
    fam->commit_quorum = msg.commit_quorum;
    fam->abort_quorum = msg.abort_quorum;
  }
  const Lsn lsn = log_.Append(LogRecord::Replication(fam->top, msg.from, msg.epoch,
                                                     static_cast<uint8_t>(msg.decision),
                                                     fam->sites, fam->protocol,
                                                     fam->commit_quorum, fam->abort_quorum));
  if (!co_await DirectForceAt("tm.accept.replicate_force", fam->top.family, lsn)) {
    co_return;
  }
  TmMsg ack;
  ack.type = TmMsgType::kReplicateAck;
  ack.tid = msg.tid;
  ack.epoch = msg.epoch;
  SendMsg(msg.from, ack);
}

Async<void> TranMan::HandleStatusReq(TmMsg msg) {
  Family* fam = FindFamily(msg.tid.family);
  TmMsg resp;
  resp.type = TmMsgType::kStatusResp;
  resp.tid = msg.tid;
  resp.epoch = msg.epoch;
  if (fam == nullptr) {
    resp.state = TmTxnState::kUnknown;  // Presumed abort.
    if (msg.protocol == CommitProtocol::kPaxos && msg.epoch > 0) {
      // A Paxos takeover read for a family we have never heard of. Unlike
      // 2PC this answer will be COUNTED (as "no accepted value"), so it must
      // double as a ballot promise: record it so a late-arriving ballot-0
      // vote set can no longer form an accept here behind the leader's back.
      uint64_t& promised = orphan_promises_[msg.tid.family];
      promised = std::max(promised, msg.epoch);
      resp.promised = true;
    }
  } else {
    resp.state = fam->state;
    resp.has_replication = fam->has_replication;
    resp.replicated_epoch = fam->replicated_epoch;
    resp.replicated_decision = fam->replicated_decision;
    if (fam->state == TmTxnState::kPrepared && msg.epoch > fam->promised_epoch) {
      fam->promised_epoch = msg.epoch;  // Promise (volatile).
    }
  }
  SendMsg(msg.from, resp);
  co_return;
}

Async<void> TranMan::HandleCommitForUnknown(TmMsg msg) {
  // We finished this transaction long ago and forgot it; the coordinator is
  // still retrying because our ack was lost. Ack blindly.
  TmMsg ack;
  ack.type = TmMsgType::kCommitAck;
  ack.tid = msg.tid;
  SendMsg(msg.from, ack);
  co_return;
}

Async<void> TranMan::HandleAbortMsg(TmMsg msg) {
  Family* fam = FindFamily(msg.tid.family);
  if (fam == nullptr) {
    co_return;
  }
  if (fam->state == TmTxnState::kCommitted && fam->heuristic) {
    ++counters_.heuristic_damage;  // Guessed COMMIT; the real outcome is ABORT.
    CTRACE("[%8.1fms] %s HEURISTIC DAMAGE: committed %s but coordinator aborted",
           ToMs(site_.sched().now()), ToString(site_.id()).c_str(),
           ToString(msg.tid).c_str());
    co_return;
  }
  if (fam->state == TmTxnState::kCommitted || fam->state == TmTxnState::kAborted) {
    co_return;
  }
  if (fam->passive_acceptor) {
    fam->state = TmTxnState::kAborted;  // Tombstone only; no locks, no data.
    co_return;
  }
  if (fam->state == TmTxnState::kPrepared && fam->inbox && !fam->inbox->closed()) {
    fam->inbox->Send(std::move(msg));  // The waiting subordinate decides.
    co_return;
  }
  // Active family ordered to abort (the distributed abort protocol): undo and
  // diffuse to the sites WE know about — the aborter may have had incomplete
  // knowledge (paper, Section 3.1 / reference [7]).
  const uint32_t inc = site_.incarnation();
  fam->committing = true;
  log_.Append(LogRecord::Abort(fam->top));
  RecordSpool(fam->top.family, "sub", "abort");
  co_await CallServersAbort(*fam);
  if (Dead(inc)) {
    co_return;
  }
  fam = FindFamily(msg.tid.family);
  if (fam == nullptr) {
    co_return;
  }
  std::vector<SiteId> known = comman_.KnownSites(msg.tid.family);
  TmMsg forward;
  forward.type = TmMsgType::kAbort;
  forward.tid = msg.tid;
  for (SiteId s : known) {
    if (s != msg.from) {
      SendMsg(s, forward);
    }
  }
  fam->state = TmTxnState::kAborted;
  RecordOutcome(msg.tid.family, /*committed=*/false);
  RetireFamily(msg.tid.family);
}

// --- Nested transactions -------------------------------------------------------------------

Async<RpcResult> TranMan::HandleNestedCommit(const Tid& tid) {
  Family* fam = FindFamily(tid.family);
  if (fam == nullptr || !fam->active_nested.contains(tid.serial)) {
    co_return RpcResult{NotFoundError("nested transaction not active"), {}};
  }
  // All children must be finished first.
  for (const auto& [serial, parent] : fam->nested_parent) {
    if (parent == tid.serial && fam->active_nested.contains(serial)) {
      co_return RpcResult{FailedPreconditionError("nested children still active"), {}};
    }
  }
  Tid parent = tid;
  parent.serial = fam->nested_parent.at(tid.serial);
  parent.parent_serial = 0;

  // Anti-inherit locally and at every site the family has touched.
  std::vector<Async<RpcResult>> calls;
  for (const auto& server : fam->local_servers) {
    calls.push_back(site_.CallLocal(server, kSrvNestedCommit,
                                    EncodeNestedCommitRequest(tid, parent),
                                    RpcContext{site_.id(), tid}, /*to_data_server=*/false));
  }
  if (!calls.empty()) {
    co_await JoinAll(site_.sched(), std::move(calls));
  }
  fam = FindFamily(tid.family);
  if (fam == nullptr) {
    co_return RpcResult{UnavailableError("family vanished"), {}};
  }
  co_await ForwardNestedToRemotes(fam, kTmNestedCommitRemote,
                                  EncodeNestedCommitRequest(tid, parent));
  fam = FindFamily(tid.family);
  if (fam != nullptr) {
    fam->active_nested.erase(tid.serial);
  }
  co_return RpcResult{OkStatus(), {}};
}

Async<RpcResult> TranMan::HandleNestedAbort(const Tid& tid) {
  Family* fam = FindFamily(tid.family);
  if (fam == nullptr || !fam->active_nested.contains(tid.serial)) {
    co_return RpcResult{NotFoundError("nested transaction not active"), {}};
  }
  // Victim set: this transaction plus all its descendants (their committed
  // effects were anti-inherited upward only as far as aborted ancestors).
  std::vector<uint32_t> victims{tid.serial};
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& [serial, parent] : fam->nested_parent) {
      if (std::find(victims.begin(), victims.end(), parent) != victims.end() &&
          std::find(victims.begin(), victims.end(), serial) == victims.end()) {
        victims.push_back(serial);
        grew = true;
      }
    }
  }
  std::vector<Async<RpcResult>> calls;
  for (const auto& server : fam->local_servers) {
    calls.push_back(site_.CallLocal(server, kSrvAbortSubtree,
                                    EncodeAbortSubtreeRequest(fam->top, victims),
                                    RpcContext{site_.id(), tid}, /*to_data_server=*/false));
  }
  if (!calls.empty()) {
    co_await JoinAll(site_.sched(), std::move(calls));
  }
  fam = FindFamily(tid.family);
  if (fam == nullptr) {
    co_return RpcResult{UnavailableError("family vanished"), {}};
  }
  co_await ForwardNestedToRemotes(fam, kTmAbortSubtreeRemote,
                                  EncodeAbortSubtreeRequest(fam->top, victims));
  fam = FindFamily(tid.family);
  if (fam != nullptr) {
    for (uint32_t serial : victims) {
      fam->active_nested.erase(serial);
    }
  }
  // Counted but NOT routed through RecordOutcome: a nested-subtree abort is
  // not a family outcome — the family lives on and decides later.
  ++counters_.aborted;
  co_return RpcResult{OkStatus(), {}};
}

Async<void> TranMan::ForwardNestedToRemotes(Family* fam, uint32_t method, Bytes body) {
  std::vector<SiteId> remotes = comman_.KnownSites(fam->top.family);
  const Tid top = fam->top;
  for (SiteId remote : remotes) {
    // Off the critical path: use the reliable RPC transport.
    co_await comman_.netmsg().Call(remote, kTranManServiceName, method, body,
                                   RpcContext{site_.id(), top}, /*via_comman=*/false);
  }
}

Async<RpcResult> TranMan::HandleNestedCommitRemote(const Tid& child, const Tid& parent) {
  Family* fam = FindFamily(child.family);
  if (fam == nullptr) {
    co_return RpcResult{OkStatus(), {}};  // Nothing of this family here.
  }
  std::vector<Async<RpcResult>> calls;
  for (const auto& server : fam->local_servers) {
    calls.push_back(site_.CallLocal(server, kSrvNestedCommit,
                                    EncodeNestedCommitRequest(child, parent),
                                    RpcContext{site_.id(), child}, /*to_data_server=*/false));
  }
  if (!calls.empty()) {
    co_await JoinAll(site_.sched(), std::move(calls));
  }
  co_return RpcResult{OkStatus(), {}};
}

Async<RpcResult> TranMan::HandleAbortSubtreeRemote(const Tid& top,
                                                   std::vector<uint32_t> serials) {
  Family* fam = FindFamily(top.family);
  if (fam == nullptr) {
    co_return RpcResult{OkStatus(), {}};
  }
  std::vector<Async<RpcResult>> calls;
  for (const auto& server : fam->local_servers) {
    calls.push_back(site_.CallLocal(server, kSrvAbortSubtree,
                                    EncodeAbortSubtreeRequest(top, serials),
                                    RpcContext{site_.id(), top}, /*to_data_server=*/false));
  }
  if (!calls.empty()) {
    co_await JoinAll(site_.sched(), std::move(calls));
  }
  co_return RpcResult{OkStatus(), {}};
}

// --- Recovery integration --------------------------------------------------------------------

void TranMan::RestoreSubordinate(RestoredSubordinate restored) {
  Family* fam = FindFamily(restored.tid.family);
  if (fam == nullptr) {
    fam = CreateFamily(restored.tid);
  }
  fam->state = TmTxnState::kPrepared;
  fam->committing = true;
  fam->coordinator = restored.coordinator;
  fam->sites = std::move(restored.sites);
  fam->protocol = restored.protocol;
  fam->commit_quorum = restored.commit_quorum;
  fam->abort_quorum = restored.abort_quorum;
  fam->has_replication = restored.has_replication;
  fam->replicated_epoch = restored.replicated_epoch;
  fam->replicated_decision = restored.replicated_decision;
  fam->local_servers = std::move(restored.local_servers);
  // Default to the safe, optimized variant flags; the coordinator's retried
  // COMMIT carries no flags, and ack-after-durable is always correct.
  fam->force_sub_commit = false;
  fam->piggyback_ack = true;
  fam->inbox = std::make_shared<Channel<TmMsg>>(site_.sched());
  site_.sched().Spawn(SubordinateWait(restored.tid.family, site_.incarnation()));
}

void TranMan::RestoreCoordinator(const Tid& tid, std::vector<SiteId> pending_subs,
                                 std::vector<std::string> local_servers, CommitOptions options) {
  Family* fam = FindFamily(tid.family);
  if (fam == nullptr) {
    fam = CreateFamily(tid);
  }
  fam->state = TmTxnState::kCommitted;
  fam->committing = true;
  fam->is_coordinator = true;
  fam->coordinator = site_.id();
  fam->protocol = options.protocol;
  fam->force_sub_commit = options.force_subordinate_commit;
  fam->piggyback_ack = options.piggyback_commit_ack;
  fam->local_servers = std::move(local_servers);
  fam->inbox = std::make_shared<Channel<TmMsg>>(site_.sched());
  RecordOutcome(tid.family, /*committed=*/true);
  site_.sched().Spawn(CoordinatorPhase2(tid.family, std::move(pending_subs)));
}

void TranMan::RestoreTombstone(const Tid& tid, TmTxnState outcome) {
  Family* fam = FindFamily(tid.family);
  if (fam == nullptr) {
    fam = CreateFamily(tid);
  }
  fam->state = outcome;
  fam->committing = true;
}

}  // namespace camelot
