// TranMan: the Camelot transaction manager (the subject of the paper).
//
// Implements, per site:
//   - begin / commit / abort / join for arbitrarily nested, distributed
//     transaction families (Moss model);
//   - presumed-abort two-phase commit with the Section 3.2 optimization
//     selectable per commit call (subordinate commit-record force and
//     commit-ack piggybacking are independent switches);
//   - the Section 3.3 non-blocking three-phase commitment protocol with a
//     replication phase, quorum consensus, timeout-driven coordinator
//     takeover, and tolerance of multiple simultaneous coordinators;
//   - the read-only optimization for both protocols (read-only subordinates
//     write no log records and skip all later phases);
//   - the distributed abort protocol (works with incomplete knowledge by
//     diffusion through each site's ComMan list);
//   - a worker-thread pool through which every protocol event passes
//     (Section 3.4), so thread-count experiments measure real queueing;
//   - datagram timeout/retry with idempotent handlers (TranMans bypass the
//     ComMan and talk raw datagrams, per the paper's footnote 1).
//
// Blocking semantics: a 2PC subordinate that loses its coordinator during the
// window of vulnerability stays prepared, holding locks, periodically asking
// the coordinator for status (observable via IsBlocked). The non-blocking
// protocol instead elects itself coordinator and resolves via quorum.
#ifndef SRC_TRANMAN_TRANMAN_H_
#define SRC_TRANMAN_TRANMAN_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/failpoint.h"
#include "src/comman/comman.h"
#include "src/ipc/site.h"
#include "src/net/network.h"
#include "src/sim/channel.h"
#include "src/tranman/local_api.h"
#include "src/tranman/messages.h"
#include "src/tranman/worker_pool.h"
#include "src/wal/stable_log.h"

namespace camelot {

struct TranManConfig {
  // Worker threads in the pool (paper Figure 4/5 uses 1, 5, 20).
  size_t worker_threads = 20;
  // CPU burst consumed per protocol event (message, call, upcall).
  SimDuration cpu_per_event = Usec(200);
  // Coordinator: total time to wait for votes before aborting.
  SimDuration vote_timeout = Sec(5.0);
  // Subordinate: silence before querying status (2PC) or taking over (NBC).
  SimDuration outcome_timeout = Sec(1.5);
  // Datagram retransmission interval inside protocol wait loops.
  SimDuration retry_interval = Usec(800000);
  // How long a delayed ("piggybacked") commit-ack waits before riding a forced
  // batch (the ack is only ever sent after the commit record is durable).
  SimDuration ack_delay = Usec(50000);
  // Takeover: pause between unsuccessful rounds, and how many rounds to try
  // before parking (still receptive to messages; a restart resumes retries).
  SimDuration takeover_backoff = Usec(700000);
  int max_takeover_rounds = 8;
  // Orphan detection: an ACTIVE (unprepared) subordinate family probes the
  // family origin at this interval; after max_orphan_probes unreachable or
  // unknown answers it aborts itself. Always safe: an unprepared site's vote
  // is required for commit, so no commit decision can exist yet.
  SimDuration orphan_check_interval = Sec(4.0);
  int max_orphan_probes = 3;
  // 2PC blocked subordinate: status-query attempts before parking (it stays
  // receptive; a recovered coordinator's SITE-UP beacon wakes it).
  int max_status_rounds = 10;
  // Message batching for off-critical-path traffic ("Camelot batches only
  // those messages that are not in the critical path"): commit-acks queue per
  // destination and either ride the next protocol datagram to that site or
  // flush after this delay. 0 disables batching.
  SimDuration piggyback_delay = Usec(20000);
  // Silence-driven waits (blocked-subordinate status queries, takeover retry
  // pauses, phase-2 retransmits) grow exponentially by backoff_multiplier per
  // consecutive silent round, capped at the matching *_max, and jittered by
  // +/- backoff_jitter so a partitioned cohort does not retry in lockstep.
  double backoff_multiplier = 2.0;
  double backoff_jitter = 0.2;
  SimDuration retry_interval_max = Sec(4.0);
  SimDuration outcome_timeout_max = Sec(6.0);
  SimDuration takeover_backoff_max = Sec(6.0);
  // Stuck-family watchdog: a family still undecided this long after entering
  // a commit flow is surfaced in counters().stuck_families (observation only;
  // the protocols keep running).
  SimDuration stuck_family_deadline = Sec(60.0);

  // --- Overload / admission control (defaults preserve legacy behaviour) -------
  // Bound on the worker pool's new-work admission queue: begins and incoming
  // prepares queue here; when it is full, begins fast-reject kOverloaded
  // (without occupying a worker) and prepares are refused with an abort vote.
  // 0 = unbounded. Completion work (votes, outcomes, acks) is never bounded.
  size_t admission_queue_limit = 0;
  // Queue discipline for the bounded admission queue under overload.
  AdmissionPolicy admission_policy = AdmissionPolicy::kFifo;
  // Cap on live (unretired) families at this site: begins and first-contact
  // joins beyond it fast-reject kOverloaded. 0 = uncapped.
  size_t max_live_families = 0;
  // Drop work whose propagated client deadline has already passed (begins,
  // queued admissions, incoming prepares). Deadlines only exist when a client
  // sets one, so this is inert for legacy workloads.
  bool shed_expired_work = true;
  // Bound on each destination's off-path piggyback queue; the oldest message
  // is dropped (counters().offpath_dropped) when a long partition backs it
  // up. Always-safe: off-path messages are retried/re-derived by protocol
  // timeouts. 0 = unbounded.
  size_t offpath_queue_limit = 256;
};

struct TranManCounters {
  uint64_t begun = 0;
  uint64_t committed = 0;        // Top-level commits at this site (either role).
  uint64_t aborted = 0;
  uint64_t prepares_handled = 0;
  uint64_t read_only_votes = 0;
  uint64_t takeovers = 0;
  uint64_t status_queries = 0;
  uint64_t orphans_aborted = 0;
  uint64_t blocked_periods = 0;  // Times a 2PC subordinate entered the blocked state.
  uint64_t blocked_time_us = 0;  // Total sim-time families spent blocked (lock-holding limbo).
  uint64_t stuck_families = 0;   // Families undecided past stuck_family_deadline.
  uint64_t duplicate_effects = 0;  // Commit/abort effects re-driven on an already-final family
                                   // (a duplicated or reordered datagram got through the
                                   // idempotence guards; the exactly-once oracle wants 0).
  uint64_t heuristic_resolutions = 0;
  uint64_t heuristic_damage = 0;  // Heuristic outcome contradicted the real one.
  uint64_t messages_piggybacked = 0;  // Off-path messages that rode another datagram.
  uint64_t overload_rejects = 0;   // Begins/joins fast-rejected kOverloaded (shed, not failed).
  uint64_t prepares_shed = 0;      // Incoming prepares refused (abort vote) by admission control.
  uint64_t deadline_shed = 0;      // Work dropped because its client deadline had passed.
  uint64_t offpath_dropped = 0;    // Off-path messages dropped by the queue bound.
};

class TranMan {
 public:
  TranMan(Site& site, Network& net, ComMan& comman, StableLog& log, TranManConfig config);

  // --- Recovery integration (called by src/recovery at restart) -----------------
  struct RestoredSubordinate {
    Tid tid;
    SiteId coordinator;
    std::vector<SiteId> sites;
    CommitProtocol protocol = CommitProtocol::kTwoPhase;
    uint32_t commit_quorum = 0;
    uint32_t abort_quorum = 0;
    bool has_replication = false;
    uint64_t replicated_epoch = 0;
    TmDecision replicated_decision = TmDecision::kAbort;
    std::vector<std::string> local_servers;
  };
  // Re-parks a prepared subordinate transaction and spawns its resolution
  // (status query for 2PC, takeover for NBC).
  void RestoreSubordinate(RestoredSubordinate restored);
  // Resumes a committed coordinator whose End record is missing: phase 2 is
  // re-driven so subordinates drop locks and ack.
  void RestoreCoordinator(const Tid& tid, std::vector<SiteId> pending_subs,
                          std::vector<std::string> local_servers, CommitOptions options);
  // Records a final-outcome tombstone (NBC change 4: nobody forgets early).
  void RestoreTombstone(const Tid& tid, TmTxnState outcome);
  // Broadcast a SITE-UP beacon so parked in-doubt participants elsewhere
  // re-probe us (called by the harness once restart recovery completes).
  void AnnounceRecovered();

  // --- Heuristic resolution (Section 5, LU 6.2's "heuristic commit") -----------
  // Lets an operator (or policy program) force the outcome of a BLOCKED
  // prepared transaction instead of waiting for the coordinator. "While not
  // guaranteeing correctness, this approach does not slow down commitment in
  // the regular case." If the real outcome later arrives and disagrees,
  // counters().heuristic_damage records the inconsistency.
  Status HeuristicResolve(const FamilyId& family, TmDecision decision);

  // Failpoints woven through the commit protocols (see base/failpoint.h):
  //   tm.<role>.<what>_force.before / .after — around every protocol log
  //     force (local commit, 2PC commit, subordinate prepare/commit/ack,
  //     NBC prepare/replicate/commit, takeover replicate/commit, acceptor
  //     replicate);
  //   tm.send.<MsgType> — before each datagram send (crash/drop/delay/error);
  //   tm.prepared / tm.committed / tm.aborted — just before the family's
  //     state transition is applied.
  void set_failpoints(Failpoints failpoints) { failpoints_ = std::move(failpoints); }

  // Observes every TOP-LEVEL outcome transition this site applies — the same
  // transitions counters().committed/aborted count, in the same order. The
  // harness's HistoryRecorder subscribes (src/harness/history.h); nested
  // subtree aborts are not reported because the family lives on.
  using OutcomeHook = std::function<void(const FamilyId& family, bool committed)>;
  void set_outcome_hook(OutcomeHook hook) { outcome_hook_ = std::move(hook); }

  // --- Introspection -------------------------------------------------------------
  TmTxnState QueryState(const FamilyId& family) const;
  bool IsBlocked(const FamilyId& family) const;
  // The acceptor set for a Paxos family: the first 2*Qc-1 participant sites
  // (coordinator first) — the replicated coordinator registrar.
  static std::vector<SiteId> PaxosAcceptors(const std::vector<SiteId>& sites,
                                            uint32_t commit_quorum);
  const TranManCounters& counters() const { return counters_; }
  WorkerPool& pool() { return pool_; }
  TranManConfig& config() { return config_; }
  size_t live_family_count() const;

 private:
  struct Family {
    Tid top;
    TmTxnState state = TmTxnState::kActive;
    bool committing = false;   // A commit/abort decision flow owns this family.
    bool blocked = false;      // Subordinate stuck unable to decide (2PC window of
                               // vulnerability, or NBC without a reachable quorum).
    SimTime blocked_since = 0;       // When `blocked` was last set (for blocked_time_us).
    bool watchdog_armed = false;     // A StuckFamilyWatch one-shot is in flight.
    bool is_coordinator = false;
    // Client deadline (absolute virtual time; 0 = none), captured at begin
    // and carried on prepares so subordinates can refuse expired work.
    SimTime deadline = 0;

    // Local participants (servers on this site that joined).
    std::vector<std::string> local_servers;

    // Nesting bookkeeping (kept at the family's origin site).
    uint32_t next_serial = 1;
    std::unordered_map<uint32_t, uint32_t> nested_parent;  // serial -> parent serial
    std::set<uint32_t> active_nested;

    // Commit-protocol context (subordinate or coordinator).
    SiteId coordinator = kInvalidSite;
    std::vector<SiteId> sites;  // All participants, coordinator first.
    CommitProtocol protocol = CommitProtocol::kTwoPhase;
    bool force_sub_commit = false;
    bool piggyback_ack = false;
    uint32_t commit_quorum = 0;
    uint32_t abort_quorum = 0;

    // NBC acceptor state.
    uint64_t promised_epoch = 0;   // Volatile promise (statusreq).
    bool has_replication = false;  // Durable (replication record forced).
    uint64_t replicated_epoch = 0;
    TmDecision replicated_decision = TmDecision::kAbort;
    uint64_t takeover_round = 0;
    // NBC read-only subordinate retained purely as a replication acceptor /
    // status responder (the read-only optimization keeps it off the critical
    // path but available when a quorum needs it).
    bool passive_acceptor = false;
    // Outcome was forced by HeuristicResolve; a contradicting real outcome
    // counts as heuristic damage.
    bool heuristic = false;

    // Paxos Commit acceptor state: every participant's vote as heard at this
    // acceptor. A ballot-0 accept forms only from a complete all-yes set
    // (ordered map so replay traces are deterministic).
    std::map<SiteId, TmVote> paxos_votes;

    // Protocol mailbox for whichever coroutine is driving this family.
    std::shared_ptr<Channel<TmMsg>> inbox;
  };

  // --- Service handler (local IPC) ---------------------------------------------
  Async<RpcResult> Handle(RpcContext ctx, uint32_t method, Bytes body);
  // kOverloaded fast-reject for new work, evaluated BEFORE the event takes a
  // worker: admission queue full, live-family cap hit, or deadline expired.
  Status AdmissionCheck(SimTime deadline, bool creates_family) const;
  Async<RpcResult> HandleBegin(const Tid& parent, SimTime deadline);
  Async<RpcResult> HandleJoin(const Tid& tid, const std::string& server);
  Async<RpcResult> HandleCommit(const Tid& tid, const CommitOptions& options);
  Async<RpcResult> HandleAbort(const Tid& tid);
  Async<RpcResult> HandleNestedCommit(const Tid& tid);
  Async<RpcResult> HandleNestedAbort(const Tid& tid);
  Async<RpcResult> HandleNestedCommitRemote(const Tid& child, const Tid& parent);
  Async<RpcResult> HandleAbortSubtreeRemote(const Tid& top, std::vector<uint32_t> serials);
  // Sends a nested-commit/abort control call to every remote site the family
  // touched (reliable RPC; off the commit critical path).
  Async<void> ForwardNestedToRemotes(Family* fam, uint32_t method, Bytes body);

  // --- Commit flows ---------------------------------------------------------------
  // Collects votes from local servers. Returns kNo/kUpdate/kReadOnly summary.
  Async<ServerVote> VoteLocalServers(Family* fam);
  Async<Status> CommitLocalOnly(Family* fam, bool has_updates);
  Async<Status> CoordinateTwoPhase(Family* fam, const CommitOptions& options,
                                   std::vector<SiteId> subs, bool local_updates);
  Async<Status> CoordinateNonBlocking(Family* fam, const CommitOptions& options,
                                      std::vector<SiteId> subs, bool local_updates);
  // NBC where every subordinate turned out read-only: the local commit record
  // alone decides; passive acceptors are told the outcome for their tombstones.
  Async<Status> CommitLocalOnlyNbc(Family* fam, bool local_updates,
                                   const std::vector<SiteId>& subs);
  // Paxos Commit (Gray & Lamport) with F >= 1: per-participant ballot-0 vote
  // instances batched into one accept record per acceptor; the coordinator is
  // acceptor 0 and the decision is durable once F+1 acceptors forced accepts.
  // F = 0 never reaches here — HandleCommit routes it through
  // CoordinateTwoPhase, the paper's degenerate collapse to optimized 2PC.
  Async<Status> CoordinatePaxos(Family* fam, uint32_t f_eff, std::vector<SiteId> subs,
                                bool local_updates);
  // Phase 1 shared by both protocols: send prepares, gather votes.
  // Returns false on abort (abort actions already taken).
  struct VoteRound {
    bool all_yes = false;
    bool any_abort = false;  // An explicit abort vote (vs. a silent timeout).
    std::vector<SiteId> update_subs;
  };
  Async<VoteRound> GatherVotes(Family* fam, const TmMsg& prepare_template,
                               const std::vector<SiteId>& subs);
  Async<void> CoordinatorPhase2(FamilyId family, std::vector<SiteId> update_subs);
  Async<void> AbortDistributed(Family* fam, const std::vector<SiteId>& notify);

  // --- Subordinate side -------------------------------------------------------------
  Async<void> HandleRemotePrepare(TmMsg msg);
  Async<void> SubordinateWait(FamilyId family_id, uint32_t inc);
  Async<void> SubordinateCommit(Family* fam);
  Async<void> SubordinateAbort(Family* fam);
  Async<void> DelayedCommitAck(FamilyId family_id, Tid top, SiteId coordinator, Lsn commit_lsn,
                               uint32_t inc);
  // One takeover attempt cycle; resolves the transaction or leaves it for the
  // caller to retry/park. Returns true if the outcome is now decided.
  Async<bool> Takeover(FamilyId family_id, uint32_t inc);
  // Paxos Commit leader takeover: promote to a fresh ballot, read the acceptor
  // set, and drive the highest-ballot accepted decision (abort when none) to
  // an F+1 accept quorum. Any participant may lead; only real forced accepts
  // from acceptors count toward the quorum.
  Async<bool> TakeoverPaxos(FamilyId family_id, uint32_t inc);
  // Records a participant's vote at a Paxos acceptor and, when the vote set is
  // complete and all-yes with at least one update, forms this acceptor's
  // ballot-0 accept (forced replication record + PAXOS-ACCEPTED to the leader).
  Async<void> HandlePaxosVote(TmMsg msg);
  Async<void> TryFormPaxosAccept(FamilyId family_id, uint32_t inc);
  // Watches an active subordinate family for coordinator death (see
  // TranManConfig::orphan_check_interval).
  Async<void> OrphanWatch(FamilyId family_id, uint32_t inc);
  // One-shot: fires once at stuck_family_deadline and counts the family into
  // counters().stuck_families if it is still undecided (observation only).
  Async<void> StuckFamilyWatch(FamilyId family_id, uint32_t inc);
  void ArmStuckWatch(Family* fam);
  // Blocked-state bookkeeping with blocked-time accounting.
  void MarkBlocked(Family* fam);
  void ClearBlocked(Family* fam);
  // Capped, jittered exponential backoff: base * multiplier^attempt, capped,
  // +/- backoff_jitter. Deterministic per seed (draws from this TranMan's rng).
  SimDuration Backoff(SimDuration base, SimDuration cap, uint64_t attempt);
  // Network topology changed (partition installed or healed): re-probe every
  // in-doubt family so a participant parked during a partition learns
  // connectivity is back (site crash/restart uses SITE-UP beacons instead).
  void OnTopologyChange();

  // --- Datagram layer -----------------------------------------------------------------
  void OnDatagram(Datagram dg);
  Async<void> DispatchMsg(TmMsg msg);
  // Sends a (critical-path) message now; any queued off-path messages for the
  // same destination ride along in the same datagram.
  void SendMsg(SiteId dst, TmMsg msg);
  void SendMsgToAll(const std::vector<SiteId>& dsts, TmMsg msg);
  // Queues an off-critical-path message (e.g. a commit-ack) for piggybacking;
  // it is flushed with the next SendMsg to `dst` or after piggyback_delay.
  void QueueOffPath(SiteId dst, TmMsg msg);
  void FlushOffPath(SiteId dst);
  Async<void> HandleReplicate(TmMsg msg);
  Async<void> HandleStatusReq(TmMsg msg);
  Async<void> HandleAbortMsg(TmMsg msg);
  Async<void> HandleCommitForUnknown(TmMsg msg);

  // --- Server upcalls ------------------------------------------------------------------
  void NotifyServersDropLocks(const Family& fam);  // One-way (Figure 1 event 11).
  Async<Status> CallServersAbort(const Family& fam);

  // --- Plumbing ---------------------------------------------------------------------------
  Family* FindFamily(const FamilyId& id);
  const Family* FindFamily(const FamilyId& id) const;
  Family* CreateFamily(const Tid& top);
  // Removes the family from the table; the unique_ptr moves to the graveyard
  // so coroutines holding Family* stay valid until the world ends.
  void RetireFamily(const FamilyId& id);
  // Bumps the outcome counter and fires the outcome hook. Every top-level
  // commit/abort transition funnels through here; nested aborts must not.
  void RecordOutcome(const FamilyId& family, bool committed);
  bool Dead(uint32_t inc) const { return !site_.up() || site_.incarnation() != inc; }
  // A synchronous log force performed BY a worker thread: the thread is
  // occupied for the force's whole duration (Section 3.4/3.5 interplay).
  Async<bool> ForceHoldingWorker(Lsn lsn);
  // Evaluates a single "<point>.before"/".after" force failpoint; honors a
  // delay inline. False means the caller must treat the force as failed
  // (crash or error-return fired at the point).
  Async<bool> AtForcePoint(std::string point, uint32_t inc);
  // ForceHoldingWorker bracketed by "<point>.before" / "<point>.after"
  // failpoints; returns false (not durable) if a crash fired at either point.
  // A successful force records one {family, role, phase, force} cost-ledger
  // event, with role/phase derived from the point name.
  Async<bool> ForceAt(const char* point, const FamilyId& family, Lsn lsn);
  // Same bracketing around a direct (worker-less) log force.
  Async<bool> DirectForceAt(const char* point, const FamilyId& family, Lsn lsn);
  // Cost-ledger events for the primitives the static analysis predicts: an
  // unforced protocol log append, and one datagram per (message, destination)
  // — piggybacked off-path messages count as their own logical datagram, so
  // the measured counts are independent of batching.
  void RecordSpool(const FamilyId& family, const char* role, const char* phase);
  void RecordDatagram(const TmMsg& msg);
  // Evaluates "tm.<transition>" just before a family state change; true means
  // a crash fired and the caller must stop.
  bool AtTransition(const char* transition);
  uint64_t NextEpoch(Family* fam);

  Site& site_;
  Network& net_;
  ComMan& comman_;
  StableLog& log_;
  TranManConfig config_;
  Failpoints failpoints_;
  WorkerPool pool_;
  Rng rng_;  // Backoff jitter; forked from the scheduler stream for determinism.
  uint64_t next_family_seq_ = 1;
  std::unordered_map<FamilyId, std::unique_ptr<Family>> families_;
  std::vector<std::unique_ptr<Family>> graveyard_;
  // 2PC subordinates that voted read-only and forgot everything else; kept so
  // a retransmitted prepare gets a read-only vote again instead of an abort.
  std::set<FamilyId> readonly_voted_;
  // Ballot promises given to Paxos takeover reads for families this site has
  // never heard of (HandleStatusReq): "no accepted value" is only safe
  // testimony if ballot 0 can no longer act here, so the promise must outlive
  // the answer. Consumed into Family::promised_epoch the moment the family
  // materializes (CreateFamily) — by a late ballot-0 vote set or by the
  // leader's REPLICATE. Volatile, like the promise on a prepared family.
  std::unordered_map<FamilyId, uint64_t> orphan_promises_;
  // Off-critical-path messages awaiting piggybacking, per destination.
  std::unordered_map<SiteId, std::vector<TmMsg>> offpath_queue_;
  TranManCounters counters_;
  OutcomeHook outcome_hook_;
};

}  // namespace camelot

#endif  // SRC_TRANMAN_TRANMAN_H_
