#include "src/tranman/messages.h"

namespace camelot {

const char* TmMsgTypeName(TmMsgType type) {
  switch (type) {
    case TmMsgType::kPrepare:
      return "PREPARE";
    case TmMsgType::kVote:
      return "VOTE";
    case TmMsgType::kCommit:
      return "COMMIT";
    case TmMsgType::kAbort:
      return "ABORT";
    case TmMsgType::kCommitAck:
      return "COMMIT-ACK";
    case TmMsgType::kReplicate:
      return "REPLICATE";
    case TmMsgType::kReplicateAck:
      return "REPLICATE-ACK";
    case TmMsgType::kStatusReq:
      return "STATUS-REQ";
    case TmMsgType::kStatusResp:
      return "STATUS-RESP";
    case TmMsgType::kSiteUp:
      return "SITE-UP";
    case TmMsgType::kPaxosAccepted:
      return "PAXOS-ACCEPTED";
  }
  return "UNKNOWN";
}

Bytes TmMsg::Encode() const {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(type));
  w.Transaction(tid);
  w.Site(from);
  w.U8(static_cast<uint8_t>(protocol));
  w.U8(force_subordinate_commit ? 1 : 0);
  w.U8(piggyback_commit_ack ? 1 : 0);
  w.SiteList(sites);
  w.U32(commit_quorum);
  w.U32(abort_quorum);
  w.I64(deadline);
  w.U8(static_cast<uint8_t>(vote));
  w.U64(epoch);
  w.U8(static_cast<uint8_t>(decision));
  w.U8(static_cast<uint8_t>(state));
  w.U8(has_replication ? 1 : 0);
  w.U64(replicated_epoch);
  w.U8(static_cast<uint8_t>(replicated_decision));
  w.U8(promised ? 1 : 0);
  return w.Take();
}

Result<TmMsg> TmMsg::Decode(const Bytes& wire) {
  ByteReader r(wire);
  TmMsg m;
  m.type = static_cast<TmMsgType>(r.U8());
  m.tid = r.Transaction();
  m.from = r.Site();
  m.protocol = static_cast<CommitProtocol>(r.U8());
  m.force_subordinate_commit = r.U8() != 0;
  m.piggyback_commit_ack = r.U8() != 0;
  m.sites = r.SiteList();
  m.commit_quorum = r.U32();
  m.abort_quorum = r.U32();
  m.deadline = r.I64();
  m.vote = static_cast<TmVote>(r.U8());
  m.epoch = r.U64();
  m.decision = static_cast<TmDecision>(r.U8());
  m.state = static_cast<TmTxnState>(r.U8());
  m.has_replication = r.U8() != 0;
  m.replicated_epoch = r.U64();
  m.replicated_decision = static_cast<TmDecision>(r.U8());
  m.promised = r.U8() != 0;
  if (!r.ok() || !r.AtEnd()) {
    return CorruptionError("bad TmMsg wire format");
  }
  return m;
}

}  // namespace camelot
