// The local RPC protocol spoken between applications, data servers, and the
// transaction manager on one site (Figure 1 of the paper). This header defines
// method numbers and payload encodings only; it creates no link dependency
// between the server and tranman libraries.
#ifndef SRC_TRANMAN_LOCAL_API_H_
#define SRC_TRANMAN_LOCAL_API_H_

#include <string>

#include "src/base/codec.h"
#include "src/base/types.h"
#include "src/wal/log_record.h"  // CommitProtocol.

namespace camelot {

// Every site's transaction manager registers under this service name.
inline constexpr char kTranManServiceName[] = "tranman";

// --- Transaction manager methods (application- and server-facing) -------------
enum TmMethod : uint32_t {
  kTmBegin = 1,   // {Transaction parent?}            -> {Transaction tid}
  kTmCommit = 2,  // {Transaction, CommitOptions}     -> status only
  kTmAbort = 3,   // {Transaction}                    -> status only
  kTmJoin = 4,    // {Transaction, Str server_name}   -> status only (server -> TranMan)
  // Remote TranMan-to-TranMan control (sent via NetMsgServer RPC, not datagrams,
  // because they are off the commit critical path):
  kTmNestedCommitRemote = 10,  // {Transaction child, Transaction parent} -> status
  kTmAbortSubtreeRemote = 11,  // {Transaction top, U32 n, n x U32 serials} -> status
  kTmQueryStatus = 12,         // {Transaction} -> {U8 TmTxnState} (orphan probing)
};

// The commitment protocol variant requested on commit-transaction. The paper's
// Section 3.2 optimization corresponds to {force_subordinate_commit = false,
// piggyback_commit_ack = true}; the unoptimized baseline is {true, false}; the
// dissected intermediate is {true, true}.
struct CommitOptions {
  CommitProtocol protocol = CommitProtocol::kTwoPhase;
  bool force_subordinate_commit = false;
  bool piggyback_commit_ack = true;
  // Paxos Commit fault tolerance: the protocol places min(2F+1, participants)
  // acceptors (clamped odd) on the participant sites, coordinator first. F=0
  // degenerates to exactly the optimized two-phase protocol.
  uint32_t paxos_f = 0;

  static CommitOptions Optimized() { return {CommitProtocol::kTwoPhase, false, true, 0}; }
  static CommitOptions Unoptimized() { return {CommitProtocol::kTwoPhase, true, false, 0}; }
  static CommitOptions Intermediate() { return {CommitProtocol::kTwoPhase, true, true, 0}; }
  static CommitOptions NonBlocking() { return {CommitProtocol::kNonBlocking, false, true, 0}; }
  static CommitOptions Paxos(uint32_t f) { return {CommitProtocol::kPaxos, false, true, f}; }
};

inline Bytes EncodeBeginRequest(const Tid& parent) {
  ByteWriter w;
  w.Transaction(parent);
  return w.Take();
}

inline Bytes EncodeCommitRequest(const Tid& tid, const CommitOptions& options) {
  ByteWriter w;
  w.Transaction(tid);
  w.U8(static_cast<uint8_t>(options.protocol));
  w.U8(options.force_subordinate_commit ? 1 : 0);
  w.U8(options.piggyback_commit_ack ? 1 : 0);
  w.U32(options.paxos_f);
  return w.Take();
}

inline Bytes EncodeTidOnly(const Tid& tid) {
  ByteWriter w;
  w.Transaction(tid);
  return w.Take();
}

inline Bytes EncodeJoinRequest(const Tid& tid, const std::string& server_name) {
  ByteWriter w;
  w.Transaction(tid);
  w.Str(server_name);
  return w.Take();
}

// --- Data server methods --------------------------------------------------------
enum ServerMethod : uint32_t {
  // Client-facing operations.
  kSrvRead = 1,    // {Transaction, Str object}              -> {Blob value}
  kSrvWrite = 2,   // {Transaction, Str object, Blob value}  -> status only
  kSrvCreate = 3,  // {Transaction, Str object, Blob value}  -> status only

  // TranMan-facing transaction management upcalls.
  kSrvVote = 10,          // {Transaction top}              -> {U8 ServerVote}
  kSrvCommitFamily = 11,  // {Transaction top}              -> status (drop locks)
  kSrvAbortFamily = 12,   // {Transaction top}              -> status (undo + drop locks)
  kSrvNestedCommit = 13,  // {Transaction child, Transaction parent} -> status
  kSrvAbortSubtree = 14,  // {Transaction top, U32 n, n x U32 serials} -> status
};

enum class ServerVote : uint8_t {
  kNo = 0,        // Refuse to commit (forces abort).
  kUpdate = 1,    // Prepared; transaction wrote here.
  kReadOnly = 2,  // Participated read-only; no second phase needed.
};

inline Bytes EncodeObjectRequest(const Tid& tid, const std::string& object) {
  ByteWriter w;
  w.Transaction(tid);
  w.Str(object);
  return w.Take();
}

inline Bytes EncodeWriteRequest(const Tid& tid, const std::string& object, const Bytes& value) {
  ByteWriter w;
  w.Transaction(tid);
  w.Str(object);
  w.Blob(value);
  return w.Take();
}

inline Bytes EncodeNestedCommitRequest(const Tid& child, const Tid& parent) {
  ByteWriter w;
  w.Transaction(child);
  w.Transaction(parent);
  return w.Take();
}

inline Bytes EncodeAbortSubtreeRequest(const Tid& top, const std::vector<uint32_t>& serials) {
  ByteWriter w;
  w.Transaction(top);
  w.U32(static_cast<uint32_t>(serials.size()));
  for (uint32_t s : serials) {
    w.U32(s);
  }
  return w.Take();
}

// Helpers for int64-valued objects (bank balances, counters, ...).
inline Bytes EncodeInt64(int64_t v) {
  ByteWriter w;
  w.I64(v);
  return w.Take();
}

inline int64_t DecodeInt64(const Bytes& b) {
  ByteReader r(b);
  return r.I64();
}

}  // namespace camelot

#endif  // SRC_TRANMAN_LOCAL_API_H_
