// The transaction manager's thread pool (paper, Section 3.4).
//
// Camelot's TranMan keeps a pool of threads; no thread is tied to a function
// or transaction — "every thread waits for any type of input, processes the
// input, and resumes waiting". We model exactly that queueing behaviour: each
// protocol event (client call, server upcall, incoming datagram) must pass
// through Run(), which occupies one worker for the event's CPU burst. Long
// synchronous operations (log forces, network waits) happen OUTSIDE the pool,
// just as a Camelot thread is free while another thread's log force is in
// progress.
//
// Admission comes in two classes. Completion work — votes, outcomes, acks,
// the forces that finish an already-admitted transaction — goes through
// Run()/Acquire() and is never shed: dropping it would stall the commit
// protocols and hold locks longer, making overload worse. New work (begins,
// incoming prepares) goes through Admit(), which is bounded: when the queue
// is full the event is rejected immediately (kOverloaded fast-reject), and
// work whose client deadline has already passed is shed at grant time,
// before it occupies a worker. The queue discipline under overload is
// pluggable: FIFO, LIFO (newest-first, so fresh requests that can still meet
// their deadlines run ahead of a stale backlog), or deadline-aware drop
// (evict the queued entry closest to expiry to admit a newcomer with more
// slack).
#ifndef SRC_TRANMAN_WORKER_POOL_H_
#define SRC_TRANMAN_WORKER_POOL_H_

#include <coroutine>
#include <deque>
#include <memory>

#include "src/base/logging.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"
#include "src/stats/summary.h"

namespace camelot {

// Queue discipline applied to the bounded Admit() queue under overload.
enum class AdmissionPolicy {
  kFifo,          // Oldest first; newcomers rejected when full.
  kLifo,          // Newest first; newcomers rejected when full.
  kDeadlineDrop,  // FIFO grant order, but when full evict the queued entry
                  // nearest its deadline if the newcomer has more slack.
};

// Outcome of a bounded admission attempt.
enum class Admission {
  kRun,       // Ran to completion on a worker.
  kRejected,  // Queue full at arrival (or evicted to admit a later event).
  kExpired,   // Deadline passed before a worker was granted; shed unrun.
};

class WorkerPool {
 public:
  WorkerPool(Scheduler& sched, size_t workers) : sched_(sched), workers_(workers) {}

  // Occupies one worker for `cpu` of virtual time (FIFO admission, never
  // shed). Protocol-completion work uses this.
  Async<void> Run(SimDuration cpu) {
    co_await Acquire();
    if (cpu > 0) {
      co_await sched_.Delay(cpu);
    }
    Release();
  }

  // Bounded admission for NEW work. Returns kRejected without queueing when
  // the admission queue is at its limit (under kDeadlineDrop, an expiring
  // queued entry may be evicted instead), and kExpired — without ever
  // occupying a worker — when `deadline` (virtual time, 0 = none) passes
  // while queued. Only on kRun did the event consume `cpu` on a worker.
  Async<Admission> Admit(SimDuration cpu, SimTime deadline = 0) {
    ++events_;
    if (deadline > 0 && sched_.now() > deadline) {
      ++shed_expired_;
      co_return Admission::kExpired;
    }
    if (in_use_ < workers_ && critical_.empty() && admit_.empty()) {
      ++in_use_;
    } else {
      if (admit_limit_ > 0 && admit_.size() >= admit_limit_ && !TryEvictFor(deadline)) {
        ++shed_rejected_;
        co_return Admission::kRejected;
      }
      ++queued_events_;
      auto w = std::make_shared<AdmitWaiter>();
      w->deadline = deadline;
      w->enqueued_at = sched_.now();
      SampleDepth();
      co_await AdmitAwaiter{this, w.get(), &w};
      if (w->outcome != Admission::kRun) {
        co_return w->outcome;  // Shed; no worker was taken.
      }
      queued_time_us_.Add(static_cast<double>(sched_.now() - w->enqueued_at));
    }
    if (cpu > 0) {
      co_await sched_.Delay(cpu);
    }
    Release();
    co_return Admission::kRun;
  }

  // Claims a worker without consuming time; the caller occupies it (e.g. for
  // a synchronous log force — a Camelot thread blocks for the whole force,
  // which is exactly why multithreading pays off only with group commit).
  // Never shed.
  Async<void> Acquire() {
    ++events_;
    if (in_use_ < workers_ && critical_.empty()) {
      ++in_use_;
      co_return;
    }
    ++queued_events_;
    auto w = std::make_shared<CriticalWaiter>();
    w->enqueued_at = sched_.now();
    SampleDepth();
    co_await CriticalAwaiter{this, w.get(), &w};
    queued_time_us_.Add(static_cast<double>(sched_.now() - w->enqueued_at));
  }

  // Hands the worker to the next queued event, if any: completion work
  // first, then admitted new work per the policy.
  void Release() {
    CAMELOT_CHECK(in_use_ > 0);
    --in_use_;
    Grant();
  }

  // Resize the pool; legal with events queued (shrink takes effect as
  // in-flight work releases, growth dispatches waiters immediately).
  void Resize(size_t n) {
    workers_ = n;
    Grant();
  }
  void set_workers(size_t n) { Resize(n); }  // Back-compat alias.

  // Admission-queue bound for Admit() (0 = unbounded) and overload policy.
  void set_admission_limit(size_t n) { admit_limit_ = n; }
  void set_admission_policy(AdmissionPolicy p) { policy_ = p; }

  size_t workers() const { return workers_; }
  size_t available() const { return workers_ > in_use_ ? workers_ - in_use_ : 0; }
  size_t queued() const { return critical_.size() + admit_.size(); }
  size_t admit_queued() const { return admit_.size(); }
  uint64_t events() const { return events_; }
  uint64_t queued_events() const { return queued_events_; }
  uint64_t shed_rejected() const { return shed_rejected_; }
  uint64_t shed_expired() const { return shed_expired_; }

  // Queue health: wait times (us) of events that had to queue, queue depth
  // sampled at each enqueue, and the deepest the queue has ever been.
  const Summary& queued_time_us() const { return queued_time_us_; }
  const Summary& queue_depth() const { return queue_depth_; }
  size_t depth_high_watermark() const { return depth_hwm_; }

  void ResetQueueStats() {
    queued_time_us_.Clear();
    queue_depth_.Clear();
    depth_hwm_ = 0;
  }

 private:
  struct CriticalWaiter {
    std::coroutine_handle<> handle;
    SimTime enqueued_at = 0;
  };

  struct AdmitWaiter {
    std::coroutine_handle<> handle;
    SimTime deadline = 0;  // 0 = none.
    SimTime enqueued_at = 0;
    Admission outcome = Admission::kRun;
  };

  // Both awaiters hold raw pointers on purpose: they MUST stay trivially
  // destructible. GCC 12 destroys a non-trivially-destructible awaiter (and
  // with it the whole co_await operand temporary, i.e. the suspended child
  // frame) at the suspend point instead of at resume, so a shared_ptr member
  // here turns every queued waiter into a use-after-free. Ownership lives in
  // the coroutine frame's local shared_ptr plus the pool's deque; the frame
  // outlives the grant because only the granted resume can complete it.
  struct CriticalAwaiter {
    WorkerPool* pool;
    CriticalWaiter* w;
    std::shared_ptr<CriticalWaiter>* owner;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      w->handle = h;
      pool->critical_.push_back(*owner);
    }
    void await_resume() const noexcept {}
  };

  struct AdmitAwaiter {
    WorkerPool* pool;
    AdmitWaiter* w;
    std::shared_ptr<AdmitWaiter>* owner;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      w->handle = h;
      pool->admit_.push_back(*owner);
    }
    void await_resume() const noexcept {}
  };

  // Called as an event enqueues (before its awaiter pushes it), so the
  // sample counts the event itself.
  void SampleDepth() {
    size_t depth = queued() + 1;
    queue_depth_.Add(static_cast<double>(depth));
    if (depth > depth_hwm_) {
      depth_hwm_ = depth;
    }
  }

  // kDeadlineDrop when full: evict the queued entry nearest its deadline iff
  // it expires no later than the newcomer (an entry with no deadline is
  // never evicted). Returns true if a slot was made.
  bool TryEvictFor(SimTime newcomer_deadline) {
    if (policy_ != AdmissionPolicy::kDeadlineDrop) {
      return false;
    }
    auto victim = admit_.end();
    for (auto it = admit_.begin(); it != admit_.end(); ++it) {
      if ((*it)->deadline == 0) {
        continue;
      }
      if (victim == admit_.end() || (*it)->deadline < (*victim)->deadline) {
        victim = it;
      }
    }
    if (victim == admit_.end()) {
      return false;
    }
    if (newcomer_deadline != 0 && (*victim)->deadline > newcomer_deadline) {
      return false;  // Everyone queued has more slack than the newcomer.
    }
    Shed(std::move(*victim), Admission::kRejected);
    admit_.erase(victim);
    ++shed_rejected_;
    return true;
  }

  // Resume a waiter that will NOT get a worker.
  void Shed(std::shared_ptr<AdmitWaiter> w, Admission outcome) {
    w->outcome = outcome;
    sched_.Post(0, [h = w->handle] { h.resume(); });
  }

  // Drop queued admits whose deadline has already passed (zombie work shed
  // before it ever occupies a worker).
  void ShedExpired() {
    SimTime now = sched_.now();
    for (auto it = admit_.begin(); it != admit_.end();) {
      if ((*it)->deadline > 0 && now > (*it)->deadline) {
        Shed(std::move(*it), Admission::kExpired);
        it = admit_.erase(it);
        ++shed_expired_;
      } else {
        ++it;
      }
    }
  }

  void Grant() {
    while (in_use_ < workers_) {
      if (!critical_.empty()) {
        auto w = std::move(critical_.front());
        critical_.pop_front();
        ++in_use_;
        sched_.Post(0, [h = w->handle] { h.resume(); });
        continue;
      }
      ShedExpired();
      if (admit_.empty()) {
        return;
      }
      std::shared_ptr<AdmitWaiter> w;
      if (policy_ == AdmissionPolicy::kLifo) {
        w = std::move(admit_.back());
        admit_.pop_back();
      } else {
        w = std::move(admit_.front());
        admit_.pop_front();
      }
      ++in_use_;
      w->outcome = Admission::kRun;
      sched_.Post(0, [h = w->handle] { h.resume(); });
    }
  }

  Scheduler& sched_;
  size_t workers_;
  size_t in_use_ = 0;
  size_t admit_limit_ = 0;  // 0 = unbounded.
  AdmissionPolicy policy_ = AdmissionPolicy::kFifo;
  std::deque<std::shared_ptr<CriticalWaiter>> critical_;
  std::deque<std::shared_ptr<AdmitWaiter>> admit_;
  uint64_t events_ = 0;
  uint64_t queued_events_ = 0;
  uint64_t shed_rejected_ = 0;
  uint64_t shed_expired_ = 0;
  Summary queued_time_us_;
  Summary queue_depth_;
  size_t depth_hwm_ = 0;
};

}  // namespace camelot

#endif  // SRC_TRANMAN_WORKER_POOL_H_
