// The transaction manager's thread pool (paper, Section 3.4).
//
// Camelot's TranMan keeps a pool of threads; no thread is tied to a function
// or transaction — "every thread waits for any type of input, processes the
// input, and resumes waiting". We model exactly that queueing behaviour: each
// protocol event (client call, server upcall, incoming datagram) must pass
// through Run(), which occupies one worker for the event's CPU burst. Long
// synchronous operations (log forces, network waits) happen OUTSIDE the pool,
// just as a Camelot thread is free while another thread's log force is in
// progress.
#ifndef SRC_TRANMAN_WORKER_POOL_H_
#define SRC_TRANMAN_WORKER_POOL_H_

#include <coroutine>
#include <deque>

#include "src/base/logging.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"

namespace camelot {

class WorkerPool {
 public:
  WorkerPool(Scheduler& sched, size_t workers) : sched_(sched), available_(workers) {}

  // Occupies one worker for `cpu` of virtual time (FIFO admission).
  Async<void> Run(SimDuration cpu) {
    co_await Acquire();
    if (cpu > 0) {
      co_await sched_.Delay(cpu);
    }
    Release();
  }

  // Claims a worker without consuming time; the caller occupies it (e.g. for
  // a synchronous log force — a Camelot thread blocks for the whole force,
  // which is exactly why multithreading pays off only with group commit).
  Async<void> Acquire() {
    ++events_;
    if (available_ == 0) {
      ++queued_events_;
      co_await WaitAwaiter{this};
    } else {
      --available_;
    }
  }

  // Hands the worker to the next queued event, if any.
  void Release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sched_.Post(0, [h] { h.resume(); });
    } else {
      ++available_;
    }
  }

  // Resizing applies to future admissions (used between experiment runs).
  void set_workers(size_t n) {
    CAMELOT_CHECK(waiters_.empty());
    available_ = n;
  }

  size_t available() const { return available_; }
  size_t queued() const { return waiters_.size(); }
  uint64_t events() const { return events_; }
  uint64_t queued_events() const { return queued_events_; }

 private:
  struct WaitAwaiter {
    WorkerPool* pool;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { pool->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  Scheduler& sched_;
  size_t available_;
  std::deque<std::coroutine_handle<>> waiters_;
  uint64_t events_ = 0;
  uint64_t queued_events_ = 0;
};

}  // namespace camelot

#endif  // SRC_TRANMAN_WORKER_POOL_H_
