// SharedBytes: an immutable, reference-counted Bytes buffer for the message
// hot path. Fan-out (multicast, SendToAll), RPC retransmits, and
// duplicate-suppression replies used to copy the full wire body per send;
// SharedBytes makes every copy a refcount bump on one shared buffer.
//
// The control node comes from a per-thread free list, so the steady-state
// share/release cycle performs no heap allocation. The refcount is
// deliberately NON-atomic: a buffer is only ever shared within one World, and
// each World (scheduler, network, sites) is confined to a single host thread —
// parallel explorer sweeps give every schedule its own World on its own
// thread. Nodes are always released to the releasing thread's free list, so
// the lists themselves are single-threaded too.
//
// `operator const Bytes&` lets existing call sites (ByteReader, Decode*)
// consume a SharedBytes wherever they took a `const Bytes&`.
#ifndef SRC_BASE_SHARED_BYTES_H_
#define SRC_BASE_SHARED_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <utility>

#include "src/base/codec.h"

namespace camelot {

class SharedBytes {
 public:
  SharedBytes() = default;

  // Implicit by design: every Bytes-producing call site (ByteWriter::Take,
  // encoded wires) flows into the shared representation unchanged.
  SharedBytes(Bytes data) : node_(Acquire(std::move(data))) {}  // NOLINT(google-explicit-constructor)

  SharedBytes(std::initializer_list<uint8_t> il) : SharedBytes(Bytes(il)) {}

  SharedBytes(const SharedBytes& other) : node_(other.node_) {
    if (node_ != nullptr) {
      ++node_->refs;
    }
  }

  SharedBytes(SharedBytes&& other) noexcept : node_(other.node_) { other.node_ = nullptr; }

  SharedBytes& operator=(const SharedBytes& other) {
    if (this != &other) {
      Release();
      node_ = other.node_;
      if (node_ != nullptr) {
        ++node_->refs;
      }
    }
    return *this;
  }

  SharedBytes& operator=(SharedBytes&& other) noexcept {
    if (this != &other) {
      Release();
      node_ = other.node_;
      other.node_ = nullptr;
    }
    return *this;
  }

  ~SharedBytes() { Release(); }

  operator const Bytes&() const {  // NOLINT(google-explicit-constructor)
    return node_ != nullptr ? node_->data : EmptyBytes();
  }
  const Bytes& bytes() const { return *this; }

  size_t size() const { return node_ != nullptr ? node_->data.size() : 0; }
  bool empty() const { return size() == 0; }
  uint8_t operator[](size_t i) const { return bytes()[i]; }

  // How many SharedBytes currently share this buffer (0 for the empty value);
  // test/bench observability for the zero-copy paths.
  uint32_t use_count() const { return node_ != nullptr ? node_->refs : 0; }

 private:
  struct Node {
    Bytes data;
    uint32_t refs = 1;
    Node* next_free = nullptr;
  };

  // Wrapped in a struct so thread exit returns the cached nodes to the heap
  // (the CI leak checker runs with detect_leaks=1).
  struct FreeList {
    Node* head = nullptr;
    ~FreeList() {
      while (head != nullptr) {
        Node* next = head->next_free;
        delete head;
        head = next;
      }
    }
  };

  static FreeList& Tls() {
    thread_local FreeList list;
    return list;
  }

  static const Bytes& EmptyBytes() {
    static const Bytes empty;
    return empty;
  }

  static Node* Acquire(Bytes data) {
    FreeList& list = Tls();
    Node* node = list.head;
    if (node != nullptr) {
      list.head = node->next_free;
      node->refs = 1;
      node->next_free = nullptr;
    } else {
      node = new Node;
    }
    node->data = std::move(data);
    return node;
  }

  void Release() {
    if (node_ == nullptr) {
      return;
    }
    if (--node_->refs == 0) {
      node_->data = Bytes{};  // Drop the payload now; pool only the node shell.
      FreeList& list = Tls();
      node_->next_free = list.head;
      list.head = node_;
    }
    node_ = nullptr;
  }

  Node* node_ = nullptr;
};

}  // namespace camelot

#endif  // SRC_BASE_SHARED_BYTES_H_
