// Exception-free error handling used on all public API boundaries.
//
// Status carries an error code plus a human-readable message; Result<T> is a
// Status-or-value. Modeled on absl::Status / absl::StatusOr but self-contained.
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace camelot {

enum class StatusCode {
  kOk = 0,
  kAborted,           // Transaction aborted (by user, deadlock, crash, vote-no...).
  kNotFound,          // Named entity does not exist.
  kAlreadyExists,     // Duplicate creation.
  kInvalidArgument,   // Caller error.
  kFailedPrecondition,// Call not legal in current state.
  kUnavailable,       // Site down or partitioned away.
  kTimedOut,          // Gave up waiting.
  kBlocked,           // 2PC participant is blocked awaiting coordinator outcome.
  kCorruption,        // Log or storage integrity failure.
  kInternal,          // Bug.
  kOverloaded,        // Shed by admission control; client counts this as shed, not failed.
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status AbortedError(std::string m) { return {StatusCode::kAborted, std::move(m)}; }
inline Status NotFoundError(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
inline Status AlreadyExistsError(std::string m) {
  return {StatusCode::kAlreadyExists, std::move(m)};
}
inline Status InvalidArgumentError(std::string m) {
  return {StatusCode::kInvalidArgument, std::move(m)};
}
inline Status FailedPreconditionError(std::string m) {
  return {StatusCode::kFailedPrecondition, std::move(m)};
}
inline Status UnavailableError(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
inline Status TimedOutError(std::string m) { return {StatusCode::kTimedOut, std::move(m)}; }
inline Status BlockedError(std::string m) { return {StatusCode::kBlocked, std::move(m)}; }
inline Status CorruptionError(std::string m) { return {StatusCode::kCorruption, std::move(m)}; }
inline Status InternalError(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
inline Status OverloadedError(std::string m) { return {StatusCode::kOverloaded, std::move(m)}; }

// Status-or-value. `value()` asserts on error in debug builds; check `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define CAMELOT_RETURN_IF_ERROR(expr)        \
  do {                                       \
    ::camelot::Status _st = (expr);          \
    if (!_st.ok()) {                         \
      return _st;                            \
    }                                        \
  } while (0)

}  // namespace camelot

#endif  // SRC_BASE_STATUS_H_
