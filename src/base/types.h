// Fundamental identifier and time types shared by every Camelot-TM module.
//
// Virtual time is measured in microseconds. All identifiers are strong types so
// that a SiteId cannot be silently passed where an Lsn is expected.
#ifndef SRC_BASE_TYPES_H_
#define SRC_BASE_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace camelot {

// Virtual time in microseconds since the start of the simulation.
using SimTime = int64_t;

// Duration in virtual microseconds.
using SimDuration = int64_t;

inline constexpr SimDuration Usec(int64_t n) { return n; }
inline constexpr SimDuration Msec(double n) { return static_cast<SimDuration>(n * 1000.0); }
inline constexpr SimDuration Sec(double n) { return static_cast<SimDuration>(n * 1e6); }

inline double ToMs(SimDuration d) { return static_cast<double>(d) / 1000.0; }

// Identifies one site (machine) in the distributed system.
struct SiteId {
  uint32_t value = 0;

  friend bool operator==(const SiteId&, const SiteId&) = default;
  friend auto operator<=>(const SiteId&, const SiteId&) = default;
};

inline constexpr SiteId kInvalidSite{UINT32_MAX};

// A transaction family is identified by the site that created the top-level
// transaction plus a per-site sequence number. Nested transactions within the
// family carry an additional nesting index (see Tid).
struct FamilyId {
  SiteId origin;
  uint64_t sequence = 0;

  bool IsValid() const { return origin != kInvalidSite; }

  friend bool operator==(const FamilyId&, const FamilyId&) = default;
  friend auto operator<=>(const FamilyId&, const FamilyId&) = default;
};

// A transaction identifier. `serial == 0` names the top-level transaction of a
// family; nested transactions get successive serials, with `parent_serial`
// recording the tree structure.
struct Tid {
  FamilyId family;
  uint32_t serial = 0;         // Unique within the family.
  uint32_t parent_serial = 0;  // Meaningful only when serial != 0.

  bool IsValid() const { return family.IsValid(); }
  bool IsTopLevel() const { return serial == 0; }

  // The top-level transaction of this transaction's family.
  Tid TopLevel() const { return Tid{family, 0, 0}; }

  friend bool operator==(const Tid&, const Tid&) = default;
  friend auto operator<=>(const Tid&, const Tid&) = default;
};

inline constexpr Tid kInvalidTid{FamilyId{kInvalidSite, 0}, 0, 0};

// Log sequence number: byte offset of a record in the stable log.
struct Lsn {
  uint64_t value = 0;

  bool IsValid() const { return value != UINT64_MAX; }

  friend bool operator==(const Lsn&, const Lsn&) = default;
  friend auto operator<=>(const Lsn&, const Lsn&) = default;
};

inline constexpr Lsn kInvalidLsn{UINT64_MAX};

std::string ToString(SiteId site);
std::string ToString(const FamilyId& family);
std::string ToString(const Tid& tid);

}  // namespace camelot

template <>
struct std::hash<camelot::SiteId> {
  size_t operator()(const camelot::SiteId& s) const noexcept {
    return std::hash<uint32_t>{}(s.value);
  }
};

template <>
struct std::hash<camelot::FamilyId> {
  size_t operator()(const camelot::FamilyId& f) const noexcept {
    return std::hash<uint64_t>{}((static_cast<uint64_t>(f.origin.value) << 40) ^ f.sequence);
  }
};

template <>
struct std::hash<camelot::Tid> {
  size_t operator()(const camelot::Tid& t) const noexcept {
    return std::hash<camelot::FamilyId>{}(t.family) ^ (static_cast<size_t>(t.serial) << 1);
  }
};

#endif  // SRC_BASE_TYPES_H_
