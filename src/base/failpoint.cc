#include "src/base/failpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace camelot {

const char* FailpointActionName(FailpointAction action) {
  switch (action) {
    case FailpointAction::kNone:
      return "none";
    case FailpointAction::kCrash:
      return "crash";
    case FailpointAction::kDrop:
      return "drop";
    case FailpointAction::kDelay:
      return "delay";
    case FailpointAction::kError:
      return "error";
    case FailpointAction::kCallback:
      return "callback";
  }
  return "?";
}

void FailpointRegistry::Arm(std::string_view point, SiteId site, FailpointArm arm) {
  PointState& state = points_[std::string(point)];
  if (state.size() <= site.value) {
    state.resize(site.value + 1);
  }
  state[site.value].arms.push_back(ArmedEntry{std::move(arm), /*fired=*/false});
  ++armed_count_;
}

void FailpointRegistry::DisarmAll() {
  for (auto& [point, state] : points_) {
    for (SiteState& site : state) {
      site.arms.clear();
    }
  }
  armed_count_ = 0;
}

void FailpointRegistry::Reset() {
  points_.clear();
  armed_count_ = 0;
  trace_.clear();
}

void FailpointRegistry::set_recording(bool on) { recording_ = on; }

FailpointRegistry::SiteState* FailpointRegistry::Find(std::string_view point, SiteId site) {
  auto it = points_.find(std::string(point));
  if (it == points_.end() || it->second.size() <= site.value) {
    return nullptr;
  }
  return &it->second[site.value];
}

const FailpointRegistry::SiteState* FailpointRegistry::Find(std::string_view point,
                                                            SiteId site) const {
  return const_cast<FailpointRegistry*>(this)->Find(point, site);
}

FailpointHit FailpointRegistry::Eval(std::string_view point, SiteId site, SimTime now) {
  if (!active()) {
    return {};
  }
  PointState& state = points_[std::string(point)];
  if (state.size() <= site.value) {
    state.resize(site.value + 1);
  }
  SiteState& ss = state[site.value];
  const uint64_t hit_number = ++ss.hits;

  FailpointHit hit;
  const FailpointArm* fired = nullptr;
  for (ArmedEntry& entry : ss.arms) {
    if (!entry.fired && entry.arm.hit == hit_number) {
      entry.fired = true;
      --armed_count_;
      fired = &entry.arm;
      hit.action = entry.arm.action;
      hit.delay = entry.arm.delay;
      break;
    }
  }
  if (recording_) {
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%lldus %.*s@%u#%llu%s%s",
                  static_cast<long long>(now), static_cast<int>(point.size()), point.data(),
                  site.value, static_cast<unsigned long long>(hit_number),
                  fired != nullptr ? " !" : "",
                  fired != nullptr ? FailpointActionName(hit.action) : "");
    trace_.emplace_back(buf);
  }
  // The callback runs here (inside Eval) so the registry's bookkeeping —
  // counter bump, trace line — is already consistent when test code observes
  // the world at the point.
  if (fired != nullptr && hit.action == FailpointAction::kCallback && fired->callback) {
    fired->callback();
  }
  return hit;
}

uint64_t FailpointRegistry::hits(std::string_view point, SiteId site) const {
  const SiteState* ss = Find(point, site);
  return ss == nullptr ? 0 : ss->hits;
}

std::vector<DiscoveredPoint> FailpointRegistry::Discovered() const {
  std::vector<DiscoveredPoint> out;
  for (const auto& [point, state] : points_) {
    for (uint32_t site = 0; site < state.size(); ++site) {
      if (state[site].hits > 0) {
        out.push_back(DiscoveredPoint{point, SiteId{site}, state[site].hits});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const DiscoveredPoint& a, const DiscoveredPoint& b) {
    if (a.point != b.point) {
      return a.point < b.point;
    }
    return a.site.value < b.site.value;
  });
  return out;
}

std::vector<std::string> FailpointRegistry::UnfiredArms() const {
  std::vector<std::string> out;
  for (const auto& [point, state] : points_) {
    for (uint32_t site = 0; site < state.size(); ++site) {
      for (const ArmedEntry& entry : state[site].arms) {
        if (!entry.fired) {
          ScheduleEntry e{point, SiteId{site}, entry.arm.hit, entry.arm.action, entry.arm.delay};
          out.push_back(e.ToString());
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

FailpointHit Failpoints::Eval(std::string_view point) const {
  if (registry_ == nullptr || !registry_->active()) {
    return {};
  }
  if (site_up_ && !site_up_()) {
    return {};  // Dead site: its winding-down coroutines are not protocol history.
  }
  FailpointHit hit = registry_->Eval(point, site_, now_ ? now_() : 0);
  if (hit.action == FailpointAction::kCrash && crash_site_) {
    crash_site_();
  }
  return hit;
}

// --- Schedule strings ------------------------------------------------------------

std::string ScheduleEntry::ToString() const {
  char buf[192];
  if (action == FailpointAction::kDelay) {
    std::snprintf(buf, sizeof(buf), "%s@%u#%llu=delay:%lld", point.c_str(), site.value,
                  static_cast<unsigned long long>(hit), static_cast<long long>(delay));
  } else {
    std::snprintf(buf, sizeof(buf), "%s@%u#%llu=%s", point.c_str(), site.value,
                  static_cast<unsigned long long>(hit), FailpointActionName(action));
  }
  return buf;
}

std::string CrashSchedule::ToString() const {
  std::string out;
  for (const ScheduleEntry& entry : entries) {
    if (!out.empty()) {
      out += ';';
    }
    out += entry.ToString();
  }
  return out;
}

Result<CrashSchedule> CrashSchedule::Parse(std::string_view text) {
  CrashSchedule schedule;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(';', pos);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    std::string_view item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) {
      continue;
    }
    const size_t at = item.find('@');
    const size_t hash = item.find('#', at == std::string_view::npos ? 0 : at);
    const size_t eq = item.find('=', hash == std::string_view::npos ? 0 : hash);
    if (at == std::string_view::npos || hash == std::string_view::npos ||
        eq == std::string_view::npos || at == 0 || hash < at || eq < hash) {
      return InvalidArgumentError("bad schedule entry (want point@site#hit=action): " +
                                  std::string(item));
    }
    ScheduleEntry entry;
    entry.point = std::string(item.substr(0, at));
    entry.site = SiteId{static_cast<uint32_t>(
        std::strtoul(std::string(item.substr(at + 1, hash - at - 1)).c_str(), nullptr, 10))};
    entry.hit = std::strtoull(std::string(item.substr(hash + 1, eq - hash - 1)).c_str(),
                              nullptr, 10);
    if (entry.hit == 0) {
      return InvalidArgumentError("schedule hit numbers are 1-based: " + std::string(item));
    }
    std::string_view action = item.substr(eq + 1);
    if (action == "crash") {
      entry.action = FailpointAction::kCrash;
    } else if (action == "drop") {
      entry.action = FailpointAction::kDrop;
    } else if (action == "error") {
      entry.action = FailpointAction::kError;
    } else if (action.substr(0, 6) == "delay:") {
      entry.action = FailpointAction::kDelay;
      entry.delay = std::strtoll(std::string(action.substr(6)).c_str(), nullptr, 10);
      if (entry.delay <= 0) {
        return InvalidArgumentError("bad delay in schedule entry: " + std::string(item));
      }
    } else {
      return InvalidArgumentError("unknown schedule action: " + std::string(item));
    }
    schedule.entries.push_back(std::move(entry));
  }
  return schedule;
}

void CrashSchedule::ArmAll(FailpointRegistry& registry) const {
  for (const ScheduleEntry& entry : entries) {
    FailpointArm arm;
    arm.action = entry.action;
    arm.hit = entry.hit;
    arm.delay = entry.delay;
    registry.Arm(entry.point, entry.site, std::move(arm));
  }
}

}  // namespace camelot
