// Named failpoints: deterministic fault injection at fixed protocol points.
//
// A FailpointRegistry holds, per (point name, site), a hit counter and any
// armed triggers. Code on the hot paths (TranMan log forces and datagram
// sends, StableLog::Force, DiskManager page I/O, RecoveryManager passes)
// evaluates a named point through a per-site Failpoints handle; an armed
// trigger fires when the counter reaches its hit number ("crash at the Nth
// hit of P on site S").
//
// Actions:
//   crash  — take the site down at this point (Site::Crash, listeners fire
//            before the evaluating code continues);
//   drop   — suppress the operation (meaningful at datagram-send points);
//   delay  — stall the operation by a virtual-time duration;
//   error  — fail the operation with an error return (meaningful at points
//            with a defined error path, e.g. disk reads; a log force treats
//            it as a failed force);
//   callback — run an arbitrary test-provided closure at the point (how
//            tests replace "poll until durable, then crash" watchers).
//
// Determinism: all hit counting happens in virtual time on the simulation's
// single thread, so for a fixed (seed, workload, armed schedule) every run
// evaluates the same points in the same order with the same counters. The
// registry optionally records a trace of every evaluation; two runs of the
// same seed + schedule must produce identical traces (tested).
//
// Evaluations at a DOWN site are suppressed (not counted): a dead site's
// coroutines are winding down and their hits are not part of the protocol
// history being explored.
#ifndef SRC_BASE_FAILPOINT_H_
#define SRC_BASE_FAILPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"

namespace camelot {

enum class FailpointAction : uint8_t {
  kNone = 0,
  kCrash,
  kDrop,
  kDelay,
  kError,
  kCallback,
};

const char* FailpointActionName(FailpointAction action);

// What an evaluation returned to the instrumented code. kCrash has already
// crashed the site and kCallback has already run by the time the caller sees
// the hit; kDrop / kDelay / kError are the caller's to honor.
struct FailpointHit {
  FailpointAction action = FailpointAction::kNone;
  SimDuration delay = 0;  // Set for kDelay.
};

// One armed trigger: fire `action` when the (point, site) counter reaches
// `hit` (1-based). Each trigger fires at most once.
struct FailpointArm {
  FailpointAction action = FailpointAction::kCrash;
  uint64_t hit = 1;
  SimDuration delay = 0;                // kDelay.
  std::function<void()> callback;       // kCallback.

  static FailpointArm Crash(uint64_t hit_number = 1) {
    return {FailpointAction::kCrash, hit_number, 0, nullptr};
  }
  static FailpointArm Drop(uint64_t hit_number = 1) {
    return {FailpointAction::kDrop, hit_number, 0, nullptr};
  }
  static FailpointArm Delay(uint64_t hit_number, SimDuration d) {
    return {FailpointAction::kDelay, hit_number, d, nullptr};
  }
  static FailpointArm Error(uint64_t hit_number = 1) {
    return {FailpointAction::kError, hit_number, 0, nullptr};
  }
  static FailpointArm Callback(uint64_t hit_number, std::function<void()> fn) {
    return {FailpointAction::kCallback, hit_number, 0, std::move(fn)};
  }
};

// A (point, site, hit count) triple observed by a recording run — the unit
// the crash-schedule explorer sweeps over.
struct DiscoveredPoint {
  std::string point;
  SiteId site;
  uint64_t hits = 0;
};

class FailpointRegistry {
 public:
  // Arms `point` at `site`. Multiple arms per (point, site) are allowed
  // (e.g. different hit numbers).
  void Arm(std::string_view point, SiteId site, FailpointArm arm);
  // Removes every arm (hit counters and the trace are kept).
  void DisarmAll();
  // Clears counters, arms, and trace.
  void Reset();

  // Turns on hit counting + trace recording. Counting also happens while any
  // arm is installed; recording makes counters observable via Discovered()
  // and appends one trace line per evaluation.
  void set_recording(bool on);
  bool recording() const { return recording_; }

  // Counting happens only while "active": recording, or at least one arm.
  bool active() const { return recording_ || armed_count_ > 0; }

  // Called by Failpoints handles. `site` must be a live site.
  FailpointHit Eval(std::string_view point, SiteId site, SimTime now);

  uint64_t hits(std::string_view point, SiteId site) const;
  // Every (point, site) with a nonzero counter, sorted by point then site.
  std::vector<DiscoveredPoint> Discovered() const;
  // Arms that have not fired yet, as "point@site#hit=action" strings.
  std::vector<std::string> UnfiredArms() const;

  const std::vector<std::string>& trace() const { return trace_; }

 private:
  struct ArmedEntry {
    FailpointArm arm;
    bool fired = false;
  };
  struct SiteState {
    uint64_t hits = 0;
    std::vector<ArmedEntry> arms;
  };
  // Site states indexed by SiteId value (grown on demand).
  using PointState = std::vector<SiteState>;

  SiteState* Find(std::string_view point, SiteId site);
  const SiteState* Find(std::string_view point, SiteId site) const;

  std::unordered_map<std::string, PointState> points_;
  size_t armed_count_ = 0;  // Unfired arms across all points.
  bool recording_ = false;
  std::vector<std::string> trace_;
};

// Per-site, per-component evaluation handle. Default-constructed handles are
// inert (every Eval returns kNone at zero cost) — components outside a full
// CamelotWorld never pay for the instrumentation.
class Failpoints {
 public:
  Failpoints() = default;
  Failpoints(FailpointRegistry* registry, SiteId site, std::function<SimTime()> now,
             std::function<bool()> site_up, std::function<void()> crash_site)
      : registry_(registry),
        site_(site),
        now_(std::move(now)),
        site_up_(std::move(site_up)),
        crash_site_(std::move(crash_site)) {}

  // True when evaluations can have any effect; lets hot paths skip building
  // point-name strings entirely.
  bool active() const { return registry_ != nullptr && registry_->active(); }

  // Evaluates the named point. A kCrash trigger crashes the site before this
  // returns; a kCallback trigger has already run. The caller honors
  // kDrop / kDelay / kError according to the point's semantics.
  FailpointHit Eval(std::string_view point) const;

 private:
  FailpointRegistry* registry_ = nullptr;
  SiteId site_{};
  std::function<SimTime()> now_;
  std::function<bool()> site_up_;
  std::function<void()> crash_site_;
};

// --- Crash schedules (replayable fault scripts) ---------------------------------
//
// Textual form (the replay string printed on oracle failures and accepted via
// the CAMELOT_SCHEDULE env var):
//
//   point@site#hit=action[:arg][;point@site#hit=action...]
//
// e.g. "tm.2pc.commit_force.before@0#1=crash;tm.send.vote@1#2=delay:5000".

struct ScheduleEntry {
  std::string point;
  SiteId site{};
  uint64_t hit = 1;
  FailpointAction action = FailpointAction::kCrash;
  SimDuration delay = 0;  // kDelay argument, microseconds.

  std::string ToString() const;
};

struct CrashSchedule {
  std::vector<ScheduleEntry> entries;

  std::string ToString() const;
  static Result<CrashSchedule> Parse(std::string_view text);

  // Installs every entry into the registry.
  void ArmAll(FailpointRegistry& registry) const;
};

}  // namespace camelot

#endif  // SRC_BASE_FAILPOINT_H_
