#include "src/base/types.h"

#include <cstdio>

namespace camelot {

std::string ToString(SiteId site) {
  if (site == kInvalidSite) {
    return "site:invalid";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "site:%u", site.value);
  return buf;
}

std::string ToString(const FamilyId& family) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "fam:%u.%llu", family.origin.value,
                static_cast<unsigned long long>(family.sequence));
  return buf;
}

std::string ToString(const Tid& tid) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "tid:%u.%llu/%u", tid.family.origin.value,
                static_cast<unsigned long long>(tid.family.sequence), tid.serial);
  return buf;
}

}  // namespace camelot
