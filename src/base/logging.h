// Minimal trace logging for the simulator.
//
// Tracing is off by default; benches and examples can enable it to watch the
// protocols execute. CHECK-style assertions terminate on internal invariant
// violations (bugs), never on user or simulated-environment errors.
#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace camelot {

enum class TraceLevel { kOff = 0, kInfo = 1, kDebug = 2 };

// Global trace verbosity; not thread-safe by design (the DES is single-threaded).
TraceLevel GetTraceLevel();
void SetTraceLevel(TraceLevel level);

void TraceLine(TraceLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define CTRACE(...) ::camelot::TraceLine(::camelot::TraceLevel::kInfo, __VA_ARGS__)
#define CDEBUG(...) ::camelot::TraceLine(::camelot::TraceLevel::kDebug, __VA_ARGS__)

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);

#define CAMELOT_CHECK(expr)                              \
  do {                                                   \
    if (!(expr)) {                                       \
      ::camelot::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                    \
  } while (0)

}  // namespace camelot

#endif  // SRC_BASE_LOGGING_H_
