// Storage fault model shared by the simulated data disk and the stable log.
//
// Real disks are not fail-stop: writes tear, sectors rot, reads stall. Every
// probability below is evaluated against a deterministic per-device Rng
// stream (forked from the scheduler's seed), so a faulty run is exactly
// reproducible. All probabilities default to zero: the perfectly reliable
// disk of the original simulator is the zero config.
//
// Fault semantics by device (see DESIGN.md "Storage fault model"):
//   - torn_write_probability: a physical write is interrupted and leaves a
//     garbled image behind — the stored CRC no longer matches the data, so
//     the damage is detected on the next read rather than silently served.
//     On a duplexed log, a torn force hits one mirror per event (the mirrors
//     are independent transfers).
//   - bit_rot_probability: per physical I/O, an unrelated resident page (or
//     log byte) silently decays. Models latent media corruption that only a
//     CRC check — foreground read or background scrub — can surface.
//   - latent_sector_error_probability: a physical read finds the sector
//     unreadable; the page stays unreadable until rewritten. Data disk only.
//   - write_stall_probability / write_stall_extra: a physical write takes
//     write_stall_extra longer (fail-slow disks; exercises group commit and
//     commit timeouts under degraded hardware).
#ifndef SRC_BASE_STORAGE_FAULTS_H_
#define SRC_BASE_STORAGE_FAULTS_H_

#include "src/base/types.h"

namespace camelot {

struct StorageFaultConfig {
  double torn_write_probability = 0.0;
  double bit_rot_probability = 0.0;
  double latent_sector_error_probability = 0.0;
  double write_stall_probability = 0.0;
  SimDuration write_stall_extra = Usec(200000);

  bool AnyEnabled() const {
    return torn_write_probability > 0.0 || bit_rot_probability > 0.0 ||
           latent_sector_error_probability > 0.0 || write_stall_probability > 0.0;
  }
};

}  // namespace camelot

#endif  // SRC_BASE_STORAGE_FAULTS_H_
