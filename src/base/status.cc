#include "src/base/status.h"

namespace camelot {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kBlocked:
      return "BLOCKED";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace camelot
