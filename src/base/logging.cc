#include "src/base/logging.h"

#include <cstdarg>

namespace camelot {

namespace {
TraceLevel g_trace_level = TraceLevel::kOff;
}  // namespace

TraceLevel GetTraceLevel() { return g_trace_level; }

void SetTraceLevel(TraceLevel level) { g_trace_level = level; }

void TraceLine(TraceLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_trace_level)) {
    return;
  }
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace camelot
