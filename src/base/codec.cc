#include "src/base/codec.h"

namespace camelot {

namespace {

// Precomputed CRC32C table (Castagnoli, reflected polynomial 0x82f63b78).
// Built inside a magic-static constructor so concurrent first use from
// parallel explorer sweeps is race-free (the old hand-rolled
// `static bool initialized` lazy init was not).
struct CrcTableHolder {
  uint32_t table[256];
  CrcTableHolder() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);
      }
      table[i] = crc;
    }
  }
};

const uint32_t* CrcTable() {
  static const CrcTableHolder holder;
  return holder.table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  const uint32_t* table = CrcTable();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

}  // namespace camelot
