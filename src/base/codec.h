// Binary encoding primitives shared by the write-ahead log and the wire
// protocol messages: little-endian fixed-width integers, length-prefixed
// strings/blobs, and CRC32 for integrity checking.
#ifndef SRC_BASE_CODEC_H_
#define SRC_BASE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"

namespace camelot {

using Bytes = std::vector<uint8_t>;

// CRC32 (Castagnoli polynomial, bitwise implementation; speed is irrelevant here).
uint32_t Crc32(const uint8_t* data, size_t len);
inline uint32_t Crc32(const Bytes& b) { return Crc32(b.data(), b.size()); }

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U16(uint16_t v) { AppendLe(&v, 2); }
  void U32(uint32_t v) { AppendLe(&v, 4); }
  void U64(uint64_t v) { AppendLe(&v, 8); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

  void Blob(const Bytes& b) {
    U32(static_cast<uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  void Site(SiteId s) { U32(s.value); }
  void Family(const FamilyId& f) {
    Site(f.origin);
    U64(f.sequence);
  }
  void Transaction(const Tid& t) {
    Family(t.family);
    U32(t.serial);
    U32(t.parent_serial);
  }
  void SiteList(const std::vector<SiteId>& sites) {
    U32(static_cast<uint32_t>(sites.size()));
    for (SiteId s : sites) {
      Site(s);
    }
  }

  const Bytes& bytes() const { return out_; }
  Bytes Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  void AppendLe(const void* p, size_t n) {
    // Host is little-endian on all supported platforms; memcpy keeps it simple.
    const auto* src = static_cast<const uint8_t*>(p);
    out_.insert(out_.end(), src, src + n);
  }

  Bytes out_;
};

// Reader with explicit failure state: any over-read marks the reader failed and
// returns zero values; callers check ok() once at the end.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8() { return Fixed<uint8_t>(); }
  uint16_t U16() { return Fixed<uint16_t>(); }
  uint32_t U32() { return Fixed<uint32_t>(); }
  uint64_t U64() { return Fixed<uint64_t>(); }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  Bytes Blob() {
    const uint32_t n = U32();
    if (!Ensure(n)) {
      return {};
    }
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }
  std::string Str() {
    const uint32_t n = U32();
    if (!Ensure(n)) {
      return {};
    }
    std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }

  SiteId Site() { return SiteId{U32()}; }
  FamilyId Family() {
    FamilyId f;
    f.origin = Site();
    f.sequence = U64();
    return f;
  }
  Tid Transaction() {
    Tid t;
    t.family = Family();
    t.serial = U32();
    t.parent_serial = U32();
    return t;
  }
  std::vector<SiteId> SiteList() {
    const uint32_t n = U32();
    std::vector<SiteId> out;
    if (n > size_) {  // Sanity bound; a corrupt length must not OOM us.
      failed_ = true;
      return out;
    }
    out.reserve(n);
    for (uint32_t i = 0; i < n && ok(); ++i) {
      out.push_back(Site());
    }
    return out;
  }

  bool ok() const { return !failed_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  T Fixed() {
    if (!Ensure(sizeof(T))) {
      return T{};
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  bool Ensure(size_t n) {
    if (failed_ || size_ - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace camelot

#endif  // SRC_BASE_CODEC_H_
