#include "src/diskmgr/disk_manager.h"

#include <algorithm>

#include "src/base/logging.h"

#include <cstdio>

namespace camelot {

DiskManager::DiskManager(Scheduler& sched, StableLog& log, DiskConfig config)
    : sched_(sched), log_(log), config_(config), io_(sched),
      fault_rng_(sched.rng().Fork()) {}

std::string DiskManager::PageKey(const std::string& segment, const std::string& object) {
  return segment + "\x1f" + object;
}

std::pair<std::string, std::string> DiskManager::SplitKey(const std::string& key) {
  const size_t sep = key.find('\x1f');
  CAMELOT_CHECK(sep != std::string::npos);
  return {key.substr(0, sep), key.substr(sep + 1)};
}

void DiskManager::Touch(const std::string& key, Frame& frame) {
  lru_.erase(frame.lru_pos);
  lru_.push_front(key);
  frame.lru_pos = lru_.begin();
}

void DiskManager::StorePage(const std::string& key, Bytes value) {
  StoredPage& page = disk_[key];
  page.crc = Crc32(value);
  page.data = std::move(value);
  page.sector_lost = false;
}

SimDuration DiskManager::DrawWriteLatency() {
  SimDuration latency = config_.disk_write_latency;
  if (config_.faults.write_stall_probability > 0.0 &&
      fault_rng_.NextBool(config_.faults.write_stall_probability)) {
    latency += config_.faults.write_stall_extra;
    ++counters_.write_stalls;
  }
  return latency;
}

void DiskManager::InjectWriteFaults(const std::string& key, const Bytes& value) {
  if (!config_.faults.AnyEnabled()) {
    return;
  }
  if (!value.empty() && config_.faults.torn_write_probability > 0.0 &&
      fault_rng_.NextBool(config_.faults.torn_write_probability)) {
    // The transfer was interrupted: the stored image is garbled from a random
    // point onward while the stored CRC describes the intended page, so the
    // damage surfaces at the next CRC check instead of being served silently.
    StoredPage& page = disk_[key];
    for (size_t i = fault_rng_.NextBounded(page.data.size()); i < page.data.size(); ++i) {
      page.data[i] ^= 0xa5;
    }
    ++counters_.torn_writes_injected;
  }
  if (!disk_.empty() && config_.faults.bit_rot_probability > 0.0 &&
      fault_rng_.NextBool(config_.faults.bit_rot_probability)) {
    // Latent decay: a random resident page silently loses a bit.
    auto it = disk_.begin();
    std::advance(it, static_cast<ptrdiff_t>(fault_rng_.NextBounded(disk_.size())));
    if (!it->second.data.empty()) {
      it->second.data[fault_rng_.NextBounded(it->second.data.size())] ^=
          static_cast<uint8_t>(1u << fault_rng_.NextBounded(8));
      ++counters_.bit_rot_injected;
    }
  }
  StartScrubber();  // Physical activity re-arms the background scrub.
}

void DiskManager::InjectReadFaults(const std::string& key) {
  if (!config_.faults.AnyEnabled()) {
    return;
  }
  if (config_.faults.latent_sector_error_probability > 0.0 &&
      fault_rng_.NextBool(config_.faults.latent_sector_error_probability)) {
    auto it = disk_.find(key);
    if (it != disk_.end() && !it->second.sector_lost) {
      it->second.sector_lost = true;  // Unreadable until rewritten.
      ++counters_.sector_errors_injected;
    }
  }
  StartScrubber();
}

Async<Result<Bytes>> DiskManager::RepairPage(const std::string& segment,
                                             const std::string& object, bool from_scrub) {
  if (!repair_) {
    ++counters_.repair_failures;
    co_return CorruptionError("page corrupt and no media-repair hook: " + object);
  }
  const uint64_t epoch = crash_epoch_;
  auto rebuilt = co_await repair_(segment, object);
  if (epoch != crash_epoch_) {
    co_return UnavailableError("crashed during media repair");
  }
  if (!rebuilt.ok()) {
    ++counters_.repair_failures;
    co_return rebuilt.status();
  }
  StorePage(PageKey(segment, object), *rebuilt);
  ++counters_.pages_repaired;
  if (from_scrub) {
    ++counters_.scrub_repairs;
  }
  co_return *rebuilt;
}

Async<Result<Bytes>> DiskManager::Read(const std::string& segment, const std::string& object) {
  // Capture the crash epoch: a read that overlaps a crash must fail instead
  // of completing for a caller whose site is gone — a zombie success would
  // let the caller keep mutating the freshly-cleared pool (money-losing).
  const uint64_t epoch = crash_epoch_;
  if (failpoints_.active()) {
    const FailpointHit hit = failpoints_.Eval("disk.read");
    if (hit.action == FailpointAction::kDelay) {
      co_await sched_.Delay(hit.delay);
    }
    if (hit.action == FailpointAction::kError) {
      co_return UnavailableError("failpoint: disk read error");
    }
    if (epoch != crash_epoch_) {
      co_return UnavailableError("crashed during disk read");
    }
  }
  const std::string key = PageKey(segment, object);
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    ++counters_.reads_hit;
    Touch(key, it->second);
    co_return it->second.value;
  }
  // Miss: fault from the data disk.
  auto disk_it = disk_.find(key);
  if (disk_it == disk_.end()) {
    co_return NotFoundError("object not found: " + object);
  }
  ++counters_.reads_miss;
  co_await io_.Lock();
  co_await sched_.Delay(config_.disk_read_latency);
  io_.Unlock();
  if (epoch != crash_epoch_) {
    co_return UnavailableError("crashed during disk read");
  }
  InjectReadFaults(key);
  // Re-check: another reader may have faulted it while we waited.
  it = frames_.find(key);
  if (it != frames_.end()) {
    Touch(key, it->second);
    co_return it->second.value;
  }
  disk_it = disk_.find(key);
  if (disk_it == disk_.end()) {
    co_return NotFoundError("object not found: " + object);
  }
  Bytes value;
  if (disk_it->second.Intact()) {
    value = disk_it->second.data;
  } else {
    // The media garbled this page after it was stored: rebuild it from the
    // log rather than serving corrupt bytes (or failing the read outright).
    ++counters_.crc_failures_detected;
    auto repaired = co_await RepairPage(segment, object, /*from_scrub=*/false);
    if (!repaired.ok()) {
      co_return repaired.status();
    }
    value = std::move(*repaired);
    // The repair awaited: someone may have buffered the page meanwhile.
    it = frames_.find(key);
    if (it != frames_.end()) {
      Touch(key, it->second);
      co_return it->second.value;
    }
  }
  co_await EnsureRoom();
  Frame frame;
  frame.value = value;
  frame.dirty = false;
  lru_.push_front(key);
  frame.lru_pos = lru_.begin();
  frames_.emplace(key, std::move(frame));
  co_return value;
}

Async<Status> DiskManager::Write(const std::string& segment, const std::string& object,
                                 Bytes value, Lsn rec_lsn) {
  const uint64_t epoch = crash_epoch_;
  const std::string key = PageKey(segment, object);
  auto it = frames_.find(key);
  if (it == frames_.end()) {
    co_await EnsureRoom();
    if (epoch != crash_epoch_) {
      co_return UnavailableError("crashed during page write");
    }
    Frame frame;
    lru_.push_front(key);
    frame.lru_pos = lru_.begin();
    it = frames_.emplace(key, std::move(frame)).first;
  } else {
    Touch(key, it->second);
  }
  it->second.value = std::move(value);
  it->second.dirty = true;
  if (rec_lsn > it->second.page_lsn) {
    it->second.page_lsn = rec_lsn;
  }
  ++counters_.writes;
  co_return OkStatus();
}

Async<bool> DiskManager::Exists(const std::string& segment, const std::string& object) {
  const std::string key = PageKey(segment, object);
  co_return frames_.contains(key) || disk_.contains(key);
}

Async<void> DiskManager::EnsureRoom() {
  while (frames_.size() >= config_.pool_frames && !lru_.empty()) {
    const std::string victim_key = lru_.back();
    auto it = frames_.find(victim_key);
    CAMELOT_CHECK(it != frames_.end());
    ++counters_.evictions;
    if (it->second.dirty) {
      co_await FlushFrame(victim_key, it->second);
    }
    // Re-find: the map may have been reshaped while flushing.
    it = frames_.find(victim_key);
    if (it != frames_.end() && !it->second.dirty) {
      lru_.erase(it->second.lru_pos);
      frames_.erase(it);
    }
  }
}

Async<void> DiskManager::FlushFrame(const std::string& key, Frame& frame) {
  // WAL rule: the log must cover the page before the page reaches the disk.
  if (!log_.IsDurable(frame.page_lsn)) {
    ++counters_.wal_forces;
    const bool durable = co_await log_.Force(frame.page_lsn);
    if (!durable) {
      co_return;  // Crashed mid-force; the pool is gone anyway.
    }
  }
  if (failpoints_.active()) {
    const FailpointHit hit = failpoints_.Eval("disk.flush.before_write");
    if (hit.action == FailpointAction::kDelay) {
      co_await sched_.Delay(hit.delay);
    }
  }
  co_await io_.Lock();
  co_await sched_.Delay(DrawWriteLatency());
  io_.Unlock();
  auto it = frames_.find(key);
  if (it == frames_.end()) {
    co_return;  // Evaporated during I/O (crash).
  }
  StorePage(key, it->second.value);
  InjectWriteFaults(key, it->second.value);
  it->second.dirty = false;
  if (failpoints_.active()) {
    failpoints_.Eval("disk.flush.after_write");  // Page stored; crash lands here.
  }
}

Async<void> DiskManager::FlushAll() {
  // Snapshot keys first; FlushFrame awaits and the map may change under us.
  std::vector<std::string> keys;
  keys.reserve(frames_.size());
  for (auto& [key, frame] : frames_) {
    if (frame.dirty) {
      keys.push_back(key);
    }
  }
  for (const auto& key : keys) {
    auto it = frames_.find(key);
    if (it != frames_.end() && it->second.dirty) {
      co_await FlushFrame(key, it->second);
    }
  }
}

void DiskManager::OnCrash() {
  ++crash_epoch_;
  scrubber_running_ = false;  // The incarnation notices the epoch and retires.
  frames_.clear();
  lru_.clear();
}

void DiskManager::StartScrubber() {
  if (config_.scrub_interval <= 0 || scrubber_running_) {
    return;
  }
  scrubber_running_ = true;
  sched_.Spawn(ScrubberLoop(crash_epoch_));
}

Async<void> DiskManager::ScrubberLoop(uint64_t epoch) {
  // Sweeps the data disk in batches, CRC-checking every resident page and
  // repairing failures via the media-repair hook. The loop retires once a
  // full sweep finds nothing to repair and no new physical activity occurred
  // (so an idle simulation can drain); any later physical transfer re-arms it.
  uint64_t sweep_start_activity = counters_.writes + counters_.reads_miss;
  bool sweep_repaired = false;
  while (true) {
    co_await sched_.Delay(config_.scrub_interval);
    if (epoch != crash_epoch_) {
      co_return;  // The site crashed; a restart spawns a fresh incarnation.
    }
    std::vector<std::string> keys;
    keys.reserve(disk_.size());
    for (const auto& [key, page] : disk_) {
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    if (keys.empty()) {
      break;
    }
    bool wrapped = false;
    for (size_t i = 0; i < config_.scrub_pages_per_pass; ++i) {
      if (scrub_cursor_ >= keys.size()) {
        scrub_cursor_ = 0;
        wrapped = true;
      }
      const std::string key = keys[scrub_cursor_++];
      auto it = disk_.find(key);
      if (it == disk_.end()) {
        continue;
      }
      ++counters_.pages_scrubbed;
      if (it->second.Intact()) {
        continue;
      }
      ++counters_.crc_failures_detected;
      auto [segment, object] = SplitKey(key);
      auto repaired = co_await RepairPage(segment, object, /*from_scrub=*/true);
      if (epoch != crash_epoch_) {
        co_return;
      }
      sweep_repaired = sweep_repaired || repaired.ok();
    }
    if (wrapped) {
      const uint64_t activity = counters_.writes + counters_.reads_miss;
      if (!sweep_repaired && activity == sweep_start_activity) {
        break;  // Quiescent and clean: let the event queue drain.
      }
      sweep_start_activity = activity;
      sweep_repaired = false;
    }
  }
  if (epoch == crash_epoch_) {
    scrubber_running_ = false;
  }
}

void DiskManager::RecoveryWrite(const std::string& segment, const std::string& object,
                                Bytes value) {
  StorePage(PageKey(segment, object), std::move(value));
}

Result<Bytes> DiskManager::RecoveryRead(const std::string& segment,
                                        const std::string& object) const {
  auto it = disk_.find(PageKey(segment, object));
  if (it == disk_.end()) {
    return NotFoundError("object not on disk: " + object);
  }
  if (!it->second.Intact()) {
    return CorruptionError("stored page fails CRC: " + object);
  }
  return it->second.data;
}

std::vector<std::pair<std::string, std::string>> DiskManager::CorruptPages() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, page] : disk_) {
    if (!page.Intact()) {
      out.push_back(SplitKey(key));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void DiskManager::CorruptStoredPage(const std::string& segment, const std::string& object) {
  auto it = disk_.find(PageKey(segment, object));
  CAMELOT_CHECK(it != disk_.end());
  if (it->second.data.empty()) {
    it->second.sector_lost = true;
  } else {
    it->second.data[0] ^= 0xff;
  }
}

bool DiskManager::SaveToFile(const std::string& path) const {
  ByteWriter w;
  w.U32(0x43444953u);  // "CDIS"
  w.U64(disk_.size());
  for (const auto& [key, page] : disk_) {
    w.Str(key);
    w.Blob(page.data);
  }
  const Bytes& image = w.bytes();
  ByteWriter trailer;
  trailer.U32(Crc32(image));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  bool ok = std::fwrite(image.data(), 1, image.size(), f) == image.size();
  ok = ok && std::fwrite(trailer.bytes().data(), 1, 4, f) == 4;
  std::fclose(f);
  return ok;
}

bool DiskManager::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 16) {
    std::fclose(f);
    return false;
  }
  Bytes raw(static_cast<size_t>(size));
  const bool read_ok = std::fread(raw.data(), 1, raw.size(), f) == raw.size();
  std::fclose(f);
  if (!read_ok) {
    return false;
  }
  const Bytes image(raw.begin(), raw.end() - 4);
  ByteReader trailer(raw.data() + raw.size() - 4, 4);
  if (Crc32(image) != trailer.U32()) {
    return false;
  }
  ByteReader r(image);
  if (r.U32() != 0x43444953u) {
    return false;
  }
  const uint64_t count = r.U64();
  std::unordered_map<std::string, StoredPage> loaded;
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    std::string key = r.Str();
    Bytes value = r.Blob();
    StoredPage page;
    page.crc = Crc32(value);
    page.data = std::move(value);
    loaded.emplace(std::move(key), std::move(page));
  }
  if (!r.ok()) {
    return false;
  }
  disk_ = std::move(loaded);
  frames_.clear();
  lru_.clear();
  return true;
}

size_t DiskManager::dirty_frames() const {
  size_t n = 0;
  for (const auto& [key, frame] : frames_) {
    if (frame.dirty) {
      ++n;
    }
  }
  return n;
}

}  // namespace camelot
