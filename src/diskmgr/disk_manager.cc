#include "src/diskmgr/disk_manager.h"

#include "src/base/logging.h"

#include <cstdio>

namespace camelot {

DiskManager::DiskManager(Scheduler& sched, StableLog& log, DiskConfig config)
    : sched_(sched), log_(log), config_(config), io_(sched) {}

std::string DiskManager::PageKey(const std::string& segment, const std::string& object) {
  return segment + "\x1f" + object;
}

void DiskManager::Touch(const std::string& key, Frame& frame) {
  lru_.erase(frame.lru_pos);
  lru_.push_front(key);
  frame.lru_pos = lru_.begin();
}

Async<Result<Bytes>> DiskManager::Read(const std::string& segment, const std::string& object) {
  const std::string key = PageKey(segment, object);
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    ++counters_.reads_hit;
    Touch(key, it->second);
    co_return it->second.value;
  }
  // Miss: fault from the data disk.
  auto disk_it = disk_.find(key);
  if (disk_it == disk_.end()) {
    co_return NotFoundError("object not found: " + object);
  }
  ++counters_.reads_miss;
  co_await io_.Lock();
  co_await sched_.Delay(config_.disk_read_latency);
  io_.Unlock();
  // Re-check: another reader may have faulted it while we waited.
  it = frames_.find(key);
  if (it == frames_.end()) {
    co_await EnsureRoom();
    Frame frame;
    frame.value = disk_.at(key);
    frame.dirty = false;
    lru_.push_front(key);
    frame.lru_pos = lru_.begin();
    it = frames_.emplace(key, std::move(frame)).first;
  } else {
    Touch(key, it->second);
  }
  co_return it->second.value;
}

Async<Status> DiskManager::Write(const std::string& segment, const std::string& object,
                                 Bytes value, Lsn rec_lsn) {
  const std::string key = PageKey(segment, object);
  auto it = frames_.find(key);
  if (it == frames_.end()) {
    co_await EnsureRoom();
    Frame frame;
    lru_.push_front(key);
    frame.lru_pos = lru_.begin();
    it = frames_.emplace(key, std::move(frame)).first;
  } else {
    Touch(key, it->second);
  }
  it->second.value = std::move(value);
  it->second.dirty = true;
  if (rec_lsn > it->second.page_lsn) {
    it->second.page_lsn = rec_lsn;
  }
  ++counters_.writes;
  co_return OkStatus();
}

Async<bool> DiskManager::Exists(const std::string& segment, const std::string& object) {
  const std::string key = PageKey(segment, object);
  co_return frames_.contains(key) || disk_.contains(key);
}

Async<void> DiskManager::EnsureRoom() {
  while (frames_.size() >= config_.pool_frames && !lru_.empty()) {
    const std::string victim_key = lru_.back();
    auto it = frames_.find(victim_key);
    CAMELOT_CHECK(it != frames_.end());
    ++counters_.evictions;
    if (it->second.dirty) {
      co_await FlushFrame(victim_key, it->second);
    }
    // Re-find: the map may have been reshaped while flushing.
    it = frames_.find(victim_key);
    if (it != frames_.end() && !it->second.dirty) {
      lru_.erase(it->second.lru_pos);
      frames_.erase(it);
    }
  }
}

Async<void> DiskManager::FlushFrame(const std::string& key, Frame& frame) {
  // WAL rule: the log must cover the page before the page reaches the disk.
  if (!log_.IsDurable(frame.page_lsn)) {
    ++counters_.wal_forces;
    const bool durable = co_await log_.Force(frame.page_lsn);
    if (!durable) {
      co_return;  // Crashed mid-force; the pool is gone anyway.
    }
  }
  co_await io_.Lock();
  co_await sched_.Delay(config_.disk_write_latency);
  io_.Unlock();
  auto it = frames_.find(key);
  if (it == frames_.end()) {
    co_return;  // Evaporated during I/O (crash).
  }
  disk_[key] = it->second.value;
  it->second.dirty = false;
}

Async<void> DiskManager::FlushAll() {
  // Snapshot keys first; FlushFrame awaits and the map may change under us.
  std::vector<std::string> keys;
  keys.reserve(frames_.size());
  for (auto& [key, frame] : frames_) {
    if (frame.dirty) {
      keys.push_back(key);
    }
  }
  for (const auto& key : keys) {
    auto it = frames_.find(key);
    if (it != frames_.end() && it->second.dirty) {
      co_await FlushFrame(key, it->second);
    }
  }
}

void DiskManager::OnCrash() {
  frames_.clear();
  lru_.clear();
}

void DiskManager::RecoveryWrite(const std::string& segment, const std::string& object,
                                Bytes value) {
  disk_[PageKey(segment, object)] = std::move(value);
}

Result<Bytes> DiskManager::RecoveryRead(const std::string& segment,
                                        const std::string& object) const {
  auto it = disk_.find(PageKey(segment, object));
  if (it == disk_.end()) {
    return NotFoundError("object not on disk: " + object);
  }
  return it->second;
}

bool DiskManager::SaveToFile(const std::string& path) const {
  ByteWriter w;
  w.U32(0x43444953u);  // "CDIS"
  w.U64(disk_.size());
  for (const auto& [key, value] : disk_) {
    w.Str(key);
    w.Blob(value);
  }
  const Bytes& image = w.bytes();
  ByteWriter trailer;
  trailer.U32(Crc32(image));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  bool ok = std::fwrite(image.data(), 1, image.size(), f) == image.size();
  ok = ok && std::fwrite(trailer.bytes().data(), 1, 4, f) == 4;
  std::fclose(f);
  return ok;
}

bool DiskManager::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 16) {
    std::fclose(f);
    return false;
  }
  Bytes raw(static_cast<size_t>(size));
  const bool read_ok = std::fread(raw.data(), 1, raw.size(), f) == raw.size();
  std::fclose(f);
  if (!read_ok) {
    return false;
  }
  const Bytes image(raw.begin(), raw.end() - 4);
  ByteReader trailer(raw.data() + raw.size() - 4, 4);
  if (Crc32(image) != trailer.U32()) {
    return false;
  }
  ByteReader r(image);
  if (r.U32() != 0x43444953u) {
    return false;
  }
  const uint64_t count = r.U64();
  std::unordered_map<std::string, Bytes> loaded;
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    std::string key = r.Str();
    Bytes value = r.Blob();
    loaded.emplace(std::move(key), std::move(value));
  }
  if (!r.ok()) {
    return false;
  }
  disk_ = std::move(loaded);
  frames_.clear();
  lru_.clear();
  return true;
}

size_t DiskManager::dirty_frames() const {
  size_t n = 0;
  for (const auto& [key, frame] : frames_) {
    if (frame.dirty) {
      ++n;
    }
  }
  return n;
}

}  // namespace camelot
