// Disk Manager: the per-site process that owns recoverable storage.
//
// In Camelot the disk manager is a virtual-memory buffer manager that
// cooperates with servers and the kernel's external-pager interface to
// implement the write-ahead-log protocol, and is the single point of access
// to the common log (so it is also where log batching lives; see
// src/wal/stable_log.h, which it owns).
//
// Here it manages a buffer pool of object-granularity pages over a simulated
// data disk and enforces the WAL rule: a dirty page may reach the data disk
// only after the log is durable up to that page's LSN. Committed-but-unflushed
// and flushed-but-uncommitted states are both reachable, which is exactly what
// the recovery module's redo/undo passes exist to repair.
//
// The data disk is NOT fail-stop: every stored page carries a CRC, and the
// fault config can tear writes, rot bits, lose sectors, and stall writes (all
// driven by a deterministic Rng stream). Corruption is therefore *detected*
// on read instead of silently served; a registered media-repair hook (the
// recovery manager's redo-from-log path) rebuilds the page in place, and a
// background scrubber coroutine validates cold pages before a foreground
// read ever trips over them.
#ifndef SRC_DISKMGR_DISK_MANAGER_H_
#define SRC_DISKMGR_DISK_MANAGER_H_

#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/codec.h"
#include "src/base/failpoint.h"
#include "src/base/status.h"
#include "src/base/storage_faults.h"
#include "src/base/types.h"
#include "src/sim/scheduler.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/wal/stable_log.h"

namespace camelot {

struct DiskConfig {
  // Frames in the buffer pool; evictions beyond this trigger real disk I/O.
  size_t pool_frames = 256;
  // One data-disk transfer (Table 1: raw disk write 26.8 ms/track; reads similar).
  SimDuration disk_read_latency = Usec(20000);
  SimDuration disk_write_latency = Usec(26800);
  // Media faults on the data disk; see src/base/storage_faults.h.
  StorageFaultConfig faults;
  // Background scrubber: every interval, CRC-check a batch of cold pages and
  // repair failures through the media-repair hook. 0 disables the scrubber.
  SimDuration scrub_interval = 0;
  size_t scrub_pages_per_pass = 4;
};

struct DiskCounters {
  uint64_t reads_hit = 0;
  uint64_t reads_miss = 0;
  uint64_t writes = 0;
  uint64_t evictions = 0;
  uint64_t wal_forces = 0;  // Forces triggered by the WAL rule at eviction/flush.
  // Media faults injected (what the fault layer did to us).
  uint64_t torn_writes_injected = 0;
  uint64_t bit_rot_injected = 0;
  uint64_t sector_errors_injected = 0;
  uint64_t write_stalls = 0;
  // Media faults detected and handled (what the CRC layer caught).
  uint64_t crc_failures_detected = 0;
  uint64_t pages_repaired = 0;       // Rebuilt from the log via the repair hook.
  uint64_t repair_failures = 0;      // Hook missing or log had no coverage.
  uint64_t pages_scrubbed = 0;       // Pages CRC-checked by the scrubber.
  uint64_t scrub_repairs = 0;        // Repairs initiated by the scrubber.
};

// Rebuilds a page's correct current value from the durable log (registered by
// the recovery manager). Returns Corruption if the log has no coverage.
using MediaRepairFn =
    std::function<Async<Result<Bytes>>(std::string segment, std::string object)>;

// Pages are keyed by (segment, object); each recoverable object occupies its
// own page (a deliberate simplification documented in DESIGN.md).
class DiskManager {
 public:
  DiskManager(Scheduler& sched, StableLog& log, DiskConfig config);

  StableLog& log() { return log_; }

  // Reads an object's current buffered value; faults it from the data disk on
  // a miss. NotFound if the object has never been written or flushed. A page
  // whose CRC fails on the physical read is rebuilt through the media-repair
  // hook; Corruption if no hook is registered or the rebuild fails.
  Async<Result<Bytes>> Read(const std::string& segment, const std::string& object);

  // Installs a new value in the buffer pool. `rec_lsn` is the log record
  // protecting this write (the page cannot be flushed before the log covers
  // it). The data disk is NOT touched here.
  Async<Status> Write(const std::string& segment, const std::string& object, Bytes value,
                      Lsn rec_lsn);

  // True if the object exists in buffer or on disk.
  Async<bool> Exists(const std::string& segment, const std::string& object);

  // Flushes every dirty page (checkpoint); honours the WAL rule.
  Async<void> FlushAll();

  // Crash: the buffer pool is volatile and vanishes; the data disk and the
  // durable log survive. Callers then run recovery (src/recovery). The
  // scrubber incarnation dies with the site; call StartScrubber on restart.
  void OnCrash();

  // Registers the redo-from-log page rebuilder (recovery manager).
  void set_media_repair(MediaRepairFn fn) { repair_ = std::move(fn); }

  // Spawns the background scrub coroutine (no-op if scrub_interval == 0 or a
  // live incarnation is already running).
  void StartScrubber();

  // Enables/changes media faults mid-run (e.g. after a clean loading phase).
  void set_faults(const StorageFaultConfig& faults) { config_.faults = faults; }

  // Fault-injection points around physical page I/O: "disk.read" (honors
  // error-return, delay, crash), "disk.flush.before_write" /
  // "disk.flush.after_write" (crash, delay). See base/failpoint.h.
  void set_failpoints(Failpoints failpoints) { failpoints_ = std::move(failpoints); }

  // Recovery-only: writes directly to the data disk image without WAL checks
  // (used by redo/undo which re-derive correctness from the log itself).
  // Recovery writes are modeled clean: restart re-verifies everything anyway.
  void RecoveryWrite(const std::string& segment, const std::string& object, Bytes value);
  // Recovery-only synchronous read of the disk image (no buffering, no delay).
  // Corruption if the stored page fails its CRC check.
  Result<Bytes> RecoveryRead(const std::string& segment, const std::string& object) const;

  // Every (segment, object) whose stored page currently fails its CRC —
  // restart media-recovery sweeps this list and rebuilds each entry.
  std::vector<std::pair<std::string, std::string>> CorruptPages() const;

  // Cold backup/restore of the data-disk image (pairs with
  // StableLog::SaveToFile for a full stable-storage snapshot). Load replaces
  // the disk image and clears the buffer pool; run recovery afterwards.
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

  const DiskCounters& counters() const { return counters_; }
  size_t dirty_frames() const;
  size_t buffered_frames() const { return frames_.size(); }

  // Testing hook: damage the stored image of a page so its CRC fails.
  void CorruptStoredPage(const std::string& segment, const std::string& object);

 private:
  struct Frame {
    Bytes value;
    Lsn page_lsn = Lsn{0};  // Highest log record covering this page.
    bool dirty = false;
    std::list<std::string>::iterator lru_pos;
  };
  // One page of the data-disk image. `crc` is computed at store time; a
  // mismatch on read means the media garbled the page after the fact.
  struct StoredPage {
    Bytes data;
    uint32_t crc = 0;
    bool sector_lost = false;  // Latent sector error: unreadable until rewritten.

    bool Intact() const { return !sector_lost && Crc32(data) == crc; }
  };

  static std::string PageKey(const std::string& segment, const std::string& object);
  static std::pair<std::string, std::string> SplitKey(const std::string& key);
  void Touch(const std::string& key, Frame& frame);
  // Evicts LRU frames until the pool has room; flushes dirty victims.
  Async<void> EnsureRoom();
  Async<void> FlushFrame(const std::string& key, Frame& frame);
  // Stores a page with a fresh CRC (the clean path).
  void StorePage(const std::string& key, Bytes value);
  // Fault hooks around physical transfers.
  void InjectWriteFaults(const std::string& key, const Bytes& value);
  void InjectReadFaults(const std::string& key);
  SimDuration DrawWriteLatency();
  // Runs the repair hook for a corrupt page; re-stores the rebuilt value.
  Async<Result<Bytes>> RepairPage(const std::string& segment, const std::string& object,
                                  bool from_scrub);
  Async<void> ScrubberLoop(uint64_t epoch);

  Scheduler& sched_;
  StableLog& log_;
  DiskConfig config_;
  std::unordered_map<std::string, Frame> frames_;
  std::list<std::string> lru_;  // Front = most recent.
  std::unordered_map<std::string, StoredPage> disk_;  // The data-disk image.
  SimMutex io_;  // Serializes physical data-disk transfers.
  Failpoints failpoints_;
  Rng fault_rng_;  // Private stream: fault draws stay reproducible.
  MediaRepairFn repair_;
  uint64_t crash_epoch_ = 0;  // Bumped on crash; retires the scrubber.
  bool scrubber_running_ = false;
  size_t scrub_cursor_ = 0;  // Position in the sorted key list between passes.
  DiskCounters counters_;
};

}  // namespace camelot

#endif  // SRC_DISKMGR_DISK_MANAGER_H_
