// Disk Manager: the per-site process that owns recoverable storage.
//
// In Camelot the disk manager is a virtual-memory buffer manager that
// cooperates with servers and the kernel's external-pager interface to
// implement the write-ahead-log protocol, and is the single point of access
// to the common log (so it is also where log batching lives; see
// src/wal/stable_log.h, which it owns).
//
// Here it manages a buffer pool of object-granularity pages over a simulated
// data disk and enforces the WAL rule: a dirty page may reach the data disk
// only after the log is durable up to that page's LSN. Committed-but-unflushed
// and flushed-but-uncommitted states are both reachable, which is exactly what
// the recovery module's redo/undo passes exist to repair.
#ifndef SRC_DISKMGR_DISK_MANAGER_H_
#define SRC_DISKMGR_DISK_MANAGER_H_

#include <list>
#include <string>
#include <unordered_map>

#include "src/base/codec.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/sim/scheduler.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/wal/stable_log.h"

namespace camelot {

struct DiskConfig {
  // Frames in the buffer pool; evictions beyond this trigger real disk I/O.
  size_t pool_frames = 256;
  // One data-disk transfer (Table 1: raw disk write 26.8 ms/track; reads similar).
  SimDuration disk_read_latency = Usec(20000);
  SimDuration disk_write_latency = Usec(26800);
};

struct DiskCounters {
  uint64_t reads_hit = 0;
  uint64_t reads_miss = 0;
  uint64_t writes = 0;
  uint64_t evictions = 0;
  uint64_t wal_forces = 0;  // Forces triggered by the WAL rule at eviction/flush.
};

// Pages are keyed by (segment, object); each recoverable object occupies its
// own page (a deliberate simplification documented in DESIGN.md).
class DiskManager {
 public:
  DiskManager(Scheduler& sched, StableLog& log, DiskConfig config);

  StableLog& log() { return log_; }

  // Reads an object's current buffered value; faults it from the data disk on
  // a miss. NotFound if the object has never been written or flushed.
  Async<Result<Bytes>> Read(const std::string& segment, const std::string& object);

  // Installs a new value in the buffer pool. `rec_lsn` is the log record
  // protecting this write (the page cannot be flushed before the log covers
  // it). The data disk is NOT touched here.
  Async<Status> Write(const std::string& segment, const std::string& object, Bytes value,
                      Lsn rec_lsn);

  // True if the object exists in buffer or on disk.
  Async<bool> Exists(const std::string& segment, const std::string& object);

  // Flushes every dirty page (checkpoint); honours the WAL rule.
  Async<void> FlushAll();

  // Crash: the buffer pool is volatile and vanishes; the data disk and the
  // durable log survive. Callers then run recovery (src/recovery).
  void OnCrash();

  // Recovery-only: writes directly to the data disk image without WAL checks
  // (used by redo/undo which re-derive correctness from the log itself).
  void RecoveryWrite(const std::string& segment, const std::string& object, Bytes value);
  // Recovery-only synchronous read of the disk image (no buffering, no delay).
  Result<Bytes> RecoveryRead(const std::string& segment, const std::string& object) const;

  // Cold backup/restore of the data-disk image (pairs with
  // StableLog::SaveToFile for a full stable-storage snapshot). Load replaces
  // the disk image and clears the buffer pool; run recovery afterwards.
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

  const DiskCounters& counters() const { return counters_; }
  size_t dirty_frames() const;
  size_t buffered_frames() const { return frames_.size(); }

 private:
  struct Frame {
    Bytes value;
    Lsn page_lsn = Lsn{0};  // Highest log record covering this page.
    bool dirty = false;
    std::list<std::string>::iterator lru_pos;
  };

  static std::string PageKey(const std::string& segment, const std::string& object);
  void Touch(const std::string& key, Frame& frame);
  // Evicts LRU frames until the pool has room; flushes dirty victims.
  Async<void> EnsureRoom();
  Async<void> FlushFrame(const std::string& key, Frame& frame);

  Scheduler& sched_;
  StableLog& log_;
  DiskConfig config_;
  std::unordered_map<std::string, Frame> frames_;
  std::list<std::string> lru_;  // Front = most recent.
  std::unordered_map<std::string, Bytes> disk_;  // The data-disk image.
  SimMutex io_;  // Serializes physical data-disk transfers.
  DiskCounters counters_;
};

}  // namespace camelot

#endif  // SRC_DISKMGR_DISK_MANAGER_H_
