#include "src/comman/comman.h"

#include "src/base/logging.h"

namespace camelot {

ComMan::ComMan(Site& site, NetMsgServer& netmsg, NameService& names)
    : site_(site), netmsg_(netmsg), names_(names) {
  // Spy hooks on the RPC path (Section 3.1).
  netmsg_.set_request_ingest([this](const Tid& tid, SiteId caller) {
    involved_[tid.family].insert(caller);
  });
  netmsg_.set_response_decorator([this](const Tid& tid) { return EncodeSitesFor(tid); });
  netmsg_.set_response_ingest(
      [this](const Tid& tid, const Bytes& piggyback, SiteId responder, uint32_t incarnation) {
        IngestSites(tid, piggyback, responder, incarnation);
      });
  // The tracking tables are volatile.
  site_.AddCrashListener([this] {
    involved_.clear();
    incarnations_.clear();
    poisoned_.clear();
  });
}

Bytes ComMan::EncodeSitesFor(const Tid& tid) const {
  ByteWriter w;
  auto it = involved_.find(tid.family);
  std::vector<SiteId> sites;
  if (it != involved_.end()) {
    sites.assign(it->second.begin(), it->second.end());
  }
  // Always include ourselves: we took part in generating this response.
  sites.push_back(site_.id());
  w.SiteList(sites);
  return w.Take();
}

void ComMan::IngestSites(const Tid& tid, const Bytes& piggyback, SiteId responder,
                         uint32_t incarnation) {
  ByteReader r(piggyback);
  std::vector<SiteId> sites = r.SiteList();
  if (!r.ok()) {
    return;
  }
  auto& known = involved_[tid.family];
  for (SiteId s : sites) {
    if (s != site_.id()) {
      known.insert(s);
    }
  }
  // Crash detection: a participant answering with a NEWER incarnation lost
  // this transaction's locks and volatile state — the transaction is doomed.
  auto [it, inserted] = incarnations_[tid.family].try_emplace(responder, incarnation);
  if (!inserted && it->second != incarnation) {
    poisoned_.insert(tid.family);
    CTRACE("[%8.1fms] %s poisons %s: %s restarted mid-transaction",
           ToMs(site_.sched().now()), ToString(site_.id()).c_str(),
           ToString(tid).c_str(), ToString(responder).c_str());
  }
}

Async<RpcResult> ComMan::Call(const std::string& service, uint32_t method, Bytes body,
                              const Tid& tid, RpcTrace* trace, SimTime deadline) {
  if (tid.IsValid() && IsPoisoned(tid.family)) {
    co_return RpcResult{
        AbortedError("a participant site restarted mid-transaction; abort required"), {}};
  }
  auto where = names_.Resolve(service);
  if (!where.ok()) {
    co_return RpcResult{where.status(), {}};
  }
  RpcContext ctx{site_.id(), tid, deadline};
  if (*where == site_.id()) {
    RpcResult result = co_await site_.CallLocal(service, method, std::move(body), ctx,
                                                /*to_data_server=*/true);
    co_return result;
  }
  RpcResult result =
      co_await netmsg_.Call(*where, service, method, std::move(body), ctx,
                            /*via_comman=*/true, trace);
  // Re-check: THIS response may be the one that revealed the restart. The
  // operation may have executed at the restarted site, but the transaction is
  // doomed either way, so fail it here rather than let the caller continue.
  if (result.status.ok() && tid.IsValid() && IsPoisoned(tid.family)) {
    co_return RpcResult{
        AbortedError("a participant site restarted mid-transaction; abort required"), {}};
  }
  co_return result;
}

Async<Result<SiteId>> ComMan::Lookup(const std::string& service) {
  auto result = co_await names_.Lookup(site_, service);
  co_return result;
}

std::vector<SiteId> ComMan::KnownSites(const FamilyId& family) const {
  auto it = involved_.find(family);
  if (it == involved_.end()) {
    return {};
  }
  return {it->second.begin(), it->second.end()};
}

void ComMan::NoteSite(const FamilyId& family, SiteId site) {
  if (site != site_.id()) {
    involved_[family].insert(site);
  }
}

void ComMan::Forget(const FamilyId& family) {
  involved_.erase(family);
  incarnations_.erase(family);
  poisoned_.erase(family);
}

}  // namespace camelot
